/**
 * @file
 * Quickstart: evaluate one workload-system mapping and read the
 * report.
 *
 * Builds DLRM-A (Table II), binds MAD-Max to the 128-GPU ZionEX
 * system (Table III), and compares the FSDP baseline against the
 * throughput-optimal plan found by the explorer — the paper's core
 * workflow in ~40 lines.
 */

#include <cstdio>

#include "core/perf_model.hh"
#include "core/strategy_explorer.hh"
#include "hw/hw_zoo.hh"
#include "model/model_zoo.hh"
#include "util/strfmt.hh"

using namespace madmax;

int
main()
{
    // 1. Pick a model and a distributed system.
    ModelDesc model = model_zoo::dlrmA();
    ClusterSpec cluster = hw_zoo::dlrmTrainingSystem();

    // 2. Bind the performance model to the system.
    PerfModel madmax(cluster);

    // 3. Evaluate the industry-standard FSDP baseline.
    TaskSpec task = TaskSpec::preTraining();
    PerfReport baseline =
        madmax.evaluate(model, task, ParallelPlan::fsdpBaseline());
    std::printf("--- FSDP baseline ---\n%s\n",
                baseline.summary().c_str());

    // 4. Let the explorer find the best hierarchical plan.
    StrategyExplorer explorer(madmax);
    ExplorationResult best = explorer.best(model, task);
    std::printf("--- MAD-Max optimal ---\n%s\n",
                best.report.summary().c_str());

    std::printf("speedup over FSDP: %.2fx with %s\n",
                best.report.throughput() / baseline.throughput(),
                best.plan.toString().c_str());
    return 0;
}
