/**
 * @file
 * LLM context-length study (the Fig. 15 workflow).
 *
 * Holds the LLaMA2-70B architecture fixed while doubling context
 * length, and shows how the benefit of tuning parallelization
 * strategies shrinks as attention-driven activation volumes grow —
 * Insight 6's "beyond parallelization" conclusion.
 */

#include <iostream>

#include "core/strategy_explorer.hh"
#include "hw/hw_zoo.hh"
#include "model/model_zoo.hh"
#include "util/strfmt.hh"
#include "util/table.hh"

using namespace madmax;

int
main()
{
    PerfModel madmax(hw_zoo::llmTrainingSystem());
    StrategyExplorer explorer(madmax);
    TaskSpec task = TaskSpec::preTraining();

    AsciiTable table({"context", "FSDP tokens/s", "best tokens/s",
                      "gain", "best plan (transformer)"});
    for (long ctx : {2048L, 4096L, 8192L, 16384L}) {
        ModelDesc model = model_zoo::llama2WithContext(ctx);
        double fsdp = explorer.baseline(model, task).tokensPerSecond();
        ExplorationResult best = explorer.best(model, task);
        table.addRow(
            {strfmt("%ldK", ctx / 1024),
             formatCount(fsdp),
             formatCount(best.report.tokensPerSecond()),
             strfmt("%.2fx", best.report.tokensPerSecond() / fsdp),
             best.plan.strategyFor(LayerClass::Transformer).toString()});
    }
    table.print(std::cout);
    std::cout << "\nDiminishing strategy gains with longer contexts "
                 "motivate changes beyond parallelization (Insight 6).\n";
    return 0;
}
