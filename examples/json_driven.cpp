/**
 * @file
 * Config-driven evaluation, matching the paper's user interface
 * (§IV-A): "Users have to provide JSON files for: 1) model
 * architecture, 2) distributed system specifications, and 3) task and
 * parallelization strategy."
 *
 * Usage: json_driven [model.json] [system.json] [task.json]
 * Defaults to the shipped DLRM-A / ZionEX / optimal-pre-training
 * configs under configs/.
 */

#include <iostream>

#include "config/config_loader.hh"
#include "core/perf_model.hh"
#include "util/logging.hh"

using namespace madmax;

int
main(int argc, char **argv)
{
    std::string root = MADMAX_CONFIG_DIR;
    std::string model_path =
        argc > 1 ? argv[1] : root + "/model_dlrm_a.json";
    std::string system_path =
        argc > 2 ? argv[2] : root + "/system_zionex.json";
    std::string task_path =
        argc > 3 ? argv[3] : root + "/task_pretrain_optimal.json";

    try {
        ModelDesc model = loadModelFile(model_path);
        ClusterSpec cluster = loadClusterFile(system_path);
        TaskConfig task = loadTaskFile(task_path);

        PerfModel madmax(cluster);
        PerfReport report =
            madmax.evaluate(model, task.task, task.plan);
        std::cout << report.summary();
        return report.valid ? 0 : 2;
    } catch (const ConfigError &e) {
        std::cerr << "configuration error: " << e.what() << "\n";
        return 1;
    }
}
