/**
 * @file
 * Cloud deployment planner (the Fig. 1 / Fig. 16 workflow).
 *
 * For a target workload, evaluates every catalog cloud instance type
 * with both the default FSDP mapping and a MAD-Max-optimized mapping,
 * reports elapsed time and A100-normalized aggregate GPU-hours per
 * billion samples, and extracts the pareto frontier.
 */

#include <iostream>

#include "core/strategy_explorer.hh"
#include "dse/pareto.hh"
#include "dse/sweep.hh"
#include "hw/hw_zoo.hh"
#include "model/model_zoo.hh"
#include "util/strfmt.hh"
#include "util/table.hh"

using namespace madmax;

int
main()
{
    const ModelDesc model = model_zoo::dlrmA();
    const TaskSpec task = TaskSpec::preTraining();
    const double samples = 1e9;
    const double a100_peak = hw_zoo::a100_40().peakFlopsTensor16;

    AsciiTable table({"instance", "mapping", "elapsed (1B samples)",
                      "norm. GPU-hours", "plan"});
    std::vector<ParetoPoint> points;
    std::vector<std::string> labels;

    for (const hw_zoo::CloudInstance &inst :
         hw_zoo::cloudInstances(16)) {
        PerfModel madmax(inst.cluster);
        StrategyExplorer explorer(madmax);

        PerfReport fsdp = explorer.baseline(model, task);
        ExplorationResult best = explorer.best(model, task);
        for (const auto &[label, report, plan] :
             {std::tuple<const char *, const PerfReport &, std::string>{
                  "FSDP", fsdp, "(baseline)"},
              {"MAD-Max", best.report, best.plan.toString()}}) {
            if (!report.valid) {
                table.addRow({inst.name, label, "OOM", "-", plan});
                continue;
            }
            double elapsed = samples / report.throughput();
            double hours = normalizedGpuHours(report, inst.cluster,
                                              samples, a100_peak);
            table.addRow({inst.name, label, formatTime(elapsed),
                          strfmt("%.0f", hours), plan});
            points.push_back(
                ParetoPoint{hours, 1.0 / elapsed, points.size()});
            labels.push_back(inst.name + std::string(" / ") + label);
        }
    }
    table.print(std::cout);

    std::cout << "\npareto-optimal configurations (cost vs speed):\n";
    for (size_t idx : paretoFrontier(points))
        std::cout << "  - " << labels[idx] << "\n";
    return 0;
}
