/**
 * @file
 * DLRM parallelization-strategy search (the Fig. 11 workflow).
 *
 * Sweeps every hierarchical (intra, inter) strategy for DLRM-A's
 * dense layers on ZionEX, printing throughput relative to the FSDP
 * baseline and marking OOM plans — including why they fail.
 */

#include <iostream>

#include "core/strategy_explorer.hh"
#include "hw/hw_zoo.hh"
#include "model/model_zoo.hh"
#include "util/strfmt.hh"
#include "util/table.hh"

using namespace madmax;

int
main()
{
    ModelDesc model = model_zoo::dlrmA();
    PerfModel madmax(hw_zoo::dlrmTrainingSystem());
    StrategyExplorer explorer(madmax);
    TaskSpec task = TaskSpec::preTraining();

    double baseline =
        explorer.baseline(model, task).throughput();

    AsciiTable table({"dense strategy", "emb strategy", "throughput",
                      "vs FSDP", "mem/device", "verdict"});
    for (const ExplorationResult &r :
         explorer.explore(model, task).results) {
        HierStrategy dense = r.plan.strategyFor(LayerClass::BaseDense);
        HierStrategy emb =
            r.plan.strategyFor(LayerClass::SparseEmbedding);
        if (r.report.valid) {
            table.addRow({dense.toString(), emb.toString(),
                          strfmt("%.2f MQPS",
                                 r.report.throughput() / 1e6),
                          strfmt("%.2fx",
                                 r.report.throughput() / baseline),
                          formatBytes(r.report.memory.total()), "ok"});
        } else {
            table.addRow({dense.toString(), emb.toString(), "-", "-",
                          formatBytes(r.report.memory.total()),
                          strfmt("OOM (>%s)",
                                 formatBytes(
                                     r.report.memory.usableCapacity)
                                     .c_str())});
        }
    }
    table.print(std::cout);
    return 0;
}
