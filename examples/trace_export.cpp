/**
 * @file
 * Execution-trace export (the Fig. 6 visualization).
 *
 * Generates the per-device compute/communication streams for one
 * DLRM-A-Transformer training iteration, prints an ASCII swimlane
 * with exposed communication visible, and writes a Chrome Trace
 * Event JSON loadable in chrome://tracing or Perfetto.
 */

#include <fstream>
#include <iostream>

#include "core/perf_model.hh"
#include "hw/hw_zoo.hh"
#include "model/model_zoo.hh"
#include "trace/chrome_trace.hh"
#include "util/strfmt.hh"

using namespace madmax;

int
main(int argc, char **argv)
{
    const std::string out_path =
        argc > 1 ? argv[1] : "dlrm_transformer_trace.json";

    ModelDesc model = model_zoo::dlrmATransformer();
    PerfModel madmax(hw_zoo::dlrmTrainingSystem());

    ParallelPlan plan;
    plan.set(LayerClass::SparseEmbedding, HierStrategy{Strategy::MP});
    plan.set(LayerClass::BaseDense,
             HierStrategy{Strategy::TP, Strategy::DDP});
    plan.set(LayerClass::Transformer,
             HierStrategy{Strategy::TP, Strategy::DDP});

    PerfReport report =
        madmax.evaluate(model, TaskSpec::preTraining(), plan);
    std::cout << report.summary() << "\n";
    std::cout << "per-device streams ('#' compute, '=' blocking comm, "
                 "'-' background comm):\n\n";
    std::cout << asciiStreams(report.timeline, 76) << "\n";

    std::ofstream out(out_path);
    writeChromeTrace(report.timeline, out);
    std::cout << "wrote " << out_path
              << " (open in chrome://tracing)\n";
    return 0;
}
