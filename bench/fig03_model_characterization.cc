/**
 * @file
 * Regenerates Fig. 3: per-model system-resource requirements —
 * (a) capacity (parameters), (b) compute (FLOPs per sample/token),
 * (c) sparse-lookup bandwidth — spanning orders of magnitude between
 * recommendation models and LLMs (observations O1/O2).
 */

#include <cmath>
#include <iostream>

#include "bench_util.hh"
#include "model/model_zoo.hh"
#include "util/table.hh"

using namespace madmax;

namespace
{

/** Log-scale bar: one '#' per decade above the floor. */
std::string
logBar(double value, double floor)
{
    if (value <= floor)
        return "";
    int n = static_cast<int>((std::log10(value) - std::log10(floor)) *
                             4.0);
    return std::string(static_cast<size_t>(std::max(n, 1)), '#');
}

} // namespace

int
main()
{
    bench::banner(
        "Fig. 3: model capacity / compute / bandwidth requirements",
        "requirements vary by orders of magnitude; DLRMs need >20x the "
        "sparse-lookup bandwidth of LLMs, LLMs far more FLOPs (O1/O2)");

    std::vector<ModelDesc> models;
    for (ModelDesc &m : model_zoo::tableIISuite()) {
        // Fig. 3 uses the six base models.
        if (m.name.find("Transformer") == std::string::npos &&
            m.name.find("MoE") == std::string::npos)
            models.push_back(std::move(m));
    }
    models.push_back(model_zoo::dlrmATransformer());

    std::cout << "\n(a) capacity: parameter count\n";
    AsciiTable cap({"model", "params", "scale (log)"});
    for (const ModelDesc &m : models) {
        double p = m.graph.totals().paramCount;
        cap.addRow({m.name, formatCount(p), logBar(p, 1e9)});
    }
    cap.print(std::cout);

    std::cout << "\n(b) compute: forward FLOPs per sample/token\n";
    AsciiTable flops({"model", "FLOPs/token", "scale (log)"});
    for (const ModelDesc &m : models) {
        double f = m.forwardFlopsPerToken();
        flops.addRow({m.name, formatCount(f), logBar(f, 1e6)});
    }
    flops.print(std::cout);

    std::cout << "\n(c) sparse lookup bytes per sample\n";
    AsciiTable bw({"model", "lookup bytes/sample", "scale (log)"});
    for (const ModelDesc &m : models) {
        double b = m.graph.totals().lookupBytesPerSample;
        bw.addRow({m.name, b > 0 ? formatBytes(b) : "-",
                   logBar(b, 1e3)});
    }
    bw.print(std::cout);

    // The O2 ratio quoted in the text.
    double dlrm_lookup =
        model_zoo::dlrmA().graph.totals().lookupBytesPerSample;
    ModelDesc llama = model_zoo::llama65b();
    double llm_lookup = llama.graph.totals().lookupBytesPerSample /
        llama.contextLength;
    std::cout << strfmt("\nDLRM-A vs LLaMA sparse-lookup bandwidth per "
                        "sample/token: %.0fx (paper: >20x)\n",
                        dlrm_lookup / llm_lookup);
    return 0;
}
