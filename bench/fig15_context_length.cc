/**
 * @file
 * Regenerates Fig. 15: throughput gains from parallelization-strategy
 * tuning across LLMs of increasing context length — LLaMA (2K),
 * LLaMA2 (4K), and LLaMA2 with doubled context (8K). Gains shrink
 * with context (Insight 6), pointing beyond pure parallelization
 * exploration. Memory constraints are lifted so the replication
 * strategies the paper plots stay comparable across contexts.
 */

#include <iostream>

#include "bench_util.hh"
#include "core/perf_model.hh"
#include "hw/hw_zoo.hh"
#include "model/model_zoo.hh"
#include "util/table.hh"

using namespace madmax;

int
main()
{
    bench::banner("Fig. 15: context-length scaling (2K/4K/8K)",
                  "gains from strategy tuning diminish with context "
                  "length");

    PerfModelOptions opts;
    opts.ignoreMemory = true; // Compare strategies uniformly.
    opts.keepTimeline = false;
    PerfModel madmax(hw_zoo::llmTrainingSystem(), opts);
    TaskSpec task = TaskSpec::preTraining();

    std::vector<ModelDesc> models;
    models.push_back(model_zoo::llama65b());            // 2K.
    models.push_back(model_zoo::llama2_70b());          // 4K.
    models.push_back(model_zoo::llama2WithContext(8192)); // 8K.

    AsciiTable table({"model", "ctx", "(DDP) vs FSDP",
                      "(TP, DDP) vs FSDP", "fits memory?"});
    for (const ModelDesc &model : models) {
        PerfReport fsdp = madmax.evaluate(model, task,
                                          ParallelPlan::fsdpBaseline());

        ParallelPlan ddp = ParallelPlan::fsdpBaseline();
        ddp.set(LayerClass::Transformer, HierStrategy{Strategy::DDP});
        PerfReport r_ddp = madmax.evaluate(model, task, ddp);

        ParallelPlan tp_ddp = ParallelPlan::fsdpBaseline();
        tp_ddp.set(LayerClass::Transformer,
                   HierStrategy{Strategy::TP, Strategy::DDP});
        PerfReport r_tp = madmax.evaluate(model, task, tp_ddp);

        table.addRow(
            {model.name, strfmt("%ldK", model.contextLength / 1024),
             strfmt("%.3fx",
                    r_ddp.throughput() / fsdp.throughput()),
             strfmt("%.3fx", r_tp.throughput() / fsdp.throughput()),
             r_tp.memory.fits() ? "yes" : "no (needs more HBM)"});
    }
    table.print(std::cout);

    std::cout << "\nInsight 6: longer contexts grow compute and "
                 "activation volumes while parameter communication "
                 "stays fixed, so every strategy converges toward the "
                 "compute bound and tuning gains shrink.\n";
    return 0;
}
