/**
 * @file
 * Ablation bench for the modeling design choices DESIGN.md calls out
 * (not a paper figure — a reproduction artifact):
 *
 *  1. background channel for non-blocking collectives (vs a single
 *     in-order comm stream),
 *  2. FSDP AllGather prefetching (Fig. 9's optimization),
 *  3. AllReduce algorithm (ring vs tree vs auto),
 *  4. embedding lookup skew (even sharding vs hot devices, §IV-B),
 *  5. hierarchical vs naive global collectives is covered by unit
 *     tests (collective closed forms).
 */

#include <iostream>

#include "bench_util.hh"
#include "core/perf_model.hh"
#include "hw/hw_zoo.hh"
#include "model/model_zoo.hh"
#include "util/table.hh"

using namespace madmax;

namespace
{

ParallelPlan
dlrmPlan()
{
    ParallelPlan p;
    p.set(LayerClass::SparseEmbedding, HierStrategy{Strategy::MP});
    p.set(LayerClass::BaseDense,
          HierStrategy{Strategy::TP, Strategy::DDP});
    return p;
}

ModelDesc
skewedDlrm(double skew)
{
    ModelDesc m = model_zoo::dlrmA();
    // Rebuild the embedding with the requested hot-device skew.
    ModelDesc out;
    out.name = strfmt("DLRM-A (skew %.2f)", skew);
    out.globalBatchSize = m.globalBatchSize;
    out.contextLength = 1;
    out.isRecommendation = true;
    int emb = out.graph.addLayer(std::make_unique<EmbeddingBagLayer>(
        "EMB", 500, 12385672, 128, 88.32, 4.0, skew));
    int bot = out.graph.addLayer(std::make_unique<MlpLayer>(
        "Bot_MLP", LayerClass::BaseDense,
        std::vector<long>{256, 512, 256, 128}));
    int inter = out.graph.addLayer(std::make_unique<InteractionLayer>(
        "Interact", 501, 128, 512), {emb, bot});
    out.graph.addLayer(std::make_unique<MlpLayer>(
        "Top_MLP", LayerClass::BaseDense,
        std::vector<long>{512, 8192, 8192, 8192, 8192, 8192, 4096, 1}),
        {inter});
    return out;
}

} // namespace

int
main()
{
    bench::banner("Ablations: modeling design choices",
                  "each row toggles one mechanism of the reproduction");

    const ClusterSpec zion = hw_zoo::dlrmTrainingSystem();
    const ClusterSpec llm = hw_zoo::llmTrainingSystem();
    const TaskSpec train = TaskSpec::preTraining();

    // 1. Background communication channel (DLRM-A).
    {
        std::cout << "\n1) non-blocking collectives on a background "
                     "channel (DLRM-A)\n";
        AsciiTable t({"scheduling", "iteration", "exposed comm",
                      "MQPS"});
        for (bool bg : {false, true}) {
            PerfModelOptions opts;
            opts.backgroundCommChannel = bg;
            PerfReport r = PerfModel(zion, opts).evaluate(
                model_zoo::dlrmA(), train, dlrmPlan());
            t.addRow({bg ? "background channel (model default)"
                         : "single in-order comm stream",
                      formatTime(r.iterationTime),
                      formatTime(r.exposedCommTime),
                      strfmt("%.2f", r.throughput() / 1e6)});
        }
        t.print(std::cout);
    }

    // 2. FSDP prefetch (LLaMA) — the Fig. 9 optimization.
    {
        std::cout << "\n2) FSDP AllGather prefetching (LLaMA-65B)\n";
        AsciiTable t({"variant", "iteration", "comm overlap",
                      "tokens/s"});
        for (bool prefetch : {false, true}) {
            ParallelPlan plan = ParallelPlan::fsdpBaseline();
            plan.fsdpPrefetch = prefetch;
            PerfReport r = PerfModel(llm).evaluate(
                model_zoo::llama65b(), train, plan);
            t.addRow({prefetch ? "prefetch on" : "prefetch off",
                      formatTime(r.iterationTime),
                      formatPercent(r.overlapFraction()),
                      formatCount(r.tokensPerSecond())});
        }
        t.print(std::cout);
    }

    // 3. AllReduce algorithm (LLaMA with an inter-node DDP level).
    {
        std::cout << "\n3) AllReduce algorithm (LLaMA-65B, "
                     "(FSDP, DDP) transformers, memory limit off)\n";
        AsciiTable t({"algorithm", "comm time", "iteration"});
        ParallelPlan plan = ParallelPlan::fsdpBaseline();
        plan.fsdpPrefetch = true;
        plan.set(LayerClass::Transformer,
                 HierStrategy{Strategy::FSDP, Strategy::DDP});
        for (AllReduceAlgorithm algo :
             {AllReduceAlgorithm::Ring, AllReduceAlgorithm::Tree,
              AllReduceAlgorithm::Auto}) {
            PerfModelOptions opts;
            opts.allReduceAlgorithm = algo;
            opts.ignoreMemory = true;
            PerfReport r = PerfModel(llm, opts).evaluate(
                model_zoo::llama65b(), train, plan);
            t.addRow({toString(algo), formatTime(r.commTime),
                      formatTime(r.iterationTime)});
        }
        t.print(std::cout);
    }

    // 4. Embedding lookup skew (DLRM-A).
    {
        std::cout << "\n4) per-device lookup skew (DLRM-A; RecShard-"
                     "style balancing motivates skew -> 1)\n";
        AsciiTable t({"hot-device skew", "iteration", "MQPS"});
        for (double skew : {1.0, 1.25, 1.5, 2.0}) {
            PerfReport r = PerfModel(zion).evaluate(skewedDlrm(skew),
                                                    train, dlrmPlan());
            t.addRow({strfmt("%.2fx", skew),
                      formatTime(r.iterationTime),
                      strfmt("%.2f", r.throughput() / 1e6)});
        }
        t.print(std::cout);
    }
    return 0;
}
