/**
 * @file
 * Closed-loop client throughput bench for the serving layer: starts
 * an in-process `madmax serve` stack (EvalService + HttpServer on a
 * free loopback port), then drives it with N closed-loop keep-alive
 * clients (each client holds one persistent connection and issues its
 * next request only after the previous response lands — the standard
 * interactive-user model) and reports achieved req/s plus p50/p99
 * per-request latency.
 *
 * Three phases:
 *   cold    one request against an empty memo cache (startup +
 *           full-evaluation latency a CLI user pays on every single
 *           invocation);
 *   cached  C clients hammering one (model, system, task) triple —
 *           every request after the first is a shared-cache hit, the
 *           resident-service case the paper's >100x-vs-profiling
 *           speedup needs to reach many users;
 *   mixed   clients rotating through distinct parallelization plans —
 *           each new plan is a full evaluation, re-creating the
 *           design-space-exploration traffic mix.
 *
 * Usage: serve_throughput [--jobs N] [--json BENCH_serve_throughput.json]
 */

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <iostream>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hh"
#include "config/config_loader.hh"
#include "hw/hw_zoo.hh"
#include "serve/http_server.hh"
#include "serve/service.hh"
#include "util/strfmt.hh"

using namespace madmax;
using namespace madmax::bench;

namespace
{

constexpr int kClients = 4;
constexpr int kCachedRequests = 2000; ///< Per client, cached phase.
constexpr int kMixedRequests = 500;   ///< Per client, mixed phase.

/** Closed-loop HTTP/1.1 keep-alive client: one persistent
 *  connection, one outstanding request at a time. */
class BenchClient
{
  public:
    explicit BenchClient(int port)
    {
        fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
        if (fd_ < 0)
            return;
        int one = 1;
        ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
        sockaddr_in addr{};
        addr.sin_family = AF_INET;
        addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
        addr.sin_port = htons(static_cast<uint16_t>(port));
        if (::connect(fd_, reinterpret_cast<sockaddr *>(&addr),
                      sizeof(addr)) != 0) {
            ::close(fd_);
            fd_ = -1;
        }
    }

    ~BenchClient()
    {
        if (fd_ >= 0)
            ::close(fd_);
    }

    BenchClient(const BenchClient &) = delete;
    BenchClient &operator=(const BenchClient &) = delete;

    bool connected() const { return fd_ >= 0; }

    /** POST @p body and read one full response; returns true iff the
     *  response is a 200. The connection stays open (keep-alive). */
    bool post(const std::string &path, const std::string &body)
    {
        std::string raw = "POST " + path + " HTTP/1.1\r\n"
            "Host: localhost\r\nContent-Type: application/json\r\n"
            "Content-Length: " + std::to_string(body.size()) +
            "\r\n\r\n" + body;
        size_t off = 0;
        while (off < raw.size()) {
            ssize_t n = ::send(fd_, raw.data() + off,
                               raw.size() - off, MSG_NOSIGNAL);
            if (n <= 0)
                return false;
            off += static_cast<size_t>(n);
        }
        return readResponse();
    }

  private:
    /** Read one Content-Length-framed response off the connection. */
    bool readResponse()
    {
        char chunk[16384];
        for (;;) {
            size_t headerEnd = buf_.find("\r\n\r\n");
            if (headerEnd != std::string::npos) {
                size_t clPos = buf_.find("Content-Length:");
                if (clPos == std::string::npos ||
                    clPos > headerEnd)
                    return false;
                size_t len = std::stoul(buf_.substr(clPos + 15));
                size_t total = headerEnd + 4 + len;
                if (buf_.size() >= total) {
                    bool ok = buf_.rfind("HTTP/1.1 200", 0) == 0;
                    buf_.erase(0, total);
                    return ok;
                }
            }
            ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
            if (n <= 0)
                return false;
            buf_.append(chunk, static_cast<size_t>(n));
        }
    }

    int fd_ = -1;
    std::string buf_;
};

/** An evaluate body for the DLRM-A / ZionEX triple with the given
 *  base-dense strategy (distinct strategies -> distinct cache keys). */
std::string
evaluateBody(const std::string &base_dense)
{
    JsonValue model;
    model.set("type", "zoo");
    model.set("name", "DLRM-A");

    JsonValue strategies;
    strategies.set("sparse_embedding", "(MP)");
    strategies.set("base_dense", base_dense);
    JsonValue task;
    task.set("task", "pre-training");
    task.set("strategies", std::move(strategies));

    JsonValue body;
    body.set("model", std::move(model));
    body.set("system", toJson(hw_zoo::dlrmTrainingSystem()));
    body.set("task", std::move(task));
    return body.dump(2);
}

double
percentile(std::vector<double> &sorted, double p)
{
    if (sorted.empty())
        return 0.0;
    size_t idx = static_cast<size_t>(p * (sorted.size() - 1) + 0.5);
    return sorted[std::min(idx, sorted.size() - 1)];
}

struct LoopResult
{
    double rps = 0;
    double p50 = 0; ///< Seconds.
    double p99 = 0; ///< Seconds.
};

/** Run @p requests_per_client closed-loop keep-alive requests on each
 *  of kClients threads, timing every request. */
LoopResult
closedLoop(int port, const std::vector<std::string> &bodies,
           int requests_per_client, std::atomic<long> &failures)
{
    std::mutex latMutex;
    std::vector<double> latencies;
    latencies.reserve(static_cast<size_t>(kClients) *
                      requests_per_client);

    WallTimer timer;
    std::vector<std::thread> clients;
    for (int c = 0; c < kClients; ++c) {
        clients.emplace_back([&, c] {
            BenchClient client(port);
            if (!client.connected()) {
                failures += requests_per_client;
                return;
            }
            std::vector<double> mine;
            mine.reserve(requests_per_client);
            for (int r = 0; r < requests_per_client; ++r) {
                const std::string &body =
                    bodies[(c + r) % bodies.size()];
                auto t0 = std::chrono::steady_clock::now();
                if (!client.post("/v1/evaluate", body))
                    ++failures;
                mine.push_back(std::chrono::duration<double>(
                                   std::chrono::steady_clock::now() -
                                   t0)
                                   .count());
            }
            std::lock_guard<std::mutex> lock(latMutex);
            latencies.insert(latencies.end(), mine.begin(),
                             mine.end());
        });
    }
    for (std::thread &t : clients)
        t.join();
    double seconds = timer.seconds();

    LoopResult result;
    result.rps = kClients * requests_per_client / seconds;
    std::sort(latencies.begin(), latencies.end());
    result.p50 = percentile(latencies, 0.50);
    result.p99 = percentile(latencies, 0.99);
    return result;
}

} // namespace

int
main(int argc, char **argv)
{
    BenchReporter reporter("serve_throughput", argc, argv);
    banner("serve throughput — closed-loop keep-alive clients vs. a "
           "resident evaluation service",
           "interactive DSE only pays off if many users share one "
           "warm model (§IV, >100x vs. profiling)");

    ServiceOptions sopts;
    sopts.jobs = reporter.jobs();
    EvalService service(sopts);
    HttpServerOptions hopts;
    hopts.port = 0;
    hopts.workers = kClients;
    // The bench holds connections for thousands of requests; don't
    // let the anti-starvation request cap recycle them mid-phase.
    hopts.keepAliveMaxRequests = 1L << 30;
    hopts.classifier = [&service](const HttpRequest &r) {
        return service.classify(r);
    };
    HttpServer server(
        [&service](const HttpRequest &r) { return service.handle(r); },
        hopts);
    service.setTransportStatsProvider(
        [&server] { return server.stats(); });
    server.start();
    std::atomic<long> failures{0};

    // Phase 1: cold request — what every CLI invocation pays.
    std::string triple = evaluateBody("(TP, DDP)");
    {
        BenchClient cold(server.port());
        WallTimer timer;
        if (!cold.connected() ||
            !cold.post("/v1/evaluate", triple))
            ++failures;
        double cold_seconds = timer.seconds();
        std::cout << strfmt("cold request (cache miss): %s\n",
                            formatTime(cold_seconds).c_str());
        reporter.record("cold_latency", cold_seconds, "seconds");
    }

    // Phase 2: the resident-service case — one hot triple.
    LoopResult cached = closedLoop(server.port(), {triple},
                                   kCachedRequests, failures);
    std::cout << strfmt(
        "cached: %d clients x %d reqs -> %.0f req/s "
        "(p50 %s, p99 %s)\n",
        kClients, kCachedRequests, cached.rps,
        formatTime(cached.p50).c_str(),
        formatTime(cached.p99).c_str());
    reporter.record("cached_rps", cached.rps, "requests/s");
    reporter.record("cached_p50", cached.p50, "seconds");
    reporter.record("cached_p99", cached.p99, "seconds");

    // Phase 3: DSE-style traffic — rotating distinct plans.
    std::vector<std::string> mixed;
    for (const char *plan : {"(DDP)", "(FSDP)", "(TP, DDP)",
                             "(FSDP, DDP)", "(TP, FSDP)", "(MP)",
                             "(DDP, FSDP)", "(TP)"})
        mixed.push_back(evaluateBody(plan));
    LoopResult mixedRes = closedLoop(server.port(), mixed,
                                     kMixedRequests, failures);
    std::cout << strfmt(
        "mixed plans: %d clients x %d reqs over %zu plans -> %.0f "
        "req/s (p50 %s, p99 %s)\n",
        kClients, kMixedRequests, mixed.size(), mixedRes.rps,
        formatTime(mixedRes.p50).c_str(),
        formatTime(mixedRes.p99).c_str());
    reporter.record("mixed_rps", mixedRes.rps, "requests/s");
    reporter.record("mixed_p50", mixedRes.p50, "seconds");
    reporter.record("mixed_p99", mixedRes.p99, "seconds");

    EngineCounters counters = service.engine().counters();
    HttpServerStats transport = server.stats();
    std::cout << strfmt(
        "engine: %ld evaluations, %ld cache hits, %ld batches | "
        "transport: %ld conns, %ld reuses\n",
        counters.lifetime.evaluations, counters.lifetime.cacheHits,
        counters.batches, transport.accepted,
        transport.keepAliveReuses);
    reporter.record("evaluations",
                    static_cast<double>(counters.lifetime.evaluations),
                    "count");
    reporter.record("cache_hits",
                    static_cast<double>(counters.lifetime.cacheHits),
                    "count");
    server.stop();

    if (failures.load() != 0) {
        std::cerr << "error: " << failures.load()
                  << " requests failed\n";
        return 1;
    }
    std::cout << "all requests succeeded; responses served from one "
                 "shared engine over keep-alive connections\n";
    return 0;
}
