/**
 * @file
 * Closed-loop client throughput bench for the serving layer: starts
 * an in-process `madmax serve` stack (EvalService + HttpServer on a
 * free loopback port), then drives it with closed-loop clients (each
 * client issues its next request only after the previous response
 * lands — the standard interactive-user model).
 *
 * Three phases:
 *   cold    one request against an empty memo cache (startup +
 *           full-evaluation latency a CLI user pays on every single
 *           invocation);
 *   cached  C clients hammering one (model, system, task) triple —
 *           every request after the first is a shared-cache hit, the
 *           resident-service case the paper's >100x-vs-profiling
 *           speedup needs to reach many users;
 *   mixed   clients rotating through distinct parallelization plans —
 *           each new plan is a full evaluation, re-creating the
 *           design-space-exploration traffic mix.
 *
 * Usage: serve_throughput [--jobs N] [--json BENCH_serve_throughput.json]
 */

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hh"
#include "config/config_loader.hh"
#include "hw/hw_zoo.hh"
#include "serve/http_server.hh"
#include "serve/service.hh"
#include "util/strfmt.hh"

using namespace madmax;
using namespace madmax::bench;

namespace
{

constexpr int kClients = 4;
constexpr int kCachedRequests = 50; ///< Per client, cached phase.
constexpr int kMixedRequests = 16;  ///< Per client, mixed phase.

/** Minimal closed-loop HTTP client: one request per connection. */
std::string
httpPost(int port, const std::string &path, const std::string &body)
{
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        return "";
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<uint16_t>(port));
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        ::close(fd);
        return "";
    }
    std::string raw = "POST " + path + " HTTP/1.1\r\n"
        "Host: localhost\r\nContent-Type: application/json\r\n"
        "Content-Length: " + std::to_string(body.size()) + "\r\n\r\n" +
        body;
    size_t off = 0;
    while (off < raw.size()) {
        ssize_t n = ::send(fd, raw.data() + off, raw.size() - off,
                           MSG_NOSIGNAL);
        if (n <= 0)
            break;
        off += static_cast<size_t>(n);
    }
    std::string resp;
    char chunk[4096];
    ssize_t n;
    while ((n = ::recv(fd, chunk, sizeof(chunk), 0)) > 0)
        resp.append(chunk, static_cast<size_t>(n));
    ::close(fd);
    return resp;
}

bool
isOk(const std::string &response)
{
    return response.rfind("HTTP/1.1 200", 0) == 0;
}

/** An evaluate body for the DLRM-A / ZionEX triple with the given
 *  base-dense strategy (distinct strategies -> distinct cache keys). */
std::string
evaluateBody(const std::string &base_dense)
{
    JsonValue model;
    model.set("type", "zoo");
    model.set("name", "DLRM-A");

    JsonValue strategies;
    strategies.set("sparse_embedding", "(MP)");
    strategies.set("base_dense", base_dense);
    JsonValue task;
    task.set("task", "pre-training");
    task.set("strategies", std::move(strategies));

    JsonValue body;
    body.set("model", std::move(model));
    body.set("system", toJson(hw_zoo::dlrmTrainingSystem()));
    body.set("task", std::move(task));
    return body.dump(2);
}

/** Run @p requests_per_client closed-loop requests on each of
 *  kClients threads; returns achieved requests/second. */
double
closedLoop(int port, const std::vector<std::string> &bodies,
           int requests_per_client, std::atomic<long> &failures)
{
    WallTimer timer;
    std::vector<std::thread> clients;
    for (int c = 0; c < kClients; ++c) {
        clients.emplace_back([&, c] {
            for (int r = 0; r < requests_per_client; ++r) {
                const std::string &body =
                    bodies[(c + r) % bodies.size()];
                if (!isOk(httpPost(port, "/v1/evaluate", body)))
                    ++failures;
            }
        });
    }
    for (std::thread &t : clients)
        t.join();
    double seconds = timer.seconds();
    return kClients * requests_per_client / seconds;
}

} // namespace

int
main(int argc, char **argv)
{
    BenchReporter reporter("serve_throughput", argc, argv);
    banner("serve throughput — closed-loop clients vs. a resident "
           "evaluation service",
           "interactive DSE only pays off if many users share one "
           "warm model (§IV, >100x vs. profiling)");

    ServiceOptions sopts;
    sopts.jobs = reporter.jobs();
    EvalService service(sopts);
    HttpServerOptions hopts;
    hopts.port = 0;
    hopts.workers = kClients;
    HttpServer server(
        [&service](const HttpRequest &r) { return service.handle(r); },
        hopts);
    service.setTransportStatsProvider(
        [&server] { return server.stats(); });
    server.start();
    std::atomic<long> failures{0};

    // Phase 1: cold request — what every CLI invocation pays.
    std::string triple = evaluateBody("(TP, DDP)");
    WallTimer cold;
    if (!isOk(httpPost(server.port(), "/v1/evaluate", triple)))
        ++failures;
    double cold_seconds = cold.seconds();
    std::cout << strfmt("cold request (cache miss): %s\n",
                        formatTime(cold_seconds).c_str());
    reporter.record("cold_latency", cold_seconds, "seconds");

    // Phase 2: the resident-service case — one hot triple.
    double cached_rps = closedLoop(server.port(), {triple},
                                   kCachedRequests, failures);
    std::cout << strfmt(
        "cached: %d clients x %d reqs -> %.0f req/s (%s/req)\n",
        kClients, kCachedRequests, cached_rps,
        formatTime(kClients / cached_rps).c_str());
    reporter.record("cached_rps", cached_rps, "requests/s");
    reporter.record("cached_latency", kClients / cached_rps,
                    "seconds");

    // Phase 3: DSE-style traffic — rotating distinct plans.
    std::vector<std::string> mixed;
    for (const char *plan : {"(DDP)", "(FSDP)", "(TP, DDP)",
                             "(FSDP, DDP)", "(TP, FSDP)", "(MP)",
                             "(DDP, FSDP)", "(TP)"})
        mixed.push_back(evaluateBody(plan));
    double mixed_rps = closedLoop(server.port(), mixed, kMixedRequests,
                                  failures);
    std::cout << strfmt(
        "mixed plans: %d clients x %d reqs over %zu plans -> %.0f "
        "req/s\n",
        kClients, kMixedRequests, mixed.size(), mixed_rps);
    reporter.record("mixed_rps", mixed_rps, "requests/s");

    EngineCounters counters = service.engine().counters();
    std::cout << strfmt(
        "engine: %ld evaluations, %ld cache hits, %ld pruned\n",
        counters.lifetime.evaluations, counters.lifetime.cacheHits,
        counters.lifetime.pruned);
    reporter.record("evaluations",
                    static_cast<double>(counters.lifetime.evaluations),
                    "count");
    reporter.record("cache_hits",
                    static_cast<double>(counters.lifetime.cacheHits),
                    "count");
    server.stop();

    if (failures.load() != 0) {
        std::cerr << "error: " << failures.load()
                  << " requests failed\n";
        return 1;
    }
    std::cout << "all requests succeeded; responses served from one "
                 "shared engine\n";
    return 0;
}
