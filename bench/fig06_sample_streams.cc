/**
 * @file
 * Regenerates Fig. 6: sample generated GPU compute and communication
 * streams for the DLRM-Transformer example, with exposed
 * communication segments labeled.
 */

#include <iostream>

#include "bench_util.hh"
#include "core/perf_model.hh"
#include "hw/hw_zoo.hh"
#include "model/model_zoo.hh"
#include "trace/chrome_trace.hh"
#include "util/table.hh"

using namespace madmax;

int
main()
{
    bench::banner("Fig. 6: generated compute/communication streams",
                  "EMB_c_A2A is blocking (Transformer_Attn_0 needs its "
                  "result) and shows as exposed communication");

    ModelDesc model = model_zoo::dlrmATransformer();
    PerfModel madmax(hw_zoo::dlrmTrainingSystem());
    ParallelPlan plan;
    plan.set(LayerClass::SparseEmbedding, HierStrategy{Strategy::MP});
    plan.set(LayerClass::BaseDense, HierStrategy{Strategy::DDP});
    plan.set(LayerClass::Transformer, HierStrategy{Strategy::DDP});

    PerfReport r =
        madmax.evaluate(model, TaskSpec::preTraining(), plan);
    std::cout << r.summary() << "\n";
    std::cout << "streams ('#' compute, '=' blocking comm, "
                 "'-' non-blocking comm):\n\n";
    std::cout << asciiStreams(r.timeline, 76) << "\n";

    // Enumerate the exposed communication segments the figure labels.
    std::cout << "exposed communication segments:\n";
    AsciiTable table({"event", "start", "duration", "waiting compute"});
    for (const ScheduledEvent &se : r.timeline.events) {
        if (se.event.stream != StreamKind::Communication ||
            !se.event.blocking || se.event.duration <= 0.0) {
            continue;
        }
        // A blocking collective is exposed when the compute stream
        // has nothing scheduled over its interval.
        bool covered = false;
        for (const ScheduledEvent &other : r.timeline.events) {
            if (other.event.stream == StreamKind::Compute &&
                other.finish > se.start && other.start < se.finish &&
                other.event.duration > 0.0) {
                covered = true;
                break;
            }
        }
        if (!covered) {
            // The first dependent compute event.
            std::string waiter = "(iteration end)";
            for (const ScheduledEvent &other : r.timeline.events) {
                bool depends = false;
                for (int d : other.event.deps)
                    depends |= d == se.event.id;
                if (depends &&
                    other.event.stream == StreamKind::Compute) {
                    waiter = other.event.name;
                    break;
                }
            }
            table.addRow({se.event.name, formatTime(se.start),
                          formatTime(se.event.duration), waiter});
        }
    }
    table.print(std::cout);
    return 0;
}
