/**
 * @file
 * Regenerates Fig. 4: fleet-wide training characterization via the
 * synthetic-fleet substitute (see DESIGN.md): (a) GPU-cycle
 * categories, (b) communication overlap degree per workload family,
 * (c) communication-collective mix per family.
 */

#include <iostream>

#include "bench_util.hh"
#include "fleet/fleet_sim.hh"
#include "util/table.hh"

using namespace madmax;

int
main(int argc, char **argv)
{
    bench::BenchReporter reporter("fig04_fleet_characterization", argc,
                                  argv);
    bench::banner("Fig. 4: fleet-wide communication characterization",
                  "14~32% of GPU cycles are exposed communication; "
                  "DLRM ~50% comm overlapped vs LLM >65%; DLRM All2All-"
                  "heavy vs LLM AllReduce-heavy");

    EvalEngineOptions eo;
    eo.jobs = reporter.jobs();
    EvalEngine engine(eo);
    bench::WallTimer timer;
    FleetReport report =
        FleetSimulator::representativeFleet().run(&engine);
    reporter.record("fleet_run_seconds", timer.seconds(), "s");
    reporter.record("fleet_evaluations",
                    static_cast<double>(report.stats.evaluations),
                    "count");
    reporter.record("overall_compute_fraction", report.overall.compute,
                    "fraction");
    reporter.record("overall_exposed_comm_fraction",
                    report.overall.exposedComm, "fraction");

    std::cout << "\n(a) observable GPU-cycle categories\n";
    AsciiTable cycles({"workload", "compute", "exposed comm",
                       "exposed memcpy", "idle"});
    auto add_cycles = [&](const std::string &name,
                          const CycleBreakdown &b) {
        cycles.addRow({name, formatPercent(b.compute),
                       formatPercent(b.exposedComm),
                       formatPercent(b.exposedMemcpy),
                       formatPercent(b.idle)});
    };
    for (const auto &[family, b] : report.byFamily)
        add_cycles(family, b);
    add_cycles("overall", report.overall);
    cycles.print(std::cout);
    std::cout << strfmt("compute + exposed comm = %s of cycles "
                        "(paper: >82%%)\n",
                        formatPercent(report.overall.compute +
                                      report.overall.exposedComm)
                            .c_str());

    std::cout << "\n(b) communication overlapped with computation\n";
    AsciiTable overlap({"workload", "overlapped", "bar"});
    for (const auto &[family, frac] : report.overlapByFamily) {
        overlap.addRow({family, formatPercent(frac),
                        asciiBar(frac, 1.0, 30)});
    }
    overlap.print(std::cout);

    std::cout << "\n(c) communication-collective mix\n";
    AsciiTable mix({"workload", "collective", "share of comm cycles"});
    for (const auto &[family, shares] : report.collectiveMixByFamily) {
        for (const auto &[cat, share] : shares) {
            mix.addRow({family, toString(cat), formatPercent(share)});
        }
        mix.addSeparator();
    }
    mix.print(std::cout);
    return 0;
}
