/**
 * @file
 * Regenerates Fig. 19: the future-technologies scaling study —
 * improving compute, memory capacity/bandwidth, and intra-/inter-node
 * interconnect bandwidth by 10x separately and concurrently, for
 * DLRM-A and GPT-3, training and inference. Individual axes are
 * sub-linear; the joint upgrade is super-linear (Insight 10).
 */

#include <iostream>

#include "bench_util.hh"
#include "dse/sweep.hh"
#include "hw/hw_zoo.hh"
#include "model/model_zoo.hh"
#include "util/table.hh"

using namespace madmax;

int
main(int argc, char **argv)
{
    bench::BenchReporter reporter("fig19_future_scaling", argc, argv);
    bench::banner("Fig. 19: 10x hardware-capability scaling study",
                  "DLRM non-network single axes cap at ~1.64x train / "
                  "2.12x inference; GPT-3 favors compute; all-axes "
                  "scaling is super-linear");

    struct Case
    {
        const char *label;
        ModelDesc model;
        ClusterSpec cluster;
        TaskSpec task;
    };
    std::vector<Case> cases;
    cases.push_back({"(a) DLRM-A pre-training", model_zoo::dlrmA(),
                     hw_zoo::dlrmTrainingSystem(),
                     TaskSpec::preTraining()});
    cases.push_back({"(a) DLRM-A inference", model_zoo::dlrmA(),
                     hw_zoo::dlrmTrainingSystem(),
                     TaskSpec::inference()});
    cases.push_back({"(b) GPT-3 pre-training", model_zoo::gpt3(),
                     hw_zoo::llmTrainingSystem(),
                     TaskSpec::preTraining()});
    cases.push_back({"(b) GPT-3 inference", model_zoo::gpt3(),
                     hw_zoo::llmTrainingSystem(),
                     TaskSpec::inference()});

    EvalEngineOptions eo;
    eo.jobs = reporter.jobs();
    EvalEngine engine(eo);

    for (const Case &c : cases) {
        std::cout << "\n" << c.label << " (speedup at 10x):\n";
        PerfModel model(c.cluster);
        bench::WallTimer timer;
        std::vector<ScalingResult> results = hardwareScalingStudy(
            model, c.model, c.task, 10.0, allHwAxes(), &engine);
        reporter.record(std::string("scaling_study_seconds_") + c.label,
                        timer.seconds(), "s");

        AsciiTable table({"scaled capability", "speedup", "bar"});
        double best_single = 0.0, all_axes = 0.0;
        for (const ScalingResult &r : results) {
            table.addRow({toString(r.axis),
                          strfmt("%.2fx", r.speedup),
                          asciiBar(r.speedup, 12.0, 36)});
            reporter.record(std::string(c.label) + " " +
                                toString(r.axis),
                            r.speedup, "x");
            if (r.axis == HwAxis::All)
                all_axes = r.speedup;
            else
                best_single = std::max(best_single, r.speedup);
        }
        table.print(std::cout);
        std::cout << strfmt("best single axis %.2fx (sub-linear); all "
                            "axes %.2fx%s\n",
                            best_single, all_axes,
                            all_axes > best_single
                                ? " (joint improvement wins)"
                                : "");
    }
    return 0;
}
