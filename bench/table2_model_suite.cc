/**
 * @file
 * Regenerates Table II: the target model suite and its key
 * model-level characteristics, comparing our reconstructed model zoo
 * against the published aggregates.
 */

#include <iostream>

#include "bench_util.hh"
#include "model/model_zoo.hh"
#include "util/table.hh"

using namespace madmax;

namespace
{

struct PaperRow
{
    double params;       ///< <= 0 when the paper leaves it blank.
    double flopsPerTok;
    double lookupBytes;  ///< <= 0 when blank.
};

const PaperRow kPaper[] = {
    {793e9, 638e6, 22.61e6},  {795e9, 2.6e9, 13.19e6},
    {-1, 957e6, 22.61e6},     {332e9, 60e6, 49.2e3},
    {333e9, 2.1e9, 32.8e3},   {-1, 90e6, 42.8e3},
    {175e9, 350e9, -1},       {65.2e9, 130.4e9, -1},
    {70e9, 140e9, -1},        {1.8e12, 550e9, -1},
};

} // namespace

int
main()
{
    bench::banner("Table II: target models and key characteristics",
                  "parameter counts, FLOPs/sample(token), sparse lookup "
                  "bytes, batch sizes, context lengths");

    AsciiTable table({"model", "# params", "(paper)", "FLOPs/tok",
                      "(paper)", "lookup B/sample", "(paper)",
                      "global batch", "ctx"});

    std::vector<ModelDesc> suite = model_zoo::tableIISuite();
    for (size_t i = 0; i < suite.size(); ++i) {
        const ModelDesc &m = suite[i];
        ModelTotals t = m.graph.totals();
        const PaperRow &p = kPaper[i];
        table.addRow({
            m.name,
            formatCount(t.paramCount),
            p.params > 0 ? formatCount(p.params) : "-",
            formatCount(m.forwardFlopsPerToken()),
            formatCount(p.flopsPerTok),
            t.lookupBytesPerSample > 0
                ? formatBytes(t.lookupBytesPerSample)
                : "-",
            p.lookupBytes > 0 ? formatBytes(p.lookupBytes) : "-",
            formatCount(static_cast<double>(m.globalBatchSize)),
            std::to_string(m.contextLength),
        });
    }
    table.print(std::cout);
    return 0;
}
