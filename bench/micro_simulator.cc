/**
 * @file
 * Google-benchmark micro-benchmarks of the simulator itself: how fast
 * MAD-Max evaluates mappings and sweeps design spaces. This is the
 * "agile exploration" property the paper contrasts with multi-week
 * GPU-cluster experiments (§V quotes ~64K A100-hours for the DLRM
 * validation runs alone).
 */

#include <benchmark/benchmark.h>

#include "config/json.hh"
#include "core/strategy_explorer.hh"
#include "hw/hw_zoo.hh"
#include "model/model_zoo.hh"

using namespace madmax;

namespace
{

PerfModelOptions
slimOptions()
{
    PerfModelOptions opts;
    opts.keepTimeline = false;
    return opts;
}

void
BM_EvaluateDlrmA(benchmark::State &state)
{
    ModelDesc model = model_zoo::dlrmA();
    PerfModel madmax(hw_zoo::dlrmTrainingSystem(), slimOptions());
    ParallelPlan plan;
    plan.set(LayerClass::BaseDense,
             HierStrategy{Strategy::TP, Strategy::DDP});
    for (auto _ : state) {
        PerfReport r =
            madmax.evaluate(model, TaskSpec::preTraining(), plan);
        benchmark::DoNotOptimize(r.iterationTime);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EvaluateDlrmA);

void
BM_EvaluateGpt3(benchmark::State &state)
{
    // 193 layers, ~1000 trace events per iteration.
    ModelDesc model = model_zoo::gpt3();
    PerfModel madmax(hw_zoo::llmTrainingSystem(), slimOptions());
    ParallelPlan plan = ParallelPlan::fsdpBaseline();
    for (auto _ : state) {
        PerfReport r =
            madmax.evaluate(model, TaskSpec::preTraining(), plan);
        benchmark::DoNotOptimize(r.iterationTime);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EvaluateGpt3);

void
BM_ExploreDlrmStrategySpace(benchmark::State &state)
{
    // Full 16-plan design-space exploration (Fig. 11).
    ModelDesc model = model_zoo::dlrmA();
    PerfModel madmax(hw_zoo::dlrmTrainingSystem(), slimOptions());
    StrategyExplorer explorer(madmax);
    for (auto _ : state) {
        auto exploration =
            explorer.explore(model, TaskSpec::preTraining());
        benchmark::DoNotOptimize(exploration.results.size());
    }
    state.SetItemsProcessed(state.iterations() * 16);
}
BENCHMARK(BM_ExploreDlrmStrategySpace);

void
BM_ExploreDlrmStrategySpaceUncached(benchmark::State &state)
{
    // Same sweep through a non-memoizing engine: the raw evaluation
    // cost the EvalEngine cache saves on repeated searches.
    ModelDesc model = model_zoo::dlrmA();
    PerfModel madmax(hw_zoo::dlrmTrainingSystem(), slimOptions());
    EvalEngineOptions eo;
    eo.memoize = false;
    EvalEngine engine(eo);
    StrategyExplorer explorer(madmax, &engine);
    for (auto _ : state) {
        auto exploration =
            explorer.explore(model, TaskSpec::preTraining());
        benchmark::DoNotOptimize(exploration.results.size());
    }
    state.SetItemsProcessed(state.iterations() * 16);
}
BENCHMARK(BM_ExploreDlrmStrategySpaceUncached);

void
BM_CollectiveModel(benchmark::State &state)
{
    CollectiveModel collectives(hw_zoo::llmTrainingSystem());
    double bytes = 1.0e9;
    for (auto _ : state) {
        double t = collectives.time(Collective::AllReduce,
                                    CommScope::Global, bytes);
        benchmark::DoNotOptimize(t);
        bytes = bytes < 2e9 ? bytes + 1.0 : 1.0e9;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CollectiveModel);

void
BM_MemoryModel(benchmark::State &state)
{
    ModelDesc model = model_zoo::llama65b();
    MemoryModel memory;
    ClusterSpec cluster = hw_zoo::llmTrainingSystem();
    ParallelPlan plan = ParallelPlan::fsdpBaseline();
    for (auto _ : state) {
        MemoryFootprint fp = memory.evaluate(
            model, TaskSpec::preTraining(), plan, cluster);
        benchmark::DoNotOptimize(fp.total());
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MemoryModel);

void
BM_JsonParseClusterConfig(benchmark::State &state)
{
    const std::string doc = R"json({
        "name": "bench-cluster",
        "device": {"name": "A100", "peak_tflops_16": 312,
                   "hbm_gib": 40, "hbm_gbps": 1600,
                   "intra_node_gbps": 300, "inter_node_gbps": 25},
        "devices_per_node": 8, "num_nodes": 16
    })json";
    for (auto _ : state) {
        JsonValue v = JsonValue::parse(doc);
        benchmark::DoNotOptimize(v.size());
    }
    state.SetBytesProcessed(
        static_cast<int64_t>(state.iterations() * doc.size()));
}
BENCHMARK(BM_JsonParseClusterConfig);

} // namespace

BENCHMARK_MAIN();
