/**
 * @file
 * Shared helpers for the per-table/per-figure bench binaries. Every
 * bench regenerates one table or figure from the paper's evaluation
 * and prints the corresponding rows/series; EXPERIMENTS.md records
 * paper-vs-measured for each.
 */

#ifndef MADMAX_BENCH_BENCH_UTIL_HH
#define MADMAX_BENCH_BENCH_UTIL_HH

#include <iostream>
#include <string>

#include "util/strfmt.hh"

namespace madmax::bench
{

/** Print a figure/table banner with the paper reference. */
inline void
banner(const std::string &what, const std::string &claim)
{
    std::cout << std::string(72, '=') << "\n" << what << "\n";
    if (!claim.empty())
        std::cout << "paper: " << claim << "\n";
    std::cout << std::string(72, '=') << "\n";
}

/** Accuracy of a model estimate vs. a measured value, as the paper
 *  reports it (100% minus relative error). */
inline std::string
accuracy(double ours, double reference)
{
    if (reference == 0.0)
        return "n/a";
    double acc = 1.0 - std::abs(ours - reference) / std::abs(reference);
    return strfmt("%.2f%%", acc * 100.0);
}

} // namespace madmax::bench

#endif // MADMAX_BENCH_BENCH_UTIL_HH
