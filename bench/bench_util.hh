/**
 * @file
 * Shared helpers for the per-table/per-figure bench binaries. Every
 * bench regenerates one table or figure from the paper's evaluation
 * and prints the corresponding rows/series; EXPERIMENTS.md records
 * paper-vs-measured for each.
 *
 * Benches accept three optional flags, parsed by BenchReporter:
 *   --json PATH      write this run's machine-readable timing/
 *                    throughput records to PATH as a JSON document,
 *                    replacing any previous contents (the perf
 *                    trajectory's BENCH_*.json files);
 *   --jobs N         EvalEngine parallelism for benches that evaluate
 *                    through the engine (0 = one thread per core);
 *   --strategy NAME  dse search strategy for the ParetoEngine-backed
 *                    figure benches (default "exhaustive", which
 *                    reproduces the historical sweeps byte for byte).
 */

#ifndef MADMAX_BENCH_BENCH_UTIL_HH
#define MADMAX_BENCH_BENCH_UTIL_HH

#include <chrono>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>

#include "config/json.hh"
#include "util/strfmt.hh"

namespace madmax::bench
{

/** Print a figure/table banner with the paper reference. */
inline void
banner(const std::string &what, const std::string &claim)
{
    std::cout << std::string(72, '=') << "\n" << what << "\n";
    if (!claim.empty())
        std::cout << "paper: " << claim << "\n";
    std::cout << std::string(72, '=') << "\n";
}

/** Accuracy of a model estimate vs. a measured value, as the paper
 *  reports it (100% minus relative error). */
inline std::string
accuracy(double ours, double reference)
{
    if (reference == 0.0)
        return "n/a";
    double acc = 1.0 - std::abs(ours - reference) / std::abs(reference);
    return strfmt("%.2f%%", acc * 100.0);
}

/** Monotonic stopwatch for wall-clock records. */
class WallTimer
{
  public:
    WallTimer() : start_(std::chrono::steady_clock::now()) {}

    void reset() { start_ = std::chrono::steady_clock::now(); }

    /** Seconds since construction / last reset. */
    double seconds() const
    {
        return std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - start_)
            .count();
    }

  private:
    std::chrono::steady_clock::time_point start_;
};

/**
 * Machine-readable bench output. Parses --json PATH and --jobs N from
 * argv; record() calls accumulate named (value, unit) entries, and
 * write() (also invoked by the destructor) dumps
 *
 *   {"bench": "<name>", "jobs": N,
 *    "records": [{"name": ..., "value": ..., "unit": ...}, ...]}
 *
 * to PATH. Without --json, record() still accumulates but nothing is
 * written, so benches can call it unconditionally.
 */
class BenchReporter
{
  public:
    BenchReporter(const std::string &bench_name, int argc, char **argv)
        : name_(bench_name)
    {
        for (int i = 1; i < argc; ++i) {
            std::string arg = argv[i];
            if (arg == "--json" && i + 1 < argc) {
                path_ = argv[++i];
            } else if (arg == "--jobs" && i + 1 < argc) {
                try {
                    jobs_ = std::stoi(argv[++i]);
                } catch (const std::exception &) {
                    jobs_ = -1;
                }
                if (jobs_ < 0) {
                    // (Benches have no try/catch around main, so a
                    // negative value must not reach EvalEngine's
                    // throwing validation either.)
                    std::cerr << "error: --jobs needs a non-negative "
                                 "integer, got '"
                              << argv[i] << "'\n";
                    std::exit(1);
                }
                jobsSet_ = true;
            } else if (arg == "--strategy" && i + 1 < argc) {
                strategy_ = argv[++i];
            } else {
                // Benches have no try/catch around main; exit with a
                // usage error instead of an uncaught-exception abort.
                std::cerr << "error: unknown or incomplete flag '"
                          << arg
                          << "' (supported: --json PATH, --jobs N, "
                             "--strategy NAME)\n";
                std::exit(1);
            }
        }
        if (!path_.empty()) {
            // Fail on an unwritable path now, not in the destructor
            // (which must swallow errors) after minutes of bench
            // work. Probe in append mode so an existing record file
            // survives if this run dies before write().
            std::ofstream probe(path_, std::ios::app);
            if (!probe) {
                std::cerr << "error: cannot write --json file: "
                          << path_ << "\n";
                std::exit(1);
            }
        }
    }

    ~BenchReporter()
    {
        try {
            write();
        } catch (...) {
            // Destructors must not throw; an unwritable path was
            // already reported by an explicit write() if any.
        }
    }

    /** EvalEngine parallelism requested via --jobs (default 1). */
    int jobs() const { return jobs_; }

    /** True if --jobs was given explicitly (vs. the default). */
    bool jobsSpecified() const { return jobsSet_; }

    /** dse search strategy requested via --strategy. */
    const std::string &strategy() const { return strategy_; }

    bool jsonEnabled() const { return !path_.empty(); }

    void record(const std::string &record_name, double value,
                const std::string &unit)
    {
        JsonValue entry;
        entry.set("name", record_name);
        entry.set("value", value);
        entry.set("unit", unit);
        records_.append(std::move(entry));
    }

    /** Attach a free-form JSON payload under @p record_name. */
    void record(const std::string &record_name, JsonValue payload)
    {
        JsonValue entry;
        entry.set("name", record_name);
        entry.set("value", std::move(payload));
        records_.append(std::move(entry));
    }

    void write()
    {
        if (path_.empty() || written_)
            return;
        JsonValue doc;
        doc.set("bench", name_);
        doc.set("jobs", jobs_);
        doc.set("records", records_);
        std::ofstream out(path_);
        if (!out) {
            // Path was probed at construction; this is a late failure
            // (e.g. disk full). Report without throwing — write() is
            // also reached from the destructor.
            std::cerr << "error: cannot write --json file: " << path_
                      << "\n";
            return;
        }
        out << doc.dump(2) << "\n";
        written_ = true;
        std::cout << "wrote " << path_ << "\n";
    }

  private:
    std::string name_;
    std::string path_;
    std::string strategy_ = "exhaustive";
    int jobs_ = 1;
    bool jobsSet_ = false;
    bool written_ = false;
    JsonValue records_ = JsonValue(JsonValue::Array{});
};

} // namespace madmax::bench

#endif // MADMAX_BENCH_BENCH_UTIL_HH
