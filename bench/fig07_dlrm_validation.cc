/**
 * @file
 * Regenerates Fig. 7: DLRM-A serialized and overlapped execution on
 * 8-GPU (single-node) and 128-GPU ZionEX platforms, checking layer
 * execution and collective volumes (serialized), latency-hiding
 * (overlapped), and network scaling across node counts.
 */

#include <iostream>

#include "bench_util.hh"
#include "core/perf_model.hh"
#include "core/validation.hh"
#include "hw/hw_zoo.hh"
#include "model/model_zoo.hh"
#include "util/table.hh"

using namespace madmax;

int
main()
{
    bench::banner("Fig. 7: DLRM-A serialized & overlapped validation, "
                  "8- vs 128-GPU",
                  "128-GPU measured: 67.40 ms serialized; modeled "
                  "65.30 ms");

    ParallelPlan plan;
    plan.set(LayerClass::SparseEmbedding, HierStrategy{Strategy::MP});
    plan.set(LayerClass::BaseDense,
             HierStrategy{Strategy::TP, Strategy::DDP});

    // Single-node runs keep the same per-device batch share.
    ModelDesc model128 = model_zoo::dlrmA();
    ModelDesc model8 = model_zoo::dlrmA();
    model8.globalBatchSize = model128.globalBatchSize / 16;

    AsciiTable table({"system", "mode", "total", "EmbLookup", "GEMM",
                      "All2All", "AllReduce", "exposed comm"});
    for (auto [nodes, model] :
         {std::pair<int, const ModelDesc *>{1, &model8},
          {16, &model128}}) {
        ClusterSpec cluster =
            hw_zoo::dlrmTrainingSystem().withNumNodes(nodes);
        PerfModel madmax(cluster);
        PerfReport r =
            madmax.evaluate(*model, TaskSpec::preTraining(), plan);
        auto get = [&](EventCategory cat) {
            auto it = r.serializedBreakdown.find(cat);
            return it == r.serializedBreakdown.end() ? 0.0 : it->second;
        };
        std::string sys = strfmt("%d-GPU", cluster.numDevices());
        table.addRow({sys, "serialized", formatTime(r.serializedTime),
                      formatTime(get(EventCategory::EmbeddingLookup)),
                      formatTime(get(EventCategory::Gemm)),
                      formatTime(get(EventCategory::All2All)),
                      formatTime(get(EventCategory::AllReduce)), "-"});
        table.addRow({sys, "overlapped", formatTime(r.iterationTime),
                      "-", "-", "-", "-",
                      formatTime(r.exposedCommTime)});
        table.addSeparator();
    }
    table.print(std::cout);

    std::cout << "\nNetwork-scaling effect: the single-node system "
                 "rides NVLink for the All2All, the 16-node system is "
                 "bound by the RoCE fabric (Effective All2All BW = "
                 "slowest interconnect, SIV-C).\n";

    // Per-segment validation against the published 128-GPU
    // measurements, via the library's validation API.
    PerfModel madmax(hw_zoo::dlrmTrainingSystem());
    PerfReport r =
        madmax.evaluate(model128, TaskSpec::preTraining(), plan);
    MeasuredReference ref;
    ref.name = "DLRM-A, 128 x A100 ZionEX (Table I)";
    ref.iterationTime = 0.0562;    // Implied by 67.40 ms serialized
                                   // at 82.37% exposure.
    ref.exposedFraction = 0.8237;
    std::cout << "\nvalidation vs published measurements ("
              << ref.name << "):\n"
              << validate(r, ref).toString();
    return 0;
}
