/**
 * @file
 * Regenerates Fig. 13: pareto curves of parallelization strategies
 * for the DLRM-A variants — per-device memory vs. throughput — for
 * (a) pre-training and (b) inference. During inference the MoE
 * variant overtakes the transformer variant (its expert compute is
 * sparse while the expensive gradient routing disappears).
 */

#include <iostream>

#include "bench_util.hh"
#include "core/strategy_explorer.hh"
#include "dse/pareto.hh"
#include "hw/hw_zoo.hh"
#include "model/model_zoo.hh"
#include "util/table.hh"

using namespace madmax;

int
main()
{
    bench::banner("Fig. 13: memory-vs-throughput pareto for DLRM-A "
                  "variants",
                  "higher memory capacity buys throughput; MoE beats "
                  "transformer at inference");

    PerfModel madmax(hw_zoo::dlrmTrainingSystem());
    StrategyExplorer explorer(madmax);

    std::vector<ModelDesc> variants;
    variants.push_back(model_zoo::dlrmA());
    variants.push_back(model_zoo::dlrmATransformer());
    variants.push_back(model_zoo::dlrmAMoe());

    for (TaskSpec task : {TaskSpec::preTraining(), TaskSpec::inference()}) {
        std::cout << "\n(" << task.toString() << ")\n";
        AsciiTable table({"model", "plan (pareto-optimal)",
                          "mem/device", "throughput"});
        std::map<std::string, double> best_tp;
        for (const ModelDesc &model : variants) {
            std::vector<ExplorationResult> results =
                explorer.explore(model, task).results;
            std::vector<ParetoPoint> pts;
            for (size_t i = 0; i < results.size(); ++i) {
                if (!results[i].report.valid)
                    continue;
                pts.push_back(
                    ParetoPoint{results[i].report.memory.total(),
                                results[i].report.throughput(), i});
            }
            for (size_t idx : paretoFrontier(pts)) {
                const ExplorationResult &r = results[pts[idx].tag];
                table.addRow(
                    {model.name, r.plan.toString(),
                     formatBytes(r.report.memory.total()),
                     formatCount(r.report.throughput()) + "/s"});
                best_tp[model.name] = std::max(
                    best_tp[model.name], r.report.throughput());
            }
            table.addSeparator();
        }
        table.print(std::cout);

        if (task.kind == TaskKind::Inference) {
            std::cout << strfmt(
                "MoE/transformer inference throughput ratio: %.2fx "
                "(paper: MoE more efficient at inference)\n",
                best_tp["DLRM-A-MoE"] / best_tp["DLRM-A-Transformer"]);
        } else {
            std::cout << strfmt(
                "transformer and MoE variants trail the base model at "
                "pre-training (%.2fx / %.2fx of base)\n",
                best_tp["DLRM-A-Transformer"] / best_tp["DLRM-A"],
                best_tp["DLRM-A-MoE"] / best_tp["DLRM-A"]);
        }
    }
    return 0;
}
