/**
 * @file
 * Regenerates Fig. 13: pareto curves of parallelization strategies
 * for the DLRM-A variants — per-device memory vs. throughput — for
 * (a) pre-training and (b) inference. During inference the MoE
 * variant overtakes the transformer variant (its expert compute is
 * sparse while the expensive gradient routing disappears).
 *
 * Runs on the ParetoEngine over a single hardware point (the DLRM
 * training system), so the joint space degenerates to the plan space;
 * the default --strategy exhaustive reproduces the historical
 * explore() sweep byte for byte, while the guided strategies
 * (--strategy annealing|genetic|coordinate-descent) trade frontier
 * completeness for a budgeted search.
 */

#include <algorithm>
#include <iostream>
#include <map>

#include "bench_util.hh"
#include "dse/pareto.hh"
#include "dse/pareto_engine.hh"
#include "hw/hw_zoo.hh"
#include "model/model_zoo.hh"
#include "util/table.hh"

using namespace madmax;

int
main(int argc, char **argv)
{
    bench::BenchReporter reporter("fig13_pareto_variants", argc, argv);
    bench::banner("Fig. 13: memory-vs-throughput pareto for DLRM-A "
                  "variants",
                  "higher memory capacity buys throughput; MoE beats "
                  "transformer at inference");

    EvalEngineOptions engine_opts;
    engine_opts.jobs = reporter.jobs();
    EvalEngine engine(engine_opts);
    ParetoEngine pareto(
        {makeHardwarePoint(hw_zoo::dlrmTrainingSystem())}, &engine);
    ParetoOptions opts;
    opts.strategy = reporter.strategy();
    // The FSDP baseline is not part of the enumerated plan space; the
    // historical sweep never plotted it, so keep it out here too.
    opts.includeBaselines = false;

    std::vector<ModelDesc> variants;
    variants.push_back(model_zoo::dlrmA());
    variants.push_back(model_zoo::dlrmATransformer());
    variants.push_back(model_zoo::dlrmAMoe());

    long total_evals = 0;
    for (TaskSpec task : {TaskSpec::preTraining(), TaskSpec::inference()}) {
        std::cout << "\n(" << task.toString() << ")\n";
        AsciiTable table({"model", "plan (pareto-optimal)",
                          "mem/device", "throughput"});
        std::map<std::string, double> best_tp;
        for (const ModelDesc &model : variants) {
            ParetoFrontier frontier =
                pareto.explore(model, task, opts);
            total_evals += frontier.stats.evaluations;
            // Rank like explore() always has: valid plans first,
            // descending throughput, stable on ties — so the 2-D
            // frontier extraction below sees the exact historical
            // input order and its output is byte-identical.
            std::vector<ParetoCandidate> results =
                std::move(frontier.candidates);
            std::stable_sort(
                results.begin(), results.end(),
                [](const ParetoCandidate &a, const ParetoCandidate &b) {
                    if (a.report.valid != b.report.valid)
                        return a.report.valid;
                    return a.report.throughput() >
                        b.report.throughput();
                });
            std::vector<ParetoPoint> pts;
            for (size_t i = 0; i < results.size(); ++i) {
                if (!results[i].report.valid)
                    continue;
                pts.push_back(
                    ParetoPoint{results[i].report.memory.total(),
                                results[i].report.throughput(), i});
            }
            for (size_t idx : paretoFrontier(pts)) {
                const ParetoCandidate &r = results[pts[idx].tag];
                table.addRow(
                    {model.name, r.plan.toString(),
                     formatBytes(r.report.memory.total()),
                     formatCount(r.report.throughput()) + "/s"});
                best_tp[model.name] = std::max(
                    best_tp[model.name], r.report.throughput());
            }
            table.addSeparator();
        }
        table.print(std::cout);

        if (task.kind == TaskKind::Inference) {
            std::cout << strfmt(
                "MoE/transformer inference throughput ratio: %.2fx "
                "(paper: MoE more efficient at inference)\n",
                best_tp["DLRM-A-MoE"] / best_tp["DLRM-A-Transformer"]);
        } else {
            std::cout << strfmt(
                "transformer and MoE variants trail the base model at "
                "pre-training (%.2fx / %.2fx of base)\n",
                best_tp["DLRM-A-Transformer"] / best_tp["DLRM-A"],
                best_tp["DLRM-A-MoE"] / best_tp["DLRM-A"]);
        }
    }
    reporter.record("evaluations", static_cast<double>(total_evals),
                    "evals");
    return 0;
}
