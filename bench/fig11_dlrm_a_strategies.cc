/**
 * @file
 * Regenerates Fig. 11: DLRM-A pre-training throughput across dense-
 * layer parallelization strategies (embedding tables stay sharded),
 * normalized to the FSDP baseline. OOM plans render as gray bars.
 * Paper range: 0.19x for ((TP),(MP)) to 1.14x for ((TP,DDP),(MP)).
 */

#include <iostream>

#include "bench_util.hh"
#include "core/strategy_explorer.hh"
#include "hw/hw_zoo.hh"
#include "model/model_zoo.hh"
#include "util/table.hh"

using namespace madmax;

int
main()
{
    bench::banner("Fig. 11: DLRM-A dense-layer strategy sweep",
                  "0.19x ((TP),(MP)) to 1.14x ((TP,DDP),(MP)); "
                  "((DDP),(MP)) OOMs");

    ModelDesc model = model_zoo::dlrmA();
    PerfModel madmax(hw_zoo::dlrmTrainingSystem());
    StrategyExplorer explorer(madmax);
    TaskSpec task = TaskSpec::preTraining();
    double baseline = explorer.baseline(model, task).throughput();

    AsciiTable table({"(dense), (emb) strategy", "vs FSDP", "bar",
                      "mem/device"});
    for (const ExplorationResult &r :
         explorer.explore(model, task).results) {
        if (r.plan.strategyFor(LayerClass::SparseEmbedding) !=
            HierStrategy{Strategy::MP}) {
            continue; // Fig. 11 keeps tables in vanilla sharding.
        }
        std::string label =
            "(" + r.plan.strategyFor(LayerClass::BaseDense).toString() +
            ", (MP))";
        if (r.report.valid) {
            double rel = r.report.throughput() / baseline;
            table.addRow({label, strfmt("%.2fx", rel),
                          asciiBar(rel, 1.5, 30),
                          formatBytes(r.report.memory.total())});
        } else {
            table.addRow({label, "OOM", "(gray bar)",
                          formatBytes(r.report.memory.total())});
        }
    }
    table.print(std::cout);

    std::cout
        << "\nInsight 1: intra-node TP rides NVLink for partial "
           "sums; global TP pushes them over RoCE (large slowdown); "
           "full DDP replication of dense params + grads + optimizer "
           "states exceeds the A100-40GB budget.\n";
    return 0;
}
