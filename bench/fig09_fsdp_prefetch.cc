/**
 * @file
 * Regenerates Fig. 9: the optimized FSDP implementation with
 * prefetching — earlier layers' weight AllGathers overlap with later
 * layers' gradient compute. Validated point: 98% measured vs 93%
 * MAD-Max-predicted communication overlap on a LLaMA pre-training
 * run.
 */

#include <iostream>

#include "bench_util.hh"
#include "core/perf_model.hh"
#include "hw/hw_zoo.hh"
#include "model/model_zoo.hh"
#include "trace/chrome_trace.hh"
#include "util/table.hh"

using namespace madmax;

int
main()
{
    bench::banner("Fig. 9: FSDP prefetching validation (LLaMA)",
                  "98% measured vs 93% predicted communication overlap "
                  "with prefetching enabled");

    PerfModel madmax(hw_zoo::llmTrainingSystem());
    ModelDesc model = model_zoo::llama65b();

    AsciiTable table({"FSDP variant", "iteration", "comm overlap",
                      "exposed comm", "tokens/s"});
    PerfReport with, without;
    for (bool prefetch : {false, true}) {
        ParallelPlan plan = ParallelPlan::fsdpBaseline();
        plan.fsdpPrefetch = prefetch;
        PerfReport r =
            madmax.evaluate(model, TaskSpec::preTraining(), plan);
        (prefetch ? with : without) = r;
        table.addRow({prefetch ? "prefetch on (optimized)"
                                : "prefetch off",
                      formatTime(r.iterationTime),
                      formatPercent(r.overlapFraction()),
                      formatTime(r.exposedCommTime),
                      formatCount(r.tokensPerSecond())});
    }
    table.print(std::cout);

    std::cout << strfmt(
        "\nprefetch speedup: %.2fx; overlap %s -> %s "
        "(paper predicted 93%%, production measured 98%%)\n",
        with.throughput() / without.throughput(),
        formatPercent(without.overlapFraction()).c_str(),
        formatPercent(with.overlapFraction()).c_str());

    // Stream view of the first layers, showing AllGathers hidden
    // behind the preceding layer's compute.
    std::cout << "\nstream prefix with prefetching "
                 "('#' compute, '=' blocking comm):\n";
    Timeline prefix;
    for (const ScheduledEvent &se : with.timeline.events) {
        if (se.event.id < 24) {
            prefix.events.push_back(se);
            prefix.makespan = std::max(prefix.makespan, se.finish);
        }
    }
    std::cout << asciiStreams(prefix, 76);
    return 0;
}
