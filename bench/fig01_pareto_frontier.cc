/**
 * @file
 * Regenerates Fig. 1: the resource-performance pareto frontier of
 * DLRM training on public-cloud instances. The default FSDP mapping
 * defines the baseline frontier (blue); MAD-Max-identified mappings
 * improve on it (green).
 */

#include <iostream>
#include <set>

#include "bench_util.hh"
#include "core/strategy_explorer.hh"
#include "dse/pareto.hh"
#include "dse/sweep.hh"
#include "hw/hw_zoo.hh"
#include "model/model_zoo.hh"
#include "util/logging.hh"
#include "util/table.hh"

using namespace madmax;

int
main()
{
    bench::banner("Fig. 1: resource-performance pareto frontier "
                  "(DLRM on cloud instances)",
                  "MAD-Max improves on the default-mapping frontier");

    const ModelDesc model = model_zoo::dlrmA();
    const TaskSpec task = TaskSpec::preTraining();
    const double samples = 1e9;
    const double a100_peak = hw_zoo::a100_40().peakFlopsTensor16;

    struct Point
    {
        std::string label;
        double hours;    // Aggregate GPU-hours / 1B samples (A100-norm).
        double elapsed;  // Elapsed hours / 1B samples.
        bool tuned;
    };
    std::vector<Point> pts;

    for (const hw_zoo::CloudInstance &inst :
         hw_zoo::cloudInstances(16)) {
        PerfModel madmax(inst.cluster);
        StrategyExplorer explorer(madmax);
        PerfReport fsdp = explorer.baseline(model, task);
        if (fsdp.valid) {
            pts.push_back(Point{
                inst.name + " [FSDP]",
                normalizedGpuHours(fsdp, inst.cluster, samples,
                                   a100_peak),
                samples / fsdp.throughput() / 3600.0, false});
        }
        try {
            ExplorationResult best = explorer.best(model, task);
            pts.push_back(Point{
                inst.name + " [MAD-Max]",
                normalizedGpuHours(best.report, inst.cluster, samples,
                                   a100_peak),
                samples / best.report.throughput() / 3600.0, true});
        } catch (const ConfigError &) {
            // No plan fits this instance fleet; skip it.
        }
    }

    AsciiTable table({"configuration", "agg GPU-hrs/1B (A100-norm)",
                      "elapsed hrs/1B", "frontier"});
    std::vector<ParetoPoint> fsdp_pts, tuned_pts;
    for (size_t i = 0; i < pts.size(); ++i) {
        auto &bucket = pts[i].tuned ? tuned_pts : fsdp_pts;
        bucket.push_back(
            ParetoPoint{pts[i].hours, 1.0 / pts[i].elapsed, i});
    }
    std::set<size_t> on_frontier;
    for (size_t idx : paretoFrontier(fsdp_pts))
        on_frontier.insert(fsdp_pts[idx].tag);
    for (size_t idx : paretoFrontier(tuned_pts))
        on_frontier.insert(tuned_pts[idx].tag);

    for (size_t i = 0; i < pts.size(); ++i) {
        std::string frontier_tag;
        if (on_frontier.count(i)) {
            frontier_tag = pts[i].tuned ? "MAD-Max frontier"
                                        : "default frontier";
        }
        table.addRow({pts[i].label, strfmt("%.0f", pts[i].hours),
                      strfmt("%.2f", pts[i].elapsed), frontier_tag});
    }
    table.print(std::cout);
    return 0;
}
