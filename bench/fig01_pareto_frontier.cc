/**
 * @file
 * Regenerates Fig. 1: the resource-performance pareto frontier of
 * DLRM training on public-cloud instances. The default FSDP mapping
 * defines the baseline frontier (blue); MAD-Max-identified mappings
 * improve on it (green).
 *
 * Runs on the multi-objective ParetoEngine (src/dse/pareto_engine.hh)
 * over the cloud hardware catalog. With the default --strategy
 * exhaustive the table is byte-identical to the historical per-
 * instance explorer sweep (tests/golden/fig01_pareto_frontier.txt);
 * --strategy annealing|genetic|coordinate-descent regenerate it from
 * a budgeted guided search instead.
 */

#include <iostream>
#include <map>
#include <set>

#include "bench_util.hh"
#include "dse/pareto.hh"
#include "dse/pareto_engine.hh"
#include "dse/sweep.hh"
#include "hw/hw_zoo.hh"
#include "model/model_zoo.hh"
#include "util/logging.hh"
#include "util/table.hh"

using namespace madmax;

int
main(int argc, char **argv)
{
    bench::BenchReporter reporter("fig01_pareto_frontier", argc, argv);
    bench::banner("Fig. 1: resource-performance pareto frontier "
                  "(DLRM on cloud instances)",
                  "MAD-Max improves on the default-mapping frontier");

    const ModelDesc model = model_zoo::dlrmA();
    const TaskSpec task = TaskSpec::preTraining();
    const double samples = 1e9;
    const double a100_peak = hw_zoo::a100_40().peakFlopsTensor16;

    EvalEngineOptions engine_opts;
    engine_opts.jobs = reporter.jobs();
    EvalEngine engine(engine_opts);
    ParetoEngine pareto(cloudHardwareCatalog(16), &engine);
    ParetoOptions opts;
    opts.strategy = reporter.strategy();
    bench::WallTimer timer;
    ParetoFrontier frontier = pareto.explore(model, task, opts);

    std::map<size_t, const ParetoCandidate *> best_by_hw;
    for (const ParetoCandidate &c : frontier.bestPerHw)
        best_by_hw[c.hwIndex] = &c;

    struct Point
    {
        std::string label;
        double hours;    // Aggregate GPU-hours / 1B samples (A100-norm).
        double elapsed;  // Elapsed hours / 1B samples.
        bool tuned;
    };
    std::vector<Point> pts;

    for (size_t hw = 0; hw < pareto.hardware().size(); ++hw) {
        const HardwarePoint &inst = pareto.hardware()[hw];
        const PerfReport &fsdp = frontier.baselines[hw].report;
        if (fsdp.valid) {
            pts.push_back(Point{
                inst.name + " [FSDP]",
                normalizedGpuHours(fsdp, inst.cluster, samples,
                                   a100_peak),
                samples / fsdp.throughput() / 3600.0, false});
        }
        auto it = best_by_hw.find(hw);
        if (it != best_by_hw.end()) {
            const PerfReport &best = it->second->report;
            pts.push_back(Point{
                inst.name + " [MAD-Max]",
                normalizedGpuHours(best, inst.cluster, samples,
                                   a100_peak),
                samples / best.throughput() / 3600.0, true});
        }
        // No valid plan on this instance fleet: skip it (matching the
        // historical explorer sweep).
    }

    AsciiTable table({"configuration", "agg GPU-hrs/1B (A100-norm)",
                      "elapsed hrs/1B", "frontier"});
    std::vector<ParetoPoint> fsdp_pts, tuned_pts;
    for (size_t i = 0; i < pts.size(); ++i) {
        auto &bucket = pts[i].tuned ? tuned_pts : fsdp_pts;
        bucket.push_back(
            ParetoPoint{pts[i].hours, 1.0 / pts[i].elapsed, i});
    }
    std::set<size_t> on_frontier;
    for (size_t idx : paretoFrontier(fsdp_pts))
        on_frontier.insert(fsdp_pts[idx].tag);
    for (size_t idx : paretoFrontier(tuned_pts))
        on_frontier.insert(tuned_pts[idx].tag);

    for (size_t i = 0; i < pts.size(); ++i) {
        std::string frontier_tag;
        if (on_frontier.count(i)) {
            frontier_tag = pts[i].tuned ? "MAD-Max frontier"
                                        : "default frontier";
        }
        table.addRow({pts[i].label, strfmt("%.0f", pts[i].hours),
                      strfmt("%.2f", pts[i].elapsed), frontier_tag});
    }
    table.print(std::cout);

    reporter.record("search_seconds", timer.seconds(), "s");
    reporter.record("evaluations",
                    static_cast<double>(frontier.stats.evaluations),
                    "evals");
    reporter.record("points_visited",
                    static_cast<double>(frontier.candidates.size()),
                    "count");
    reporter.record("frontier_points",
                    static_cast<double>(frontier.points.size()),
                    "count");
    return 0;
}
