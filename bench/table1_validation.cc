/**
 * @file
 * Regenerates Table I: validation of first-order execution metrics
 * against the paper's published measurements (DLRM-A/B on the
 * 128-GPU ZionEX system; LLaMA on 2048 A100-80GB).
 */

#include <iostream>

#include "bench_util.hh"
#include "core/perf_model.hh"
#include "hw/hw_zoo.hh"
#include "model/model_zoo.hh"
#include "util/table.hh"

using namespace madmax;

int
main()
{
    bench::banner("Table I: validation of first-order execution metrics",
                  "97%/91% prediction accuracy on serialized/overlapped "
                  "execution");

    AsciiTable table({"metric", "measured (paper)", "paper model",
                      "this model", "our accuracy"});

    // --- DLRM-A on ZionEX with the Fig. 11-optimal plan. ---
    PerfModel zion(hw_zoo::dlrmTrainingSystem());
    ParallelPlan dlrm_plan;
    dlrm_plan.set(LayerClass::SparseEmbedding, HierStrategy{Strategy::MP});
    dlrm_plan.set(LayerClass::BaseDense,
                  HierStrategy{Strategy::TP, Strategy::DDP});
    PerfReport a = zion.evaluate(model_zoo::dlrmA(),
                                 TaskSpec::preTraining(), dlrm_plan);

    double a_serialized_ms = a.serializedTime * 1e3;
    table.addRow({"DLRM-A serialized iteration time (ms)", "67.40",
                  "65.30", strfmt("%.2f", a_serialized_ms),
                  bench::accuracy(a_serialized_ms, 67.40)});

    double a_exposed = a.exposedFraction() * 100.0;
    table.addRow({"DLRM-A % communication exposed", "82.37%", "75.46%",
                  strfmt("%.2f%%", a_exposed),
                  bench::accuracy(a_exposed, 82.37)});

    double a_mqps = a.throughput() / 1e6;
    table.addRow({"DLRM-A throughput (MQPS)", "1.20", "1.21",
                  strfmt("%.2f", a_mqps), bench::accuracy(a_mqps, 1.2)});

    // --- DLRM-B. Table II's aggregates under-determine its real
    // bottleneck; see EXPERIMENTS.md for the discrepancy analysis. ---
    PerfReport b = zion.evaluate(model_zoo::dlrmB(),
                                 TaskSpec::preTraining(), dlrm_plan);
    double b_mqps = b.throughput() / 1e6;
    table.addRow({"DLRM-B throughput (MQPS)", "3.40", "3.06",
                  strfmt("%.2f (optimistic)", b_mqps),
                  "n/a, see EXPERIMENTS.md"});

    // --- LLaMA on the 2048-GPU system. ---
    // LLaMA production training ran the optimized (prefetching)
    // FSDP implementation the paper validates in Fig. 9.
    PerfModel llm(hw_zoo::llmTrainingSystem());
    ParallelPlan llama_plan = ParallelPlan::fsdpBaseline();
    llama_plan.fsdpPrefetch = true;
    PerfReport l = llm.evaluate(model_zoo::llama65b(),
                                TaskSpec::preTraining(), llama_plan);
    double gpu_hours = 306000.0 * l.iterationTime / 3600.0 * 2048.0;
    table.addRow({"LLaMA GPU-hours for 306k steps (2048 A100)",
                  "1,022,361", "863,397", strfmt("%.0f", gpu_hours),
                  bench::accuracy(gpu_hours, 1022361.0)});

    double days = 1.4e12 / l.tokensPerSecond() / 86400.0;
    table.addRow({"LLaMA days to train 1.4T tokens", "20.83", "19.21",
                  strfmt("%.2f", days), bench::accuracy(days, 20.83)});

    table.print(std::cout);
    std::cout << "\nTable III systems used: "
              << zion.cluster().name << " and " << llm.cluster().name
              << "\n";
    return 0;
}
