/**
 * @file
 * Regenerates Fig. 12: how the same strategy set interacts with
 * DLRM-A and its transformer/MoE variants. Base dense layers stay at
 * the DLRM-A optimum; the sweep covers the variant-specific layer
 * class. The optimal strategy (the paper's yellow star) moves between
 * variants.
 */

#include <iostream>

#include "bench_util.hh"
#include "core/strategy_explorer.hh"
#include "hw/hw_zoo.hh"
#include "model/model_zoo.hh"
#include "util/table.hh"

using namespace madmax;

int
main()
{
    bench::banner("Fig. 12: strategy interaction across DLRM-A variants",
                  "transformers add overlap opportunities; MoE adds "
                  "blocking All2All — the optimum moves");

    PerfModel madmax(hw_zoo::dlrmTrainingSystem());
    TaskSpec task = TaskSpec::preTraining();

    struct Variant
    {
        ModelDesc model;
        LayerClass sweep_class;
    };
    std::vector<Variant> variants;
    variants.push_back({model_zoo::dlrmA(), LayerClass::BaseDense});
    variants.push_back(
        {model_zoo::dlrmATransformer(), LayerClass::Transformer});
    variants.push_back({model_zoo::dlrmAMoe(), LayerClass::MoE});

    for (const Variant &v : variants) {
        StrategyExplorer explorer(madmax);
        double baseline =
            explorer.baseline(v.model, task).throughput();

        std::cout << "\n" << v.model.name << " (sweeping "
                  << toString(v.sweep_class) << " layers):\n";
        AsciiTable table({"strategy", "vs FSDP", "bar", "verdict"});

        double best_rel = 0.0;
        std::string best_label;
        for (HierStrategy hs :
             StrategyExplorer::candidates(v.sweep_class)) {
            ParallelPlan plan;
            plan.fsdpPrefetch = true;
            plan.set(LayerClass::SparseEmbedding,
                     HierStrategy{Strategy::MP});
            // DLRM-A's optimal dense strategy (Fig. 11) everywhere.
            plan.set(LayerClass::BaseDense,
                     HierStrategy{Strategy::TP, Strategy::DDP});
            plan.set(v.sweep_class, hs);
            PerfReport r = madmax.evaluate(v.model, task, plan);
            if (r.valid) {
                double rel = r.throughput() / baseline;
                if (rel > best_rel) {
                    best_rel = rel;
                    best_label = hs.toString();
                }
                table.addRow({hs.toString(), strfmt("%.2fx", rel),
                              asciiBar(rel, 1.5, 30), ""});
            } else {
                table.addRow({hs.toString(), "OOM", "(gray bar)", ""});
            }
        }
        table.print(std::cout);
        std::cout << "optimal (*): " << best_label
                  << strfmt(" at %.2fx\n", best_rel);
    }
    return 0;
}
