/**
 * @file
 * Regenerates Fig. 10 (the headline result): pre-training throughput
 * of every Table II model under MAD-Max-identified hierarchical
 * strategies, normalized to the FSDP baseline — with and without the
 * memory constraints of current systems (blue vs orange bars).
 */

#include <iostream>

#include "bench_util.hh"
#include "core/strategy_explorer.hh"
#include "hw/hw_zoo.hh"
#include "model/model_zoo.hh"
#include "util/stats.hh"
#include "util/table.hh"

using namespace madmax;

int
main(int argc, char **argv)
{
    bench::BenchReporter reporter("fig10_pretraining_throughput", argc,
                                  argv);
    bench::banner("Fig. 10: pre-training throughput vs FSDP baseline",
                  "avg +65.9% from layer-type strategy tuning; up to "
                  "2.24x constrained, 2.43x unconstrained");

    EvalEngineOptions eo;
    eo.jobs = reporter.jobs();
    EvalEngine engine(eo);
    bench::WallTimer total_timer;

    for (TaskSpec task :
         {TaskSpec::preTraining(), TaskSpec::inference()}) {
        std::cout << "\n(" << task.toString() << ")\n";
        AsciiTable table({"model", "FSDP", "best (memory-constrained)",
                          "speedup", "best plan",
                          "unconstrained speedup"});
        std::vector<double> speedups;
        double max_speedup = 0.0, max_unconstrained = 0.0;

        for (const ModelDesc &model : model_zoo::tableIISuite()) {
            ClusterSpec cluster = model.isRecommendation
                ? hw_zoo::dlrmTrainingSystem()
                : hw_zoo::llmTrainingSystem();
            PerfModel madmax(cluster);
            StrategyExplorer explorer(madmax, &engine);

            PerfReport baseline = explorer.baseline(model, task);
            ExplorationResult best = explorer.best(model, task);
            ExplorerOptions unconstrained;
            unconstrained.ignoreMemory = true;
            ExplorationResult best_u =
                explorer.best(model, task, unconstrained);

            double speedup =
                best.report.throughput() / baseline.throughput();
            double speedup_u =
                best_u.report.throughput() / baseline.throughput();
            speedups.push_back(speedup);
            max_speedup = std::max(max_speedup, speedup);
            max_unconstrained = std::max(max_unconstrained, speedup_u);
            reporter.record(model.name + " " + task.toString() +
                                " speedup",
                            speedup, "x");

            // Compact per-class plan: only classes the model has.
            std::string plan;
            for (LayerClass cls :
                 {LayerClass::BaseDense, LayerClass::Transformer,
                  LayerClass::MoE}) {
                if (model.graph.hasClass(cls)) {
                    if (!plan.empty())
                        plan += " ";
                    plan += best.plan.strategyFor(cls).toString();
                }
            }

            table.addRow({model.name,
                          formatCount(baseline.throughput()) + "/s",
                          formatCount(best.report.throughput()) + "/s",
                          strfmt("%.2fx", speedup), plan,
                          strfmt("%.2fx", speedup_u)});
        }
        table.print(std::cout);
        if (task.kind == TaskKind::PreTraining) {
            std::cout << strfmt(
                "average speedup: %.1f%%; max %.2fx constrained / "
                "%.2fx unconstrained (paper: +65.9%% avg, up to "
                "2.24x / 2.43x)\n",
                (mean(speedups) - 1.0) * 100.0, max_speedup,
                max_unconstrained);
        } else {
            std::cout << strfmt(
                "max inference speedup: %.2fx constrained / %.2fx "
                "unconstrained (paper: up to 5.27x / 12.13x)\n",
                max_speedup, max_unconstrained);
        }
    }
    reporter.record("fig10_total_seconds", total_timer.seconds(), "s");
    return 0;
}
