/**
 * @file
 * Chaos soak for the resident serving stack: the full EvalService +
 * HttpServer pipeline under a seeded multi-point fault storm
 * (evaluation throws, config-load allocation failures, connection
 * resets on read, short writes), driven by reconnecting closed-loop
 * clients. The pass criterion is graceful degradation, not a perf
 * number: every request resolves to a well-formed response or a
 * dropped connection (never a hang), healthy traffic keeps flowing
 * through the storm, and the stack serves cleanly the moment the
 * faults disarm. Counters are reported for trend-watching, but no
 * baseline is pinned — the storm's throughput is not a contract.
 *
 * Usage: serve_chaos [--jobs N] [--json BENCH_serve_chaos.json]
 */

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hh"
#include "config/config_loader.hh"
#include "hw/hw_zoo.hh"
#include "serve/http_server.hh"
#include "serve/service.hh"
#include "util/fault_injection.hh"
#include "util/strfmt.hh"

using namespace madmax;
using namespace madmax::bench;

namespace
{

constexpr int kClients = 4;
constexpr int kRequestsPerClient = 400;

/** Everything armed at once; every trigger is seeded, so reruns see
 *  the same storm. */
constexpr const char *kStorm =
    "engine.eval=throw@prob:0.2,seed:11;"
    "config.load=badalloc@prob:0.05,seed:12;"
    "http.read=errno:ECONNRESET@prob:0.02,seed:13;"
    "http.write=short@prob:0.10,seed:14";

/** One-shot client: connect, POST, read until EOF (the server closes
 *  error responses; Connection: close covers the rest). Returns the
 *  HTTP status, or 0 if the connection died without a full status
 *  line (a dropped request — acceptable, a hang is not). */
int
oneShot(int port, const std::string &body)
{
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        return 0;
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<uint16_t>(port));
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        ::close(fd);
        return 0;
    }
    std::string raw =
        "POST /v1/evaluate HTTP/1.1\r\nHost: localhost\r\n"
        "Connection: close\r\nContent-Type: application/json\r\n"
        "Content-Length: " + std::to_string(body.size()) + "\r\n\r\n" +
        body;
    size_t off = 0;
    while (off < raw.size()) {
        ssize_t n = ::send(fd, raw.data() + off, raw.size() - off,
                           MSG_NOSIGNAL);
        if (n <= 0)
            break;
        off += static_cast<size_t>(n);
    }
    std::string resp;
    char chunk[8192];
    for (;;) {
        ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
        if (n <= 0)
            break;
        resp.append(chunk, static_cast<size_t>(n));
    }
    ::close(fd);
    if (resp.rfind("HTTP/1.1 ", 0) != 0 || resp.size() < 12)
        return 0;
    return std::stoi(resp.substr(9, 3));
}

std::string
evaluateBody(const std::string &base_dense)
{
    JsonValue model;
    model.set("type", "zoo");
    model.set("name", "DLRM-A");
    JsonValue strategies;
    strategies.set("sparse_embedding", "(MP)");
    strategies.set("base_dense", base_dense);
    JsonValue task;
    task.set("task", "pre-training");
    task.set("strategies", std::move(strategies));
    JsonValue body;
    body.set("model", std::move(model));
    body.set("system", toJson(hw_zoo::dlrmTrainingSystem()));
    body.set("task", std::move(task));
    return body.dump(2);
}

} // namespace

int
main(int argc, char **argv)
{
    BenchReporter reporter("serve_chaos", argc, argv);
    banner("serve chaos — seeded fault storm vs. the resident "
           "serving stack",
           "resilience soak: every fault degrades to a taxonomy "
           "error or a closed connection, never a hang or a crash");

    ServiceOptions sopts;
    sopts.jobs = reporter.jobs();
    sopts.breakerOpenMillis = 200; // Trip AND recover mid-storm.
    EvalService service(sopts);
    HttpServerOptions hopts;
    hopts.port = 0;
    hopts.workers = kClients;
    hopts.classifier = [&service](const HttpRequest &r) {
        return service.classify(r);
    };
    HttpServer server(
        [&service](const HttpRequest &r) { return service.handle(r); },
        hopts);
    service.setTransportStatsProvider(
        [&server] { return server.stats(); });
    server.start();

    // Rotating distinct plans keeps cold evaluations (and with them
    // the engine.eval and config.load fault points) in play for the
    // whole storm: a failed evaluation is never memoized, so faulted
    // bodies stay cold until a later request lands them cleanly.
    std::vector<std::string> bodies;
    for (const char *plan : {"(DDP)", "(FSDP)", "(TP, DDP)",
                             "(FSDP, DDP)", "(TP, FSDP)", "(MP)",
                             "(DDP, FSDP)", "(TP)"})
        bodies.push_back(evaluateBody(plan));
    if (oneShot(server.port(), bodies[0]) != 200) {
        std::cerr << "error: warm-up request failed pre-storm\n";
        return 1;
    }

    std::atomic<long> ok{0}, clientErrors{0}, serverErrors{0},
        dropped{0};
    FaultInjection::configure(kStorm);
    WallTimer timer;
    std::vector<std::thread> clients;
    for (int c = 0; c < kClients; ++c) {
        clients.emplace_back([&, c] {
            for (int r = 0; r < kRequestsPerClient; ++r) {
                int status = oneShot(server.port(),
                                     bodies[(c + r) % bodies.size()]);
                if (status == 200)
                    ++ok;
                else if (status >= 500)
                    ++serverErrors;
                else if (status >= 400)
                    ++clientErrors;
                else
                    ++dropped;
            }
        });
    }
    for (std::thread &t : clients)
        t.join();
    double seconds = timer.seconds();
    FaultInjection::clearAll();

    const long total =
        static_cast<long>(kClients) * kRequestsPerClient;
    std::cout << strfmt(
        "storm: %ld reqs in %.1f s -> %ld ok, %ld 5xx, %ld 4xx, "
        "%ld dropped\n",
        total, seconds, ok.load(), serverErrors.load(),
        clientErrors.load(), dropped.load());
    reporter.record("storm_rps", total / seconds, "requests/s");
    reporter.record("ok_fraction",
                    static_cast<double>(ok.load()) / total, "ratio");
    reporter.record("error_fraction",
                    static_cast<double>(serverErrors.load() +
                                        clientErrors.load()) /
                        total,
                    "ratio");
    reporter.record("dropped_fraction",
                    static_cast<double>(dropped.load()) / total,
                    "ratio");

    CircuitBreakerStats br = service.breaker().stats();
    BatchDispatcherStats bd = service.dispatcher().stats();
    HttpServerStats ts = server.stats();
    std::cout << strfmt(
        "degradation: breaker %ld trips / %ld rejects / %ld "
        "recoveries | eval failures %ld | transport %ld accepted\n",
        br.trips, br.rejects, br.recoveries,
        service.stats().evalFailures, ts.accepted);
    reporter.record("breaker_trips", static_cast<double>(br.trips),
                    "count");
    reporter.record("eval_failures",
                    static_cast<double>(service.stats().evalFailures),
                    "count");
    reporter.record("watchdog_takeovers",
                    static_cast<double>(bd.watchdogTakeovers),
                    "count");

    // The pass criteria: the storm let real work through, every
    // request resolved, and the stack is healthy the moment the
    // faults disarm.
    int postStorm = oneShot(server.port(), bodies[0]);
    server.stop();
    if (ok.load() == 0) {
        std::cerr << "error: no request survived the storm\n";
        return 1;
    }
    if (postStorm != 200) {
        std::cerr << "error: post-storm request returned "
                  << postStorm << "\n";
        return 1;
    }
    std::cout << "post-storm request clean; stack degraded "
                 "gracefully and recovered\n";
    return 0;
}
