/**
 * @file
 * Evaluation hot-path microbench: quantifies what the shared
 * EvalContext buys a sweep. Three measurements over the GPT-3 explore
 * plan set on the LLM training system:
 *
 *  - cold:   PerfModel::evaluate per plan — every call builds a
 *            throwaway context (validation, per-layer times, resolved
 *            collectives), the pre-overhaul cost structure;
 *  - reuse:  EvalContext::evaluate per plan on one shared context —
 *            the per-plan marginal cost (stream build + schedule +
 *            linear overlap sweep only);
 *  - sweep:  StrategyExplorer::explore through a fresh EvalEngine
 *            with `--jobs` workers (default 1), the end-to-end
 *            `madmax explore` hot path (grouped contexts + memo keys
 *            + OOM pruning). cold and reuse are always single-thread.
 *
 * Reference point: before the EvalContext overhaul (PR 4), the sweep
 * measurement on this workload ran at ~1530 evals/s on the CI
 * container (72 evaluations in 47.1 ms); the acceptance bar for the
 * overhaul was >= 3x that. The recorded sweep_evals_per_sec tracks
 * the same quantity going forward.
 *
 * Usage: eval_hotpath [--json BENCH_eval_hotpath.json] [--jobs N]
 */

#include <iostream>
#include <vector>

#include "bench_util.hh"
#include "core/eval_context.hh"
#include "core/strategy_explorer.hh"
#include "hw/hw_zoo.hh"
#include "model/model_zoo.hh"
#include "util/table.hh"
#include "util/thread_pool.hh"

using namespace madmax;

namespace
{

constexpr int kRepeats = 5;

/** Best-of-N seconds for one measurement thunk. */
template <typename Fn>
double
bestOf(Fn &&fn)
{
    double best = 1e300;
    for (int rep = 0; rep < kRepeats; ++rep) {
        bench::WallTimer timer;
        fn();
        best = std::min(best, timer.seconds());
    }
    return best;
}

} // namespace

int
main(int argc, char **argv)
{
    bench::BenchReporter reporter("eval_hotpath", argc, argv);
    // 0 = one per core, resolved here so the label and record carry
    // the real count.
    const int sweep_jobs = reporter.jobs() == 0
        ? ThreadPool::defaultConcurrency()
        : reporter.jobs();
    bench::banner("Evaluation hot path: cold vs. context-reuse vs. "
                  "engine sweep (GPT-3 explore plan set)",
                  "");

    ModelDesc desc = model_zoo::gpt3();
    ClusterSpec cluster = hw_zoo::llmTrainingSystem();
    TaskSpec task = TaskSpec::preTraining();
    PerfModel perf(cluster);

    // The sweep's plan list: every feasible plan explore() evaluates
    // (infeasible ones are pruned by the engine's memory pre-pass and
    // would make cold vs. reuse asymmetric).
    ExplorerOptions opts;
    opts.explorePrefetch = true;
    std::vector<ParallelPlan> plans;
    {
        StrategyExplorer explorer(perf);
        Exploration ex = explorer.explore(desc, task, opts);
        for (const ExplorationResult &r : ex.results) {
            if (r.report.valid)
                plans.push_back(r.plan);
        }
    }

    double cold_s = bestOf([&] {
        for (const ParallelPlan &plan : plans)
            perf.evaluate(desc, task, plan);
    });
    double reuse_s = bestOf([&] {
        EvalContext context(perf, desc, task);
        for (const ParallelPlan &plan : plans)
            context.evaluate(plan);
    });

    long sweep_evals = 0;
    double sweep_s = bestOf([&] {
        // Fresh engine per run: a warm memo cache would measure cache
        // hits, not evaluations. --jobs applies here only; the cold
        // and reuse loops are single-thread by construction.
        EvalEngineOptions eo;
        eo.jobs = sweep_jobs;
        EvalEngine engine(eo);
        StrategyExplorer explorer(perf, &engine);
        Exploration ex = explorer.explore(desc, task, opts);
        sweep_evals = ex.stats.evaluations;
    });

    const double n = static_cast<double>(plans.size());
    double cold_rate = n / cold_s;
    double reuse_rate = n / reuse_s;
    double sweep_rate = static_cast<double>(sweep_evals) / sweep_s;

    AsciiTable table({"path", "wall", "evals", "evals/s"});
    table.addRow({"cold (context per eval)", formatTime(cold_s),
                  std::to_string(plans.size()),
                  formatCount(cold_rate)});
    table.addRow({"reuse (shared context)", formatTime(reuse_s),
                  std::to_string(plans.size()),
                  formatCount(reuse_rate)});
    table.addRow({strfmt("sweep (explore, %d job%s)", sweep_jobs,
                         sweep_jobs == 1 ? "" : "s"),
                  formatTime(sweep_s),
                  std::to_string(sweep_evals),
                  formatCount(sweep_rate)});
    table.print(std::cout);
    std::cout << strfmt("context reuse speedup over cold: %.2fx\n",
                        reuse_rate / cold_rate);

    reporter.record("cold_evals_per_sec", cold_rate, "evals/s");
    reporter.record("reuse_evals_per_sec", reuse_rate, "evals/s");
    reporter.record("sweep_evals_per_sec", sweep_rate, "evals/s");
    reporter.record("reuse_over_cold_speedup", reuse_rate / cold_rate,
                    "x");
    reporter.record("sweep_evaluations",
                    static_cast<double>(sweep_evals), "count");
    reporter.record("sweep_jobs", static_cast<double>(sweep_jobs),
                    "threads");
    reporter.record("plan_count", n, "count");
    return 0;
}
