/**
 * @file
 * Evaluation hot-path microbench: quantifies what the shared
 * EvalContext buys a sweep. Four measurements over the GPT-3 explore
 * plan set on the LLM training system:
 *
 *  - cold:   PerfModel::evaluate per plan — every call builds a
 *            throwaway context (validation, per-layer times, resolved
 *            collectives), the pre-overhaul cost structure;
 *  - reuse:  EvalContext::evaluate per plan on one shared context —
 *            the per-plan marginal cost (stream build + schedule +
 *            linear overlap sweep only);
 *  - sweep:  StrategyExplorer::explore through a fresh EvalEngine
 *            with `--jobs` workers (default 1), the end-to-end
 *            `madmax explore` hot path (grouped contexts + memo keys
 *            + OOM pruning). cold and reuse are always single-thread;
 *  - delta:  EvalContext::evaluateDelta over a precomputed
 *            single-class mutation walk — the guided-search workload
 *            shape — against the same walk through full evaluation.
 *            The delta path splices cached segment templates instead
 *            of rebuilding streams; the acceptance bar for PR 6 was
 *            >= 3x full evaluation on this workload
 *            (delta_over_full_speedup tracks it going forward).
 *
 * Reference point: before the EvalContext overhaul (PR 4), the sweep
 * measurement on this workload ran at ~1530 evals/s on the CI
 * container (72 evaluations in 47.1 ms); the acceptance bar for the
 * overhaul was >= 3x that. The recorded sweep_evals_per_sec tracks
 * the same quantity going forward.
 *
 * Usage: eval_hotpath [--json BENCH_eval_hotpath.json] [--jobs N]
 */

#include <iostream>
#include <random>
#include <set>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "core/eval_context.hh"
#include "core/strategy_explorer.hh"
#include "hw/hw_zoo.hh"
#include "model/model_zoo.hh"
#include "util/table.hh"
#include "util/thread_pool.hh"

using namespace madmax;

namespace
{

constexpr int kRepeats = 5;

/** Best-of-N seconds for one measurement thunk. */
template <typename Fn>
double
bestOf(Fn &&fn)
{
    double best = 1e300;
    for (int rep = 0; rep < kRepeats; ++rep) {
        bench::WallTimer timer;
        fn();
        best = std::min(best, timer.seconds());
    }
    return best;
}

} // namespace

int
main(int argc, char **argv)
{
    bench::BenchReporter reporter("eval_hotpath", argc, argv);
    // 0 = one per core, resolved here so the label and record carry
    // the real count.
    const int sweep_jobs = reporter.jobs() == 0
        ? ThreadPool::defaultConcurrency()
        : reporter.jobs();
    bench::banner("Evaluation hot path: cold vs. context-reuse vs. "
                  "engine sweep (GPT-3 explore plan set)",
                  "");

    ModelDesc desc = model_zoo::gpt3();
    ClusterSpec cluster = hw_zoo::llmTrainingSystem();
    TaskSpec task = TaskSpec::preTraining();
    PerfModel perf(cluster);

    // The sweep's plan list: every feasible plan explore() evaluates
    // (infeasible ones are pruned by the engine's memory pre-pass and
    // would make cold vs. reuse asymmetric).
    ExplorerOptions opts;
    opts.explorePrefetch = true;
    std::vector<ParallelPlan> plans;
    {
        StrategyExplorer explorer(perf);
        Exploration ex = explorer.explore(desc, task, opts);
        for (const ExplorationResult &r : ex.results) {
            if (r.report.valid)
                plans.push_back(r.plan);
        }
    }

    double cold_s = bestOf([&] {
        for (const ParallelPlan &plan : plans)
            perf.evaluate(desc, task, plan);
    });
    double reuse_s = bestOf([&] {
        EvalContext context(perf, desc, task);
        for (const ParallelPlan &plan : plans)
            context.evaluate(plan);
    });

    // Delta phase: a seeded walk that mutates one layer class per
    // step, the shape annealing/genetic mutation loops produce. The
    // walk stays inside the feasible plan set (the delta path
    // short-circuits OOM verdicts without splicing, which would
    // flatter the measurement) and is precomputed so the timed region
    // measures evaluation only.
    constexpr size_t kWalkSteps = 512;
    std::vector<ParallelPlan> walk;
    {
        std::vector<LayerClass> classes;
        for (LayerClass cls : {LayerClass::SparseEmbedding,
                               LayerClass::DenseEmbedding,
                               LayerClass::BaseDense,
                               LayerClass::Transformer, LayerClass::MoE}) {
            if (desc.graph.hasClass(cls))
                classes.push_back(cls);
        }
        auto planKey = [](const ParallelPlan &p) {
            return p.toString() + (p.fsdpPrefetch ? "+p" : "-p");
        };
        std::set<std::string> feasible;
        for (const ParallelPlan &p : plans)
            feasible.insert(planKey(p));
        ParallelPlan cur = plans.front();
        std::mt19937_64 rng(0x6d61646d6178ull); // "madmax"
        size_t attempts = 0;
        while (walk.size() < kWalkSteps && attempts++ < kWalkSteps * 64) {
            LayerClass cls = classes[rng() % classes.size()];
            const std::vector<HierStrategy> &cands =
                StrategyExplorer::candidates(cls);
            HierStrategy hs = cands[rng() % cands.size()];
            if (cur.strategyFor(cls) == hs)
                continue;
            ParallelPlan next = cur;
            next.set(cls, hs);
            if (!feasible.count(planKey(next)))
                continue;
            walk.push_back(next);
            cur = next;
        }
    }

    // The walk evaluates through a timeline-free model — the DSE
    // configuration (see ParetoEngine) and the precondition for the
    // incremental path (keepTimeline forces the full-evaluation
    // fall-back). Full and delta share the context, so both sides
    // measure the marginal per-eval cost on warmed strategy tables.
    PerfModelOptions mut_opts;
    mut_opts.keepTimeline = false;
    PerfModel mut_perf(cluster, mut_opts);
    EvalContext mut_context(mut_perf, desc, task);
    double full_mut_s = bestOf([&] {
        for (const ParallelPlan &plan : walk)
            mut_context.evaluate(plan);
    });
    EvalContext::DeltaState delta_state;
    double delta_s = bestOf([&] {
        for (const ParallelPlan &plan : walk)
            mut_context.evaluateDelta(delta_state, plan);
    });

    long sweep_evals = 0;
    double sweep_s = bestOf([&] {
        // Fresh engine per run: a warm memo cache would measure cache
        // hits, not evaluations. --jobs applies here only; the cold
        // and reuse loops are single-thread by construction.
        EvalEngineOptions eo;
        eo.jobs = sweep_jobs;
        EvalEngine engine(eo);
        StrategyExplorer explorer(perf, &engine);
        Exploration ex = explorer.explore(desc, task, opts);
        sweep_evals = ex.stats.evaluations;
    });

    const double n = static_cast<double>(plans.size());
    double cold_rate = n / cold_s;
    double reuse_rate = n / reuse_s;
    double sweep_rate = static_cast<double>(sweep_evals) / sweep_s;
    const double walk_n = static_cast<double>(walk.size());
    double full_mut_rate = walk_n / full_mut_s;
    double delta_rate = walk_n / delta_s;

    AsciiTable table({"path", "wall", "evals", "evals/s"});
    table.addRow({"cold (context per eval)", formatTime(cold_s),
                  std::to_string(plans.size()),
                  formatCount(cold_rate)});
    table.addRow({"reuse (shared context)", formatTime(reuse_s),
                  std::to_string(plans.size()),
                  formatCount(reuse_rate)});
    table.addRow({strfmt("sweep (explore, %d job%s)", sweep_jobs,
                         sweep_jobs == 1 ? "" : "s"),
                  formatTime(sweep_s),
                  std::to_string(sweep_evals),
                  formatCount(sweep_rate)});
    table.addRow({"full (mutation walk)", formatTime(full_mut_s),
                  std::to_string(walk.size()),
                  formatCount(full_mut_rate)});
    table.addRow({"delta (mutation walk)", formatTime(delta_s),
                  std::to_string(walk.size()),
                  formatCount(delta_rate)});
    table.print(std::cout);
    std::cout << strfmt("context reuse speedup over cold: %.2fx\n",
                        reuse_rate / cold_rate);
    std::cout << strfmt("delta re-eval speedup over full: %.2fx\n",
                        delta_rate / full_mut_rate);

    reporter.record("cold_evals_per_sec", cold_rate, "evals/s");
    reporter.record("reuse_evals_per_sec", reuse_rate, "evals/s");
    reporter.record("sweep_evals_per_sec", sweep_rate, "evals/s");
    reporter.record("reuse_over_cold_speedup", reuse_rate / cold_rate,
                    "x");
    reporter.record("sweep_evaluations",
                    static_cast<double>(sweep_evals), "count");
    reporter.record("sweep_jobs", static_cast<double>(sweep_jobs),
                    "threads");
    reporter.record("plan_count", n, "count");
    reporter.record("full_mutate_evals_per_s", full_mut_rate,
                    "evals/s");
    reporter.record("delta_evals_per_s", delta_rate, "evals/s");
    reporter.record("delta_over_full_speedup",
                    delta_rate / full_mut_rate, "x");
    reporter.record("walk_steps", walk_n, "count");
    return 0;
}
