/**
 * @file
 * Regenerates Fig. 16: DLRM-A training across public-cloud GPU
 * instances — elapsed time vs. A100-normalized aggregate GPU-hours
 * per 1B samples — for default FSDP and MAD-Max-optimized mappings.
 * Paper: up to 33% training-time and 21% compute-resource reduction.
 *
 * Runs on the ParetoEngine over the cloud hardware catalog; the
 * default --strategy exhaustive reproduces the historical per-
 * instance explorer sweep byte for byte, the guided strategies
 * (--strategy annealing|genetic|coordinate-descent) regenerate the
 * study from a budgeted search.
 */

#include <algorithm>
#include <iostream>
#include <map>

#include "bench_util.hh"
#include "dse/pareto_engine.hh"
#include "dse/sweep.hh"
#include "hw/hw_zoo.hh"
#include "model/model_zoo.hh"
#include "util/logging.hh"
#include "util/table.hh"

using namespace madmax;

int
main(int argc, char **argv)
{
    bench::BenchReporter reporter("fig16_cloud_instances", argc, argv);
    bench::banner("Fig. 16: cloud-instance deployment study (DLRM-A)",
                  "up to 33% training-time and 21% GPU-hour reduction "
                  "from joint instance + mapping choice");

    const ModelDesc model = model_zoo::dlrmA();
    const TaskSpec task = TaskSpec::preTraining();
    const double samples = 1e9;
    const double a100_peak = hw_zoo::a100_40().peakFlopsTensor16;

    EvalEngineOptions engine_opts;
    engine_opts.jobs = reporter.jobs();
    EvalEngine engine(engine_opts);
    ParetoEngine pareto(cloudHardwareCatalog(16), &engine);
    ParetoOptions opts;
    opts.strategy = reporter.strategy();
    ParetoFrontier frontier = pareto.explore(model, task, opts);

    std::map<size_t, const ParetoCandidate *> best_by_hw;
    for (const ParetoCandidate &c : frontier.bestPerHw)
        best_by_hw[c.hwIndex] = &c;

    AsciiTable table({"instance", "GPUs", "mapping", "elapsed/1B",
                      "agg GPU-hrs/1B (norm)", "plan"});
    double best_time_fsdp = 1e300, best_time_tuned = 1e300;
    double best_hours_fsdp = 1e300, best_hours_tuned = 1e300;

    for (size_t hw = 0; hw < pareto.hardware().size(); ++hw) {
        const HardwarePoint &inst = pareto.hardware()[hw];
        const PerfReport &fsdp = frontier.baselines[hw].report;
        auto it = best_by_hw.find(hw);
        if (it == best_by_hw.end()) {
            table.addRow({inst.name,
                          std::to_string(inst.cluster.numDevices()),
                          "MAD-Max", "no plan fits", "-", "-"});
            continue;
        }
        const ParetoCandidate &best = *it->second;

        if (fsdp.valid) {
            double t = samples / fsdp.throughput() / 3600.0;
            double h = normalizedGpuHours(fsdp, inst.cluster, samples,
                                          a100_peak);
            best_time_fsdp = std::min(best_time_fsdp, t);
            best_hours_fsdp = std::min(best_hours_fsdp, h);
            table.addRow({inst.name,
                          std::to_string(inst.cluster.numDevices()),
                          "FSDP", strfmt("%.2f hr", t),
                          strfmt("%.0f", h), "(baseline)"});
        } else {
            table.addRow({inst.name,
                          std::to_string(inst.cluster.numDevices()),
                          "FSDP", "OOM", "-", "(baseline)"});
        }
        double t = samples / best.report.throughput() / 3600.0;
        double h = normalizedGpuHours(best.report, inst.cluster,
                                      samples, a100_peak);
        best_time_tuned = std::min(best_time_tuned, t);
        best_hours_tuned = std::min(best_hours_tuned, h);
        table.addRow({inst.name,
                      std::to_string(inst.cluster.numDevices()),
                      "MAD-Max", strfmt("%.2f hr", t),
                      strfmt("%.0f", h), best.plan.toString()});
    }
    table.print(std::cout);

    std::cout << strfmt(
        "\nbest-achievable improvements over the FSDP frontier: "
        "%.0f%% training time, %.0f%% normalized GPU-hours "
        "(paper: 33%% / 21%%)\n",
        (1.0 - best_time_tuned / best_time_fsdp) * 100.0,
        (1.0 - best_hours_tuned / best_hours_fsdp) * 100.0);

    reporter.record("evaluations",
                    static_cast<double>(frontier.stats.evaluations),
                    "evals");
    reporter.record("time_reduction",
                    (1.0 - best_time_tuned / best_time_fsdp) * 100.0,
                    "%");
    return 0;
}
