/**
 * @file
 * Regenerates Fig. 16: DLRM-A training across public-cloud GPU
 * instances — elapsed time vs. A100-normalized aggregate GPU-hours
 * per 1B samples — for default FSDP and MAD-Max-optimized mappings.
 * Paper: up to 33% training-time and 21% compute-resource reduction.
 */

#include <iostream>

#include "bench_util.hh"
#include "core/strategy_explorer.hh"
#include "dse/sweep.hh"
#include "hw/hw_zoo.hh"
#include "model/model_zoo.hh"
#include "util/logging.hh"
#include "util/table.hh"

using namespace madmax;

int
main()
{
    bench::banner("Fig. 16: cloud-instance deployment study (DLRM-A)",
                  "up to 33% training-time and 21% GPU-hour reduction "
                  "from joint instance + mapping choice");

    const ModelDesc model = model_zoo::dlrmA();
    const TaskSpec task = TaskSpec::preTraining();
    const double samples = 1e9;
    const double a100_peak = hw_zoo::a100_40().peakFlopsTensor16;

    AsciiTable table({"instance", "GPUs", "mapping", "elapsed/1B",
                      "agg GPU-hrs/1B (norm)", "plan"});
    double best_time_fsdp = 1e300, best_time_tuned = 1e300;
    double best_hours_fsdp = 1e300, best_hours_tuned = 1e300;

    for (const hw_zoo::CloudInstance &inst :
         hw_zoo::cloudInstances(16)) {
        PerfModel madmax(inst.cluster);
        StrategyExplorer explorer(madmax);
        PerfReport fsdp = explorer.baseline(model, task);
        ExplorationResult best;
        try {
            best = explorer.best(model, task);
        } catch (const ConfigError &) {
            table.addRow({inst.name,
                          std::to_string(inst.cluster.numDevices()),
                          "MAD-Max", "no plan fits", "-", "-"});
            continue;
        }

        if (fsdp.valid) {
            double t = samples / fsdp.throughput() / 3600.0;
            double h = normalizedGpuHours(fsdp, inst.cluster, samples,
                                          a100_peak);
            best_time_fsdp = std::min(best_time_fsdp, t);
            best_hours_fsdp = std::min(best_hours_fsdp, h);
            table.addRow({inst.name,
                          std::to_string(inst.cluster.numDevices()),
                          "FSDP", strfmt("%.2f hr", t),
                          strfmt("%.0f", h), "(baseline)"});
        } else {
            table.addRow({inst.name,
                          std::to_string(inst.cluster.numDevices()),
                          "FSDP", "OOM", "-", "(baseline)"});
        }
        double t = samples / best.report.throughput() / 3600.0;
        double h = normalizedGpuHours(best.report, inst.cluster,
                                      samples, a100_peak);
        best_time_tuned = std::min(best_time_tuned, t);
        best_hours_tuned = std::min(best_hours_tuned, h);
        table.addRow({inst.name,
                      std::to_string(inst.cluster.numDevices()),
                      "MAD-Max", strfmt("%.2f hr", t),
                      strfmt("%.0f", h), best.plan.toString()});
    }
    table.print(std::cout);

    std::cout << strfmt(
        "\nbest-achievable improvements over the FSDP frontier: "
        "%.0f%% training time, %.0f%% normalized GPU-hours "
        "(paper: 33%% / 21%%)\n",
        (1.0 - best_time_tuned / best_time_fsdp) * 100.0,
        (1.0 - best_hours_tuned / best_hours_fsdp) * 100.0);
    return 0;
}
