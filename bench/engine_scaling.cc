/**
 * @file
 * EvalEngine scaling bench: StrategyExplorer::explore over the GPT-3
 * zoo entry on the LLM training system with 1 thread vs N threads
 * (fresh engines, so no cross-run cache pollution). Verifies that the
 * ranked plan order is identical and reports the wall-clock speedup —
 * the repo's first machine-readable perf record (--json).
 *
 * Usage: engine_scaling [--jobs N] [--json BENCH_engine_scaling.json]
 * --jobs sets the parallel side of the comparison (default 4).
 */

#include <algorithm>
#include <iostream>
#include <vector>

#include "bench_util.hh"
#include "core/strategy_explorer.hh"
#include "hw/hw_zoo.hh"
#include "model/model_zoo.hh"
#include "util/table.hh"
#include "util/thread_pool.hh"

using namespace madmax;

namespace
{

struct Run
{
    double seconds = 0.0;
    std::vector<std::string> ranking;
    EvalStats stats;
};

Run
runExplore(const PerfModel &model, const ModelDesc &desc, int jobs,
           int repeats)
{
    // Fresh engine per run: a warm memo cache would turn the repeat
    // loop into a cache-hit benchmark.
    Run run;
    run.seconds = 1e300;
    for (int rep = 0; rep < repeats; ++rep) {
        EvalEngineOptions eo;
        eo.jobs = jobs;
        EvalEngine engine(eo);
        StrategyExplorer explorer(model, &engine);
        ExplorerOptions opts;
        opts.explorePrefetch = true; // Larger space: prefetch variants.
        bench::WallTimer timer;
        Exploration ex =
            explorer.explore(desc, TaskSpec::preTraining(), opts);
        double s = timer.seconds();
        if (s < run.seconds) {
            run.seconds = s;
            run.stats = ex.stats;
        }
        run.ranking.clear();
        for (const ExplorationResult &r : ex.results)
            run.ranking.push_back(r.plan.toString());
    }
    return run;
}

} // namespace

int
main(int argc, char **argv)
{
    bench::BenchReporter reporter("engine_scaling", argc, argv);
    // Parallel side of the comparison: --jobs as given (0 = one per
    // core, resolved here so every label carries the real count), or
    // 4 when the flag is absent.
    int jobs = reporter.jobsSpecified() ? reporter.jobs() : 4;
    if (jobs == 0)
        jobs = ThreadPool::defaultConcurrency();
    const int repeats = 5;

    bench::banner(
        "EvalEngine scaling: explore(GPT-3) with 1 vs " +
            std::to_string(jobs) + " jobs",
        "");

    ModelDesc model = model_zoo::gpt3();
    PerfModel perf(hw_zoo::llmTrainingSystem());

    Run serial = runExplore(perf, model, 1, repeats);
    Run parallel = runExplore(perf, model, jobs, repeats);

    bool same_order = serial.ranking == parallel.ranking;
    double speedup =
        parallel.seconds > 0.0 ? serial.seconds / parallel.seconds : 0.0;

    AsciiTable table({"jobs", "wall", "evaluations", "pruned",
                      "cache hits"});
    table.addRow({"1", formatTime(serial.seconds),
                  std::to_string(serial.stats.evaluations),
                  std::to_string(serial.stats.pruned),
                  std::to_string(serial.stats.cacheHits)});
    table.addRow({std::to_string(jobs), formatTime(parallel.seconds),
                  std::to_string(parallel.stats.evaluations),
                  std::to_string(parallel.stats.pruned),
                  std::to_string(parallel.stats.cacheHits)});
    table.print(std::cout);
    int cores = ThreadPool::defaultConcurrency();
    std::cout << strfmt("speedup: %.2fx; identical ranking: %s (%zu "
                        "plans)\n",
                        speedup, same_order ? "yes" : "NO",
                        serial.ranking.size());
    if (cores < jobs) {
        std::cout << strfmt(
            "note: only %d hardware thread(s) available — the "
            "%d-job run cannot beat serial on this host\n",
            cores, jobs);
    }

    reporter.record("explore_gpt3_jobs1_seconds", serial.seconds, "s");
    reporter.record(strfmt("explore_gpt3_jobs%d_seconds", jobs),
                    parallel.seconds, "s");
    reporter.record("explore_gpt3_speedup", speedup, "x");
    reporter.record("explore_gpt3_identical_ordering",
                    same_order ? 1.0 : 0.0, "bool");
    reporter.record("explore_gpt3_evaluations",
                    static_cast<double>(serial.stats.evaluations),
                    "count");
    reporter.record("explore_gpt3_pruned",
                    static_cast<double>(serial.stats.pruned), "count");
    reporter.record("hardware_concurrency", static_cast<double>(cores),
                    "threads");

    return same_order ? 0 : 1;
}
