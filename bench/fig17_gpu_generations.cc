/**
 * @file
 * Regenerates Fig. 17: DLRM-A pre-training across GPU generations —
 * A100 vs H100 vs H100 SuperPOD — per parallelization strategy.
 * Paper: upgrading only the inter-node fabric (H100 -> SuperPOD)
 * yields 1.82x by accelerating the blocking All2All directly.
 */

#include <iostream>

#include "bench_util.hh"
#include "core/strategy_explorer.hh"
#include "hw/hw_zoo.hh"
#include "model/model_zoo.hh"
#include "util/table.hh"

using namespace madmax;

int
main()
{
    bench::banner("Fig. 17: A100 vs H100 vs H100-SuperPOD (DLRM-A)",
                  "SuperPOD's NVLink scale-out gives ~1.82x over H100 "
                  "for All2All-bound DLRM training");

    ModelDesc model = model_zoo::dlrmA();
    TaskSpec task = TaskSpec::preTraining();

    const std::pair<const char *, ClusterSpec> systems[] = {
        {"A100 (ZionEX)", hw_zoo::dlrmTrainingSystem()},
        {"H100 DGX", hw_zoo::h100System()},
        {"H100 SuperPOD", hw_zoo::h100SuperPodSystem()},
    };

    ParallelPlan tp_ddp;
    tp_ddp.set(LayerClass::SparseEmbedding, HierStrategy{Strategy::MP});
    tp_ddp.set(LayerClass::BaseDense,
               HierStrategy{Strategy::TP, Strategy::DDP});
    ParallelPlan ddp;
    ddp.set(LayerClass::SparseEmbedding, HierStrategy{Strategy::MP});
    ddp.set(LayerClass::BaseDense, HierStrategy{Strategy::DDP});

    AsciiTable table({"system", "FSDP", "(TP, DDP)", "(DDP)",
                      "best (explorer)"});
    double h100_best = 0.0, pod_best = 0.0, a100_best = 0.0;
    for (const auto &[name, cluster] : systems) {
        PerfModel madmax(cluster);
        StrategyExplorer explorer(madmax);
        auto mqps = [&](const ParallelPlan &plan) -> std::string {
            PerfReport r = madmax.evaluate(model, task, plan);
            return r.valid
                ? strfmt("%.2f MQPS", r.throughput() / 1e6)
                : "OOM";
        };
        ExplorationResult best = explorer.best(model, task);
        double best_tp = best.report.throughput();
        if (std::string(name).find("SuperPOD") != std::string::npos)
            pod_best = best_tp;
        else if (std::string(name).find("H100") != std::string::npos)
            h100_best = best_tp;
        else
            a100_best = best_tp;
        table.addRow({name, mqps(ParallelPlan::fsdpBaseline()),
                      mqps(tp_ddp), mqps(ddp),
                      strfmt("%.2f MQPS", best_tp / 1e6)});
    }
    table.print(std::cout);

    std::cout << strfmt(
        "\nH100 over A100: %.2fx; SuperPOD over H100: %.2fx "
        "(paper: 1.82x from the fabric upgrade alone)\n",
        h100_best / a100_best, pod_best / h100_best);
    std::cout << "H100's larger HBM also unlocks replication-style "
                 "plans the A100 could not fit (Insight 8).\n";
    return 0;
}
