/**
 * @file
 * Regenerates Fig. 8: ViT training validation across model sizes,
 * global batch sizes, and GPU counts on AWS p4d.24xlarge instances
 * with FSDP, reporting model FLOPs utilization (MFU). SM utilization
 * is modeled as a function of per-device layer work (§V).
 */

#include <iostream>

#include "bench_util.hh"
#include "core/perf_model.hh"
#include "hw/hw_zoo.hh"
#include "model/model_zoo.hh"
#include "util/table.hh"

using namespace madmax;

int
main()
{
    bench::banner("Fig. 8: ViT MFU across sizes/batches/GPU counts "
                  "(AWS p4d, FSDP)",
                  "paper reports 93.88% average / 95.74% median MFU "
                  "modeling accuracy vs measurements");

    AsciiTable table({"model", "global batch", "GPUs", "iter time",
                      "MFU", "note"});

    using model_zoo::VitSize;
    const VitSize sizes[] = {VitSize::L, VitSize::H, VitSize::G,
                             VitSize::B22, VitSize::B120};
    const long batches[] = {2048, 4096};
    const int gpu_counts[] = {32, 128, 512, 2048};

    for (VitSize size : sizes) {
        for (long batch : batches) {
            for (int gpus : gpu_counts) {
                // Larger models need more devices; skip infeasible or
                // beyond-paper combinations.
                if (batch < gpus)
                    continue;
                ModelDesc model = model_zoo::vit(size, batch);
                ClusterSpec cluster = hw_zoo::awsP4d(gpus / 8);

                PerfModelOptions opts;
                // SM utilization as a function of per-device layer
                // FLOPs: saturates at 72% for multi-TFLOP blocks.
                opts.smModel = SmUtilizationModel(0.72, 6e10);
                opts.keepTimeline = false;
                PerfModel madmax(cluster, opts);
                PerfReport r =
                    madmax.evaluate(model, TaskSpec::preTraining(),
                                    ParallelPlan::fsdpBaseline());
                if (!r.valid) {
                    table.addRow({model.name, formatCount((double)batch),
                                  std::to_string(gpus), "-", "-",
                                  "OOM"});
                    continue;
                }
                // MFU: achieved model FLOPs over peak.
                double model_flops = 3.0 *
                    model.graph.totals().forwardFlopsPerSample *
                    static_cast<double>(batch);
                double mfu = model_flops /
                    (r.iterationTime *
                     cluster.aggregatePeakFlops(model.computeDtype));
                table.addRow({model.name, formatCount((double)batch),
                              std::to_string(gpus),
                              formatTime(r.iterationTime),
                              formatPercent(mfu),
                              mfu < 0.25 ? "comm/launch bound" : ""});
            }
        }
        table.addSeparator();
    }
    table.print(std::cout);
    std::cout << "\nShape check: MFU falls at small per-device batch "
                 "(SM under-occupancy) and at large scale-out (FSDP "
                 "gathers on 50 Gbps EFA), as in the paper's spread.\n";
    return 0;
}
