/**
 * @file
 * Regenerates Fig. 18: MAD-Max on alternative commodity hardware —
 * AMD MI250X / MI300X and Intel Gaudi2 clusters of 128 devices —
 * reporting the throughput improvement of the MAD-Max-identified
 * strategy over the FSDP baseline for DLRM-A pre-training. The
 * larger HBM parts (80+ GB) admit replication-heavy plans the
 * A100-40GB cannot fit (Insight 9).
 */

#include <iostream>

#include "bench_util.hh"
#include "core/strategy_explorer.hh"
#include "hw/hw_zoo.hh"
#include "model/model_zoo.hh"
#include "util/table.hh"

using namespace madmax;

int
main()
{
    bench::banner("Fig. 18: commodity hardware platforms (DLRM-A, "
                  "128 devices)",
                  "bigger HBM admits more replication; MAD-Max finds "
                  "strategies beating FSDP on every platform");

    ModelDesc model = model_zoo::dlrmA();
    TaskSpec task = TaskSpec::preTraining();

    const std::pair<const char *, ClusterSpec> systems[] = {
        {"A100-40GB (ref)", hw_zoo::dlrmTrainingSystem()},
        {"AMD MI250X", hw_zoo::mi250xSystem()},
        {"AMD MI300X", hw_zoo::mi300xSystem()},
        {"Intel Gaudi2", hw_zoo::gaudi2System()},
    };

    AsciiTable table({"platform", "HBM/device", "FSDP", "MAD-Max best",
                      "speedup", "best dense strategy"});
    for (const auto &[name, cluster] : systems) {
        PerfModel madmax(cluster);
        StrategyExplorer explorer(madmax);
        PerfReport baseline = explorer.baseline(model, task);
        ExplorationResult best = explorer.best(model, task);
        table.addRow(
            {name, formatBytes(cluster.device.hbmCapacity),
             strfmt("%.2f MQPS", baseline.throughput() / 1e6),
             strfmt("%.2f MQPS", best.report.throughput() / 1e6),
             strfmt("%.2fx",
                    best.report.throughput() / baseline.throughput()),
             best.plan.strategyFor(LayerClass::BaseDense).toString()});
    }
    table.print(std::cout);

    std::cout << "\nInsight 9: 80+ GB HBM parts let MAD-Max replicate "
                 "more dense components; the independent compute and "
                 "communication streams of the model transfer across "
                 "vendors unchanged.\n";
    return 0;
}
