/**
 * @file
 * Regenerates Fig. 14: task-level diversity for DLRM-A on the same
 * system — pre-training, inference, and the two fine-tuning scopes —
 * showing per-task optimal strategies and how DDP becomes valid once
 * gradients/optimizer states shrink (Insight 5).
 */

#include <iostream>

#include "bench_util.hh"
#include "core/strategy_explorer.hh"
#include "hw/hw_zoo.hh"
#include "model/model_zoo.hh"
#include "util/table.hh"

using namespace madmax;

int
main()
{
    bench::banner("Fig. 14: task-level diversity (DLRM-A)",
                  "DDP is invalid for pre-training but viable for "
                  "inference/fine-tuning; speedup over FSDP varies by "
                  "task");

    ModelDesc model = model_zoo::dlrmA();
    PerfModel madmax(hw_zoo::dlrmTrainingSystem());
    StrategyExplorer explorer(madmax);

    const TaskSpec tasks[] = {
        TaskSpec::preTraining(),
        TaskSpec::inference(),
        TaskSpec::fineTuning(FineTuneScope::DenseOnly),
        TaskSpec::fineTuning(FineTuneScope::EmbeddingOnly),
    };

    AsciiTable table({"task", "FSDP", "best", "speedup", "best plan",
                      "(DDP) dense valid?"});
    for (const TaskSpec &task : tasks) {
        PerfReport baseline = explorer.baseline(model, task);
        ExplorationResult best = explorer.best(model, task);

        ParallelPlan ddp;
        ddp.set(LayerClass::SparseEmbedding,
                HierStrategy{Strategy::MP});
        ddp.set(LayerClass::BaseDense, HierStrategy{Strategy::DDP});
        bool ddp_valid = madmax.evaluate(model, task, ddp).valid;

        table.addRow(
            {task.toString(),
             formatCount(baseline.throughput()) + "/s",
             formatCount(best.report.throughput()) + "/s",
             strfmt("%.2fx",
                    best.report.throughput() / baseline.throughput()),
             best.plan.strategyFor(LayerClass::BaseDense).toString(),
             ddp_valid ? "yes" : "no (OOM)"});
    }
    table.print(std::cout);

    std::cout << "\nInsight 5: embedding-only fine-tuning skips the "
                 "costly MLP weight-gradient work, so its optimal "
                 "ordering resembles inference.\n";
    return 0;
}
