/**
 * @file
 * Regenerates Fig. 20: serialized-execution breakdowns (a, c) and
 * computation-communication overlap breakdowns (b, d) for DLRM-A and
 * GPT-3 training, on the baseline systems and under the 10x
 * interconnect/compute upgrades of Fig. 19 — explaining *where* the
 * scaling speedups come from.
 */

#include <iostream>

#include "bench_util.hh"
#include "core/strategy_explorer.hh"
#include "dse/sweep.hh"
#include "hw/hw_zoo.hh"
#include "model/model_zoo.hh"
#include "util/table.hh"

using namespace madmax;

namespace
{

void
printBreakdown(const char *label, const PerfReport &r)
{
    std::cout << "\n" << label << " — serialized execution:\n";
    AsciiTable serialized({"category", "time", "share"});
    for (const auto &[cat, secs] : r.serializedBreakdown) {
        serialized.addRow({toString(cat), formatTime(secs),
                           formatPercent(secs / r.serializedTime)});
    }
    serialized.print(std::cout);

    std::cout << "communication overlap:\n";
    AsciiTable overlap({"collective", "total", "exposed", "hidden"});
    for (const auto &[cat, secs] : r.serializedBreakdown) {
        if (cat == EventCategory::Gemm ||
            cat == EventCategory::EmbeddingLookup) {
            continue;
        }
        double exposed = 0.0;
        auto it = r.exposedBreakdown.find(cat);
        if (it != r.exposedBreakdown.end())
            exposed = it->second;
        overlap.addRow({toString(cat), formatTime(secs),
                        formatTime(exposed),
                        formatTime(secs - exposed)});
    }
    overlap.print(std::cout);
}

} // namespace

int
main()
{
    bench::banner("Fig. 20: execution and communication breakdowns "
                  "(DLRM-A & GPT-3 training)",
                  "speedups come from faster compute (GPT-3), reduced "
                  "All2All (DLRM), or newly-unlocked strategies");

    struct Case
    {
        const char *label;
        ModelDesc model;
        ClusterSpec cluster;
        HwAxis upgrade;
    };
    std::vector<Case> cases;
    cases.push_back({"(a/b) DLRM-A on ZionEX", model_zoo::dlrmA(),
                     hw_zoo::dlrmTrainingSystem(),
                     HwAxis::InterBandwidth});
    cases.push_back({"(c/d) GPT-3 on the LLM system", model_zoo::gpt3(),
                     hw_zoo::llmTrainingSystem(), HwAxis::Compute});

    for (const Case &c : cases) {
        PerfModel base(c.cluster);
        StrategyExplorer explorer(base);
        ExplorationResult best =
            explorer.best(c.model, TaskSpec::preTraining());
        printBreakdown(strfmt("%s (baseline hardware, plan %s)",
                              c.label, best.plan.toString().c_str())
                           .c_str(),
                       best.report);

        PerfModel scaled(scaleAxis(c.cluster, c.upgrade, 10.0));
        StrategyExplorer explorer_scaled(scaled);
        ExplorationResult best_scaled =
            explorer_scaled.best(c.model, TaskSpec::preTraining());
        printBreakdown(
            strfmt("%s (10x %s, plan %s)", c.label,
                   toString(c.upgrade).c_str(),
                   best_scaled.plan.toString().c_str())
                .c_str(),
            best_scaled.report);
        std::cout << strfmt(
            "\nspeedup from 10x %s: %.2fx\n\n%s\n",
            toString(c.upgrade).c_str(),
            best_scaled.report.throughput() /
                best.report.throughput(),
            std::string(72, '-').c_str());
    }
    return 0;
}
