#include "hw/device.hh"

#include "util/logging.hh"
#include "util/strfmt.hh"

namespace madmax
{

double
bytesOf(DataType dtype)
{
    switch (dtype) {
      case DataType::FP32:
      case DataType::TF32:
        return 4.0;
      case DataType::FP16:
      case DataType::BF16:
        return 2.0;
    }
    panic("bytesOf: unknown DataType");
}

std::string
toString(DataType dtype)
{
    switch (dtype) {
      case DataType::FP32: return "fp32";
      case DataType::TF32: return "tf32";
      case DataType::FP16: return "fp16";
      case DataType::BF16: return "bf16";
    }
    panic("toString: unknown DataType");
}

double
DeviceSpec::peakFlops(DataType dtype) const
{
    double rate = 0.0;
    switch (dtype) {
      case DataType::FP32:
        rate = peakFlopsFp32;
        break;
      case DataType::TF32:
        rate = peakFlopsTf32 > 0.0 ? peakFlopsTf32 : peakFlopsFp32;
        break;
      case DataType::FP16:
      case DataType::BF16:
        rate = peakFlopsTensor16 > 0.0 ? peakFlopsTensor16 : peakFlopsFp32;
        break;
    }
    if (rate <= 0.0) {
        fatal(strfmt("device '%s' has no peak FLOPS for dtype %s",
                     name.c_str(), madmax::toString(dtype).c_str()));
    }
    return rate;
}

} // namespace madmax
