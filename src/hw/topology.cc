#include "hw/topology.hh"

#include <cstring>

#include "hw/cluster.hh"
#include "util/logging.hh"
#include "util/strfmt.hh"

namespace madmax
{

int
TopologySpec::totalDevices() const
{
    int n = 1;
    for (const TopologyLevel &lv : levels)
        n *= lv.fan;
    return n;
}

int
TopologySpec::scaleOutFan() const
{
    int n = 1;
    for (size_t i = 1; i < levels.size(); ++i)
        n *= levels[i].fan;
    return n;
}

void
TopologySpec::validate() const
{
    if (levels.size() < 2 || levels.size() > 8) {
        fatal(strfmt("topology '%s': %zu levels outside [2, 8] (level 0 "
                     "is the scale-up tier, 1.. the scale-out tiers)",
                     name.c_str(), levels.size()));
    }
    for (size_t i = 0; i < levels.size(); ++i) {
        const TopologyLevel &lv = levels[i];
        if (lv.fan < 1) {
            fatal(strfmt("topology '%s' level %zu ('%s'): fan %d < 1",
                         name.c_str(), i, lv.name.c_str(), lv.fan));
        }
        if (lv.rails < 1) {
            fatal(strfmt("topology '%s' level %zu ('%s'): rails %d < 1",
                         name.c_str(), i, lv.name.c_str(), lv.rails));
        }
        if (lv.sharers < 1.0) {
            fatal(strfmt("topology '%s' level %zu ('%s'): sharers %.3f "
                         "< 1 (a link cannot be shared by less than one "
                         "collective)",
                         name.c_str(), i, lv.name.c_str(), lv.sharers));
        }
        // Mirrors ClusterSpec::validate: a tier only needs links when
        // it actually connects more than one child.
        if (lv.fan > 1 && lv.linkBandwidth <= 0.0) {
            fatal(strfmt("topology '%s' level %zu ('%s'): fan %d needs "
                         "positive link bandwidth",
                         name.c_str(), i, lv.name.c_str(), lv.fan));
        }
        if (lv.linkBandwidth < 0.0) {
            fatal(strfmt("topology '%s' level %zu ('%s'): negative link "
                         "bandwidth",
                         name.c_str(), i, lv.name.c_str()));
        }
    }
}

void
TopologySpec::validateAgainst(const ClusterSpec &cluster) const
{
    validate();
    if (levels[0].fan != cluster.devicesPerNode) {
        fatal(strfmt("topology '%s': scale-up fan %d != cluster '%s' "
                     "devicesPerNode %d",
                     name.c_str(), levels[0].fan, cluster.name.c_str(),
                     cluster.devicesPerNode));
    }
    if (scaleOutFan() != cluster.numNodes) {
        fatal(strfmt("topology '%s': scale-out fan product %d != "
                     "cluster '%s' numNodes %d",
                     name.c_str(), scaleOutFan(), cluster.name.c_str(),
                     cluster.numNodes));
    }
}

uint64_t
TopologySpec::fingerprint() const
{
    uint64_t h = 1469598103934665603ull;
    auto mixByte = [&h](unsigned char b) {
        h ^= b;
        h *= 1099511628211ull;
    };
    auto mixString = [&](const std::string &s) {
        for (char c : s)
            mixByte(static_cast<unsigned char>(c));
        mixByte(0xffu); // Field separator.
    };
    auto mixU64 = [&](uint64_t v) {
        for (int byte = 0; byte < 8; ++byte)
            mixByte(static_cast<unsigned char>((v >> (byte * 8)) & 0xffu));
    };
    auto mixDouble = [&](double v) {
        uint64_t bits;
        static_assert(sizeof(bits) == sizeof(v), "double is 64-bit");
        std::memcpy(&bits, &v, sizeof(bits));
        mixU64(bits);
    };
    mixString(name);
    mixU64(levels.size());
    for (const TopologyLevel &lv : levels) {
        mixString(lv.name);
        mixU64(static_cast<uint64_t>(lv.fan));
        mixU64(static_cast<uint64_t>(lv.rails));
        mixDouble(lv.linkBandwidth);
        mixDouble(lv.linkLatency);
        mixDouble(lv.sharers);
    }
    return h;
}

TopologySpec
TopologySpec::flatEquivalent(const ClusterSpec &cluster)
{
    TopologySpec t;
    t.name = "flat-equivalent";
    TopologyLevel node;
    node.name = "node";
    node.fan = cluster.devicesPerNode;
    node.linkBandwidth = cluster.effIntraBandwidth();
    TopologyLevel fabric;
    fabric.name = "cluster";
    fabric.fan = cluster.numNodes;
    fabric.linkBandwidth = cluster.effInterBandwidth();
    t.levels = {node, fabric};
    return t;
}

} // namespace madmax
