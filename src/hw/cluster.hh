/**
 * @file
 * Distributed-system description: a cluster is numNodes nodes of
 * devicesPerNode identical devices, an intra-node fabric and an
 * inter-node fabric, plus the utilization factors that derate peak
 * rates into achievable ones (the paper's tunable calibration knobs,
 * §IV-B/§IV-C). Mirrors Table III.
 */

#ifndef MADMAX_HW_CLUSTER_HH
#define MADMAX_HW_CLUSTER_HH

#include <memory>
#include <string>
#include <vector>

#include "hw/device.hh"

namespace madmax
{

struct TopologySpec;

/** Interconnect technology; determines which fabric a collective rides. */
enum class FabricKind
{
    NVLink,      ///< NVSwitch/NVLink style scale-up fabric.
    InfiniBand,  ///< IB scale-out fabric.
    RoCE,        ///< RDMA over Converged Ethernet scale-out fabric.
    XGMI,        ///< AMD Infinity Fabric scale-up links.
    Ethernet,    ///< Plain (possibly EFA) Ethernet scale-out.
    PCIe,        ///< Host-mediated fallback.
};

std::string toString(FabricKind kind);

/**
 * Achievable-fraction-of-peak factors in [0, 1]. The paper quotes ~70%
 * SM utilization for dense layers and ~80% HBM utilization for
 * embedding bags on A100s; link utilizations absorb NCCL protocol
 * overheads measured on real systems.
 */
struct UtilizationSpec
{
    double compute = 0.70;    ///< GEMM/attention SM utilization.
    double hbm = 0.80;        ///< Embedding-bag HBM efficiency.
    double intraLink = 0.80;  ///< NVLink-class achievable fraction.
    double interLink = 0.65;  ///< NIC-class achievable fraction.
};

/**
 * One homogeneous pool of devices inside a mixed-generation cluster:
 * numNodes nodes of devicesPerNode identical devices behind a shared
 * scale-up fabric. Groups talk to each other over the cluster-level
 * inter-node fabric (mixed fleets are stitched at the scale-out tier;
 * nobody NVLinks an A100 to an H100).
 */
struct DeviceGroup
{
    std::string name;
    DeviceSpec device;
    int devicesPerNode = 8;
    int numNodes = 1;
    FabricKind intraFabric = FabricKind::NVLink;

    int numDevices() const { return devicesPerNode * numNodes; }
};

/**
 * A homogeneous two-level distributed system. The two-level shape
 * (devices within a node, nodes within a cluster) is what makes
 * hierarchical (intra, inter) parallelization strategies meaningful.
 */
struct ClusterSpec
{
    std::string name;
    DeviceSpec device;
    int devicesPerNode = 8;
    int numNodes = 1;
    FabricKind intraFabric = FabricKind::NVLink;
    FabricKind interFabric = FabricKind::InfiniBand;
    UtilizationSpec util;

    /**
     * Optional hierarchical topology (hw/topology.hh). When set, the
     * collective layer prices communication on the explicit tier
     * stack (TopologyCollectiveModel) instead of the flat two-scope
     * model, and validate() additionally checks shape consistency
     * (scale-up fan == devicesPerNode, scale-out fan product ==
     * numNodes). Null means the flat default — every existing
     * cluster, report, and golden is unchanged.
     *
     * Topology levels carry absolute link rates: the Fig. 19 scaling
     * builders below derate only the flat device fields, never an
     * attached explicit topology.
     */
    std::shared_ptr<const TopologySpec> topology;

    /**
     * Mixed-generation device pools. Empty means the classic
     * homogeneous cluster described by the flat fields above — every
     * existing config, report, and golden is unchanged. Non-empty
     * makes the cluster heterogeneous: the flat device/count fields
     * are ignored, each group is an island evaluable on its own via
     * groupCluster(), and only phase/layer placement across islands
     * (dse/pareto_engine.hh) knows how to price the whole cluster —
     * PerfModel on a heterogeneous ClusterSpec is an error.
     */
    std::vector<DeviceGroup> groups;

    /** True when the cluster is a mixed-generation fleet. */
    bool isHeterogeneous() const { return !groups.empty(); }

    /**
     * The i-th device group as a standalone homogeneous cluster
     * (cluster-level inter fabric and utilizations, group-level
     * everything else). Valid only for heterogeneous clusters.
     */
    ClusterSpec groupCluster(int i) const;

    /** Total device count (= Table III "# nodes" x "devices per node"). */
    int numDevices() const { return devicesPerNode * numNodes; }

    /**
     * Device count including groups: sum of group sizes when
     * heterogeneous, numDevices() otherwise.
     */
    int totalDevices() const;

    /** Achievable per-device intra-node bandwidth, bytes/s. */
    double effIntraBandwidth() const;

    /** Achievable per-device inter-node bandwidth, bytes/s. */
    double effInterBandwidth() const;

    /** Aggregate peak FLOP/s across the cluster for @p dtype. */
    double aggregatePeakFlops(DataType dtype) const;

    /** Aggregate HBM capacity in bytes. */
    double aggregateHbmCapacity() const;

    /** Aggregate HBM bandwidth in bytes/s. */
    double aggregateHbmBandwidth() const;

    /** Validate invariants (positive counts/rates). @throws ConfigError */
    void validate() const;

    /**
     * @name Scaled variants
     * Builders for the Fig. 19 future-technology scaling study: return a
     * copy with one capability multiplied by @p factor.
     */
    /// @{
    ClusterSpec withComputeScale(double factor) const;
    ClusterSpec withHbmCapacityScale(double factor) const;
    ClusterSpec withHbmBandwidthScale(double factor) const;
    ClusterSpec withIntraBandwidthScale(double factor) const;
    ClusterSpec withInterBandwidthScale(double factor) const;
    /// @}

    /** Copy with a different node count (e.g. 8- vs 128-GPU
     *  validation). An attached topology cannot describe the resized
     *  cluster, so the copy drops it and falls back to flat pricing. */
    ClusterSpec withNumNodes(int nodes) const;
};

} // namespace madmax

#endif // MADMAX_HW_CLUSTER_HH
