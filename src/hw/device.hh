/**
 * @file
 * Per-device (accelerator) hardware description. Mirrors the columns of
 * Table IV in the paper: peak FLOPS by data type, HBM capacity and
 * bandwidth, and per-device intra-/inter-node interconnect bandwidths.
 */

#ifndef MADMAX_HW_DEVICE_HH
#define MADMAX_HW_DEVICE_HH

#include <string>

namespace madmax
{

/**
 * Numeric precision for compute and storage. GPU peak FLOPS are heavily
 * data-type dependent (§IV-B), and parameter/activation byte counts
 * follow element size.
 */
enum class DataType
{
    FP32,  ///< IEEE fp32 (vector units).
    TF32,  ///< Tensor-core TF32 (fp32 storage, reduced-precision mul).
    FP16,  ///< Tensor-core fp16.
    BF16,  ///< Tensor-core bf16 (same throughput class as fp16).
};

/** Element size in bytes for @p dtype as stored in memory. */
double bytesOf(DataType dtype);

/** Human-readable name ("fp32", "tf32", ...). */
std::string toString(DataType dtype);

/**
 * One accelerator's datasheet. All rates are peak; utilization factors
 * that derate them live in ClusterSpec / SmUtilizationModel so the same
 * silicon can be modeled in differently-tuned deployments.
 */
struct DeviceSpec
{
    std::string name;

    /** Peak dense tensor-core FLOP/s for fp16/bf16 inputs. */
    double peakFlopsTensor16 = 0.0;

    /** Peak tensor-core TF32 FLOP/s. */
    double peakFlopsTf32 = 0.0;

    /** Peak vector fp32 FLOP/s (fallback for pre-tensor-core parts). */
    double peakFlopsFp32 = 0.0;

    /** HBM capacity in bytes. */
    double hbmCapacity = 0.0;

    /** HBM peak bandwidth in bytes/second. */
    double hbmBandwidth = 0.0;

    /**
     * Per-device intra-node interconnect bandwidth, unidirectional,
     * bytes/second (e.g. NVLink).
     */
    double intraNodeBandwidth = 0.0;

    /**
     * Per-device inter-node interconnect bandwidth, unidirectional,
     * bytes/second (e.g. one 200 Gbps NIC = 25 GB/s).
     */
    double interNodeBandwidth = 0.0;

    /** Board power (TDP) in watts, for operational-energy estimates. */
    double tdpWatts = 0.0;

    /**
     * Peak FLOP/s for @p dtype. TF32 falls back to fp32 vector rate on
     * devices without tensor cores; fp16/bf16 fall back likewise.
     *
     * @throws ConfigError if the device has no usable rate at all.
     */
    double peakFlops(DataType dtype) const;
};

} // namespace madmax

#endif // MADMAX_HW_DEVICE_HH
