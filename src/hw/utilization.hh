/**
 * @file
 * Batch-size-dependent SM utilization. For the ViT validation (Fig. 8)
 * the paper states: "We model SM utilization as a function of GPU local
 * batch size and model layer FLOPs requirements." Small per-device work
 * cannot fill the SMs, so utilization ramps with the per-invocation
 * FLOP count and saturates at the device's big-GEMM ceiling.
 */

#ifndef MADMAX_HW_UTILIZATION_HH
#define MADMAX_HW_UTILIZATION_HH

namespace madmax
{

/**
 * Saturating utilization curve:
 *   util(f) = maxUtil * f / (f + halfSaturationFlops)
 * where f is the per-device FLOPs of one layer invocation (layer FLOPs
 * per sample x local batch). A layer with f == halfSaturationFlops runs
 * at half the ceiling; f -> infinity approaches the ceiling.
 */
class SmUtilizationModel
{
  public:
    /**
     * @param max_util Asymptotic utilization in (0, 1].
     * @param half_saturation_flops FLOPs at which util is max_util/2;
     *        must be positive.
     */
    SmUtilizationModel(double max_util, double half_saturation_flops);

    /** Utilization in (0, max_util] for a layer of @p flops work. */
    double utilization(double flops) const;

    double maxUtil() const { return maxUtil_; }
    double halfSaturationFlops() const { return halfSaturationFlops_; }

  private:
    double maxUtil_;
    double halfSaturationFlops_;
};

} // namespace madmax

#endif // MADMAX_HW_UTILIZATION_HH
