/**
 * @file
 * Hierarchical network-topology description: an explicit tier stack
 * (e.g. node -> rail -> pod -> fleet) with per-link bandwidth,
 * latency, rail multiplicity, and a static congestion factor per
 * tier. This is the hardware-side half of the topology-aware
 * collective model (collective/topology_model.hh prices collectives
 * against it); a ClusterSpec optionally carries one.
 *
 * Level conventions:
 *  - levels[0] is the scale-up tier: its fan is the devices-per-node
 *    count and its links are the intra-node fabric.
 *  - levels[1..] are scale-out tiers, innermost first; the product of
 *    their fans is the node count. A CommScope::Inter collective
 *    spans levels 1.., CommScope::Global spans all levels.
 *  - linkBandwidth is the *achievable* per-device bytes/s on that
 *    tier's links (protocol overheads already derated, matching
 *    ClusterSpec::effIntraBandwidth / effInterBandwidth);
 *    effBandwidth() further scales it by rails / sharers.
 *  - linkLatency is the per-ring-step alpha in seconds; a negative
 *    value means "inherit the CollectiveLatency default" (intraAlpha
 *    for level 0, interAlpha above), resolved by the cost model.
 */

#ifndef MADMAX_HW_TOPOLOGY_HH
#define MADMAX_HW_TOPOLOGY_HH

#include <cstdint>
#include <string>
#include <vector>

namespace madmax
{

struct ClusterSpec;

/** One tier of the hierarchy. */
struct TopologyLevel
{
    std::string name = "tier"; ///< e.g. "node", "rail", "pod", "fleet".

    /** Children per parent at this tier (level 0: devices per node). */
    int fan = 1;

    /** Achievable per-device bandwidth on this tier's links, bytes/s. */
    double linkBandwidth = 0.0;

    /** Per-step launch latency (alpha), seconds; < 0 inherits the
     *  CollectiveLatency default for the tier. */
    double linkLatency = -1.0;

    /** Parallel rails multiplying the link bandwidth. */
    int rails = 1;

    /** Static congestion: concurrent collectives sharing this tier's
     *  links (>= 1; an oversubscribed tier models as sharers > 1). */
    double sharers = 1.0;

    /** Bandwidth a single collective sees on this tier, bytes/s. */
    double effBandwidth() const
    {
        return linkBandwidth * static_cast<double>(rails) / sharers;
    }
};

/**
 * A validated tier stack. Immutable once attached to a ClusterSpec
 * (held by shared_ptr<const>); cheap to copy.
 */
struct TopologySpec
{
    std::string name = "topology";
    std::vector<TopologyLevel> levels; ///< [0] = scale-up tier.

    /** Product of all fans (= the cluster's device count). */
    int totalDevices() const;

    /** Product of the scale-out fans, levels 1.. (= node count). */
    int scaleOutFan() const;

    /** Structural invariants: 2..8 levels, fans >= 1, rails >= 1,
     *  sharers >= 1, positive bandwidth on tiers with fan > 1.
     *  @throws ConfigError */
    void validate() const;

    /** validate() plus shape consistency with @p cluster: levels[0]
     *  fan == devicesPerNode and scaleOutFan() == numNodes.
     *  @throws ConfigError */
    void validateAgainst(const ClusterSpec &cluster) const;

    /** Order-sensitive FNV-1a digest over every field — the identity
     *  collective-time memo keys and engine cache keys embed. */
    uint64_t fingerprint() const;

    /**
     * The two-tier stack that mirrors the flat model exactly: level 0
     * carries the cluster's effective intra-node bandwidth with fan
     * devicesPerNode, level 1 the effective inter-node bandwidth with
     * fan numNodes; latencies inherit. The topology cost model prices
     * every (collective, scope, bytes) on this spec bit-identically
     * to the flat CollectiveModel (proven by
     * tests/collective/test_topology_differential.cc).
     */
    static TopologySpec flatEquivalent(const ClusterSpec &cluster);
};

} // namespace madmax

#endif // MADMAX_HW_TOPOLOGY_HH
