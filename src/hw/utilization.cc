#include "hw/utilization.hh"

#include "util/logging.hh"
#include "util/strfmt.hh"

namespace madmax
{

SmUtilizationModel::SmUtilizationModel(double max_util,
                                       double half_saturation_flops)
    : maxUtil_(max_util), halfSaturationFlops_(half_saturation_flops)
{
    if (max_util <= 0.0 || max_util > 1.0)
        fatal(strfmt("SmUtilizationModel: max_util %.3f outside (0, 1]",
                     max_util));
    if (half_saturation_flops <= 0.0)
        fatal("SmUtilizationModel: half_saturation_flops must be positive");
}

double
SmUtilizationModel::utilization(double flops) const
{
    if (flops <= 0.0)
        return maxUtil_; // Degenerate layer: treat as fully efficient.
    return maxUtil_ * flops / (flops + halfSaturationFlops_);
}

} // namespace madmax
