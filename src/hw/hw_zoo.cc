#include "hw/hw_zoo.hh"

#include <algorithm>
#include <memory>

#include "util/units.hh"

namespace madmax::hw_zoo
{

using namespace madmax::units;

DeviceSpec
a100_40()
{
    DeviceSpec d;
    d.name = "A100-40GB";
    d.tdpWatts = 400;
    d.peakFlopsTensor16 = tflops(312);
    d.peakFlopsTf32 = tflops(156);
    d.peakFlopsFp32 = tflops(19.5);
    d.hbmCapacity = gib(40);
    d.hbmBandwidth = tBps(1.6);
    d.intraNodeBandwidth = gBps(600) / 2.0; // 600 GB/s is bidirectional.
    d.interNodeBandwidth = gbps(200);
    return d;
}

DeviceSpec
a100_80()
{
    DeviceSpec d = a100_40();
    d.name = "A100-80GB";
    d.hbmCapacity = gib(80);
    d.hbmBandwidth = tBps(2.0);
    return d;
}

DeviceSpec
h100()
{
    DeviceSpec d;
    d.name = "H100";
    d.tdpWatts = 700;
    d.peakFlopsTensor16 = tflops(756);
    d.peakFlopsTf32 = tflops(378);
    d.peakFlopsFp32 = tflops(67);
    d.hbmCapacity = gib(80);
    d.hbmBandwidth = tBps(2.0);
    d.intraNodeBandwidth = gBps(900) / 2.0; // 900 GB/s bidirectional.
    d.interNodeBandwidth = gbps(400);
    return d;
}

DeviceSpec
h100SuperPod()
{
    // NVLink replaces the scale-out fabric for up to 256 GPUs. The
    // paper quotes the SuperPOD at 9x the A100's per-device inter-node
    // bandwidth (Insight 10), i.e. 225 GB/s unidirectional.
    DeviceSpec d = h100();
    d.name = "H100-SuperPOD";
    d.interNodeBandwidth = gBps(225);
    return d;
}

DeviceSpec
v100_16()
{
    DeviceSpec d;
    d.name = "V100-16GB";
    d.tdpWatts = 300;
    d.peakFlopsTensor16 = tflops(125);
    d.peakFlopsTf32 = 0.0; // No TF32 on Volta; falls back to fp32.
    d.peakFlopsFp32 = tflops(15.7);
    d.hbmCapacity = gib(16);
    d.hbmBandwidth = gBps(900);
    d.intraNodeBandwidth = gBps(300) / 2.0; // NVLink2, bidirectional.
    d.interNodeBandwidth = gbps(25);
    return d;
}

DeviceSpec
v100_32()
{
    DeviceSpec d = v100_16();
    d.name = "V100-32GB";
    d.hbmCapacity = gib(32);
    d.interNodeBandwidth = gbps(100) / 8.0; // 100 Gbps shared by 8 GPUs.
    return d;
}

DeviceSpec
mi250x()
{
    // Table IV: 383/96 TFLOPS, 128 GB, 3.2 TB/s, 500 GB/s, 200 Gbps.
    DeviceSpec d;
    d.name = "MI250X";
    d.tdpWatts = 560;
    d.peakFlopsTensor16 = tflops(383);
    d.peakFlopsTf32 = tflops(95.7);
    d.peakFlopsFp32 = tflops(47.9);
    d.hbmCapacity = gib(128);
    d.hbmBandwidth = tBps(3.2);
    d.intraNodeBandwidth = gBps(500) / 2.0;
    d.interNodeBandwidth = gbps(200);
    return d;
}

DeviceSpec
mi300x()
{
    // Table IV: 1307/654 TFLOPS, 192 GB, 5.3 TB/s, 896 GB/s, 400 Gbps.
    DeviceSpec d;
    d.name = "MI300X";
    d.tdpWatts = 750;
    d.peakFlopsTensor16 = tflops(1307);
    d.peakFlopsTf32 = tflops(653.7);
    d.peakFlopsFp32 = tflops(163.4);
    d.hbmCapacity = gib(192);
    d.hbmBandwidth = tBps(5.3);
    d.intraNodeBandwidth = gBps(896) / 2.0;
    d.interNodeBandwidth = gbps(400);
    return d;
}

DeviceSpec
gaudi2()
{
    // Table IV: 400/200 TFLOPS, 96 GB, 2.45 TB/s. Gaudi2 integrates
    // 24x 100 GbE ports: 21 serve intra-node (262.5 GB/s), 3 scale out.
    DeviceSpec d;
    d.name = "Gaudi2";
    d.tdpWatts = 600;
    d.peakFlopsTensor16 = tflops(400);
    d.peakFlopsTf32 = tflops(200);
    d.peakFlopsFp32 = tflops(100);
    d.hbmCapacity = gib(96);
    d.hbmBandwidth = tBps(2.45);
    d.intraNodeBandwidth = gBps(262.5);
    d.interNodeBandwidth = gbps(300);
    return d;
}

ClusterSpec
dlrmTrainingSystem()
{
    ClusterSpec c;
    c.name = "ZionEX-128xA100-40GB";
    c.device = a100_40();
    c.devicesPerNode = 8;
    c.numNodes = 16;
    c.intraFabric = FabricKind::NVLink;
    c.interFabric = FabricKind::RoCE;
    c.util.compute = 0.70; // Paper: ~70% SM utilization on A100 GEMMs.
    c.util.hbm = 0.80;     // Paper: ~80% for embedding bags on A100.
    c.util.intraLink = 0.80;
    c.util.interLink = 0.65;
    return c;
}

ClusterSpec
llmTrainingSystem()
{
    ClusterSpec c;
    c.name = "LLM-2048xA100-80GB";
    c.device = a100_80();
    c.devicesPerNode = 8;
    c.numNodes = 256;
    c.intraFabric = FabricKind::NVLink;
    c.interFabric = FabricKind::InfiniBand;
    // BF16 tensor-core MFU ceilings on transformer stacks sit lower
    // than TF32 recommendation GEMMs; IB sustains better than RoCE.
    c.util.compute = 0.60;
    c.util.hbm = 0.80;
    c.util.intraLink = 0.80;
    c.util.interLink = 0.80;
    return c;
}

namespace
{

ClusterSpec
simulated128(const DeviceSpec &device, FabricKind inter, int num_nodes,
             const std::string &name)
{
    ClusterSpec c = dlrmTrainingSystem();
    c.name = name;
    c.device = device;
    c.numNodes = num_nodes;
    c.interFabric = inter;
    return c;
}

} // namespace

ClusterSpec
h100System(int num_nodes)
{
    return simulated128(h100(), FabricKind::InfiniBand, num_nodes,
                        "H100-DGX");
}

ClusterSpec
h100SuperPodSystem(int num_nodes)
{
    return simulated128(h100SuperPod(), FabricKind::NVLink, num_nodes,
                        "H100-SuperPOD");
}

ClusterSpec
mi250xSystem(int num_nodes)
{
    return simulated128(mi250x(), FabricKind::InfiniBand, num_nodes,
                        "MI250X-cluster");
}

ClusterSpec
mi300xSystem(int num_nodes)
{
    return simulated128(mi300x(), FabricKind::InfiniBand, num_nodes,
                        "MI300X-cluster");
}

ClusterSpec
gaudi2System(int num_nodes)
{
    return simulated128(gaudi2(), FabricKind::RoCE, num_nodes,
                        "Gaudi2-cluster");
}

ClusterSpec
mixedInferenceFleet(int h100_nodes, int a100_nodes)
{
    ClusterSpec c;
    c.name = "Mixed-H100-A100-80GB";
    c.interFabric = FabricKind::InfiniBand;
    // Transformer-serving utilizations (see llmTrainingSystem).
    c.util.compute = 0.60;
    c.util.hbm = 0.80;
    c.util.intraLink = 0.80;
    c.util.interLink = 0.80;

    DeviceGroup h100_pool;
    h100_pool.name = "h100-pool";
    h100_pool.device = h100();
    h100_pool.devicesPerNode = 8;
    h100_pool.numNodes = h100_nodes;
    h100_pool.intraFabric = FabricKind::NVLink;
    c.groups.push_back(h100_pool);

    DeviceGroup a100_pool;
    a100_pool.name = "a100-80-pool";
    a100_pool.device = a100_80();
    a100_pool.devicesPerNode = 8;
    a100_pool.numNodes = a100_nodes;
    a100_pool.intraFabric = FabricKind::NVLink;
    c.groups.push_back(a100_pool);
    return c;
}

ClusterSpec
awsP4d(int num_nodes)
{
    ClusterSpec c;
    c.name = "aws-p4d.24xlarge";
    c.device = a100_40();
    // 400 Gbps EFA per instance, shared across the 8 GPUs.
    c.device.interNodeBandwidth = gbps(400) / 8.0;
    c.devicesPerNode = 8;
    c.numNodes = num_nodes;
    c.intraFabric = FabricKind::NVLink;
    c.interFabric = FabricKind::Ethernet;
    return c;
}

std::vector<CloudInstance>
cloudInstances(int num_nodes)
{
    std::vector<CloudInstance> out;
    const double a100_peak = a100_40().peakFlopsTensor16;

    auto add = [&](const std::string &name, const DeviceSpec &dev,
                   double inter_bw, FabricKind fabric,
                   int node_scale) {
        ClusterSpec c;
        c.name = name;
        c.device = dev;
        c.device.interNodeBandwidth = inter_bw;
        c.devicesPerNode = 8;
        c.numNodes = num_nodes * node_scale;
        c.intraFabric = FabricKind::NVLink;
        c.interFabric = fabric;
        out.push_back(CloudInstance{
            name, c, dev.peakFlopsTensor16 / a100_peak});
    };

    // Three GPU generations; inter-node bandwidth per device ranges
    // from <1 GB/s to 25 GB/s as in Fig. 16. Small-HBM V100 fleets
    // need proportionally more instances to hold the sharded tables
    // (the study co-explores instance count with mapping).
    add("p3.16xlarge-V100", v100_16(), gbps(25) / 8.0,
        FabricKind::Ethernet, 4);
    add("p3dn.24xlarge-V100", v100_32(), gbps(100) / 8.0,
        FabricKind::Ethernet, 2);
    add("p4d.24xlarge-A100", a100_40(), gbps(400) / 8.0,
        FabricKind::Ethernet, 1);
    add("p4de.24xlarge-A100", a100_80(), gbps(400) / 8.0,
        FabricKind::Ethernet, 1);
    add("azure-ND96asr-A100", a100_40(), gbps(200),
        FabricKind::InfiniBand, 1);
    add("p5.48xlarge-H100", h100(), gbps(3200) / 8.0,
        FabricKind::Ethernet, 1);
    return out;
}

namespace
{

/** Largest divisor of @p n that is <= @p at_most (>= 1). */
int
divisorAtMost(int n, int at_most)
{
    int d = std::max(1, std::min(n, at_most));
    while (n % d != 0)
        --d;
    return d;
}

} // namespace

TopologySpec
flatTopologyPreset(const ClusterSpec &cluster)
{
    return TopologySpec::flatEquivalent(cluster);
}

TopologySpec
dcRailTopology(const ClusterSpec &cluster, int rail_nodes)
{
    const int rail = divisorAtMost(cluster.numNodes, rail_nodes);
    TopologySpec t;
    t.name = "dc-rail";
    t.levels.push_back(TopologyLevel{
        "node", cluster.devicesPerNode, cluster.effIntraBandwidth(),
        -1.0, 1, 1.0});
    t.levels.push_back(TopologyLevel{
        "rail", rail, cluster.effInterBandwidth(), -1.0, 2, 1.0});
    t.levels.push_back(TopologyLevel{
        "pod", cluster.numNodes / rail, cluster.effInterBandwidth(),
        -1.0, 1, 2.0});
    return t;
}

TopologySpec
dcPodFleetTopology(const ClusterSpec &cluster, int rail_nodes)
{
    const int rail = divisorAtMost(cluster.numNodes, rail_nodes);
    const int rest = cluster.numNodes / rail;
    // Split the remainder into pod x fleet, pod taking the larger
    // half-ish factor (largest divisor whose square fits).
    int pod = 1;
    for (int f = 1; f * f <= rest; ++f) {
        if (rest % f == 0)
            pod = f;
    }
    pod = rest / pod; // Prefer the bigger cofactor for the pod tier.
    TopologySpec t;
    t.name = "dc-pod-fleet";
    t.levels.push_back(TopologyLevel{
        "node", cluster.devicesPerNode, cluster.effIntraBandwidth(),
        -1.0, 1, 1.0});
    t.levels.push_back(TopologyLevel{
        "rail", rail, cluster.effInterBandwidth(), -1.0, 2, 1.0});
    t.levels.push_back(TopologyLevel{
        "pod", pod, cluster.effInterBandwidth(), -1.0, 1, 1.0});
    t.levels.push_back(TopologyLevel{
        "fleet", rest / pod, cluster.effInterBandwidth(), -1.0, 1,
        4.0});
    return t;
}

ClusterSpec
withTopology(ClusterSpec cluster, TopologySpec topology)
{
    topology.validateAgainst(cluster);
    cluster.topology =
        std::make_shared<const TopologySpec>(std::move(topology));
    return cluster;
}

} // namespace madmax::hw_zoo
