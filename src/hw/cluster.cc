#include "hw/cluster.hh"

#include "hw/topology.hh"
#include "util/logging.hh"
#include "util/strfmt.hh"

namespace madmax
{

std::string
toString(FabricKind kind)
{
    switch (kind) {
      case FabricKind::NVLink: return "NVLink";
      case FabricKind::InfiniBand: return "InfiniBand";
      case FabricKind::RoCE: return "RoCE";
      case FabricKind::XGMI: return "xGMI";
      case FabricKind::Ethernet: return "Ethernet";
      case FabricKind::PCIe: return "PCIe";
    }
    panic("toString: unknown FabricKind");
}

double
ClusterSpec::effIntraBandwidth() const
{
    return device.intraNodeBandwidth * util.intraLink;
}

double
ClusterSpec::effInterBandwidth() const
{
    return device.interNodeBandwidth * util.interLink;
}

double
ClusterSpec::aggregatePeakFlops(DataType dtype) const
{
    return device.peakFlops(dtype) * numDevices();
}

double
ClusterSpec::aggregateHbmCapacity() const
{
    return device.hbmCapacity * numDevices();
}

double
ClusterSpec::aggregateHbmBandwidth() const
{
    return device.hbmBandwidth * numDevices();
}

ClusterSpec
ClusterSpec::groupCluster(int i) const
{
    if (i < 0 || i >= static_cast<int>(groups.size()))
        fatal(strfmt("cluster '%s': device group index %d out of range "
                     "(have %zu groups)",
                     name.c_str(), i, groups.size()));
    const DeviceGroup &g = groups[static_cast<size_t>(i)];
    ClusterSpec c;
    c.name = name + "/" + g.name;
    c.device = g.device;
    c.devicesPerNode = g.devicesPerNode;
    c.numNodes = g.numNodes;
    c.intraFabric = g.intraFabric;
    c.interFabric = interFabric;
    c.util = util;
    return c;
}

int
ClusterSpec::totalDevices() const
{
    if (!isHeterogeneous())
        return numDevices();
    int total = 0;
    for (const DeviceGroup &g : groups)
        total += g.numDevices();
    return total;
}

void
ClusterSpec::validate() const
{
    if (isHeterogeneous()) {
        if (topology) {
            fatal(strfmt("cluster '%s': explicit topology and "
                         "device_groups cannot be combined (tier stacks "
                         "describe one homogeneous pool; groups carry "
                         "their own shape)",
                         name.c_str()));
        }
        for (size_t i = 0; i < groups.size(); ++i) {
            const DeviceGroup &g = groups[i];
            if (g.name.empty()) {
                fatal(strfmt("cluster '%s': device group %zu has no "
                             "name",
                             name.c_str(), i));
            }
            for (size_t j = 0; j < i; ++j) {
                if (groups[j].name == g.name) {
                    fatal(strfmt("cluster '%s': duplicate device group "
                                 "name '%s'",
                                 name.c_str(), g.name.c_str()));
                }
            }
            // Groups reach each other over the scale-out fabric even
            // when a group is a single node, so the NIC rate is
            // mandatory here (the flat check below skips it for
            // numNodes == 1).
            if (g.device.interNodeBandwidth <= 0.0) {
                fatal(strfmt("cluster '%s': device group '%s' needs a "
                             "positive inter-node bandwidth to reach "
                             "the other groups",
                             name.c_str(), g.name.c_str()));
            }
            // Each island must be a valid homogeneous cluster in its
            // own right; reuse the flat checks below on its projection.
            groupCluster(static_cast<int>(i)).validate();
        }
        return;
    }
    if (devicesPerNode < 1)
        fatal(strfmt("cluster '%s': devicesPerNode must be >= 1",
                     name.c_str()));
    if (numNodes < 1)
        fatal(strfmt("cluster '%s': numNodes must be >= 1", name.c_str()));
    if (device.hbmCapacity <= 0.0)
        fatal(strfmt("cluster '%s': device HBM capacity must be positive",
                     name.c_str()));
    if (device.hbmBandwidth <= 0.0)
        fatal(strfmt("cluster '%s': device HBM bandwidth must be positive",
                     name.c_str()));
    if (devicesPerNode > 1 && device.intraNodeBandwidth <= 0.0)
        fatal(strfmt("cluster '%s': intra-node bandwidth must be positive",
                     name.c_str()));
    if (numNodes > 1 && device.interNodeBandwidth <= 0.0)
        fatal(strfmt("cluster '%s': inter-node bandwidth must be positive",
                     name.c_str()));
    auto check_util = [&](double u, const char *what) {
        if (u <= 0.0 || u > 1.0) {
            fatal(strfmt("cluster '%s': %s utilization %.3f outside (0, 1]",
                         name.c_str(), what, u));
        }
    };
    check_util(util.compute, "compute");
    check_util(util.hbm, "hbm");
    check_util(util.intraLink, "intra-link");
    check_util(util.interLink, "inter-link");
    if (topology)
        topology->validateAgainst(*this);
}

ClusterSpec
ClusterSpec::withComputeScale(double factor) const
{
    ClusterSpec c = *this;
    c.device.peakFlopsTensor16 *= factor;
    c.device.peakFlopsTf32 *= factor;
    c.device.peakFlopsFp32 *= factor;
    return c;
}

ClusterSpec
ClusterSpec::withHbmCapacityScale(double factor) const
{
    ClusterSpec c = *this;
    c.device.hbmCapacity *= factor;
    return c;
}

ClusterSpec
ClusterSpec::withHbmBandwidthScale(double factor) const
{
    ClusterSpec c = *this;
    c.device.hbmBandwidth *= factor;
    return c;
}

ClusterSpec
ClusterSpec::withIntraBandwidthScale(double factor) const
{
    ClusterSpec c = *this;
    c.device.intraNodeBandwidth *= factor;
    return c;
}

ClusterSpec
ClusterSpec::withInterBandwidthScale(double factor) const
{
    ClusterSpec c = *this;
    c.device.interNodeBandwidth *= factor;
    return c;
}

ClusterSpec
ClusterSpec::withNumNodes(int nodes) const
{
    ClusterSpec c = *this;
    c.numNodes = nodes;
    // A tier stack sized for the old node count cannot describe the
    // resized cluster; drop it rather than fail validation (node-count
    // sweeps fall back to flat pricing).
    if (c.topology && nodes != numNodes)
        c.topology = nullptr;
    return c;
}

} // namespace madmax
