/**
 * @file
 * Hardware zoo: the device datasheets of Table IV, the two baseline
 * training systems of Table III, and the public-cloud instance types
 * used by Figs. 1 and 16. All functions return fresh copies so callers
 * can freely mutate (e.g. for the scaling studies).
 */

#ifndef MADMAX_HW_HW_ZOO_HH
#define MADMAX_HW_HW_ZOO_HH

#include <string>
#include <vector>

#include "hw/cluster.hh"
#include "hw/device.hh"

namespace madmax::hw_zoo
{

/** @name Devices (Table IV + V100 for the cloud study) */
/// @{
DeviceSpec a100_40(); ///< NVIDIA A100 40 GB (312/156 TFLOPS, 1.6 TB/s).
DeviceSpec a100_80(); ///< NVIDIA A100 80 GB (2.0 TB/s HBM).
DeviceSpec h100();    ///< NVIDIA H100 SXM (756/378 TFLOPS, 2 TB/s).
DeviceSpec h100SuperPod(); ///< H100 with NVLink-based scale-out (9x A100 BW).
DeviceSpec v100_16(); ///< NVIDIA V100 16 GB (125 TFLOPS fp16, 0.9 TB/s).
DeviceSpec v100_32(); ///< NVIDIA V100 32 GB.
DeviceSpec mi250x();  ///< AMD Instinct MI250X.
DeviceSpec mi300x();  ///< AMD Instinct MI300X.
DeviceSpec gaudi2();  ///< Intel Gaudi2.
/// @}

/** @name Baseline training systems (Table III) */
/// @{

/**
 * DLRM training system [Mudigere et al., ZionEX]: 16 nodes x 8 A100
 * 40 GB, RoCE scale-out, 20 PFLOPS aggregate TF32.
 */
ClusterSpec dlrmTrainingSystem();

/**
 * LLM training system [Touvron et al.]: 256 nodes x 8 A100 80 GB,
 * InfiniBand scale-out, 319 PFLOPS aggregate TF32.
 */
ClusterSpec llmTrainingSystem();
/// @}

/** @name Simulated 128-device platforms (Figs. 17, 18) */
/// @{
ClusterSpec h100System(int num_nodes = 16);
ClusterSpec h100SuperPodSystem(int num_nodes = 16);
ClusterSpec mi250xSystem(int num_nodes = 16);
ClusterSpec mi300xSystem(int num_nodes = 16);
ClusterSpec gaudi2System(int num_nodes = 16);
/// @}

/**
 * A public-cloud GPU instance type: a ClusterSpec template plus
 * pricing-free metadata used by the cloud-deployment studies.
 */
struct CloudInstance
{
    std::string name;      ///< e.g. "p4d.24xlarge".
    ClusterSpec cluster;   ///< One node's shape; scale numNodes to size.
    double a100PeakRatio;  ///< device peak / A100 peak (GPU-hour norm).
};

/**
 * Cloud instance catalog for Figs. 1 and 16: three GPU generations with
 * widely varying inter-node bandwidths.
 *
 * @param num_nodes Node count applied to every instance type.
 */
std::vector<CloudInstance> cloudInstances(int num_nodes = 16);

/** AWS p4d.24xlarge (8x A100 40 GB, 400 Gbps EFA) used by Fig. 8. */
ClusterSpec awsP4d(int num_nodes);

} // namespace madmax::hw_zoo

#endif // MADMAX_HW_HW_ZOO_HH
