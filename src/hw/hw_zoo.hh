/**
 * @file
 * Hardware zoo: the device datasheets of Table IV, the two baseline
 * training systems of Table III, and the public-cloud instance types
 * used by Figs. 1 and 16. All functions return fresh copies so callers
 * can freely mutate (e.g. for the scaling studies).
 */

#ifndef MADMAX_HW_HW_ZOO_HH
#define MADMAX_HW_HW_ZOO_HH

#include <string>
#include <vector>

#include "hw/cluster.hh"
#include "hw/device.hh"
#include "hw/topology.hh"

namespace madmax::hw_zoo
{

/** @name Devices (Table IV + V100 for the cloud study) */
/// @{
DeviceSpec a100_40(); ///< NVIDIA A100 40 GB (312/156 TFLOPS, 1.6 TB/s).
DeviceSpec a100_80(); ///< NVIDIA A100 80 GB (2.0 TB/s HBM).
DeviceSpec h100();    ///< NVIDIA H100 SXM (756/378 TFLOPS, 2 TB/s).
DeviceSpec h100SuperPod(); ///< H100 with NVLink-based scale-out (9x A100 BW).
DeviceSpec v100_16(); ///< NVIDIA V100 16 GB (125 TFLOPS fp16, 0.9 TB/s).
DeviceSpec v100_32(); ///< NVIDIA V100 32 GB.
DeviceSpec mi250x();  ///< AMD Instinct MI250X.
DeviceSpec mi300x();  ///< AMD Instinct MI300X.
DeviceSpec gaudi2();  ///< Intel Gaudi2.
/// @}

/** @name Baseline training systems (Table III) */
/// @{

/**
 * DLRM training system [Mudigere et al., ZionEX]: 16 nodes x 8 A100
 * 40 GB, RoCE scale-out, 20 PFLOPS aggregate TF32.
 */
ClusterSpec dlrmTrainingSystem();

/**
 * LLM training system [Touvron et al.]: 256 nodes x 8 A100 80 GB,
 * InfiniBand scale-out, 319 PFLOPS aggregate TF32.
 */
ClusterSpec llmTrainingSystem();
/// @}

/** @name Simulated 128-device platforms (Figs. 17, 18) */
/// @{
ClusterSpec h100System(int num_nodes = 16);
ClusterSpec h100SuperPodSystem(int num_nodes = 16);
ClusterSpec mi250xSystem(int num_nodes = 16);
ClusterSpec mi300xSystem(int num_nodes = 16);
ClusterSpec gaudi2System(int num_nodes = 16);
/// @}

/**
 * Mixed-generation inference fleet: an H100 pool next to an A100 80 GB
 * pool behind a shared InfiniBand scale-out fabric — the
 * serve-LLMs-on-what-the-fleet-has scenario (pipeline across unequal
 * hosts). The H100 pool's FLOPS suit compute-bound prefill; the A100
 * pool's aggregate HBM suits memory-bound decode. Heterogeneous:
 * evaluable only through per-group islands / phase placement, not
 * PerfModel directly.
 */
ClusterSpec mixedInferenceFleet(int h100_nodes = 2, int a100_nodes = 4);

/**
 * A public-cloud GPU instance type: a ClusterSpec template plus
 * pricing-free metadata used by the cloud-deployment studies.
 */
struct CloudInstance
{
    std::string name;      ///< e.g. "p4d.24xlarge".
    ClusterSpec cluster;   ///< One node's shape; scale numNodes to size.
    double a100PeakRatio;  ///< device peak / A100 peak (GPU-hour norm).
};

/**
 * Cloud instance catalog for Figs. 1 and 16: three GPU generations with
 * widely varying inter-node bandwidths.
 *
 * @param num_nodes Node count applied to every instance type.
 */
std::vector<CloudInstance> cloudInstances(int num_nodes = 16);

/** AWS p4d.24xlarge (8x A100 40 GB, 400 Gbps EFA) used by Fig. 8. */
ClusterSpec awsP4d(int num_nodes);

/** @name Datacenter-class topology presets
 *
 * Tier stacks shaped like production training fabrics, derived from a
 * cluster's flat bandwidths so they attach to any zoo system. All
 * presets keep level 0 = the cluster's scale-up domain and multiply
 * the scale-out fans to exactly numNodes (rail size is clamped to the
 * nearest divisor).
 */
/// @{

/** The two-tier stack that reproduces the flat model bit-for-bit
 *  (TopologySpec::flatEquivalent under a zoo-friendly name). */
TopologySpec flatTopologyPreset(const ClusterSpec &cluster);

/**
 * Three tiers: node -> rail -> pod. Rail groups of @p rail_nodes nodes
 * get doubled-up links (rails = 2, the rail-optimized leaf switches);
 * the pod tier carries the same per-device fabric bandwidth but is
 * 2:1 oversubscribed (sharers = 2).
 */
TopologySpec dcRailTopology(const ClusterSpec &cluster,
                            int rail_nodes = 4);

/**
 * Four tiers: node -> rail -> pod -> fleet. Rails as in
 * dcRailTopology; the remaining scale-out fan splits into pod x fleet
 * (pod = largest divisor <= sqrt of the remainder) with the fleet
 * spine 4:1 oversubscribed (sharers = 4).
 */
TopologySpec dcPodFleetTopology(const ClusterSpec &cluster,
                                int rail_nodes = 4);

/** @p cluster with @p topology attached (validated against it). */
ClusterSpec withTopology(ClusterSpec cluster, TopologySpec topology);

/// @}

} // namespace madmax::hw_zoo

#endif // MADMAX_HW_HW_ZOO_HH
