/**
 * @file
 * Parallel plan-evaluation engine. Every consumer of the performance
 * model — the strategy explorer, the DSE sweeps, the fleet simulator
 * — funnels its (model, task, plan, cluster) points through
 * EvalEngine::evaluateAll, which adds three things on top of raw
 * PerfModel::evaluate calls:
 *
 *  1. a fixed-size work-stealing thread pool (--jobs N) that fans the
 *     batch out across cores;
 *  2. a memoization cache keyed by a canonical fingerprint of the
 *     point, shared across call sites (e.g. best() after explore()
 *     re-reads every report for free);
 *  3. a memory-feasibility pre-pass that prices MemoryModel alone and
 *     resolves OOM plans without building streams or running the
 *     overlap simulator;
 *  4. per-(model, desc, task) batch grouping: each group of a batch
 *     shares one EvalContext (validation, per-layer compute times,
 *     resolved collectives — see core/eval_context.hh) and one
 *     canonical-key prefix, so a sweep's hundreds of plans pay the
 *     plan-invariant work once instead of per evaluation.
 *
 * Results are returned in request order, so callers are deterministic
 * regardless of thread count.
 */

#ifndef MADMAX_ENGINE_EVAL_ENGINE_HH
#define MADMAX_ENGINE_EVAL_ENGINE_HH

#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "config/json.hh"
#include "core/perf_model.hh"

namespace madmax
{

class ThreadPool;

/**
 * Per-call search-cost instrumentation. Replaces the old static
 * thread-local StrategyExplorer::lastSearchEvaluations() counter:
 * stats are now a value threaded through ExplorationResult /
 * Exploration and the CLI, so they compose across threads and nested
 * calls instead of being clobbered by them.
 */
struct EvalStats
{
    long evaluations = 0; ///< Fresh model evaluations executed.
    long cacheHits = 0;   ///< Requests served from the memo cache.
    long pruned = 0;      ///< OOM plans resolved by the memory pre-pass.
    double wallSeconds = 0.0; ///< Wall-clock time inside the engine.

    /**
     * Split of `evaluations` by evaluation path:
     * deltaEvals + fullEvals == evaluations, always. deltaEvals counts
     * evaluations that took the incremental splice path of a
     * DeltaSession (EvalContext::evaluateDelta with a prior plan to
     * reuse); fullEvals counts complete stream builds — including a
     * session's first evaluation per context and every fall-back
     * (keepTimeline, context switch, OOM verdict). Both stay 0 /
     * equal to `evaluations` respectively when no session is passed.
     */
    long deltaEvals = 0;
    long fullEvals = 0;

    /**
     * Evaluations that threw instead of completing (per-request
     * exception isolation — see EvalEngine::evaluateAll). A subset of
     * `evaluations`: a failed request still occupied an evaluation
     * slot. 0 in healthy operation.
     */
    long failed = 0;

    /** Total points requested (evaluations + cacheHits + pruned). */
    long requests() const { return evaluations + cacheHits + pruned; }

    EvalStats &operator+=(const EvalStats &o)
    {
        evaluations += o.evaluations;
        cacheHits += o.cacheHits;
        pruned += o.pruned;
        wallSeconds += o.wallSeconds;
        deltaEvals += o.deltaEvals;
        fullEvals += o.fullEvals;
        failed += o.failed;
        return *this;
    }
};

/**
 * Search-cost JSON rendering shared by the CLI's `"search"` object
 * and the serving API (`/v1/explore`, `/v1/stats`), keeping their
 * schemas in lockstep. The delta split (`delta_evals` / `full_evals`)
 * is emitted only when incremental evaluation actually happened
 * (deltaEvals != 0), so consumers of the historical four-field schema
 * see it unchanged.
 */
JsonValue toJson(const EvalStats &stats);

/**
 * Caller-owned incremental-evaluation session. Pass one to
 * evaluateAll and the engine evaluates through
 * EvalContext::evaluateDelta instead of EvalContext::evaluate: the
 * session keeps one (context, DeltaState) slot per (model, desc,
 * task) triple it has seen, so across calls — a guided search's
 * mutation loop — context construction is paid once per triple and
 * every subsequent plan splices its event graph from cached segment
 * templates (reports stay bit-identical; see
 * EvalContext::evaluateDelta).
 *
 * Trade-off: a DeltaState is inherently sequential, so session
 * evaluations run serially on the caller's thread instead of the
 * engine pool. That is the right trade for incremental single-point /
 * small-batch loops (annealing proposals, genetic generations);
 * wide independent batches (exhaustive sweeps) should keep passing no
 * session and ride the pool.
 *
 * Not thread-safe: use from one thread at a time. The referenced
 * model/desc/task objects must outlive the session (slots are keyed
 * and bound by pointer identity, like engine batch grouping).
 */
class DeltaSession
{
  public:
    DeltaSession();
    ~DeltaSession();

    DeltaSession(const DeltaSession &) = delete;
    DeltaSession &operator=(const DeltaSession &) = delete;

    /** Distinct (model, desc, task) triples bound so far. */
    size_t slots() const;

  private:
    friend class EvalEngine;
    struct Impl;
    std::unique_ptr<Impl> impl_;
};

/**
 * Cumulative engine-lifetime observability counters, the backing data
 * of the serving API's `GET /v1/stats`. `lifetime` sums the EvalStats
 * of every evaluateAll call since construction; the cache fields
 * describe the memo cache's current occupancy and its total insert /
 * evict traffic (entries == insertions - evictions, always <=
 * capacity).
 */
struct EngineCounters
{
    EvalStats lifetime;
    size_t cacheEntries = 0;
    size_t cacheCapacity = 0;
    long cacheInsertions = 0;
    long cacheEvictions = 0;

    /// Batch-submission shape: how work arrives, not how much. The
    /// serving layer's micro-batching dispatcher shows up here as
    /// fewer, larger batches for the same request count.
    long batches = 0;          ///< evaluateAll calls.
    long batchRequests = 0;    ///< Points submitted across all batches.
    long maxBatchRequests = 0; ///< Largest single batch.
};

/**
 * One point to evaluate. The pointed-to model/desc/task must outlive
 * the evaluateAll call; requests in one batch may reference different
 * models (the fleet evaluates jobs on per-job clusters this way).
 */
struct PlanRequest
{
    const PerfModel *model = nullptr;
    const ModelDesc *desc = nullptr;
    const TaskSpec *task = nullptr;
    ParallelPlan plan;
};

/** Engine construction knobs. */
struct EvalEngineOptions
{
    /** Worker threads; 1 = serial on the caller, 0 = one per core. */
    int jobs = 1;

    /** Memoize reports across evaluateAll calls. */
    bool memoize = true;

    /**
     * Resolve OOM plans with the memory-model pre-pass instead of a
     * full evaluate() (no effect on results — evaluate() returns the
     * identical verdict-only report — but OOM plans never occupy a
     * pool slot or a stream build).
     */
    bool pruneInfeasible = true;

    /** Cache entry cap; oldest entries are evicted beyond it. */
    size_t cacheCapacity = 1 << 13;
};

/**
 * Thread-pooled, memoizing batch evaluator. Thread-safe: concurrent
 * evaluateAll calls share the cache under a mutex and the pool's
 * work-stealing scheduler interleaves their batches.
 */
class EvalEngine
{
  public:
    explicit EvalEngine(EvalEngineOptions options = {});
    ~EvalEngine();

    EvalEngine(const EvalEngine &) = delete;
    EvalEngine &operator=(const EvalEngine &) = delete;

    /** Effective parallelism (1 when running serial). */
    int jobs() const;

    const EvalEngineOptions &options() const { return options_; }

    /**
     * Evaluate a batch. result[i] always corresponds to requests[i];
     * evaluation order across the pool is unspecified but the returned
     * reports are bitwise-identical to a serial run. @p stats, when
     * given, is overwritten with this call's counters.
     *
     * Memory note: cached copies are stored *without* their scheduled
     * Timeline, so a request served from the cache (a later call, or
     * a duplicate of an earlier call's point) carries an empty
     * timeline even when the model keeps them. Callers that consume
     * timelines (trace export, stream plots) evaluate through
     * PerfModel directly.
     *
     * @p session, when given, switches fresh evaluations to the
     * incremental delta path (serial, session-resident contexts — see
     * DeltaSession); results are bit-identical either way, and
     * EvalStats::deltaEvals / fullEvals record the split.
     *
     * Exception isolation: a throwing evaluation (ConfigError,
     * std::bad_alloc, a model bug) fails only its own request — the
     * slot comes back as a failure report (PerfReport::failed(), with
     * errorKind/errorMessage set) while the rest of the batch
     * completes normally. Failure reports are never memoized.
     * EvalStats::failed counts them. Only caller-contract violations
     * (null model/desc/task pointers) still throw out of the call.
     */
    std::vector<PerfReport>
    evaluateAll(const std::vector<PlanRequest> &requests,
                EvalStats *stats = nullptr,
                DeltaSession *session = nullptr);

    /** Single-point convenience wrapper over evaluateAll. @p stats,
     *  when given, is *accumulated* into (callers tally loops). */
    PerfReport evaluateOne(const PerfModel &model, const ModelDesc &desc,
                           const TaskSpec &task, const ParallelPlan &plan,
                           EvalStats *stats = nullptr);

    /**
     * Canonical memoization key. Two requests collide exactly when
     * the performance model is guaranteed to produce the same report:
     * same cluster + perf-model options fingerprint, same model
     * identity, same task, and plans that agree on every layer class
     * the model actually has (strategies for absent classes are
     * irrelevant and canonicalized away).
     */
    static std::string cacheKey(const PlanRequest &request);

    /**
     * Fast-path probe by a precomputed canonical key (the serving
     * layer stores keys alongside parsed configs, so its hot path
     * skips both config parsing and key construction). On a hit,
     * copies the cached report into @p out with @p plan restored
     * (cached copies are timeline-stripped, exactly like an
     * evaluateAll cache hit) and accounts one lifetime cache hit.
     * A miss does no accounting — the caller resubmits through
     * evaluateAll, which counts the point there.
     */
    bool tryCached(const std::string &key, const ParallelPlan &plan,
                   PerfReport &out);

    /** Accounting-free occupancy probe: admission control asks
     *  "would this request be cheap?" without perturbing LRU order
     *  or the lifetime stats. */
    bool isCached(const std::string &key) const;

    size_t cacheSize() const;
    void clearCache();

    /** Snapshot of the lifetime stats and cache counters (thread-safe;
     *  the serving layer polls this for `GET /v1/stats`). */
    EngineCounters counters() const;

  private:
    struct CacheEntry
    {
        std::shared_ptr<const PerfReport> report;
        std::list<std::string>::iterator lruIt;
    };

    std::shared_ptr<const PerfReport> cacheGet(const std::string &key);

    /** Stores a copy of @p report with its Timeline stripped. */
    void cachePut(const std::string &key, PerfReport report);

    EvalEngineOptions options_;
    std::unique_ptr<ThreadPool> pool_; ///< Null when jobs == 1.

    mutable std::mutex cacheMutex_;
    std::unordered_map<std::string, CacheEntry> cache_;
    std::list<std::string> lru_; ///< Front = most recently used.

    /// Lifetime accounting (guarded by cacheMutex_): every
    /// evaluateAll's EvalStats folded together, plus total cache
    /// insert/evict traffic. clearCache resets neither — they count
    /// work done, not work retained.
    EvalStats lifetime_;
    long insertions_ = 0;
    long evictions_ = 0;
    long batches_ = 0;
    long batchRequests_ = 0;
    long maxBatchRequests_ = 0;
};

} // namespace madmax

#endif // MADMAX_ENGINE_EVAL_ENGINE_HH
