#include "engine/eval_engine.hh"

#include <chrono>
#include <cstdint>
#include <cstring>
#include <map>
#include <memory>
#include <tuple>
#include <unordered_map>
#include <utility>

#include "core/eval_context.hh"
#include "hw/topology.hh"
#include "util/fault_injection.hh"
#include "util/logging.hh"
#include "util/strfmt.hh"
#include "util/thread_pool.hh"

namespace madmax
{

namespace
{

/** All layer classes, in canonical key order. */
constexpr LayerClass kAllClasses[] = {
    LayerClass::SparseEmbedding, LayerClass::DenseEmbedding,
    LayerClass::BaseDense, LayerClass::Transformer, LayerClass::MoE};

void
appendDouble(std::string &out, double v)
{
    // %.17g round-trips doubles exactly: two clusters that differ in
    // the 17th digit of a bandwidth must not share cache entries.
    out += strfmt("%.17g,", v);
}

void
appendCluster(std::string &out, const ClusterSpec &c)
{
    out += c.name;
    out += ',';
    out += std::to_string(c.devicesPerNode) + ',' +
        std::to_string(c.numNodes) + ',';
    out += std::to_string(static_cast<int>(c.intraFabric)) + ',' +
        std::to_string(static_cast<int>(c.interFabric)) + ',';
    appendDouble(out, c.util.compute);
    appendDouble(out, c.util.hbm);
    appendDouble(out, c.util.intraLink);
    appendDouble(out, c.util.interLink);
    const DeviceSpec &d = c.device;
    out += d.name;
    out += ',';
    appendDouble(out, d.peakFlopsTensor16);
    appendDouble(out, d.peakFlopsTf32);
    appendDouble(out, d.peakFlopsFp32);
    appendDouble(out, d.hbmCapacity);
    appendDouble(out, d.hbmBandwidth);
    appendDouble(out, d.intraNodeBandwidth);
    appendDouble(out, d.interNodeBandwidth);
    // Topology-carrying clusters price through a different collective
    // model; the spec fingerprint keeps them from sharing entries with
    // the flat shape (or with a differently-tiered topology).
    if (c.topology)
        out += strfmt("T%016llx,",
                      static_cast<unsigned long long>(
                          c.topology->fingerprint()));
    else
        out += "-,";
}

void
appendOptions(std::string &out, const PerfModelOptions &o)
{
    out += o.ignoreMemory ? '1' : '0';
    out += o.backgroundCommChannel ? '1' : '0';
    out += o.keepTimeline ? '1' : '0';
    out += std::to_string(static_cast<int>(o.allReduceAlgorithm));
    out += ',';
    out += o.collectiveModel; // Registry name; empty = auto-select.
    out += ',';
    appendDouble(out, o.latency.intraAlpha);
    appendDouble(out, o.latency.interAlpha);
    appendDouble(out, o.memory.reserveFraction);
    out += o.memory.checkpointActivations ? '1' : '0';
    if (o.smModel) {
        appendDouble(out, o.smModel->maxUtil());
        appendDouble(out, o.smModel->halfSaturationFlops());
    } else {
        out += "-,";
    }
}

void
appendModel(std::string &out, const ModelDesc &m)
{
    out += m.name;
    out += ',';
    out += std::to_string(m.globalBatchSize) + ',' +
        std::to_string(m.contextLength) + ',';
    out += std::to_string(static_cast<int>(m.computeDtype)) + ',' +
        std::to_string(static_cast<int>(m.paramDtype)) + ',';
    out += m.isRecommendation ? '1' : '0';
    out += std::to_string(m.graph.numLayers()) + ',';
    // Same-name models can differ per layer (custom JSON configs that
    // redistribute width); fold every layer's class and cost into an
    // FNV-1a digest so such models never share a cache entry.
    uint64_t h = 1469598103934665603ull;
    auto mix = [&h](uint64_t v) {
        for (int byte = 0; byte < 8; ++byte) {
            h ^= (v >> (byte * 8)) & 0xffu;
            h *= 1099511628211ull;
        }
    };
    auto mixDouble = [&](double v) {
        uint64_t bits;
        static_assert(sizeof(bits) == sizeof(v), "double is 64-bit");
        std::memcpy(&bits, &v, sizeof(bits));
        mix(bits);
    };
    // Every per-layer, per-sample quantity the performance and memory
    // models read: compute, lookup traffic, output/TP communication
    // volume, and retained activations. Layers that trade width for
    // depth can match on params + FLOPs alone, so those two are not
    // enough.
    const double dtype_bytes = m.activationBytes();
    for (int i = 0; i < m.graph.numLayers(); ++i) {
        const Layer &layer = m.graph.layer(i);
        mix(static_cast<uint64_t>(layer.kind()));
        mix(static_cast<uint64_t>(layer.layerClass()));
        mixDouble(layer.paramCount());
        mixDouble(layer.forwardFlopsPerSample());
        mixDouble(layer.lookupBytesPerSample());
        mixDouble(layer.outputBytesPerSample(dtype_bytes));
        mixDouble(layer.tpCommBytesPerSample(dtype_bytes));
        mixDouble(layer.activationMemoryBytesPerSample(dtype_bytes));
    }
    out += strfmt("%016llx", static_cast<unsigned long long>(h));
}

/**
 * The (cluster, options, model, task) portion of the canonical key —
 * identical for every request of one batch group, so evaluateAll
 * computes it once per group instead of re-serializing the cluster
 * and model graph for every plan.
 */
std::string
keyPrefix(const PerfModel &model, const ModelDesc &desc,
          const TaskSpec &task)
{
    std::string key;
    key.reserve(256);
    appendCluster(key, model.cluster());
    key += '|';
    appendOptions(key, model.options());
    key += '|';
    appendModel(key, desc);
    key += '|';
    key += task.toString();
    key += '|';
    return key;
}

/**
 * Identity-only report for a request whose evaluation threw. Carries
 * the error pair instead of timings; never cached (the failure may be
 * transient — an allocation failure or injected fault must not poison
 * the memo cache for the plan's lifetime).
 */
PerfReport
failureReport(const PlanRequest &req, EvalErrorKind kind,
              std::string message)
{
    PerfReport r;
    r.modelName = req.desc->name;
    r.clusterName = req.model->cluster().name;
    r.taskName = req.task->toString();
    r.plan = req.plan;
    r.errorKind = kind;
    r.errorMessage = std::move(message);
    return r;
}

/** Map the in-flight exception to a failure report for @p req. */
PerfReport
failureFromCurrentException(const PlanRequest &req)
{
    try {
        throw;
    } catch (const std::bad_alloc &) {
        return failureReport(req, EvalErrorKind::Resource,
                             "allocation failed during plan evaluation");
    } catch (const ConfigError &e) {
        return failureReport(req, EvalErrorKind::Config, e.what());
    } catch (const std::exception &e) {
        return failureReport(req, EvalErrorKind::Internal, e.what());
    } catch (...) {
        return failureReport(req, EvalErrorKind::Internal,
                             "unknown error during plan evaluation");
    }
}

/** The per-plan portion of the canonical key (see cacheKey). */
std::string
keySuffix(const ModelDesc &desc, const ParallelPlan &plan)
{
    // Canonical plan: only classes the model has contribute to the
    // report, so only they contribute to the key. strategyFor folds
    // per-class defaults in, making explicit-default and absent
    // entries collide (deliberately).
    std::string key;
    for (LayerClass cls : kAllClasses) {
        if (!desc.graph.hasClass(cls))
            continue;
        key += plan.strategyFor(cls).toString();
    }
    key += plan.fsdpPrefetch ? "+p" : "-p";
    return key;
}

} // namespace

/**
 * One persistent (context, splice buffers) pair per (model, desc,
 * task) triple, keyed by pointer identity like engine batch grouping.
 * std::map keeps slot addresses stable across inserts — evaluateAll
 * holds DeltaState pointers while later requests may add slots.
 */
struct DeltaSession::Impl
{
    struct Slot
    {
        std::shared_ptr<EvalContext> ctx;
        EvalContext::DeltaState state;
    };
    std::map<std::tuple<const void *, const void *, const void *>, Slot>
        slots;
};

DeltaSession::DeltaSession() : impl_(std::make_unique<Impl>()) {}

DeltaSession::~DeltaSession() = default;

size_t
DeltaSession::slots() const
{
    return impl_->slots.size();
}

EvalEngine::EvalEngine(EvalEngineOptions options)
    : options_(options)
{
    if (options_.jobs < 0)
        fatal("EvalEngine: jobs must be >= 0");
    if (options_.jobs == 0)
        options_.jobs = ThreadPool::defaultConcurrency();
    if (options_.jobs > 1)
        pool_ = std::make_unique<ThreadPool>(options_.jobs);
}

EvalEngine::~EvalEngine() = default;

int
EvalEngine::jobs() const
{
    return options_.jobs;
}

std::string
EvalEngine::cacheKey(const PlanRequest &request)
{
    if (!request.model || !request.desc || !request.task)
        fatal("EvalEngine: PlanRequest with null model/desc/task");
    return keyPrefix(*request.model, *request.desc, *request.task) +
        keySuffix(*request.desc, request.plan);
}

std::shared_ptr<const PerfReport>
EvalEngine::cacheGet(const std::string &key)
{
    std::lock_guard<std::mutex> lock(cacheMutex_);
    auto it = cache_.find(key);
    if (it == cache_.end())
        return nullptr;
    lru_.splice(lru_.begin(), lru_, it->second.lruIt);
    return it->second.report;
}

void
EvalEngine::cachePut(const std::string &key, PerfReport report)
{
    // Cached copies drop the scheduled Timeline (the one
    // heavyweight report member — ~100 KB for a GPT-3 plan); see the
    // class comment. Consumers that need timelines (trace export)
    // evaluate through PerfModel directly.
    report.timeline = Timeline{};
    auto stored = std::make_shared<const PerfReport>(std::move(report));

    std::lock_guard<std::mutex> lock(cacheMutex_);
    auto it = cache_.find(key);
    if (it != cache_.end()) {
        // Another thread raced us to the same point; keep theirs (the
        // reports are identical by construction).
        return;
    }
    lru_.push_front(key);
    cache_.emplace(key, CacheEntry{std::move(stored), lru_.begin()});
    ++insertions_;
    while (cache_.size() > options_.cacheCapacity) {
        cache_.erase(lru_.back());
        lru_.pop_back();
        ++evictions_;
    }
}

bool
EvalEngine::tryCached(const std::string &key, const ParallelPlan &plan,
                      PerfReport &out)
{
    std::shared_ptr<const PerfReport> hit = cacheGet(key);
    if (!hit)
        return false;
    out = *hit;
    out.plan = plan; // Keys canonicalize absent-class strategies away.
    std::lock_guard<std::mutex> lock(cacheMutex_);
    ++lifetime_.cacheHits;
    return true;
}

bool
EvalEngine::isCached(const std::string &key) const
{
    std::lock_guard<std::mutex> lock(cacheMutex_);
    return cache_.find(key) != cache_.end();
}

size_t
EvalEngine::cacheSize() const
{
    std::lock_guard<std::mutex> lock(cacheMutex_);
    return cache_.size();
}

void
EvalEngine::clearCache()
{
    std::lock_guard<std::mutex> lock(cacheMutex_);
    // Count cleared entries as evictions so the documented
    // EngineCounters invariant (entries == insertions - evictions)
    // survives an explicit clear.
    evictions_ += static_cast<long>(cache_.size());
    cache_.clear();
    lru_.clear();
}

EngineCounters
EvalEngine::counters() const
{
    std::lock_guard<std::mutex> lock(cacheMutex_);
    EngineCounters c;
    c.lifetime = lifetime_;
    c.cacheEntries = cache_.size();
    c.cacheCapacity = options_.cacheCapacity;
    c.cacheInsertions = insertions_;
    c.cacheEvictions = evictions_;
    c.batches = batches_;
    c.batchRequests = batchRequests_;
    c.maxBatchRequests = maxBatchRequests_;
    return c;
}

std::vector<PerfReport>
EvalEngine::evaluateAll(const std::vector<PlanRequest> &requests,
                        EvalStats *stats, DeltaSession *session)
{
    auto t0 = std::chrono::steady_clock::now();
    EvalStats local;
    std::vector<PerfReport> results(requests.size());

    // Group requests by their (model, desc, task) triple: one
    // EvalContext (validation, per-layer compute times, resolved
    // collectives) and one canonical key prefix serve every plan of a
    // group — a sweep's hundreds of plans share a single context
    // construction instead of paying it per evaluation.
    struct Group
    {
        const PerfModel *model;
        const ModelDesc *desc;
        const TaskSpec *task;
        std::string prefix;               ///< Built on first key need.
        bool prefixBuilt = false;
        std::shared_ptr<EvalContext> ctx; ///< Built on first evaluation.
    };
    struct TripleHash
    {
        size_t operator()(const std::tuple<const void *, const void *,
                                           const void *> &t) const
        {
            auto mix = [](size_t h, const void *p) {
                return h * 1099511628211ull ^
                    reinterpret_cast<size_t>(p);
            };
            size_t h = 1469598103934665603ull;
            h = mix(h, std::get<0>(t));
            h = mix(h, std::get<1>(t));
            return mix(h, std::get<2>(t));
        }
    };
    std::vector<Group> groups;
    std::unordered_map<std::tuple<const void *, const void *,
                                  const void *>,
                       size_t, TripleHash>
        groupIndex;
    auto groupOf = [&](const PlanRequest &req) -> Group & {
        auto key = std::make_tuple(
            static_cast<const void *>(req.model),
            static_cast<const void *>(req.desc),
            static_cast<const void *>(req.task));
        auto [it, inserted] = groupIndex.emplace(key, groups.size());
        if (inserted)
            groups.push_back(Group{req.model, req.desc, req.task, {},
                                   false, nullptr});
        return groups[it->second];
    };

    // Serial pre-pass: resolve each request to a cache hit, a pruned
    // OOM verdict, or a slot in the parallel batch. Duplicate keys
    // within the batch collapse onto one evaluation.
    struct Pending
    {
        size_t firstIdx;          ///< Owns the evaluation.
        std::vector<size_t> dups; ///< Served from firstIdx's report.
        std::string key;
        std::shared_ptr<EvalContext> ctx; ///< The group's context.
        /// Session splice buffers (null without a session); non-null
        /// routes the evaluation through EvalContext::evaluateDelta.
        EvalContext::DeltaState *delta = nullptr;
    };
    std::vector<Pending> pending;
    std::unordered_map<std::string, size_t> keyToPending;
    std::vector<std::string> keys(requests.size());

    for (size_t i = 0; i < requests.size(); ++i) {
        const PlanRequest &req = requests[i];
        if (!req.model || !req.desc || !req.task)
            fatal("EvalEngine: PlanRequest with null model/desc/task");
        Group &group = groupOf(req);
        if (options_.memoize) {
            if (!group.prefixBuilt) {
                group.prefix =
                    keyPrefix(*req.model, *req.desc, *req.task);
                group.prefixBuilt = true;
            }
            keys[i] = group.prefix + keySuffix(*req.desc, req.plan);
            if (auto hit = cacheGet(keys[i])) {
                ++local.cacheHits;
                results[i] = *hit;
                results[i].plan = req.plan;
                continue;
            }
            auto it = keyToPending.find(keys[i]);
            if (it != keyToPending.end()) {
                ++local.cacheHits;
                pending[it->second].dups.push_back(i);
                continue;
            }
        }
        // Per-request isolation starts here: the memory verdict and
        // context construction evaluate the request's own input, so a
        // throw (or an injected fault) fails this slot only instead of
        // propagating out of the batch.
        EvalContext::DeltaState *delta = nullptr;
        std::shared_ptr<EvalContext> ctx;
        try {
            if (options_.pruneInfeasible &&
                !req.model->options().ignoreMemory) {
                PerfReport v = req.model->verdict(*req.desc, *req.task,
                                                  req.plan);
                if (!v.valid) {
                    ++local.pruned;
                    // Cache the verdict-only report: later duplicates
                    // (same batch or later calls) hit cacheGet above.
                    if (options_.memoize)
                        cachePut(keys[i], v);
                    results[i] = std::move(v);
                    continue;
                }
                // Feasible: fall through to a full evaluation. (The
                // footprint is recomputed there; MemoryModel is a
                // per-layer sum, noise next to stream building.)
            }
            if (session) {
                // The session owns the context and its splice buffers:
                // reusing the slot across evaluateAll calls is what
                // keeps the delta path incremental over a whole search
                // run.
                auto &slot = session->impl_->slots[std::make_tuple(
                    static_cast<const void *>(req.model),
                    static_cast<const void *>(req.desc),
                    static_cast<const void *>(req.task))];
                if (!slot.ctx) {
                    slot.ctx = std::make_shared<EvalContext>(
                        *req.model, *req.desc, *req.task);
                }
                group.ctx = slot.ctx;
                delta = &slot.state;
            } else if (!group.ctx) {
                group.ctx = std::make_shared<EvalContext>(
                    *req.model, *req.desc, *req.task);
            }
            ctx = group.ctx;
        } catch (...) {
            ++local.evaluations;
            ++local.failed;
            results[i] = failureFromCurrentException(req);
            continue;
        }
        ++local.evaluations;
        if (options_.memoize)
            keyToPending.emplace(keys[i], pending.size());
        pending.push_back(Pending{i, {}, keys[i], std::move(ctx), delta});
    }

    auto evaluateAt = [&](size_t p) {
        const PlanRequest &req = requests[pending[p].firstIdx];
        try {
            faultPointThrow("engine.eval");
            if (pending[p].delta) {
                results[pending[p].firstIdx] =
                    pending[p].ctx->evaluateDelta(*pending[p].delta,
                                                  req.plan);
            } else {
                results[pending[p].firstIdx] =
                    pending[p].ctx->evaluate(req.plan);
            }
        } catch (...) {
            // One throwing evaluation (bad_alloc, a model bug, an
            // injected fault) fails its own slot only — the rest of
            // the batch completes, and a micro-batched server keeps
            // its other riders.
            results[pending[p].firstIdx] =
                failureFromCurrentException(req);
            if (pending[p].delta) {
                // A throw mid-splice leaves the DeltaState's buffers
                // unspecified; unbind so the next evaluation through
                // this slot rebinds and takes the full-build path.
                pending[p].delta->context = nullptr;
                pending[p].delta->hasPlan = false;
                pending[p].delta->lastUsedDelta = false;
            }
        }
    };
    if (!session && pool_ && pending.size() > 1) {
        pool_->parallelFor(pending.size(), evaluateAt);
    } else {
        // Session evaluations mutate their slot's DeltaState, so they
        // run serially on the caller's thread (see DeltaSession).
        for (size_t p = 0; p < pending.size(); ++p) {
            evaluateAt(p);
            if (pending[p].delta && pending[p].delta->lastUsedDelta)
                ++local.deltaEvals;
        }
    }

    for (const Pending &p : pending) {
        const bool bad = results[p.firstIdx].failed();
        if (bad)
            ++local.failed;
        if (options_.memoize && !bad) {
            // The cache stores reports timeline-stripped; park the
            // (potentially ~100 KB) timeline in a local so the copy
            // passed to cachePut never duplicates it. Failed reports
            // are never cached: the failure may be transient and must
            // not poison the memo for the plan's lifetime.
            Timeline parked;
            std::swap(results[p.firstIdx].timeline, parked);
            cachePut(p.key, results[p.firstIdx]);
            std::swap(results[p.firstIdx].timeline, parked);
        }
        for (size_t dup : p.dups) {
            results[dup] = results[p.firstIdx];
            results[dup].plan = requests[dup].plan;
        }
    }
    // Failed attempts count as full evals: deltaEvals + fullEvals ==
    // evaluations stays invariant (failed is a subset, not a third
    // bucket).
    local.fullEvals = local.evaluations - local.deltaEvals;

    local.wallSeconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      t0)
            .count();
    {
        std::lock_guard<std::mutex> lock(cacheMutex_);
        lifetime_ += local;
        ++batches_;
        batchRequests_ += static_cast<long>(requests.size());
        maxBatchRequests_ = std::max(
            maxBatchRequests_, static_cast<long>(requests.size()));
    }
    if (stats)
        *stats = local;
    return results;
}

JsonValue
toJson(const EvalStats &stats)
{
    JsonValue out;
    out.set("evaluations", stats.evaluations);
    out.set("cache_hits", stats.cacheHits);
    out.set("pruned", stats.pruned);
    out.set("wall_seconds", stats.wallSeconds);
    // Only sessions produce a nonzero delta split; keep the historical
    // four-field schema byte-identical for everything else (goldens
    // embed it).
    if (stats.deltaEvals != 0) {
        out.set("delta_evals", stats.deltaEvals);
        out.set("full_evals", stats.fullEvals);
    }
    // Same pattern for failures: only chaos makes this nonzero, and
    // healthy consumers keep the historical schema.
    if (stats.failed != 0)
        out.set("failed", stats.failed);
    return out;
}

PerfReport
EvalEngine::evaluateOne(const PerfModel &model, const ModelDesc &desc,
                        const TaskSpec &task, const ParallelPlan &plan,
                        EvalStats *stats)
{
    std::vector<PlanRequest> reqs(1);
    reqs[0].model = &model;
    reqs[0].desc = &desc;
    reqs[0].task = &task;
    reqs[0].plan = plan;
    EvalStats local;
    std::vector<PerfReport> out = evaluateAll(reqs, &local);
    if (stats)
        *stats += local;
    return std::move(out[0]);
}

} // namespace madmax
