/**
 * @file
 * FNV-1a 64-bit content fingerprints. Used by the serving layer to
 * key parsed-config caches by request-body bytes without storing the
 * bytes in the key: the hash buckets, an exact compare against the
 * stored original confirms (so a collision costs a cache miss, never
 * a wrong answer).
 */

#ifndef MADMAX_UTIL_FINGERPRINT_HH
#define MADMAX_UTIL_FINGERPRINT_HH

#include <cstddef>
#include <cstdint>
#include <string>

namespace madmax
{

constexpr uint64_t kFnvBasis = 14695981039346656037ull;
constexpr uint64_t kFnvPrime = 1099511628211ull;

/** Fold @p len bytes into @p seed (chainable across fragments). */
inline uint64_t
fnv1a(const void *data, size_t len, uint64_t seed = kFnvBasis)
{
    const unsigned char *p = static_cast<const unsigned char *>(data);
    for (size_t i = 0; i < len; ++i)
        seed = (seed ^ p[i]) * kFnvPrime;
    return seed;
}

inline uint64_t
fnv1a(const std::string &s, uint64_t seed = kFnvBasis)
{
    return fnv1a(s.data(), s.size(), seed);
}

} // namespace madmax

#endif // MADMAX_UTIL_FINGERPRINT_HH
