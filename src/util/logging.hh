/**
 * @file
 * Error-reporting conventions, following the gem5 fatal/panic split:
 *
 *  - fatal():  the *user's* fault (bad configuration, invalid argument).
 *              Throws ConfigError so library embedders can recover.
 *  - panic():  a MAD-Max bug (violated internal invariant). Throws
 *              InternalError; should never fire on any valid input.
 *  - warn() /
 *    inform(): non-fatal status messages on stderr.
 */

#ifndef MADMAX_UTIL_LOGGING_HH
#define MADMAX_UTIL_LOGGING_HH

#include <stdexcept>
#include <string>

namespace madmax
{

/** Raised by fatal(): the simulation cannot continue due to user input. */
class ConfigError : public std::runtime_error
{
  public:
    explicit ConfigError(const std::string &msg)
        : std::runtime_error(msg)
    {}
};

/** Raised by panic(): an internal MAD-Max invariant was violated. */
class InternalError : public std::logic_error
{
  public:
    explicit InternalError(const std::string &msg)
        : std::logic_error(msg)
    {}
};

/** Report an unrecoverable user error. @throws ConfigError always. */
[[noreturn]] void fatal(const std::string &msg);

/** Report an internal bug. @throws InternalError always. */
[[noreturn]] void panic(const std::string &msg);

/** Print a warning to stderr (functionality may be degraded). */
void warn(const std::string &msg);

/** Print an informational status message to stderr. */
void inform(const std::string &msg);

/** Globally silence warn()/inform() (used by tests and benches). */
void setQuiet(bool quiet);

} // namespace madmax

#endif // MADMAX_UTIL_LOGGING_HH
