/**
 * @file
 * ASCII table printer used by the bench harnesses to regenerate the
 * paper's tables and figure series in a terminal-friendly layout.
 */

#ifndef MADMAX_UTIL_TABLE_HH
#define MADMAX_UTIL_TABLE_HH

#include <ostream>
#include <string>
#include <vector>

namespace madmax
{

/**
 * Accumulates rows of strings and renders them with aligned columns.
 * The first added row is treated as the header.
 */
class AsciiTable
{
  public:
    /** Construct with column headers. */
    explicit AsciiTable(std::vector<std::string> headers);

    /** Append a data row; must match the header column count. */
    void addRow(std::vector<std::string> cells);

    /** Append a horizontal separator row. */
    void addSeparator();

    /** Render to a stream. */
    void print(std::ostream &os) const;

    /** Render to a string. */
    std::string toString() const;

    size_t numRows() const { return rows_.size(); }
    size_t numColumns() const { return headers_.size(); }

  private:
    struct Row
    {
        std::vector<std::string> cells;
        bool separator = false;
    };

    std::vector<std::string> headers_;
    std::vector<Row> rows_;
};

/**
 * Render a one-line horizontal bar of width proportional to
 * value/max_value (used for figure-style bench output).
 */
std::string asciiBar(double value, double max_value, int width = 40);

} // namespace madmax

#endif // MADMAX_UTIL_TABLE_HH
