#include "util/logging.hh"

#include <atomic>
#include <cstdio>

namespace madmax
{

namespace
{
std::atomic<bool> quiet{false};
} // namespace

void
fatal(const std::string &msg)
{
    throw ConfigError(msg);
}

void
panic(const std::string &msg)
{
    throw InternalError(msg);
}

void
warn(const std::string &msg)
{
    if (!quiet.load(std::memory_order_relaxed))
        std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
inform(const std::string &msg)
{
    if (!quiet.load(std::memory_order_relaxed))
        std::fprintf(stderr, "info: %s\n", msg.c_str());
}

void
setQuiet(bool q)
{
    quiet.store(q, std::memory_order_relaxed);
}

} // namespace madmax
