#pragma once

// Deterministic, seeded fault injection.
//
// The serving stack names the places where production fails — accept(2)
// running out of fds, recv(2) seeing a reset, an allocation failing mid
// batch, a plan evaluation throwing — as *fault points*. A scenario
// script arms a subset of those points with an action (errno payload,
// exception, latency, short I/O) and a trigger (always, Nth call, every
// Nth, a probability with a fixed seed). Everything is deterministic:
// the same script against the same call sequence injects the same
// faults, which is what lets the chaos suite assert exact counters.
//
// Cost model: when no script is armed, a fault point is a single
// relaxed atomic load of a process-global flag — no lock, no map
// lookup, no branch beyond the one `if`. The slow path (armed) takes a
// mutex; chaos runs are not benchmarks.
//
// Script grammar (clauses separated by ';', spaces ignored):
//
//   clause  := point '=' action ['@' trigger]
//   action  := 'errno:' NAME_OR_NUMBER   return that errno from the shim
//            | 'throw' [':' MESSAGE]     throw InjectedFault
//            | 'badalloc'                throw std::bad_alloc
//            | 'delay:' MICROS           sleep, then continue normally
//            | 'short'                   short I/O (write 1 byte)
//   trigger := 'nth:' N                  fire only on the Nth hit (1-based)
//            | 'first:' N                fire on hits 1..N
//            | 'every:' N                fire on hits N, 2N, 3N, ...
//            | 'range:' A '-' B          fire on hits A..B inclusive
//            | 'prob:' P [',seed:' S]    fire with probability P (0..1),
//                                        per-point RNG seeded with S
//            | (absent)                  fire on every hit
//
// Example: "http.accept=errno:EMFILE@nth:1;engine.eval=throw@prob:0.3,seed:42"
//
// Configuration surfaces: `madmax serve --faults SPEC`, the
// MADMAX_FAULTS environment variable, and the RAII FaultScope guard for
// tests. Arming is process-global; FaultScope clears *all* scripts on
// destruction, so scopes do not nest.

#include <atomic>
#include <stdexcept>
#include <string>
#include <vector>

namespace madmax {

/** Exception thrown by `throw`-action fault points. */
class InjectedFault : public std::runtime_error {
  public:
    explicit InjectedFault(const std::string &msg)
        : std::runtime_error(msg) {}
};

/** Per-point counters, snapshot via FaultInjection::stats(). */
struct FaultPointStats {
    std::string point;
    long hits = 0;     ///< times the armed point was reached
    long injected = 0; ///< times a fault actually fired
};

class FaultInjection {
  public:
    /** True when any scenario script is armed (relaxed load). */
    static bool active() {
        return armed_.load(std::memory_order_relaxed);
    }

    /**
     * Parse a scenario script and arm its clauses. Clauses add to the
     * current configuration; a second clause for the same point
     * replaces the first. Throws ConfigError on a malformed script.
     */
    static void configure(const std::string &script);

    /** Arm from the MADMAX_FAULTS environment variable, if set. */
    static void configureFromEnv();

    /** Disarm everything and reset all counters. */
    static void clearAll();

    /**
     * Evaluate the named point. Returns 0 when the point is not armed
     * or its trigger does not fire; a positive errno payload for
     * `errno:` actions; kShortIo for `short` actions. `throw` and
     * `badalloc` actions throw; `delay` sleeps and returns 0.
     */
    static int fire(const char *point);

    /** Sentinel returned by fire() for `short` (short-I/O) actions. */
    static constexpr int kShortIo = -1;

    /** Counters for every configured point, sorted by point name. */
    static std::vector<FaultPointStats> stats();

  private:
    static std::atomic<bool> armed_;
};

/**
 * Hot-path guard: zero work when no script is armed. Returns the
 * fire() payload (0 / errno / kShortIo), or throws for exception
 * actions.
 */
inline int faultPoint(const char *point) {
    if (!FaultInjection::active())
        return 0;
    return FaultInjection::fire(point);
}

/**
 * Variant for non-syscall layers (engine, config loading) where an
 * errno has no meaning: any non-zero payload is promoted to an
 * InjectedFault throw, so every armed action at such a point is an
 * exception, a delay, or a no-op.
 */
inline void faultPointThrow(const char *point) {
    if (!FaultInjection::active())
        return;
    if (FaultInjection::fire(point) != 0)
        throw InjectedFault(std::string("injected fault at ") + point);
}

/**
 * RAII scenario guard for tests: arms `script` on construction, clears
 * all fault configuration (and counters) on destruction.
 */
class FaultScope {
  public:
    explicit FaultScope(const std::string &script) {
        FaultInjection::configure(script);
    }
    ~FaultScope() { FaultInjection::clearAll(); }
    FaultScope(const FaultScope &) = delete;
    FaultScope &operator=(const FaultScope &) = delete;
};

} // namespace madmax
