/**
 * @file
 * Fixed-size work-stealing thread pool. Each worker owns a deque:
 * the owner pushes/pops at the back (LIFO, cache-friendly) while idle
 * workers steal from the front (FIFO, oldest task first). Submitted
 * tasks are distributed round-robin, so a burst lands spread across
 * the workers and stealing only pays for imbalance.
 *
 * This is the substrate of the EvalEngine (src/engine/); it is
 * deliberately dependency-free and blocking-wait based — evaluation
 * tasks run for micro- to milliseconds, so lock-free deques would buy
 * nothing over a mutex per deque.
 */

#ifndef MADMAX_UTIL_THREAD_POOL_HH
#define MADMAX_UTIL_THREAD_POOL_HH

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace madmax
{

class ThreadPool
{
  public:
    /**
     * @param threads Worker count; 0 selects defaultConcurrency().
     *        A pool always has at least one worker — callers that
     *        want strictly serial execution should not construct a
     *        pool at all.
     */
    explicit ThreadPool(int threads = 0);

    /**
     * Joins all workers; pending tasks are DRAINED, never abandoned.
     *
     * Shutdown sequence, deterministic by construction:
     *   1. waitIdle() — blocks until inflight_ hits 0, i.e. every
     *      task submitted before the destructor began (including
     *      tasks that other tasks submitted while draining) has run
     *      to completion;
     *   2. stop_ is raised under the lock and every worker woken;
     *   3. workers exit only on `stop_ && queued_ == 0`, so a task
     *      racing step 2 is still taken and finished before its
     *      worker returns — there is no window in which a queued
     *      task is dropped.
     *
     * Consequently destruction cannot deadlock on pending work, but
     * it DOES wait for it: a wedged task wedges the destructor (the
     * serving stack bounds this with its own watchdog/deadline layer
     * — see docs/resilience.md). Submitting from another thread
     * concurrently with destruction is a caller bug, as with any
     * standard container.
     */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Number of worker threads. */
    int size() const { return static_cast<int>(workers_.size()); }

    /** std::thread::hardware_concurrency with a floor of 1. */
    static int defaultConcurrency();

    /** Enqueue one task. Exceptions it throws are swallowed after
     *  being recorded; use parallelFor for propagating work. */
    void submit(std::function<void()> fn);

    /** Block until every submitted task has finished. */
    void waitIdle();

    /**
     * Run fn(0..n-1), distributing iterations dynamically across the
     * pool, and block until all complete. Iterations may run in any
     * order and on any thread (including none of them on the caller).
     * The first exception thrown by any iteration is rethrown here
     * after the batch drains.
     */
    void parallelFor(size_t n, const std::function<void(size_t)> &fn);

  private:
    struct Worker
    {
        std::mutex mutex;
        std::deque<std::function<void()>> deque;
    };

    void workerLoop(size_t self);
    bool tryTake(size_t self, std::function<void()> &out);

    std::vector<std::unique_ptr<Worker>> workers_;
    std::vector<std::thread> threads_;

    std::mutex mutex_;             ///< Guards queued_/inflight_/stop_.
    std::condition_variable work_; ///< Signaled when a task is queued.
    std::condition_variable idle_; ///< Signaled when inflight_ hits 0.
    size_t queued_ = 0;            ///< Tasks enqueued, not yet taken.
    size_t inflight_ = 0;          ///< Tasks enqueued or running.
    bool stop_ = false;
    size_t nextWorker_ = 0;        ///< Round-robin submit cursor.
};

} // namespace madmax

#endif // MADMAX_UTIL_THREAD_POOL_HH
