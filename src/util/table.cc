#include "util/table.hh"

#include <algorithm>
#include <sstream>

#include "util/logging.hh"

namespace madmax
{

AsciiTable::AsciiTable(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
    if (headers_.empty())
        fatal("AsciiTable requires at least one column");
}

void
AsciiTable::addRow(std::vector<std::string> cells)
{
    if (cells.size() != headers_.size())
        fatal("AsciiTable row width mismatch");
    rows_.push_back(Row{std::move(cells), false});
}

void
AsciiTable::addSeparator()
{
    rows_.push_back(Row{{}, true});
}

void
AsciiTable::print(std::ostream &os) const
{
    std::vector<size_t> widths(headers_.size());
    for (size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const Row &row : rows_) {
        if (row.separator)
            continue;
        for (size_t c = 0; c < row.cells.size(); ++c)
            widths[c] = std::max(widths[c], row.cells[c].size());
    }

    auto print_rule = [&]() {
        os << '+';
        for (size_t w : widths)
            os << std::string(w + 2, '-') << '+';
        os << '\n';
    };
    auto print_cells = [&](const std::vector<std::string> &cells) {
        os << '|';
        for (size_t c = 0; c < cells.size(); ++c) {
            os << ' ' << cells[c]
               << std::string(widths[c] - cells[c].size() + 1, ' ') << '|';
        }
        os << '\n';
    };

    print_rule();
    print_cells(headers_);
    print_rule();
    for (const Row &row : rows_) {
        if (row.separator)
            print_rule();
        else
            print_cells(row.cells);
    }
    print_rule();
}

std::string
AsciiTable::toString() const
{
    std::ostringstream oss;
    print(oss);
    return oss.str();
}

std::string
asciiBar(double value, double max_value, int width)
{
    if (max_value <= 0.0 || value < 0.0)
        return {};
    int n = static_cast<int>(value / max_value * width + 0.5);
    n = std::clamp(n, 0, width);
    return std::string(static_cast<size_t>(n), '#');
}

} // namespace madmax
