#include "util/stats.hh"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/logging.hh"

namespace madmax
{

double
mean(const std::vector<double> &values)
{
    if (values.empty())
        panic("mean() of empty vector");
    return std::accumulate(values.begin(), values.end(), 0.0) /
        static_cast<double>(values.size());
}

double
median(std::vector<double> values)
{
    if (values.empty())
        panic("median() of empty vector");
    std::sort(values.begin(), values.end());
    size_t n = values.size();
    if (n % 2 == 1)
        return values[n / 2];
    return 0.5 * (values[n / 2 - 1] + values[n / 2]);
}

double
geomean(const std::vector<double> &values)
{
    if (values.empty())
        panic("geomean() of empty vector");
    double log_sum = 0.0;
    for (double v : values) {
        if (v <= 0.0)
            panic("geomean() requires strictly positive values");
        log_sum += std::log(v);
    }
    return std::exp(log_sum / static_cast<double>(values.size()));
}

double
stddev(const std::vector<double> &values)
{
    if (values.size() < 2)
        return 0.0;
    double m = mean(values);
    double acc = 0.0;
    for (double v : values)
        acc += (v - m) * (v - m);
    return std::sqrt(acc / static_cast<double>(values.size() - 1));
}

double
minOf(const std::vector<double> &values)
{
    if (values.empty())
        panic("minOf() of empty vector");
    return *std::min_element(values.begin(), values.end());
}

double
maxOf(const std::vector<double> &values)
{
    if (values.empty())
        panic("maxOf() of empty vector");
    return *std::max_element(values.begin(), values.end());
}

Histogram::Histogram(double lo, double hi, size_t num_bins)
    : lo_(lo), width_((hi - lo) / static_cast<double>(num_bins)),
      counts_(num_bins, 0)
{
    if (num_bins == 0)
        fatal("Histogram requires at least one bin");
    if (hi <= lo)
        fatal("Histogram requires hi > lo");
}

void
Histogram::add(double value)
{
    double pos = (value - lo_) / width_;
    long idx = static_cast<long>(std::floor(pos));
    idx = std::clamp<long>(idx, 0, static_cast<long>(counts_.size()) - 1);
    ++counts_[static_cast<size_t>(idx)];
    ++total_;
}

size_t
Histogram::count(size_t idx) const
{
    if (idx >= counts_.size())
        panic("Histogram bin index out of range");
    return counts_[idx];
}

double
Histogram::binLo(size_t idx) const
{
    return lo_ + width_ * static_cast<double>(idx);
}

double
Histogram::binHi(size_t idx) const
{
    return lo_ + width_ * static_cast<double>(idx + 1);
}

} // namespace madmax
