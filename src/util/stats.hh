/**
 * @file
 * Small statistics helpers used by the DSE tooling and the fleet-wide
 * characterization: summary statistics, geometric means for speedup
 * aggregation, and a fixed-width histogram.
 */

#ifndef MADMAX_UTIL_STATS_HH
#define MADMAX_UTIL_STATS_HH

#include <cstddef>
#include <vector>

namespace madmax
{

/** Arithmetic mean. @pre !values.empty() */
double mean(const std::vector<double> &values);

/** Median (averages the two middle elements for even sizes). */
double median(std::vector<double> values);

/** Geometric mean; the right way to average speedup ratios. */
double geomean(const std::vector<double> &values);

/** Sample standard deviation. Returns 0 for fewer than two samples. */
double stddev(const std::vector<double> &values);

/** Minimum. @pre !values.empty() */
double minOf(const std::vector<double> &values);

/** Maximum. @pre !values.empty() */
double maxOf(const std::vector<double> &values);

/**
 * Fixed-width histogram over [lo, hi). Values outside the range are
 * clamped into the first/last bin so totals always match the input.
 */
class Histogram
{
  public:
    /**
     * @param lo Inclusive lower bound of the histogram range.
     * @param hi Exclusive upper bound; must be > lo.
     * @param num_bins Number of equal-width bins; must be >= 1.
     */
    Histogram(double lo, double hi, size_t num_bins);

    /** Add one sample. */
    void add(double value);

    /** Number of samples in bin @p idx. */
    size_t count(size_t idx) const;

    /** Total number of samples added. */
    size_t total() const { return total_; }

    size_t numBins() const { return counts_.size(); }

    /** Inclusive lower edge of bin @p idx. */
    double binLo(size_t idx) const;

    /** Exclusive upper edge of bin @p idx. */
    double binHi(size_t idx) const;

  private:
    double lo_;
    double width_;
    std::vector<size_t> counts_;
    size_t total_ = 0;
};

} // namespace madmax

#endif // MADMAX_UTIL_STATS_HH
