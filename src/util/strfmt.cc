#include "util/strfmt.hh"

#include <cmath>
#include <cstdio>
#include <vector>

namespace madmax
{

std::string
strfmt(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    va_list args_copy;
    va_copy(args_copy, args);
    int needed = std::vsnprintf(nullptr, 0, fmt, args);
    va_end(args);
    if (needed < 0) {
        va_end(args_copy);
        return {};
    }
    std::vector<char> buf(static_cast<size_t>(needed) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, args_copy);
    va_end(args_copy);
    return std::string(buf.data(), static_cast<size_t>(needed));
}

namespace
{

/** Scale a value down by @p base, returning the chosen suffix index. */
int
scaleBy(double &value, double base, int max_index)
{
    int idx = 0;
    while (std::abs(value) >= base && idx < max_index) {
        value /= base;
        ++idx;
    }
    return idx;
}

} // namespace

std::string
formatBytes(double bytes)
{
    static const char *suffixes[] = {"B", "KiB", "MiB", "GiB", "TiB", "PiB"};
    double v = bytes;
    int idx = scaleBy(v, 1024.0, 5);
    return strfmt("%.2f %s", v, suffixes[idx]);
}

std::string
formatBandwidth(double bytes_per_sec)
{
    static const char *suffixes[] =
        {"B/s", "KB/s", "MB/s", "GB/s", "TB/s", "PB/s"};
    double v = bytes_per_sec;
    int idx = scaleBy(v, 1000.0, 5);
    return strfmt("%.2f %s", v, suffixes[idx]);
}

std::string
formatFlops(double flops_per_sec)
{
    static const char *suffixes[] =
        {"FLOPS", "KFLOPS", "MFLOPS", "GFLOPS", "TFLOPS", "PFLOPS", "EFLOPS"};
    double v = flops_per_sec;
    int idx = scaleBy(v, 1000.0, 6);
    return strfmt("%.2f %s", v, suffixes[idx]);
}

std::string
formatTime(double seconds)
{
    double abs_s = std::abs(seconds);
    if (abs_s >= 86400.0)
        return strfmt("%.2f days", seconds / 86400.0);
    if (abs_s >= 3600.0)
        return strfmt("%.2f hr", seconds / 3600.0);
    if (abs_s >= 60.0)
        return strfmt("%.2f min", seconds / 60.0);
    if (abs_s >= 1.0)
        return strfmt("%.3f s", seconds);
    if (abs_s >= 1e-3)
        return strfmt("%.3f ms", seconds * 1e3);
    if (abs_s >= 1e-6)
        return strfmt("%.3f us", seconds * 1e6);
    return strfmt("%.3f ns", seconds * 1e9);
}

std::string
formatCount(double count)
{
    static const char *suffixes[] = {"", "K", "M", "B", "T", "Q"};
    double v = count;
    int idx = scaleBy(v, 1000.0, 5);
    if (idx == 0)
        return strfmt("%.0f", v);
    return strfmt("%.2f%s", v, suffixes[idx]);
}

std::string
formatPercent(double fraction)
{
    return strfmt("%.2f%%", fraction * 100.0);
}

} // namespace madmax
