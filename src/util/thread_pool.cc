#include "util/thread_pool.hh"

#include <atomic>

namespace madmax
{

int
ThreadPool::defaultConcurrency()
{
    unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? static_cast<int>(hw) : 1;
}

ThreadPool::ThreadPool(int threads)
{
    int n = threads > 0 ? threads : defaultConcurrency();
    workers_.reserve(static_cast<size_t>(n));
    for (int i = 0; i < n; ++i)
        workers_.push_back(std::make_unique<Worker>());
    threads_.reserve(static_cast<size_t>(n));
    for (int i = 0; i < n; ++i) {
        threads_.emplace_back(
            [this, i] { workerLoop(static_cast<size_t>(i)); });
    }
}

ThreadPool::~ThreadPool()
{
    waitIdle();
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stop_ = true;
    }
    work_.notify_all();
    for (std::thread &t : threads_)
        t.join();
}

void
ThreadPool::submit(std::function<void()> fn)
{
    size_t target;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        target = nextWorker_++ % workers_.size();
        ++queued_;
        ++inflight_;
    }
    {
        std::lock_guard<std::mutex> lock(workers_[target]->mutex);
        workers_[target]->deque.push_back(std::move(fn));
    }
    work_.notify_one();
}

bool
ThreadPool::tryTake(size_t self, std::function<void()> &out)
{
    // Own deque first, newest task (LIFO keeps the working set warm) …
    {
        Worker &w = *workers_[self];
        std::lock_guard<std::mutex> lock(w.mutex);
        if (!w.deque.empty()) {
            out = std::move(w.deque.back());
            w.deque.pop_back();
            return true;
        }
    }
    // … then steal the oldest task from a sibling (FIFO minimizes
    // contention with the victim's LIFO end).
    for (size_t i = 1; i < workers_.size(); ++i) {
        Worker &w = *workers_[(self + i) % workers_.size()];
        std::lock_guard<std::mutex> lock(w.mutex);
        if (!w.deque.empty()) {
            out = std::move(w.deque.front());
            w.deque.pop_front();
            return true;
        }
    }
    return false;
}

void
ThreadPool::workerLoop(size_t self)
{
    for (;;) {
        std::function<void()> task;
        if (tryTake(self, task)) {
            {
                std::lock_guard<std::mutex> lock(mutex_);
                --queued_;
            }
            try {
                task();
            } catch (...) {
                // parallelFor records exceptions in its batch state;
                // bare submit() tasks must not tear down the pool.
            }
            std::lock_guard<std::mutex> lock(mutex_);
            if (--inflight_ == 0)
                idle_.notify_all();
            continue;
        }
        std::unique_lock<std::mutex> lock(mutex_);
        work_.wait(lock, [this] { return stop_ || queued_ > 0; });
        if (stop_ && queued_ == 0)
            return;
    }
}

void
ThreadPool::waitIdle()
{
    std::unique_lock<std::mutex> lock(mutex_);
    idle_.wait(lock, [this] { return inflight_ == 0; });
}

void
ThreadPool::parallelFor(size_t n, const std::function<void(size_t)> &fn)
{
    if (n == 0)
        return;
    if (n == 1) {
        fn(0);
        return;
    }

    struct BatchState
    {
        std::atomic<size_t> next{0};
        std::mutex mutex;
        std::condition_variable done;
        size_t live = 0;
        std::exception_ptr error;
    };
    auto state = std::make_shared<BatchState>();

    // One driver task per worker; each drains the shared index. This
    // gives dynamic load balancing without per-iteration task cost,
    // and the deque scheduler balances the drivers themselves.
    size_t drivers = std::min(n, workers_.size());
    state->live = drivers;
    for (size_t d = 0; d < drivers; ++d) {
        submit([state, n, &fn] {
            size_t i;
            while ((i = state->next.fetch_add(1)) < n) {
                try {
                    fn(i);
                } catch (...) {
                    std::lock_guard<std::mutex> lock(state->mutex);
                    if (!state->error)
                        state->error = std::current_exception();
                    // Let remaining iterations run: partial results
                    // are discarded by the rethrow below anyway, and
                    // skipping them would need another flag check.
                }
            }
            std::lock_guard<std::mutex> lock(state->mutex);
            if (--state->live == 0)
                state->done.notify_all();
        });
    }
    std::unique_lock<std::mutex> lock(state->mutex);
    state->done.wait(lock, [&] { return state->live == 0; });
    if (state->error)
        std::rethrow_exception(state->error);
}

} // namespace madmax
