/**
 * @file
 * Small header-only LRU map, the bookkeeping half of the serving
 * layer's parsed-config caches (EvalEngine has its own inlined copy
 * of this structure predating it — the memo cache's entry type and
 * locking are entangled with evaluation accounting, so it stays
 * as-is). Not thread-safe; callers hold their own mutex, which they
 * need anyway to make lookup-then-insert atomic.
 */

#ifndef MADMAX_UTIL_LRU_CACHE_HH
#define MADMAX_UTIL_LRU_CACHE_HH

#include <cstddef>
#include <list>
#include <unordered_map>
#include <utility>

namespace madmax
{

template <typename Key, typename Value> class LruCache
{
  public:
    explicit LruCache(size_t capacity) : capacity_(capacity) {}

    /** Pointer to the value (touched most-recent), or nullptr.
     *  Invalidated by the next put(). */
    Value *get(const Key &key)
    {
        auto it = map_.find(key);
        if (it == map_.end())
            return nullptr;
        order_.splice(order_.begin(), order_, it->second.second);
        return &it->second.first;
    }

    /** Peek without touching recency (for read-only probes). */
    const Value *peek(const Key &key) const
    {
        auto it = map_.find(key);
        return it == map_.end() ? nullptr : &it->second.first;
    }

    /** Insert or overwrite; evicts least-recent beyond capacity.
     *  Returns the number of evictions (0 or 1). */
    size_t put(const Key &key, Value value)
    {
        auto it = map_.find(key);
        if (it != map_.end()) {
            it->second.first = std::move(value);
            order_.splice(order_.begin(), order_, it->second.second);
            return 0;
        }
        order_.push_front(key);
        map_.emplace(key,
                     std::make_pair(std::move(value), order_.begin()));
        size_t evicted = 0;
        while (map_.size() > capacity_) {
            map_.erase(order_.back());
            order_.pop_back();
            ++evicted;
        }
        return evicted;
    }

    size_t size() const { return map_.size(); }
    size_t capacity() const { return capacity_; }

  private:
    size_t capacity_;
    std::list<Key> order_; ///< Front = most recently used.
    std::unordered_map<Key,
                       std::pair<Value, typename std::list<Key>::iterator>>
        map_;
};

} // namespace madmax

#endif // MADMAX_UTIL_LRU_CACHE_HH
