/**
 * @file
 * Minimal printf-style string formatting (GCC 12 on this toolchain lacks
 * <format>). Also houses the human-readable quantity formatters used by
 * reports and bench tables.
 */

#ifndef MADMAX_UTIL_STRFMT_HH
#define MADMAX_UTIL_STRFMT_HH

#include <cstdarg>
#include <string>

namespace madmax
{

/**
 * printf-style formatting into a std::string.
 *
 * @param fmt printf format string.
 * @return The formatted string.
 */
std::string strfmt(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Format a byte count with a binary prefix, e.g. "12.5 GiB". */
std::string formatBytes(double bytes);

/** Format a bandwidth with a decimal prefix, e.g. "1.6 TB/s". */
std::string formatBandwidth(double bytes_per_sec);

/** Format a FLOP rate, e.g. "312 TFLOPS". */
std::string formatFlops(double flops_per_sec);

/** Format a duration with an adaptive unit, e.g. "65.3 ms". */
std::string formatTime(double seconds);

/** Format a plain count with K/M/B/T suffix, e.g. "793B". */
std::string formatCount(double count);

/** Format a ratio as a percentage, e.g. "75.5%". */
std::string formatPercent(double fraction);

} // namespace madmax

#endif // MADMAX_UTIL_STRFMT_HH
