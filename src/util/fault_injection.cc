#include "util/fault_injection.hh"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <map>
#include <mutex>
#include <new>
#include <random>
#include <thread>

#include "util/logging.hh"
#include "util/strfmt.hh"

namespace madmax {

std::atomic<bool> FaultInjection::armed_{false};

namespace {

struct Trigger {
    enum class Kind { Always, Nth, First, Every, Range, Prob };
    Kind kind = Kind::Always;
    long a = 0, b = 0; ///< nth/first/every/range parameters
    double p = 0.0;    ///< prob parameter
    std::mt19937_64 rng;
};

struct Action {
    enum class Kind { Errno, Throw, BadAlloc, Delay, Short };
    Kind kind = Kind::Throw;
    int errnoValue = 0;
    long delayMicros = 0;
    std::string message;
};

struct PointState {
    Trigger trigger;
    Action action;
    long hits = 0;
    long injected = 0;
};

// All mutable state lives behind this mutex; the hot path never takes
// it because faultPoint() checks the armed_ flag first.
std::mutex &registryMutex()
{
    static std::mutex m;
    return m;
}

std::map<std::string, PointState> &registry()
{
    static std::map<std::string, PointState> r;
    return r;
}

int errnoByName(const std::string &name)
{
    static const std::map<std::string, int> kNames = {
        {"EAGAIN", EAGAIN},   {"ECONNABORTED", ECONNABORTED},
        {"ECONNRESET", ECONNRESET},
        {"EINTR", EINTR},     {"EINVAL", EINVAL},
        {"EIO", EIO},         {"EMFILE", EMFILE},
        {"ENFILE", ENFILE},   {"ENOMEM", ENOMEM},
        {"EPIPE", EPIPE},     {"ETIMEDOUT", ETIMEDOUT},
    };
    auto it = kNames.find(name);
    if (it != kNames.end())
        return it->second;
    char *end = nullptr;
    long v = std::strtol(name.c_str(), &end, 10);
    if (end == name.c_str() || *end != '\0' || v <= 0)
        fatal(strfmt("fault script: unknown errno '%s'", name.c_str()));
    return static_cast<int>(v);
}

long parsePositive(const std::string &text, const char *what)
{
    char *end = nullptr;
    long v = std::strtol(text.c_str(), &end, 10);
    if (end == text.c_str() || *end != '\0' || v <= 0)
        fatal(strfmt("fault script: bad %s '%s'", what, text.c_str()));
    return v;
}

std::string stripSpaces(const std::string &s)
{
    std::string out;
    for (char c : s)
        if (c != ' ' && c != '\t')
            out += c;
    return out;
}

Trigger parseTrigger(const std::string &spec)
{
    Trigger t;
    if (spec.rfind("nth:", 0) == 0) {
        t.kind = Trigger::Kind::Nth;
        t.a = parsePositive(spec.substr(4), "nth count");
    } else if (spec.rfind("first:", 0) == 0) {
        t.kind = Trigger::Kind::First;
        t.a = parsePositive(spec.substr(6), "first count");
    } else if (spec.rfind("every:", 0) == 0) {
        t.kind = Trigger::Kind::Every;
        t.a = parsePositive(spec.substr(6), "every period");
    } else if (spec.rfind("range:", 0) == 0) {
        std::string body = spec.substr(6);
        size_t dash = body.find('-');
        if (dash == std::string::npos)
            fatal(strfmt("fault script: range trigger needs A-B, got '%s'",
                  body.c_str()));
        t.kind = Trigger::Kind::Range;
        t.a = parsePositive(body.substr(0, dash), "range start");
        t.b = parsePositive(body.substr(dash + 1), "range end");
        if (t.b < t.a)
            fatal(strfmt("fault script: empty range %ld-%ld", t.a, t.b));
    } else if (spec.rfind("prob:", 0) == 0) {
        std::string body = spec.substr(5);
        uint64_t seed = 1;
        size_t comma = body.find(",seed:");
        if (comma != std::string::npos) {
            seed = static_cast<uint64_t>(
                parsePositive(body.substr(comma + 6), "prob seed"));
            body = body.substr(0, comma);
        }
        char *end = nullptr;
        t.p = std::strtod(body.c_str(), &end);
        if (end == body.c_str() || *end != '\0' || t.p < 0.0 || t.p > 1.0)
            fatal(strfmt("fault script: probability must be in [0,1], got '%s'",
                        body.c_str()));
        t.kind = Trigger::Kind::Prob;
        t.rng.seed(seed);
    } else {
        fatal(strfmt("fault script: unknown trigger '%s'", spec.c_str()));
    }
    return t;
}

Action parseAction(const std::string &spec, const std::string &point)
{
    Action a;
    if (spec.rfind("errno:", 0) == 0) {
        a.kind = Action::Kind::Errno;
        a.errnoValue = errnoByName(spec.substr(6));
    } else if (spec == "throw" || spec.rfind("throw:", 0) == 0) {
        a.kind = Action::Kind::Throw;
        a.message = spec.size() > 6 ? spec.substr(6)
                                    : "injected fault at " + point;
    } else if (spec == "badalloc") {
        a.kind = Action::Kind::BadAlloc;
    } else if (spec.rfind("delay:", 0) == 0) {
        a.kind = Action::Kind::Delay;
        a.delayMicros = parsePositive(spec.substr(6), "delay micros");
    } else if (spec == "short") {
        a.kind = Action::Kind::Short;
    } else {
        fatal(strfmt("fault script: unknown action '%s'", spec.c_str()));
    }
    return a;
}

// Deterministic uniform draw in [0,1): top 53 bits of the engine
// output, independent of libstdc++'s distribution implementation.
double drawUniform(std::mt19937_64 &rng)
{
    return static_cast<double>(rng() >> 11) * 0x1.0p-53;
}

bool triggerFires(Trigger &t, long hit)
{
    switch (t.kind) {
      case Trigger::Kind::Always: return true;
      case Trigger::Kind::Nth:    return hit == t.a;
      case Trigger::Kind::First:  return hit <= t.a;
      case Trigger::Kind::Every:  return hit % t.a == 0;
      case Trigger::Kind::Range:  return hit >= t.a && hit <= t.b;
      case Trigger::Kind::Prob:   return drawUniform(t.rng) < t.p;
    }
    return false;
}

} // namespace

void FaultInjection::configure(const std::string &script)
{
    const std::string clean = stripSpaces(script);
    if (clean.empty())
        return;
    // Parse the whole script before touching the registry so a
    // malformed clause cannot leave a half-armed configuration.
    std::vector<std::pair<std::string, PointState>> parsed;
    size_t pos = 0;
    while (pos < clean.size()) {
        size_t semi = clean.find(';', pos);
        std::string clause = clean.substr(
            pos, semi == std::string::npos ? std::string::npos : semi - pos);
        pos = semi == std::string::npos ? clean.size() : semi + 1;
        if (clause.empty())
            continue;
        size_t eq = clause.find('=');
        if (eq == std::string::npos || eq == 0)
            fatal(strfmt("fault script: clause '%s' is not point=action",
                  clause.c_str()));
        std::string point = clause.substr(0, eq);
        std::string rest = clause.substr(eq + 1);
        PointState state;
        size_t at = rest.find('@');
        if (at != std::string::npos) {
            state.trigger = parseTrigger(rest.substr(at + 1));
            rest = rest.substr(0, at);
        }
        state.action = parseAction(rest, point);
        parsed.emplace_back(std::move(point), std::move(state));
    }
    if (parsed.empty())
        return;
    std::lock_guard<std::mutex> lock(registryMutex());
    for (auto &entry : parsed)
        registry()[entry.first] = std::move(entry.second);
    armed_.store(true, std::memory_order_relaxed);
}

void FaultInjection::configureFromEnv()
{
    const char *env = std::getenv("MADMAX_FAULTS");
    if (env != nullptr && *env != '\0')
        configure(env);
}

void FaultInjection::clearAll()
{
    std::lock_guard<std::mutex> lock(registryMutex());
    registry().clear();
    armed_.store(false, std::memory_order_relaxed);
}

int FaultInjection::fire(const char *point)
{
    Action action;
    {
        std::lock_guard<std::mutex> lock(registryMutex());
        auto it = registry().find(point);
        if (it == registry().end())
            return 0;
        PointState &state = it->second;
        ++state.hits;
        if (!triggerFires(state.trigger, state.hits))
            return 0;
        ++state.injected;
        action = state.action;
    }
    switch (action.kind) {
      case Action::Kind::Errno:
        return action.errnoValue;
      case Action::Kind::Throw:
        throw InjectedFault(action.message);
      case Action::Kind::BadAlloc:
        throw std::bad_alloc();
      case Action::Kind::Delay:
        std::this_thread::sleep_for(
            std::chrono::microseconds(action.delayMicros));
        return 0;
      case Action::Kind::Short:
        return kShortIo;
    }
    return 0;
}

std::vector<FaultPointStats> FaultInjection::stats()
{
    std::vector<FaultPointStats> out;
    std::lock_guard<std::mutex> lock(registryMutex());
    for (const auto &entry : registry()) {
        FaultPointStats s;
        s.point = entry.first;
        s.hits = entry.second.hits;
        s.injected = entry.second.injected;
        out.push_back(std::move(s));
    }
    return out;
}

} // namespace madmax
