/**
 * @file
 * Unit helpers for the quantities MAD-Max juggles: bytes, bandwidths,
 * FLOPs and times. All internal computation is done in SI base units
 * (bytes, bytes/second, FLOP/second, seconds); these helpers exist so
 * that configuration code reads like the datasheets it transcribes
 * (e.g. Table III/IV of the paper).
 *
 * Capacities use binary prefixes (a "40 GB" HBM stack is 40 GiB);
 * bandwidths and FLOP rates use decimal prefixes, matching vendor
 * datasheets.
 */

#ifndef MADMAX_UTIL_UNITS_HH
#define MADMAX_UTIL_UNITS_HH

namespace madmax::units
{

// --- Capacity (binary, bytes) -------------------------------------------
constexpr double KiB = 1024.0;
constexpr double MiB = 1024.0 * KiB;
constexpr double GiB = 1024.0 * MiB;
constexpr double TiB = 1024.0 * GiB;

/** Capacity literal helpers: gib(40) == 40 GiB in bytes. */
constexpr double kib(double v) { return v * KiB; }
constexpr double mib(double v) { return v * MiB; }
constexpr double gib(double v) { return v * GiB; }
constexpr double tib(double v) { return v * TiB; }

// --- Decimal sizes (bytes) ----------------------------------------------
constexpr double KB = 1e3;
constexpr double MB = 1e6;
constexpr double GB = 1e9;
constexpr double TB = 1e12;

constexpr double kb(double v) { return v * KB; }
constexpr double mb(double v) { return v * MB; }
constexpr double gb(double v) { return v * GB; }
constexpr double tb(double v) { return v * TB; }

// --- Bandwidth (bytes/second, decimal) ----------------------------------
constexpr double kbps(double v) { return v * 1e3 / 8.0; }
constexpr double mbps(double v) { return v * 1e6 / 8.0; }
constexpr double gbps(double v) { return v * 1e9 / 8.0; }
constexpr double tbps(double v) { return v * 1e12 / 8.0; }

constexpr double kBps(double v) { return v * 1e3; }
constexpr double mBps(double v) { return v * 1e6; }
constexpr double gBps(double v) { return v * 1e9; }
constexpr double tBps(double v) { return v * 1e12; }
constexpr double pBps(double v) { return v * 1e15; }

// --- Compute (FLOP/second, decimal) --------------------------------------
constexpr double gflops(double v) { return v * 1e9; }
constexpr double tflops(double v) { return v * 1e12; }
constexpr double pflops(double v) { return v * 1e15; }

// --- Time (seconds) -------------------------------------------------------
constexpr double usec(double v) { return v * 1e-6; }
constexpr double msec(double v) { return v * 1e-3; }
constexpr double sec(double v) { return v; }
constexpr double minutes(double v) { return v * 60.0; }
constexpr double hours(double v) { return v * 3600.0; }
constexpr double days(double v) { return v * 86400.0; }

constexpr double toMsec(double seconds) { return seconds * 1e3; }
constexpr double toUsec(double seconds) { return seconds * 1e6; }
constexpr double toHours(double seconds) { return seconds / 3600.0; }
constexpr double toDays(double seconds) { return seconds / 86400.0; }

// --- Counts ----------------------------------------------------------------
constexpr double kilo(double v) { return v * 1e3; }
constexpr double million(double v) { return v * 1e6; }
constexpr double billion(double v) { return v * 1e9; }
constexpr double trillion(double v) { return v * 1e12; }

} // namespace madmax::units

#endif // MADMAX_UTIL_UNITS_HH
