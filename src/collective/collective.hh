/**
 * @file
 * Communication-collective cost model (§IV-C "Estimating Communication
 * Collective Execution").
 *
 * Collectives run at one of three scopes on the two-level cluster:
 *
 *  - Intra:  among the d devices of one node, on the scale-up fabric.
 *  - Inter:  among the m nodes (one "rail" device per node), on the
 *            scale-out fabric.
 *  - Global: among all n = d x m devices; bandwidth-optimal
 *            hierarchical decomposition for AllReduce / AllGather /
 *            ReduceScatter, slowest-link bound for All2All (the NCCL
 *            All2All is point-to-point Send/Recv, so it cannot exploit
 *            the faster fabric; §IV-C).
 *
 * Size convention: `bytes` is the full logical tensor size T.
 *  - AllReduce(T): every device starts and ends with a T-byte buffer.
 *  - AllGather(T): result is T; each device contributes T/g.
 *  - ReduceScatter(T): input is T per device; result shard is T/g.
 *  - All2All(T): every device sends T bytes total, spread over peers.
 */

#ifndef MADMAX_COLLECTIVE_COLLECTIVE_HH
#define MADMAX_COLLECTIVE_COLLECTIVE_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "hw/cluster.hh"
#include "trace/trace_event.hh" // CollAlgo

namespace madmax
{

/** Collective flavors MAD-Max models. */
enum class Collective
{
    AllReduce,
    AllGather,
    ReduceScatter,
    All2All,
    Broadcast,
};

/** Which slice of the cluster a collective spans. */
enum class CommScope
{
    Intra,   ///< Devices within one node.
    Inter,   ///< One device per node, across nodes.
    Global,  ///< All devices (hierarchical).
};

std::string toString(Collective kind);
std::string toString(CommScope scope);

/** Per-message launch/latency constants (alpha term, seconds/step). */
struct CollectiveLatency
{
    double intraAlpha = 1.5e-6; ///< Per-step latency on scale-up links.
    double interAlpha = 5e-6;   ///< Per-step latency on scale-out links.
};

/**
 * AllReduce algorithm selection (§IV-C: the effective-bandwidth ratio
 * depends on "NCCL implementation version (e.g., ring vs. tree)").
 * Ring is bandwidth-optimal but pays (g-1) latency steps; tree pays a
 * small bandwidth constant for logarithmic latency.
 */
enum class AllReduceAlgorithm
{
    Ring,
    Tree,
    Auto, ///< Cheapest of the two per call — NCCL's tuner behavior.
};

std::string toString(AllReduceAlgorithm algo);

/** A priced collective: modeled seconds plus the algorithm chosen. */
struct CollectiveEstimate
{
    double seconds = 0.0;
    CollAlgo algo = CollAlgo::None;
};

/**
 * Pluggable collective cost model: maps (collective, scope, tensor
 * bytes) to seconds on one cluster. The flat two-scope model below is
 * the registered default; the topology-aware model
 * (collective/topology_model.hh) prices against an explicit tier
 * stack. Implementations are immutable after construction and safe
 * for concurrent time()/estimate() calls.
 */
class CollectiveCostModel
{
  public:
    virtual ~CollectiveCostModel() = default;

    /** Execution time in seconds for the collective. */
    virtual double time(Collective kind, CommScope scope,
                        double bytes) const = 0;

    /**
     * time() plus the chosen algorithm. The default forwards to
     * time() with no annotation (CollAlgo::None) — exactly what the
     * flat model reports, so flat-default traces never change.
     */
    virtual CollectiveEstimate estimate(Collective kind, CommScope scope,
                                        double bytes) const
    {
        return CollectiveEstimate{time(kind, scope, bytes),
                                  CollAlgo::None};
    }

    /** Group size at @p scope (d, m, or n). */
    virtual int groupSize(CommScope scope) const = 0;

    /**
     * Stable fingerprint of everything the model prices from (model
     * kind, shapes, bandwidths, latencies, algorithm choice). Two
     * models that could ever disagree on any (kind, scope, bytes)
     * must have different identities — EvalContext keys its
     * collective-time memo and the EvalEngine its report cache on
     * this, so two models in one process cannot alias entries.
     */
    virtual uint64_t identity() const = 0;

    /** Registry name of the implementation ("flat", "topology"). */
    virtual std::string name() const = 0;

    /**
     * Effective ring bandwidth the collective sees, bytes/s — the
     * paper's "Effective AllReduce BW" / "Effective All2All BW"
     * diagnostic: tensor bytes divided by modeled time.
     */
    double effectiveBandwidth(Collective kind, CommScope scope,
                              double bytes) const;
};

/**
 * The flat two-scope cost model (the original §IV-C closed forms):
 * collectives are priced from the cluster's effective intra- and
 * inter-node bandwidths alone. Pure function of the cluster spec;
 * cheap to copy. Registered as the "flat" default — every golden
 * report and bench baseline is derived from this model.
 */
class CollectiveModel : public CollectiveCostModel
{
  public:
    explicit CollectiveModel(const ClusterSpec &cluster,
                             CollectiveLatency latency = {},
                             AllReduceAlgorithm algorithm =
                                 AllReduceAlgorithm::Auto);

    double time(Collective kind, CommScope scope,
                double bytes) const override;

    /** Group size at @p scope (d, m, or n). */
    int groupSize(CommScope scope) const override;

    uint64_t identity() const override;

    std::string name() const override { return "flat"; }

  private:
    double allReduce(CommScope scope, double bytes) const;

    /** One-level AllReduce under the configured algorithm. */
    double allReduceLevel(double bytes, int group, double bandwidth,
                          CommScope alpha_scope) const;

    double allGather(CommScope scope, double bytes) const;
    double reduceScatter(CommScope scope, double bytes) const;
    double allToAll(CommScope scope, double bytes) const;
    double broadcast(CommScope scope, double bytes) const;

    /** Latency (alpha) term for a ring of @p steps on @p scope. */
    double alphaTerm(CommScope scope, int steps) const;

    ClusterSpec cluster_;
    CollectiveLatency latency_;
    AllReduceAlgorithm algorithm_;
};

/**
 * @name Cost-model registry
 * Name -> factory registry behind the pluggable interface. "flat"
 * (CollectiveModel) is pre-registered as the default; "topology"
 * (TopologyCollectiveModel) registers itself from its own translation
 * unit. Registration normally happens during static initialization;
 * lookups are mutex-guarded and safe from concurrent EvalContext
 * construction.
 */
/// @{

using CollectiveModelFactory = std::unique_ptr<const CollectiveCostModel>
    (*)(const ClusterSpec &cluster, CollectiveLatency latency,
        AllReduceAlgorithm algorithm);

/** Register @p factory under @p name; returns false (and keeps the
 *  existing entry) when the name is already taken. */
bool registerCollectiveModel(const std::string &name,
                             CollectiveModelFactory factory);

/** Registered model names, sorted. */
std::vector<std::string> collectiveModelNames();

/** Instantiate the model registered as @p name.
 *  @throws ConfigError on unknown names. */
std::unique_ptr<const CollectiveCostModel> makeCollectiveModel(
    const std::string &name, const ClusterSpec &cluster,
    CollectiveLatency latency = {},
    AllReduceAlgorithm algorithm = AllReduceAlgorithm::Auto);

/**
 * The model a cluster should be priced with: @p override when
 * non-empty (a registry name, e.g. PerfModelOptions::collectiveModel),
 * else "topology" when the cluster carries a TopologySpec, else the
 * flat default. This is the single selection point every evaluation
 * path (EvalContext, self-contained StreamBuilder callers) goes
 * through. Defined in topology_model.cc so the topology model's
 * registration always links.
 */
std::unique_ptr<const CollectiveCostModel> makeCollectiveModelFor(
    const ClusterSpec &cluster, CollectiveLatency latency = {},
    AllReduceAlgorithm algorithm = AllReduceAlgorithm::Auto,
    const std::string &override = {});

/// @}

/**
 * Devices a collective at @p scope spans on @p cluster: the topology
 * tier fans when the cluster carries a TopologySpec (validated
 * consistent with the flat shape), else devicesPerNode / numNodes /
 * numDevices(). The CommPlanner derives its level group sizes from
 * this, so planned volumes follow the topology description.
 */
int scopeSpan(const ClusterSpec &cluster, CommScope scope);

} // namespace madmax

#endif // MADMAX_COLLECTIVE_COLLECTIVE_HH
