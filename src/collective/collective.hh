/**
 * @file
 * Communication-collective cost model (§IV-C "Estimating Communication
 * Collective Execution").
 *
 * Collectives run at one of three scopes on the two-level cluster:
 *
 *  - Intra:  among the d devices of one node, on the scale-up fabric.
 *  - Inter:  among the m nodes (one "rail" device per node), on the
 *            scale-out fabric.
 *  - Global: among all n = d x m devices; bandwidth-optimal
 *            hierarchical decomposition for AllReduce / AllGather /
 *            ReduceScatter, slowest-link bound for All2All (the NCCL
 *            All2All is point-to-point Send/Recv, so it cannot exploit
 *            the faster fabric; §IV-C).
 *
 * Size convention: `bytes` is the full logical tensor size T.
 *  - AllReduce(T): every device starts and ends with a T-byte buffer.
 *  - AllGather(T): result is T; each device contributes T/g.
 *  - ReduceScatter(T): input is T per device; result shard is T/g.
 *  - All2All(T): every device sends T bytes total, spread over peers.
 */

#ifndef MADMAX_COLLECTIVE_COLLECTIVE_HH
#define MADMAX_COLLECTIVE_COLLECTIVE_HH

#include <string>

#include "hw/cluster.hh"

namespace madmax
{

/** Collective flavors MAD-Max models. */
enum class Collective
{
    AllReduce,
    AllGather,
    ReduceScatter,
    All2All,
    Broadcast,
};

/** Which slice of the cluster a collective spans. */
enum class CommScope
{
    Intra,   ///< Devices within one node.
    Inter,   ///< One device per node, across nodes.
    Global,  ///< All devices (hierarchical).
};

std::string toString(Collective kind);
std::string toString(CommScope scope);

/** Per-message launch/latency constants (alpha term, seconds/step). */
struct CollectiveLatency
{
    double intraAlpha = 1.5e-6; ///< Per-step latency on scale-up links.
    double interAlpha = 5e-6;   ///< Per-step latency on scale-out links.
};

/**
 * AllReduce algorithm selection (§IV-C: the effective-bandwidth ratio
 * depends on "NCCL implementation version (e.g., ring vs. tree)").
 * Ring is bandwidth-optimal but pays (g-1) latency steps; tree pays a
 * small bandwidth constant for logarithmic latency.
 */
enum class AllReduceAlgorithm
{
    Ring,
    Tree,
    Auto, ///< Cheapest of the two per call — NCCL's tuner behavior.
};

std::string toString(AllReduceAlgorithm algo);

/**
 * Maps (collective, scope, tensor bytes) to seconds on a given
 * cluster. Pure function of the cluster spec; cheap to copy.
 */
class CollectiveModel
{
  public:
    explicit CollectiveModel(const ClusterSpec &cluster,
                             CollectiveLatency latency = {},
                             AllReduceAlgorithm algorithm =
                                 AllReduceAlgorithm::Auto);

    /** Execution time in seconds for the collective. */
    double time(Collective kind, CommScope scope, double bytes) const;

    /** Group size at @p scope (d, m, or n). */
    int groupSize(CommScope scope) const;

    /**
     * Effective ring bandwidth the collective sees, bytes/s — the
     * paper's "Effective AllReduce BW" / "Effective All2All BW"
     * diagnostic: tensor bytes divided by modeled time.
     */
    double effectiveBandwidth(Collective kind, CommScope scope,
                              double bytes) const;

  private:
    double allReduce(CommScope scope, double bytes) const;

    /** One-level AllReduce under the configured algorithm. */
    double allReduceLevel(double bytes, int group, double bandwidth,
                          CommScope alpha_scope) const;

    double allGather(CommScope scope, double bytes) const;
    double reduceScatter(CommScope scope, double bytes) const;
    double allToAll(CommScope scope, double bytes) const;
    double broadcast(CommScope scope, double bytes) const;

    /** Latency (alpha) term for a ring of @p steps on @p scope. */
    double alphaTerm(CommScope scope, int steps) const;

    ClusterSpec cluster_;
    CollectiveLatency latency_;
    AllReduceAlgorithm algorithm_;
};

} // namespace madmax

#endif // MADMAX_COLLECTIVE_COLLECTIVE_HH
