#include "collective/topology_model.hh"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "util/logging.hh"
#include "util/strfmt.hh"

namespace madmax
{

namespace
{

/** Ring traffic fraction: each device moves (g-1)/g of the tensor. */
double
ringFactor(int group)
{
    return group <= 1
        ? 0.0
        : static_cast<double>(group - 1) / static_cast<double>(group);
}

const TopologySpec &
requireTopology(const ClusterSpec &cluster)
{
    if (!cluster.topology) {
        fatal(strfmt("cluster '%s' carries no TopologySpec; attach one "
                     "or use the flat collective model",
                     cluster.name.c_str()));
    }
    cluster.validate(); // Includes topology shape consistency.
    return *cluster.topology;
}

} // namespace

TopologyCollectiveModel::TopologyCollectiveModel(
    const TopologySpec &spec, CollectiveLatency latency,
    AllReduceAlgorithm algorithm)
    : spec_(spec), algorithm_(algorithm)
{
    spec_.validate();
    bw_.reserve(spec_.levels.size());
    alpha_.reserve(spec_.levels.size());
    for (size_t i = 0; i < spec_.levels.size(); ++i) {
        const TopologyLevel &lv = spec_.levels[i];
        bw_.push_back(lv.effBandwidth());
        // Inherit-latency levels resolve to the flat constants: the
        // scale-up tier pays intraAlpha, scale-out tiers interAlpha.
        if (lv.linkLatency >= 0.0)
            alpha_.push_back(lv.linkLatency);
        else
            alpha_.push_back(i == 0 ? latency.intraAlpha
                                    : latency.interAlpha);
    }
}

TopologyCollectiveModel::TopologyCollectiveModel(
    const ClusterSpec &cluster, CollectiveLatency latency,
    AllReduceAlgorithm algorithm)
    : TopologyCollectiveModel(requireTopology(cluster), latency,
                              algorithm)
{}

TopologyCollectiveModel::Span
TopologyCollectiveModel::spanOf(CommScope scope) const
{
    switch (scope) {
      case CommScope::Intra: return Span{0, 1};
      case CommScope::Inter: return Span{1, spec_.levels.size()};
      case CommScope::Global: return Span{0, spec_.levels.size()};
    }
    panic("spanOf: unknown CommScope");
}

double
TopologyCollectiveModel::bwAt(size_t level, double congestion) const
{
    // congestion == 1.0 divides exactly, preserving flat-equivalence
    // bit for bit.
    return bw_[level] / congestion;
}

double
TopologyCollectiveModel::alphaSteps(size_t level, int steps) const
{
    if (steps <= 0)
        return 0.0;
    return alpha_[level] * static_cast<double>(steps);
}

int
TopologyCollectiveModel::spanSize(size_t lo, size_t hi) const
{
    int n = 1;
    for (size_t k = lo; k < hi; ++k)
        n *= spec_.levels[k].fan;
    return n;
}

int
TopologyCollectiveModel::maxFan(size_t lo, size_t hi) const
{
    int f = 1;
    for (size_t k = lo; k < hi; ++k)
        f = std::max(f, spec_.levels[k].fan);
    return f;
}

double
TopologyCollectiveModel::minBw(size_t lo, size_t hi,
                               double congestion) const
{
    double bw = bwAt(lo, congestion);
    for (size_t k = lo + 1; k < hi; ++k)
        bw = std::min(bw, bwAt(k, congestion));
    return bw;
}

size_t
TopologyCollectiveModel::topAlphaLevel(size_t lo, size_t hi) const
{
    for (size_t k = hi; k-- > lo + 1;) {
        if (spec_.levels[k].fan > 1)
            return k;
    }
    // No populated tier above lo: still charge the first scale-out
    // tier's alpha (the flat model's Global-scope behavior).
    return lo + 1;
}

double
TopologyCollectiveModel::agLevel(size_t level, double bytes,
                                 double congestion) const
{
    const int g = spec_.levels[level].fan;
    if (g <= 1)
        return 0.0;
    return bytes * ringFactor(g) / bwAt(level, congestion) +
        alphaSteps(level, g - 1);
}

double
TopologyCollectiveModel::arLevel(size_t level, double bytes,
                                 double congestion,
                                 CollAlgo *chosen) const
{
    const int g = spec_.levels[level].fan;
    if (g <= 1)
        return 0.0;
    const double bandwidth = bwAt(level, congestion);
    // Ring: bandwidth-optimal volume, (g-1)-step latency.
    double ring = 2.0 * bytes * ringFactor(g) / bandwidth +
        alphaSteps(level, 2 * (g - 1));
    if (algorithm_ == AllReduceAlgorithm::Ring) {
        *chosen = CollAlgo::Ring;
        return ring;
    }
    // Tree: logarithmic latency at ~90% of the ring's bus bandwidth
    // (same constants as the flat model).
    int log_steps = static_cast<int>(
        std::ceil(std::log2(static_cast<double>(g))));
    double tree = 2.0 * bytes / (bandwidth * 0.9) +
        alphaSteps(level, 2 * log_steps);
    if (algorithm_ == AllReduceAlgorithm::Tree) {
        *chosen = CollAlgo::Tree;
        return tree;
    }
    // Auto: the NCCL tuner picks per message size — small messages
    // are latency-bound (tree), large ones bandwidth-bound (ring).
    *chosen = ring <= tree ? CollAlgo::Ring : CollAlgo::Tree;
    return std::min(ring, tree);
}

double
TopologyCollectiveModel::agSpan(size_t lo, size_t hi, double bytes,
                                double congestion) const
{
    if (hi - lo == 1)
        return agLevel(lo, bytes, congestion);
    // Bandwidth-optimal multi-tier shape: the fan parallel rails of a
    // tier each gather a 1/fan stripe across the outer tiers, then
    // children exchange stripes within the tier.
    double t = 0.0;
    const int fan = spec_.levels[lo].fan;
    if (spanSize(lo + 1, hi) > 1)
        t += agSpan(lo + 1, hi, bytes / fan, congestion);
    t += agLevel(lo, bytes, congestion);
    return t;
}

double
TopologyCollectiveModel::rsSpan(size_t lo, size_t hi, double bytes,
                                double congestion) const
{
    // Ring ReduceScatter moves the same volume as AllGather; the
    // multi-tier shape mirrors agSpan with the tier order reversed
    // (scatter inward first, then rail-parallel across outer tiers).
    if (hi - lo == 1)
        return agLevel(lo, bytes, congestion);
    double t = agLevel(lo, bytes, congestion);
    const int fan = spec_.levels[lo].fan;
    if (spanSize(lo + 1, hi) > 1)
        t += rsSpan(lo + 1, hi, bytes / fan, congestion);
    return t;
}

double
TopologyCollectiveModel::arSpan(size_t lo, size_t hi, double bytes,
                                double congestion,
                                CollAlgo *chosen) const
{
    if (hi - lo == 1)
        return arLevel(lo, bytes, congestion, chosen);
    // Hierarchical: ReduceScatter on the innermost tier, AllReduce
    // across the outer tiers on the 1/fan-sized shard, AllGather back
    // on the innermost tier.
    *chosen = CollAlgo::Hierarchical;
    const int fan = spec_.levels[lo].fan;
    double t = agLevel(lo, bytes, congestion);
    CollAlgo sub = CollAlgo::None;
    t += arSpan(lo + 1, hi, fan > 1 ? bytes / fan : bytes, congestion,
                &sub);
    t += agLevel(lo, bytes, congestion);
    return t;
}

double
TopologyCollectiveModel::a2aSpan(size_t lo, size_t hi, double bytes,
                                 double congestion) const
{
    const int n = spanSize(lo, hi);
    if (n <= 1)
        return 0.0;
    if (hi - lo == 1) {
        return bytes * ringFactor(n) / bwAt(lo, congestion) +
            alphaSteps(lo, n - 1);
    }
    // Point-to-point Send/Recv pairs: bound by the slowest fabric
    // spanned; spans confined to one node ride the scale-up tier.
    const int upper = spanSize(lo + 1, hi);
    const double bw = upper > 1 ? minBw(lo, hi, congestion)
                                : bwAt(lo, congestion);
    const size_t alpha_level = upper > 1 ? topAlphaLevel(lo, hi) : lo;
    return bytes * ringFactor(n) / bw +
        alphaSteps(alpha_level, maxFan(lo, hi) - 1);
}

double
TopologyCollectiveModel::bcastSpan(size_t lo, size_t hi, double bytes,
                                   double congestion) const
{
    const int g = spanSize(lo, hi);
    if (g <= 1)
        return 0.0;
    double bw;
    size_t alpha_level;
    if (hi - lo == 1) {
        bw = bwAt(lo, congestion);
        alpha_level = lo;
    } else {
        const int upper = spanSize(lo + 1, hi);
        bw = upper > 1 ? minBw(lo, hi, congestion)
                       : bwAt(lo, congestion);
        // Multi-tier spans always pay a scale-out alpha, even when
        // the outer tiers are unpopulated (the flat model's Global
        // broadcast behavior).
        alpha_level = topAlphaLevel(lo, hi);
    }
    int steps = static_cast<int>(
        std::ceil(std::log2(static_cast<double>(g))));
    return bytes / bw + alphaSteps(alpha_level, steps);
}

double
TopologyCollectiveModel::time(Collective kind, CommScope scope,
                              double bytes) const
{
    return estimate(kind, scope, bytes).seconds;
}

CollectiveEstimate
TopologyCollectiveModel::estimate(Collective kind, CommScope scope,
                                  double bytes) const
{
    return estimateCongested(kind, scope, bytes, 1.0);
}

CollectiveEstimate
TopologyCollectiveModel::estimateCongested(Collective kind,
                                           CommScope scope, double bytes,
                                           double concurrent) const
{
    if (bytes < 0.0) {
        fatal(strfmt("collective %s: negative byte count",
                     madmax::toString(kind).c_str()));
    }
    if (!(concurrent >= 1.0)) {
        fatal(strfmt("collective %s: concurrent sharers %.3f < 1",
                     madmax::toString(kind).c_str(), concurrent));
    }
    CollectiveEstimate est;
    if (bytes == 0.0 || groupSize(scope) <= 1)
        return est;
    const Span sp = spanOf(scope);
    switch (kind) {
      case Collective::AllReduce:
        est.seconds = arSpan(sp.lo, sp.hi, bytes, concurrent, &est.algo);
        return est;
      case Collective::AllGather:
        est.seconds = agSpan(sp.lo, sp.hi, bytes, concurrent);
        est.algo = sp.hi - sp.lo == 1 ? CollAlgo::Ring
                                      : CollAlgo::Hierarchical;
        return est;
      case Collective::ReduceScatter:
        est.seconds = rsSpan(sp.lo, sp.hi, bytes, concurrent);
        est.algo = sp.hi - sp.lo == 1 ? CollAlgo::Ring
                                      : CollAlgo::Hierarchical;
        return est;
      case Collective::All2All:
        est.seconds = a2aSpan(sp.lo, sp.hi, bytes, concurrent);
        est.algo = CollAlgo::PointToPoint;
        return est;
      case Collective::Broadcast:
        est.seconds = bcastSpan(sp.lo, sp.hi, bytes, concurrent);
        est.algo = CollAlgo::Tree;
        return est;
    }
    panic("estimateCongested: unknown Collective");
}

int
TopologyCollectiveModel::groupSize(CommScope scope) const
{
    switch (scope) {
      case CommScope::Intra: return spec_.levels[0].fan;
      case CommScope::Inter: return spec_.scaleOutFan();
      case CommScope::Global: return spec_.totalDevices();
    }
    panic("groupSize: unknown CommScope");
}

uint64_t
TopologyCollectiveModel::identity() const
{
    uint64_t h = 1469598103934665603ull;
    auto mixU64 = [&h](uint64_t v) {
        for (int byte = 0; byte < 8; ++byte) {
            h ^= (v >> (byte * 8)) & 0xffu;
            h *= 1099511628211ull;
        }
    };
    auto mixDouble = [&](double v) {
        uint64_t bits;
        static_assert(sizeof(bits) == sizeof(v), "double is 64-bit");
        std::memcpy(&bits, &v, sizeof(bits));
        mixU64(bits);
    };
    mixU64(0x70b0ull); // "topology" salt — never collides with flat.
    mixU64(static_cast<uint64_t>(algorithm_));
    mixU64(spec_.fingerprint());
    // The resolved per-level rates and alphas (the fingerprint alone
    // cannot see which CollectiveLatency inherit-levels resolved to).
    for (size_t i = 0; i < bw_.size(); ++i) {
        mixDouble(bw_[i]);
        mixDouble(alpha_[i]);
    }
    return h;
}

namespace
{

std::unique_ptr<const CollectiveCostModel>
makeTopologyModel(const ClusterSpec &cluster, CollectiveLatency latency,
                  AllReduceAlgorithm algorithm)
{
    return std::make_unique<TopologyCollectiveModel>(cluster, latency,
                                                     algorithm);
}

const bool topology_registered [[maybe_unused]] =
    registerCollectiveModel("topology", &makeTopologyModel);

} // namespace

std::unique_ptr<const CollectiveCostModel>
makeCollectiveModelFor(const ClusterSpec &cluster,
                       CollectiveLatency latency,
                       AllReduceAlgorithm algorithm,
                       const std::string &override)
{
    if (!override.empty())
        return makeCollectiveModel(override, cluster, latency, algorithm);
    if (cluster.topology) {
        return std::make_unique<TopologyCollectiveModel>(cluster, latency,
                                                         algorithm);
    }
    return std::make_unique<CollectiveModel>(cluster, latency, algorithm);
}

} // namespace madmax
