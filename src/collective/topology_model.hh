/**
 * @file
 * Topology-aware collective cost model: prices collectives on an
 * explicit hierarchical tier stack (hw/topology.hh) instead of the
 * flat two-scope closed forms.
 *
 * Scope mapping: CommScope::Intra spans level 0 (the scale-up tier),
 * CommScope::Inter spans levels 1.. (one device per node, across the
 * scale-out tiers), CommScope::Global spans the whole stack.
 *
 * Per-collective algorithm choice:
 *  - AllReduce within one tier: ring vs tree by message size (the
 *    flat model's NCCL-tuner behavior, AllReduceAlgorithm::Auto) —
 *    the estimate reports which one won.
 *  - AllReduce / AllGather / ReduceScatter across tiers: hierarchical
 *    decomposition (reduce-scatter up, all-gather down), shard sizes
 *    shrinking by each tier's fan.
 *  - All2All: point-to-point Send/Recv bound by the slowest spanned
 *    tier.
 *  - Broadcast: pipelined tree over the spanned tiers.
 *
 * Congestion: each tier's `sharers` statically derates its links, and
 * estimateCongested() additionally prices a collective under N
 * concurrent collectives sharing every spanned link (completion time
 * is non-decreasing in N — pinned by the property suite).
 *
 * Flat equivalence: on TopologySpec::flatEquivalent(cluster) every
 * recursion below reduces term-for-term — same expression shapes,
 * same accumulation order — to the flat CollectiveModel's closed
 * forms, so the price of every (kind, scope, bytes) is bitwise
 * identical to the flat model. tests/collective/
 * test_topology_differential.cc enforces this across the model zoo.
 */

#ifndef MADMAX_COLLECTIVE_TOPOLOGY_MODEL_HH
#define MADMAX_COLLECTIVE_TOPOLOGY_MODEL_HH

#include <string>
#include <vector>

#include "collective/collective.hh"
#include "hw/topology.hh"

namespace madmax
{

class TopologyCollectiveModel : public CollectiveCostModel
{
  public:
    /** Price against @p spec directly (validated here). Inherit-
     *  latency levels (linkLatency < 0) resolve from @p latency. */
    explicit TopologyCollectiveModel(const TopologySpec &spec,
                                     CollectiveLatency latency = {},
                                     AllReduceAlgorithm algorithm =
                                         AllReduceAlgorithm::Auto);

    /** Price @p cluster's attached topology (fatal when none). */
    TopologyCollectiveModel(const ClusterSpec &cluster,
                            CollectiveLatency latency,
                            AllReduceAlgorithm algorithm);

    double time(Collective kind, CommScope scope,
                double bytes) const override;

    CollectiveEstimate estimate(Collective kind, CommScope scope,
                                double bytes) const override;

    /**
     * estimate() under @p concurrent collectives sharing every link
     * of the spanned tiers (>= 1; 1 is estimate() exactly, bit for
     * bit). Completion time never decreases in @p concurrent.
     */
    CollectiveEstimate estimateCongested(Collective kind, CommScope scope,
                                         double bytes,
                                         double concurrent) const;

    int groupSize(CommScope scope) const override;

    uint64_t identity() const override;

    std::string name() const override { return "topology"; }

    const TopologySpec &spec() const { return spec_; }

  private:
    /** Half-open level range a scope spans. */
    struct Span
    {
        size_t lo;
        size_t hi;
    };

    Span spanOf(CommScope scope) const;

    double bwAt(size_t level, double congestion) const;
    double alphaSteps(size_t level, int steps) const;
    int spanSize(size_t lo, size_t hi) const;
    int maxFan(size_t lo, size_t hi) const;
    double minBw(size_t lo, size_t hi, double congestion) const;

    /** Topmost level in (lo, hi) with fan > 1, else lo + 1 — the tier
     *  whose alpha a span-wide step pays. */
    size_t topAlphaLevel(size_t lo, size_t hi) const;

    /** Ring AllGather / ReduceScatter confined to one tier. */
    double agLevel(size_t level, double bytes, double congestion) const;

    /** One-tier AllReduce under the configured algorithm. */
    double arLevel(size_t level, double bytes, double congestion,
                   CollAlgo *chosen) const;

    double agSpan(size_t lo, size_t hi, double bytes,
                  double congestion) const;
    double rsSpan(size_t lo, size_t hi, double bytes,
                  double congestion) const;
    double arSpan(size_t lo, size_t hi, double bytes, double congestion,
                  CollAlgo *chosen) const;
    double a2aSpan(size_t lo, size_t hi, double bytes,
                   double congestion) const;
    double bcastSpan(size_t lo, size_t hi, double bytes,
                     double congestion) const;

    TopologySpec spec_;
    AllReduceAlgorithm algorithm_;
    std::vector<double> bw_;    ///< Per-level effective bytes/s.
    std::vector<double> alpha_; ///< Per-level resolved alpha, s/step.
};

} // namespace madmax

#endif // MADMAX_COLLECTIVE_TOPOLOGY_MODEL_HH
