#include "collective/collective.hh"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <map>
#include <mutex>

#include "hw/topology.hh"
#include "util/logging.hh"
#include "util/strfmt.hh"

namespace madmax
{

std::string
toString(Collective kind)
{
    switch (kind) {
      case Collective::AllReduce: return "AllReduce";
      case Collective::AllGather: return "AllGather";
      case Collective::ReduceScatter: return "ReduceScatter";
      case Collective::All2All: return "All2All";
      case Collective::Broadcast: return "Broadcast";
    }
    panic("toString: unknown Collective");
}

std::string
toString(CommScope scope)
{
    switch (scope) {
      case CommScope::Intra: return "intra";
      case CommScope::Inter: return "inter";
      case CommScope::Global: return "global";
    }
    panic("toString: unknown CommScope");
}

std::string
toString(AllReduceAlgorithm algo)
{
    switch (algo) {
      case AllReduceAlgorithm::Ring: return "ring";
      case AllReduceAlgorithm::Tree: return "tree";
      case AllReduceAlgorithm::Auto: return "auto";
    }
    panic("toString: unknown AllReduceAlgorithm");
}

CollectiveModel::CollectiveModel(const ClusterSpec &cluster,
                                 CollectiveLatency latency,
                                 AllReduceAlgorithm algorithm)
    : cluster_(cluster), latency_(latency), algorithm_(algorithm)
{
    cluster_.validate();
}

int
CollectiveModel::groupSize(CommScope scope) const
{
    switch (scope) {
      case CommScope::Intra: return cluster_.devicesPerNode;
      case CommScope::Inter: return cluster_.numNodes;
      case CommScope::Global: return cluster_.numDevices();
    }
    panic("groupSize: unknown CommScope");
}

namespace
{

/** Ring traffic fraction: each device moves (g-1)/g of the tensor. */
double
ringFactor(int group)
{
    return group <= 1
        ? 0.0
        : static_cast<double>(group - 1) / static_cast<double>(group);
}

} // namespace

double
CollectiveModel::alphaTerm(CommScope scope, int steps) const
{
    if (steps <= 0)
        return 0.0;
    double alpha = scope == CommScope::Intra ? latency_.intraAlpha
                                             : latency_.interAlpha;
    return alpha * static_cast<double>(steps);
}

double
CollectiveModel::allReduceLevel(double bytes, int group, double bandwidth,
                                CommScope alpha_scope) const
{
    if (group <= 1)
        return 0.0;
    // Ring: bandwidth-optimal volume, (g-1)-step latency.
    double ring = 2.0 * bytes * ringFactor(group) / bandwidth +
        alphaTerm(alpha_scope, 2 * (group - 1));
    if (algorithm_ == AllReduceAlgorithm::Ring)
        return ring;
    // Tree (reduce + broadcast down a pipelined binary tree):
    // logarithmic latency steps, but the tree sustains only ~90% of
    // the ring's bus bandwidth on large messages (NCCL behavior).
    int log_steps = static_cast<int>(
        std::ceil(std::log2(static_cast<double>(group))));
    double tree = 2.0 * bytes / (bandwidth * 0.9) +
        alphaTerm(alpha_scope, 2 * log_steps);
    if (algorithm_ == AllReduceAlgorithm::Tree)
        return tree;
    return std::min(ring, tree); // Auto: NCCL tuner picks the faster.
}

double
CollectiveModel::allReduce(CommScope scope, double bytes) const
{
    const int d = cluster_.devicesPerNode;
    const int m = cluster_.numNodes;
    switch (scope) {
      case CommScope::Intra:
        return allReduceLevel(bytes, d, cluster_.effIntraBandwidth(),
                              CommScope::Intra);
      case CommScope::Inter:
        return allReduceLevel(bytes, m, cluster_.effInterBandwidth(),
                              CommScope::Inter);
      case CommScope::Global: {
        // Hierarchical: ReduceScatter intra, AllReduce inter on the
        // 1/d-sized shard, AllGather intra (NCCL's two-level shape;
        // the "ratio of intra-node and inter-node bandwidth" in
        // §IV-C).
        double t = reduceScatter(CommScope::Intra, bytes);
        t += allReduce(CommScope::Inter, d > 1 ? bytes / d : bytes);
        t += allGather(CommScope::Intra, bytes);
        return t;
      }
    }
    panic("allReduce: unknown CommScope");
}

double
CollectiveModel::allGather(CommScope scope, double bytes) const
{
    const int d = cluster_.devicesPerNode;
    const int m = cluster_.numNodes;
    switch (scope) {
      case CommScope::Intra:
        if (d <= 1)
            return 0.0;
        return bytes * ringFactor(d) / cluster_.effIntraBandwidth() +
            alphaTerm(CommScope::Intra, d - 1);
      case CommScope::Inter:
        if (m <= 1)
            return 0.0;
        return bytes * ringFactor(m) / cluster_.effInterBandwidth() +
            alphaTerm(CommScope::Inter, m - 1);
      case CommScope::Global: {
        // Bandwidth-optimal two-level shape: the d parallel rails of
        // a node each gather a 1/d stripe across nodes (T/d per rail
        // over the NIC), then devices exchange stripes within the
        // node over the scale-up fabric.
        double t = 0.0;
        if (m > 1)
            t += allGather(CommScope::Inter, bytes / d);
        t += allGather(CommScope::Intra, bytes);
        return t;
      }
    }
    panic("allGather: unknown CommScope");
}

double
CollectiveModel::reduceScatter(CommScope scope, double bytes) const
{
    // Ring ReduceScatter moves the same volume as AllGather; the
    // global two-level shape mirrors allGather (intra reduce-scatter
    // to 1/d stripes, then rail-parallel reduce-scatter across
    // nodes).
    const int d = cluster_.devicesPerNode;
    const int m = cluster_.numNodes;
    switch (scope) {
      case CommScope::Intra:
      case CommScope::Inter:
        return allGather(scope, bytes);
      case CommScope::Global: {
        double t = allGather(CommScope::Intra, bytes);
        if (m > 1)
            t += allGather(CommScope::Inter, bytes / d);
        return t;
      }
    }
    panic("reduceScatter: unknown CommScope");
}

double
CollectiveModel::allToAll(CommScope scope, double bytes) const
{
    const int d = cluster_.devicesPerNode;
    const int m = cluster_.numNodes;
    switch (scope) {
      case CommScope::Intra:
        if (d <= 1)
            return 0.0;
        return bytes * ringFactor(d) / cluster_.effIntraBandwidth() +
            alphaTerm(CommScope::Intra, d - 1);
      case CommScope::Inter:
        if (m <= 1)
            return 0.0;
        return bytes * ringFactor(m) / cluster_.effInterBandwidth() +
            alphaTerm(CommScope::Inter, m - 1);
      case CommScope::Global: {
        if (cluster_.numDevices() <= 1)
            return 0.0;
        // Point-to-point Send/Recv pairs: bound by the slowest fabric
        // spanned (§IV-C). Single-node systems ride NVLink.
        double bw = m > 1
            ? std::min(cluster_.effIntraBandwidth(),
                       cluster_.effInterBandwidth())
            : cluster_.effIntraBandwidth();
        return bytes * ringFactor(cluster_.numDevices()) / bw +
            alphaTerm(m > 1 ? CommScope::Inter : CommScope::Intra,
                      std::max(d, m) - 1);
      }
    }
    panic("allToAll: unknown CommScope");
}

double
CollectiveModel::broadcast(CommScope scope, double bytes) const
{
    const int g = groupSize(scope);
    if (g <= 1)
        return 0.0;
    double bw = scope == CommScope::Intra ? cluster_.effIntraBandwidth()
                                          : cluster_.effInterBandwidth();
    if (scope == CommScope::Global) {
        bw = cluster_.numNodes > 1
            ? std::min(cluster_.effIntraBandwidth(),
                       cluster_.effInterBandwidth())
            : cluster_.effIntraBandwidth();
    }
    int steps = static_cast<int>(std::ceil(std::log2(g)));
    return bytes / bw +
        alphaTerm(scope == CommScope::Intra ? CommScope::Intra
                                            : CommScope::Inter,
                  steps);
}

double
CollectiveModel::time(Collective kind, CommScope scope, double bytes) const
{
    if (bytes < 0.0)
        fatal(strfmt("collective %s: negative byte count",
                     madmax::toString(kind).c_str()));
    if (bytes == 0.0 || groupSize(scope) <= 1)
        return 0.0;
    switch (kind) {
      case Collective::AllReduce: return allReduce(scope, bytes);
      case Collective::AllGather: return allGather(scope, bytes);
      case Collective::ReduceScatter: return reduceScatter(scope, bytes);
      case Collective::All2All: return allToAll(scope, bytes);
      case Collective::Broadcast: return broadcast(scope, bytes);
    }
    panic("time: unknown Collective");
}

double
CollectiveCostModel::effectiveBandwidth(Collective kind, CommScope scope,
                                        double bytes) const
{
    double t = time(kind, scope, bytes);
    if (t <= 0.0)
        return 0.0;
    return bytes / t;
}

uint64_t
CollectiveModel::identity() const
{
    // FNV-1a over everything the closed forms read, salted with the
    // model kind so a flat model and a numerically flat-equivalent
    // topology model still have distinct identities (memo / cache
    // entries must never alias across implementations).
    uint64_t h = 1469598103934665603ull;
    auto mixU64 = [&h](uint64_t v) {
        for (int byte = 0; byte < 8; ++byte) {
            h ^= (v >> (byte * 8)) & 0xffu;
            h *= 1099511628211ull;
        }
    };
    auto mixDouble = [&](double v) {
        uint64_t bits;
        static_assert(sizeof(bits) == sizeof(v), "double is 64-bit");
        std::memcpy(&bits, &v, sizeof(bits));
        mixU64(bits);
    };
    mixU64(0xf1a7ull); // "flat" salt.
    mixU64(static_cast<uint64_t>(algorithm_));
    mixU64(static_cast<uint64_t>(cluster_.devicesPerNode));
    mixU64(static_cast<uint64_t>(cluster_.numNodes));
    mixDouble(cluster_.effIntraBandwidth());
    mixDouble(cluster_.effInterBandwidth());
    mixDouble(latency_.intraAlpha);
    mixDouble(latency_.interAlpha);
    return h;
}

namespace
{

struct Registry
{
    std::mutex mutex;
    std::map<std::string, CollectiveModelFactory> factories;
};

Registry &
registry()
{
    static Registry r;
    return r;
}

std::unique_ptr<const CollectiveCostModel>
makeFlatModel(const ClusterSpec &cluster, CollectiveLatency latency,
              AllReduceAlgorithm algorithm)
{
    return std::make_unique<CollectiveModel>(cluster, latency, algorithm);
}

/** Seeds the default entry before any registration or lookup. */
std::once_flag seed_flag;

void
seedRegistry()
{
    std::call_once(seed_flag, [] {
        std::lock_guard<std::mutex> lock(registry().mutex);
        registry().factories.emplace("flat", &makeFlatModel);
    });
}

} // namespace

bool
registerCollectiveModel(const std::string &name,
                        CollectiveModelFactory factory)
{
    seedRegistry();
    if (factory == nullptr)
        fatal("registerCollectiveModel: null factory for '" + name + "'");
    std::lock_guard<std::mutex> lock(registry().mutex);
    return registry().factories.emplace(name, factory).second;
}

std::vector<std::string>
collectiveModelNames()
{
    seedRegistry();
    std::lock_guard<std::mutex> lock(registry().mutex);
    std::vector<std::string> names;
    names.reserve(registry().factories.size());
    for (const auto &[name, factory] : registry().factories)
        names.push_back(name);
    return names; // std::map iteration order is already sorted.
}

std::unique_ptr<const CollectiveCostModel>
makeCollectiveModel(const std::string &name, const ClusterSpec &cluster,
                    CollectiveLatency latency,
                    AllReduceAlgorithm algorithm)
{
    seedRegistry();
    CollectiveModelFactory factory = nullptr;
    {
        std::lock_guard<std::mutex> lock(registry().mutex);
        auto it = registry().factories.find(name);
        if (it != registry().factories.end())
            factory = it->second;
    }
    if (factory == nullptr) {
        std::string known;
        for (const std::string &n : collectiveModelNames())
            known += known.empty() ? n : ", " + n;
        fatal(strfmt("unknown collective model '%s' (registered: %s)",
                     name.c_str(), known.c_str()));
    }
    return factory(cluster, latency, algorithm);
}

int
scopeSpan(const ClusterSpec &cluster, CommScope scope)
{
    if (cluster.topology) {
        const TopologySpec &t = *cluster.topology;
        switch (scope) {
          case CommScope::Intra: return t.levels[0].fan;
          case CommScope::Inter: return t.scaleOutFan();
          case CommScope::Global: return t.totalDevices();
        }
        panic("scopeSpan: unknown CommScope");
    }
    switch (scope) {
      case CommScope::Intra: return cluster.devicesPerNode;
      case CommScope::Inter: return cluster.numNodes;
      case CommScope::Global: return cluster.numDevices();
    }
    panic("scopeSpan: unknown CommScope");
}

} // namespace madmax
