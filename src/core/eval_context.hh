/**
 * @file
 * Shared evaluation context: everything about a (cluster, model, task)
 * triple that is invariant across parallelization plans, computed once
 * and reused for every plan of a sweep.
 *
 * A design-space sweep (`madmax explore`, `/v1/explore`, the DSE and
 * fleet studies) evaluates hundreds to thousands of plans against one
 * triple. Before this context existed, every PerfModel::evaluate call
 * re-validated the cluster and model, rebuilt LayerProcessor /
 * CollectiveModel / CommPlanner, and re-derived per-layer compute
 * times and collective timings that do not depend on the plan at all.
 * EvalContext hoists all of that out of the per-plan hot path:
 *
 *  - specs are validated once (LayerProcessor / CommPlanner
 *    construction), not once per plan;
 *  - per-layer forward/backward compute times, breakdown categories,
 *    and the backward trace labels ("layer'") are precomputed;
 *  - the collective calls each layer needs under a given
 *    HierStrategy — including their modeled durations — are resolved
 *    once per (layer, strategy) and shared by every plan that maps
 *    the layer's class to that strategy, with a memoized
 *    collective-time table keyed on (model identity, kind, scope,
 *    bytes) deduplicating the underlying cost-model estimate calls;
 *  - trace-event names are owned here (stable storage), so the flat
 *    event graph only carries pointers and plans that do not retain a
 *    Timeline never copy a string.
 *
 * Thread safety: evaluate()/verdict()/plannedOps() are safe to call
 * concurrently. Per-strategy tables are built lazily under a mutex on
 * first use (a plan touches at most one strategy per layer class) and
 * are immutable once published.
 *
 * Lifetime: the context borrows the PerfModel, ModelDesc, and
 * TaskSpec it was built from; all three must outlive it. The
 * EvalEngine builds one context per (model, desc, task) group of a
 * batch; PerfModel::evaluate builds a throwaway one per call.
 */

#ifndef MADMAX_CORE_EVAL_CONTEXT_HH
#define MADMAX_CORE_EVAL_CONTEXT_HH

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <tuple>
#include <vector>

#include "collective/collective.hh"
#include "core/overlap_simulator.hh"
#include "core/perf_model.hh"
#include "core/segment_template.hh"
#include "parallel/comm_planner.hh"
#include "trace/event_graph.hh"
#include "trace/trace_event.hh"

namespace madmax
{

/** Breakdown category for a collective's trace events. */
EventCategory commCategoryOf(Collective kind);

/**
 * One collective call of one layer with its cost already resolved
 * against the cluster — a CommOp whose CollectiveModel::time lookup
 * has been paid. Ops that model to a non-positive duration are
 * dropped at resolution time (the stream builder never emitted events
 * for them).
 */
struct ResolvedCommOp
{
    Phase phase = Phase::Forward;
    CommPosition position = CommPosition::Post;
    Collective kind = Collective::AllReduce;
    EventCategory category = EventCategory::Other;
    bool blocking = true;
    double duration = 0.0; ///< Seconds; > 0 by construction.
    std::string tag;       ///< Trace label (stable storage for graphs).
    CollAlgo algo = CollAlgo::None; ///< Algorithm the cost model chose.
};

class EvalContext
{
  public:
    /**
     * Precompute the plan-invariant state for @p model x @p desc x
     * @p task. Validates both specs (the only validation any plan
     * evaluated through this context will ever pay).
     */
    EvalContext(const PerfModel &model, const ModelDesc &desc,
                const TaskSpec &task);

    EvalContext(const EvalContext &) = delete;
    EvalContext &operator=(const EvalContext &) = delete;

    const PerfModel &model() const { return *model_; }
    const ModelDesc &desc() const { return *desc_; }
    const TaskSpec &task() const { return *task_; }
    const ClusterSpec &cluster() const { return model_->cluster(); }
    const PerfModelOptions &options() const { return model_->options(); }

    /** task().toString(), computed once. */
    const std::string &taskName() const { return taskName_; }

    /**
     * The collective cost model this context prices with — selected by
     * makeCollectiveModelFor from the cluster's topology and
     * PerfModelOptions::collectiveModel. Immutable; safe to share.
     */
    const CollectiveCostModel &collectives() const { return *collectives_; }

    /**
     * Evaluate one plan. Produces a report bit-identical to
     * PerfModel::evaluate(desc, task, plan) on the bound model.
     */
    PerfReport evaluate(const ParallelPlan &plan) const;

    /** Memory-only evaluation, identical to PerfModel::verdict. */
    PerfReport verdict(const ParallelPlan &plan) const;

    /**
     * Caller-owned state for incremental (delta) re-evaluation —
     * default-construct one, keep it alive across a sequence of
     * evaluateDelta calls, and the event graph, schedule, and sweep
     * buffers stop being per-evaluation allocations. The state binds
     * itself to the first context that evaluates through it and
     * resets automatically when a different context (other model,
     * task, or cluster — the structural fall-back) takes over.
     */
    struct DeltaState
    {
        /** Context this state is bound to (managed by evaluateDelta). */
        const EvalContext *context = nullptr;

        /** prevPlan holds the previously spliced plan. */
        bool hasPlan = false;
        ParallelPlan prevPlan;

        /** Did the last evaluateDelta take the incremental path (a
         *  prior splice to diff against, streams actually built)?
         *  False after fall-backs, first-time splices, and OOM
         *  verdicts — the EvalEngine's deltaEvals/fullEvals split
         *  reads this. */
        bool lastUsedDelta = false;

        /// @name Persistent splice / schedule buffers
        /// @{
        EventGraph graph;
        FlatSchedule sched;
        SweepScratch scratch;
        std::vector<SpliceRun> runs;
        std::vector<int32_t> fwdOut;
        std::vector<int32_t> bwdOut;
        std::vector<int32_t> computeIds;
        /// @}
    };

    /**
     * Evaluate one plan incrementally: splice the event graph from
     * per-(layer-class strategy, prefetch) segment templates cached in
     * this context's strategy tables — a candidate differing from the
     * previous plan in K classes only pays template construction for
     * strategies never seen before; everything else is resolved by
     * splicing — then re-run the linear overlap sweep in @p state's
     * persistent buffers. The report is bit-identical to evaluate().
     *
     * Falls back to the full path (leaving @p state's splice buffers
     * untouched) when the model retains timelines
     * (PerfModelOptions::keepTimeline — spliced graphs never
     * materialize events) and short-circuits on OOM verdicts exactly
     * like evaluate(). A context switch (different model / task /
     * cluster, including a different present-class set via another
     * ModelDesc) rebinds the state and starts from scratch.
     */
    PerfReport evaluateDelta(DeltaState &state,
                             const ParallelPlan &plan) const;

    /** Plan-invariant per-layer costs and trace labels. */
    struct LayerCosts
    {
        double fwdTime = 0.0; ///< Forward compute seconds per device.
        double bwdTime = 0.0; ///< Backward compute seconds (0 inference).
        EventCategory category = EventCategory::Other;
        const std::string *fwdName = nullptr; ///< &layer.name().
        std::string bwdName; ///< layer.name() + "'" (backward label).
        LayerClass cls = LayerClass::BaseDense; ///< layer.layerClass().
    };

    const LayerCosts &layerCosts(int idx) const
    {
        return costs_[static_cast<size_t>(idx)];
    }

    /**
     * The resolved collectives layer @p idx needs when its class runs
     * under @p hs. Built lazily per strategy pair (one CommPlanner
     * pass over the whole graph, shared by all layers), then served
     * lock-free. The returned vector and its tag strings are stable
     * for the context's lifetime.
     */
    const std::vector<ResolvedCommOp> &plannedOps(int idx,
                                                  HierStrategy hs) const;

    /** Distinct (kind, scope, bytes) collective timings memoized so
     *  far (observability / tests). */
    size_t collectiveTableSize() const;

  private:
    /** Per-layer resolved ops for one (intra, inter) strategy pair,
     *  plus the symbolic segment templates the delta path splices
     *  from — both built together, published once. */
    struct StrategyTable
    {
        std::atomic<bool> ready{false};
        std::vector<std::vector<ResolvedCommOp>> perLayer;

        /** Packed per-layer segment arenas, indexed [fsdpPrefetch];
         *  bwdSegs stays empty for forward-only tasks. */
        std::array<SegmentSet, 2> fwdSegs;
        std::array<SegmentSet, 2> bwdSegs;
    };

    static size_t encode(HierStrategy hs);

    void buildStrategyTable(size_t slot, HierStrategy hs) const;

    /** The (lazily built) table for @p hs. */
    const StrategyTable &strategyTable(HierStrategy hs) const;

    /** Rebuild @p state's graph for @p plan from cached templates. */
    void spliceGraph(DeltaState &state, const ParallelPlan &plan) const;

    /** Memoized CollectiveCostModel::estimate (only called while
     *  holding buildMutex_). */
    CollectiveEstimate collectiveEstimate(Collective kind, CommScope scope,
                                          double bytes) const;

    const PerfModel *model_;
    const ModelDesc *desc_;
    const TaskSpec *task_;
    std::string taskName_;
    std::unique_ptr<const CollectiveCostModel> collectives_;
    uint64_t collectiveIdentity_; ///< collectives_->identity(), cached.
    std::vector<LayerCosts> costs_;

    /** Indexed by encode(hs); Strategy has 5 values per level. */
    mutable std::array<StrategyTable, 25> strategies_;
    mutable std::mutex buildMutex_;

    /** Keyed (model identity, kind, scope, bytes-bits): the identity
     *  component keeps entries from aliasing if two cost models ever
     *  price through one table (e.g. a future per-phase override) —
     *  distinct models may legitimately disagree on the same
     *  (kind, scope, bytes). */
    mutable std::map<std::tuple<uint64_t, int, int, uint64_t>,
                     CollectiveEstimate>
        collectiveTable_;
};

} // namespace madmax

#endif // MADMAX_CORE_EVAL_CONTEXT_HH
