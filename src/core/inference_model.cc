#include "core/inference_model.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"
#include "util/strfmt.hh"

namespace madmax
{

void
InferenceWorkload::validate(const ModelDesc &desc) const
{
    if (promptTokens < 0) {
        fatal(strfmt("InferenceWorkload: prompt_tokens %ld is negative",
                     promptTokens));
    }
    if (promptTokens > 0 && promptTokens != desc.contextLength) {
        fatal(strfmt(
            "InferenceWorkload: prompt_tokens %ld != model context "
            "length %ld; the prompt pass is priced by the model graph, "
            "so build the model at the prompt length (set the llm "
            "config's \"context\" to %ld) or leave prompt_tokens at 0",
            promptTokens, desc.contextLength, promptTokens));
    }
    if (generateTokens < 1) {
        fatal(strfmt("InferenceWorkload: generate_tokens %ld must be "
                     ">= 1 (a serving request decodes at least one "
                     "token)",
                     generateTokens));
    }
    if (kvBytesPerElement <= 0.0) {
        fatal(strfmt("InferenceWorkload: kv_bytes_per_element %.3g must "
                     "be positive (2 = fp16 cache, 1 = fp8)",
                     kvBytesPerElement));
    }
}

long
InferenceWorkload::effectivePrompt(const ModelDesc &desc) const
{
    return promptTokens > 0 ? promptTokens
                            : static_cast<long>(desc.contextLength);
}

InferenceModel::InferenceModel(PerfModelOptions options)
    : options_(std::move(options))
{
}

TaskSpec
InferenceModel::prefillTask(const ModelDesc &desc,
                            const InferenceWorkload &workload)
{
    TaskSpec t = TaskSpec::prefill();
    // The prefill pool holds the cache only until it hands the
    // sequence off, so its capacity planning stops at the prompt.
    t.kvCapacityTokens = workload.effectivePrompt(desc);
    t.kvBytesPerElement = workload.kvBytesPerElement;
    return t;
}

TaskSpec
InferenceModel::decodeTask(const ModelDesc &desc,
                           const InferenceWorkload &workload)
{
    const long prompt = workload.effectivePrompt(desc);
    // Price the steady-state step: halfway through generation the KV
    // cache averages prompt + generate/2 tokens.
    TaskSpec t = TaskSpec::decode(prompt + workload.generateTokens / 2);
    t.kvCapacityTokens = prompt + workload.generateTokens;
    t.kvBytesPerElement = workload.kvBytesPerElement;
    return t;
}

double
InferenceModel::kvBytesForTokens(const ModelDesc &desc, long tokens,
                                 double bytes_per_element)
{
    double per_token = 0.0;
    for (int i = 0; i < desc.graph.numLayers(); ++i) {
        const Layer &layer = desc.graph.layer(i);
        if (layer.kind() != LayerKind::Attention)
            continue;
        per_token += static_cast<const AttentionLayer &>(layer)
                         .kvBytesPerToken(bytes_per_element);
    }
    return per_token * static_cast<double>(tokens);
}

InferenceReport
InferenceModel::evaluate(const ModelDesc &desc,
                         const InferenceWorkload &workload,
                         const ClusterSpec &prefill_cluster,
                         const ParallelPlan &prefill_plan,
                         const ClusterSpec &decode_cluster,
                         const ParallelPlan &decode_plan,
                         const std::string &deployment_name) const
{
    workload.validate(desc);

    InferenceReport out;
    out.modelName = desc.name;
    out.prefillCluster = prefill_cluster.name;
    out.decodeCluster = decode_cluster.name;
    out.clusterName = deployment_name.empty() ? prefill_cluster.name
                                              : deployment_name;
    out.disaggregated = prefill_cluster.name != decode_cluster.name;
    out.promptTokens = workload.effectivePrompt(desc);
    out.generateTokens = workload.generateTokens;
    out.kvBytesPerRequest = kvBytesForTokens(desc, out.promptTokens,
                                             workload.kvBytesPerElement);

    const TaskSpec prefill_task = prefillTask(desc, workload);
    const TaskSpec decode_task = decodeTask(desc, workload);

    PerfModel prefill_model(prefill_cluster, options_);
    PerfModel decode_model(decode_cluster, options_);
    out.prefill = prefill_model.evaluate(desc, prefill_task, prefill_plan);
    out.decode = decode_model.evaluate(desc, decode_task, decode_plan);
    out.valid = out.prefill.valid && out.decode.valid;

    // Per-decode-device bytes occupied by everything except the KV
    // cache. Colocated pools run both phases on the same silicon:
    // weights (and the FSDP gather) exist once, and the pool must fit
    // the wider of the two phases' working sets *next to* the
    // decode-capacity cache — which can OOM even when each phase fits
    // alone.
    const MemoryFootprint &pf = out.prefill.memory;
    const MemoryFootprint &df = out.decode.memory;
    double non_kv;
    if (out.disaggregated) {
        non_kv = df.total() - df.kvCacheBytes;
    } else {
        non_kv = std::max(pf.paramBytes, df.paramBytes) +
            std::max(pf.gradBytes + pf.optimizerBytes,
                     df.gradBytes + df.optimizerBytes) +
            std::max(pf.activationBytes, df.activationBytes) +
            std::max(pf.transientBytes, df.transientBytes);
        if (out.valid && non_kv + df.kvCacheBytes > df.usableCapacity)
            out.valid = false;
    }
    if (!out.valid)
        return out;

    const double batch = static_cast<double>(desc.globalBatchSize);
    const double gen = static_cast<double>(workload.generateTokens);

    // Phase rates in requests/s: one prefill iteration admits `batch`
    // prompts; one decode iteration advances `batch` sequences by one
    // token, and a request needs `gen` of those steps.
    out.prefillRate = batch / out.prefill.iterationTime;
    out.decodeRate = batch / (out.decode.iterationTime * gen);
    out.tpotSeconds = out.decode.iterationTime;

    double kv_ship_seconds = 0.0;
    if (out.disaggregated) {
        // The prompt's KV shards leave the prefill pool over its NICs
        // in parallel: per-request wire time is the per-device shard
        // over one achievable NIC rate, and the pool sustains one
        // request per aggregate-NIC transfer time.
        const double nic =
            prefill_cluster.effInterBandwidth(); // bytes/s, achievable
        const double agg_nic =
            nic * static_cast<double>(prefill_cluster.numDevices());
        kv_ship_seconds = out.kvBytesPerRequest / agg_nic;
        out.kvTransferRate = agg_nic / out.kvBytesPerRequest;
    }

    if (out.disaggregated) {
        // A pipeline: each pool works its own phase concurrently, so
        // the sustained rate is the slowest stage.
        out.requestRate = std::min(
            {out.prefillRate, out.decodeRate, out.kvTransferRate});
    } else {
        // One pool alternates phases; each request costs it prefill
        // time plus decode time, so the rates compose harmonically.
        out.requestRate =
            1.0 / (1.0 / out.prefillRate + 1.0 / out.decodeRate);
    }
    out.tokensPerSecond = out.requestRate * gen;
    out.ttftSeconds = out.prefill.iterationTime + kv_ship_seconds;
    out.e2eSeconds = out.ttftSeconds + gen * out.tpotSeconds;

    // KV-capacity ceiling on concurrency: the decode pool's headroom
    // over everything-but-KV, in per-sequence cache units. The decode
    // footprint already carries `batch / numDevices` sequences per
    // device; scale to find how many actually fit.
    if (df.kvCacheBytes > 0.0) {
        const double per_device_seqs =
            batch / static_cast<double>(decode_cluster.numDevices());
        const double kv_per_seq = df.kvCacheBytes / per_device_seqs;
        const double headroom =
            std::max(0.0, df.usableCapacity - non_kv);
        out.maxConcurrentSequences = std::floor(headroom / kv_per_seq) *
            static_cast<double>(decode_cluster.numDevices());
    }
    return out;
}

std::string
InferenceReport::summary() const
{
    std::string out;
    out += strfmt("model: %s  cluster: %s\n", modelName.c_str(),
                  clusterName.c_str());
    out += strfmt("placement: prefill=%s  decode=%s  (%s)\n",
                  prefillCluster.c_str(), decodeCluster.c_str(),
                  disaggregated ? "disaggregated" : "colocated");
    out += strfmt("workload: prompt %ld tok  generate %ld tok  "
                  "batch %ld seqs\n",
                  promptTokens, generateTokens,
                  prefill.globalBatchSize);
    if (!valid) {
        if (prefill.valid && decode.valid) {
            // Each phase fits alone; the colocated pool cannot hold
            // the wider working set next to the cache.
            out += strfmt("INVALID (colocated OOM): the pool must fit "
                          "the wider phase next to %s of KV cache in "
                          "%s usable per device — disaggregate, or "
                          "shrink the batch\n",
                          formatBytes(decode.memory.kvCacheBytes)
                              .c_str(),
                          formatBytes(decode.memory.usableCapacity)
                              .c_str());
            return out;
        }
        const PerfReport &bad = prefill.valid ? decode : prefill;
        out += strfmt("INVALID (%s phase OOM): needs %s of %s usable "
                      "per device\n",
                      prefill.valid ? "decode" : "prefill",
                      formatBytes(bad.memory.total()).c_str(),
                      formatBytes(bad.memory.usableCapacity).c_str());
        return out;
    }
    out += strfmt("throughput: %s req/s  (%s generated tokens/s)\n",
                  formatCount(requestRate).c_str(),
                  formatCount(tokensPerSecond).c_str());
    out += strfmt("rates: prefill %s req/s  decode %s req/s",
                  formatCount(prefillRate).c_str(),
                  formatCount(decodeRate).c_str());
    if (disaggregated) {
        out += strfmt("  kv-transfer %s req/s (%s/req)",
                      formatCount(kvTransferRate).c_str(),
                      formatBytes(kvBytesPerRequest).c_str());
    }
    out += "\n";
    out += strfmt("latency: ttft %s  tpot %s  e2e %s\n",
                  formatTime(ttftSeconds).c_str(),
                  formatTime(tpotSeconds).c_str(),
                  formatTime(e2eSeconds).c_str());
    out += strfmt("kv capacity: %s concurrent sequences "
                  "(decode pool, %s cache/device)\n",
                  formatCount(maxConcurrentSequences).c_str(),
                  formatBytes(decode.memory.kvCacheBytes).c_str());
    return out;
}

JsonValue
toJson(const InferenceReport &r)
{
    JsonValue out;
    out.set("model", r.modelName);
    out.set("cluster", r.clusterName);
    out.set("prefill_cluster", r.prefillCluster);
    out.set("decode_cluster", r.decodeCluster);
    out.set("disaggregated", r.disaggregated);
    out.set("valid", r.valid);
    out.set("prompt_tokens", r.promptTokens);
    out.set("generate_tokens", r.generateTokens);
    out.set("prefill", toJson(r.prefill));
    out.set("decode", toJson(r.decode));
    if (r.valid) {
        out.set("request_rate_per_sec", r.requestRate);
        out.set("tokens_per_sec", r.tokensPerSecond);
        out.set("prefill_rate_per_sec", r.prefillRate);
        out.set("decode_rate_per_sec", r.decodeRate);
        if (r.disaggregated) {
            out.set("kv_transfer_rate_per_sec", r.kvTransferRate);
            out.set("kv_bytes_per_request", r.kvBytesPerRequest);
        }
        out.set("ttft_seconds", r.ttftSeconds);
        out.set("tpot_seconds", r.tpotSeconds);
        out.set("e2e_seconds", r.e2eSeconds);
        out.set("max_concurrent_sequences", r.maxConcurrentSequences);
    }
    return out;
}

} // namespace madmax
