/**
 * @file
 * Stream builder (§IV-C "Piecing Together Computation and Comm.
 * Streams"): walks the layer graph in explicit execution order
 * (reversed for the backward pass), emits per-layer compute events and
 * the planner's collective events, and wires the dependencies that
 * make communication blocking or non-blocking:
 *
 *  - blocking collectives (embedding All2All, TP partial-sum
 *    AllReduce, FSDP parameter AllGather, MoE dispatch/combine) gate
 *    the downstream compute event;
 *  - non-blocking collectives (DDP gradient AllReduce, FSDP
 *    ReduceScatter) only gate the iteration-end barrier;
 *  - FSDP AllGathers optionally prefetch one layer ahead (Fig. 9),
 *    letting them hide behind the preceding layer's compute.
 *
 * The builder consumes pre-resolved per-layer costs: either borrowed
 * from a shared EvalContext (the sweep hot path — per-layer compute
 * times and per-strategy collective ops are computed once per
 * (cluster, model, task) and reused across every plan) or computed
 * locally from a LayerProcessor/CollectiveModel pair (the
 * self-contained form tests and one-off callers use). Both paths
 * produce the same flat EventGraph; buildGraph() allocates no
 * per-event strings — names are borrowed pointers, materialized only
 * when a caller keeps the Timeline.
 */

#ifndef MADMAX_CORE_STREAM_BUILDER_HH
#define MADMAX_CORE_STREAM_BUILDER_HH

#include <string>
#include <vector>

#include "collective/collective.hh"
#include "core/eval_context.hh"
#include "core/layer_processor.hh"
#include "trace/event_graph.hh"
#include "trace/trace_event.hh"

namespace madmax
{

/**
 * Builds the per-device event DAG for one iteration of (model, task,
 * plan) on a cluster. The produced graph is in issue order and ready
 * for OverlapSimulator::scheduleGraph().
 */
class StreamBuilder
{
  public:
    /**
     * Hot path: borrow the plan-invariant tables from @p context
     * (which must outlive this builder) and bind them to @p plan.
     */
    StreamBuilder(const EvalContext &context, const ParallelPlan &plan);

    /**
     * Self-contained form: resolve per-layer costs and collectives
     * locally from the given components (validated by the
     * LayerProcessor the caller built). @p desc must outlive the
     * builder; the other arguments are only read during construction.
     */
    StreamBuilder(const ModelDesc &desc, const TaskSpec &task,
                  const ParallelPlan &plan, const ClusterSpec &cluster,
                  const LayerProcessor &processor,
                  const CollectiveModel &collectives);

    /** Build the iteration's flat event graph. */
    EventGraph buildGraph() const;

    /** buildGraph() materialized into standalone TraceEvents (names
     *  and dependency lists copied out) for trace tooling and tests. */
    std::vector<TraceEvent> build() const;

  private:
    /** Per-layer view over either the context's tables or the locally
     *  resolved ones. */
    struct LayerView
    {
        double fwdTime = 0.0;
        double bwdTime = 0.0;
        EventCategory category = EventCategory::Other;
        const std::string *fwdName = nullptr;
        const std::string *bwdName = nullptr;
        const std::vector<ResolvedCommOp> *ops = nullptr;
    };

    struct BuildState
    {
        EventGraph graph;
        std::vector<int32_t> fwdOutput;     ///< Layer -> fwd output event.
        std::vector<int32_t> bwdOutput;     ///< Layer -> bwd output event.
        std::vector<int32_t> computeEvents; ///< Compute events, issue order.
        std::vector<int32_t> scratchDeps;   ///< Reused dep assembly buffer.
    };

    int32_t addEvent(BuildState &st, const std::string *name,
                     StreamKind stream, EventCategory category,
                     double duration, const std::vector<int32_t> &deps,
                     bool blocking, int layer_idx, bool backward) const;

    /** Dependency for an FSDP AllGather under (non-)prefetch. */
    void paramGatherDeps(const BuildState &st,
                         std::vector<int32_t> &deps) const;

    void buildForwardLayer(BuildState &st, int idx) const;
    void buildBackwardLayer(BuildState &st, int idx) const;

    const ModelDesc &desc_;
    bool needsBackward_;
    bool fsdpPrefetch_;
    std::vector<LayerView> layers_;

    /// Backing storage for the self-contained form (unused when the
    /// views borrow from an EvalContext).
    std::vector<std::string> ownedBwdNames_;
    std::vector<std::vector<ResolvedCommOp>> ownedOps_;
};

} // namespace madmax

#endif // MADMAX_CORE_STREAM_BUILDER_HH
