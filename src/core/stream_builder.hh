/**
 * @file
 * Stream builder (§IV-C "Piecing Together Computation and Comm.
 * Streams"): walks the layer graph in explicit execution order
 * (reversed for the backward pass), emits per-layer compute events and
 * the planner's collective events, and wires the dependencies that
 * make communication blocking or non-blocking:
 *
 *  - blocking collectives (embedding All2All, TP partial-sum
 *    AllReduce, FSDP parameter AllGather, MoE dispatch/combine) gate
 *    the downstream compute event;
 *  - non-blocking collectives (DDP gradient AllReduce, FSDP
 *    ReduceScatter) only gate the iteration-end barrier;
 *  - FSDP AllGathers optionally prefetch one layer ahead (Fig. 9),
 *    letting them hide behind the preceding layer's compute.
 */

#ifndef MADMAX_CORE_STREAM_BUILDER_HH
#define MADMAX_CORE_STREAM_BUILDER_HH

#include <vector>

#include "collective/collective.hh"
#include "core/layer_processor.hh"
#include "parallel/comm_planner.hh"
#include "trace/trace_event.hh"

namespace madmax
{

/**
 * Builds the per-device event DAG for one iteration of (model, task,
 * plan) on a cluster. The produced vector is in issue order and ready
 * for OverlapSimulator::schedule().
 */
class StreamBuilder
{
  public:
    StreamBuilder(const ModelDesc &desc, const TaskSpec &task,
                  const ParallelPlan &plan, const ClusterSpec &cluster,
                  const LayerProcessor &processor,
                  const CollectiveModel &collectives);

    /** Build the iteration's event list. */
    std::vector<TraceEvent> build() const;

  private:
    struct BuildState
    {
        std::vector<TraceEvent> events;
        std::vector<int> fwdOutput;      ///< Layer -> fwd output event.
        std::vector<int> bwdOutput;      ///< Layer -> bwd output event.
        std::vector<int> computeEvents;  ///< Compute events, issue order.
        int nextId = 0;
    };

    /** Map a collective kind to its breakdown category. */
    static EventCategory categoryOf(Collective kind);

    int addEvent(BuildState &st, TraceEvent ev) const;

    /** Dependency for an FSDP AllGather under (non-)prefetch. */
    std::vector<int> paramGatherDeps(const BuildState &st) const;

    void buildForwardLayer(BuildState &st, int idx) const;
    void buildBackwardLayer(BuildState &st, int idx) const;

    const ModelDesc &desc_;
    TaskSpec task_;
    ParallelPlan plan_;
    ClusterSpec cluster_;
    const LayerProcessor &processor_;
    CollectiveModel collectives_;
    CommPlanner planner_;
};

} // namespace madmax

#endif // MADMAX_CORE_STREAM_BUILDER_HH
