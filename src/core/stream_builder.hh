/**
 * @file
 * Stream builder (§IV-C "Piecing Together Computation and Comm.
 * Streams"): walks the layer graph in explicit execution order
 * (reversed for the backward pass), emits per-layer compute events and
 * the planner's collective events, and wires the dependencies that
 * make communication blocking or non-blocking:
 *
 *  - blocking collectives (embedding All2All, TP partial-sum
 *    AllReduce, FSDP parameter AllGather, MoE dispatch/combine) gate
 *    the downstream compute event;
 *  - non-blocking collectives (DDP gradient AllReduce, FSDP
 *    ReduceScatter) only gate the iteration-end barrier;
 *  - FSDP AllGathers optionally prefetch one layer ahead (Fig. 9),
 *    letting them hide behind the preceding layer's compute.
 *
 * The builder consumes pre-resolved per-layer costs: either borrowed
 * from a shared EvalContext (the sweep hot path — per-layer compute
 * times and per-strategy collective ops are computed once per
 * (cluster, model, task) and reused across every plan) or computed
 * locally from a LayerProcessor/CollectiveModel pair (the
 * self-contained form tests and one-off callers use). Both paths
 * produce the same flat EventGraph; buildGraph() allocates no
 * per-event strings — names are borrowed pointers, materialized only
 * when a caller keeps the Timeline.
 *
 * The per-layer emission logic is shared, via a compile-time emitter
 * parameter, with the symbolic segment-template generator behind
 * incremental re-evaluation (core/segment_template.hh): one
 * implementation decides event order and dependency wiring for both
 * the concrete build and the template build, so the delta path cannot
 * drift from the full path. buildSegmentSet / spliceSegmentRuns
 * / appendIterEnd below are that generator and its splicing
 * counterparts, used by EvalContext::evaluateDelta.
 */

#ifndef MADMAX_CORE_STREAM_BUILDER_HH
#define MADMAX_CORE_STREAM_BUILDER_HH

#include <string>
#include <vector>

#include "collective/collective.hh"
#include "core/eval_context.hh"
#include "core/layer_processor.hh"
#include "core/segment_template.hh"
#include "trace/event_graph.hh"
#include "trace/trace_event.hh"

namespace madmax
{

/**
 * Builds the per-device event DAG for one iteration of (model, task,
 * plan) on a cluster. The produced graph is in issue order and ready
 * for OverlapSimulator::scheduleGraph().
 */
class StreamBuilder
{
  public:
    /**
     * Hot path: borrow the plan-invariant tables from @p context
     * (which must outlive this builder) and bind them to @p plan.
     */
    StreamBuilder(const EvalContext &context, const ParallelPlan &plan);

    /**
     * Self-contained form: resolve per-layer costs and collectives
     * locally from the given components (validated by the
     * LayerProcessor the caller built). @p desc must outlive the
     * builder; the other arguments are only read during construction.
     */
    StreamBuilder(const ModelDesc &desc, const TaskSpec &task,
                  const ParallelPlan &plan, const ClusterSpec &cluster,
                  const LayerProcessor &processor,
                  const CollectiveCostModel &collectives);

    /** Build the iteration's flat event graph. */
    EventGraph buildGraph() const;

    /** buildGraph() materialized into standalone TraceEvents (names
     *  and dependency lists copied out) for trace tooling and tests. */
    std::vector<TraceEvent> build() const;

  private:
    /** Per-layer view over either the context's tables or the locally
     *  resolved ones. */
    struct LayerView
    {
        double fwdTime = 0.0;
        double bwdTime = 0.0;
        EventCategory category = EventCategory::Other;
        const std::string *fwdName = nullptr;
        const std::string *bwdName = nullptr;
        const std::vector<ResolvedCommOp> *ops = nullptr;
    };

    const ModelDesc &desc_;
    bool needsBackward_;
    bool fsdpPrefetch_;
    std::vector<LayerView> layers_;

    /// Backing storage for the self-contained form (unused when the
    /// views borrow from an EvalContext).
    std::vector<std::string> ownedBwdNames_;
    std::vector<std::vector<ResolvedCommOp>> ownedOps_;
};

/** The iteration-end barrier's trace label ("iter_end"), in stable
 *  storage so spliced graphs can borrow it like built ones do. */
const std::string &iterEndEventName();

/**
 * Append the iteration-end barrier to @p graph: a zero-duration
 * compute event depending on every event emitted so far, so
 * non-blocking gradient collectives still bound the makespan.
 */
void appendIterEnd(EventGraph &graph, bool backward);

/**
 * Generate the packed segment arena for one pass direction under one
 * (strategy-uniform ops table, prefetch) binding — the symbolic twin
 * of buildGraph()'s per-layer emission, produced by the same code
 * path. Segments land in emission order (forward layer 0..N-1,
 * backward layer N-1..0); name pointers borrow from @p costs and
 * @p perLayerOps, so the set is valid exactly as long as its owning
 * EvalContext strategy table.
 */
void buildSegmentSet(
    const ModelDesc &desc,
    const std::vector<EvalContext::LayerCosts> &costs,
    const std::vector<std::vector<ResolvedCommOp>> &perLayerOps,
    bool backwardPass, bool prefetch, SegmentSet &out);

/**
 * Splice a full iteration from packed segment arenas: @p runs holds
 * the maximal same-class segment runs in emission order — forward
 * runs covering layers 0..N-1, then (when @p withBackward) backward
 * runs covering layers N-1..0 — and the graph is rebuilt in one pass:
 * a single sizing of the node/dep arrays, one bulk contiguous node
 * copy per run, a flat symbolic-dependency resolution sweep, and the
 * iteration-end barrier, producing exactly the graph buildGraph()
 * emits for the plan the runs were resolved from. @p fwdOut /
 * @p bwdOut / @p computeIds are caller-owned state reused across
 * splices (resized/cleared here).
 */
void spliceSegmentRuns(const SpliceRun *runs, size_t numRuns,
                       int numLayers, bool withBackward,
                       EventGraph &graph, std::vector<int32_t> &fwdOut,
                       std::vector<int32_t> &bwdOut,
                       std::vector<int32_t> &computeIds);

} // namespace madmax

#endif // MADMAX_CORE_STREAM_BUILDER_HH
