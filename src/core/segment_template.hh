/**
 * @file
 * Symbolic per-layer event-segment arenas — the cache unit of
 * incremental (delta) re-evaluation.
 *
 * One iteration's event graph is a concatenation of per-layer
 * *segments* (the layer's pre-phase collectives, its compute event,
 * its post-phase collectives) in a fixed emission order: forward
 * layers 0..N-1, then backward layers N-1..0, then the iteration-end
 * barrier. Within a segment, everything — event count, durations,
 * labels, blocking flags, and the *shape* of every dependency — is
 * fully determined by (layer, the layer class's HierStrategy,
 * fsdpPrefetch, pass direction) and is independent of what strategies
 * the other classes picked. Only the absolute event ids a segment's
 * dependencies resolve to change from plan to plan.
 *
 * A SegmentSet captures one whole pass direction under one
 * (class-strategy, prefetch) binding: every layer's segment packed
 * back-to-back in emission order, with the dependencies in symbolic
 * form. The EvalContext builds a set once per (strategy, prefetch,
 * pass) and splices concrete flat EventGraphs from it for any plan
 * that maps a layer's class to that strategy. Because consecutive
 * same-class layers occupy consecutive arena ranges, a splice is a
 * handful of long contiguous copies (one per class *run*) plus a flat
 * dependency-resolution sweep — not a pointer chase across hundreds
 * of per-layer objects.
 *
 * The symbolic dependency kinds mirror the only ways StreamBuilder
 * ever wires an edge:
 *
 *  - Local:     an earlier event of the same segment (pre-comm ->
 *               compute, compute -> post-comm chains);
 *  - FwdOut:    the forward visible output of another layer (data
 *               deps, and the incoming-gradient fallback of the last
 *               layer);
 *  - BwdOut:    the backward visible output of a consumer layer
 *               (incoming gradients);
 *  - ComputeAt: the compute event of an earlier emission ordinal
 *               (FSDP parameter-gather issue anchors — the k-th most
 *               recent compute, k = 1 without prefetch, k = 2 with,
 *               Fig. 9 — folded to an absolute ordinal at pack time).
 *
 * All four resolve against state the splicer carries forward anyway
 * (per-layer output ids and the compute-event list), so instantiation
 * never inspects other sets. Whether a FwdOut/BwdOut/ComputeAt
 * dependency *exists* is decided statically at arena-build time:
 * emission order makes "already built" equivalent to an index
 * comparison (producers precede consumers), and the compute-event
 * count before a segment equals its emission ordinal.
 */

#ifndef MADMAX_CORE_SEGMENT_TEMPLATE_HH
#define MADMAX_CORE_SEGMENT_TEMPLATE_HH

#include <cstdint>
#include <vector>

#include "trace/event_graph.hh"

namespace madmax
{

/**
 * One symbolic dependency of a templated event. Every kind resolves
 * with one indexed load (or one add) against state whose entries for
 * a run are filled before its dependency sweep, so the splicer
 * resolves a run's dependencies in a single flat pass with no
 * per-segment bookkeeping.
 */
struct SymDep
{
    enum class Kind : uint8_t
    {
        Local,     ///< value = *arena* index of an earlier event of
                   ///  the same segment (resolves by adding the run's
                   ///  node shift).
        FwdOut,    ///< value = layer whose forward output gates this.
        BwdOut,    ///< value = layer whose backward output gates this.
        ComputeAt, ///< value = emission ordinal whose compute event
                   ///  gates this (FSDP gather issue anchors, folded
                   ///  from "k-th most recent" at pack time).
    };

    Kind kind = Kind::Local;
    int32_t value = 0;
};

/**
 * The cached event subgraphs every layer contributes to one pass
 * direction under one (HierStrategy, fsdpPrefetch) binding, packed
 * into two flat arenas in emission order — forward sets hold layer
 * 0..N-1, backward sets layer N-1..0, so set entry e is layer e
 * (forward) or layer N-1-e (backward).
 *
 * Events are stored as ready-made EventNodes (names borrowed from the
 * owning EvalContext's stable storage) whose depsBegin/depsCount
 * address the *symbolic* arena, which corresponds 1:1 in order with
 * the concrete dependency list a splice instantiates. Splicing a run
 * of consecutive segments is therefore one bulk node copy with a
 * run-constant depsBegin shift plus one flat dependency-resolution
 * sweep over the same index range.
 */
struct SegmentSet
{
    std::vector<EventNode> events;
    std::vector<SymDep> deps; ///< Shared symbolic-dependency arena.

    /** Per-segment arena offsets and the two distinguished events.
     *  Exactly one event per segment is its compute event; the
     *  visible output (what downstream data / gradient deps attach
     *  to) is the compute event or the last blocking post-collective
     *  chained after it. Local indices are relative to the segment's
     *  own eventBegin. */
    struct Seg
    {
        uint32_t eventBegin = 0; ///< First event in `events`.
        uint32_t depBegin = 0;   ///< First symbolic dep in `deps`.
        int32_t outputLocal = -1;  ///< Visible output, segment-local.
        int32_t computeLocal = -1; ///< Compute event, segment-local.
    };

    /** One entry per segment in emission order, plus a sentinel whose
     *  eventBegin/depBegin are the arena sizes — segment e spans
     *  [segs[e].eventBegin, segs[e+1].eventBegin). */
    std::vector<Seg> segs;
};

/**
 * One maximal run of consecutive same-class segments to splice: @p
 * count segments of @p set starting at set index @p first. Runs are
 * what EvalContext::spliceGraph hands the splicer — a plan's graph is
 * the forward runs in layer order, then (for backward tasks) the
 * backward runs in reverse layer order.
 */
struct SpliceRun
{
    const SegmentSet *set = nullptr;
    uint32_t first = 0; ///< First segment index within *set.
    uint32_t count = 0; ///< Number of consecutive segments.
    bool backward = false;
};

} // namespace madmax

#endif // MADMAX_CORE_SEGMENT_TEMPLATE_HH
