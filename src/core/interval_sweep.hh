/**
 * @file
 * Shared interval arithmetic for exposed-communication accounting.
 *
 * Both historical call sites — OverlapSimulator::schedule's aggregate
 * exposed-comm figure and PerfModel's per-category exposed breakdown —
 * used to re-derive comm-vs-compute overlaps with an O(comm x compute)
 * double loop each. They now share one linear sweep: comm intervals
 * are visited in ascending-start order and a cursor into the disjoint,
 * sorted compute-busy interval list only ever moves forward.
 *
 * Bitwise contract: for each query interval the intersection lengths
 * are accumulated in ascending cover order, exactly as the old
 * per-event loops did, so every produced double is bit-identical to
 * the quadratic implementation it replaces.
 */

#ifndef MADMAX_CORE_INTERVAL_SWEEP_HH
#define MADMAX_CORE_INTERVAL_SWEEP_HH

#include <cstddef>
#include <vector>

namespace madmax
{

/** Half-open interval [lo, hi) on the time axis. */
struct Interval
{
    double lo;
    double hi;
};

/** Merge overlapping intervals; input need not be sorted. */
std::vector<Interval> mergeIntervals(std::vector<Interval> in);

/**
 * mergeIntervals for input already sorted by ascending lo (e.g. the
 * busy intervals of a sequential stream), writing into a caller-owned
 * buffer — the allocation- and sort-free form the scheduling hot path
 * uses. Produces exactly the intervals mergeIntervals would.
 */
void mergeSortedIntervalsInto(const std::vector<Interval> &in,
                              std::vector<Interval> &out);

/**
 * The ascending-lo visit order coveredLengths uses (stable on ties),
 * written into a caller-owned buffer. Splitting the order out lets a
 * caller that sweeps the same query set against several covers (the
 * merged and raw compute intervals of one schedule) sort once.
 */
void sortedQueryOrder(const std::vector<Interval> &queries,
                      std::vector<std::size_t> &order);

/**
 * coveredLengths with the visit order precomputed and the output
 * written into a caller-owned buffer. Bit-identical to coveredLengths
 * on the same inputs. @p order must visit every query exactly once in
 * ascending-lo order — sortedQueryOrder's output, or any other
 * permutation with ascending lo (the per-query sums only depend on
 * the cover order, so ties may be visited in any order).
 */
void coveredLengthsInto(const std::vector<Interval> &cover,
                        const std::vector<Interval> &queries,
                        const std::vector<std::size_t> &order,
                        std::vector<double> &out);

/**
 * Two coveredLengthsInto sweeps fused into one pass over the shared
 * query visit order: @p outA is exactly coveredLengthsInto(coverA,
 * queries, order, outA) and @p outB exactly the coverB run, computed
 * with one traversal of @p order and one load of each query instead
 * of two. The scheduling hot path sweeps every comm interval against
 * both the merged and the raw compute-busy intervals this way.
 */
void coveredLengthsPairInto(const std::vector<Interval> &coverA,
                            const std::vector<Interval> &coverB,
                            const std::vector<Interval> &queries,
                            const std::vector<std::size_t> &order,
                            std::vector<double> &outA,
                            std::vector<double> &outB);

/**
 * Covered length of each query interval under @p cover.
 *
 * @param cover   Disjoint intervals sorted by ascending lo (e.g. the
 *                compute-busy intervals of a sequential stream, merged
 *                or not).
 * @param queries Arbitrary intervals; empty/inverted ones cover 0.
 * @return out[i] = total length of queries[i] intersected with the
 *         cover set, intersection terms added in ascending cover
 *         order.
 *
 * Complexity: O(Q log Q) for the ascending-start visit order plus a
 * forward-only cover cursor — linear in practice, where the old
 * per-query scan over the full cover list was O(Q x C) always.
 */
std::vector<double> coveredLengths(const std::vector<Interval> &cover,
                                   const std::vector<Interval> &queries);

} // namespace madmax

#endif // MADMAX_CORE_INTERVAL_SWEEP_HH
