/**
 * @file
 * Shared interval arithmetic for exposed-communication accounting.
 *
 * Both historical call sites — OverlapSimulator::schedule's aggregate
 * exposed-comm figure and PerfModel's per-category exposed breakdown —
 * used to re-derive comm-vs-compute overlaps with an O(comm x compute)
 * double loop each. They now share one linear sweep: comm intervals
 * are visited in ascending-start order and a cursor into the disjoint,
 * sorted compute-busy interval list only ever moves forward.
 *
 * Bitwise contract: for each query interval the intersection lengths
 * are accumulated in ascending cover order, exactly as the old
 * per-event loops did, so every produced double is bit-identical to
 * the quadratic implementation it replaces.
 */

#ifndef MADMAX_CORE_INTERVAL_SWEEP_HH
#define MADMAX_CORE_INTERVAL_SWEEP_HH

#include <vector>

namespace madmax
{

/** Half-open interval [lo, hi) on the time axis. */
struct Interval
{
    double lo;
    double hi;
};

/** Merge overlapping intervals; input need not be sorted. */
std::vector<Interval> mergeIntervals(std::vector<Interval> in);

/**
 * Covered length of each query interval under @p cover.
 *
 * @param cover   Disjoint intervals sorted by ascending lo (e.g. the
 *                compute-busy intervals of a sequential stream, merged
 *                or not).
 * @param queries Arbitrary intervals; empty/inverted ones cover 0.
 * @return out[i] = total length of queries[i] intersected with the
 *         cover set, intersection terms added in ascending cover
 *         order.
 *
 * Complexity: O(Q log Q) for the ascending-start visit order plus a
 * forward-only cover cursor — linear in practice, where the old
 * per-query scan over the full cover list was O(Q x C) always.
 */
std::vector<double> coveredLengths(const std::vector<Interval> &cover,
                                   const std::vector<Interval> &queries);

} // namespace madmax

#endif // MADMAX_CORE_INTERVAL_SWEEP_HH
