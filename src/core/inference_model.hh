/**
 * @file
 * LLM serving model: composes two phase-level PerfModel evaluations —
 * a compute-bound prefill pass over the prompt and a memory-bound
 * decode step against the KV cache — into continuous-batching
 * throughput and latency for a serving deployment.
 *
 * The two phases may run colocated (one device pool alternates
 * phases; rates compose harmonically because the same silicon does
 * both jobs) or disaggregated across two islands of a heterogeneous
 * cluster (DistServe/Splitwise-style; the pipeline rate is the
 * bottleneck phase, plus the KV-cache shipment from the prefill pool
 * to the decode pool over the scale-out fabric). Full semantics:
 * docs/inference.md.
 */

#ifndef MADMAX_CORE_INFERENCE_MODEL_HH
#define MADMAX_CORE_INFERENCE_MODEL_HH

#include <string>

#include "core/perf_model.hh"

namespace madmax
{

/**
 * One serving workload: requests arrive with promptTokens-long
 * prompts and stream out generateTokens tokens each. The model desc's
 * own contextLength is the prompt length; globalBatchSize is the
 * number of in-flight sequences the deployment batches.
 */
struct InferenceWorkload
{
    /**
     * Prompt length in tokens. 0 means "the model's contextLength";
     * any other value must equal it (the prompt pass is priced by the
     * model graph, which bakes the context into its attention
     * geometry — build the model at the prompt length instead).
     */
    long promptTokens = 0;

    /** Tokens generated (decoded) per request. */
    long generateTokens = 256;

    /** KV-cache bytes per element (2 = fp16/bf16 cache). */
    double kvBytesPerElement = 2.0;

    /**
     * @name Placement pins
     * Optional device-group names restricting the placement search
     * (dse/pareto_engine.hh): empty means "search every island"; a
     * name pins that phase to the named group (pin both to the same
     * group for a forced-colocated study). Resolution against the
     * cluster happens in exploreInferencePlacements(), which rejects
     * names the cluster does not define.
     */
    /// @{
    std::string prefillGroup;
    std::string decodeGroup;
    /// @}

    /** Validate against @p desc. @throws ConfigError */
    void validate(const ModelDesc &desc) const;

    /** Effective prompt length for @p desc. */
    long effectivePrompt(const ModelDesc &desc) const;
};

/**
 * The result of one serving-deployment evaluation: the two phase
 * reports plus the composed continuous-batching metrics.
 */
struct InferenceReport
{
    std::string modelName;
    std::string clusterName;     ///< The deployment's cluster.
    std::string prefillCluster;  ///< Island running prefill.
    std::string decodeCluster;   ///< Island running decode.
    bool disaggregated = false;  ///< Phases on distinct islands?

    /** False when either phase's plan does not fit in memory. */
    bool valid = false;

    PerfReport prefill; ///< Prompt pass (one in-flight batch).
    PerfReport decode;  ///< One token step (one in-flight batch).

    long promptTokens = 0;
    long generateTokens = 0;

    /** @name Sustained request rates, requests/s
     * What each stage could sustain alone; requestRate is the
     * composition (harmonic when colocated, bottleneck-min when
     * disaggregated, KV shipment included).
     */
    /// @{
    double prefillRate = 0.0;
    double decodeRate = 0.0;
    double kvTransferRate = 0.0; ///< 0 when colocated (no shipment).
    double requestRate = 0.0;
    /// @}

    /** Generated tokens per second (= requestRate x generateTokens). */
    double tokensPerSecond = 0.0;

    /** Time-to-first-token: batch prefill + KV shipment, seconds. */
    double ttftSeconds = 0.0;

    /** Time-per-output-token: one decode step, seconds. */
    double tpotSeconds = 0.0;

    /** End-to-end request latency, seconds. */
    double e2eSeconds = 0.0;

    /** KV-cache bytes one request ships prefill -> decode. */
    double kvBytesPerRequest = 0.0;

    /**
     * KV-capacity bound on concurrency: how many sequences the decode
     * pool can keep resident before the cache eats the headroom
     * (admission-control ceiling; 0 when the plan is invalid).
     */
    double maxConcurrentSequences = 0.0;

    /** Render a human-readable multi-line summary. */
    std::string summary() const;
};

/** Machine-readable rendering (CLI --format json and /v1/pareto). */
JsonValue toJson(const InferenceReport &report);

/**
 * Prices serving deployments. Stateless apart from the PerfModel
 * options applied to both phase evaluations; thread-safe.
 */
class InferenceModel
{
  public:
    explicit InferenceModel(PerfModelOptions options = {});

    /**
     * Evaluate @p workload with prefill running @p prefill_plan on
     * @p prefill_cluster and decode running @p decode_plan on
     * @p decode_cluster. Pass the same cluster twice for a colocated
     * deployment. Both clusters must be homogeneous (islands of a
     * heterogeneous fleet come from ClusterSpec::groupCluster).
     *
     * @param deployment_name Cluster name reported for the whole
     *        deployment (defaults to the prefill cluster's name).
     */
    InferenceReport evaluate(const ModelDesc &desc,
                             const InferenceWorkload &workload,
                             const ClusterSpec &prefill_cluster,
                             const ParallelPlan &prefill_plan,
                             const ClusterSpec &decode_cluster,
                             const ParallelPlan &decode_plan,
                             const std::string &deployment_name = "") const;

    const PerfModelOptions &options() const { return options_; }

    /** The prefill-phase task for @p workload on @p desc. */
    static TaskSpec prefillTask(const ModelDesc &desc,
                                const InferenceWorkload &workload);

    /** The decode-phase task (KV at prompt + generate/2, capacity at
     *  prompt + generate) for @p workload on @p desc. */
    static TaskSpec decodeTask(const ModelDesc &desc,
                               const InferenceWorkload &workload);

    /** KV bytes one request accumulates over @p tokens tokens. */
    static double kvBytesForTokens(const ModelDesc &desc, long tokens,
                                   double bytes_per_element);

  private:
    PerfModelOptions options_;
};

} // namespace madmax

#endif // MADMAX_CORE_INFERENCE_MODEL_HH
