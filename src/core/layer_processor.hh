/**
 * @file
 * Per-layer cost estimation (§IV-B "Processing Individual Model
 * Layers"). Layers are processed by their primary system requirement:
 *
 *  - Compute blocks: t = FLOPs / (peak FLOPS x compute utilization).
 *  - Embedding bags:  t = lookup bytes / (HBM BW x HBM utilization).
 *
 * Work is evenly divided across devices (the paper's even-sharding
 * assumption), so every estimate here is per device per iteration.
 */

#ifndef MADMAX_CORE_LAYER_PROCESSOR_HH
#define MADMAX_CORE_LAYER_PROCESSOR_HH

#include <optional>

#include "hw/cluster.hh"
#include "hw/utilization.hh"
#include "model/model_desc.hh"
#include "task/task.hh"
#include "trace/trace_event.hh"

namespace madmax
{

/**
 * Turns layers into per-device execution times for a given model and
 * cluster. When an SmUtilizationModel is supplied, dense-layer
 * utilization becomes a function of the per-device layer FLOPs (used
 * by the ViT validation, Fig. 8); otherwise the cluster's fixed
 * compute-utilization factor applies.
 */
class LayerProcessor
{
  public:
    LayerProcessor(const ClusterSpec &cluster, const ModelDesc &desc,
                   std::optional<SmUtilizationModel> sm_model =
                       std::nullopt);

    /** Forward-pass time of @p layer on one device, seconds. */
    double forwardTime(const Layer &layer) const;

    /**
     * Forward-pass time of @p layer on one device under @p task.
     * Identical to forwardTime(layer) for every task except
     * decode-phase inference, which swaps the whole-context forward
     * for a single-token step: per-token GEMV compute against the
     * resident weights plus attention over the accumulated KV cache,
     * floored by the HBM time to stream the weight shard and the KV
     * cache through the device (the memory-bound regime that makes
     * decode want different hardware than prefill).
     */
    double forwardTime(const Layer &layer, const TaskSpec &task) const;

    /**
     * Decode-step FLOPs of @p layer for one token of one sequence
     * attending over @p kv_length cached tokens.
     */
    double decodeFlopsPerToken(const Layer &layer, long kv_length) const;

    /**
     * Backward-pass time of @p layer on one device under @p task
     * (0 for inference; frozen layers only propagate input
     * gradients; frozen embedding bags do no backward work at all).
     */
    double backwardTime(const Layer &layer, const TaskSpec &task) const;

    /** Breakdown category for the layer's compute events. */
    EventCategory categoryOf(const Layer &layer) const;

    /** Per-device forward FLOPs of @p layer (batch-share adjusted). */
    double deviceForwardFlops(const Layer &layer) const;

  private:
    double computeTime(double flops) const;
    double lookupTime(double bytes) const;

    ClusterSpec cluster_;
    const ModelDesc &desc_;
    std::optional<SmUtilizationModel> smModel_;
};

} // namespace madmax

#endif // MADMAX_CORE_LAYER_PROCESSOR_HH
