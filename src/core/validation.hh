/**
 * @file
 * Validation utilities: the paper's workflow of checking modeled
 * execution against measured references (Table I, Figs. 7-9).
 * References are category-level time breakdowns (e.g. exported from
 * production GPU traces); the comparator reports per-segment and
 * aggregate modeling accuracy the way the paper quotes it
 * (100% minus relative error).
 */

#ifndef MADMAX_CORE_VALIDATION_HH
#define MADMAX_CORE_VALIDATION_HH

#include <map>
#include <string>

#include "core/report.hh"

namespace madmax
{

/** A measured reference for one workload-system configuration. */
struct MeasuredReference
{
    std::string name;

    /** Measured serialized seconds by category (0-valued = absent). */
    std::map<EventCategory, double> serializedBreakdown;

    /** Measured end-to-end iteration seconds (<= 0 when unknown). */
    double iterationTime = 0.0;

    /** Measured fraction of communication exposed (< 0 when unknown). */
    double exposedFraction = -1.0;
};

/** Unit of a compared quantity (formatting only). */
enum class ValidationUnit
{
    Seconds,
    Fraction,
};

/** One compared quantity. */
struct ValidationEntry
{
    std::string metric;
    double measured = 0.0;
    double modeled = 0.0;
    ValidationUnit unit = ValidationUnit::Seconds;

    /** The paper's accuracy convention: 1 - |model - meas| / meas. */
    double accuracy() const;
};

/** Comparison of a PerfReport against a MeasuredReference. */
struct ValidationReport
{
    std::vector<ValidationEntry> entries;

    /** Mean accuracy across entries (0 when empty). */
    double meanAccuracy() const;

    /** Worst-case entry accuracy (1 when empty). */
    double minAccuracy() const;

    /** Render as an aligned table. */
    std::string toString() const;
};

/**
 * Compare a modeled report against a measured reference. Only
 * quantities present in the reference are compared.
 */
ValidationReport validate(const PerfReport &report,
                          const MeasuredReference &reference);

/**
 * Model FLOPs utilization: achieved model FLOPs over aggregate peak
 * (the Fig. 8 metric). Uses 3x forward FLOPs for training tasks.
 *
 * @param training True when the iteration includes the backward pass.
 */
double modelFlopsUtilization(const PerfReport &report,
                             const ModelDesc &desc,
                             const ClusterSpec &cluster, bool training);

} // namespace madmax

#endif // MADMAX_CORE_VALIDATION_HH
