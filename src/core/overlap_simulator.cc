#include "core/overlap_simulator.hh"

#include <algorithm>
#include <unordered_map>

#include "core/interval_sweep.hh"
#include "util/logging.hh"
#include "util/strfmt.hh"

namespace madmax
{

FlatSchedule
OverlapSimulator::scheduleGraph(const EventGraph &graph) const
{
    FlatSchedule sched;
    SweepScratch scratch;
    scheduleGraphInto(graph, sched, scratch);
    return sched;
}

void
OverlapSimulator::scheduleGraphInto(const EventGraph &graph,
                                    FlatSchedule &sched,
                                    SweepScratch &scratch) const
{
    const size_t n = graph.nodes.size();
    sched.start.resize(n);
    sched.finish.resize(n);
    sched.rawOverlap.assign(n, 0.0);
    sched.computeBusy = 0.0;
    sched.commBusy = 0.0;
    sched.exposedComm = 0.0;

    // Stream cursors: [0] compute, [1] blocking communication, [2] the
    // background channel non-blocking collectives (gradient AllReduce
    // / ReduceScatter) ride, as NCCL does, so they do not head-of-line
    // block later blocking collectives.
    double cursors[3] = {0.0, 0.0, 0.0};

    // The exposed-communication sweep's inputs are collected inline:
    // the compute stream's busy intervals (sequential stream, so they
    // come out disjoint and ascending — no sort needed) and the
    // nonzero comm intervals ("queries"), remembering each query's
    // channel so the ascending-lo visit order below comes from a
    // linear two-way merge instead of a sort (per channel, starts are
    // already non-decreasing).
    std::vector<Interval> &compute_busy = scratch.computeBusy;
    std::vector<Interval> &queries = scratch.queries;
    std::vector<size_t> &query_node = scratch.queryNode;
    std::vector<size_t> &main_chan = scratch.mainChan;
    std::vector<size_t> &back_chan = scratch.backChan;
    compute_busy.clear();
    queries.clear();
    query_node.clear();
    main_chan.clear();
    back_chan.clear();

    for (size_t i = 0; i < n; ++i) {
        const EventNode &node = graph.nodes[i];
        double ready;
        if (node.depsCount == static_cast<uint32_t>(i)) {
            // A node depending on every earlier node — the iteration-
            // end barrier (dependencies are distinct earlier nodes, so
            // depsCount == i can only mean deps == {0..i-1}). Its
            // ready time is the max finish so far, and finishes are
            // monotone per stream, so that is the max cursor — the
            // same double as the full dependency scan, without
            // walking a graph-sized list.
            ready = std::max(cursors[0],
                             std::max(cursors[1], cursors[2]));
        } else {
            const int32_t *deps = graph.depsOf(node);
            // max over the dependency finishes; max is exact, so the
            // two-accumulator unroll produces the same double as the
            // sequential loop.
            double r0 = 0.0;
            double r1 = 0.0;
            uint32_t d = 0;
            for (; d + 1 < node.depsCount; d += 2) {
                r0 = std::max(r0, sched.finish[deps[d]]);
                r1 = std::max(r1, sched.finish[deps[d + 1]]);
            }
            if (d < node.depsCount)
                r0 = std::max(r0, sched.finish[deps[d]]);
            ready = std::max(r0, r1);
        }

        const bool is_compute = node.stream == StreamKind::Compute;
        const size_t chan = is_compute
            ? 0
            : (backgroundChannel_ && !node.blocking ? 2 : 1);
        const double start = std::max(cursors[chan], ready);
        const double finish = start + node.duration;
        cursors[chan] = finish;
        sched.start[i] = start;
        sched.finish[i] = finish;

        if (is_compute) {
            sched.computeBusy += node.duration;
            if (finish > start)
                compute_busy.push_back(Interval{start, finish});
        } else {
            sched.commBusy += node.duration;
            if (finish > start) {
                (chan == 2 ? back_chan : main_chan)
                    .push_back(queries.size());
                queries.push_back(Interval{start, finish});
                query_node.push_back(i);
            }
        }
    }
    // Finishes are monotone per stream, so each cursor ends at its
    // stream's max finish and the makespan is the max cursor — the
    // same double the old per-node max produced.
    sched.makespan =
        std::max(cursors[0], std::max(cursors[1], cursors[2]));

    // Two historical accountings, both preserved bit-for-bit: the
    // aggregate used merged compute intervals, the per-category
    // breakdown (consuming rawOverlap downstream) used the raw
    // per-event ones. See FlatSchedule::rawOverlap. The sequential
    // compute stream's intervals are already ascending, so the merge
    // needs no sort, and both coverage sweeps share one query order.
    //
    // The shared order is the merge of the two channels' (already
    // ascending) query sequences; ties break toward the smaller query
    // index, which reproduces sortedQueryOrder's stable sort exactly
    // (and coveredLengthsInto's per-query sums only need ascending lo
    // in the first place).
    mergeSortedIntervalsInto(compute_busy, scratch.merged);
    std::vector<size_t> &order = scratch.order;
    order.clear();
    {
        size_t a = 0;
        size_t b = 0;
        while (a < main_chan.size() && b < back_chan.size()) {
            const size_t qa = main_chan[a];
            const size_t qb = back_chan[b];
            if (queries[qa].lo < queries[qb].lo ||
                (queries[qa].lo == queries[qb].lo && qa < qb)) {
                order.push_back(qa);
                ++a;
            } else {
                order.push_back(qb);
                ++b;
            }
        }
        order.insert(order.end(), main_chan.begin() + a,
                     main_chan.end());
        order.insert(order.end(), back_chan.begin() + b,
                     back_chan.end());
    }
    coveredLengthsPairInto(scratch.merged, compute_busy, queries,
                           scratch.order, scratch.mergedCov,
                           scratch.rawCov);

    for (size_t q = 0; q < queries.size(); ++q) {
        sched.exposedComm +=
            (queries[q].hi - queries[q].lo) - scratch.mergedCov[q];
        sched.rawOverlap[query_node[q]] = scratch.rawCov[q];
    }
}

Timeline
OverlapSimulator::schedule(const std::vector<TraceEvent> &events) const
{
    // Convert to the flat form, validating the id contract the
    // graph-building hot path guarantees by construction.
    EventGraph graph;
    graph.nodes.reserve(events.size());
    std::unordered_map<int, int32_t> index_by_id;
    index_by_id.reserve(events.size());

    for (const TraceEvent &ev : events) {
        if (index_by_id.count(ev.id))
            panic(strfmt("OverlapSimulator: duplicate event id %d", ev.id));

        EventNode node;
        node.name = &ev.name;
        node.stream = ev.stream;
        node.category = ev.category;
        node.blocking = ev.blocking;
        node.backward = ev.backward;
        node.layerIdx = ev.layerIdx;
        node.duration = ev.duration;
        node.depsBegin = static_cast<uint32_t>(graph.deps.size());
        node.depsCount = static_cast<uint32_t>(ev.deps.size());
        for (int dep : ev.deps) {
            auto it = index_by_id.find(dep);
            if (it == index_by_id.end()) {
                panic(strfmt("OverlapSimulator: event %d depends on "
                             "unscheduled event %d",
                             ev.id, dep));
            }
            graph.deps.push_back(it->second);
        }
        index_by_id.emplace(ev.id,
                            static_cast<int32_t>(graph.nodes.size()));
        graph.nodes.push_back(node);
    }

    FlatSchedule sched = scheduleGraph(graph);

    Timeline tl;
    tl.events.reserve(events.size());
    for (size_t i = 0; i < events.size(); ++i) {
        tl.events.push_back(
            ScheduledEvent{events[i], sched.start[i], sched.finish[i]});
    }
    tl.makespan = sched.makespan;
    tl.computeBusy = sched.computeBusy;
    tl.commBusy = sched.commBusy;
    tl.exposedComm = sched.exposedComm;
    return tl;
}

} // namespace madmax
