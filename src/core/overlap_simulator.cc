#include "core/overlap_simulator.hh"

#include <algorithm>
#include <unordered_map>

#include "util/logging.hh"
#include "util/strfmt.hh"

namespace madmax
{

namespace
{

/** Closed interval [lo, hi) on the time axis. */
struct Interval
{
    double lo;
    double hi;
};

/** Merge overlapping intervals; input need not be sorted. */
std::vector<Interval>
mergeIntervals(std::vector<Interval> in)
{
    if (in.empty())
        return in;
    std::sort(in.begin(), in.end(),
              [](const Interval &a, const Interval &b) {
                  return a.lo < b.lo;
              });
    std::vector<Interval> out;
    out.push_back(in.front());
    for (size_t i = 1; i < in.size(); ++i) {
        if (in[i].lo <= out.back().hi)
            out.back().hi = std::max(out.back().hi, in[i].hi);
        else
            out.push_back(in[i]);
    }
    return out;
}

/** Length of [lo, hi) covered by the merged interval set. */
double
coveredLength(const std::vector<Interval> &merged, double lo, double hi)
{
    double covered = 0.0;
    for (const Interval &iv : merged) {
        double a = std::max(lo, iv.lo);
        double b = std::min(hi, iv.hi);
        if (b > a)
            covered += b - a;
    }
    return covered;
}

} // namespace

Timeline
OverlapSimulator::schedule(const std::vector<TraceEvent> &events) const
{
    Timeline tl;
    tl.events.reserve(events.size());

    std::unordered_map<int, double> finish_by_id;
    finish_by_id.reserve(events.size());
    double compute_cursor = 0.0;
    double comm_cursor = 0.0;
    // Non-blocking collectives (gradient AllReduce / ReduceScatter)
    // ride a separate background channel, as NCCL does, so they do
    // not head-of-line block later blocking collectives.
    double background_cursor = 0.0;

    for (const TraceEvent &ev : events) {
        if (finish_by_id.count(ev.id))
            panic(strfmt("OverlapSimulator: duplicate event id %d", ev.id));

        double ready = 0.0;
        for (int dep : ev.deps) {
            auto it = finish_by_id.find(dep);
            if (it == finish_by_id.end()) {
                panic(strfmt("OverlapSimulator: event %d depends on "
                             "unscheduled event %d",
                             ev.id, dep));
            }
            ready = std::max(ready, it->second);
        }

        bool background = backgroundChannel_ && !ev.blocking &&
            ev.stream == StreamKind::Communication;
        double &cursor = ev.stream == StreamKind::Compute
            ? compute_cursor
            : (background ? background_cursor : comm_cursor);
        double start = std::max(cursor, ready);
        double finish = start + ev.duration;
        cursor = finish;
        finish_by_id.emplace(ev.id, finish);
        tl.events.push_back(ScheduledEvent{ev, start, finish});
        tl.makespan = std::max(tl.makespan, finish);

        if (ev.stream == StreamKind::Compute)
            tl.computeBusy += ev.duration;
        else
            tl.commBusy += ev.duration;
    }

    // Exposed communication: comm busy time not covered by concurrent
    // compute execution.
    std::vector<Interval> compute_busy;
    for (const ScheduledEvent &se : tl.events) {
        if (se.event.stream == StreamKind::Compute &&
            se.finish > se.start) {
            compute_busy.push_back(Interval{se.start, se.finish});
        }
    }
    std::vector<Interval> merged = mergeIntervals(std::move(compute_busy));
    for (const ScheduledEvent &se : tl.events) {
        if (se.event.stream != StreamKind::Communication ||
            se.finish <= se.start) {
            continue;
        }
        double overlap = coveredLength(merged, se.start, se.finish);
        tl.exposedComm += (se.finish - se.start) - overlap;
    }
    return tl;
}

} // namespace madmax
