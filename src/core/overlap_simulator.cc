#include "core/overlap_simulator.hh"

#include <algorithm>
#include <unordered_map>

#include "core/interval_sweep.hh"
#include "util/logging.hh"
#include "util/strfmt.hh"

namespace madmax
{

FlatSchedule
OverlapSimulator::scheduleGraph(const EventGraph &graph) const
{
    const size_t n = graph.nodes.size();
    FlatSchedule sched;
    sched.start.resize(n);
    sched.finish.resize(n);
    sched.rawOverlap.assign(n, 0.0);

    double compute_cursor = 0.0;
    double comm_cursor = 0.0;
    // Non-blocking collectives (gradient AllReduce / ReduceScatter)
    // ride a separate background channel, as NCCL does, so they do
    // not head-of-line block later blocking collectives.
    double background_cursor = 0.0;

    for (size_t i = 0; i < n; ++i) {
        const EventNode &node = graph.nodes[i];
        double ready = 0.0;
        const int32_t *deps = graph.depsOf(node);
        for (uint32_t d = 0; d < node.depsCount; ++d)
            ready = std::max(ready, sched.finish[deps[d]]);

        bool background = backgroundChannel_ && !node.blocking &&
            node.stream == StreamKind::Communication;
        double &cursor = node.stream == StreamKind::Compute
            ? compute_cursor
            : (background ? background_cursor : comm_cursor);
        double start = std::max(cursor, ready);
        double finish = start + node.duration;
        cursor = finish;
        sched.start[i] = start;
        sched.finish[i] = finish;
        sched.makespan = std::max(sched.makespan, finish);

        if (node.stream == StreamKind::Compute)
            sched.computeBusy += node.duration;
        else
            sched.commBusy += node.duration;
    }

    // Exposed communication: comm busy time not covered by concurrent
    // compute execution. The compute stream is sequential, so its
    // busy intervals are disjoint and already in ascending order; one
    // linear sweep (ascending comm starts, forward-only compute
    // cursor) replaces the old per-event scan over every compute
    // interval.
    std::vector<Interval> compute_busy;
    for (size_t i = 0; i < n; ++i) {
        if (graph.nodes[i].stream == StreamKind::Compute &&
            sched.finish[i] > sched.start[i]) {
            compute_busy.push_back(
                Interval{sched.start[i], sched.finish[i]});
        }
    }

    std::vector<Interval> queries;
    std::vector<size_t> query_node;
    for (size_t i = 0; i < n; ++i) {
        if (graph.nodes[i].stream != StreamKind::Communication ||
            sched.finish[i] <= sched.start[i]) {
            continue;
        }
        queries.push_back(Interval{sched.start[i], sched.finish[i]});
        query_node.push_back(i);
    }

    // Two historical accountings, both preserved bit-for-bit: the
    // aggregate used merged compute intervals, the per-category
    // breakdown (consuming rawOverlap downstream) used the raw
    // per-event ones. See FlatSchedule::rawOverlap.
    std::vector<double> merged_cov =
        coveredLengths(mergeIntervals(compute_busy), queries);
    std::vector<double> raw_cov = coveredLengths(compute_busy, queries);

    for (size_t q = 0; q < queries.size(); ++q) {
        sched.exposedComm +=
            (queries[q].hi - queries[q].lo) - merged_cov[q];
        sched.rawOverlap[query_node[q]] = raw_cov[q];
    }
    return sched;
}

Timeline
OverlapSimulator::schedule(const std::vector<TraceEvent> &events) const
{
    // Convert to the flat form, validating the id contract the
    // graph-building hot path guarantees by construction.
    EventGraph graph;
    graph.nodes.reserve(events.size());
    std::unordered_map<int, int32_t> index_by_id;
    index_by_id.reserve(events.size());

    for (const TraceEvent &ev : events) {
        if (index_by_id.count(ev.id))
            panic(strfmt("OverlapSimulator: duplicate event id %d", ev.id));

        EventNode node;
        node.name = &ev.name;
        node.stream = ev.stream;
        node.category = ev.category;
        node.blocking = ev.blocking;
        node.backward = ev.backward;
        node.layerIdx = ev.layerIdx;
        node.duration = ev.duration;
        node.depsBegin = static_cast<uint32_t>(graph.deps.size());
        node.depsCount = static_cast<uint32_t>(ev.deps.size());
        for (int dep : ev.deps) {
            auto it = index_by_id.find(dep);
            if (it == index_by_id.end()) {
                panic(strfmt("OverlapSimulator: event %d depends on "
                             "unscheduled event %d",
                             ev.id, dep));
            }
            graph.deps.push_back(it->second);
        }
        index_by_id.emplace(ev.id,
                            static_cast<int32_t>(graph.nodes.size()));
        graph.nodes.push_back(node);
    }

    FlatSchedule sched = scheduleGraph(graph);

    Timeline tl;
    tl.events.reserve(events.size());
    for (size_t i = 0; i < events.size(); ++i) {
        tl.events.push_back(
            ScheduledEvent{events[i], sched.start[i], sched.finish[i]});
    }
    tl.makespan = sched.makespan;
    tl.computeBusy = sched.computeBusy;
    tl.commBusy = sched.commBusy;
    tl.exposedComm = sched.exposedComm;
    return tl;
}

} // namespace madmax
