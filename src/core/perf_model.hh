/**
 * @file
 * The MAD-Max performance model facade (§IV): takes a model
 * architecture, task, parallelization plan and distributed-system
 * description; generates per-device compute and communication
 * streams; schedules them; and reports throughput, exposed
 * communication and execution breakdowns.
 */

#ifndef MADMAX_CORE_PERF_MODEL_HH
#define MADMAX_CORE_PERF_MODEL_HH

#include <optional>
#include <string>

#include "collective/collective.hh"
#include "core/memory_model.hh"
#include "core/report.hh"
#include "hw/cluster.hh"
#include "hw/utilization.hh"
#include "model/model_desc.hh"
#include "parallel/strategy.hh"
#include "task/task.hh"

namespace madmax
{

/** Knobs for a PerfModel instance. */
struct PerfModelOptions
{
    /** Batch-dependent SM utilization (Fig. 8); fixed factor if unset. */
    std::optional<SmUtilizationModel> smModel;

    /** Memory-model configuration. */
    MemoryModelOptions memory;

    /** Collective launch-latency constants. */
    CollectiveLatency latency;

    /** AllReduce algorithm (ring / tree / NCCL-style auto). */
    AllReduceAlgorithm allReduceAlgorithm = AllReduceAlgorithm::Auto;

    /**
     * Collective cost-model registry name ("flat", "topology", or a
     * custom registration). Empty picks automatically: "topology" when
     * the cluster carries a TopologySpec, else the flat default — see
     * makeCollectiveModelFor().
     */
    std::string collectiveModel;

    /** Schedule non-blocking collectives on a separate channel
     *  (disable only for the ablation study). */
    bool backgroundCommChannel = true;

    /** Retain the full scheduled Timeline in reports. */
    bool keepTimeline = true;

    /** Evaluate plans even when they exceed device memory (the
     *  paper's "without memory constraints" bars in Fig. 10). */
    bool ignoreMemory = false;
};

/**
 * An immutable performance model bound to one cluster. Thread-safe
 * for concurrent evaluate() calls.
 *
 * evaluate() prices a single point and internally builds a throwaway
 * EvalContext (core/eval_context.hh). Sweeps evaluating many plans
 * against one (model, task) should go through EvalEngine::evaluateAll
 * or hold an EvalContext directly: the plan-invariant work
 * (validation, per-layer compute times, resolved collectives) is then
 * paid once instead of per plan.
 */
class PerfModel
{
  public:
    explicit PerfModel(ClusterSpec cluster, PerfModelOptions options = {});

    /**
     * Evaluate one (model, task, plan) mapping.
     *
     * An OOM plan yields a report with valid == false and the memory
     * verdict filled in; timing fields are still populated when
     * options.ignoreMemory is set (hypothetical-hardware analysis).
     */
    PerfReport evaluate(const ModelDesc &desc, const TaskSpec &task,
                        const ParallelPlan &plan) const;

    /**
     * Memory-only evaluation: fills the identity fields and the
     * per-device memory verdict without building streams or running
     * the overlap simulator. For a plan that does not fit (and with
     * ignoreMemory unset) the result is identical to evaluate() —
     * this is the cheap feasibility pre-pass the EvalEngine uses to
     * prune OOM plans before they reach the thread pool.
     */
    PerfReport verdict(const ModelDesc &desc, const TaskSpec &task,
                       const ParallelPlan &plan) const;

    /**
     * verdict() with the task's display name precomputed — the
     * EvalContext hot path calls this with its cached task.toString()
     * so sweeps do not re-render the name per plan. @p task_name must
     * equal task.toString().
     */
    PerfReport verdict(const ModelDesc &desc, const TaskSpec &task,
                       const ParallelPlan &plan,
                       const std::string &task_name) const;

    const ClusterSpec &cluster() const { return cluster_; }
    const PerfModelOptions &options() const { return options_; }

    /** Copy of this model bound to a different cluster. */
    PerfModel withCluster(ClusterSpec cluster) const;

  private:
    ClusterSpec cluster_;
    PerfModelOptions options_;
    MemoryModel memoryModel_;
};

} // namespace madmax

#endif // MADMAX_CORE_PERF_MODEL_HH
