#include "core/interval_sweep.hh"

#include <algorithm>
#include <numeric>

namespace madmax
{

std::vector<Interval>
mergeIntervals(std::vector<Interval> in)
{
    std::sort(in.begin(), in.end(),
              [](const Interval &a, const Interval &b) {
                  return a.lo < b.lo;
              });
    std::vector<Interval> out;
    mergeSortedIntervalsInto(in, out);
    return out;
}

void
mergeSortedIntervalsInto(const std::vector<Interval> &in,
                         std::vector<Interval> &out)
{
    out.clear();
    if (in.empty())
        return;
    out.push_back(in.front());
    for (size_t i = 1; i < in.size(); ++i) {
        if (in[i].lo <= out.back().hi)
            out.back().hi = std::max(out.back().hi, in[i].hi);
        else
            out.push_back(in[i]);
    }
}

void
sortedQueryOrder(const std::vector<Interval> &queries,
                 std::vector<size_t> &order)
{
    // Visit queries in ascending lo so the cover cursor never backs
    // up (stable on ties to keep the visit order deterministic; the
    // per-query sums are order-independent across queries anyway).
    order.resize(queries.size());
    std::iota(order.begin(), order.end(), size_t{0});
    std::stable_sort(order.begin(), order.end(),
                     [&queries](size_t a, size_t b) {
                         return queries[a].lo < queries[b].lo;
                     });
}

std::vector<double>
coveredLengths(const std::vector<Interval> &cover,
               const std::vector<Interval> &queries)
{
    std::vector<size_t> order;
    sortedQueryOrder(queries, order);
    std::vector<double> out;
    coveredLengthsInto(cover, queries, order, out);
    return out;
}

void
coveredLengthsPairInto(const std::vector<Interval> &coverA,
                       const std::vector<Interval> &coverB,
                       const std::vector<Interval> &queries,
                       const std::vector<size_t> &order,
                       std::vector<double> &outA,
                       std::vector<double> &outB)
{
    // Per cover this is exactly coveredLengthsInto: same cursor, same
    // intersection terms in the same ascending cover order, so each
    // output double is bit-identical to the single-cover sweep.
    outA.resize(queries.size());
    outB.resize(queries.size());
    size_t baseA = 0;
    size_t baseB = 0;
    for (size_t qi : order) {
        const Interval &q = queries[qi];
        if (q.hi <= q.lo) {
            outA[qi] = 0.0;
            outB[qi] = 0.0;
            continue;
        }
        while (baseA < coverA.size() && coverA[baseA].hi <= q.lo)
            ++baseA;
        double coveredA = 0.0;
        for (size_t j = baseA;
             j < coverA.size() && coverA[j].lo < q.hi; ++j) {
            double a = std::max(q.lo, coverA[j].lo);
            double b = std::min(q.hi, coverA[j].hi);
            if (b > a)
                coveredA += b - a;
        }
        outA[qi] = coveredA;
        while (baseB < coverB.size() && coverB[baseB].hi <= q.lo)
            ++baseB;
        double coveredB = 0.0;
        for (size_t j = baseB;
             j < coverB.size() && coverB[j].lo < q.hi; ++j) {
            double a = std::max(q.lo, coverB[j].lo);
            double b = std::min(q.hi, coverB[j].hi);
            if (b > a)
                coveredB += b - a;
        }
        outB[qi] = coveredB;
    }
}

void
coveredLengthsInto(const std::vector<Interval> &cover,
                   const std::vector<Interval> &queries,
                   const std::vector<size_t> &order,
                   std::vector<double> &out)
{
    // @p order visits every query exactly once, so each slot gets one
    // unconditional store and the upfront zero-fill is skipped.
    out.resize(queries.size());
    if (cover.empty() || queries.empty()) {
        std::fill(out.begin(), out.end(), 0.0);
        return;
    }

    size_t base = 0;
    for (size_t qi : order) {
        const Interval &q = queries[qi];
        if (q.hi <= q.lo) {
            out[qi] = 0.0;
            continue;
        }
        while (base < cover.size() && cover[base].hi <= q.lo)
            ++base;
        double covered = 0.0;
        for (size_t j = base;
             j < cover.size() && cover[j].lo < q.hi; ++j) {
            double a = std::max(q.lo, cover[j].lo);
            double b = std::min(q.hi, cover[j].hi);
            if (b > a)
                covered += b - a;
        }
        out[qi] = covered;
    }
}

} // namespace madmax
