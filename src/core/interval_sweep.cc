#include "core/interval_sweep.hh"

#include <algorithm>
#include <numeric>

namespace madmax
{

std::vector<Interval>
mergeIntervals(std::vector<Interval> in)
{
    if (in.empty())
        return in;
    std::sort(in.begin(), in.end(),
              [](const Interval &a, const Interval &b) {
                  return a.lo < b.lo;
              });
    std::vector<Interval> out;
    out.push_back(in.front());
    for (size_t i = 1; i < in.size(); ++i) {
        if (in[i].lo <= out.back().hi)
            out.back().hi = std::max(out.back().hi, in[i].hi);
        else
            out.push_back(in[i]);
    }
    return out;
}

std::vector<double>
coveredLengths(const std::vector<Interval> &cover,
               const std::vector<Interval> &queries)
{
    std::vector<double> out(queries.size(), 0.0);
    if (cover.empty() || queries.empty())
        return out;

    // Visit queries in ascending lo so the cover cursor never backs
    // up (stable on ties to keep the visit order deterministic; the
    // per-query sums are order-independent across queries anyway).
    std::vector<size_t> order(queries.size());
    std::iota(order.begin(), order.end(), size_t{0});
    std::stable_sort(order.begin(), order.end(),
                     [&queries](size_t a, size_t b) {
                         return queries[a].lo < queries[b].lo;
                     });

    size_t base = 0;
    for (size_t qi : order) {
        const Interval &q = queries[qi];
        if (q.hi <= q.lo)
            continue;
        while (base < cover.size() && cover[base].hi <= q.lo)
            ++base;
        double covered = 0.0;
        for (size_t j = base;
             j < cover.size() && cover[j].lo < q.hi; ++j) {
            double a = std::max(q.lo, cover[j].lo);
            double b = std::min(q.hi, cover[j].hi);
            if (b > a)
                covered += b - a;
        }
        out[qi] = covered;
    }
    return out;
}

} // namespace madmax
