#include "core/eval_context.hh"

#include <cstring>

#include "core/layer_processor.hh"
#include "core/overlap_simulator.hh"
#include "core/stream_builder.hh"
#include "util/logging.hh"

namespace madmax
{

EventCategory
commCategoryOf(Collective kind)
{
    switch (kind) {
      case Collective::AllReduce: return EventCategory::AllReduce;
      case Collective::AllGather: return EventCategory::AllGather;
      case Collective::ReduceScatter: return EventCategory::ReduceScatter;
      case Collective::All2All: return EventCategory::All2All;
      case Collective::Broadcast: return EventCategory::Other;
    }
    panic("commCategoryOf: unknown Collective");
}

EvalContext::EvalContext(const PerfModel &model, const ModelDesc &desc,
                         const TaskSpec &task)
    : model_(&model), desc_(&desc), task_(&task),
      taskName_(task.toString()),
      collectives_(model.cluster(), model.options().latency,
                   model.options().allReduceAlgorithm)
{
    // LayerProcessor validates the cluster and the model once; every
    // plan evaluated through this context reuses that validation.
    LayerProcessor processor(cluster(), desc, options().smModel);

    const int num_layers = desc.graph.numLayers();
    costs_.resize(static_cast<size_t>(num_layers));
    for (int i = 0; i < num_layers; ++i) {
        const Layer &layer = desc.graph.layer(i);
        LayerCosts &lc = costs_[static_cast<size_t>(i)];
        lc.fwdTime = processor.forwardTime(layer);
        lc.bwdTime = processor.backwardTime(layer, task);
        lc.category = processor.categoryOf(layer);
        lc.fwdName = &layer.name();
        lc.bwdName = layer.name() + "'";
    }
}

size_t
EvalContext::encode(HierStrategy hs)
{
    // The 5x5 table indexing assumes exactly five Strategy values; a
    // new enumerator must grow the strategies_ array alongside this
    // multiplier or encode() writes past its end.
    static_assert(static_cast<size_t>(Strategy::MP) == 4,
                  "strategy table encoding assumes 5 Strategy values");
    return static_cast<size_t>(hs.intra) * 5 +
        static_cast<size_t>(hs.inter);
}

double
EvalContext::collectiveTime(Collective kind, CommScope scope,
                            double bytes) const
{
    uint64_t bits;
    static_assert(sizeof(bits) == sizeof(bytes), "double is 64-bit");
    std::memcpy(&bits, &bytes, sizeof(bits));
    auto key = std::make_tuple(static_cast<int>(kind),
                               static_cast<int>(scope), bits);
    auto it = collectiveTable_.find(key);
    if (it != collectiveTable_.end())
        return it->second;
    double t = collectives_.time(kind, scope, bytes);
    collectiveTable_.emplace(key, t);
    return t;
}

size_t
EvalContext::collectiveTableSize() const
{
    std::lock_guard<std::mutex> lock(buildMutex_);
    return collectiveTable_.size();
}

void
EvalContext::buildStrategyTable(size_t slot, HierStrategy hs) const
{
    std::lock_guard<std::mutex> lock(buildMutex_);
    StrategyTable &table = strategies_[slot];
    if (table.ready.load(std::memory_order_acquire))
        return; // Another thread built it while we waited.

    // One planner pass covers every layer: a plan that maps all
    // classes to @p hs makes strategyFor(cls) == hs for each layer, so
    // planLayer yields exactly what any real plan assigning @p hs to
    // that layer's class would get.
    ParallelPlan uniform;
    for (LayerClass cls : {LayerClass::SparseEmbedding,
                           LayerClass::DenseEmbedding,
                           LayerClass::BaseDense, LayerClass::Transformer,
                           LayerClass::MoE}) {
        uniform.set(cls, hs);
    }
    CommPlanner planner(*desc_, *task_, uniform, cluster());

    const int num_layers = desc_->graph.numLayers();
    std::vector<std::vector<ResolvedCommOp>> per_layer(
        static_cast<size_t>(num_layers));
    for (int i = 0; i < num_layers; ++i) {
        std::vector<ResolvedCommOp> resolved;
        for (CommOp &op : planner.planLayer(i)) {
            double dur = collectiveTime(op.kind, op.scope, op.bytes);
            if (dur <= 0.0)
                continue;
            resolved.push_back(ResolvedCommOp{
                op.phase, op.position, op.kind, commCategoryOf(op.kind),
                op.blocking, dur, std::move(op.tag)});
        }
        per_layer[static_cast<size_t>(i)] = std::move(resolved);
    }
    table.perLayer = std::move(per_layer);
    table.ready.store(true, std::memory_order_release);
}

const std::vector<ResolvedCommOp> &
EvalContext::plannedOps(int idx, HierStrategy hs) const
{
    const size_t slot = encode(hs);
    const StrategyTable &table = strategies_[slot];
    if (!table.ready.load(std::memory_order_acquire))
        buildStrategyTable(slot, hs);
    return table.perLayer[static_cast<size_t>(idx)];
}

PerfReport
EvalContext::verdict(const ParallelPlan &plan) const
{
    return model_->verdict(*desc_, *task_, plan, taskName_);
}

PerfReport
EvalContext::evaluate(const ParallelPlan &plan) const
{
    PerfReport report = verdict(plan);
    if (!report.memory.fits() && !options().ignoreMemory)
        return report;

    StreamBuilder builder(*this, plan);
    EventGraph graph = builder.buildGraph();
    OverlapSimulator simulator(options().backgroundCommChannel);
    FlatSchedule sched = simulator.scheduleGraph(graph);

    report.iterationTime = sched.makespan;
    report.serializedTime = sched.computeBusy + sched.commBusy;
    report.computeTime = sched.computeBusy;
    report.commTime = sched.commBusy;
    report.exposedCommTime = sched.exposedComm;

    const size_t n = graph.nodes.size();
    for (size_t i = 0; i < n; ++i) {
        const EventNode &node = graph.nodes[i];
        if (node.duration <= 0.0)
            continue;
        report.serializedBreakdown[node.category] += node.duration;
    }
    // Exposed time per communication category, from the same sweep
    // that produced the aggregate (sched.rawOverlap) — the second
    // O(comm x compute) pass this loop used to be is gone.
    for (size_t i = 0; i < n; ++i) {
        const EventNode &node = graph.nodes[i];
        if (node.stream != StreamKind::Communication ||
            sched.finish[i] <= sched.start[i]) {
            continue;
        }
        report.exposedBreakdown[node.category] +=
            (sched.finish[i] - sched.start[i]) - sched.rawOverlap[i];
    }

    if (options().keepTimeline) {
        Timeline tl;
        tl.events.reserve(n);
        for (size_t i = 0; i < n; ++i) {
            tl.events.push_back(ScheduledEvent{
                graph.materialize(i), sched.start[i], sched.finish[i]});
        }
        tl.makespan = sched.makespan;
        tl.computeBusy = sched.computeBusy;
        tl.commBusy = sched.commBusy;
        tl.exposedComm = sched.exposedComm;
        report.timeline = std::move(tl);
    }
    return report;
}

} // namespace madmax
