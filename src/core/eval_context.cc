#include "core/eval_context.hh"

#include <cstring>

#include "core/layer_processor.hh"
#include "core/overlap_simulator.hh"
#include "core/stream_builder.hh"
#include "util/logging.hh"

namespace madmax
{

EventCategory
commCategoryOf(Collective kind)
{
    switch (kind) {
      case Collective::AllReduce: return EventCategory::AllReduce;
      case Collective::AllGather: return EventCategory::AllGather;
      case Collective::ReduceScatter: return EventCategory::ReduceScatter;
      case Collective::All2All: return EventCategory::All2All;
      case Collective::Broadcast: return EventCategory::Other;
    }
    panic("commCategoryOf: unknown Collective");
}

EvalContext::EvalContext(const PerfModel &model, const ModelDesc &desc,
                         const TaskSpec &task)
    : model_(&model), desc_(&desc), task_(&task),
      taskName_(task.toString()),
      collectives_(makeCollectiveModelFor(
          model.cluster(), model.options().latency,
          model.options().allReduceAlgorithm,
          model.options().collectiveModel)),
      collectiveIdentity_(collectives_->identity())
{
    // LayerProcessor validates the cluster and the model once; every
    // plan evaluated through this context reuses that validation.
    LayerProcessor processor(cluster(), desc, options().smModel);

    const int num_layers = desc.graph.numLayers();
    costs_.resize(static_cast<size_t>(num_layers));
    for (int i = 0; i < num_layers; ++i) {
        const Layer &layer = desc.graph.layer(i);
        LayerCosts &lc = costs_[static_cast<size_t>(i)];
        lc.fwdTime = processor.forwardTime(layer, task);
        lc.bwdTime = processor.backwardTime(layer, task);
        lc.category = processor.categoryOf(layer);
        lc.fwdName = &layer.name();
        lc.bwdName = layer.name() + "'";
        lc.cls = layer.layerClass();
    }
}

size_t
EvalContext::encode(HierStrategy hs)
{
    // The 5x5 table indexing assumes exactly five Strategy values; a
    // new enumerator must grow the strategies_ array alongside this
    // multiplier or encode() writes past its end.
    static_assert(static_cast<size_t>(Strategy::MP) == 4,
                  "strategy table encoding assumes 5 Strategy values");
    return static_cast<size_t>(hs.intra) * 5 +
        static_cast<size_t>(hs.inter);
}

CollectiveEstimate
EvalContext::collectiveEstimate(Collective kind, CommScope scope,
                                double bytes) const
{
    uint64_t bits;
    static_assert(sizeof(bits) == sizeof(bytes), "double is 64-bit");
    std::memcpy(&bits, &bytes, sizeof(bits));
    auto key = std::make_tuple(collectiveIdentity_,
                               static_cast<int>(kind),
                               static_cast<int>(scope), bits);
    auto it = collectiveTable_.find(key);
    if (it != collectiveTable_.end())
        return it->second;
    CollectiveEstimate est = collectives_->estimate(kind, scope, bytes);
    collectiveTable_.emplace(key, est);
    return est;
}

size_t
EvalContext::collectiveTableSize() const
{
    std::lock_guard<std::mutex> lock(buildMutex_);
    return collectiveTable_.size();
}

void
EvalContext::buildStrategyTable(size_t slot, HierStrategy hs) const
{
    std::lock_guard<std::mutex> lock(buildMutex_);
    StrategyTable &table = strategies_[slot];
    if (table.ready.load(std::memory_order_acquire))
        return; // Another thread built it while we waited.

    // One planner pass covers every layer: a plan that maps all
    // classes to @p hs makes strategyFor(cls) == hs for each layer, so
    // planLayer yields exactly what any real plan assigning @p hs to
    // that layer's class would get.
    ParallelPlan uniform;
    for (LayerClass cls : {LayerClass::SparseEmbedding,
                           LayerClass::DenseEmbedding,
                           LayerClass::BaseDense, LayerClass::Transformer,
                           LayerClass::MoE}) {
        uniform.set(cls, hs);
    }
    CommPlanner planner(*desc_, *task_, uniform, cluster());

    const int num_layers = desc_->graph.numLayers();
    std::vector<std::vector<ResolvedCommOp>> per_layer(
        static_cast<size_t>(num_layers));
    for (int i = 0; i < num_layers; ++i) {
        std::vector<ResolvedCommOp> resolved;
        for (CommOp &op : planner.planLayer(i)) {
            CollectiveEstimate est =
                collectiveEstimate(op.kind, op.scope, op.bytes);
            if (est.seconds <= 0.0)
                continue;
            resolved.push_back(ResolvedCommOp{
                op.phase, op.position, op.kind, commCategoryOf(op.kind),
                op.blocking, est.seconds, std::move(op.tag), est.algo});
        }
        per_layer[static_cast<size_t>(i)] = std::move(resolved);
    }
    table.perLayer = std::move(per_layer);

    // The delta path's segment templates ride along: symbolic
    // per-layer event subgraphs for both prefetch variants, generated
    // by the same emission code buildGraph() runs (see
    // stream_builder.hh) so they cannot drift from the full path.
    for (int pf = 0; pf < 2; ++pf) {
        buildSegmentSet(*desc_, costs_, table.perLayer, false,
                        pf == 1, table.fwdSegs[pf]);
        if (task_->needsBackward()) {
            buildSegmentSet(*desc_, costs_, table.perLayer, true,
                            pf == 1, table.bwdSegs[pf]);
        }
    }
    table.ready.store(true, std::memory_order_release);
}

const EvalContext::StrategyTable &
EvalContext::strategyTable(HierStrategy hs) const
{
    const size_t slot = encode(hs);
    const StrategyTable &table = strategies_[slot];
    if (!table.ready.load(std::memory_order_acquire))
        buildStrategyTable(slot, hs);
    return table;
}

const std::vector<ResolvedCommOp> &
EvalContext::plannedOps(int idx, HierStrategy hs) const
{
    return strategyTable(hs).perLayer[static_cast<size_t>(idx)];
}

PerfReport
EvalContext::verdict(const ParallelPlan &plan) const
{
    return model_->verdict(*desc_, *task_, plan, taskName_);
}

namespace
{

/** The schedule-to-report assembly shared by the full and delta
 *  evaluation paths (everything but the optional Timeline). */
void
fillScheduleReport(PerfReport &report, const EventGraph &graph,
                   const FlatSchedule &sched)
{
    report.iterationTime = sched.makespan;
    report.serializedTime = sched.computeBusy + sched.commBusy;
    report.computeTime = sched.computeBusy;
    report.commTime = sched.commBusy;
    report.exposedCommTime = sched.exposedComm;

    // Per-category sums accumulate into fixed arrays in node order —
    // the same additions in the same order the per-node map
    // operator[] version performed, so every sum is bit-identical —
    // and land in the maps in ascending enum order afterwards (which
    // is also std::map's iteration order, so the maps come out
    // byte-identical too). A category's key exists iff a node touched
    // it, even when the touches summed to zero, hence the flags.
    constexpr size_t kNumCategories =
        static_cast<size_t>(EventCategory::Other) + 1;
    double serialized[kNumCategories] = {};
    double exposed[kNumCategories] = {};
    bool serialized_touched[kNumCategories] = {};
    bool exposed_touched[kNumCategories] = {};

    // One pass feeds both breakdowns (each accumulates per category in
    // node order, exactly as two passes would). The exposed terms come
    // from the same sweep that produced the aggregate
    // (sched.rawOverlap) — the second O(comm x compute) pass this used
    // to be is gone.
    const size_t n = graph.nodes.size();
    for (size_t i = 0; i < n; ++i) {
        const EventNode &node = graph.nodes[i];
        const size_t c = static_cast<size_t>(node.category);
        if (node.duration > 0.0) {
            serialized[c] += node.duration;
            serialized_touched[c] = true;
        }
        if (node.stream == StreamKind::Communication &&
            sched.finish[i] > sched.start[i]) {
            exposed[c] +=
                (sched.finish[i] - sched.start[i]) - sched.rawOverlap[i];
            exposed_touched[c] = true;
        }
    }
    for (size_t c = 0; c < kNumCategories; ++c) {
        const EventCategory cat = static_cast<EventCategory>(c);
        if (serialized_touched[c])
            report.serializedBreakdown.emplace(cat, serialized[c]);
        if (exposed_touched[c])
            report.exposedBreakdown.emplace(cat, exposed[c]);
    }
}

} // namespace

PerfReport
EvalContext::evaluate(const ParallelPlan &plan) const
{
    PerfReport report = verdict(plan);
    if (!report.memory.fits() && !options().ignoreMemory)
        return report;

    StreamBuilder builder(*this, plan);
    EventGraph graph = builder.buildGraph();
    OverlapSimulator simulator(options().backgroundCommChannel);
    FlatSchedule sched = simulator.scheduleGraph(graph);

    fillScheduleReport(report, graph, sched);

    if (options().keepTimeline) {
        const size_t n = graph.nodes.size();
        Timeline tl;
        tl.events.reserve(n);
        for (size_t i = 0; i < n; ++i) {
            tl.events.push_back(ScheduledEvent{
                graph.materialize(i), sched.start[i], sched.finish[i]});
        }
        tl.makespan = sched.makespan;
        tl.computeBusy = sched.computeBusy;
        tl.commBusy = sched.commBusy;
        tl.exposedComm = sched.exposedComm;
        report.timeline = std::move(tl);
    }
    return report;
}

void
EvalContext::spliceGraph(DeltaState &state, const ParallelPlan &plan) const
{
    const int num_layers = desc_->graph.numLayers();
    const bool backward = task_->needsBackward();
    const size_t pf = plan.fsdpPrefetch ? 1 : 0;

    // Resolve each present class's strategy table once. This is where
    // the incremental reuse lives: a plan differing from the previous
    // one in K classes hits K possibly-cold table lookups (template
    // construction only for strategies this context has never seen);
    // every other layer's segment splices straight from cache.
    const LayerClass all_classes[] = {
        LayerClass::SparseEmbedding, LayerClass::DenseEmbedding,
        LayerClass::BaseDense, LayerClass::Transformer, LayerClass::MoE};
    const StrategyTable *tables[5];
    for (LayerClass cls : all_classes) {
        tables[static_cast<size_t>(cls)] =
            &strategyTable(plan.strategyFor(cls));
    }

    // Maximal same-class layer runs, then one fused splice: every
    // run is a contiguous range of one strategy table's packed arena
    // (GPT-3's ~190-layer transformer stack is a single run per
    // pass), so the splice cost scales with class alternations, not
    // layer count. Backward sets are stored in emission order (layer
    // N-1..0), so a descending layer run maps to an ascending set
    // range starting at N-1-i.
    std::vector<SpliceRun> &runs = state.runs;
    runs.clear();
    for (int i = 0; i < num_layers;) {
        const LayerClass cls = costs_[static_cast<size_t>(i)].cls;
        int j = i + 1;
        while (j < num_layers &&
               costs_[static_cast<size_t>(j)].cls == cls)
            ++j;
        runs.push_back(
            SpliceRun{&tables[static_cast<size_t>(cls)]->fwdSegs[pf],
                      static_cast<uint32_t>(i),
                      static_cast<uint32_t>(j - i), false});
        i = j;
    }
    if (backward) {
        for (int i = num_layers - 1; i >= 0;) {
            const LayerClass cls = costs_[static_cast<size_t>(i)].cls;
            int j = i - 1;
            while (j >= 0 && costs_[static_cast<size_t>(j)].cls == cls)
                --j;
            runs.push_back(SpliceRun{
                &tables[static_cast<size_t>(cls)]->bwdSegs[pf],
                static_cast<uint32_t>(num_layers - 1 - i),
                static_cast<uint32_t>(i - j), true});
            i = j;
        }
    }
    spliceSegmentRuns(runs.data(), runs.size(), num_layers, backward,
                      state.graph, state.fwdOut, state.bwdOut,
                      state.computeIds);
}

PerfReport
EvalContext::evaluateDelta(DeltaState &state,
                           const ParallelPlan &plan) const
{
    // Fall-back: retained timelines need materialized events, which
    // only the full path produces. The state's splice buffers are
    // left untouched (and stay consistent with prevPlan).
    if (options().keepTimeline) {
        state.lastUsedDelta = false;
        return evaluate(plan);
    }
    if (state.context != this) {
        // Structural change — another (model, task, cluster) triple,
        // including a different present-class set via another
        // ModelDesc: rebind and start from scratch.
        state.context = this;
        state.hasPlan = false;
    }

    PerfReport report = verdict(plan);
    if (!report.memory.fits() && !options().ignoreMemory) {
        // OOM verdict: no streams built, nothing advanced — exactly
        // evaluate()'s short-circuit.
        state.lastUsedDelta = false;
        return report;
    }

    const bool incremental = state.hasPlan;
    spliceGraph(state, plan);
    OverlapSimulator simulator(options().backgroundCommChannel);
    simulator.scheduleGraphInto(state.graph, state.sched, state.scratch);
    fillScheduleReport(report, state.graph, state.sched);

    state.prevPlan = plan;
    state.hasPlan = true;
    state.lastUsedDelta = incremental;
    return report;
}

} // namespace madmax
