#include "core/strategy_explorer.hh"

#include <algorithm>
#include <optional>

#include "util/logging.hh"

namespace madmax
{

StrategyExplorer::StrategyExplorer(const PerfModel &model,
                                   EvalEngine *engine)
    : model_(model), shared_(engine)
{
    // The private fallback engine is built eagerly (it is cheap: one
    // thread means no pool) so the const search methods stay safe to
    // call concurrently, matching PerfModel's thread-safety contract.
    if (!shared_)
        owned_ = std::make_unique<EvalEngine>();
}

EvalEngine &
StrategyExplorer::engine() const
{
    return shared_ ? *shared_ : *owned_;
}

std::vector<LayerClass>
StrategyExplorer::classesOf(const ModelDesc &desc) const
{
    std::vector<LayerClass> classes;
    for (LayerClass cls : {LayerClass::SparseEmbedding,
                           LayerClass::DenseEmbedding,
                           LayerClass::BaseDense, LayerClass::Transformer,
                           LayerClass::MoE}) {
        if (desc.graph.hasClass(cls))
            classes.push_back(cls);
    }
    if (classes.empty())
        fatal("StrategyExplorer: model has no layers");
    return classes;
}

std::vector<HierStrategy>
StrategyExplorer::candidates(LayerClass cls)
{
    using S = Strategy;
    switch (cls) {
      case LayerClass::SparseEmbedding:
        // Trillion-parameter tables: sharding variants only
        // (Insight 1); node-local sharding replicates tables across
        // nodes and needs the memory headroom of future devices.
        return {
            HierStrategy{S::MP},
            HierStrategy{S::MP, S::DDP},
        };
      case LayerClass::MoE:
        // Expert-parallel sharding plus the dense-style fallbacks.
        return {
            HierStrategy{S::MP},
            HierStrategy{S::MP, S::DDP},
            HierStrategy{S::FSDP},
            HierStrategy{S::DDP},
            HierStrategy{S::TP, S::DDP},
        };
      case LayerClass::DenseEmbedding:
      case LayerClass::BaseDense:
      case LayerClass::Transformer:
        return {
            HierStrategy{S::FSDP},
            HierStrategy{S::DDP},
            HierStrategy{S::TP},
            HierStrategy{S::TP, S::DDP},
            HierStrategy{S::DDP, S::TP},
            HierStrategy{S::TP, S::FSDP},
            HierStrategy{S::FSDP, S::DDP},
            HierStrategy{S::DDP, S::FSDP},
        };
    }
    panic("candidates: unknown LayerClass");
}

Exploration
StrategyExplorer::explore(const ModelDesc &desc, const TaskSpec &task,
                          const ExplorerOptions &options) const
{
    // Gather the classes present, in a stable order.
    std::vector<LayerClass> classes = classesOf(desc);

    // Cartesian product over per-class candidates. Plans inherit the
    // production default of prefetch-enabled FSDP so the explorer
    // never ranks below the baseline on a technicality.
    std::vector<ParallelPlan> plans;
    plans.emplace_back();
    plans.back().fsdpPrefetch = true;
    for (LayerClass cls : classes) {
        std::vector<ParallelPlan> expanded;
        for (const ParallelPlan &base : plans) {
            for (HierStrategy hs : candidates(cls)) {
                ParallelPlan p = base;
                p.set(cls, hs);
                expanded.push_back(std::move(p));
            }
        }
        plans = std::move(expanded);
    }
    if (options.explorePrefetch) {
        // Ablation variants with prefetching disabled (Fig. 9).
        size_t base_count = plans.size();
        for (size_t i = 0; i < base_count; ++i) {
            bool has_fsdp = false;
            for (const auto &[cls, hs] : plans[i].byClass) {
                if (hs.intra == Strategy::FSDP ||
                    hs.inter == Strategy::FSDP) {
                    has_fsdp = true;
                }
            }
            if (has_fsdp) {
                ParallelPlan p = plans[i];
                p.fsdpPrefetch = false;
                plans.push_back(std::move(p));
            }
        }
    }

    // The unconstrained variant is only materialized on the
    // ignoreMemory path: it costs a full cluster copy + re-validation,
    // which the common constrained sweep must not pay.
    const PerfModel *model = &model_;
    std::optional<PerfModel> unconstrained;
    if (options.ignoreMemory) {
        PerfModelOptions o = model_.options();
        o.ignoreMemory = true;
        unconstrained.emplace(model_.cluster(), o);
        model = &*unconstrained;
    }

    std::vector<PlanRequest> requests;
    requests.reserve(plans.size());
    for (ParallelPlan &plan : plans) {
        PlanRequest req;
        req.model = model;
        req.desc = &desc;
        req.task = &task;
        req.plan = std::move(plan);
        requests.push_back(std::move(req));
    }

    Exploration out;
    std::vector<PerfReport> reports =
        engine().evaluateAll(requests, &out.stats);

    out.results.reserve(requests.size());
    for (size_t i = 0; i < requests.size(); ++i) {
        if (!reports[i].valid && !options.keepInvalid)
            continue;
        out.results.push_back(
            ExplorationResult{std::move(requests[i].plan),
                              std::move(reports[i]), EvalStats{}});
    }

    // stable_sort keeps enumeration order on throughput ties, so the
    // ranking is bytewise-identical for any thread count.
    std::stable_sort(
        out.results.begin(), out.results.end(),
        [](const ExplorationResult &a, const ExplorationResult &b) {
            if (a.report.valid != b.report.valid)
                return a.report.valid;
            return a.report.throughput() > b.report.throughput();
        });
    return out;
}

ExplorationResult
StrategyExplorer::bestByCoordinateDescent(
    const ModelDesc &desc, const TaskSpec &task, const PerfModel &model,
    const std::vector<LayerClass> &classes) const
{
    // Start from the baseline (prefetch-enabled) and greedily sweep
    // one layer class at a time until no single-class change helps.
    // Each class sweep is evaluated as one engine batch: within a
    // sweep every trial varies only that class, so batching matches
    // the sequential greedy adoption exactly (argmax == last adopted).
    EvalStats stats;
    ParallelPlan plan = ParallelPlan::fsdpBaseline();
    plan.fsdpPrefetch = true;
    PerfReport best =
        engine().evaluateOne(model, desc, task, plan, &stats);

    bool improved = true;
    int rounds = 0;
    while (improved && rounds++ < 8) {
        improved = false;
        for (LayerClass cls : classes) {
            std::vector<PlanRequest> trials;
            for (HierStrategy hs : candidates(cls)) {
                if (plan.strategyFor(cls) == hs)
                    continue;
                PlanRequest req;
                req.model = &model;
                req.desc = &desc;
                req.task = &task;
                req.plan = plan;
                req.plan.set(cls, hs);
                trials.push_back(std::move(req));
            }
            EvalStats batch_stats;
            std::vector<PerfReport> reports =
                engine().evaluateAll(trials, &batch_stats);
            stats += batch_stats;
            for (size_t i = 0; i < trials.size(); ++i) {
                if (reports[i].valid &&
                    (!best.valid ||
                     reports[i].throughput() > best.throughput())) {
                    plan = trials[i].plan;
                    best = std::move(reports[i]);
                    improved = true;
                }
            }
        }
    }
    if (!best.valid) {
        fatal("StrategyExplorer: no valid plan fits device memory "
              "for '" + desc.name + "'");
    }
    return ExplorationResult{plan, std::move(best), stats};
}

ExplorationResult
StrategyExplorer::best(const ModelDesc &desc, const TaskSpec &task,
                       const ExplorerOptions &options) const
{
    if (options.algorithm == SearchAlgorithm::CoordinateDescent) {
        const PerfModel *model = &model_;
        std::optional<PerfModel> unconstrained;
        if (options.ignoreMemory) {
            PerfModelOptions o = model_.options();
            o.ignoreMemory = true;
            unconstrained.emplace(model_.cluster(), o);
            model = &*unconstrained;
        }
        return bestByCoordinateDescent(desc, task, *model,
                                       classesOf(desc));
    }
    Exploration all = explore(desc, task, options);
    for (ExplorationResult &r : all.results) {
        if (r.report.valid) {
            r.stats = all.stats;
            return std::move(r);
        }
    }
    fatal("StrategyExplorer: no valid plan fits device memory for '" +
          desc.name + "'");
}

PerfReport
StrategyExplorer::baseline(const ModelDesc &desc,
                           const TaskSpec &task) const
{
    return engine().evaluateOne(model_, desc, task,
                                ParallelPlan::fsdpBaseline());
}

} // namespace madmax
