#include "core/strategy_explorer.hh"

#include <algorithm>

#include "util/logging.hh"

namespace madmax
{

namespace
{
thread_local long search_evaluations = 0;
} // namespace

StrategyExplorer::StrategyExplorer(const PerfModel &model)
    : model_(model)
{
}

long
StrategyExplorer::lastSearchEvaluations()
{
    return search_evaluations;
}

std::vector<LayerClass>
StrategyExplorer::classesOf(const ModelDesc &desc) const
{
    std::vector<LayerClass> classes;
    for (LayerClass cls : {LayerClass::SparseEmbedding,
                           LayerClass::DenseEmbedding,
                           LayerClass::BaseDense, LayerClass::Transformer,
                           LayerClass::MoE}) {
        if (desc.graph.hasClass(cls))
            classes.push_back(cls);
    }
    if (classes.empty())
        fatal("StrategyExplorer: model has no layers");
    return classes;
}

std::vector<HierStrategy>
StrategyExplorer::candidates(LayerClass cls)
{
    using S = Strategy;
    switch (cls) {
      case LayerClass::SparseEmbedding:
        // Trillion-parameter tables: sharding variants only
        // (Insight 1); node-local sharding replicates tables across
        // nodes and needs the memory headroom of future devices.
        return {
            HierStrategy{S::MP},
            HierStrategy{S::MP, S::DDP},
        };
      case LayerClass::MoE:
        // Expert-parallel sharding plus the dense-style fallbacks.
        return {
            HierStrategy{S::MP},
            HierStrategy{S::MP, S::DDP},
            HierStrategy{S::FSDP},
            HierStrategy{S::DDP},
            HierStrategy{S::TP, S::DDP},
        };
      case LayerClass::DenseEmbedding:
      case LayerClass::BaseDense:
      case LayerClass::Transformer:
        return {
            HierStrategy{S::FSDP},
            HierStrategy{S::DDP},
            HierStrategy{S::TP},
            HierStrategy{S::TP, S::DDP},
            HierStrategy{S::DDP, S::TP},
            HierStrategy{S::TP, S::FSDP},
            HierStrategy{S::FSDP, S::DDP},
            HierStrategy{S::DDP, S::FSDP},
        };
    }
    panic("candidates: unknown LayerClass");
}

std::vector<ExplorationResult>
StrategyExplorer::explore(const ModelDesc &desc, const TaskSpec &task,
                          const ExplorerOptions &options) const
{
    // Gather the classes present, in a stable order.
    std::vector<LayerClass> classes = classesOf(desc);
    search_evaluations = 0;

    // Cartesian product over per-class candidates. Plans inherit the
    // production default of prefetch-enabled FSDP so the explorer
    // never ranks below the baseline on a technicality.
    std::vector<ParallelPlan> plans;
    plans.emplace_back();
    plans.back().fsdpPrefetch = true;
    for (LayerClass cls : classes) {
        std::vector<ParallelPlan> expanded;
        for (const ParallelPlan &base : plans) {
            for (HierStrategy hs : candidates(cls)) {
                ParallelPlan p = base;
                p.set(cls, hs);
                expanded.push_back(std::move(p));
            }
        }
        plans = std::move(expanded);
    }
    if (options.explorePrefetch) {
        // Ablation variants with prefetching disabled (Fig. 9).
        size_t base_count = plans.size();
        for (size_t i = 0; i < base_count; ++i) {
            bool has_fsdp = false;
            for (const auto &[cls, hs] : plans[i].byClass) {
                if (hs.intra == Strategy::FSDP ||
                    hs.inter == Strategy::FSDP) {
                    has_fsdp = true;
                }
            }
            if (has_fsdp) {
                ParallelPlan p = plans[i];
                p.fsdpPrefetch = false;
                plans.push_back(std::move(p));
            }
        }
    }

    const PerfModel *model = &model_;
    PerfModel unconstrained = model_.withCluster(model_.cluster());
    if (options.ignoreMemory) {
        PerfModelOptions o = model_.options();
        o.ignoreMemory = true;
        unconstrained = PerfModel(model_.cluster(), o);
        model = &unconstrained;
    }

    std::vector<ExplorationResult> results;
    results.reserve(plans.size());
    for (const ParallelPlan &plan : plans) {
        ++search_evaluations;
        PerfReport r = model->evaluate(desc, task, plan);
        if (!r.valid && !options.keepInvalid)
            continue;
        results.push_back(ExplorationResult{plan, std::move(r)});
    }

    std::sort(results.begin(), results.end(),
              [](const ExplorationResult &a, const ExplorationResult &b) {
                  if (a.report.valid != b.report.valid)
                      return a.report.valid;
                  return a.report.throughput() > b.report.throughput();
              });
    return results;
}

ExplorationResult
StrategyExplorer::bestByCoordinateDescent(
    const ModelDesc &desc, const TaskSpec &task, const PerfModel &model,
    const std::vector<LayerClass> &classes) const
{
    // Start from the baseline (prefetch-enabled) and greedily sweep
    // one layer class at a time until no single-class change helps.
    ParallelPlan plan = ParallelPlan::fsdpBaseline();
    plan.fsdpPrefetch = true;
    ++search_evaluations;
    PerfReport best = model.evaluate(desc, task, plan);

    bool improved = true;
    int rounds = 0;
    while (improved && rounds++ < 8) {
        improved = false;
        for (LayerClass cls : classes) {
            for (HierStrategy hs : candidates(cls)) {
                if (plan.strategyFor(cls) == hs)
                    continue;
                ParallelPlan trial = plan;
                trial.set(cls, hs);
                ++search_evaluations;
                PerfReport r = model.evaluate(desc, task, trial);
                if (r.valid &&
                    (!best.valid ||
                     r.throughput() > best.throughput())) {
                    plan = std::move(trial);
                    best = std::move(r);
                    improved = true;
                }
            }
        }
    }
    if (!best.valid) {
        fatal("StrategyExplorer: no valid plan fits device memory "
              "for '" + desc.name + "'");
    }
    return ExplorationResult{plan, std::move(best)};
}

ExplorationResult
StrategyExplorer::best(const ModelDesc &desc, const TaskSpec &task,
                       const ExplorerOptions &options) const
{
    if (options.algorithm == SearchAlgorithm::CoordinateDescent) {
        search_evaluations = 0;
        const PerfModel *model = &model_;
        PerfModel unconstrained = model_.withCluster(model_.cluster());
        if (options.ignoreMemory) {
            PerfModelOptions o = model_.options();
            o.ignoreMemory = true;
            unconstrained = PerfModel(model_.cluster(), o);
            model = &unconstrained;
        }
        return bestByCoordinateDescent(desc, task, *model,
                                       classesOf(desc));
    }
    std::vector<ExplorationResult> all = explore(desc, task, options);
    for (ExplorationResult &r : all) {
        if (r.report.valid)
            return std::move(r);
    }
    fatal("StrategyExplorer: no valid plan fits device memory for '" +
          desc.name + "'");
}

PerfReport
StrategyExplorer::baseline(const ModelDesc &desc,
                           const TaskSpec &task) const
{
    return model_.evaluate(desc, task, ParallelPlan::fsdpBaseline());
}

} // namespace madmax
