#include "core/strategy_explorer.hh"

#include <algorithm>
#include <optional>

#include "util/logging.hh"

namespace madmax
{

std::string
toString(SearchAlgorithm algorithm)
{
    switch (algorithm) {
      case SearchAlgorithm::Exhaustive: return "exhaustive";
      case SearchAlgorithm::CoordinateDescent: return "coordinate-descent";
      case SearchAlgorithm::SimulatedAnnealing: return "annealing";
      case SearchAlgorithm::Genetic: return "genetic";
    }
    panic("toString: unknown SearchAlgorithm");
}

StrategyExplorer::StrategyExplorer(const PerfModel &model,
                                   EvalEngine *engine)
    : model_(model), shared_(engine)
{
    // The private fallback engine is built eagerly (it is cheap: one
    // thread means no pool) so the const search methods stay safe to
    // call concurrently, matching PerfModel's thread-safety contract.
    if (!shared_)
        owned_ = std::make_unique<EvalEngine>();
}

EvalEngine &
StrategyExplorer::engine() const
{
    return shared_ ? *shared_ : *owned_;
}

std::vector<HierStrategy>
StrategyExplorer::candidates(LayerClass cls)
{
    using S = Strategy;
    switch (cls) {
      case LayerClass::SparseEmbedding:
        // Trillion-parameter tables: sharding variants only
        // (Insight 1); node-local sharding replicates tables across
        // nodes and needs the memory headroom of future devices.
        return {
            HierStrategy{S::MP},
            HierStrategy{S::MP, S::DDP},
        };
      case LayerClass::MoE:
        // Expert-parallel sharding plus the dense-style fallbacks.
        return {
            HierStrategy{S::MP},
            HierStrategy{S::MP, S::DDP},
            HierStrategy{S::FSDP},
            HierStrategy{S::DDP},
            HierStrategy{S::TP, S::DDP},
        };
      case LayerClass::DenseEmbedding:
      case LayerClass::BaseDense:
      case LayerClass::Transformer:
        return {
            HierStrategy{S::FSDP},
            HierStrategy{S::DDP},
            HierStrategy{S::TP},
            HierStrategy{S::TP, S::DDP},
            HierStrategy{S::DDP, S::TP},
            HierStrategy{S::TP, S::FSDP},
            HierStrategy{S::FSDP, S::DDP},
            HierStrategy{S::DDP, S::FSDP},
        };
    }
    panic("candidates: unknown LayerClass");
}

Exploration
StrategyExplorer::explore(const ModelDesc &desc, const TaskSpec &task,
                          const ExplorerOptions &options) const
{
    // The unconstrained variant is only materialized on the
    // ignoreMemory path: it costs a full cluster copy + re-validation,
    // which the common constrained sweep must not pay.
    const PerfModel *model = &model_;
    std::optional<PerfModel> unconstrained;
    if (options.ignoreMemory) {
        PerfModelOptions o = model_.options();
        o.ignoreMemory = true;
        unconstrained.emplace(model_.cluster(), o);
        model = &*unconstrained;
    }

    // The full plan product in canonical enumeration order (a golden-
    // suite compatibility contract — see dse::enumeratePlans).
    SearchSpace space =
        makeSearchSpace({model}, desc, task, options.explorePrefetch);
    std::vector<ParallelPlan> plans = enumeratePlans(space);

    std::vector<PlanRequest> requests;
    requests.reserve(plans.size());
    for (ParallelPlan &plan : plans) {
        PlanRequest req;
        req.model = model;
        req.desc = &desc;
        req.task = &task;
        req.plan = std::move(plan);
        requests.push_back(std::move(req));
    }

    Exploration out;
    std::vector<PerfReport> reports =
        engine().evaluateAll(requests, &out.stats);

    out.results.reserve(requests.size());
    for (size_t i = 0; i < requests.size(); ++i) {
        if (!reports[i].valid && !options.keepInvalid)
            continue;
        out.results.push_back(
            ExplorationResult{std::move(requests[i].plan),
                              std::move(reports[i]), EvalStats{}});
    }

    // stable_sort keeps enumeration order on throughput ties, so the
    // ranking is bytewise-identical for any thread count.
    std::stable_sort(
        out.results.begin(), out.results.end(),
        [](const ExplorationResult &a, const ExplorationResult &b) {
            if (a.report.valid != b.report.valid)
                return a.report.valid;
            return a.report.throughput() > b.report.throughput();
        });
    return out;
}

ExplorationResult
StrategyExplorer::best(const ModelDesc &desc, const TaskSpec &task,
                       const ExplorerOptions &options) const
{
    const PerfModel *model = &model_;
    std::optional<PerfModel> unconstrained;
    if (options.ignoreMemory) {
        PerfModelOptions o = model_.options();
        o.ignoreMemory = true;
        unconstrained.emplace(model_.cluster(), o);
        model = &*unconstrained;
    }

    SearchSpace space =
        makeSearchSpace({model}, desc, task, options.explorePrefetch);
    std::unique_ptr<SearchStrategy> strategy =
        makeSearchStrategy(toString(options.algorithm));
    SearchOutcome outcome =
        strategy->run(space, engine(), options.search);

    const SearchCandidate *winner = bestCandidate(outcome);
    if (!winner) {
        fatal("StrategyExplorer: no valid plan fits device memory "
              "for '" + desc.name + "'");
    }
    return ExplorationResult{winner->plan, winner->report,
                             outcome.stats};
}

PerfReport
StrategyExplorer::baseline(const ModelDesc &desc,
                           const TaskSpec &task) const
{
    return engine().evaluateOne(model_, desc, task,
                                ParallelPlan::fsdpBaseline());
}

} // namespace madmax
