#include "core/memory_model.hh"

#include <algorithm>

#include "parallel/sharding.hh"
#include "util/logging.hh"

namespace madmax
{

MemoryModel::MemoryModel(MemoryModelOptions options)
    : options_(options)
{
    if (options_.reserveFraction < 0.0 || options_.reserveFraction >= 1.0)
        fatal("MemoryModel: reserveFraction must be in [0, 1)");
}

MemoryFootprint
MemoryModel::evaluate(const ModelDesc &desc, const TaskSpec &task,
                      const ParallelPlan &plan,
                      const ClusterSpec &cluster) const
{
    desc.validate();
    cluster.validate();

    MemoryFootprint fp;
    fp.usableCapacity =
        cluster.device.hbmCapacity * (1.0 - options_.reserveFraction);

    const double param_elem_bytes = desc.paramBytes();
    // Mixed-precision training keeps an fp32 master copy when params
    // are stored in 16-bit.
    const double master_bytes = param_elem_bytes < 4.0 ? 4.0 : 0.0;
    const double batch_share =
        static_cast<double>(desc.globalBatchSize) /
        static_cast<double>(cluster.numDevices());

    // Everything the per-layer loop reads through the plan/task is a
    // function of the layer's class alone; resolve each class once
    // instead of per layer (a strategy map lookup plus sharding per
    // layer is measurable on ~200-layer graphs in the DSE hot path).
    // The per-layer arithmetic below is unchanged, so the sums are
    // bit-identical.
    struct ClassTerms
    {
        ShardingInfo sh;
        double gradBytesPerParam;
        double optBytesPerParam;
        bool trainable;
    };
    constexpr size_t kNumClasses =
        static_cast<size_t>(LayerClass::MoE) + 1;
    ClassTerms terms[kNumClasses];
    for (size_t c = 0; c < kNumClasses; ++c) {
        const LayerClass cls = static_cast<LayerClass>(c);
        ClassTerms &t = terms[c];
        t.sh = shardingFor(plan.strategyFor(cls), cluster);
        t.gradBytesPerParam = task.gradBytesPerParam(cls);
        t.trainable = task.isTrainable(cls);
        t.optBytesPerParam = task.optimizerBytesPerParam(cls);
        if (cls != LayerClass::SparseEmbedding)
            t.optBytesPerParam += master_bytes;
    }

    for (int i = 0; i < desc.graph.numLayers(); ++i) {
        const Layer &layer = desc.graph.layer(i);
        const LayerClass cls = layer.layerClass();
        const ClassTerms &t = terms[static_cast<size_t>(cls)];
        const ShardingInfo &sh = t.sh;
        const double params = layer.paramCount();

        fp.paramBytes += params * param_elem_bytes * sh.paramFraction;
        fp.gradBytes +=
            params * t.gradBytesPerParam * sh.paramFraction;
        if (t.trainable) {
            fp.optimizerBytes +=
                params * t.optBytesPerParam * sh.paramFraction;
        }

        if (task.retainsActivations()) {
            double act = options_.checkpointActivations
                ? layer.outputBytesPerSample(desc.activationBytes())
                : layer.activationMemoryBytesPerSample(
                      desc.activationBytes());
            fp.activationBytes += act * batch_share;
        }

        // FSDP materializes the in-flight unit on top of its shard.
        // MoE banks are wrapped per expert, so only one expert's
        // weights are gathered at a time.
        double transient_params = params;
        if (layer.kind() == LayerKind::MoeFeedForward) {
            transient_params /= static_cast<const MoeFeedForwardLayer &>(
                                    layer)
                                    .numExperts();
        }
        fp.transientBytes = std::max(
            fp.transientBytes,
            transient_params * param_elem_bytes *
                sh.transientParamFraction);
    }

    if (!task.retainsActivations()) {
        // Inference working set: the two widest adjacent layer
        // outputs for the device's batch share.
        double widest = 0.0, second = 0.0;
        for (int i = 0; i < desc.graph.numLayers(); ++i) {
            double b = desc.graph.layer(i).outputBytesPerSample(
                desc.activationBytes());
            if (b > widest) {
                second = widest;
                widest = b;
            } else {
                second = std::max(second, b);
            }
        }
        fp.activationBytes = (widest + second) * batch_share;

        // Decode steps materialize one token's activations, not the
        // whole context's (outputBytesPerSample counts contextLength
        // tokens for transformer layers).
        if (task.kind == TaskKind::Inference &&
            task.phase == InferencePhase::Decode) {
            fp.activationBytes /=
                static_cast<double>(desc.contextLength);
        }
    }

    // Phase-split LLM inference holds a KV cache: every attention
    // layer retains K and V for up to kvCapacityTokens per resident
    // sequence (the model's full context by default). The cache rides
    // the batch split like activations do — each device holds the
    // cache for its share of the in-flight sequences. Batch-phase
    // inference and training leave this at zero, keeping every legacy
    // footprint byte-identical.
    if (task.usesKvCache()) {
        const double kv_tokens = task.kvCapacityTokens > 0
            ? static_cast<double>(task.kvCapacityTokens)
            : static_cast<double>(desc.contextLength);
        double kv_per_token = 0.0;
        for (int i = 0; i < desc.graph.numLayers(); ++i) {
            const Layer &layer = desc.graph.layer(i);
            if (layer.kind() != LayerKind::Attention)
                continue;
            kv_per_token += static_cast<const AttentionLayer &>(layer)
                                .kvBytesPerToken(task.kvBytesPerElement);
        }
        fp.kvCacheBytes = kv_per_token * kv_tokens * batch_share;
    }
    return fp;
}

} // namespace madmax
