#include "core/memory_model.hh"

#include <algorithm>

#include "parallel/sharding.hh"
#include "util/logging.hh"

namespace madmax
{

MemoryModel::MemoryModel(MemoryModelOptions options)
    : options_(options)
{
    if (options_.reserveFraction < 0.0 || options_.reserveFraction >= 1.0)
        fatal("MemoryModel: reserveFraction must be in [0, 1)");
}

MemoryFootprint
MemoryModel::evaluate(const ModelDesc &desc, const TaskSpec &task,
                      const ParallelPlan &plan,
                      const ClusterSpec &cluster) const
{
    desc.validate();
    cluster.validate();

    MemoryFootprint fp;
    fp.usableCapacity =
        cluster.device.hbmCapacity * (1.0 - options_.reserveFraction);

    const double param_elem_bytes = desc.paramBytes();
    // Mixed-precision training keeps an fp32 master copy when params
    // are stored in 16-bit.
    const double master_bytes = param_elem_bytes < 4.0 ? 4.0 : 0.0;
    const double batch_share =
        static_cast<double>(desc.globalBatchSize) /
        static_cast<double>(cluster.numDevices());

    for (int i = 0; i < desc.graph.numLayers(); ++i) {
        const Layer &layer = desc.graph.layer(i);
        const LayerClass cls = layer.layerClass();
        const ShardingInfo sh =
            shardingFor(plan.strategyFor(cls), cluster);
        const double params = layer.paramCount();
        const bool trainable = task.isTrainable(cls);

        fp.paramBytes += params * param_elem_bytes * sh.paramFraction;
        fp.gradBytes +=
            params * task.gradBytesPerParam(cls) * sh.paramFraction;
        if (trainable) {
            double opt = task.optimizerBytesPerParam(cls);
            if (cls != LayerClass::SparseEmbedding)
                opt += master_bytes;
            fp.optimizerBytes += params * opt * sh.paramFraction;
        }

        if (task.retainsActivations()) {
            double act = options_.checkpointActivations
                ? layer.outputBytesPerSample(desc.activationBytes())
                : layer.activationMemoryBytesPerSample(
                      desc.activationBytes());
            fp.activationBytes += act * batch_share;
        }

        // FSDP materializes the in-flight unit on top of its shard.
        // MoE banks are wrapped per expert, so only one expert's
        // weights are gathered at a time.
        double transient_params = params;
        if (layer.kind() == LayerKind::MoeFeedForward) {
            transient_params /= static_cast<const MoeFeedForwardLayer &>(
                                    layer)
                                    .numExperts();
        }
        fp.transientBytes = std::max(
            fp.transientBytes,
            transient_params * param_elem_bytes *
                sh.transientParamFraction);
    }

    if (!task.retainsActivations()) {
        // Inference working set: the two widest adjacent layer
        // outputs for the device's batch share.
        double widest = 0.0, second = 0.0;
        for (int i = 0; i < desc.graph.numLayers(); ++i) {
            double b = desc.graph.layer(i).outputBytesPerSample(
                desc.activationBytes());
            if (b > widest) {
                second = widest;
                widest = b;
            } else {
                second = std::max(second, b);
            }
        }
        fp.activationBytes = (widest + second) * batch_share;
    }
    return fp;
}

} // namespace madmax
