/**
 * @file
 * Two-stream list scheduler (§IV-C "Computation-Communication
 * Overlap"): events execute in issue order within their stream,
 * starting as soon as both the stream cursor and all data
 * dependencies allow ("GPU kernels are launched whenever data
 * dependencies are resolved"). Events on different streams with no
 * dependency between them overlap freely.
 *
 * Two entry points share one implementation:
 *
 *  - scheduleGraph(EventGraph) is the hot path: dense event ids index
 *    flat start/finish vectors (no hash map), dependencies come from
 *    the graph's shared arena, and exposed-communication accounting
 *    is a linear interval sweep (core/interval_sweep.hh) instead of
 *    the old O(comm x compute) double loop. The per-event
 *    raw-interval overlaps are returned so PerfModel's per-category
 *    exposed breakdown reuses this sweep instead of re-running its
 *    own quadratic pass.
 *  - schedule(vector<TraceEvent>) is the self-contained form (tests,
 *    trace tooling): it validates ids, converts to a flat graph, and
 *    returns a fully materialized Timeline.
 */

#ifndef MADMAX_CORE_OVERLAP_SIMULATOR_HH
#define MADMAX_CORE_OVERLAP_SIMULATOR_HH

#include <vector>

#include "core/interval_sweep.hh"
#include "trace/event_graph.hh"
#include "trace/trace_event.hh"

namespace madmax
{

/**
 * A scheduled flat graph: per-node start/finish times plus the
 * aggregate accounting, with no per-event allocation or string copy.
 */
struct FlatSchedule
{
    std::vector<double> start;  ///< Indexed by node id.
    std::vector<double> finish; ///< Indexed by node id.

    /**
     * Per communication node: seconds of its interval covered by the
     * *unmerged* compute-busy intervals, in ascending interval order —
     * the exact quantity PerfModel's per-category exposed breakdown
     * historically computed per event. 0 for compute nodes and
     * zero-length events.
     *
     * (The aggregate exposedComm below follows the other historical
     * accounting — coverage under *merged* compute intervals. The two
     * differ in final-ulp rounding when a comm event spans the seam of
     * two back-to-back compute intervals, so both are kept to stay
     * bit-identical with the reports the quadratic passes produced.)
     */
    std::vector<double> rawOverlap;

    double makespan = 0.0;
    double computeBusy = 0.0;
    double commBusy = 0.0;
    double exposedComm = 0.0;
};

/**
 * Reusable working buffers for the exposed-communication sweep.
 * Callers that schedule many graphs of similar size (the delta
 * re-evaluation loop) keep one of these alive so the per-schedule
 * interval/order/coverage vectors stop being fresh allocations.
 */
struct SweepScratch
{
    std::vector<Interval> computeBusy; ///< Raw compute-busy intervals.
    std::vector<Interval> merged;      ///< Same, merged.
    std::vector<Interval> queries;     ///< Nonzero comm intervals.
    std::vector<size_t> queryNode;     ///< queries[i] -> node id.
    std::vector<size_t> order;         ///< Ascending-lo query order.
    std::vector<size_t> mainChan;      ///< Main-channel query indices.
    std::vector<size_t> backChan;      ///< Background query indices.
    std::vector<double> mergedCov;     ///< Coverage under merged.
    std::vector<double> rawCov;        ///< Coverage under raw.
};

/**
 * Schedules a per-device event DAG onto a compute stream and a
 * communication stream.
 *
 * Input contract: events are in issue order (each stream executes its
 * events in the order they appear), every dependency id refers to an
 * earlier event, a node's dependency list has no duplicates, and ids
 * are unique. Violations are internal errors. (The no-duplicates rule
 * lets the scheduler recognize a node with as many dependencies as
 * there are earlier nodes — the iteration-end barrier — and resolve
 * its ready time from the stream cursors instead of scanning a
 * graph-sized list; both builders satisfy it by construction.)
 */
class OverlapSimulator
{
  public:
    /**
     * @param background_channel When true (default), non-blocking
     *        collectives ride a separate channel, as NCCL schedules
     *        gradient reductions; when false every collective shares
     *        one in-order stream (the naive model — kept for the
     *        ablation bench).
     */
    explicit OverlapSimulator(bool background_channel = true)
        : backgroundChannel_(background_channel)
    {}

    /**
     * Schedule a flat graph (hot path). Node indices are trusted to
     * satisfy the issue-order contract — StreamBuilder::buildGraph
     * guarantees it by construction.
     */
    FlatSchedule scheduleGraph(const EventGraph &graph) const;

    /**
     * scheduleGraph into caller-owned result and scratch buffers —
     * the allocation-reusing form the delta re-evaluation loop calls
     * per candidate. @p sched is fully overwritten (stale contents
     * from a previous, differently-sized graph are fine); scratch
     * vectors are cleared and refilled. Bit-identical to
     * scheduleGraph.
     */
    void scheduleGraphInto(const EventGraph &graph, FlatSchedule &sched,
                           SweepScratch &scratch) const;

    /**
     * Schedule @p events and return the Timeline with per-event
     * start/finish times, makespan, and exposed-communication
     * accounting. Ids may be arbitrary (they are remapped internally)
     * and are validated: duplicates and forward dependencies panic.
     */
    Timeline schedule(const std::vector<TraceEvent> &events) const;

  private:
    bool backgroundChannel_;
};

} // namespace madmax

#endif // MADMAX_CORE_OVERLAP_SIMULATOR_HH
