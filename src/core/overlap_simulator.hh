/**
 * @file
 * Two-stream list scheduler (§IV-C "Computation-Communication
 * Overlap"): events execute in issue order within their stream,
 * starting as soon as both the stream cursor and all data
 * dependencies allow ("GPU kernels are launched whenever data
 * dependencies are resolved"). Events on different streams with no
 * dependency between them overlap freely.
 */

#ifndef MADMAX_CORE_OVERLAP_SIMULATOR_HH
#define MADMAX_CORE_OVERLAP_SIMULATOR_HH

#include <vector>

#include "trace/trace_event.hh"

namespace madmax
{

/**
 * Schedules a per-device event DAG onto a compute stream and a
 * communication stream.
 *
 * Input contract: events are in issue order (each stream executes its
 * events in the order they appear), every dependency id refers to an
 * earlier event, and ids are unique. Violations are internal errors.
 */
class OverlapSimulator
{
  public:
    /**
     * @param background_channel When true (default), non-blocking
     *        collectives ride a separate channel, as NCCL schedules
     *        gradient reductions; when false every collective shares
     *        one in-order stream (the naive model — kept for the
     *        ablation bench).
     */
    explicit OverlapSimulator(bool background_channel = true)
        : backgroundChannel_(background_channel)
    {}

    /**
     * Schedule @p events and return the Timeline with per-event
     * start/finish times, makespan, and exposed-communication
     * accounting.
     */
    Timeline schedule(const std::vector<TraceEvent> &events) const;

  private:
    bool backgroundChannel_;
};

} // namespace madmax

#endif // MADMAX_CORE_OVERLAP_SIMULATOR_HH
