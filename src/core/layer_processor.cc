#include "core/layer_processor.hh"

#include <algorithm>

#include "util/logging.hh"

namespace madmax
{

LayerProcessor::LayerProcessor(const ClusterSpec &cluster,
                               const ModelDesc &desc,
                               std::optional<SmUtilizationModel> sm_model)
    : cluster_(cluster), desc_(desc), smModel_(std::move(sm_model))
{
    cluster_.validate();
    desc_.validate();
}

double
LayerProcessor::deviceForwardFlops(const Layer &layer) const
{
    // Even division of the global batch's work across all devices
    // holds for every strategy in the space: data-parallel levels
    // split samples, TP/MP levels split the per-sample work.
    return layer.forwardFlopsPerSample() *
        static_cast<double>(desc_.globalBatchSize) /
        static_cast<double>(cluster_.numDevices());
}

double
LayerProcessor::computeTime(double flops) const
{
    if (flops <= 0.0)
        return 0.0;
    double peak = cluster_.device.peakFlops(desc_.computeDtype);
    double util = smModel_ ? smModel_->utilization(flops)
                           : cluster_.util.compute;
    return flops / (peak * util);
}

double
LayerProcessor::lookupTime(double bytes) const
{
    if (bytes <= 0.0)
        return 0.0;
    return bytes / (cluster_.device.hbmBandwidth * cluster_.util.hbm);
}

double
LayerProcessor::forwardTime(const Layer &layer) const
{
    const double batch_share =
        static_cast<double>(desc_.globalBatchSize) /
        static_cast<double>(cluster_.numDevices());

    switch (layer.kind()) {
      case LayerKind::EmbeddingBag: {
        // Lookup-bound (§IV-B "Embedding Bags"). The hottest device
        // gates lock-step SPMD execution when lookups shard unevenly.
        const auto &emb = static_cast<const EmbeddingBagLayer &>(layer);
        return lookupTime(emb.lookupBytesPerSample() * batch_share) *
            emb.hotDeviceSkew();
      }
      case LayerKind::TokenEmbedding:
        return lookupTime(layer.lookupBytesPerSample() * batch_share);
      default:
        // Compute-bound (§IV-B "Compute Blocks").
        return computeTime(deviceForwardFlops(layer));
    }
}

double
LayerProcessor::decodeFlopsPerToken(const Layer &layer, long kv_length) const
{
    switch (layer.kind()) {
      case LayerKind::Attention: {
        // One token's projections are GEMVs against every weight
        // element (2 FLOPs/param), and its scores + weighted values
        // each read the full KV history: 2 x h x L for QK^T plus
        // 2 x h x L for the value mix, independent of head count.
        const auto &att = static_cast<const AttentionLayer &>(layer);
        const double h = static_cast<double>(att.hidden());
        const double L = static_cast<double>(kv_length);
        return 2.0 * att.paramCount() + 4.0 * h * L;
      }
      case LayerKind::EmbeddingBag:
      case LayerKind::TokenEmbedding:
        return 0.0; // Lookup-bound; handled via lookup bytes.
      default:
        // Context-independent layers (FFN, MLP, MoE active experts,
        // heads): one token's share of the per-sample forward.
        return layer.forwardFlopsPerSample() /
            static_cast<double>(desc_.contextLength);
    }
}

double
LayerProcessor::forwardTime(const Layer &layer, const TaskSpec &task) const
{
    if (task.kind != TaskKind::Inference ||
        task.phase != InferencePhase::Decode)
        return forwardTime(layer);

    const double batch_share =
        static_cast<double>(desc_.globalBatchSize) /
        static_cast<double>(cluster_.numDevices());
    const long kv_length = task.decodeKvLength > 0
        ? task.decodeKvLength
        : static_cast<long>(desc_.contextLength);

    if (layer.kind() == LayerKind::EmbeddingBag ||
        layer.kind() == LayerKind::TokenEmbedding) {
        // One row per sequence per step instead of one per token.
        const double bytes_per_token = layer.lookupBytesPerSample() /
            static_cast<double>(desc_.contextLength);
        return lookupTime(bytes_per_token * batch_share);
    }

    const double compute =
        computeTime(decodeFlopsPerToken(layer, kv_length) * batch_share);

    // Memory-bound floor: a decode step must stream the layer's
    // weight shard (even-sharding: 1/numDevices of the parameters)
    // and each resident sequence's KV slice for this layer out of
    // HBM, however few FLOPs it spends on them. This is what makes
    // decode throughput track HBM bandwidth instead of peak FLOPs.
    double hbm_bytes = layer.paramCount() * desc_.paramBytes() /
        static_cast<double>(cluster_.numDevices());
    if (layer.kind() == LayerKind::Attention) {
        const auto &att = static_cast<const AttentionLayer &>(layer);
        hbm_bytes += att.kvBytesPerToken(task.kvBytesPerElement) *
            static_cast<double>(kv_length) * batch_share;
    }
    const double floor_time =
        hbm_bytes / (cluster_.device.hbmBandwidth * cluster_.util.hbm);

    return std::max(compute, floor_time);
}

double
LayerProcessor::backwardTime(const Layer &layer, const TaskSpec &task) const
{
    if (!task.needsBackward())
        return 0.0;

    const LayerClass cls = layer.layerClass();
    const double batch_share =
        static_cast<double>(desc_.globalBatchSize) /
        static_cast<double>(cluster_.numDevices());

    switch (layer.kind()) {
      case LayerKind::EmbeddingBag:
      case LayerKind::TokenEmbedding: {
        // Frozen tables receive no gradients (nothing sits below
        // them); trainable tables re-touch the looked-up rows to
        // apply sparse updates.
        if (!task.isTrainable(cls))
            return 0.0;
        double skew = layer.kind() == LayerKind::EmbeddingBag
            ? static_cast<const EmbeddingBagLayer &>(layer)
                  .hotDeviceSkew()
            : 1.0;
        return lookupTime(layer.lookupBytesPerSample() * batch_share) *
            skew;
      }
      default:
        return computeTime(deviceForwardFlops(layer)) *
            task.backwardFlopsMultiplier(cls);
    }
}

EventCategory
LayerProcessor::categoryOf(const Layer &layer) const
{
    switch (layer.kind()) {
      case LayerKind::EmbeddingBag:
      case LayerKind::TokenEmbedding:
        return EventCategory::EmbeddingLookup;
      default:
        return EventCategory::Gemm;
    }
}

} // namespace madmax
