#include "core/layer_processor.hh"

#include "util/logging.hh"

namespace madmax
{

LayerProcessor::LayerProcessor(const ClusterSpec &cluster,
                               const ModelDesc &desc,
                               std::optional<SmUtilizationModel> sm_model)
    : cluster_(cluster), desc_(desc), smModel_(std::move(sm_model))
{
    cluster_.validate();
    desc_.validate();
}

double
LayerProcessor::deviceForwardFlops(const Layer &layer) const
{
    // Even division of the global batch's work across all devices
    // holds for every strategy in the space: data-parallel levels
    // split samples, TP/MP levels split the per-sample work.
    return layer.forwardFlopsPerSample() *
        static_cast<double>(desc_.globalBatchSize) /
        static_cast<double>(cluster_.numDevices());
}

double
LayerProcessor::computeTime(double flops) const
{
    if (flops <= 0.0)
        return 0.0;
    double peak = cluster_.device.peakFlops(desc_.computeDtype);
    double util = smModel_ ? smModel_->utilization(flops)
                           : cluster_.util.compute;
    return flops / (peak * util);
}

double
LayerProcessor::lookupTime(double bytes) const
{
    if (bytes <= 0.0)
        return 0.0;
    return bytes / (cluster_.device.hbmBandwidth * cluster_.util.hbm);
}

double
LayerProcessor::forwardTime(const Layer &layer) const
{
    const double batch_share =
        static_cast<double>(desc_.globalBatchSize) /
        static_cast<double>(cluster_.numDevices());

    switch (layer.kind()) {
      case LayerKind::EmbeddingBag: {
        // Lookup-bound (§IV-B "Embedding Bags"). The hottest device
        // gates lock-step SPMD execution when lookups shard unevenly.
        const auto &emb = static_cast<const EmbeddingBagLayer &>(layer);
        return lookupTime(emb.lookupBytesPerSample() * batch_share) *
            emb.hotDeviceSkew();
      }
      case LayerKind::TokenEmbedding:
        return lookupTime(layer.lookupBytesPerSample() * batch_share);
      default:
        // Compute-bound (§IV-B "Compute Blocks").
        return computeTime(deviceForwardFlops(layer));
    }
}

double
LayerProcessor::backwardTime(const Layer &layer, const TaskSpec &task) const
{
    if (!task.needsBackward())
        return 0.0;

    const LayerClass cls = layer.layerClass();
    const double batch_share =
        static_cast<double>(desc_.globalBatchSize) /
        static_cast<double>(cluster_.numDevices());

    switch (layer.kind()) {
      case LayerKind::EmbeddingBag:
      case LayerKind::TokenEmbedding: {
        // Frozen tables receive no gradients (nothing sits below
        // them); trainable tables re-touch the looked-up rows to
        // apply sparse updates.
        if (!task.isTrainable(cls))
            return 0.0;
        double skew = layer.kind() == LayerKind::EmbeddingBag
            ? static_cast<const EmbeddingBagLayer &>(layer)
                  .hotDeviceSkew()
            : 1.0;
        return lookupTime(layer.lookupBytesPerSample() * batch_share) *
            skew;
      }
      default:
        return computeTime(deviceForwardFlops(layer)) *
            task.backwardFlopsMultiplier(cls);
    }
}

EventCategory
LayerProcessor::categoryOf(const Layer &layer) const
{
    switch (layer.kind()) {
      case LayerKind::EmbeddingBag:
      case LayerKind::TokenEmbedding:
        return EventCategory::EmbeddingLookup;
      default:
        return EventCategory::Gemm;
    }
}

} // namespace madmax
