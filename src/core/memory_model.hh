/**
 * @file
 * Per-device memory-capacity model. Determines which parallelization
 * strategies are *valid* (the paper's OOM gray bars, Figs. 10-14):
 * parameters, gradients and optimizer states under the plan's
 * replication/sharding factors, retained activations for the device's
 * batch share, and FSDP's transiently-gathered layer. A configurable
 * fraction of HBM is reserved for the CUDA context, NCCL buffers and
 * allocator fragmentation.
 */

#ifndef MADMAX_CORE_MEMORY_MODEL_HH
#define MADMAX_CORE_MEMORY_MODEL_HH

#include <string>

#include "hw/cluster.hh"
#include "model/model_desc.hh"
#include "parallel/strategy.hh"
#include "task/task.hh"

namespace madmax
{

/** Per-device memory footprint split by source. */
struct MemoryFootprint
{
    double paramBytes = 0.0;      ///< Persistent parameter shards.
    double gradBytes = 0.0;       ///< Dense gradient buffers.
    double optimizerBytes = 0.0;  ///< Optimizer states (+ fp32 master).
    double activationBytes = 0.0; ///< Retained activations.
    double transientBytes = 0.0;  ///< Peak FSDP gathered layer.
    double kvCacheBytes = 0.0;    ///< KV cache (phase-split inference).
    double usableCapacity = 0.0;  ///< HBM after reserves.

    double total() const
    {
        return paramBytes + gradBytes + optimizerBytes +
            activationBytes + transientBytes + kvCacheBytes;
    }

    bool fits() const { return total() <= usableCapacity; }
};

/** Memory-model knobs. */
struct MemoryModelOptions
{
    /**
     * Fraction of HBM unavailable to the model (CUDA context, NCCL
     * channels, caching-allocator fragmentation, workspace).
     */
    double reserveFraction = 0.30;

    /**
     * Store only layer-boundary activations and recompute the rest
     * (standard for large-model training). When false the full
     * intermediate activations are retained.
     */
    bool checkpointActivations = true;
};

/**
 * Evaluates per-device memory footprints for (model, task, plan) on a
 * cluster.
 */
class MemoryModel
{
  public:
    explicit MemoryModel(MemoryModelOptions options = {});

    MemoryFootprint evaluate(const ModelDesc &desc, const TaskSpec &task,
                             const ParallelPlan &plan,
                             const ClusterSpec &cluster) const;

    const MemoryModelOptions &options() const { return options_; }

  private:
    MemoryModelOptions options_;
};

} // namespace madmax

#endif // MADMAX_CORE_MEMORY_MODEL_HH
