#include "core/validation.hh"

#include <cmath>

#include "util/strfmt.hh"
#include "util/table.hh"

namespace madmax
{

double
ValidationEntry::accuracy() const
{
    if (measured == 0.0)
        return modeled == 0.0 ? 1.0 : 0.0;
    return 1.0 - std::abs(modeled - measured) / std::abs(measured);
}

double
ValidationReport::meanAccuracy() const
{
    if (entries.empty())
        return 0.0;
    double acc = 0.0;
    for (const ValidationEntry &e : entries)
        acc += e.accuracy();
    return acc / static_cast<double>(entries.size());
}

double
ValidationReport::minAccuracy() const
{
    double worst = 1.0;
    for (const ValidationEntry &e : entries)
        worst = std::min(worst, e.accuracy());
    return worst;
}

std::string
ValidationReport::toString() const
{
    AsciiTable table({"metric", "measured", "modeled", "accuracy"});
    for (const ValidationEntry &e : entries) {
        auto fmt = [&](double v) {
            return e.unit == ValidationUnit::Fraction ? formatPercent(v)
                                                      : formatTime(v);
        };
        table.addRow({e.metric, fmt(e.measured), fmt(e.modeled),
                      formatPercent(e.accuracy())});
    }
    return table.toString() +
        strfmt("mean accuracy %s, worst %s\n",
               formatPercent(meanAccuracy()).c_str(),
               formatPercent(minAccuracy()).c_str());
}

ValidationReport
validate(const PerfReport &report, const MeasuredReference &reference)
{
    ValidationReport out;
    for (const auto &[cat, measured] : reference.serializedBreakdown) {
        if (measured <= 0.0)
            continue;
        double modeled = 0.0;
        auto it = report.serializedBreakdown.find(cat);
        if (it != report.serializedBreakdown.end())
            modeled = it->second;
        out.entries.push_back(ValidationEntry{
            "serialized " + toString(cat), measured, modeled});
    }
    if (reference.iterationTime > 0.0) {
        out.entries.push_back(ValidationEntry{
            "iteration time", reference.iterationTime,
            report.iterationTime});
    }
    if (reference.exposedFraction >= 0.0) {
        out.entries.push_back(ValidationEntry{
            "exposed comm fraction", reference.exposedFraction,
            report.exposedFraction(), ValidationUnit::Fraction});
    }
    return out;
}

double
modelFlopsUtilization(const PerfReport &report, const ModelDesc &desc,
                      const ClusterSpec &cluster, bool training)
{
    if (!report.valid || report.iterationTime <= 0.0)
        return 0.0;
    double pass_factor = training ? 3.0 : 1.0;
    double model_flops = pass_factor *
        desc.graph.totals().forwardFlopsPerSample *
        static_cast<double>(desc.globalBatchSize);
    return model_flops /
        (report.iterationTime *
         cluster.aggregatePeakFlops(desc.computeDtype));
}

} // namespace madmax
