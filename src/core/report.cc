#include "core/report.hh"

#include "util/strfmt.hh"

namespace madmax
{

const char *
evalErrorKindName(EvalErrorKind kind)
{
    switch (kind) {
    case EvalErrorKind::None: return "none";
    case EvalErrorKind::Config: return "config";
    case EvalErrorKind::Resource: return "resource";
    case EvalErrorKind::Internal: return "internal";
    }
    return "none";
}

double
PerfReport::throughput() const
{
    if (!valid || iterationTime <= 0.0)
        return 0.0;
    return static_cast<double>(globalBatchSize) / iterationTime;
}

double
PerfReport::tokensPerSecond() const
{
    return throughput() * static_cast<double>(contextLength);
}

double
PerfReport::overlapFraction() const
{
    return commTime > 0.0 ? (commTime - exposedCommTime) / commTime : 0.0;
}

double
PerfReport::exposedFraction() const
{
    return commTime > 0.0 ? exposedCommTime / commTime : 0.0;
}

double
PerfReport::deviceHoursPerSamples(double samples, int num_devices,
                                  double peak_ratio) const
{
    if (!valid || throughput() <= 0.0)
        return 0.0;
    double seconds = samples / throughput();
    return seconds / 3600.0 * static_cast<double>(num_devices) *
        peak_ratio;
}

std::string
PerfReport::summary() const
{
    std::string out;
    out += strfmt("model: %s  cluster: %s  task: %s\n", modelName.c_str(),
                  clusterName.c_str(), taskName.c_str());
    out += strfmt("plan: %s\n", plan.toString().c_str());
    if (failed()) {
        out += strfmt("FAILED (%s): %s\n", evalErrorKindName(errorKind),
                      errorMessage.c_str());
        return out;
    }
    if (!valid) {
        out += strfmt("INVALID (OOM): needs %s of %s usable per device\n",
                      formatBytes(memory.total()).c_str(),
                      formatBytes(memory.usableCapacity).c_str());
        return out;
    }
    out += strfmt("iteration: %s (serialized %s)\n",
                  formatTime(iterationTime).c_str(),
                  formatTime(serializedTime).c_str());
    out += strfmt("throughput: %s samples/s",
                  formatCount(throughput()).c_str());
    if (contextLength > 1) {
        out += strfmt("  (%s tokens/s)",
                      formatCount(tokensPerSecond()).c_str());
    }
    out += "\n";
    out += strfmt("compute: %s  comm: %s  exposed comm: %s (%s of comm)\n",
                  formatTime(computeTime).c_str(),
                  formatTime(commTime).c_str(),
                  formatTime(exposedCommTime).c_str(),
                  formatPercent(exposedFraction()).c_str());
    out += strfmt("memory/device: %s of %s usable",
                  formatBytes(memory.total()).c_str(),
                  formatBytes(memory.usableCapacity).c_str());
    // KV cache is only non-zero for phase-split inference; legacy
    // summaries keep their exact historical shape.
    if (memory.kvCacheBytes > 0.0) {
        out += strfmt("  (kv cache %s)",
                      formatBytes(memory.kvCacheBytes).c_str());
    }
    out += "\n";
    return out;
}

JsonValue
toJson(const PerfReport &r)
{
    JsonValue out;
    out.set("model", r.modelName);
    out.set("cluster", r.clusterName);
    out.set("task", r.taskName);
    out.set("plan", r.plan.toString());
    out.set("valid", r.valid);
    // Failed evaluations (an exception, not an OOM verdict) carry the
    // error pair; successful ones omit it entirely so the historical
    // schema — pinned byte-for-byte by goldens and the serve-smoke
    // byte-compare — is unchanged.
    if (r.failed()) {
        out.set("error", r.errorMessage);
        out.set("error_kind", evalErrorKindName(r.errorKind));
    }
    out.set("memory_bytes_per_device", r.memory.total());
    out.set("memory_usable_bytes", r.memory.usableCapacity);
    // Emitted only when a KV cache exists so every pre-phase report
    // (and golden) keeps its exact historical key set.
    if (r.memory.kvCacheBytes > 0.0)
        out.set("kv_cache_bytes_per_device", r.memory.kvCacheBytes);
    if (r.valid) {
        out.set("iteration_seconds", r.iterationTime);
        out.set("serialized_seconds", r.serializedTime);
        out.set("throughput_samples_per_sec", r.throughput());
        out.set("tokens_per_sec", r.tokensPerSecond());
        out.set("exposed_comm_seconds", r.exposedCommTime);
        out.set("comm_overlap_fraction", r.overlapFraction());
    }
    return out;
}

} // namespace madmax
