#include "core/stream_builder.hh"

#include <cstring>

#include "parallel/comm_planner.hh"
#include "util/logging.hh"

namespace madmax
{

namespace
{

/**
 * What one per-layer segment emission reads: the layer's compute cost
 * and label, its resolved collectives, and the graph topology for
 * data / gradient dependencies. Built from a StreamBuilder::LayerView
 * (concrete build) or from EvalContext tables (template build).
 */
struct SegmentSpec
{
    const ModelGraph *graph = nullptr;
    int idx = 0;
    const std::string *computeName = nullptr;
    double computeTime = 0.0;
    EventCategory category = EventCategory::Other;
    const std::vector<ResolvedCommOp> *ops = nullptr;
    bool prefetch = false;
    bool backward = false;
};

/**
 * The one shared per-layer emission: decides event order and
 * dependency wiring once, for both the concrete graph build
 * (GraphEmitter) and the symbolic template build (TemplateEmitter).
 *
 * The emitter interface, duck-typed:
 *   beginSegment(idx, backward)      start a segment;
 *   computeCountBefore()             compute events emitted so far;
 *   clearDeps()                      start staging a dependency list;
 *   depLocal(local)                  stage an earlier segment event;
 *   depComputeBack(k)                stage the k-th most recent
 *                                    compute event (param gathers);
 *   depFwdOut(layer) -> staged?      stage a layer's forward output
 *                                    if that layer is already built;
 *   depBwdOut(layer) -> staged?      same for backward outputs;
 *   addEvent(...) -> local id        emit with the staged deps;
 *   markCompute(local)               record the segment's compute;
 *   finishSegment(outLocal)          record the visible output.
 */
template <class Emitter>
void
emitLayerSegment(const SegmentSpec &s, Emitter &em)
{
    em.beginSegment(s.idx, s.backward);
    const Phase phase = s.backward ? Phase::Backward : Phase::Forward;

    // Parameter AllGathers have no data dependency; what limits them
    // is issue time. Without prefetching the gather is issued when the
    // consuming layer starts (i.e. after the preceding compute event
    // finishes); with prefetching it is issued one layer earlier and
    // can hide behind the preceding layer's compute (Fig. 9).
    auto stageParamGatherDeps = [&] {
        const size_t n = em.computeCountBefore();
        if (s.prefetch) {
            if (n >= 2)
                em.depComputeBack(2);
            return;
        }
        if (n >= 1)
            em.depComputeBack(1);
    };
    // Forward data dependencies: the producers' visible outputs.
    auto stageDataDeps = [&] {
        for (int d : s.graph->deps(s.idx))
            em.depFwdOut(d);
    };
    // Incoming gradients: the backward outputs of this layer's
    // consumers (or the end of forward for the final layer).
    auto stageGradDeps = [&] {
        bool any = false;
        for (int c : s.graph->consumers(s.idx)) {
            if (em.depBwdOut(c))
                any = true;
        }
        if (!any)
            em.depFwdOut(s.idx);
    };

    std::vector<int32_t> pre_ids;
    for (const ResolvedCommOp &op : *s.ops) {
        if (op.phase != phase || op.position != CommPosition::Pre)
            continue;
        em.clearDeps();
        if (op.kind == Collective::AllGather)
            stageParamGatherDeps();
        else if (s.backward)
            stageGradDeps();
        else
            stageDataDeps();
        pre_ids.push_back(em.addEvent(&op.tag,
                                      StreamKind::Communication,
                                      op.category, op.duration,
                                      op.blocking, op.algo));
    }

    // The layer's compute block.
    em.clearDeps();
    if (s.backward) {
        stageGradDeps();
        for (int32_t p : pre_ids)
            em.depLocal(p);
    } else {
        for (int32_t p : pre_ids)
            em.depLocal(p);
        stageDataDeps();
    }
    int32_t cid = em.addEvent(s.computeName, StreamKind::Compute,
                              s.category, s.computeTime, true,
                              CollAlgo::None);
    em.markCompute(cid);

    // Post comms; blocking ones become the layer's visible output.
    int32_t out = cid;
    for (const ResolvedCommOp &op : *s.ops) {
        if (op.phase != phase || op.position != CommPosition::Post)
            continue;
        em.clearDeps();
        em.depLocal(out);
        int32_t eid = em.addEvent(&op.tag, StreamKind::Communication,
                                  op.category, op.duration,
                                  op.blocking, op.algo);
        if (op.blocking)
            out = eid;
    }
    em.finishSegment(out);
}

/** Emits segments into a concrete flat EventGraph (buildGraph). */
class GraphEmitter
{
  public:
    GraphEmitter(EventGraph &graph, std::vector<int32_t> &fwdOut,
                 std::vector<int32_t> &bwdOut,
                 std::vector<int32_t> &computeEvents,
                 std::vector<int32_t> &scratchDeps)
        : graph_(graph), fwdOut_(fwdOut), bwdOut_(bwdOut),
          computeEvents_(computeEvents), deps_(scratchDeps)
    {}

    void beginSegment(int idx, bool backward)
    {
        idx_ = idx;
        backward_ = backward;
        base_ = static_cast<int32_t>(graph_.nodes.size());
    }

    size_t computeCountBefore() const { return computeEvents_.size(); }

    void clearDeps() { deps_.clear(); }
    void depLocal(int32_t local) { deps_.push_back(base_ + local); }

    void depComputeBack(size_t k)
    {
        deps_.push_back(computeEvents_[computeEvents_.size() - k]);
    }

    bool depFwdOut(int layer)
    {
        int32_t id = fwdOut_[static_cast<size_t>(layer)];
        if (id < 0)
            return false;
        deps_.push_back(id);
        return true;
    }

    bool depBwdOut(int layer)
    {
        int32_t id = bwdOut_[static_cast<size_t>(layer)];
        if (id < 0)
            return false;
        deps_.push_back(id);
        return true;
    }

    int32_t addEvent(const std::string *name, StreamKind stream,
                     EventCategory category, double duration,
                     bool blocking, CollAlgo algo)
    {
        EventNode node;
        node.name = name;
        node.stream = stream;
        node.category = category;
        node.algo = algo;
        node.blocking = blocking;
        node.backward = backward_;
        node.layerIdx = idx_;
        node.duration = duration;
        node.depsBegin = static_cast<uint32_t>(graph_.deps.size());
        node.depsCount = static_cast<uint32_t>(deps_.size());
        graph_.deps.insert(graph_.deps.end(), deps_.begin(),
                           deps_.end());
        graph_.nodes.push_back(node);
        return static_cast<int32_t>(graph_.nodes.size()) - 1 - base_;
    }

    void markCompute(int32_t local)
    {
        computeEvents_.push_back(base_ + local);
    }

    void finishSegment(int32_t outLocal)
    {
        (backward_ ? bwdOut_ : fwdOut_)[static_cast<size_t>(idx_)] =
            base_ + outLocal;
    }

  private:
    EventGraph &graph_;
    std::vector<int32_t> &fwdOut_;
    std::vector<int32_t> &bwdOut_;
    std::vector<int32_t> &computeEvents_;
    std::vector<int32_t> &deps_;
    int idx_ = 0;
    bool backward_ = false;
    int32_t base_ = 0;
};

/**
 * Emits segments symbolically into a SegmentSet arena
 * (buildSegmentSet). Whether a FwdOut/BwdOut/ComputeAt dependency
 * exists is decided here, from emission order alone: in the forward
 * pass layer d's output exists iff d < idx (dependencies point
 * backwards), in the backward pass every forward output exists and
 * consumer c's backward output exists iff c > idx; the compute-event
 * count before a segment is its emission ordinal — the number of
 * segments already in the set, plus N for backward sets (the whole
 * forward pass precedes them). That is why the arena is
 * plan-independent.
 */
class TemplateEmitter
{
  public:
    TemplateEmitter(SegmentSet &set, size_t ordinalBase)
        : set_(set), ordinalBase_(ordinalBase)
    {}

    void beginSegment(int idx, bool backward)
    {
        idx_ = idx;
        backward_ = backward;
        segEventBase_ = set_.events.size();
        staged_ = 0;
        SegmentSet::Seg seg;
        seg.eventBegin = static_cast<uint32_t>(set_.events.size());
        seg.depBegin = static_cast<uint32_t>(set_.deps.size());
        set_.segs.push_back(seg);
    }

    size_t computeCountBefore() const
    {
        return ordinalBase_ + set_.segs.size() - 1;
    }

    void clearDeps() { staged_ = 0; }

    void depLocal(int32_t local)
    {
        // Fold to an arena index so the splicer resolves it with the
        // run's node shift alone.
        stage(SymDep{SymDep::Kind::Local,
                     static_cast<int32_t>(segEventBase_) + local});
    }

    void depComputeBack(size_t k)
    {
        // Fold "k-th most recent compute" to the absolute emission
        // ordinal it names — ordinal arithmetic is plan-independent.
        stage(SymDep{SymDep::Kind::ComputeAt,
                     static_cast<int32_t>(computeCountBefore() - k)});
    }

    bool depFwdOut(int layer)
    {
        if (!backward_ && layer >= idx_)
            return false;
        stage(SymDep{SymDep::Kind::FwdOut, layer});
        return true;
    }

    bool depBwdOut(int layer)
    {
        if (!backward_ || layer <= idx_)
            return false;
        stage(SymDep{SymDep::Kind::BwdOut, layer});
        return true;
    }

    int32_t addEvent(const std::string *name, StreamKind stream,
                     EventCategory category, double duration,
                     bool blocking, CollAlgo algo)
    {
        EventNode ev;
        ev.name = name;
        ev.stream = stream;
        ev.category = category;
        ev.algo = algo;
        ev.blocking = blocking;
        ev.backward = backward_;
        ev.layerIdx = idx_;
        ev.duration = duration;
        // Arena-relative cumulative offset — exactly what the splicer
        // needs, since instantiated dependency lists keep arena order.
        ev.depsBegin =
            static_cast<uint32_t>(set_.deps.size() - staged_);
        ev.depsCount = static_cast<uint32_t>(staged_);
        staged_ = 0;
        set_.events.push_back(ev);
        return static_cast<int32_t>(set_.events.size() -
                                    segEventBase_) -
               1;
    }

    void markCompute(int32_t local)
    {
        set_.segs.back().computeLocal = local;
    }
    void finishSegment(int32_t outLocal)
    {
        set_.segs.back().outputLocal = outLocal;
    }

  private:
    void stage(SymDep dep)
    {
        set_.deps.push_back(dep);
        ++staged_;
    }

    SegmentSet &set_;
    size_t ordinalBase_;
    size_t segEventBase_ = 0; ///< First arena event of this segment.
    size_t staged_ = 0; ///< Symbolic deps staged since clearDeps().
    int idx_ = 0;
    bool backward_ = false;
};

} // namespace

const std::string &
iterEndEventName()
{
    static const std::string name = "iter_end";
    return name;
}

void
appendIterEnd(EventGraph &graph, bool backward)
{
    // Iteration-end barrier: waits for everything, including
    // non-blocking gradient collectives.
    EventNode node;
    node.name = &iterEndEventName();
    node.stream = StreamKind::Compute;
    node.category = EventCategory::Other;
    node.blocking = true;
    node.backward = backward;
    node.layerIdx = -1;
    node.duration = 0.0;
    const size_t n = graph.nodes.size();
    node.depsBegin = static_cast<uint32_t>(graph.deps.size());
    node.depsCount = static_cast<uint32_t>(n);
    for (size_t i = 0; i < n; ++i)
        graph.deps.push_back(static_cast<int32_t>(i));
    graph.nodes.push_back(node);
}

void
buildSegmentSet(
    const ModelDesc &desc,
    const std::vector<EvalContext::LayerCosts> &costs,
    const std::vector<std::vector<ResolvedCommOp>> &perLayerOps,
    bool backwardPass, bool prefetch, SegmentSet &out)
{
    const int num_layers = desc.graph.numLayers();
    out.events.clear();
    out.deps.clear();
    out.segs.clear();
    out.segs.reserve(static_cast<size_t>(num_layers) + 1);

    // Emit in emission order — forward layer 0..N-1, backward layer
    // N-1..0 — so consecutive layers are consecutive arena ranges and
    // a segment's emission ordinal is its position in the set (plus N
    // for backward sets).
    TemplateEmitter em(out, backwardPass
                                ? static_cast<size_t>(num_layers)
                                : 0);
    for (int e = 0; e < num_layers; ++e) {
        const int i = backwardPass ? num_layers - 1 - e : e;
        const size_t s = static_cast<size_t>(i);
        const EvalContext::LayerCosts &lc = costs[s];
        SegmentSpec spec;
        spec.graph = &desc.graph;
        spec.idx = i;
        spec.computeName = backwardPass ? &lc.bwdName : lc.fwdName;
        spec.computeTime = backwardPass ? lc.bwdTime : lc.fwdTime;
        spec.category = lc.category;
        spec.ops = &perLayerOps[s];
        spec.prefetch = prefetch;
        spec.backward = backwardPass;
        emitLayerSegment(spec, em);
    }

    SegmentSet::Seg sentinel;
    sentinel.eventBegin = static_cast<uint32_t>(out.events.size());
    sentinel.depBegin = static_cast<uint32_t>(out.deps.size());
    out.segs.push_back(sentinel);
}

void
spliceSegmentRuns(const SpliceRun *runs, size_t numRuns, int numLayers,
                  bool withBackward, EventGraph &graph,
                  std::vector<int32_t> &fwdOut,
                  std::vector<int32_t> &bwdOut,
                  std::vector<int32_t> &computeIds)
{
    const size_t nl = static_cast<size_t>(numLayers);

    // Size the whole graph once (segments plus the iteration-end
    // barrier, which depends on every other node), then fill through
    // raw pointers — no per-segment vector bookkeeping. Run extents
    // come straight from the arena offsets.
    size_t total_nodes = 0;
    size_t total_deps = 0;
    for (size_t r = 0; r < numRuns; ++r) {
        const SegmentSet::Seg *segs = runs[r].set->segs.data();
        const uint32_t lo = runs[r].first;
        const uint32_t hi = runs[r].first + runs[r].count;
        total_nodes += segs[hi].eventBegin - segs[lo].eventBegin;
        total_deps += segs[hi].depBegin - segs[lo].depBegin;
    }
    graph.nodes.resize(total_nodes + 1);
    graph.deps.resize(total_deps + total_nodes);
    fwdOut.assign(nl, -1);
    bwdOut.assign(nl, -1);
    // Indexed by emission ordinal; every slot is written in a run's
    // pass 1 before any dependency reads it, so no fill value needed.
    computeIds.resize(withBackward ? 2 * nl : nl);

    EventNode *nodes = graph.nodes.data();
    int32_t *deps = graph.deps.data();
    size_t node_pos = 0;
    size_t dep_pos = 0;
    for (size_t r = 0; r < numRuns; ++r) {
        const SegmentSet &set = *runs[r].set;
        const SegmentSet::Seg *segs = set.segs.data();
        const uint32_t first = runs[r].first;
        const uint32_t last = runs[r].first + runs[r].count;
        const uint32_t ev_begin = segs[first].eventBegin;
        const size_t run_nodes = segs[last].eventBegin - ev_begin;
        const uint32_t dp_begin = segs[first].depBegin;
        const size_t run_deps = segs[last].depBegin - dp_begin;

        // Bulk node copy — one contiguous read stream for the whole
        // run, with a run-constant dependency-offset shift (the
        // arena's cumulative offsets and the graph's concrete ones
        // differ by the same amount for every event of the run).
        const EventNode *src = set.events.data() + ev_begin;
        const uint32_t dep_shift =
            static_cast<uint32_t>(dep_pos) - dp_begin;
        for (size_t e = 0; e < run_nodes; ++e) {
            EventNode &dst = nodes[node_pos + e];
            dst = src[e];
            dst.depsBegin += dep_shift;
        }

        // Pass 1: record every segment's visible output and compute
        // event id — pure index arithmetic, independent of the
        // dependency sweep. computeIds is indexed by emission ordinal
        // (set index, plus N for backward sets).
        const bool bwd = runs[r].backward;
        const int32_t node_shift = static_cast<int32_t>(node_pos) -
                                   static_cast<int32_t>(ev_begin);
        int32_t *coutBase = computeIds.data() + (bwd ? nl : 0);
        int32_t *outArr = (bwd ? bwdOut : fwdOut).data();
        for (uint32_t j = first; j < last; ++j) {
            const int32_t base =
                node_shift + static_cast<int32_t>(segs[j].eventBegin);
            // Set entry j is layer j forward, layer N-1-j backward.
            const size_t layer = bwd ? nl - 1 - j : j;
            outArr[layer] = base + segs[j].outputLocal;
            coutBase[j] = base + segs[j].computeLocal;
        }

        // Pass 2: one flat, branch-predictable sweep resolves the
        // run's whole symbolic-dependency range — every kind is a
        // single indexed load or add against state pass 1 (or an
        // earlier run) already filled; dependencies only ever point
        // at earlier emissions, so nothing here races the fill.
        const SymDep *sym = set.deps.data();
        int32_t *out = deps + dep_pos;
        const uint32_t dp_end = segs[last].depBegin;
        for (uint32_t k = dp_begin; k < dp_end; ++k) {
            int32_t resolved = 0;
            switch (sym[k].kind) {
              case SymDep::Kind::Local:
                resolved = node_shift + sym[k].value;
                break;
              case SymDep::Kind::FwdOut:
                resolved = fwdOut[static_cast<size_t>(sym[k].value)];
                break;
              case SymDep::Kind::BwdOut:
                resolved = bwdOut[static_cast<size_t>(sym[k].value)];
                break;
              case SymDep::Kind::ComputeAt:
                resolved =
                    computeIds[static_cast<size_t>(sym[k].value)];
                break;
            }
            out[k - dp_begin] = resolved;
        }
        node_pos += run_nodes;
        dep_pos += run_deps;
    }

    // Iteration-end barrier, wired exactly as appendIterEnd does.
    EventNode &end = nodes[total_nodes];
    end.name = &iterEndEventName();
    end.stream = StreamKind::Compute;
    end.category = EventCategory::Other;
    end.algo = CollAlgo::None; // nodes[] is reused — clear explicitly.
    end.blocking = true;
    end.backward = withBackward;
    end.layerIdx = -1;
    end.duration = 0.0;
    end.depsBegin = static_cast<uint32_t>(dep_pos);
    end.depsCount = static_cast<uint32_t>(total_nodes);
    for (size_t i = 0; i < total_nodes; ++i)
        deps[dep_pos + i] = static_cast<int32_t>(i);
}

StreamBuilder::StreamBuilder(const EvalContext &context,
                             const ParallelPlan &plan)
    : desc_(context.desc()),
      needsBackward_(context.task().needsBackward()),
      fsdpPrefetch_(plan.fsdpPrefetch)
{
    // Resolve each class's strategy once; layers index the result.
    const LayerClass all_classes[] = {
        LayerClass::SparseEmbedding, LayerClass::DenseEmbedding,
        LayerClass::BaseDense, LayerClass::Transformer, LayerClass::MoE};
    HierStrategy by_class[5];
    for (LayerClass cls : all_classes)
        by_class[static_cast<size_t>(cls)] = plan.strategyFor(cls);

    const int num_layers = desc_.graph.numLayers();
    layers_.resize(static_cast<size_t>(num_layers));
    for (int i = 0; i < num_layers; ++i) {
        const EvalContext::LayerCosts &lc = context.layerCosts(i);
        const LayerClass cls = desc_.graph.layer(i).layerClass();
        LayerView &lv = layers_[static_cast<size_t>(i)];
        lv.fwdTime = lc.fwdTime;
        lv.bwdTime = lc.bwdTime;
        lv.category = lc.category;
        lv.fwdName = lc.fwdName;
        lv.bwdName = &lc.bwdName;
        lv.ops =
            &context.plannedOps(i, by_class[static_cast<size_t>(cls)]);
    }
}

StreamBuilder::StreamBuilder(const ModelDesc &desc, const TaskSpec &task,
                             const ParallelPlan &plan,
                             const ClusterSpec &cluster,
                             const LayerProcessor &processor,
                             const CollectiveCostModel &collectives)
    : desc_(desc), needsBackward_(task.needsBackward()),
      fsdpPrefetch_(plan.fsdpPrefetch)
{
    CommPlanner planner(desc, task, plan, cluster);
    const int num_layers = desc.graph.numLayers();

    ownedBwdNames_.resize(static_cast<size_t>(num_layers));
    ownedOps_.resize(static_cast<size_t>(num_layers));
    for (int i = 0; i < num_layers; ++i) {
        const Layer &layer = desc.graph.layer(i);
        ownedBwdNames_[static_cast<size_t>(i)] = layer.name() + "'";
        std::vector<ResolvedCommOp> resolved;
        for (CommOp &op : planner.planLayer(i)) {
            CollectiveEstimate est =
                collectives.estimate(op.kind, op.scope, op.bytes);
            if (est.seconds <= 0.0)
                continue;
            resolved.push_back(ResolvedCommOp{
                op.phase, op.position, op.kind, commCategoryOf(op.kind),
                op.blocking, est.seconds, std::move(op.tag), est.algo});
        }
        ownedOps_[static_cast<size_t>(i)] = std::move(resolved);
    }

    // Views are taken in a second pass: the backing vectors are fully
    // sized above, so element addresses are stable from here on.
    layers_.resize(static_cast<size_t>(num_layers));
    for (int i = 0; i < num_layers; ++i) {
        const size_t s = static_cast<size_t>(i);
        const Layer &layer = desc.graph.layer(i);
        LayerView &lv = layers_[s];
        lv.fwdTime = processor.forwardTime(layer);
        lv.bwdTime = processor.backwardTime(layer, task);
        lv.category = processor.categoryOf(layer);
        lv.fwdName = &layer.name();
        lv.bwdName = &ownedBwdNames_[s];
        lv.ops = &ownedOps_[s];
    }
}

EventGraph
StreamBuilder::buildGraph() const
{
    const int num_layers = desc_.graph.numLayers();
    EventGraph graph;
    std::vector<int32_t> fwd_out(static_cast<size_t>(num_layers), -1);
    std::vector<int32_t> bwd_out(static_cast<size_t>(num_layers), -1);
    std::vector<int32_t> compute_events;
    std::vector<int32_t> scratch_deps;
    GraphEmitter em(graph, fwd_out, bwd_out, compute_events,
                    scratch_deps);

    auto specFor = [&](int i, bool backward) {
        const LayerView &lv = layers_[static_cast<size_t>(i)];
        SegmentSpec spec;
        spec.graph = &desc_.graph;
        spec.idx = i;
        spec.computeName = backward ? lv.bwdName : lv.fwdName;
        spec.computeTime = backward ? lv.bwdTime : lv.fwdTime;
        spec.category = lv.category;
        spec.ops = lv.ops;
        spec.prefetch = fsdpPrefetch_;
        spec.backward = backward;
        return spec;
    };

    for (int i = 0; i < num_layers; ++i) {
        SegmentSpec spec = specFor(i, false);
        emitLayerSegment(spec, em);
    }
    if (needsBackward_) {
        for (int i = num_layers - 1; i >= 0; --i) {
            SegmentSpec spec = specFor(i, true);
            emitLayerSegment(spec, em);
        }
    }
    appendIterEnd(graph, needsBackward_);
    return graph;
}

std::vector<TraceEvent>
StreamBuilder::build() const
{
    EventGraph graph = buildGraph();
    std::vector<TraceEvent> events;
    events.reserve(graph.nodes.size());
    for (size_t i = 0; i < graph.nodes.size(); ++i)
        events.push_back(graph.materialize(i));
    return events;
}

} // namespace madmax
