#include "core/stream_builder.hh"

#include "util/logging.hh"

namespace madmax
{

StreamBuilder::StreamBuilder(const ModelDesc &desc, const TaskSpec &task,
                             const ParallelPlan &plan,
                             const ClusterSpec &cluster,
                             const LayerProcessor &processor,
                             const CollectiveModel &collectives)
    : desc_(desc), task_(task), plan_(plan), cluster_(cluster),
      processor_(processor), collectives_(collectives),
      planner_(desc_, task_, plan_, cluster_)
{
}

EventCategory
StreamBuilder::categoryOf(Collective kind)
{
    switch (kind) {
      case Collective::AllReduce: return EventCategory::AllReduce;
      case Collective::AllGather: return EventCategory::AllGather;
      case Collective::ReduceScatter: return EventCategory::ReduceScatter;
      case Collective::All2All: return EventCategory::All2All;
      case Collective::Broadcast: return EventCategory::Other;
    }
    panic("categoryOf: unknown Collective");
}

int
StreamBuilder::addEvent(BuildState &st, TraceEvent ev) const
{
    ev.id = st.nextId++;
    st.events.push_back(std::move(ev));
    return st.events.back().id;
}

std::vector<int>
StreamBuilder::paramGatherDeps(const BuildState &st) const
{
    // Parameter AllGathers have no data dependency; what limits them
    // is issue time. Without prefetching the gather is issued when the
    // consuming layer starts (i.e. after the preceding compute event
    // finishes); with prefetching it is issued one layer earlier and
    // can hide behind the preceding layer's compute (Fig. 9).
    const size_t n = st.computeEvents.size();
    if (plan_.fsdpPrefetch) {
        if (n >= 2)
            return {st.computeEvents[n - 2]};
        return {};
    }
    if (n >= 1)
        return {st.computeEvents[n - 1]};
    return {};
}

void
StreamBuilder::buildForwardLayer(BuildState &st, int idx) const
{
    const Layer &layer = desc_.graph.layer(idx);
    std::vector<CommOp> ops = planner_.planLayer(idx);

    std::vector<int> pre_ids;
    for (const CommOp &op : ops) {
        if (op.phase != Phase::Forward || op.position != CommPosition::Pre)
            continue;
        double dur = collectives_.time(op.kind, op.scope, op.bytes);
        if (dur <= 0.0)
            continue;
        std::vector<int> deps;
        if (op.kind == Collective::AllGather) {
            deps = paramGatherDeps(st);
        } else {
            // Data-dependent pre-comm (e.g. MoE dispatch).
            for (int d : desc_.graph.deps(idx)) {
                if (st.fwdOutput[static_cast<size_t>(d)] >= 0)
                    deps.push_back(st.fwdOutput[static_cast<size_t>(d)]);
            }
        }
        pre_ids.push_back(addEvent(st, TraceEvent{
            -1, op.tag, StreamKind::Communication, categoryOf(op.kind),
            dur, std::move(deps), op.blocking, idx, false}));
    }

    // The layer's compute block.
    std::vector<int> cdeps = pre_ids;
    for (int d : desc_.graph.deps(idx)) {
        if (st.fwdOutput[static_cast<size_t>(d)] >= 0)
            cdeps.push_back(st.fwdOutput[static_cast<size_t>(d)]);
    }
    int cid = addEvent(st, TraceEvent{
        -1, layer.name(), StreamKind::Compute,
        processor_.categoryOf(layer), processor_.forwardTime(layer),
        std::move(cdeps), true, idx, false});
    st.computeEvents.push_back(cid);

    // Post comms; blocking ones become the layer's visible output.
    int out = cid;
    for (const CommOp &op : ops) {
        if (op.phase != Phase::Forward || op.position != CommPosition::Post)
            continue;
        double dur = collectives_.time(op.kind, op.scope, op.bytes);
        if (dur <= 0.0)
            continue;
        int eid = addEvent(st, TraceEvent{
            -1, op.tag, StreamKind::Communication, categoryOf(op.kind),
            dur, {out}, op.blocking, idx, false});
        if (op.blocking)
            out = eid;
    }
    st.fwdOutput[static_cast<size_t>(idx)] = out;
}

void
StreamBuilder::buildBackwardLayer(BuildState &st, int idx) const
{
    const Layer &layer = desc_.graph.layer(idx);
    std::vector<CommOp> ops = planner_.planLayer(idx);

    // Incoming gradients: the backward outputs of this layer's
    // consumers (or the end of forward for the final layer).
    std::vector<int> grad_deps;
    for (int c : desc_.graph.consumers(idx)) {
        if (st.bwdOutput[static_cast<size_t>(c)] >= 0)
            grad_deps.push_back(st.bwdOutput[static_cast<size_t>(c)]);
    }
    if (grad_deps.empty() &&
        st.fwdOutput[static_cast<size_t>(idx)] >= 0) {
        grad_deps.push_back(st.fwdOutput[static_cast<size_t>(idx)]);
    }

    std::vector<int> pre_ids;
    for (const CommOp &op : ops) {
        if (op.phase != Phase::Backward ||
            op.position != CommPosition::Pre) {
            continue;
        }
        double dur = collectives_.time(op.kind, op.scope, op.bytes);
        if (dur <= 0.0)
            continue;
        std::vector<int> deps = op.kind == Collective::AllGather
            ? paramGatherDeps(st)
            : grad_deps;
        pre_ids.push_back(addEvent(st, TraceEvent{
            -1, op.tag, StreamKind::Communication, categoryOf(op.kind),
            dur, std::move(deps), op.blocking, idx, true}));
    }

    double bdur = processor_.backwardTime(layer, task_);
    std::vector<int> cdeps = grad_deps;
    cdeps.insert(cdeps.end(), pre_ids.begin(), pre_ids.end());
    int cid = addEvent(st, TraceEvent{
        -1, layer.name() + "'", StreamKind::Compute,
        processor_.categoryOf(layer), bdur, std::move(cdeps), true, idx,
        true});
    st.computeEvents.push_back(cid);

    int out = cid;
    for (const CommOp &op : ops) {
        if (op.phase != Phase::Backward ||
            op.position != CommPosition::Post) {
            continue;
        }
        double dur = collectives_.time(op.kind, op.scope, op.bytes);
        if (dur <= 0.0)
            continue;
        int eid = addEvent(st, TraceEvent{
            -1, op.tag, StreamKind::Communication, categoryOf(op.kind),
            dur, {out}, op.blocking, idx, true});
        if (op.blocking)
            out = eid;
    }
    st.bwdOutput[static_cast<size_t>(idx)] = out;
}

std::vector<TraceEvent>
StreamBuilder::build() const
{
    const int num_layers = desc_.graph.numLayers();
    BuildState st;
    st.fwdOutput.assign(static_cast<size_t>(num_layers), -1);
    st.bwdOutput.assign(static_cast<size_t>(num_layers), -1);

    for (int i = 0; i < num_layers; ++i)
        buildForwardLayer(st, i);
    if (task_.needsBackward()) {
        for (int i = num_layers - 1; i >= 0; --i)
            buildBackwardLayer(st, i);
    }

    // Iteration-end barrier: waits for everything, including
    // non-blocking gradient collectives.
    std::vector<int> all_ids;
    all_ids.reserve(st.events.size());
    for (const TraceEvent &ev : st.events)
        all_ids.push_back(ev.id);
    addEvent(st, TraceEvent{
        -1, "iter_end", StreamKind::Compute, EventCategory::Other, 0.0,
        std::move(all_ids), true, -1, task_.needsBackward()});

    return std::move(st.events);
}

} // namespace madmax
