#include "core/stream_builder.hh"

#include "parallel/comm_planner.hh"
#include "util/logging.hh"

namespace madmax
{

namespace
{

const std::string kIterEndName = "iter_end";

} // namespace

StreamBuilder::StreamBuilder(const EvalContext &context,
                             const ParallelPlan &plan)
    : desc_(context.desc()),
      needsBackward_(context.task().needsBackward()),
      fsdpPrefetch_(plan.fsdpPrefetch)
{
    // Resolve each class's strategy once; layers index the result.
    const LayerClass all_classes[] = {
        LayerClass::SparseEmbedding, LayerClass::DenseEmbedding,
        LayerClass::BaseDense, LayerClass::Transformer, LayerClass::MoE};
    HierStrategy by_class[5];
    for (LayerClass cls : all_classes)
        by_class[static_cast<size_t>(cls)] = plan.strategyFor(cls);

    const int num_layers = desc_.graph.numLayers();
    layers_.resize(static_cast<size_t>(num_layers));
    for (int i = 0; i < num_layers; ++i) {
        const EvalContext::LayerCosts &lc = context.layerCosts(i);
        const LayerClass cls = desc_.graph.layer(i).layerClass();
        LayerView &lv = layers_[static_cast<size_t>(i)];
        lv.fwdTime = lc.fwdTime;
        lv.bwdTime = lc.bwdTime;
        lv.category = lc.category;
        lv.fwdName = lc.fwdName;
        lv.bwdName = &lc.bwdName;
        lv.ops =
            &context.plannedOps(i, by_class[static_cast<size_t>(cls)]);
    }
}

StreamBuilder::StreamBuilder(const ModelDesc &desc, const TaskSpec &task,
                             const ParallelPlan &plan,
                             const ClusterSpec &cluster,
                             const LayerProcessor &processor,
                             const CollectiveModel &collectives)
    : desc_(desc), needsBackward_(task.needsBackward()),
      fsdpPrefetch_(plan.fsdpPrefetch)
{
    CommPlanner planner(desc, task, plan, cluster);
    const int num_layers = desc.graph.numLayers();

    ownedBwdNames_.resize(static_cast<size_t>(num_layers));
    ownedOps_.resize(static_cast<size_t>(num_layers));
    for (int i = 0; i < num_layers; ++i) {
        const Layer &layer = desc.graph.layer(i);
        ownedBwdNames_[static_cast<size_t>(i)] = layer.name() + "'";
        std::vector<ResolvedCommOp> resolved;
        for (CommOp &op : planner.planLayer(i)) {
            double dur = collectives.time(op.kind, op.scope, op.bytes);
            if (dur <= 0.0)
                continue;
            resolved.push_back(ResolvedCommOp{
                op.phase, op.position, op.kind, commCategoryOf(op.kind),
                op.blocking, dur, std::move(op.tag)});
        }
        ownedOps_[static_cast<size_t>(i)] = std::move(resolved);
    }

    // Views are taken in a second pass: the backing vectors are fully
    // sized above, so element addresses are stable from here on.
    layers_.resize(static_cast<size_t>(num_layers));
    for (int i = 0; i < num_layers; ++i) {
        const size_t s = static_cast<size_t>(i);
        const Layer &layer = desc.graph.layer(i);
        LayerView &lv = layers_[s];
        lv.fwdTime = processor.forwardTime(layer);
        lv.bwdTime = processor.backwardTime(layer, task);
        lv.category = processor.categoryOf(layer);
        lv.fwdName = &layer.name();
        lv.bwdName = &ownedBwdNames_[s];
        lv.ops = &ownedOps_[s];
    }
}

int32_t
StreamBuilder::addEvent(BuildState &st, const std::string *name,
                        StreamKind stream, EventCategory category,
                        double duration, const std::vector<int32_t> &deps,
                        bool blocking, int layer_idx, bool backward) const
{
    EventNode node;
    node.name = name;
    node.stream = stream;
    node.category = category;
    node.blocking = blocking;
    node.backward = backward;
    node.layerIdx = layer_idx;
    node.duration = duration;
    node.depsBegin = static_cast<uint32_t>(st.graph.deps.size());
    node.depsCount = static_cast<uint32_t>(deps.size());
    st.graph.deps.insert(st.graph.deps.end(), deps.begin(), deps.end());
    st.graph.nodes.push_back(node);
    return static_cast<int32_t>(st.graph.nodes.size()) - 1;
}

void
StreamBuilder::paramGatherDeps(const BuildState &st,
                               std::vector<int32_t> &deps) const
{
    // Parameter AllGathers have no data dependency; what limits them
    // is issue time. Without prefetching the gather is issued when the
    // consuming layer starts (i.e. after the preceding compute event
    // finishes); with prefetching it is issued one layer earlier and
    // can hide behind the preceding layer's compute (Fig. 9).
    const size_t n = st.computeEvents.size();
    if (fsdpPrefetch_) {
        if (n >= 2)
            deps.push_back(st.computeEvents[n - 2]);
        return;
    }
    if (n >= 1)
        deps.push_back(st.computeEvents[n - 1]);
}

void
StreamBuilder::buildForwardLayer(BuildState &st, int idx) const
{
    const LayerView &lv = layers_[static_cast<size_t>(idx)];

    std::vector<int32_t> pre_ids;
    for (const ResolvedCommOp &op : *lv.ops) {
        if (op.phase != Phase::Forward || op.position != CommPosition::Pre)
            continue;
        std::vector<int32_t> &deps = st.scratchDeps;
        deps.clear();
        if (op.kind == Collective::AllGather) {
            paramGatherDeps(st, deps);
        } else {
            // Data-dependent pre-comm (e.g. MoE dispatch).
            for (int d : desc_.graph.deps(idx)) {
                if (st.fwdOutput[static_cast<size_t>(d)] >= 0)
                    deps.push_back(st.fwdOutput[static_cast<size_t>(d)]);
            }
        }
        pre_ids.push_back(addEvent(st, &op.tag,
                                   StreamKind::Communication,
                                   op.category, op.duration, deps,
                                   op.blocking, idx, false));
    }

    // The layer's compute block.
    std::vector<int32_t> &cdeps = st.scratchDeps;
    cdeps = pre_ids;
    for (int d : desc_.graph.deps(idx)) {
        if (st.fwdOutput[static_cast<size_t>(d)] >= 0)
            cdeps.push_back(st.fwdOutput[static_cast<size_t>(d)]);
    }
    int32_t cid = addEvent(st, lv.fwdName, StreamKind::Compute,
                           lv.category, lv.fwdTime, cdeps, true, idx,
                           false);
    st.computeEvents.push_back(cid);

    // Post comms; blocking ones become the layer's visible output.
    int32_t out = cid;
    for (const ResolvedCommOp &op : *lv.ops) {
        if (op.phase != Phase::Forward || op.position != CommPosition::Post)
            continue;
        std::vector<int32_t> &deps = st.scratchDeps;
        deps.assign(1, out);
        int32_t eid = addEvent(st, &op.tag, StreamKind::Communication,
                               op.category, op.duration, deps,
                               op.blocking, idx, false);
        if (op.blocking)
            out = eid;
    }
    st.fwdOutput[static_cast<size_t>(idx)] = out;
}

void
StreamBuilder::buildBackwardLayer(BuildState &st, int idx) const
{
    const LayerView &lv = layers_[static_cast<size_t>(idx)];

    // Incoming gradients: the backward outputs of this layer's
    // consumers (or the end of forward for the final layer).
    std::vector<int32_t> grad_deps;
    for (int c : desc_.graph.consumers(idx)) {
        if (st.bwdOutput[static_cast<size_t>(c)] >= 0)
            grad_deps.push_back(st.bwdOutput[static_cast<size_t>(c)]);
    }
    if (grad_deps.empty() &&
        st.fwdOutput[static_cast<size_t>(idx)] >= 0) {
        grad_deps.push_back(st.fwdOutput[static_cast<size_t>(idx)]);
    }

    std::vector<int32_t> pre_ids;
    for (const ResolvedCommOp &op : *lv.ops) {
        if (op.phase != Phase::Backward ||
            op.position != CommPosition::Pre) {
            continue;
        }
        std::vector<int32_t> &deps = st.scratchDeps;
        if (op.kind == Collective::AllGather) {
            deps.clear();
            paramGatherDeps(st, deps);
        } else {
            deps = grad_deps;
        }
        pre_ids.push_back(addEvent(st, &op.tag,
                                   StreamKind::Communication,
                                   op.category, op.duration, deps,
                                   op.blocking, idx, true));
    }

    std::vector<int32_t> &cdeps = st.scratchDeps;
    cdeps = grad_deps;
    cdeps.insert(cdeps.end(), pre_ids.begin(), pre_ids.end());
    int32_t cid = addEvent(st, lv.bwdName, StreamKind::Compute,
                           lv.category, lv.bwdTime, cdeps, true, idx,
                           true);
    st.computeEvents.push_back(cid);

    int32_t out = cid;
    for (const ResolvedCommOp &op : *lv.ops) {
        if (op.phase != Phase::Backward ||
            op.position != CommPosition::Post) {
            continue;
        }
        std::vector<int32_t> &deps = st.scratchDeps;
        deps.assign(1, out);
        int32_t eid = addEvent(st, &op.tag, StreamKind::Communication,
                               op.category, op.duration, deps,
                               op.blocking, idx, true);
        if (op.blocking)
            out = eid;
    }
    st.bwdOutput[static_cast<size_t>(idx)] = out;
}

EventGraph
StreamBuilder::buildGraph() const
{
    const int num_layers = desc_.graph.numLayers();
    BuildState st;
    st.fwdOutput.assign(static_cast<size_t>(num_layers), -1);
    st.bwdOutput.assign(static_cast<size_t>(num_layers), -1);

    for (int i = 0; i < num_layers; ++i)
        buildForwardLayer(st, i);
    if (needsBackward_) {
        for (int i = num_layers - 1; i >= 0; --i)
            buildBackwardLayer(st, i);
    }

    // Iteration-end barrier: waits for everything, including
    // non-blocking gradient collectives.
    std::vector<int32_t> all_ids(st.graph.nodes.size());
    for (size_t i = 0; i < all_ids.size(); ++i)
        all_ids[i] = static_cast<int32_t>(i);
    addEvent(st, &kIterEndName, StreamKind::Compute,
             EventCategory::Other, 0.0, all_ids, true, -1,
             needsBackward_);

    return std::move(st.graph);
}

std::vector<TraceEvent>
StreamBuilder::build() const
{
    EventGraph graph = buildGraph();
    std::vector<TraceEvent> events;
    events.reserve(graph.nodes.size());
    for (size_t i = 0; i < graph.nodes.size(); ++i)
        events.push_back(graph.materialize(i));
    return events;
}

} // namespace madmax
