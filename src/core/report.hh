/**
 * @file
 * Performance report: everything MAD-Max tells you about one
 * (model, task, plan, cluster) evaluation — iteration time,
 * throughput, exposed communication, serialized-execution and
 * communication breakdowns (Fig. 20), and the memory verdict.
 */

#ifndef MADMAX_CORE_REPORT_HH
#define MADMAX_CORE_REPORT_HH

#include <map>
#include <string>

#include "config/json.hh"
#include "core/memory_model.hh"
#include "hw/cluster.hh"
#include "parallel/strategy.hh"
#include "trace/trace_event.hh"

namespace madmax
{

/**
 * Why one request's evaluation failed, when it did. The engine
 * isolates per-request exceptions (see EvalEngine::evaluateAll): a
 * throwing plan evaluation produces a report with `errorKind` set
 * instead of taking down its whole batch. The serving layer maps the
 * kinds onto its error taxonomy (Config -> 400, Resource -> 503,
 * Internal -> 500).
 */
enum class EvalErrorKind
{
    None,     ///< The evaluation completed (report is meaningful).
    Config,   ///< ConfigError: the request's own input is at fault.
    Resource, ///< std::bad_alloc during evaluation.
    Internal, ///< Any other exception (a model bug, injected fault).
};

/** Stable lower-case name for an EvalErrorKind ("config", ...). */
const char *evalErrorKindName(EvalErrorKind kind);

/** Result of one performance-model evaluation. */
struct PerfReport
{
    std::string modelName;
    std::string clusterName;
    std::string taskName;
    ParallelPlan plan;

    /** False when the plan exceeds per-device memory (OOM). */
    bool valid = false;

    /** Set when the evaluation threw instead of completing; every
     *  other field except the identity ones is meaningless then. */
    EvalErrorKind errorKind = EvalErrorKind::None;
    std::string errorMessage;

    /** Did this evaluation throw? (Distinct from OOM-invalid.) */
    bool failed() const { return errorKind != EvalErrorKind::None; }

    /** Per-device memory verdict. */
    MemoryFootprint memory;

    /** Overlapped (real) iteration time, seconds. */
    double iterationTime = 0.0;

    /** Serialized execution time: all compute + all comm, seconds. */
    double serializedTime = 0.0;

    double computeTime = 0.0;     ///< Compute-stream busy seconds.
    double commTime = 0.0;        ///< Communication-stream busy seconds.
    double exposedCommTime = 0.0; ///< Comm not hidden behind compute.

    long globalBatchSize = 0;
    long contextLength = 1;

    /** Serialized seconds by category (Fig. 20a/c). */
    std::map<EventCategory, double> serializedBreakdown;

    /** Exposed seconds by communication category (Fig. 20b/d). */
    std::map<EventCategory, double> exposedBreakdown;

    /** Full scheduled trace (empty if PerfModelOptions disabled it). */
    Timeline timeline;

    /** Samples per second (queries/s for recommendation models). */
    double throughput() const;

    /** Tokens per second for LLM workloads. */
    double tokensPerSecond() const;

    /** Fraction of communication hidden behind compute. */
    double overlapFraction() const;

    /** Fraction of communication exposed. */
    double exposedFraction() const;

    /**
     * Aggregate device-hours to process @p samples samples,
     * optionally normalized to A100 peak FLOPS via @p peak_ratio
     * (Fig. 16's resource metric).
     */
    double deviceHoursPerSamples(double samples, int num_devices,
                                 double peak_ratio = 1.0) const;

    /** Render a human-readable multi-line summary. */
    std::string summary() const;
};

/**
 * Machine-readable report rendering — the one JSON schema every
 * MAD-Max surface emits: `madmax_cli evaluate/explore --format json`
 * and the serving API's `/v1/evaluate` / `/v1/explore` responses all
 * serialize through here, so their outputs are byte-identical for the
 * same inputs (JsonValue keeps object keys sorted, making dumps
 * deterministic). Timing fields are present only when the plan fits
 * in memory (`valid`).
 */
JsonValue toJson(const PerfReport &report);

} // namespace madmax

#endif // MADMAX_CORE_REPORT_HH
