/**
 * @file
 * Design-space explorer (§V "Design Space Exploration"): enumerates
 * valid hierarchical parallelization strategies per layer class,
 * evaluates each full plan through the performance model, and ranks
 * by throughput — the engine behind Figs. 10-18.
 *
 * All evaluations flow through an EvalEngine (src/engine/), which
 * parallelizes, memoizes, and prunes them; result ordering is
 * deterministic regardless of thread count.
 */

#ifndef MADMAX_CORE_STRATEGY_EXPLORER_HH
#define MADMAX_CORE_STRATEGY_EXPLORER_HH

#include <memory>
#include <string>
#include <vector>

#include "dse/search_strategy.hh"
#include "engine/eval_engine.hh"

namespace madmax
{

/** One explored point. stats is only populated on best()'s winner
 *  (the whole-search cost); explore() reports stats batch-wide. */
struct ExplorationResult
{
    ParallelPlan plan;
    PerfReport report;
    EvalStats stats;
};

/** A ranked exploration of the full plan space. */
struct Exploration
{
    /** Sorted by descending throughput, invalid plans last. */
    std::vector<ExplorationResult> results;

    /** Search cost of this call (evaluations, cache hits, pruned). */
    EvalStats stats;
};

/**
 * Search algorithm for the strategy space. Each value maps onto a
 * registered dse SearchStrategy (see dse/search_strategy.hh);
 * toString() yields the registry name.
 */
enum class SearchAlgorithm
{
    Exhaustive,         ///< Full cartesian product (default).
    CoordinateDescent,  ///< Greedy per-class sweeps until fixpoint.
    SimulatedAnnealing, ///< Metropolis random walk, budgeted.
    Genetic,            ///< Population search, budgeted.
};

/** The dse strategy-registry name ("exhaustive", ...). */
std::string toString(SearchAlgorithm algorithm);

/** Exploration knobs. */
struct ExplorerOptions
{
    /**
     * Keep OOM plans in the result list (reported invalid) so benches
     * can render the paper's gray bars.
     */
    bool keepInvalid = true;

    /**
     * Evaluate timing for OOM plans too (the "unconstrained by memory
     * capacity" analysis — Fig. 10's orange bars).
     */
    bool ignoreMemory = false;

    /** Also explore FSDP-prefetch variants of FSDP-bearing plans. */
    bool explorePrefetch = false;

    /** How best() searches the space (explore() is always full). */
    SearchAlgorithm algorithm = SearchAlgorithm::Exhaustive;

    /** Budget / seed knobs for the guided algorithms. */
    SearchOptions search;
};

/**
 * Exhaustive explorer over the per-layer-class strategy space. The
 * candidate sets follow the paper: dense classes draw from global and
 * hierarchical compositions of {DDP, FSDP, TP}; sparse embedding
 * tables from sharding variants; MoE experts from expert-parallel and
 * dense-style strategies.
 */
class StrategyExplorer
{
  public:
    /**
     * @param model  The bound performance model.
     * @param engine Shared evaluation engine; pass one to pool
     *        threads and share the memo cache with other call sites
     *        (DSE sweeps, fleet, CLI). When null, the explorer owns
     *        a private serial engine (memoizing, one thread).
     */
    explicit StrategyExplorer(const PerfModel &model,
                              EvalEngine *engine = nullptr);

    /** Candidate strategies for one layer class. */
    static std::vector<HierStrategy> candidates(LayerClass cls);

    /**
     * Evaluate the cartesian product of candidates over the classes
     * present in @p desc. Results are sorted by descending
     * throughput, invalid plans last; ordering is identical for any
     * engine thread count.
     */
    Exploration explore(const ModelDesc &desc, const TaskSpec &task,
                        const ExplorerOptions &options = {}) const;

    /**
     * The throughput-optimal valid plan, via the configured search
     * algorithm — delegated to the dse strategy registry
     * (makeSearchStrategy). Coordinate descent evaluates O(classes x
     * candidates) plans per round instead of the full product; it can
     * stop in a local optimum but matches exhaustive search on every
     * workload in this suite (see tests). Annealing and genetic
     * honor options.search.maxEvaluations. The result's stats field
     * carries the whole search's cost.
     *
     * @throws ConfigError if no plan fits in memory.
     */
    ExplorationResult best(const ModelDesc &desc, const TaskSpec &task,
                           const ExplorerOptions &options = {}) const;

    /** Baseline FSDP report for speedup normalization. */
    PerfReport baseline(const ModelDesc &desc, const TaskSpec &task) const;

  private:
    /** The shared engine, or the private serial fallback. */
    EvalEngine &engine() const;

    const PerfModel &model_;
    EvalEngine *shared_;                ///< Borrowed; may be null.
    std::unique_ptr<EvalEngine> owned_; ///< Serial fallback.
};

} // namespace madmax

#endif // MADMAX_CORE_STRATEGY_EXPLORER_HH
