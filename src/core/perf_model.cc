#include "core/perf_model.hh"

#include "core/eval_context.hh"
#include "util/logging.hh"
#include "util/strfmt.hh"

namespace madmax
{

PerfModel::PerfModel(ClusterSpec cluster, PerfModelOptions options)
    : cluster_(std::move(cluster)), options_(std::move(options)),
      memoryModel_(options_.memory)
{
    cluster_.validate();
    if (cluster_.isHeterogeneous()) {
        fatal(strfmt(
            "PerfModel: cluster '%s' is heterogeneous (%zu device "
            "groups); the flat performance model prices one homogeneous "
            "pool. Evaluate a single group via "
            "ClusterSpec::groupCluster(i), or search phase placements "
            "across groups with ParetoEngine::exploreInference "
            "(`madmax pareto --workload ...`)",
            cluster_.name.c_str(), cluster_.groups.size()));
    }
}

PerfModel
PerfModel::withCluster(ClusterSpec cluster) const
{
    return PerfModel(std::move(cluster), options_);
}

PerfReport
PerfModel::verdict(const ModelDesc &desc, const TaskSpec &task,
                   const ParallelPlan &plan) const
{
    return verdict(desc, task, plan, task.toString());
}

PerfReport
PerfModel::verdict(const ModelDesc &desc, const TaskSpec &task,
                   const ParallelPlan &plan,
                   const std::string &task_name) const
{
    PerfReport report;
    report.modelName = desc.name;
    report.clusterName = cluster_.name;
    report.taskName = task_name;
    report.plan = plan;
    report.globalBatchSize = desc.globalBatchSize;
    report.contextLength = desc.contextLength;

    report.memory = memoryModel_.evaluate(desc, task, plan, cluster_);
    report.valid = report.memory.fits() || options_.ignoreMemory;
    return report;
}

PerfReport
PerfModel::evaluate(const ModelDesc &desc, const TaskSpec &task,
                    const ParallelPlan &plan) const
{
    // One-off evaluation: build a throwaway context. Sweeps amortize
    // this across hundreds of plans by building the context once (see
    // EvalEngine::evaluateAll's per-group contexts).
    EvalContext context(*this, desc, task);
    return context.evaluate(plan);
}

} // namespace madmax
