#include "core/perf_model.hh"

#include "core/layer_processor.hh"
#include "core/overlap_simulator.hh"
#include "core/stream_builder.hh"

namespace madmax
{

PerfModel::PerfModel(ClusterSpec cluster, PerfModelOptions options)
    : cluster_(std::move(cluster)), options_(std::move(options)),
      memoryModel_(options_.memory)
{
    cluster_.validate();
}

PerfModel
PerfModel::withCluster(ClusterSpec cluster) const
{
    return PerfModel(std::move(cluster), options_);
}

PerfReport
PerfModel::verdict(const ModelDesc &desc, const TaskSpec &task,
                   const ParallelPlan &plan) const
{
    PerfReport report;
    report.modelName = desc.name;
    report.clusterName = cluster_.name;
    report.taskName = task.toString();
    report.plan = plan;
    report.globalBatchSize = desc.globalBatchSize;
    report.contextLength = desc.contextLength;

    report.memory = memoryModel_.evaluate(desc, task, plan, cluster_);
    report.valid = report.memory.fits() || options_.ignoreMemory;
    return report;
}

PerfReport
PerfModel::evaluate(const ModelDesc &desc, const TaskSpec &task,
                    const ParallelPlan &plan) const
{
    PerfReport report = verdict(desc, task, plan);
    if (!report.memory.fits() && !options_.ignoreMemory)
        return report;

    LayerProcessor processor(cluster_, desc, options_.smModel);
    CollectiveModel collectives(cluster_, options_.latency,
                                options_.allReduceAlgorithm);
    StreamBuilder builder(desc, task, plan, cluster_, processor,
                          collectives);
    OverlapSimulator simulator(options_.backgroundCommChannel);
    Timeline timeline = simulator.schedule(builder.build());

    report.iterationTime = timeline.makespan;
    report.serializedTime = timeline.serialized();
    report.computeTime = timeline.computeBusy;
    report.commTime = timeline.commBusy;
    report.exposedCommTime = timeline.exposedComm;

    for (const ScheduledEvent &se : timeline.events) {
        if (se.event.duration <= 0.0)
            continue;
        report.serializedBreakdown[se.event.category] +=
            se.event.duration;
    }
    // Exposed time per communication category: re-run the interval
    // accounting per event against compute busy intervals.
    {
        std::vector<std::pair<double, double>> compute;
        for (const ScheduledEvent &se : timeline.events) {
            if (se.event.stream == StreamKind::Compute &&
                se.finish > se.start) {
                compute.emplace_back(se.start, se.finish);
            }
        }
        // Compute stream is sequential, so intervals are disjoint and
        // already ordered by start.
        for (const ScheduledEvent &se : timeline.events) {
            if (se.event.stream != StreamKind::Communication ||
                se.finish <= se.start) {
                continue;
            }
            double overlap = 0.0;
            for (const auto &[lo, hi] : compute) {
                double a = se.start > lo ? se.start : lo;
                double b = se.finish < hi ? se.finish : hi;
                if (b > a)
                    overlap += b - a;
            }
            report.exposedBreakdown[se.event.category] +=
                (se.finish - se.start) - overlap;
        }
    }

    if (options_.keepTimeline)
        report.timeline = std::move(timeline);
    return report;
}

} // namespace madmax
