/**
 * @file
 * Fleet-wide training characterization (the §III-B substitute). The
 * paper observed a production fleet over an extended period; here a
 * representative synthetic fleet — a mix of DLRM and LLM training
 * jobs with their deployed strategies — is pushed through the same
 * performance model and aggregated into the Fig. 4 views:
 *
 *  (a) GPU-cycle categories (compute / exposed comm / exposed memcpy /
 *      idle),
 *  (b) communication overlap degree per workload,
 *  (c) communication-collective mix per workload.
 *
 * Host-device memcpy and data-ingestion idle are not produced by the
 * iteration model (they are second-order, §IV-A); the fleet model
 * adds configurable per-job fractions for them.
 */

#ifndef MADMAX_FLEET_FLEET_SIM_HH
#define MADMAX_FLEET_FLEET_SIM_HH

#include <map>
#include <string>
#include <vector>

#include "engine/eval_engine.hh"

namespace madmax
{

/** One training job in the fleet. */
struct FleetJob
{
    std::string family;      ///< Aggregation key ("DLRM", "LLM").
    ModelDesc model;
    TaskSpec task;
    ParallelPlan plan;
    ClusterSpec cluster;
    double weight = 1.0;     ///< Relative share of fleet GPU-hours.
    double memcpyFraction = 0.04; ///< Exposed host-device copies.
    double idleFraction = 0.08;   ///< Data ingestion, launch overhead.
};

/** Fractions of observable GPU cycles by category (sums to 1). */
struct CycleBreakdown
{
    double compute = 0.0;
    double exposedComm = 0.0;
    double exposedMemcpy = 0.0;
    double idle = 0.0;
};

/** Aggregated fleet characterization. */
struct FleetReport
{
    CycleBreakdown overall;
    std::map<std::string, CycleBreakdown> byFamily;
    std::map<std::string, double> overlapByFamily;
    /** Collective seconds share by family (normalized per family). */
    std::map<std::string, std::map<EventCategory, double>>
        collectiveMixByFamily;

    /** Evaluation cost of the run (per-job model evaluations). */
    EvalStats stats;
};

/** Runs a set of jobs through the performance model and aggregates. */
class FleetSimulator
{
  public:
    FleetSimulator() = default;

    void addJob(FleetJob job);

    size_t numJobs() const { return jobs_.size(); }

    /**
     * Evaluate all jobs and aggregate per family and overall. All
     * per-job evaluations go through @p engine as one batch (each job
     * on its own cluster-bound model); null uses a private serial
     * engine. Aggregation runs in job order either way, so the report
     * is identical for any thread count.
     */
    FleetReport run(EvalEngine *engine = nullptr) const;

    /**
     * A representative fleet: DLRM-A/B (+ a transformer variant) on
     * the ZionEX system and GPT-3/LLaMA jobs on the LLM system, with
     * production-style plans.
     */
    static FleetSimulator representativeFleet();

  private:
    std::vector<FleetJob> jobs_;
};

} // namespace madmax

#endif // MADMAX_FLEET_FLEET_SIM_HH
