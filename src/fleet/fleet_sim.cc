#include "fleet/fleet_sim.hh"

#include "hw/hw_zoo.hh"
#include "model/model_zoo.hh"
#include "util/logging.hh"

namespace madmax
{

void
FleetSimulator::addJob(FleetJob job)
{
    if (job.weight <= 0.0)
        fatal("FleetSimulator: job weight must be positive");
    jobs_.push_back(std::move(job));
}

FleetReport
FleetSimulator::run(EvalEngine *engine) const
{
    if (jobs_.empty())
        fatal("FleetSimulator: no jobs added");

    std::unique_ptr<EvalEngine> owned;
    if (!engine) {
        owned = std::make_unique<EvalEngine>();
        engine = owned.get();
    }

    // One cluster-bound model per job (timelines are not needed for
    // the aggregate views), evaluated as a single engine batch.
    std::vector<PerfModel> models;
    models.reserve(jobs_.size());
    std::vector<PlanRequest> requests;
    requests.reserve(jobs_.size());
    for (const FleetJob &job : jobs_) {
        PerfModelOptions opts;
        opts.keepTimeline = false;
        models.emplace_back(job.cluster, opts);
    }
    for (size_t i = 0; i < jobs_.size(); ++i) {
        PlanRequest req;
        req.model = &models[i];
        req.desc = &jobs_[i].model;
        req.task = &jobs_[i].task;
        req.plan = jobs_[i].plan;
        requests.push_back(std::move(req));
    }
    EvalStats stats;
    std::vector<PerfReport> reports = engine->evaluateAll(requests,
                                                          &stats);

    struct Acc
    {
        double weight = 0.0;
        double compute = 0.0;
        double exposed = 0.0;
        double memcpy = 0.0;
        double idle = 0.0;
        double commTotal = 0.0;
        double commOverlapped = 0.0;
        std::map<EventCategory, double> collectives;
    };
    std::map<std::string, Acc> by_family;
    Acc overall;

    for (size_t job_idx = 0; job_idx < jobs_.size(); ++job_idx) {
        const FleetJob &job = jobs_[job_idx];
        const PerfReport &r = reports[job_idx];
        if (!r.valid) {
            warn("fleet job '" + job.model.name +
                 "' does not fit memory; skipping");
            continue;
        }

        // Normalize the iteration into cycle-category fractions, then
        // append the memcpy/idle overheads the iteration model
        // excludes. Exposed comm is capped at the wall-clock room
        // left by compute: concurrently-exposed collectives on
        // different channels would otherwise double-count cycles.
        double span = r.iterationTime;
        double compute = r.computeTime / span;
        double exposed =
            std::min(r.exposedCommTime / span, 1.0 - compute);
        double gaps = std::max(0.0, 1.0 - compute - exposed);
        double denom = 1.0 + job.memcpyFraction + job.idleFraction;

        auto fold = [&](Acc &acc) {
            acc.weight += job.weight;
            acc.compute += job.weight * compute / denom;
            acc.exposed += job.weight * exposed / denom;
            acc.memcpy += job.weight * job.memcpyFraction / denom;
            acc.idle +=
                job.weight * (gaps + job.idleFraction) / denom;
            acc.commTotal += job.weight * r.commTime;
            acc.commOverlapped +=
                job.weight * (r.commTime - r.exposedCommTime);
            for (const auto &[cat, secs] : r.serializedBreakdown) {
                switch (cat) {
                  case EventCategory::AllReduce:
                  case EventCategory::AllGather:
                  case EventCategory::ReduceScatter:
                  case EventCategory::All2All:
                    acc.collectives[cat] += job.weight * secs;
                    break;
                  default:
                    break;
                }
            }
        };
        fold(by_family[job.family]);
        fold(overall);
    }

    if (overall.weight <= 0.0)
        fatal("FleetSimulator: no job fit in memory");

    auto to_breakdown = [](const Acc &acc) {
        CycleBreakdown b;
        if (acc.weight <= 0.0)
            return b;
        b.compute = acc.compute / acc.weight;
        b.exposedComm = acc.exposed / acc.weight;
        b.exposedMemcpy = acc.memcpy / acc.weight;
        b.idle = acc.idle / acc.weight;
        return b;
    };

    FleetReport report;
    report.stats = stats;
    report.overall = to_breakdown(overall);
    for (const auto &[family, acc] : by_family) {
        report.byFamily[family] = to_breakdown(acc);
        report.overlapByFamily[family] =
            acc.commTotal > 0.0 ? acc.commOverlapped / acc.commTotal : 0.0;
        double total = 0.0;
        for (const auto &[cat, secs] : acc.collectives)
            total += secs;
        if (total > 0.0) {
            for (const auto &[cat, secs] : acc.collectives) {
                report.collectiveMixByFamily[family][cat] = secs / total;
            }
        }
    }
    return report;
}

FleetSimulator
FleetSimulator::representativeFleet()
{
    FleetSimulator fleet;
    const ClusterSpec zion = hw_zoo::dlrmTrainingSystem();
    const ClusterSpec llm_sys = hw_zoo::llmTrainingSystem();

    // DLRM jobs: sharded embeddings, hierarchically data-parallel
    // dense layers (the deployed ZionEX configuration).
    ParallelPlan dlrm_plan;
    dlrm_plan.set(LayerClass::SparseEmbedding,
                  HierStrategy{Strategy::MP});
    dlrm_plan.set(LayerClass::BaseDense,
                  HierStrategy{Strategy::TP, Strategy::DDP});
    dlrm_plan.set(LayerClass::Transformer,
                  HierStrategy{Strategy::TP, Strategy::DDP});
    dlrm_plan.set(LayerClass::MoE, HierStrategy{Strategy::MP});

    fleet.addJob(FleetJob{"DLRM", model_zoo::dlrmA(),
                          TaskSpec::preTraining(), dlrm_plan, zion, 3.0,
                          0.05, 0.10});
    fleet.addJob(FleetJob{"DLRM", model_zoo::dlrmB(),
                          TaskSpec::preTraining(), dlrm_plan, zion, 2.0,
                          0.05, 0.10});
    fleet.addJob(FleetJob{"DLRM", model_zoo::dlrmATransformer(),
                          TaskSpec::preTraining(), dlrm_plan, zion, 1.0,
                          0.05, 0.10});

    // LLM jobs: FSDP with prefetch (the production LLaMA recipe).
    ParallelPlan llm_plan = ParallelPlan::fsdpBaseline();
    llm_plan.fsdpPrefetch = true;
    fleet.addJob(FleetJob{"LLM", model_zoo::llama65b(),
                          TaskSpec::preTraining(), llm_plan, llm_sys, 3.0,
                          0.02, 0.06});
    fleet.addJob(FleetJob{"LLM", model_zoo::gpt3(),
                          TaskSpec::preTraining(), llm_plan, llm_sys, 2.0,
                          0.02, 0.06});
    fleet.addJob(FleetJob{"LLM", model_zoo::llama2_70b(),
                          TaskSpec::preTraining(), llm_plan, llm_sys, 1.0,
                          0.02, 0.06});
    return fleet;
}

} // namespace madmax
