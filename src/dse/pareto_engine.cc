#include "dse/pareto_engine.hh"

#include <algorithm>

#include "dse/pareto.hh"
#include "hw/hw_zoo.hh"
#include "util/logging.hh"
#include "util/strfmt.hh"

namespace madmax
{

namespace
{

/** Evaluate @p plan on the first @p limit hardware points as one
 *  engine batch. */
std::vector<ParetoCandidate>
evaluateOnAll(const std::vector<PerfModel> &models,
              const ModelDesc &desc, const TaskSpec &task,
              const ParallelPlan &plan, EvalEngine &engine,
              EvalStats &stats, size_t limit)
{
    std::vector<PlanRequest> requests;
    requests.reserve(limit);
    for (size_t hw = 0; hw < models.size() && hw < limit; ++hw) {
        PlanRequest req;
        req.model = &models[hw];
        req.desc = &desc;
        req.task = &task;
        req.plan = plan;
        requests.push_back(std::move(req));
    }
    EvalStats local;
    std::vector<PerfReport> reports = engine.evaluateAll(requests, &local);
    stats += local;

    std::vector<ParetoCandidate> out;
    out.reserve(requests.size());
    for (size_t hw = 0; hw < requests.size(); ++hw) {
        ParetoCandidate c;
        c.hwIndex = hw;
        c.plan = plan;
        c.report = std::move(reports[hw]);
        out.push_back(std::move(c));
    }
    return out;
}

JsonValue
candidateJson(const ParetoCandidate &c,
              const std::vector<HardwarePoint> &hardware)
{
    JsonValue out;
    out.set("hardware", hardware[c.hwIndex].name);
    out.set("plan", c.plan.toString());
    JsonValue obj;
    obj.set("throughput", c.objectives.throughput);
    obj.set("perf_per_tco", c.objectives.perfPerTco);
    obj.set("mem_headroom_bytes", c.objectives.memHeadroomBytes);
    out.set("objectives", std::move(obj));
    out.set("report", toJson(c.report));
    return out;
}

} // namespace

ParetoObjectives
scoreObjectives(const PerfReport &report, const HardwarePoint &hw,
                const CostModelOptions &cost)
{
    ParetoObjectives obj;
    obj.throughput = report.valid ? report.throughput() : 0.0;
    double rate = hw.cluster.numDevices() * hw.a100PeakRatio *
        cost.dollarsPerA100Hour;
    obj.perfPerTco = rate > 0.0 ? obj.throughput / rate : 0.0;
    obj.memHeadroomBytes =
        report.memory.usableCapacity - report.memory.total();
    return obj;
}

ParetoEngine::ParetoEngine(std::vector<HardwarePoint> hardware,
                           EvalEngine *engine)
    : hw_(std::move(hardware)), shared_(engine)
{
    if (hw_.empty())
        fatal("ParetoEngine: empty hardware catalog");
    models_.reserve(hw_.size());
    for (HardwarePoint &point : hw_) {
        if (point.name.empty())
            point.name = point.cluster.name;
        // PerfModel construction validates the cluster spec. DSE
        // never consumes scheduled timelines, so they are disabled:
        // evaluations carry ~100 KB less state each, and the guided
        // strategies' DeltaSessions take the incremental splice path
        // instead of the keepTimeline fall-back (reports are
        // otherwise identical — nothing the frontier renders reads
        // the timeline).
        PerfModelOptions opts;
        opts.keepTimeline = false;
        models_.emplace_back(point.cluster, opts);
    }
    if (!shared_)
        owned_ = std::make_unique<EvalEngine>();
}

EvalEngine &
ParetoEngine::engine() const
{
    return shared_ ? *shared_ : *owned_;
}

ParetoFrontier
ParetoEngine::explore(const ModelDesc &desc, const TaskSpec &task,
                      const ParetoOptions &options) const
{
    ParetoFrontier out;
    out.strategy = options.strategy;

    // The default-mapping (FSDP) point on every hardware point: the
    // normalization frontier of Figs. 1/16 and the guided searches'
    // warm start. An explicit budget is a hard ceiling over the whole
    // exploration, so a budget smaller than the catalog trims the
    // baseline sweep itself (only the first points get evaluated).
    if (options.includeBaselines) {
        size_t limit = models_.size();
        if (options.search.maxEvaluations > 0) {
            limit = std::min(
                limit,
                static_cast<size_t>(options.search.maxEvaluations));
        }
        out.baselines = evaluateOnAll(models_, desc, task,
                                      ParallelPlan::fsdpBaseline(),
                                      engine(), out.stats, limit);
    }

    std::vector<const PerfModel *> modelPtrs;
    modelPtrs.reserve(models_.size());
    for (const PerfModel &model : models_)
        modelPtrs.push_back(&model);
    SearchSpace space = makeSearchSpace(modelPtrs, desc, task);
    // The baseline sweep doubles as the guided searches' warm start:
    // they pick their starting hardware point from it instead of
    // spending budget re-probing every point.
    for (const ParetoCandidate &c : out.baselines) {
        space.warmStart.push_back(
            SearchCandidate{c.hwIndex, c.plan, c.report});
    }

    // The budget covers the whole exploration: what the baselines
    // spent is no longer available to the guided search (-1 tells
    // the strategy its budget is already gone — 0 would mean "auto").
    SearchOptions searchOpts = options.search;
    if (searchOpts.maxEvaluations > 0) {
        long remaining =
            searchOpts.maxEvaluations - out.stats.evaluations;
        searchOpts.maxEvaluations = remaining > 0 ? remaining : -1;
    }
    std::unique_ptr<SearchStrategy> strategy =
        makeSearchStrategy(options.strategy);
    SearchOutcome outcome = strategy->run(space, engine(), searchOpts);
    out.stats += outcome.stats;

    // Fold baselines and search visits into one scored candidate
    // list, in visit order.
    out.candidates.reserve(out.baselines.size() +
                           outcome.evaluated.size());
    for (const ParetoCandidate &c : out.baselines)
        out.candidates.push_back(c);
    for (SearchCandidate &c : outcome.evaluated) {
        ParetoCandidate pc;
        pc.hwIndex = c.hwIndex;
        pc.plan = std::move(c.plan);
        pc.report = std::move(c.report);
        out.candidates.push_back(std::move(pc));
    }
    for (ParetoCandidate &c : out.candidates) {
        if (c.report.valid)
            c.objectives =
                scoreObjectives(c.report, hw_[c.hwIndex], options.cost);
    }

    // Throughput-best valid candidate per hardware point (first visit
    // wins ties, so exhaustive matches StrategyExplorer::best()).
    std::vector<const ParetoCandidate *> best(hw_.size(), nullptr);
    for (const ParetoCandidate &c : out.candidates) {
        if (!c.report.valid)
            continue;
        const ParetoCandidate *&slot = best[c.hwIndex];
        if (!slot || c.objectives.throughput >
                slot->objectives.throughput) {
            slot = &c;
        }
    }
    for (const ParetoCandidate *c : best) {
        if (c)
            out.bestPerHw.push_back(*c);
    }

    // The multi-objective frontier over every valid visit.
    std::vector<ParetoPointNd> scored;
    std::vector<size_t> scoredIdx;
    for (size_t i = 0; i < out.candidates.size(); ++i) {
        const ParetoCandidate &c = out.candidates[i];
        if (!c.report.valid)
            continue;
        scored.push_back(ParetoPointNd{
            {c.objectives.throughput, c.objectives.perfPerTco,
             c.objectives.memHeadroomBytes},
            scoredIdx.size()});
        scoredIdx.push_back(i);
    }
    for (size_t idx : paretoFrontierNd(scored))
        out.points.push_back(out.candidates[scoredIdx[idx]]);
    std::stable_sort(out.points.begin(), out.points.end(),
                     [](const ParetoCandidate &a,
                        const ParetoCandidate &b) {
                         return a.objectives.throughput >
                             b.objectives.throughput;
                     });
    return out;
}

std::vector<HardwarePoint>
cloudHardwareCatalog(int num_nodes)
{
    std::vector<HardwarePoint> out;
    for (const hw_zoo::CloudInstance &inst :
         hw_zoo::cloudInstances(num_nodes)) {
        out.push_back(
            HardwarePoint{inst.name, inst.cluster, inst.a100PeakRatio});
    }
    return out;
}

HardwarePoint
makeHardwarePoint(const ClusterSpec &cluster)
{
    HardwarePoint point;
    point.name = cluster.name;
    point.cluster = cluster;
    double a100_peak = hw_zoo::a100_40().peakFlopsTensor16;
    point.a100PeakRatio = cluster.device.peakFlopsTensor16 > 0.0
        ? cluster.device.peakFlopsTensor16 / a100_peak
        : 1.0;
    return point;
}

std::vector<HardwarePoint>
nodeCountSweep(const ClusterSpec &cluster,
               const std::vector<int> &node_counts)
{
    if (node_counts.empty())
        fatal("nodeCountSweep: empty node-count list");
    double a100_peak = hw_zoo::a100_40().peakFlopsTensor16;
    double ratio = cluster.device.peakFlopsTensor16 > 0.0
        ? cluster.device.peakFlopsTensor16 / a100_peak
        : 1.0;
    std::vector<HardwarePoint> out;
    out.reserve(node_counts.size());
    for (int nodes : node_counts) {
        if (nodes <= 0)
            fatal("nodeCountSweep: node counts must be positive");
        HardwarePoint point;
        point.cluster = cluster.withNumNodes(nodes);
        point.name = strfmt("%s-%dn", cluster.name.c_str(), nodes);
        point.a100PeakRatio = ratio;
        out.push_back(std::move(point));
    }
    return out;
}

JsonValue
toJson(const ParetoFrontier &frontier,
       const std::vector<HardwarePoint> &hardware)
{
    JsonValue hwArr;
    for (const HardwarePoint &point : hardware) {
        JsonValue entry;
        entry.set("name", point.name);
        entry.set("devices",
                  static_cast<long>(point.cluster.numDevices()));
        entry.set("nodes", static_cast<long>(point.cluster.numNodes));
        entry.set("a100_peak_ratio", point.a100PeakRatio);
        hwArr.append(std::move(entry));
    }

    auto listJson = [&](const std::vector<ParetoCandidate> &list) {
        JsonValue arr(JsonValue::Array{});
        for (const ParetoCandidate &c : list)
            arr.append(candidateJson(c, hardware));
        return arr;
    };

    JsonValue out;
    out.set("strategy", frontier.strategy);
    out.set("hardware", std::move(hwArr));
    out.set("frontier", listJson(frontier.points));
    out.set("best_per_hardware", listJson(frontier.bestPerHw));
    out.set("baselines", listJson(frontier.baselines));
    out.set("evaluated_points",
            static_cast<long>(frontier.candidates.size()));
    out.set("search", toJson(frontier.stats));
    return out;
}

} // namespace madmax
