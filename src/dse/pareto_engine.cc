#include "dse/pareto_engine.hh"

#include <algorithm>
#include <map>

#include "core/strategy_explorer.hh"
#include "dse/pareto.hh"
#include "hw/hw_zoo.hh"
#include "util/logging.hh"
#include "util/strfmt.hh"

namespace madmax
{

namespace
{

/** Evaluate @p plan on the first @p limit hardware points as one
 *  engine batch. */
std::vector<ParetoCandidate>
evaluateOnAll(const std::vector<PerfModel> &models,
              const ModelDesc &desc, const TaskSpec &task,
              const ParallelPlan &plan, EvalEngine &engine,
              EvalStats &stats, size_t limit)
{
    std::vector<PlanRequest> requests;
    requests.reserve(limit);
    for (size_t hw = 0; hw < models.size() && hw < limit; ++hw) {
        PlanRequest req;
        req.model = &models[hw];
        req.desc = &desc;
        req.task = &task;
        req.plan = plan;
        requests.push_back(std::move(req));
    }
    EvalStats local;
    std::vector<PerfReport> reports = engine.evaluateAll(requests, &local);
    stats += local;

    std::vector<ParetoCandidate> out;
    out.reserve(requests.size());
    for (size_t hw = 0; hw < requests.size(); ++hw) {
        ParetoCandidate c;
        c.hwIndex = hw;
        c.plan = plan;
        c.report = std::move(reports[hw]);
        out.push_back(std::move(c));
    }
    return out;
}

JsonValue
candidateJson(const ParetoCandidate &c,
              const std::vector<HardwarePoint> &hardware)
{
    JsonValue out;
    out.set("hardware", hardware[c.hwIndex].name);
    out.set("plan", c.plan.toString());
    JsonValue obj;
    obj.set("throughput", c.objectives.throughput);
    obj.set("perf_per_tco", c.objectives.perfPerTco);
    obj.set("mem_headroom_bytes", c.objectives.memHeadroomBytes);
    out.set("objectives", std::move(obj));
    out.set("report", toJson(c.report));
    return out;
}

} // namespace

ParetoObjectives
scoreObjectives(const PerfReport &report, const HardwarePoint &hw,
                const CostModelOptions &cost)
{
    ParetoObjectives obj;
    obj.throughput = report.valid ? report.throughput() : 0.0;
    double rate = hw.cluster.numDevices() * hw.a100PeakRatio *
        cost.dollarsPerA100Hour;
    obj.perfPerTco = rate > 0.0 ? obj.throughput / rate : 0.0;
    obj.memHeadroomBytes =
        report.memory.usableCapacity - report.memory.total();
    return obj;
}

ParetoEngine::ParetoEngine(std::vector<HardwarePoint> hardware,
                           EvalEngine *engine)
    : hw_(std::move(hardware)), shared_(engine)
{
    if (hw_.empty())
        fatal("ParetoEngine: empty hardware catalog");
    models_.reserve(hw_.size());
    for (HardwarePoint &point : hw_) {
        if (point.name.empty())
            point.name = point.cluster.name;
        // PerfModel construction validates the cluster spec. DSE
        // never consumes scheduled timelines, so they are disabled:
        // evaluations carry ~100 KB less state each, and the guided
        // strategies' DeltaSessions take the incremental splice path
        // instead of the keepTimeline fall-back (reports are
        // otherwise identical — nothing the frontier renders reads
        // the timeline).
        PerfModelOptions opts;
        opts.keepTimeline = false;
        models_.emplace_back(point.cluster, opts);
    }
    if (!shared_)
        owned_ = std::make_unique<EvalEngine>();
}

EvalEngine &
ParetoEngine::engine() const
{
    return shared_ ? *shared_ : *owned_;
}

ParetoFrontier
ParetoEngine::explore(const ModelDesc &desc, const TaskSpec &task,
                      const ParetoOptions &options) const
{
    ParetoFrontier out;
    out.strategy = options.strategy;

    // The default-mapping (FSDP) point on every hardware point: the
    // normalization frontier of Figs. 1/16 and the guided searches'
    // warm start. An explicit budget is a hard ceiling over the whole
    // exploration, so a budget smaller than the catalog trims the
    // baseline sweep itself (only the first points get evaluated).
    if (options.includeBaselines) {
        size_t limit = models_.size();
        if (options.search.maxEvaluations > 0) {
            limit = std::min(
                limit,
                static_cast<size_t>(options.search.maxEvaluations));
        }
        out.baselines = evaluateOnAll(models_, desc, task,
                                      ParallelPlan::fsdpBaseline(),
                                      engine(), out.stats, limit);
    }

    std::vector<const PerfModel *> modelPtrs;
    modelPtrs.reserve(models_.size());
    for (const PerfModel &model : models_)
        modelPtrs.push_back(&model);
    SearchSpace space = makeSearchSpace(modelPtrs, desc, task);
    // The baseline sweep doubles as the guided searches' warm start:
    // they pick their starting hardware point from it instead of
    // spending budget re-probing every point.
    for (const ParetoCandidate &c : out.baselines) {
        space.warmStart.push_back(
            SearchCandidate{c.hwIndex, c.plan, c.report});
    }

    // The budget covers the whole exploration: what the baselines
    // spent is no longer available to the guided search (-1 tells
    // the strategy its budget is already gone — 0 would mean "auto").
    SearchOptions searchOpts = options.search;
    if (searchOpts.maxEvaluations > 0) {
        long remaining =
            searchOpts.maxEvaluations - out.stats.evaluations;
        searchOpts.maxEvaluations = remaining > 0 ? remaining : -1;
    }
    std::unique_ptr<SearchStrategy> strategy =
        makeSearchStrategy(options.strategy);
    SearchOutcome outcome = strategy->run(space, engine(), searchOpts);
    out.stats += outcome.stats;

    // Fold baselines and search visits into one scored candidate
    // list, in visit order.
    out.candidates.reserve(out.baselines.size() +
                           outcome.evaluated.size());
    for (const ParetoCandidate &c : out.baselines)
        out.candidates.push_back(c);
    for (SearchCandidate &c : outcome.evaluated) {
        ParetoCandidate pc;
        pc.hwIndex = c.hwIndex;
        pc.plan = std::move(c.plan);
        pc.report = std::move(c.report);
        out.candidates.push_back(std::move(pc));
    }
    for (ParetoCandidate &c : out.candidates) {
        if (c.report.valid)
            c.objectives =
                scoreObjectives(c.report, hw_[c.hwIndex], options.cost);
    }

    // Throughput-best valid candidate per hardware point (first visit
    // wins ties, so exhaustive matches StrategyExplorer::best()).
    std::vector<const ParetoCandidate *> best(hw_.size(), nullptr);
    for (const ParetoCandidate &c : out.candidates) {
        if (!c.report.valid)
            continue;
        const ParetoCandidate *&slot = best[c.hwIndex];
        if (!slot || c.objectives.throughput >
                slot->objectives.throughput) {
            slot = &c;
        }
    }
    for (const ParetoCandidate *c : best) {
        if (c)
            out.bestPerHw.push_back(*c);
    }

    // The multi-objective frontier over every valid visit.
    std::vector<ParetoPointNd> scored;
    std::vector<size_t> scoredIdx;
    for (size_t i = 0; i < out.candidates.size(); ++i) {
        const ParetoCandidate &c = out.candidates[i];
        if (!c.report.valid)
            continue;
        scored.push_back(ParetoPointNd{
            {c.objectives.throughput, c.objectives.perfPerTco,
             c.objectives.memHeadroomBytes},
            scoredIdx.size()});
        scoredIdx.push_back(i);
    }
    for (size_t idx : paretoFrontierNd(scored))
        out.points.push_back(out.candidates[scoredIdx[idx]]);
    std::stable_sort(out.points.begin(), out.points.end(),
                     [](const ParetoCandidate &a,
                        const ParetoCandidate &b) {
                         return a.objectives.throughput >
                             b.objectives.throughput;
                     });
    return out;
}

namespace
{

/** One island's phase-plan sweeps: every valid plan per phase, best
 *  first, plus the island's projected homogeneous cluster. */
struct IslandSweep
{
    ClusterSpec cluster;
    Exploration prefill;
    Exploration decode;
};

/** First valid result of a throughput-sorted exploration; null if
 *  nothing fits. */
const ExplorationResult *
bestValid(const Exploration &exploration)
{
    for (const ExplorationResult &r : exploration.results) {
        if (r.report.valid)
            return &r;
    }
    return nullptr;
}

} // namespace

InferencePlacementFrontier
exploreInferencePlacements(const ModelDesc &desc,
                           const InferenceWorkload &workload,
                           const ClusterSpec &cluster,
                           const ParetoOptions &options,
                           EvalEngine *engine)
{
    cluster.validate();
    workload.validate(desc);

    InferencePlacementFrontier out;

    // The evaluable islands: each device group projected to a
    // homogeneous cluster, or the cluster itself when homogeneous.
    std::vector<IslandSweep> islands;
    if (cluster.isHeterogeneous()) {
        for (size_t i = 0; i < cluster.groups.size(); ++i) {
            IslandSweep island;
            island.cluster = cluster.groupCluster(static_cast<int>(i));
            out.islands.push_back(cluster.groups[i].name);
            islands.push_back(std::move(island));
        }
    } else {
        IslandSweep island;
        island.cluster = cluster;
        out.islands.push_back(cluster.name);
        islands.push_back(std::move(island));
    }

    // Resolve placement pins to island indices. An unknown name is a
    // config error (typo'd group), not an empty search.
    auto resolvePin = [&](const std::string &name,
                          const char *phase) -> int {
        if (name.empty())
            return -1;
        for (size_t i = 0; i < out.islands.size(); ++i) {
            if (out.islands[i] == name)
                return static_cast<int>(i);
        }
        std::string known;
        for (const std::string &island : out.islands)
            known += (known.empty() ? "\"" : ", \"") + island + "\"";
        fatal(strfmt("inference workload pins %s to unknown device "
                     "group \"%s\"; cluster \"%s\" defines: %s",
                     phase, name.c_str(), cluster.name.c_str(),
                     known.c_str()));
    };
    const int pin_p = resolvePin(workload.prefillGroup, "prefill");
    const int pin_d = resolvePin(workload.decodeGroup, "decode");

    // Whole-fleet rental rate: every placement is priced against all
    // islands, used or not (see InferencePlacementObjectives).
    double fleet_rate = 0.0;
    for (const IslandSweep &island : islands) {
        fleet_rate += island.cluster.numDevices() *
            makeHardwarePoint(island.cluster).a100PeakRatio *
            options.cost.dollarsPerA100Hour;
    }

    // Per-island, per-phase plan sweeps. The inference plan space is
    // small enough that exhaustive enumeration is cheaper than any
    // guided strategy's bookkeeping.
    const TaskSpec prefill_task =
        InferenceModel::prefillTask(desc, workload);
    const TaskSpec decode_task =
        InferenceModel::decodeTask(desc, workload);
    PerfModelOptions model_opts;
    model_opts.keepTimeline = false;
    ExplorerOptions explorer_opts;
    explorer_opts.keepInvalid = false;
    for (size_t i = 0; i < islands.size(); ++i) {
        IslandSweep &island = islands[i];
        const bool runs_prefill =
            pin_p < 0 || i == static_cast<size_t>(pin_p);
        const bool runs_decode =
            pin_d < 0 || i == static_cast<size_t>(pin_d);
        if (!runs_prefill && !runs_decode)
            continue; // Pinned out of every placement.
        PerfModel model(island.cluster, model_opts);
        StrategyExplorer explorer(model, engine);
        if (runs_prefill) {
            island.prefill =
                explorer.explore(desc, prefill_task, explorer_opts);
            out.stats += island.prefill.stats;
        }
        if (runs_decode) {
            island.decode =
                explorer.explore(desc, decode_task, explorer_opts);
            out.stats += island.decode.stats;
        }
    }

    const InferenceModel inference(model_opts);

    // Enumerate placements. Colocated (p == d) deployments run both
    // phases with ONE plan — the weights cannot be resharded between
    // a prompt pass and the next token step — chosen to maximize the
    // composed request rate. Disaggregated deployments pick each
    // phase's throughput-best plan independently.
    for (size_t p = 0; p < islands.size(); ++p) {
        if (pin_p >= 0 && p != static_cast<size_t>(pin_p))
            continue;
        for (size_t d = 0; d < islands.size(); ++d) {
            if (pin_d >= 0 && d != static_cast<size_t>(pin_d))
                continue;
            InferencePlacementCandidate cand;
            cand.prefillIsland = static_cast<int>(p);
            cand.decodeIsland = static_cast<int>(d);

            if (p == d) {
                // Compose per-plan: harmonic request rate over the
                // plans valid for BOTH phases on this island.
                std::map<std::string, const ExplorationResult *> decode_by;
                for (const ExplorationResult &r :
                     islands[d].decode.results) {
                    if (r.report.valid)
                        decode_by.emplace(r.plan.toString(), &r);
                }
                const ExplorationResult *best_p = nullptr;
                double best_rate = 0.0;
                for (const ExplorationResult &pr :
                     islands[p].prefill.results) {
                    if (!pr.report.valid)
                        continue;
                    auto it = decode_by.find(pr.plan.toString());
                    if (it == decode_by.end())
                        continue;
                    const double rate = 1.0 /
                        (pr.report.iterationTime +
                         it->second->report.iterationTime *
                             static_cast<double>(workload.generateTokens));
                    if (rate > best_rate) {
                        best_rate = rate;
                        best_p = &pr;
                    }
                }
                if (!best_p)
                    continue; // No plan serves both phases here.
                cand.prefillPlan = best_p->plan;
                cand.decodePlan = best_p->plan;
            } else {
                const ExplorationResult *bp =
                    bestValid(islands[p].prefill);
                const ExplorationResult *bd = bestValid(islands[d].decode);
                if (!bp || !bd)
                    continue; // An island cannot run its phase.
                cand.prefillPlan = bp->plan;
                cand.decodePlan = bd->plan;
            }

            cand.report = inference.evaluate(
                desc, workload, islands[p].cluster, cand.prefillPlan,
                islands[d].cluster, cand.decodePlan, cluster.name);
            if (cand.report.valid) {
                cand.objectives.tokensPerSecond =
                    cand.report.tokensPerSecond;
                cand.objectives.perfPerTco = fleet_rate > 0.0
                    ? cand.report.tokensPerSecond / fleet_rate
                    : 0.0;
                cand.objectives.maxConcurrentSequences =
                    cand.report.maxConcurrentSequences;
            }
            out.candidates.push_back(std::move(cand));
        }
    }

    // The multi-objective frontier over the valid placements.
    std::vector<ParetoPointNd> scored;
    std::vector<size_t> scoredIdx;
    for (size_t i = 0; i < out.candidates.size(); ++i) {
        const InferencePlacementCandidate &c = out.candidates[i];
        if (!c.report.valid)
            continue;
        scored.push_back(ParetoPointNd{
            {c.objectives.tokensPerSecond, c.objectives.perfPerTco,
             c.objectives.maxConcurrentSequences},
            scoredIdx.size()});
        scoredIdx.push_back(i);
    }
    for (size_t idx : paretoFrontierNd(scored))
        out.points.push_back(out.candidates[scoredIdx[idx]]);
    std::stable_sort(out.points.begin(), out.points.end(),
                     [](const InferencePlacementCandidate &a,
                        const InferencePlacementCandidate &b) {
                         return a.objectives.tokensPerSecond >
                             b.objectives.tokensPerSecond;
                     });
    return out;
}

InferencePlacementFrontier
ParetoEngine::exploreInference(const ModelDesc &desc,
                               const InferenceWorkload &workload,
                               const ClusterSpec &cluster,
                               const ParetoOptions &options,
                               EvalEngine *engine)
{
    return exploreInferencePlacements(desc, workload, cluster, options,
                                      engine);
}

JsonValue
toJson(const InferencePlacementFrontier &frontier)
{
    JsonValue islandArr(JsonValue::Array{});
    for (const std::string &name : frontier.islands)
        islandArr.append(JsonValue(name));

    auto placementJson = [&](const InferencePlacementCandidate &c) {
        JsonValue out;
        out.set("prefill_island",
                frontier.islands[static_cast<size_t>(c.prefillIsland)]);
        out.set("decode_island",
                frontier.islands[static_cast<size_t>(c.decodeIsland)]);
        out.set("prefill_plan", c.prefillPlan.toString());
        out.set("decode_plan", c.decodePlan.toString());
        JsonValue obj;
        obj.set("tokens_per_sec", c.objectives.tokensPerSecond);
        obj.set("perf_per_tco", c.objectives.perfPerTco);
        obj.set("max_concurrent_sequences",
                c.objectives.maxConcurrentSequences);
        out.set("objectives", std::move(obj));
        out.set("report", toJson(c.report));
        return out;
    };
    auto listJson =
        [&](const std::vector<InferencePlacementCandidate> &list) {
            JsonValue arr(JsonValue::Array{});
            for (const InferencePlacementCandidate &c : list)
                arr.append(placementJson(c));
            return arr;
        };

    JsonValue out;
    out.set("islands", std::move(islandArr));
    out.set("frontier", listJson(frontier.points));
    out.set("placements", listJson(frontier.candidates));
    out.set("search", toJson(frontier.stats));
    return out;
}

std::vector<HardwarePoint>
cloudHardwareCatalog(int num_nodes)
{
    std::vector<HardwarePoint> out;
    for (const hw_zoo::CloudInstance &inst :
         hw_zoo::cloudInstances(num_nodes)) {
        out.push_back(
            HardwarePoint{inst.name, inst.cluster, inst.a100PeakRatio});
    }
    return out;
}

HardwarePoint
makeHardwarePoint(const ClusterSpec &cluster)
{
    HardwarePoint point;
    point.name = cluster.name;
    point.cluster = cluster;
    double a100_peak = hw_zoo::a100_40().peakFlopsTensor16;
    point.a100PeakRatio = cluster.device.peakFlopsTensor16 > 0.0
        ? cluster.device.peakFlopsTensor16 / a100_peak
        : 1.0;
    return point;
}

std::vector<HardwarePoint>
nodeCountSweep(const ClusterSpec &cluster,
               const std::vector<int> &node_counts)
{
    if (node_counts.empty())
        fatal("nodeCountSweep: empty node-count list");
    double a100_peak = hw_zoo::a100_40().peakFlopsTensor16;
    double ratio = cluster.device.peakFlopsTensor16 > 0.0
        ? cluster.device.peakFlopsTensor16 / a100_peak
        : 1.0;
    std::vector<HardwarePoint> out;
    out.reserve(node_counts.size());
    for (int nodes : node_counts) {
        if (nodes <= 0)
            fatal("nodeCountSweep: node counts must be positive");
        HardwarePoint point;
        point.cluster = cluster.withNumNodes(nodes);
        point.name = strfmt("%s-%dn", cluster.name.c_str(), nodes);
        point.a100PeakRatio = ratio;
        out.push_back(std::move(point));
    }
    return out;
}

JsonValue
toJson(const ParetoFrontier &frontier,
       const std::vector<HardwarePoint> &hardware)
{
    JsonValue hwArr;
    for (const HardwarePoint &point : hardware) {
        JsonValue entry;
        entry.set("name", point.name);
        entry.set("devices",
                  static_cast<long>(point.cluster.numDevices()));
        entry.set("nodes", static_cast<long>(point.cluster.numNodes));
        entry.set("a100_peak_ratio", point.a100PeakRatio);
        hwArr.append(std::move(entry));
    }

    auto listJson = [&](const std::vector<ParetoCandidate> &list) {
        JsonValue arr(JsonValue::Array{});
        for (const ParetoCandidate &c : list)
            arr.append(candidateJson(c, hardware));
        return arr;
    };

    JsonValue out;
    out.set("strategy", frontier.strategy);
    out.set("hardware", std::move(hwArr));
    out.set("frontier", listJson(frontier.points));
    out.set("best_per_hardware", listJson(frontier.bestPerHw));
    out.set("baselines", listJson(frontier.baselines));
    out.set("evaluated_points",
            static_cast<long>(frontier.candidates.size()));
    out.set("search", toJson(frontier.stats));
    return out;
}

} // namespace madmax
