/**
 * @file
 * Pareto-frontier extraction for the cost/performance trade-off plots
 * (Figs. 1, 13, 16): minimize cost (memory, GPU-hours), maximize
 * value (throughput) — a point is on the frontier if no other point
 * is at least as good on both axes and strictly better on one.
 */

#ifndef MADMAX_DSE_PARETO_HH
#define MADMAX_DSE_PARETO_HH

#include <cstddef>
#include <vector>

namespace madmax
{

/** One candidate in a cost/value trade-off. */
struct ParetoPoint
{
    double cost = 0.0;   ///< Lower is better (e.g. memory per device).
    double value = 0.0;  ///< Higher is better (e.g. throughput).
    size_t tag = 0;      ///< Caller-defined identifier.
};

/**
 * Indices (into @p points) of the pareto-optimal subset, sorted by
 * ascending cost. Duplicate-dominance ties keep the first point.
 */
std::vector<size_t> paretoFrontier(const std::vector<ParetoPoint> &points);

/** True if @p a dominates @p b (no worse on both, better on one). */
bool dominates(const ParetoPoint &a, const ParetoPoint &b);

/**
 * One candidate scored on N objectives, all maximized (callers negate
 * cost-like axes). The multi-objective generalization the ParetoEngine
 * uses for its {throughput, perf-per-TCO, memory-headroom} frontier.
 */
struct ParetoPointNd
{
    std::vector<double> objectives; ///< Higher is better on every axis.
    size_t tag = 0;                 ///< Caller-defined identifier.
};

/**
 * True if @p a dominates @p b: no worse on every objective, strictly
 * better on at least one. Objective vectors must be the same length.
 * @throws ConfigError on dimension mismatch.
 */
bool dominates(const ParetoPointNd &a, const ParetoPointNd &b);

/**
 * Indices (into @p points) of the non-dominated subset, in input
 * order. Points with bitwise-identical objective vectors keep only
 * the first occurrence (matching the 2-D extractor's tie handling).
 */
std::vector<size_t>
paretoFrontierNd(const std::vector<ParetoPointNd> &points);

} // namespace madmax

#endif // MADMAX_DSE_PARETO_HH
