/**
 * @file
 * Pluggable search strategies over the joint (hardware point x
 * parallelization plan) design space (§V "Design Space Exploration").
 *
 * A SearchSpace describes the space: one PerfModel per hardware point
 * and the per-layer-class strategy candidates. A SearchStrategy visits
 * points of that space through an EvalEngine (which parallelizes,
 * memoizes, and OOM-prunes them) and returns every visited candidate
 * plus the EvalStats of the visit, so search cost-to-quality is
 * directly measurable. Consumers pick what they need from the
 * outcome: StrategyExplorer::best() takes the throughput argmax, the
 * ParetoEngine builds a multi-objective frontier from all of it.
 *
 * Four strategies ship, selectable by name through the registry:
 *
 *   exhaustive         full cartesian product (today's explore()),
 *   coordinate-descent greedy per-coordinate sweeps until fixpoint,
 *   annealing          simulated annealing with Metropolis acceptance,
 *   genetic            population search seeded from per-class sweep
 *                      winners, crossover on layer-class assignments.
 *
 * Guided strategies are deterministic (seeded mt19937) and respect an
 * evaluation budget, so "95% of the optimum at 25% of the cost" is a
 * testable contract (tests/dse/test_search_strategy.cc).
 */

#ifndef MADMAX_DSE_SEARCH_STRATEGY_HH
#define MADMAX_DSE_SEARCH_STRATEGY_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "engine/eval_engine.hh"

namespace madmax
{

/**
 * Knobs for the guided searches. All strategies are deterministic for
 * a fixed option set: randomized ones draw from a private mt19937
 * seeded here, never from global state.
 */
struct SearchOptions
{
    /** RNG seed for annealing / genetic ("madmax" in ASCII). */
    uint64_t seed = 0x6d61646d6178ull;

    /**
     * Full-evaluation budget for the guided strategies (annealing,
     * genetic): they stop submitting new points once the engine has
     * executed this many fresh PerfModel evaluations on their behalf
     * — a hard ceiling, pre-trimmed batches included. Cache hits and
     * OOM-pruned points are free. 0 = auto (about a sixth of the
     * space, at least 12); negative = no budget left, evaluate
     * nothing (the ParetoEngine passes this when its baseline sweep
     * already consumed the caller's budget). Exhaustive ignores the
     * budget (it *is* the reference cost); coordinate descent honors
     * an explicit budget but normally terminates on its own.
     */
    long maxEvaluations = 0;

    /**
     * Evaluate the guided searches (coordinate descent, annealing,
     * genetic) through a per-run DeltaSession: their mutate-and-retry
     * loops re-evaluate near-identical plans, which the incremental
     * splice path serves several times faster than full stream builds
     * (bit-identical reports — the outcome does not change, only its
     * cost; EvalStats::deltaEvals records how often the fast path
     * ran). Exhaustive ignores this: its one wide batch belongs on
     * the engine pool.
     */
    bool deltaEval = true;

    /** @name Simulated annealing */
    /// @{
    /** Initial temperature as a fraction of current throughput. */
    double initialTemperature = 0.15;
    /** Geometric cooling factor applied per proposal. */
    double coolingRate = 0.90;
    /** Probability that a proposal mutates the hardware coordinate. */
    double hardwareMoveProbability = 0.35;
    /// @}

    /** @name Genetic search */
    /// @{
    int populationSize = 12;
    int maxGenerations = 16;
    /** Per-gene mutation probability after crossover. */
    double mutationRate = 0.25;
    /// @}
};

/** One visited point of the space. */
struct SearchCandidate
{
    size_t hwIndex = 0; ///< Index into SearchSpace::models.
    ParallelPlan plan;
    PerfReport report;
};

/**
 * The joint search space. models has one entry per hardware point
 * (StrategyExplorer::best passes exactly one); candidates[i] holds the
 * admissible HierStrategy set for classes[i]. All pointers are
 * borrowed and must outlive the search.
 */
struct SearchSpace
{
    std::vector<const PerfModel *> models;
    const ModelDesc *desc = nullptr;
    const TaskSpec *task = nullptr;
    std::vector<LayerClass> classes;
    std::vector<std::vector<HierStrategy>> candidates;

    /** Also visit FSDP-prefetch-off variants (exhaustive only). */
    bool explorePrefetch = false;

    /**
     * Points the caller already evaluated (e.g. the ParetoEngine's
     * per-hardware FSDP baselines). Guided strategies use them as
     * free warm-start context — picking their starting hardware point
     * from the best valid entry instead of re-probing every point —
     * but do not copy them into their outcome.
     */
    std::vector<SearchCandidate> warmStart;

    /** Plans per hardware point (cartesian product, prefetch-on). */
    size_t planCount() const;

    /** Total points: hardware points x plans. */
    size_t size() const { return models.size() * planCount(); }

    /** Validate pointers and shape. @throws ConfigError */
    void validate() const;
};

/** Everything a strategy visited, in visit order, plus its cost. */
struct SearchOutcome
{
    std::vector<SearchCandidate> evaluated;
    EvalStats stats;
};

/** Interface every search strategy implements. */
class SearchStrategy
{
  public:
    virtual ~SearchStrategy() = default;

    /** Registry name ("exhaustive", "annealing", ...). */
    virtual std::string name() const = 0;

    /**
     * Visit points of @p space through @p engine. Deterministic for a
     * fixed (space, options) pair and any engine thread count.
     */
    virtual SearchOutcome run(const SearchSpace &space,
                              EvalEngine &engine,
                              const SearchOptions &options = {}) const = 0;
};

/** Registered strategy names, in documentation order. */
const std::vector<std::string> &searchStrategyNames();

/** Build a strategy by registry name. @throws ConfigError on unknown
 *  names (the message lists the registered ones). */
std::unique_ptr<SearchStrategy>
makeSearchStrategy(const std::string &name);

/**
 * The full plan product for @p space in canonical enumeration order —
 * the exact order StrategyExplorer::explore() has always used (golden
 * suites depend on it): candidate-major over classes in order, all
 * prefetch-enabled, then (with explorePrefetch) the prefetch-off
 * variants of FSDP-bearing plans appended in enumeration order.
 */
std::vector<ParallelPlan> enumeratePlans(const SearchSpace &space);

/** The best valid candidate by throughput (first wins ties), or null
 *  when nothing valid was visited. */
const SearchCandidate *bestCandidate(const SearchOutcome &outcome);

/**
 * Build a SearchSpace over the layer classes present in @p desc, with
 * the paper's per-class candidate sets
 * (StrategyExplorer::candidates). @p models, @p desc and @p task are
 * borrowed and must outlive the returned space.
 * @throws ConfigError if the model has no layers.
 */
SearchSpace makeSearchSpace(std::vector<const PerfModel *> models,
                            const ModelDesc &desc, const TaskSpec &task,
                            bool explorePrefetch = false);

} // namespace madmax

#endif // MADMAX_DSE_SEARCH_STRATEGY_HH
