/**
 * @file
 * Hardware-scaling sweeps for the future-technologies study (Fig. 19):
 * scale one (or every) hardware capability by a factor, re-run the
 * strategy explorer, and report the resulting best-plan speedup. Also
 * hosts the GPU-hour normalization helper of Figs. 1/16.
 */

#ifndef MADMAX_DSE_SWEEP_HH
#define MADMAX_DSE_SWEEP_HH

#include <string>
#include <vector>

#include "core/strategy_explorer.hh"

namespace madmax
{

/** A scalable hardware capability. */
enum class HwAxis
{
    Compute,       ///< Peak FLOPS (all dtypes).
    HbmCapacity,
    HbmBandwidth,
    IntraBandwidth,
    InterBandwidth,
    All,           ///< Every capability concurrently.
};

std::string toString(HwAxis axis);

/** All individual axes plus the concurrent "All" case. */
const std::vector<HwAxis> &allHwAxes();

/** Scale @p axis of @p cluster by @p factor. */
ClusterSpec scaleAxis(const ClusterSpec &cluster, HwAxis axis,
                      double factor);

/** One point of the scaling study. */
struct ScalingResult
{
    HwAxis axis = HwAxis::All;
    double factor = 1.0;
    ExplorationResult best;   ///< Best plan on the scaled cluster.
    double speedup = 0.0;     ///< Best-vs-baseline-cluster-best ratio.
};

/**
 * For each axis, scale the cluster by @p factor, explore strategies,
 * and report best-plan throughput relative to the unscaled cluster's
 * best plan.
 *
 * @param engine Optional shared EvalEngine: every per-axis search
 *        runs through it, pooling worker threads, and repeated calls
 *        with the same factor/axes are memoized. (Axes do not share
 *        cache entries with each other — a scaled cluster is a
 *        different fingerprint, even on axes like HbmCapacity that
 *        rarely change the timing.) Null runs a private serial
 *        engine per explorer.
 */
std::vector<ScalingResult>
hardwareScalingStudy(const PerfModel &base_model, const ModelDesc &desc,
                     const TaskSpec &task, double factor,
                     const std::vector<HwAxis> &axes = allHwAxes(),
                     EvalEngine *engine = nullptr);

/**
 * Aggregate device-hours normalized to A100 peak FLOPS (Fig. 16's
 * resource metric): raw device-hours x (device peak / A100 peak).
 */
double normalizedGpuHours(const PerfReport &report,
                          const ClusterSpec &cluster, double samples,
                          double a100_peak_flops);

/**
 * Operational accelerator energy in kWh to process @p samples samples
 * (devices x TDP x elapsed time) — the "by extension, operational
 * energy consumption is also reduced" metric of Insight 7. Returns 0
 * when the device has no TDP on record or the report is invalid.
 */
double energyKwhPerSamples(const PerfReport &report,
                           const ClusterSpec &cluster, double samples);

} // namespace madmax

#endif // MADMAX_DSE_SWEEP_HH
