#include "dse/pareto.hh"

#include <algorithm>

#include "util/logging.hh"

namespace madmax
{

bool
dominates(const ParetoPoint &a, const ParetoPoint &b)
{
    bool no_worse = a.cost <= b.cost && a.value >= b.value;
    bool better = a.cost < b.cost || a.value > b.value;
    return no_worse && better;
}

std::vector<size_t>
paretoFrontier(const std::vector<ParetoPoint> &points)
{
    std::vector<size_t> order(points.size());
    for (size_t i = 0; i < points.size(); ++i)
        order[i] = i;
    // Sort by ascending cost, descending value for ties.
    std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
        if (points[a].cost != points[b].cost)
            return points[a].cost < points[b].cost;
        return points[a].value > points[b].value;
    });

    std::vector<size_t> frontier;
    double best_value = -1e300;
    for (size_t idx : order) {
        if (points[idx].value > best_value) {
            frontier.push_back(idx);
            best_value = points[idx].value;
        }
    }
    return frontier;
}

bool
dominates(const ParetoPointNd &a, const ParetoPointNd &b)
{
    if (a.objectives.size() != b.objectives.size())
        fatal("dominates: objective dimension mismatch");
    bool better = false;
    for (size_t k = 0; k < a.objectives.size(); ++k) {
        if (a.objectives[k] < b.objectives[k])
            return false;
        if (a.objectives[k] > b.objectives[k])
            better = true;
    }
    return better;
}

std::vector<size_t>
paretoFrontierNd(const std::vector<ParetoPointNd> &points)
{
    // O(n^2) pairwise scan: DSE frontiers hold at most a few thousand
    // evaluated points, far below where a divide-and-conquer extractor
    // would pay off.
    std::vector<size_t> frontier;
    for (size_t i = 0; i < points.size(); ++i) {
        bool keep = true;
        for (size_t j = 0; j < points.size() && keep; ++j) {
            if (j == i)
                continue;
            if (dominates(points[j], points[i]))
                keep = false;
            // Exact duplicates keep the first occurrence only.
            if (j < i && points[j].objectives == points[i].objectives)
                keep = false;
        }
        if (keep)
            frontier.push_back(i);
    }
    return frontier;
}

} // namespace madmax
