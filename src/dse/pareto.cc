#include "dse/pareto.hh"

#include <algorithm>

namespace madmax
{

bool
dominates(const ParetoPoint &a, const ParetoPoint &b)
{
    bool no_worse = a.cost <= b.cost && a.value >= b.value;
    bool better = a.cost < b.cost || a.value > b.value;
    return no_worse && better;
}

std::vector<size_t>
paretoFrontier(const std::vector<ParetoPoint> &points)
{
    std::vector<size_t> order(points.size());
    for (size_t i = 0; i < points.size(); ++i)
        order[i] = i;
    // Sort by ascending cost, descending value for ties.
    std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
        if (points[a].cost != points[b].cost)
            return points[a].cost < points[b].cost;
        return points[a].value > points[b].value;
    });

    std::vector<size_t> frontier;
    double best_value = -1e300;
    for (size_t idx : order) {
        if (points[idx].value > best_value) {
            frontier.push_back(idx);
            best_value = points[idx].value;
        }
    }
    return frontier;
}

} // namespace madmax
