#include "dse/sweep.hh"

#include "util/logging.hh"

namespace madmax
{

std::string
toString(HwAxis axis)
{
    switch (axis) {
      case HwAxis::Compute: return "compute";
      case HwAxis::HbmCapacity: return "hbm-capacity";
      case HwAxis::HbmBandwidth: return "hbm-bandwidth";
      case HwAxis::IntraBandwidth: return "intra-node-bw";
      case HwAxis::InterBandwidth: return "inter-node-bw";
      case HwAxis::All: return "all";
    }
    panic("toString: unknown HwAxis");
}

const std::vector<HwAxis> &
allHwAxes()
{
    static const std::vector<HwAxis> axes = {
        HwAxis::Compute, HwAxis::HbmCapacity, HwAxis::HbmBandwidth,
        HwAxis::IntraBandwidth, HwAxis::InterBandwidth, HwAxis::All};
    return axes;
}

ClusterSpec
scaleAxis(const ClusterSpec &cluster, HwAxis axis, double factor)
{
    switch (axis) {
      case HwAxis::Compute:
        return cluster.withComputeScale(factor);
      case HwAxis::HbmCapacity:
        return cluster.withHbmCapacityScale(factor);
      case HwAxis::HbmBandwidth:
        return cluster.withHbmBandwidthScale(factor);
      case HwAxis::IntraBandwidth:
        return cluster.withIntraBandwidthScale(factor);
      case HwAxis::InterBandwidth:
        return cluster.withInterBandwidthScale(factor);
      case HwAxis::All:
        return cluster.withComputeScale(factor)
            .withHbmCapacityScale(factor)
            .withHbmBandwidthScale(factor)
            .withIntraBandwidthScale(factor)
            .withInterBandwidthScale(factor);
    }
    panic("scaleAxis: unknown HwAxis");
}

std::vector<ScalingResult>
hardwareScalingStudy(const PerfModel &base_model, const ModelDesc &desc,
                     const TaskSpec &task, double factor,
                     const std::vector<HwAxis> &axes, EvalEngine *engine)
{
    StrategyExplorer base_explorer(base_model, engine);
    ExplorationResult base_best = base_explorer.best(desc, task);
    double base_throughput = base_best.report.throughput();

    std::vector<ScalingResult> out;
    out.reserve(axes.size());
    for (HwAxis axis : axes) {
        PerfModel scaled = base_model.withCluster(
            scaleAxis(base_model.cluster(), axis, factor));
        StrategyExplorer explorer(scaled, engine);
        ScalingResult r;
        r.axis = axis;
        r.factor = factor;
        r.best = explorer.best(desc, task);
        r.speedup = base_throughput > 0.0
            ? r.best.report.throughput() / base_throughput
            : 0.0;
        out.push_back(std::move(r));
    }
    return out;
}

double
energyKwhPerSamples(const PerfReport &report, const ClusterSpec &cluster,
                    double samples)
{
    if (!report.valid || report.throughput() <= 0.0 ||
        cluster.device.tdpWatts <= 0.0) {
        return 0.0;
    }
    double seconds = samples / report.throughput();
    double joules =
        seconds * cluster.device.tdpWatts * cluster.numDevices();
    return joules / 3.6e6;
}

double
normalizedGpuHours(const PerfReport &report, const ClusterSpec &cluster,
                   double samples, double a100_peak_flops)
{
    if (a100_peak_flops <= 0.0)
        fatal("normalizedGpuHours: a100_peak_flops must be positive");
    double ratio =
        cluster.device.peakFlopsTensor16 / a100_peak_flops;
    return report.deviceHoursPerSamples(samples, cluster.numDevices(),
                                        ratio);
}

} // namespace madmax
