#include "dse/search_strategy.hh"

#include <algorithm>
#include <cmath>
#include <limits>
#include <random>
#include <set>

#include "core/strategy_explorer.hh"
#include "util/logging.hh"

namespace madmax
{

namespace
{

/**
 * Deterministic bounded draw. std::uniform_int_distribution's mapping
 * is implementation-defined, so the guided searches would produce
 * different (still valid) answers per standard library; a plain modulo
 * over the raw 64-bit stream keeps the searches bit-reproducible
 * everywhere, and the bias is irrelevant at these tiny ranges.
 */
size_t
drawIndex(std::mt19937_64 &rng, size_t bound)
{
    return static_cast<size_t>(rng() % bound);
}

/** Uniform double in [0, 1). */
double
drawUnit(std::mt19937_64 &rng)
{
    return static_cast<double>(rng() >> 11) * 0x1p-53;
}

/** Evaluate a batch of (hwIndex, plan) points through the engine and
 *  append every result (including cache hits and pruned OOM verdicts)
 *  to @p out in request order. The batch is one evaluateAll call, so
 *  it rides the engine's context grouping and thread pool — or, when
 *  the strategy passes its DeltaSession, the incremental splice path
 *  (see SearchOptions::deltaEval). */
void
evaluateInto(const SearchSpace &space, EvalEngine &engine,
             std::vector<std::pair<size_t, ParallelPlan>> points,
             SearchOutcome &out, DeltaSession *session = nullptr)
{
    if (points.empty())
        return;
    std::vector<PlanRequest> requests;
    requests.reserve(points.size());
    for (auto &[hw, plan] : points) {
        PlanRequest req;
        req.model = space.models[hw];
        req.desc = space.desc;
        req.task = space.task;
        req.plan = std::move(plan);
        requests.push_back(std::move(req));
    }
    EvalStats stats;
    std::vector<PerfReport> reports =
        engine.evaluateAll(requests, &stats, session);
    out.stats += stats;
    out.evaluated.reserve(out.evaluated.size() + requests.size());
    for (size_t i = 0; i < requests.size(); ++i) {
        out.evaluated.push_back(SearchCandidate{
            points[i].first, std::move(requests[i].plan),
            std::move(reports[i])});
    }
}

/** The guided strategies' effective evaluation budget. */
long
effectiveBudget(const SearchSpace &space, const SearchOptions &options)
{
    if (options.maxEvaluations < 0)
        return 0; // The caller's budget is already spent.
    if (options.maxEvaluations > 0)
        return options.maxEvaluations;
    size_t size = space.size();
    return std::max<long>(12, static_cast<long>(size / 6));
}

/**
 * Trim a batch so it cannot overshoot the remaining budget even if
 * every point turns out to be a fresh evaluation (cache hits and
 * pruned points just leave budget unspent) — the budget is a hard
 * ceiling, not a soft target.
 */
void
trimToBudget(std::vector<std::pair<size_t, ParallelPlan>> &points,
             long budget, const EvalStats &stats)
{
    long room = budget - stats.evaluations;
    if (room < 0)
        room = 0;
    if (static_cast<long>(points.size()) > room)
        points.resize(static_cast<size_t>(room));
}

/** Best valid warm-start candidate by throughput, or null. */
const SearchCandidate *
bestWarmStart(const SearchSpace &space)
{
    const SearchCandidate *best = nullptr;
    for (const SearchCandidate &c : space.warmStart) {
        if (c.report.valid &&
            (!best || c.report.throughput() >
                 best->report.throughput())) {
            best = &c;
        }
    }
    return best;
}

/** Throughput if valid, -1 otherwise (worse than any valid plan). */
double
fitnessOf(const PerfReport &report)
{
    return report.valid ? report.throughput() : -1.0;
}

/** A crude but deterministic hardware-capability rank used to pick
 *  the seed hardware point: aggregate best-available peak FLOPS. */
double
hardwareRank(const PerfModel &model)
{
    const ClusterSpec &c = model.cluster();
    double peak = std::max({c.device.peakFlopsTensor16,
                            c.device.peakFlopsTf32,
                            c.device.peakFlopsFp32});
    return peak * c.numDevices();
}

/**
 * The baseline plan every search starts from: the FSDP baseline with
 * prefetching on, matching explore()'s production default — but
 * restricted to the classes the space actually has, so guided plans
 * render (and compare) identically to exhaustively-enumerated ones.
 */
ParallelPlan
seedPlan(const SearchSpace &space)
{
    ParallelPlan base = ParallelPlan::fsdpBaseline();
    ParallelPlan plan;
    plan.fsdpPrefetch = true;
    for (LayerClass cls : space.classes)
        plan.set(cls, base.strategyFor(cls));
    return plan;
}

// --- Exhaustive -------------------------------------------------------

class ExhaustiveSearch : public SearchStrategy
{
  public:
    std::string name() const override { return "exhaustive"; }

    SearchOutcome run(const SearchSpace &space, EvalEngine &engine,
                      const SearchOptions &) const override
    {
        space.validate();
        std::vector<ParallelPlan> plans = enumeratePlans(space);
        std::vector<std::pair<size_t, ParallelPlan>> points;
        points.reserve(space.models.size() * plans.size());
        for (size_t hw = 0; hw < space.models.size(); ++hw)
            for (const ParallelPlan &plan : plans)
                points.emplace_back(hw, plan);
        SearchOutcome out;
        evaluateInto(space, engine, std::move(points), out);
        return out;
    }
};

// --- Coordinate descent -----------------------------------------------

class CoordinateDescentSearch : public SearchStrategy
{
  public:
    std::string name() const override { return "coordinate-descent"; }

    SearchOutcome run(const SearchSpace &space, EvalEngine &engine,
                      const SearchOptions &options) const override
    {
        space.validate();
        // Coordinate descent terminates on its own (fixpoint, >= 8
        // rounds); the budget only binds when set explicitly.
        const long budget = options.maxEvaluations == 0
            ? std::numeric_limits<long>::max()
            : std::max<long>(0, options.maxEvaluations);
        SearchOutcome out;
        // Per-run incremental-evaluation session: each sweep's trials
        // differ from the incumbent in one coordinate, the delta
        // path's best case.
        DeltaSession session;
        DeltaSession *ds = options.deltaEval ? &session : nullptr;

        // Seed: the baseline plan — on the warm start's best hardware
        // point when the caller provided one, otherwise on every
        // hardware point (a single point when called from
        // StrategyExplorer::best).
        ParallelPlan plan = seedPlan(space);
        std::vector<std::pair<size_t, ParallelPlan>> seeds;
        if (const SearchCandidate *warm = bestWarmStart(space)) {
            seeds.emplace_back(warm->hwIndex, plan);
        } else {
            for (size_t hw = 0; hw < space.models.size(); ++hw)
                seeds.emplace_back(hw, plan);
        }
        trimToBudget(seeds, budget, out.stats);
        evaluateInto(space, engine, std::move(seeds), out, ds);

        size_t hwCur = 0;
        PerfReport best;
        for (const SearchCandidate &c : out.evaluated) {
            if (c.report.valid &&
                (!best.valid ||
                 c.report.throughput() > best.throughput())) {
                best = c.report;
                hwCur = c.hwIndex;
            }
        }

        // Greedy sweeps, one coordinate at a time, until no single
        // change helps. Each sweep is one engine batch: within a sweep
        // every trial varies only that coordinate, so batching matches
        // sequential greedy adoption exactly (argmax == last adopted).
        bool improved = true;
        int rounds = 0;
        while (improved && rounds++ < 8 &&
               out.stats.evaluations < budget) {
            improved = false;
            for (size_t ci = 0; ci < space.classes.size(); ++ci) {
                LayerClass cls = space.classes[ci];
                std::vector<std::pair<size_t, ParallelPlan>> trials;
                for (HierStrategy hs : space.candidates[ci]) {
                    if (plan.strategyFor(cls) == hs)
                        continue;
                    ParallelPlan p = plan;
                    p.set(cls, hs);
                    trials.emplace_back(hwCur, std::move(p));
                }
                trimToBudget(trials, budget, out.stats);
                size_t first = out.evaluated.size();
                evaluateInto(space, engine, std::move(trials), out, ds);
                for (size_t i = first; i < out.evaluated.size(); ++i) {
                    const SearchCandidate &c = out.evaluated[i];
                    if (c.report.valid &&
                        (!best.valid || c.report.throughput() >
                             best.throughput())) {
                        plan = c.plan;
                        best = c.report;
                        improved = true;
                    }
                }
            }
            // The hardware coordinate: the current plan on every other
            // hardware point (a no-op for single-point spaces).
            std::vector<std::pair<size_t, ParallelPlan>> hwTrials;
            for (size_t hw = 0; hw < space.models.size(); ++hw) {
                if (hw != hwCur)
                    hwTrials.emplace_back(hw, plan);
            }
            trimToBudget(hwTrials, budget, out.stats);
            size_t first = out.evaluated.size();
            evaluateInto(space, engine, std::move(hwTrials), out, ds);
            for (size_t i = first; i < out.evaluated.size(); ++i) {
                const SearchCandidate &c = out.evaluated[i];
                if (c.report.valid &&
                    (!best.valid ||
                     c.report.throughput() > best.throughput())) {
                    hwCur = c.hwIndex;
                    best = c.report;
                    improved = true;
                }
            }
        }
        return out;
    }
};

// --- Simulated annealing ----------------------------------------------

class SimulatedAnnealingSearch : public SearchStrategy
{
  public:
    std::string name() const override { return "annealing"; }

    SearchOutcome run(const SearchSpace &space, EvalEngine &engine,
                      const SearchOptions &options) const override
    {
        space.validate();
        const long budget = effectiveBudget(space, options);
        std::mt19937_64 rng(options.seed);
        SearchOutcome out;
        // Per-run incremental-evaluation session: the random walk's
        // single-point proposals mutate one coordinate at a time, so
        // nearly every evaluation takes the splice path.
        DeltaSession session;
        DeltaSession *ds = options.deltaEval ? &session : nullptr;

        // Seed on the most promising hardware point: the warm start's
        // best when the caller provided one (ParetoEngine passes its
        // baseline sweep), otherwise the beefiest by a deterministic
        // capability heuristic — then give the other points a look
        // while the budget allows half of it for seeding.
        size_t hwBest = 0;
        if (const SearchCandidate *warm = bestWarmStart(space)) {
            hwBest = warm->hwIndex;
        } else {
            for (size_t hw = 1; hw < space.models.size(); ++hw) {
                if (hardwareRank(*space.models[hw]) >
                    hardwareRank(*space.models[hwBest])) {
                    hwBest = hw;
                }
            }
        }
        std::vector<std::pair<size_t, ParallelPlan>> seeds;
        seeds.emplace_back(hwBest, seedPlan(space));
        if (space.warmStart.empty()) {
            for (size_t hw = 0; hw < space.models.size(); ++hw) {
                if (hw != hwBest &&
                    static_cast<long>(seeds.size()) < budget / 2) {
                    seeds.emplace_back(hw, seedPlan(space));
                }
            }
        }
        trimToBudget(seeds, budget, out.stats);
        evaluateInto(space, engine, std::move(seeds), out, ds);

        size_t hwCur = hwBest;
        ParallelPlan planCur = seedPlan(space);
        PerfReport cur;
        for (const SearchCandidate &c : out.evaluated) {
            if (c.report.valid &&
                (!cur.valid ||
                 c.report.throughput() > cur.throughput())) {
                cur = c.report;
                hwCur = c.hwIndex;
                planCur = c.plan;
            }
        }

        // Tabu set: points already visited this run are never
        // re-proposed — with a tight budget every evaluation must be
        // a fresh point, not a random-walk revisit.
        auto pointKey = [](size_t hw, const ParallelPlan &plan) {
            return std::to_string(hw) + '|' + plan.toString() +
                (plan.fsdpPrefetch ? "+p" : "-p");
        };
        std::set<std::string> seen;
        for (const SearchCandidate &c : out.evaluated)
            seen.insert(pointKey(c.hwIndex, c.plan));

        double temperature = options.initialTemperature;
        // Proposal cap: tabu'd proposals are free, so a small space
        // must not spin forever once it is exhausted.
        long proposals = 0;
        const long maxProposals =
            64 + 16 * static_cast<long>(budget);
        while (out.stats.evaluations < budget &&
               proposals++ < maxProposals) {
            size_t hwNext = hwCur;
            ParallelPlan planNext = planCur;
            bool canMoveHw = space.models.size() > 1;
            // No coordinate has a move at all (every class pinned to
            // one candidate, single hardware point): nothing to walk.
            bool anyClassMutable = false;
            for (const std::vector<HierStrategy> &cands :
                 space.candidates) {
                if (cands.size() > 1)
                    anyClassMutable = true;
            }
            if (!canMoveHw && !anyClassMutable)
                break;
            bool moveHw = canMoveHw &&
                (!anyClassMutable ||
                 drawUnit(rng) < options.hardwareMoveProbability);
            if (moveHw) {
                hwNext = drawIndex(rng, space.models.size() - 1);
                if (hwNext >= hwCur)
                    ++hwNext;
            } else {
                size_t ci = drawIndex(rng, space.classes.size());
                const std::vector<HierStrategy> &cands =
                    space.candidates[ci];
                if (cands.size() < 2)
                    continue; // Pinned class; draw another coordinate.
                HierStrategy hs =
                    cands[drawIndex(rng, cands.size())];
                if (planNext.strategyFor(space.classes[ci]) == hs)
                    continue;
                planNext.set(space.classes[ci], hs);
            }

            if (!seen.insert(pointKey(hwNext, planNext)).second)
                continue; // Already visited; propose something new.

            size_t first = out.evaluated.size();
            evaluateInto(space, engine, {{hwNext, planNext}}, out, ds);
            const PerfReport &next = out.evaluated[first].report;
            temperature *= options.coolingRate;
            if (!next.valid)
                continue;
            bool accept;
            if (!cur.valid || next.throughput() >= cur.throughput()) {
                accept = true;
            } else {
                double drop = (cur.throughput() - next.throughput()) /
                    cur.throughput();
                accept = temperature > 0.0 &&
                    drawUnit(rng) < std::exp(-drop / temperature);
            }
            if (accept) {
                hwCur = hwNext;
                planCur = planNext;
                cur = next;
            }
        }
        return out;
    }
};

// --- Genetic ----------------------------------------------------------

class GeneticSearch : public SearchStrategy
{
  public:
    std::string name() const override { return "genetic"; }

    SearchOutcome run(const SearchSpace &space, EvalEngine &engine,
                      const SearchOptions &options) const override
    {
        space.validate();
        const long budget = effectiveBudget(space, options);
        std::mt19937_64 rng(options.seed);
        SearchOutcome out;
        // Per-run incremental-evaluation session: generations are
        // small batches of near-duplicate genomes, well inside the
        // splice path's sweet spot.
        DeltaSession session;
        DeltaSession *ds = options.deltaEval ? &session : nullptr;

        // Genome: hardware index + one candidate index per class.
        struct Individual
        {
            size_t hw = 0;
            std::vector<size_t> genes;
            double fitness = -1.0;
        };
        auto toPlan = [&](const Individual &ind) {
            ParallelPlan plan = seedPlan(space);
            for (size_t ci = 0; ci < space.classes.size(); ++ci)
                plan.set(space.classes[ci],
                         space.candidates[ci][ind.genes[ci]]);
            return plan;
        };
        auto baselineGenes = [&] {
            ParallelPlan base = seedPlan(space);
            std::vector<size_t> genes(space.classes.size(), 0);
            for (size_t ci = 0; ci < space.classes.size(); ++ci) {
                const std::vector<HierStrategy> &cands =
                    space.candidates[ci];
                for (size_t k = 0; k < cands.size(); ++k) {
                    if (cands[k] == base.strategyFor(space.classes[ci]))
                        genes[ci] = k;
                }
            }
            return genes;
        };

        // Seed phase: sweep each class around the baseline on the
        // most promising hardware point (the warm start's best when
        // provided, else the beefiest by capability) and keep the
        // per-class winners — the population starts from locally-good
        // building blocks instead of uniform noise.
        size_t hwSeed = 0;
        if (const SearchCandidate *warm = bestWarmStart(space)) {
            hwSeed = warm->hwIndex;
        } else {
            for (size_t hw = 1; hw < space.models.size(); ++hw) {
                if (hardwareRank(*space.models[hw]) >
                    hardwareRank(*space.models[hwSeed])) {
                    hwSeed = hw;
                }
            }
        }
        std::vector<size_t> winners = baselineGenes();
        std::vector<Individual> population;
        for (size_t ci = 0;
             ci < space.classes.size() &&
             out.stats.evaluations < budget;
             ++ci) {
            std::vector<std::pair<size_t, ParallelPlan>> sweep;
            for (size_t k = 0; k < space.candidates[ci].size(); ++k) {
                Individual ind{hwSeed, winners, -1.0};
                ind.genes[ci] = k;
                sweep.emplace_back(hwSeed, toPlan(ind));
            }
            trimToBudget(sweep, budget, out.stats);
            size_t swept = sweep.size();
            size_t first = out.evaluated.size();
            evaluateInto(space, engine, std::move(sweep), out, ds);
            double bestFit = -1.0;
            for (size_t i = first; i < first + swept; ++i) {
                double fit = fitnessOf(out.evaluated[i].report);
                Individual ind{hwSeed, winners, fit};
                ind.genes[ci] = i - first;
                population.push_back(ind);
                if (fit > bestFit) {
                    bestFit = fit;
                    winners[ci] = i - first;
                }
            }
        }

        std::set<std::string> visited;
        auto genomeKey = [](const Individual &ind) {
            std::string key = std::to_string(ind.hw);
            for (size_t g : ind.genes)
                key += ':' + std::to_string(g);
            return key;
        };
        for (const Individual &ind : population)
            visited.insert(genomeKey(ind));

        // Evaluate a batch of genomes, skipping genomes already
        // visited this run and trimming to the remaining budget (the
        // trim assumes every point is fresh, so the budget is a hard
        // ceiling even before cache effects).
        auto evaluateGenomes = [&](std::vector<Individual> batch) {
            std::vector<Individual> fresh;
            for (Individual &ind : batch) {
                if (visited.insert(genomeKey(ind)).second)
                    fresh.push_back(std::move(ind));
            }
            long room = budget - out.stats.evaluations;
            if (room <= 0)
                return;
            if (static_cast<long>(fresh.size()) > room)
                fresh.resize(static_cast<size_t>(room));
            std::vector<std::pair<size_t, ParallelPlan>> points;
            for (const Individual &ind : fresh)
                points.emplace_back(ind.hw, toPlan(ind));
            size_t first = out.evaluated.size();
            evaluateInto(space, engine, std::move(points), out, ds);
            for (size_t i = 0; i < fresh.size(); ++i) {
                fresh[i].fitness =
                    fitnessOf(out.evaluated[first + i].report);
                population.push_back(std::move(fresh[i]));
            }
        };

        // Complete the initial population: the all-winners genome on
        // every hardware point, then random genomes for diversity.
        {
            std::vector<Individual> extra;
            for (size_t hw = 0; hw < space.models.size(); ++hw)
                extra.push_back(Individual{hw, winners, -1.0});
            while (extra.size() + population.size() <
                   static_cast<size_t>(options.populationSize)) {
                Individual ind;
                ind.hw = drawIndex(rng, space.models.size());
                for (size_t ci = 0; ci < space.classes.size(); ++ci)
                    ind.genes.push_back(
                        drawIndex(rng, space.candidates[ci].size()));
                extra.push_back(std::move(ind));
            }
            evaluateGenomes(std::move(extra));
        }

        auto fitter = [](const Individual &a, const Individual &b) {
            return a.fitness > b.fitness;
        };
        auto tournament = [&]() -> const Individual & {
            const Individual &a =
                population[drawIndex(rng, population.size())];
            const Individual &b =
                population[drawIndex(rng, population.size())];
            return a.fitness >= b.fitness ? a : b;
        };

        for (int gen = 0; gen < options.maxGenerations &&
             out.stats.evaluations < budget && !population.empty();
             ++gen) {
            // Keep selection pressure bounded: survivors are the
            // fittest populationSize genomes seen so far.
            std::stable_sort(population.begin(), population.end(),
                             fitter);
            if (population.size() >
                static_cast<size_t>(options.populationSize)) {
                population.resize(
                    static_cast<size_t>(options.populationSize));
            }
            std::vector<Individual> children;
            for (int k = 0; k < options.populationSize; ++k) {
                const Individual &pa = tournament();
                const Individual &pb = tournament();
                Individual child;
                // Crossover on layer-class assignments; the hardware
                // gene rides along from one parent.
                child.hw = drawUnit(rng) < 0.5 ? pa.hw : pb.hw;
                for (size_t ci = 0; ci < space.classes.size(); ++ci)
                    child.genes.push_back(drawUnit(rng) < 0.5
                                              ? pa.genes[ci]
                                              : pb.genes[ci]);
                if (drawUnit(rng) < options.mutationRate &&
                    space.models.size() > 1) {
                    child.hw = drawIndex(rng, space.models.size());
                }
                for (size_t ci = 0; ci < space.classes.size(); ++ci) {
                    if (drawUnit(rng) < options.mutationRate) {
                        child.genes[ci] = drawIndex(
                            rng, space.candidates[ci].size());
                    }
                }
                children.push_back(std::move(child));
            }
            evaluateGenomes(std::move(children));
        }
        return out;
    }
};

} // namespace

size_t
SearchSpace::planCount() const
{
    size_t count = 1;
    for (const std::vector<HierStrategy> &cands : candidates)
        count *= cands.size();
    return count;
}

void
SearchSpace::validate() const
{
    if (models.empty())
        fatal("SearchSpace: no hardware points");
    for (const PerfModel *model : models) {
        if (!model)
            fatal("SearchSpace: null PerfModel");
    }
    if (!desc || !task)
        fatal("SearchSpace: null model description or task");
    if (classes.size() != candidates.size())
        fatal("SearchSpace: classes/candidates size mismatch");
    for (const std::vector<HierStrategy> &cands : candidates) {
        if (cands.empty())
            fatal("SearchSpace: a layer class has no candidates");
    }
}

std::vector<ParallelPlan>
enumeratePlans(const SearchSpace &space)
{
    // Cartesian product over per-class candidates. Plans inherit the
    // production default of prefetch-enabled FSDP so searches never
    // rank below the baseline on a technicality. This enumeration
    // order is a compatibility contract: the golden explore() suites
    // snapshot it.
    std::vector<ParallelPlan> plans;
    plans.emplace_back();
    plans.back().fsdpPrefetch = true;
    for (size_t ci = 0; ci < space.classes.size(); ++ci) {
        std::vector<ParallelPlan> expanded;
        for (const ParallelPlan &base : plans) {
            for (HierStrategy hs : space.candidates[ci]) {
                ParallelPlan p = base;
                p.set(space.classes[ci], hs);
                expanded.push_back(std::move(p));
            }
        }
        plans = std::move(expanded);
    }
    if (space.explorePrefetch) {
        // Ablation variants with prefetching disabled (Fig. 9).
        size_t base_count = plans.size();
        for (size_t i = 0; i < base_count; ++i) {
            bool has_fsdp = false;
            for (const auto &[cls, hs] : plans[i].byClass) {
                if (hs.intra == Strategy::FSDP ||
                    hs.inter == Strategy::FSDP) {
                    has_fsdp = true;
                }
            }
            if (has_fsdp) {
                ParallelPlan p = plans[i];
                p.fsdpPrefetch = false;
                plans.push_back(std::move(p));
            }
        }
    }
    return plans;
}

const SearchCandidate *
bestCandidate(const SearchOutcome &outcome)
{
    const SearchCandidate *best = nullptr;
    for (const SearchCandidate &c : outcome.evaluated) {
        if (c.report.valid &&
            (!best || c.report.throughput() >
                 best->report.throughput())) {
            best = &c;
        }
    }
    return best;
}

SearchSpace
makeSearchSpace(std::vector<const PerfModel *> models,
                const ModelDesc &desc, const TaskSpec &task,
                bool explorePrefetch)
{
    SearchSpace space;
    space.models = std::move(models);
    space.desc = &desc;
    space.task = &task;
    space.explorePrefetch = explorePrefetch;
    for (LayerClass cls : {LayerClass::SparseEmbedding,
                           LayerClass::DenseEmbedding,
                           LayerClass::BaseDense, LayerClass::Transformer,
                           LayerClass::MoE}) {
        if (desc.graph.hasClass(cls)) {
            space.classes.push_back(cls);
            space.candidates.push_back(
                StrategyExplorer::candidates(cls));
        }
    }
    if (space.classes.empty())
        fatal("SearchSpace: model '" + desc.name + "' has no layers");
    space.validate();
    return space;
}

const std::vector<std::string> &
searchStrategyNames()
{
    static const std::vector<std::string> names = {
        "exhaustive", "coordinate-descent", "annealing", "genetic"};
    return names;
}

std::unique_ptr<SearchStrategy>
makeSearchStrategy(const std::string &name)
{
    if (name == "exhaustive")
        return std::make_unique<ExhaustiveSearch>();
    if (name == "coordinate-descent")
        return std::make_unique<CoordinateDescentSearch>();
    if (name == "annealing")
        return std::make_unique<SimulatedAnnealingSearch>();
    if (name == "genetic")
        return std::make_unique<GeneticSearch>();
    std::string known;
    for (const std::string &n : searchStrategyNames())
        known += (known.empty() ? "" : ", ") + n;
    fatal("unknown search strategy '" + name + "' (registered: " +
          known + ")");
}

} // namespace madmax
