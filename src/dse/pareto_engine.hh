/**
 * @file
 * Multi-objective design-space exploration engine (§V, Figs. 1/13/16/
 * 17): searches the joint (hardware point x parallelization plan)
 * space through an EvalEngine and returns the Pareto frontier of
 * {throughput, perf-per-TCO, memory headroom} — every returned point
 * is non-dominated among everything the search visited, so the
 * frontier is free of dominated points by construction.
 *
 * The search itself is pluggable (dse/search_strategy.hh): exhaustive
 * reproduces the historical full sweeps bit-for-bit, while the guided
 * strategies (coordinate-descent, annealing, genetic) trade frontier
 * completeness for an evaluation budget — EvalStats on the result
 * makes that trade measurable.
 *
 * Consumers: `madmax pareto` (CLI), `POST /v1/pareto` (serve), and
 * the Fig. 1/13/16 bench binaries. Full reference: docs/dse.md.
 */

#ifndef MADMAX_DSE_PARETO_ENGINE_HH
#define MADMAX_DSE_PARETO_ENGINE_HH

#include <memory>
#include <string>
#include <vector>

#include "core/inference_model.hh"
#include "dse/search_strategy.hh"

namespace madmax
{

/**
 * One hardware design point of the joint space: a cluster shape plus
 * the cost-normalization metadata of the paper's cloud studies.
 */
struct HardwarePoint
{
    std::string name;    ///< Display name (defaults to cluster.name).
    ClusterSpec cluster;

    /** Device peak / A100 peak, the Fig. 16 GPU-hour normalizer. */
    double a100PeakRatio = 1.0;
};

/**
 * Cost-model knobs for the perf-per-TCO objective (docs/dse.md §cost
 * model). TCO is modeled as a rental rate: numDevices x a100PeakRatio
 * x dollarsPerA100Hour — capability-normalized so an H100 fleet is
 * priced proportionally to the silicon it packs, matching the paper's
 * A100-normalized GPU-hour resource axis.
 */
struct CostModelOptions
{
    /** Rental $ per A100-equivalent device-hour (on-demand ballpark). */
    double dollarsPerA100Hour = 4.1;
};

/** The three maximized objectives of one candidate. */
struct ParetoObjectives
{
    double throughput = 0.0;       ///< Samples (queries) per second.
    double perfPerTco = 0.0;       ///< Throughput per $/hour of fleet.
    double memHeadroomBytes = 0.0; ///< usableCapacity - footprint.
};

/** One evaluated candidate of the joint space. */
struct ParetoCandidate
{
    size_t hwIndex = 0;  ///< Index into ParetoEngine::hardware().
    ParallelPlan plan;
    PerfReport report;
    ParetoObjectives objectives; ///< Meaningful when report.valid.
};

/** ParetoEngine::explore knobs. */
struct ParetoOptions
{
    /** Registry name: exhaustive | coordinate-descent | annealing |
     *  genetic (searchStrategyNames()). */
    std::string strategy = "exhaustive";

    /** Seed / evaluation-budget knobs for the guided strategies. */
    SearchOptions search;

    CostModelOptions cost;

    /**
     * Also evaluate the FSDP baseline plan on every hardware point
     * and report it in ParetoFrontier::baselines — the default-
     * mapping frontier the paper's Fig. 1/16 normalize against.
     * Baseline evaluations count toward search.maxEvaluations.
     */
    bool includeBaselines = true;
};

/** The result of one multi-objective exploration. */
struct ParetoFrontier
{
    /**
     * The non-dominated subset of everything the search visited, in
     * descending-throughput order. Candidates with bitwise-identical
     * objective vectors appear once (first visit wins).
     */
    std::vector<ParetoCandidate> points;

    /** Every point the search visited, in visit order (exhaustive:
     *  canonical enumeration order). Includes OOM candidates. */
    std::vector<ParetoCandidate> candidates;

    /** Throughput-best valid candidate per hardware point; hardware
     *  points where nothing fits are absent. */
    std::vector<ParetoCandidate> bestPerHw;

    /** FSDP-baseline evaluation per hardware point (including OOM
     *  verdicts), in hardware order; empty if disabled. */
    std::vector<ParetoCandidate> baselines;

    /** Which strategy produced this frontier. */
    std::string strategy;

    /** Whole-search cost (baselines included). */
    EvalStats stats;
};

/**
 * @name Serving-placement search space
 * The joint space of an LLM serving deployment on a mixed-generation
 * cluster: which island runs prefill, which runs decode (p == d is
 * the classic colocated deployment), and which parallelization plan
 * each phase uses. A homogeneous cluster degenerates to one island
 * and colocated-only placement. Searched by
 * exploreInferencePlacements() below.
 */
/// @{

/** The three maximized objectives of one serving placement. */
struct InferencePlacementObjectives
{
    double tokensPerSecond = 0.0; ///< Generated tokens/s, fleet-wide.

    /**
     * tokensPerSecond per $/hour of the WHOLE fleet — every placement
     * on one cluster is priced against all of its islands (you pay
     * for the pool whether a phase uses it or not), so leaving an
     * island idle shows up as a worse perf-per-TCO, not a cheaper
     * deployment.
     */
    double perfPerTco = 0.0;

    /** KV-capacity ceiling on resident sequences (admission control). */
    double maxConcurrentSequences = 0.0;
};

/** One evaluated placement of the serving joint space. */
struct InferencePlacementCandidate
{
    int prefillIsland = 0; ///< Index into frontier islands.
    int decodeIsland = 0;
    ParallelPlan prefillPlan;
    ParallelPlan decodePlan;
    InferenceReport report;
    InferencePlacementObjectives objectives; ///< Meaningful when valid.
};

/** The result of one serving-placement exploration. */
struct InferencePlacementFrontier
{
    /** The evaluable islands (group name, or cluster name when
     *  homogeneous), in ClusterSpec::groups order. */
    std::vector<std::string> islands;

    /** Every placement evaluated, in (prefill, decode) enumeration
     *  order. Includes invalid (OOM) placements. */
    std::vector<InferencePlacementCandidate> candidates;

    /** The non-dominated valid placements, descending tokens/s. */
    std::vector<InferencePlacementCandidate> points;

    /** Whole-search evaluation cost (per-phase plan sweeps). */
    EvalStats stats;
};

/// @}

/**
 * The multi-objective DSE engine. Construction validates every
 * hardware point's cluster (PerfModel construction); explore() is
 * const and thread-safe under the same contract as StrategyExplorer.
 */
class ParetoEngine
{
  public:
    /**
     * @param hardware The hardware points of the joint space.
     * @param engine Shared evaluation engine; null = private serial
     *        engine (memoizing, one thread), same as StrategyExplorer.
     * @throws ConfigError on an empty catalog or an invalid cluster.
     */
    explicit ParetoEngine(std::vector<HardwarePoint> hardware,
                          EvalEngine *engine = nullptr);

    const std::vector<HardwarePoint> &hardware() const { return hw_; }

    /**
     * Search the joint space with options.strategy and extract the
     * multi-objective frontier. Deterministic for fixed options and
     * any engine thread count.
     * @throws ConfigError on an unknown strategy name.
     */
    ParetoFrontier explore(const ModelDesc &desc, const TaskSpec &task,
                           const ParetoOptions &options = {}) const;

    /**
     * Serving-placement search over a (possibly heterogeneous)
     * cluster: see exploreInferencePlacements(). Static because a
     * heterogeneous ClusterSpec cannot construct the homogeneous
     * PerfModel catalog this class holds.
     */
    static InferencePlacementFrontier
    exploreInference(const ModelDesc &desc,
                     const InferenceWorkload &workload,
                     const ClusterSpec &cluster,
                     const ParetoOptions &options = {},
                     EvalEngine *engine = nullptr);

  private:
    EvalEngine &engine() const;

    std::vector<HardwarePoint> hw_;
    std::vector<PerfModel> models_; ///< One per hardware point.
    EvalEngine *shared_;                ///< Borrowed; may be null.
    std::unique_ptr<EvalEngine> owned_; ///< Serial fallback.
};

/** Objectives for one evaluated candidate under @p cost. */
ParetoObjectives
scoreObjectives(const PerfReport &report, const HardwarePoint &hw,
                const CostModelOptions &cost);

/**
 * Search serving placements of @p workload for @p desc on @p cluster.
 * Per-phase plan selection is an exhaustive sweep of the inference
 * plan space on each island (the space is small — the guided
 * strategies are not needed); colocated placements pick the single
 * plan maximizing the composed request rate, disaggregated ones pick
 * each phase's best plan independently.
 * @throws ConfigError on an invalid cluster or workload.
 */
InferencePlacementFrontier
exploreInferencePlacements(const ModelDesc &desc,
                           const InferenceWorkload &workload,
                           const ClusterSpec &cluster,
                           const ParetoOptions &options = {},
                           EvalEngine *engine = nullptr);

/**
 * Machine-readable placement-frontier rendering, shared byte-for-byte
 * by `madmax pareto --workload ... --format json` and `/v1/pareto`.
 */
JsonValue toJson(const InferencePlacementFrontier &frontier);

/// @}

/**
 * The public-cloud instance catalog (hw_zoo::cloudInstances) as
 * hardware points — the Figs. 1/16 joint space.
 */
std::vector<HardwarePoint> cloudHardwareCatalog(int num_nodes = 16);

/** A single-cluster hardware point, its A100 peak ratio derived from
 *  the device datasheet (1.0 when the device lists no tensor peak). */
HardwarePoint makeHardwarePoint(const ClusterSpec &cluster);

/**
 * One base cluster swept across node counts — the single-system joint
 * space (e.g. "how many ZionEX nodes should this job rent?").
 * @throws ConfigError if @p node_counts is empty or non-positive.
 */
std::vector<HardwarePoint>
nodeCountSweep(const ClusterSpec &cluster,
               const std::vector<int> &node_counts);

/**
 * Machine-readable frontier rendering, shared byte-for-byte by
 * `madmax pareto --format json` and the serving API's `/v1/pareto`
 * (reports render through toJson(PerfReport)).
 */
JsonValue toJson(const ParetoFrontier &frontier,
                 const std::vector<HardwarePoint> &hardware);

} // namespace madmax

#endif // MADMAX_DSE_PARETO_ENGINE_HH
