#include "serve/circuit_breaker.hh"

#include "util/logging.hh"

namespace madmax
{

namespace
{

/** Ceil a remaining cool-down to whole seconds, at least 1. */
long
retryAfterFor(std::chrono::steady_clock::duration remaining)
{
    auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                  remaining)
                  .count();
    if (ms <= 0)
        return 1;
    return (ms + 999) / 1000;
}

} // namespace

CircuitBreaker::CircuitBreaker(CircuitBreakerOptions options)
    : options_(options)
{
    if (options_.failureThreshold < 1)
        fatal("CircuitBreaker: failureThreshold must be >= 1");
    if (options_.openMillis < 1)
        fatal("CircuitBreaker: openMillis must be >= 1");
}

bool
CircuitBreaker::admit(uint64_t key, long *retryAfterSeconds)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = entries_.find(key);
    if (it == entries_.end())
        return true; // Clean key: no bookkeeping, no gate.
    Entry &e = it->second;
    switch (e.state) {
    case State::Closed:
        return true;
    case State::Open: {
        auto elapsed = Clock::now() - e.openedAt;
        auto coolDown = std::chrono::milliseconds(options_.openMillis);
        if (elapsed < coolDown) {
            ++stats_.rejects;
            if (retryAfterSeconds)
                *retryAfterSeconds = retryAfterFor(coolDown - elapsed);
            return false;
        }
        e.state = State::HalfOpen;
        e.probeInFlight = true;
        e.probeStartedAt = Clock::now();
        ++stats_.probes;
        return true;
    }
    case State::HalfOpen:
        if (e.probeInFlight &&
            Clock::now() - e.probeStartedAt <
                std::chrono::milliseconds(options_.openMillis)) {
            // One probe at a time: everyone else keeps fast-failing
            // until the probe's verdict is in. A probe that never
            // reports (e.g. its deadline expired) forfeits its slot
            // after one cool-down period, so a lost probe cannot
            // wedge the key open forever.
            ++stats_.rejects;
            if (retryAfterSeconds)
                *retryAfterSeconds = 1;
            return false;
        }
        e.probeInFlight = true;
        e.probeStartedAt = Clock::now();
        ++stats_.probes;
        return true;
    }
    return true;
}

void
CircuitBreaker::recordSuccess(uint64_t key)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = entries_.find(key);
    if (it == entries_.end())
        return;
    Entry &e = it->second;
    if (e.state == State::HalfOpen)
        ++stats_.recoveries;
    if (e.state != State::Closed)
        --stats_.openNow;
    // Back to a clean Closed state: drop the bookkeeping so the table
    // only holds troubled keys.
    entries_.erase(it);
}

void
CircuitBreaker::recordFailure(uint64_t key)
{
    std::lock_guard<std::mutex> lock(mutex_);
    Entry &e = entries_[key];
    switch (e.state) {
    case State::Closed:
        if (++e.consecutiveFailures >= options_.failureThreshold) {
            e.state = State::Open;
            e.openedAt = Clock::now();
            ++stats_.trips;
            ++stats_.openNow;
        }
        break;
    case State::HalfOpen:
        // The probe failed: restart the cool-down.
        e.state = State::Open;
        e.openedAt = Clock::now();
        e.probeInFlight = false;
        ++stats_.trips;
        break;
    case State::Open:
        // A request admitted before the trip finishing late; the
        // breaker is already open, just refresh nothing.
        break;
    }
}

CircuitBreakerStats
CircuitBreaker::stats() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return stats_;
}

} // namespace madmax
