#include "serve/http_server.hh"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cctype>
#include <cerrno>
#include <chrono>
#include <cstring>

#include "config/json.hh"
#include "serve/errors.hh"
#include "util/fault_injection.hh"
#include "util/logging.hh"

namespace madmax
{

namespace
{

using Clock = std::chrono::steady_clock;

/// @name Syscall shims with fault points
/// Chaos scenarios inject EMFILE storms, connection resets, and short
/// writes exactly where the kernel would produce them, so the
/// recovery paths under test are the real ones. With no script armed
/// each shim is the raw syscall plus one relaxed atomic load.
/// @{

int
xaccept4(int fd, int flags)
{
    if (int f = faultPoint("http.accept"); f > 0) {
        errno = f;
        return -1;
    }
    return ::accept4(fd, nullptr, nullptr, flags);
}

ssize_t
xrecv(int fd, void *buf, size_t len)
{
    if (int f = faultPoint("http.read"); f > 0) {
        errno = f;
        return -1;
    }
    return ::recv(fd, buf, len, 0);
}

ssize_t
xsend(int fd, const void *buf, size_t len)
{
    int f = faultPoint("http.write");
    if (f > 0) {
        errno = f;
        return -1;
    }
    if (f == FaultInjection::kShortIo && len > 1)
        len = 1; // Short write: the flush loop must resume correctly.
    return ::send(fd, buf, len, MSG_NOSIGNAL);
}

int
xepoll_ctl(int epfd, int op, int fd, epoll_event *ev)
{
    if (int f = faultPoint("http.epoll_ctl"); f > 0) {
        errno = f;
        return -1;
    }
    return ::epoll_ctl(epfd, op, fd, ev);
}

/// @}

/** Inbound-buffer cap while a handler is busy: pipelined requests
 *  beyond it pause reading (TCP backpressure) instead of buffering
 *  without bound. */
constexpr size_t kPipelineSlack = 4096;

/** Bytes a draining close will discard before giving up. */
constexpr size_t kDrainCap = size_t{4} << 20;

std::string
lowered(std::string s)
{
    for (char &c : s)
        c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    return s;
}

std::string
trimmed(const std::string &s)
{
    size_t b = s.find_first_not_of(" \t");
    if (b == std::string::npos)
        return "";
    size_t e = s.find_last_not_of(" \t\r");
    return s.substr(b, e - b + 1);
}

/** Serialize a response with the framing headers the server owns. */
std::string
renderResponse(const HttpResponse &resp, bool keepAlive)
{
    std::string out = "HTTP/1.1 " + std::to_string(resp.status) + " " +
        statusReason(resp.status) + "\r\n";
    out += "Content-Type: " + resp.contentType + "\r\n";
    out += "Content-Length: " + std::to_string(resp.body.size()) +
        "\r\n";
    for (const auto &[name, value] : resp.headers)
        out += name + ": " + value + "\r\n";
    out += keepAlive ? "Connection: keep-alive\r\n\r\n"
                     : "Connection: close\r\n\r\n";
    out += resp.body;
    return out;
}

/** Does the client forbid reuse (Connection: close, or HTTP/1.0
 *  without an explicit keep-alive)? */
bool
requestWantsClose(const HttpRequest &req)
{
    auto it = req.headers.find("connection");
    std::string value =
        it == req.headers.end() ? "" : lowered(it->second);
    if (value.find("close") != std::string::npos)
        return true;
    if (req.version == "HTTP/1.0")
        return value.find("keep-alive") == std::string::npos;
    return false;
}

enum class Parse
{
    NeedMore, ///< Incomplete; keep the buffer, wait for bytes.
    Ok,       ///< One full request parsed; @p consumed bytes used.
    Error,    ///< Protocol violation; @p error is the response.
};

/**
 * Try to parse one complete request from the front of @p buf.
 * Incremental: called every time bytes arrive, it re-scans for the
 * header terminator (CRLFCRLF, or bare LFLF for sloppy clients —
 * checked together so LF-only clients are served promptly instead of
 * idling into a timeout) and only commits once the full body is
 * buffered. @p expectContinue is set as soon as the header block
 * carries `Expect: 100-continue`, even while the body is still
 * incomplete, so the caller can unblock a waiting curl.
 */
Parse
tryParseRequest(const std::string &buf, const HttpServerOptions &opt,
                HttpRequest &req, size_t &consumed,
                HttpResponse &error, bool &expectContinue)
{
    size_t headerEnd = buf.find("\r\n\r\n");
    size_t bodyStart = headerEnd + 4;
    size_t lfOnly = buf.find("\n\n");
    if (lfOnly != std::string::npos &&
        (headerEnd == std::string::npos || lfOnly < headerEnd)) {
        headerEnd = lfOnly;
        bodyStart = lfOnly + 2;
    }
    if (headerEnd == std::string::npos) {
        if (buf.size() > opt.maxHeaderBytes) {
            error = errorResponse(
                431, "bad_request",
                "malformed or oversized request header");
            return Parse::Error;
        }
        return Parse::NeedMore;
    }
    if (headerEnd > opt.maxHeaderBytes) {
        error = errorResponse(431, "bad_request",
                              "malformed or oversized request header");
        return Parse::Error;
    }

    req = HttpRequest{};
    std::string head = buf.substr(0, headerEnd);
    std::vector<std::string> lines;
    size_t start = 0;
    while (start <= head.size()) {
        size_t nl = head.find('\n', start);
        if (nl == std::string::npos) {
            lines.push_back(head.substr(start));
            break;
        }
        lines.push_back(head.substr(start, nl - start));
        start = nl + 1;
    }
    for (std::string &line : lines)
        if (!line.empty() && line.back() == '\r')
            line.pop_back();

    // Request line: METHOD SP TARGET SP HTTP/1.x
    size_t sp1 =
        lines.empty() ? std::string::npos : lines[0].find(' ');
    size_t sp2 = sp1 == std::string::npos
        ? std::string::npos
        : lines[0].find(' ', sp1 + 1);
    if (sp2 == std::string::npos ||
        lines[0].compare(sp2 + 1, 7, "HTTP/1.") != 0) {
        error = errorResponse(400, "bad_request",
                              "malformed request line");
        return Parse::Error;
    }
    req.method = lines[0].substr(0, sp1);
    req.target = lines[0].substr(sp1 + 1, sp2 - sp1 - 1);
    req.version = lines[0].substr(sp2 + 1);
    size_t q = req.target.find('?');
    if (q != std::string::npos)
        req.target.resize(q);

    bool duplicateContentLength = false;
    for (size_t i = 1; i < lines.size(); ++i) {
        if (lines[i].empty())
            continue;
        size_t colon = lines[i].find(':');
        if (colon == std::string::npos)
            continue; // Ignore malformed header lines.
        std::string key = lowered(trimmed(lines[i].substr(0, colon)));
        // Repeated Content-Length is the classic request-smuggling
        // precondition (RFC 7230 §3.3.2): two hops disagreeing on
        // framing. Reject rather than last-wins.
        if (key == "content-length" && req.headers.count(key))
            duplicateContentLength = true;
        req.headers[key] = trimmed(lines[i].substr(colon + 1));
    }
    if (duplicateContentLength) {
        error = errorResponse(400, "bad_request",
                              "repeated Content-Length header");
        return Parse::Error;
    }

    // Only Content-Length framing is implemented. A chunked body must
    // be refused explicitly: treating it as zero-length would leave
    // the chunk bytes in the buffer to be misparsed as the next
    // pipelined request.
    auto te = req.headers.find("transfer-encoding");
    if (te != req.headers.end() &&
        lowered(te->second) != "identity") {
        error = errorResponse(501, "not_implemented",
                              "Transfer-Encoding is not supported; "
                              "send a Content-Length body");
        return Parse::Error;
    }

    size_t contentLength = 0;
    auto cl = req.headers.find("content-length");
    if (cl != req.headers.end()) {
        // Digits only, fully consumed: "12abc" must be rejected, not
        // truncated into a misframed 12-byte body.
        bool ok = !cl->second.empty() &&
            cl->second.find_first_not_of("0123456789") ==
                std::string::npos;
        if (ok) {
            try {
                contentLength = std::stoul(cl->second);
            } catch (const std::exception &) {
                ok = false; // Overflow.
            }
        }
        if (!ok) {
            error = errorResponse(400, "bad_request",
                                  "invalid Content-Length");
            return Parse::Error;
        }
    }
    if (contentLength > opt.maxBodyBytes) {
        error = errorResponse(
            413, "payload_too_large",
            "request body exceeds " +
                std::to_string(opt.maxBodyBytes) + " bytes");
        return Parse::Error;
    }

    auto expect = req.headers.find("expect");
    if (expect != req.headers.end() &&
        lowered(expect->second) == "100-continue")
        expectContinue = true;

    if (buf.size() - bodyStart < contentLength)
        return Parse::NeedMore;

    req.body = buf.substr(bodyStart, contentLength);
    consumed = bodyStart + contentLength;
    return Parse::Ok;
}

void
setNonBlocking(int fd)
{
    int flags = ::fcntl(fd, F_GETFL, 0);
    if (flags >= 0)
        ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

} // namespace

const char *
statusReason(int status)
{
    switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 413: return "Payload Too Large";
    case 431: return "Request Header Fields Too Large";
    case 500: return "Internal Server Error";
    case 501: return "Not Implemented";
    case 503: return "Service Unavailable";
    case 504: return "Gateway Timeout";
    default: return "Unknown";
    }
}

HttpResponse
errorResponse(int status, const std::string &code,
              const std::string &message)
{
    JsonValue err;
    err.set("code", code);
    err.set("message", message);
    JsonValue doc;
    doc.set("error", std::move(err));
    HttpResponse resp;
    resp.status = status;
    resp.body = doc.dump(2) + "\n";
    return resp;
}

/**
 * Per-connection state machine. Owned and mutated exclusively by the
 * I/O thread; workers refer to a connection only by id.
 */
struct HttpServer::Conn
{
    int fd = -1;
    uint64_t id = 0;

    std::string in;  ///< Received, not yet parsed.
    std::string out; ///< Rendered, not yet written.
    size_t outOff = 0;

    bool handlerBusy = false;    ///< One request dispatched, awaiting
                                 ///< its completion.
    bool wantClose = false;      ///< Client asked for Connection: close.
    bool closeAfterWrite = false;
    bool draining = false;       ///< Half-closed, discarding inbound.
    bool wantWrite = false;      ///< EPOLLOUT armed.
    bool requestActive = false;  ///< Mid-request (slow-loris deadline).
    bool sentContinue = false;   ///< 100 Continue sent for this request.
    bool peerClosed = false;     ///< recv() saw EOF.
    bool readPaused = false;     ///< Pipeline buffer full; backpressure.

    int served = 0; ///< Requests answered on this connection.
    size_t drained = 0;
    Clock::time_point deadline;
};

HttpServer::HttpServer(HttpHandler handler, HttpServerOptions options)
    : handler_(std::move(handler)), options_(options)
{
    if (!handler_)
        fatal("HttpServer: null handler");
    if (options_.port < 0 || options_.port > 65535)
        fatal("HttpServer: port must be in [0, 65535]");
    if (options_.workers < 1)
        fatal("HttpServer: workers must be >= 1");
    if (options_.queueDepth < 1)
        fatal("HttpServer: queueDepth must be >= 1");
    if (options_.idleTimeoutSeconds < 1)
        fatal("HttpServer: idleTimeoutSeconds must be >= 1");
    if (options_.requestDeadlineSeconds < 1)
        fatal("HttpServer: requestDeadlineSeconds must be >= 1");
    if (options_.keepAliveMaxRequests < 1)
        fatal("HttpServer: keepAliveMaxRequests must be >= 1");
}

HttpServer::~HttpServer()
{
    stop();
}

void
HttpServer::start()
{
    if (running_.load())
        fatal("HttpServer: already started");
    stopping_.store(false);
    inFlight_.store(0);

    listenFd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listenFd_ < 0)
        fatal("HttpServer: socket(): " +
              std::string(std::strerror(errno)));
    int one = 1;
    ::setsockopt(listenFd_, SOL_SOCKET, SO_REUSEADDR, &one,
                 sizeof(one));

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<uint16_t>(options_.port));
    if (::bind(listenFd_, reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) != 0) {
        std::string err = std::strerror(errno);
        ::close(listenFd_);
        listenFd_ = -1;
        fatal("HttpServer: cannot bind 127.0.0.1:" +
              std::to_string(options_.port) + ": " + err);
    }
    if (::listen(listenFd_, 512) != 0) {
        std::string err = std::strerror(errno);
        ::close(listenFd_);
        listenFd_ = -1;
        fatal("HttpServer: listen(): " + err);
    }
    setNonBlocking(listenFd_);

    socklen_t len = sizeof(addr);
    ::getsockname(listenFd_, reinterpret_cast<sockaddr *>(&addr),
                  &len);
    port_ = ntohs(addr.sin_port);

    epollFd_ = ::epoll_create1(EPOLL_CLOEXEC);
    wakeFd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
    if (epollFd_ < 0 || wakeFd_ < 0) {
        std::string err = std::strerror(errno);
        ::close(listenFd_);
        listenFd_ = -1;
        if (epollFd_ >= 0)
            ::close(epollFd_);
        if (wakeFd_ >= 0)
            ::close(wakeFd_);
        epollFd_ = wakeFd_ = -1;
        fatal("HttpServer: epoll/eventfd: " + err);
    }

    // Reserve the emergency fd up front, while descriptors are still
    // plentiful (see emergencyReject). Failing to open it is fine —
    // the EMFILE path then degrades to backlog-until-timeout.
    emergencyFd_ = ::open("/dev/null", O_RDONLY | O_CLOEXEC);

    // ids 0/1 are reserved for the listen socket and the wake fd;
    // connections start at 16.
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u64 = 0;
    ::epoll_ctl(epollFd_, EPOLL_CTL_ADD, listenFd_, &ev);
    ev.events = EPOLLIN;
    ev.data.u64 = 1;
    ::epoll_ctl(epollFd_, EPOLL_CTL_ADD, wakeFd_, &ev);

    {
        std::lock_guard<std::mutex> lock(dispatchMutex_);
        workersStop_ = false;
    }
    running_.store(true);
    io_ = std::thread(&HttpServer::ioLoop, this);
    for (int i = 0; i < options_.workers; ++i)
        workers_.emplace_back(&HttpServer::workerLoop, this);
}

void
HttpServer::stop()
{
    if (!running_.load())
        return;
    stopping_.store(true);
    uint64_t one = 1;
    [[maybe_unused]] ssize_t n =
        ::write(wakeFd_, &one, sizeof(one));
    if (io_.joinable())
        io_.join();

    {
        std::lock_guard<std::mutex> lock(dispatchMutex_);
        workersStop_ = true;
    }
    dispatchCv_.notify_all();
    for (std::thread &t : workers_)
        if (t.joinable())
            t.join();
    workers_.clear();

    ::close(epollFd_);
    ::close(wakeFd_);
    epollFd_ = wakeFd_ = -1;
    if (emergencyFd_ >= 0) {
        ::close(emergencyFd_);
        emergencyFd_ = -1;
    }
    conns_.clear();
    completions_.clear();
    dispatchQueue_.clear();
    running_.store(false);
}

HttpServerStats
HttpServer::stats() const
{
    std::lock_guard<std::mutex> lock(statsMutex_);
    return stats_;
}

void
HttpServer::bumpStat(long HttpServerStats::*field)
{
    std::lock_guard<std::mutex> lock(statsMutex_);
    ++(stats_.*field);
}

void
HttpServer::workerLoop()
{
    while (true) {
        Dispatched work;
        {
            std::unique_lock<std::mutex> lock(dispatchMutex_);
            dispatchCv_.wait(lock, [this] {
                return workersStop_ || !dispatchQueue_.empty();
            });
            if (dispatchQueue_.empty())
                return; // workersStop_ and drained.
            work = std::move(dispatchQueue_.front());
            dispatchQueue_.pop_front();
        }
        HttpResponse resp;
        try {
            resp = handler_(work.request);
        } catch (...) {
            // One mapping for every exception class the handler can
            // leak (serve/errors.hh) — ConfigError -> 400, bad_alloc
            // -> 503 resource_exhausted, DeadlineError -> 504, ...
            resp = errorFromCurrentException();
        }
        {
            std::lock_guard<std::mutex> lock(completionMutex_);
            completions_.push_back(
                Completion{work.connId, std::move(resp)});
        }
        uint64_t one = 1;
        [[maybe_unused]] ssize_t n =
            ::write(wakeFd_, &one, sizeof(one));
    }
}

void
HttpServer::setWantWrite(Conn &conn, bool want)
{
    if (conn.wantWrite == want)
        return;
    conn.wantWrite = want;
    epoll_event ev{};
    ev.events = EPOLLIN | EPOLLET | (want ? EPOLLOUT : 0u);
    ev.data.u64 = conn.id;
    // A failing MOD (injectable via http.epoll_ctl) leaves the conn
    // with stale interest; it is not wedged forever — the idle /
    // request deadline sweep still evicts it.
    xepoll_ctl(epollFd_, EPOLL_CTL_MOD, conn.fd, &ev);
}

void
HttpServer::closeConn(Conn &conn)
{
    ::epoll_ctl(epollFd_, EPOLL_CTL_DEL, conn.fd, nullptr);
    ::close(conn.fd);
    conns_.erase(conn.id); // Invalidates conn.
}

void
HttpServer::queueResponse(Conn &conn, const HttpResponse &resp,
                          bool keepAlive)
{
    conn.out += renderResponse(resp, keepAlive);
}

/** Flush pending output; arm EPOLLOUT on a partial write. Returns
 *  false when the connection was closed. */
bool
HttpServer::flushWrite(Conn &conn)
{
    while (conn.outOff < conn.out.size()) {
        ssize_t n = xsend(conn.fd, conn.out.data() + conn.outOff,
                          conn.out.size() - conn.outOff);
        if (n > 0) {
            conn.outOff += static_cast<size_t>(n);
            continue;
        }
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
            if (!conn.wantWrite)
                bumpStat(&HttpServerStats::partialWrites);
            setWantWrite(conn, true);
            return true; // Resumed by EPOLLOUT.
        }
        closeConn(conn); // Peer is gone; nothing useful to do.
        return false;
    }
    conn.out.clear();
    conn.outOff = 0;
    setWantWrite(conn, false);
    if (conn.closeAfterWrite)
        return startDrain(conn);
    return true;
}

/**
 * Begin a drained close: everything we wanted to say is flushed, so
 * half-close the write side and discard whatever the client is still
 * sending until EOF (bounded by kDrainCap and the request deadline).
 * Closing with unread inbound bytes pending would trigger a TCP RST
 * that can destroy the just-sent response before the client reads it
 * — the classic lost-error-response failure this path exists to
 * prevent.
 */
bool
HttpServer::startDrain(Conn &conn)
{
    if (conn.peerClosed) {
        closeConn(conn);
        return false;
    }
    conn.draining = true;
    conn.in.clear();
    ::shutdown(conn.fd, SHUT_WR);
    conn.deadline = Clock::now() +
        std::chrono::seconds(options_.requestDeadlineSeconds);
    // Eat anything already buffered; ET means no event will re-fire
    // for bytes that arrived before the shutdown.
    return onReadable(conn);
}

/** Queue an error response and schedule the drained close. Every
 *  error path funnels here, so `Connection: close` + drain is a
 *  structural property rather than a per-call-site convention. */
bool
HttpServer::respondError(Conn &conn, const HttpResponse &resp)
{
    conn.closeAfterWrite = true;
    queueResponse(conn, resp, /*keepAlive=*/false);
    return flushWrite(conn);
}

/**
 * Parse-and-dispatch pump: consume as many complete requests from the
 * inbound buffer as the one-in-flight-per-connection rule allows.
 * Runs after every read and after every completion, which is what
 * makes pipelining work under edge-triggered epoll — buffered bytes
 * never generate another event, so the pump must be re-entered from
 * the completion path, not the socket.
 */
bool
HttpServer::pump(Conn &conn)
{
    while (!conn.handlerBusy && !conn.draining &&
           !conn.closeAfterWrite) {
        HttpRequest req;
        HttpResponse error;
        size_t consumed = 0;
        bool expectContinue = false;
        Parse st = tryParseRequest(conn.in, options_, req, consumed,
                                   error, expectContinue);
        if (st == Parse::NeedMore) {
            if (!conn.in.empty() && !conn.requestActive) {
                // First bytes of a new request start its read
                // deadline (slow-loris bound).
                conn.requestActive = true;
                conn.deadline = Clock::now() +
                    std::chrono::seconds(
                        options_.requestDeadlineSeconds);
            }
            if (expectContinue && !conn.sentContinue) {
                // curl stalls its body until the server blesses it;
                // every real evaluate request (three inlined config
                // objects) crosses curl's threshold.
                conn.sentContinue = true;
                conn.out += "HTTP/1.1 100 Continue\r\n\r\n";
                return flushWrite(conn);
            }
            if (conn.peerClosed) {
                if (!conn.in.empty())
                    bumpStat(&HttpServerStats::badRequests);
                closeConn(conn); // Truncated request or clean EOF.
                return false;
            }
            return true;
        }
        if (st == Parse::Error) {
            bumpStat(&HttpServerStats::badRequests);
            return respondError(conn, error);
        }

        conn.in.erase(0, consumed);
        conn.requestActive = false;
        if (expectContinue && !conn.sentContinue) {
            // Body arrived in one shot; still honor the Expect so
            // strict clients see the interim response they asked for.
            conn.out += "HTTP/1.1 100 Continue\r\n\r\n";
        }
        conn.sentContinue = false;
        if (conn.served > 0)
            bumpStat(&HttpServerStats::keepAliveReuses);
        if (!conn.in.empty())
            bumpStat(&HttpServerStats::pipelinedRequests);
        conn.wantClose = requestWantsClose(req);

        // Tiered admission: shed the expensive tier well before the
        // cheap one, so health probes and cached hits survive a flood
        // of cold evaluations (the binary all-or-nothing 503 this
        // replaces shed a health check as readily as a cold eval).
        RequestCost cost = options_.classifier
            ? options_.classifier(req)
            : RequestCost::Cached;
        long load = inFlight_.load();
        long depth = static_cast<long>(options_.queueDepth);
        bool shed = false;
        if (cost == RequestCost::Expensive && load >= depth * 3 / 4) {
            bumpStat(&HttpServerStats::shedExpensive);
            shed = true;
        } else if (cost == RequestCost::Cached && load >= depth) {
            bumpStat(&HttpServerStats::shedCached);
            shed = true;
        }
        if (shed) {
            bumpStat(&HttpServerStats::rejectedQueueFull);
            HttpResponse resp = errorResponse(
                503, "overloaded",
                cost == RequestCost::Expensive
                    ? "shedding cold evaluations under load, retry"
                    : "request queue is full, retry");
            resp.headers["Retry-After"] = "1";
            return respondError(conn, resp);
        }

        conn.handlerBusy = true;
        conn.deadline = Clock::now() +
            std::chrono::seconds(options_.idleTimeoutSeconds);
        inFlight_.fetch_add(1);
        {
            std::lock_guard<std::mutex> lock(dispatchMutex_);
            dispatchQueue_.push_back(
                Dispatched{conn.id, std::move(req)});
        }
        dispatchCv_.notify_one();
        return true;
    }
    return true;
}

/** Drain the socket (edge-triggered: read until EAGAIN). Returns
 *  false when the connection was closed. */
bool
HttpServer::onReadable(Conn &conn)
{
    char chunk[16384];
    while (true) {
        if (conn.readPaused)
            break;
        ssize_t n = xrecv(conn.fd, chunk, sizeof(chunk));
        if (n > 0) {
            if (conn.draining) {
                conn.drained += static_cast<size_t>(n);
                if (conn.drained > kDrainCap) {
                    closeConn(conn);
                    return false;
                }
                continue;
            }
            conn.in.append(chunk, static_cast<size_t>(n));
            if (conn.handlerBusy &&
                conn.in.size() > options_.maxHeaderBytes +
                        options_.maxBodyBytes + kPipelineSlack) {
                // A pipelining flood behind a slow request: stop
                // reading (TCP backpressure) instead of buffering
                // the client's whole send queue in memory.
                conn.readPaused = true;
                break;
            }
            continue;
        }
        if (n == 0) {
            conn.peerClosed = true;
            if (conn.draining ||
                (!conn.handlerBusy && conn.out.empty() &&
                 conn.in.empty())) {
                closeConn(conn);
                return false;
            }
            break; // Half-close: finish the in-flight response.
        }
        if (errno == EAGAIN || errno == EWOULDBLOCK)
            break;
        closeConn(conn);
        return false;
    }
    if (conn.draining)
        return true;
    bool alive = pump(conn);
    if (alive && !conns_.count(conn.id))
        return false; // Defensive; pump reports closes itself.
    if (alive && !conn.handlerBusy && !conn.requestActive &&
        !conn.draining && !conn.closeAfterWrite)
        conn.deadline = Clock::now() +
            std::chrono::seconds(options_.idleTimeoutSeconds);
    return alive;
}

bool
HttpServer::onWritable(Conn &conn)
{
    return flushWrite(conn);
}

bool
HttpServer::emergencyReject()
{
    bumpStat(&HttpServerStats::fdExhausted);
    if (emergencyFd_ >= 0) {
        ::close(emergencyFd_);
        emergencyFd_ = -1;
    }
    // The freed descriptor slot lets this accept succeed where the
    // caller's just failed; the client gets a prompt 503 instead of
    // hanging in the backlog until its own timeout.
    bool rejected = false;
    int fd = ::accept4(listenFd_, nullptr, nullptr, SOCK_CLOEXEC);
    if (fd >= 0) {
        HttpResponse resp =
            makeError(ServeError::FdExhausted,
                      "server is out of file descriptors, retry");
        resp.headers["Retry-After"] = "1";
        std::string wire = renderResponse(resp, /*keepAlive=*/false);
        // Blocking best-effort send: the response is a few hundred
        // bytes, far under any socket buffer.
        [[maybe_unused]] ssize_t n =
            ::send(fd, wire.data(), wire.size(), MSG_NOSIGNAL);
        ::close(fd);
        bumpStat(&HttpServerStats::fdRejects);
        rejected = true;
    }
    emergencyFd_ = ::open("/dev/null", O_RDONLY | O_CLOEXEC);
    return rejected;
}

void
HttpServer::acceptReady()
{
    while (true) {
        int fd = xaccept4(listenFd_, SOCK_NONBLOCK | SOCK_CLOEXEC);
        if (fd < 0) {
            if (errno == EMFILE || errno == ENFILE) {
                // Out of descriptors: burn the reserve to
                // accept-then-reject one waiting client, then keep
                // draining the backlog (each pass rejects one more;
                // an empty backlog ends the pass, so a persistent
                // EMFILE cannot spin the loop).
                if (!emergencyReject())
                    return;
                continue;
            }
            if (errno == ECONNABORTED || errno == EINTR)
                continue; // Transient per-connection hiccup.
            // EAGAIN: drained. Anything else: give up this tick; the
            // loop's next event retries.
            return;
        }
        int one = 1;
        ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
        bumpStat(&HttpServerStats::accepted);

        uint64_t id = nextConnId_++;
        auto conn = std::make_unique<Conn>();
        conn->fd = fd;
        conn->id = id;
        conn->deadline = Clock::now() +
            std::chrono::seconds(options_.idleTimeoutSeconds);
        epoll_event ev{};
        ev.events = EPOLLIN | EPOLLET;
        ev.data.u64 = id;
        if (xepoll_ctl(epollFd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
            ::close(fd);
            continue;
        }
        Conn &ref = *conn;
        conns_.emplace(id, std::move(conn));
        // Bytes may already be buffered (loopback clients usually
        // send the whole request before accept returns) and ET will
        // not re-signal them.
        onReadable(ref);
    }
}

void
HttpServer::processCompletions()
{
    std::vector<Completion> batch;
    {
        std::lock_guard<std::mutex> lock(completionMutex_);
        batch.swap(completions_);
    }
    for (Completion &done : batch) {
        inFlight_.fetch_sub(1);
        auto it = conns_.find(done.connId);
        if (it == conns_.end())
            continue; // Connection died while the handler ran.
        Conn &conn = *it->second;
        conn.handlerBusy = false;
        ++conn.served;
        bumpStat(&HttpServerStats::served);

        // Keep-alive decision: the client's wish, the request cap,
        // shutdown, a half-closed peer — and, structurally, every
        // error response closes (and drains) the connection.
        bool close = conn.wantClose || conn.peerClosed ||
            done.response.status >= 400 ||
            conn.served >= options_.keepAliveMaxRequests ||
            stopping_.load();
        if (close) {
            conn.closeAfterWrite = true;
            queueResponse(conn, done.response, /*keepAlive=*/false);
            flushWrite(conn);
            continue;
        }
        queueResponse(conn, done.response, /*keepAlive=*/true);
        if (!flushWrite(conn))
            continue;
        if (conn.readPaused) {
            conn.readPaused = false;
            if (!onReadable(conn)) // Re-read; ET events were consumed.
                continue;
        } else {
            conn.deadline = Clock::now() +
                std::chrono::seconds(options_.idleTimeoutSeconds);
            pump(conn); // Next pipelined request, if buffered.
        }
    }
}

void
HttpServer::sweepDeadlines()
{
    Clock::time_point now = Clock::now();
    std::vector<uint64_t> expired;
    for (auto &[id, conn] : conns_) {
        if (conn->handlerBusy || now < conn->deadline)
            continue;
        expired.push_back(id);
    }
    for (uint64_t id : expired) {
        auto it = conns_.find(id);
        if (it == conns_.end())
            continue;
        Conn &conn = *it->second;
        if (conn.draining || conn.closeAfterWrite) {
            // Client never finished reading its (error) response.
            bumpStat(&HttpServerStats::deadlineClosed);
        } else if (conn.requestActive) {
            // Slow loris: mid-request past the read deadline.
            bumpStat(&HttpServerStats::deadlineClosed);
            bumpStat(&HttpServerStats::badRequests);
        } else {
            bumpStat(&HttpServerStats::idleClosed);
        }
        closeConn(conn);
    }
}

void
HttpServer::ioLoop()
{
    constexpr int kMaxEvents = 128;
    epoll_event events[kMaxEvents];
    bool listenOpen = true;
    Clock::time_point stopDeadline{};

    while (true) {
        if (stopping_.load() && listenOpen) {
            // Stop admitting, but finish everything dispatched:
            // accepted requests are part of the contract.
            ::epoll_ctl(epollFd_, EPOLL_CTL_DEL, listenFd_, nullptr);
            ::close(listenFd_);
            listenFd_ = -1;
            listenOpen = false;
            stopDeadline =
                Clock::now() + std::chrono::seconds(5);
        }
        if (!listenOpen) {
            bool idle = inFlight_.load() == 0;
            if (idle) {
                for (auto &[id, conn] : conns_)
                    if (!conn->out.empty() &&
                        conn->outOff < conn->out.size())
                        idle = false;
            }
            if (idle || Clock::now() >= stopDeadline)
                break;
        }

        int n = ::epoll_wait(epollFd_, events, kMaxEvents, 100);
        if (n < 0 && errno != EINTR)
            break;
        for (int i = 0; i < n; ++i) {
            uint64_t id = events[i].data.u64;
            if (id == 0) {
                if (listenOpen)
                    acceptReady();
                continue;
            }
            if (id == 1) {
                uint64_t count = 0;
                while (::read(wakeFd_, &count, sizeof(count)) > 0) {
                }
                continue;
            }
            auto it = conns_.find(id);
            if (it == conns_.end())
                continue;
            Conn &conn = *it->second;
            if (events[i].events & (EPOLLERR | EPOLLHUP)) {
                if (conn.handlerBusy) {
                    conn.peerClosed = true; // Reap at completion.
                    continue;
                }
                closeConn(conn);
                continue;
            }
            if (events[i].events & EPOLLOUT) {
                if (!onWritable(conn))
                    continue;
                if (!conns_.count(id))
                    continue;
            }
            if (events[i].events & EPOLLIN)
                onReadable(conn);
        }
        processCompletions();
        sweepDeadlines();
    }

    // Shutdown: flush what we can, then close everything.
    processCompletions();
    for (auto &[id, conn] : conns_) {
        ::epoll_ctl(epollFd_, EPOLL_CTL_DEL, conn->fd, nullptr);
        ::close(conn->fd);
    }
    conns_.clear();
    if (listenOpen) {
        ::close(listenFd_);
        listenFd_ = -1;
    }
}

} // namespace madmax
