#include "serve/http_server.hh"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cctype>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include "config/json.hh"
#include "util/logging.hh"

namespace madmax
{

namespace
{

using Deadline = std::chrono::steady_clock::time_point;

bool
expired(Deadline deadline)
{
    return std::chrono::steady_clock::now() >= deadline;
}

std::string
lowered(std::string s)
{
    for (char &c : s)
        c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    return s;
}

std::string
trimmed(const std::string &s)
{
    size_t b = s.find_first_not_of(" \t");
    if (b == std::string::npos)
        return "";
    size_t e = s.find_last_not_of(" \t\r");
    return s.substr(b, e - b + 1);
}

/** Serialize a response with the framing headers the server owns. */
std::string
renderResponse(const HttpResponse &resp)
{
    std::string out = "HTTP/1.1 " + std::to_string(resp.status) + " " +
        statusReason(resp.status) + "\r\n";
    out += "Content-Type: " + resp.contentType + "\r\n";
    out += "Content-Length: " + std::to_string(resp.body.size()) +
        "\r\n";
    out += "Connection: close\r\n\r\n";
    out += resp.body;
    return out;
}

/** send() the whole buffer; MSG_NOSIGNAL so a dead client yields an
 *  error instead of SIGPIPE. */
void
sendAll(int fd, const std::string &data)
{
    size_t off = 0;
    while (off < data.size()) {
        ssize_t n = ::send(fd, data.data() + off, data.size() - off,
                           MSG_NOSIGNAL);
        if (n <= 0)
            return; // Client went away; nothing useful to do.
        off += static_cast<size_t>(n);
    }
}

/**
 * @param drain When the request was rejected before its body was
 *        fully read, half-close and discard what the client is still
 *        sending (bounded by the socket timeout) — close() with
 *        unread data pending triggers a TCP RST that can destroy the
 *        in-flight error response before the client reads it.
 */
void
respondAndClose(int fd, const HttpResponse &resp, bool drain = false,
                Deadline deadline = Deadline::max())
{
    sendAll(fd, renderResponse(resp));
    if (drain) {
        ::shutdown(fd, SHUT_WR);
        char sink[4096];
        size_t discarded = 0;
        while (discarded < (size_t{4} << 20) && !expired(deadline)) {
            ssize_t n = ::recv(fd, sink, sizeof(sink), 0);
            if (n <= 0)
                break;
            discarded += static_cast<size_t>(n);
        }
    }
    ::close(fd);
}

/**
 * Receive until a blank line ends the header block — CRLFCRLF, or
 * bare LFLF for sloppy clients (checked together per chunk; waiting
 * for CRLF alone would stall LF-only clients until the socket
 * timeout). On success @p bodyStart is one past the terminator and
 * the header block's length is returned; npos on overflow/error/EOF.
 */
size_t
recvHeaderBlock(int fd, std::string &buf, size_t cap,
                size_t &bodyStart, Deadline deadline)
{
    char chunk[4096];
    while (true) {
        size_t pos = buf.find("\r\n\r\n");
        if (pos != std::string::npos) {
            bodyStart = pos + 4;
            return pos;
        }
        pos = buf.find("\n\n");
        if (pos != std::string::npos) {
            bodyStart = pos + 2;
            return pos;
        }
        if (buf.size() > cap || expired(deadline))
            return std::string::npos;
        ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
        if (n <= 0)
            return std::string::npos;
        buf.append(chunk, static_cast<size_t>(n));
    }
}

} // namespace

const char *
statusReason(int status)
{
    switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 413: return "Payload Too Large";
    case 431: return "Request Header Fields Too Large";
    case 500: return "Internal Server Error";
    case 501: return "Not Implemented";
    case 503: return "Service Unavailable";
    default: return "Unknown";
    }
}

HttpResponse
errorResponse(int status, const std::string &code,
              const std::string &message)
{
    JsonValue err;
    err.set("code", code);
    err.set("message", message);
    JsonValue doc;
    doc.set("error", std::move(err));
    HttpResponse resp;
    resp.status = status;
    resp.body = doc.dump(2) + "\n";
    return resp;
}

HttpServer::HttpServer(HttpHandler handler, HttpServerOptions options)
    : handler_(std::move(handler)), options_(options)
{
    if (!handler_)
        fatal("HttpServer: null handler");
    if (options_.port < 0 || options_.port > 65535)
        fatal("HttpServer: port must be in [0, 65535]");
    if (options_.workers < 1)
        fatal("HttpServer: workers must be >= 1");
    if (options_.queueDepth < 1)
        fatal("HttpServer: queueDepth must be >= 1");
}

HttpServer::~HttpServer()
{
    stop();
}

void
HttpServer::start()
{
    if (running_.load())
        fatal("HttpServer: already started");
    stopping_.store(false);

    listenFd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listenFd_ < 0)
        fatal("HttpServer: socket(): " +
              std::string(std::strerror(errno)));
    int one = 1;
    ::setsockopt(listenFd_, SOL_SOCKET, SO_REUSEADDR, &one,
                 sizeof(one));

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<uint16_t>(options_.port));
    if (::bind(listenFd_, reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) != 0) {
        std::string err = std::strerror(errno);
        ::close(listenFd_);
        listenFd_ = -1;
        fatal("HttpServer: cannot bind 127.0.0.1:" +
              std::to_string(options_.port) + ": " + err);
    }
    if (::listen(listenFd_, 128) != 0) {
        std::string err = std::strerror(errno);
        ::close(listenFd_);
        listenFd_ = -1;
        fatal("HttpServer: listen(): " + err);
    }

    socklen_t len = sizeof(addr);
    ::getsockname(listenFd_, reinterpret_cast<sockaddr *>(&addr),
                  &len);
    port_ = ntohs(addr.sin_port);

    running_.store(true);
    acceptor_ = std::thread(&HttpServer::acceptLoop, this);
    for (int i = 0; i < options_.workers; ++i)
        workers_.emplace_back(&HttpServer::workerLoop, this);
}

void
HttpServer::stop()
{
    if (!running_.load())
        return;
    {
        // The store must happen under mutex_: a worker that just
        // evaluated its wait predicate (stopping_ still false, queue
        // empty) holds the lock until wait() atomically blocks, so
        // locking here guarantees notify_all below cannot fire in
        // that window and be lost (the classic lost-wakeup hang).
        std::lock_guard<std::mutex> lock(mutex_);
        stopping_.store(true);
    }
    // Unblock the acceptor: shutdown() makes a blocked accept() return
    // on Linux; close() alone would not.
    ::shutdown(listenFd_, SHUT_RDWR);
    if (acceptor_.joinable())
        acceptor_.join();
    ::close(listenFd_);
    listenFd_ = -1;

    // Workers drain and *serve* everything already admitted before
    // exiting (their wait predicate only releases them when the queue
    // is empty): accepted connections are part of the contract, only
    // un-accepted ones are refused (by the closed listen socket).
    queueCv_.notify_all();
    for (std::thread &t : workers_)
        if (t.joinable())
            t.join();
    workers_.clear();
    running_.store(false);
}

HttpServerStats
HttpServer::stats() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return stats_;
}

void
HttpServer::acceptLoop()
{
    while (!stopping_.load()) {
        int fd = ::accept(listenFd_, nullptr, nullptr);
        if (fd < 0) {
            if (stopping_.load())
                break;
            // EINTR / ECONNABORTED are instant-retry; resource
            // exhaustion (EMFILE/ENFILE/ENOMEM) persists until
            // connections finish, so back off instead of spinning
            // this thread at 100% CPU hammering accept().
            if (errno != EINTR && errno != ECONNABORTED)
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(10));
            continue;
        }
        timeval tv{};
        tv.tv_sec = options_.recvTimeoutSeconds;
        ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));

        bool full = false;
        {
            std::lock_guard<std::mutex> lock(mutex_);
            ++stats_.accepted;
            if (queue_.size() >= options_.queueDepth) {
                full = true;
                ++stats_.rejectedQueueFull;
            } else {
                queue_.push_back(fd);
            }
        }
        if (full) {
            // Shed load at admission: the bounded queue is the
            // backpressure mechanism (never buffer unboundedly).
            // Drain what the client already sent first — without it,
            // close() with unread bytes pending RSTs the 503 away.
            // Non-blocking only: the acceptor must not stall on a
            // slow sender; on loopback the whole request has almost
            // always landed by the time accept() returns.
            char sink[4096];
            while (::recv(fd, sink, sizeof(sink), MSG_DONTWAIT) > 0) {
            }
            respondAndClose(fd, errorResponse(
                                    503, "overloaded",
                                    "request queue is full, retry"));
        } else {
            queueCv_.notify_one();
        }
    }
}

void
HttpServer::workerLoop()
{
    while (true) {
        int fd = -1;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            queueCv_.wait(lock, [this] {
                return stopping_.load() || !queue_.empty();
            });
            if (queue_.empty())
                return; // stopping_ and drained.
            fd = queue_.front();
            queue_.pop_front();
        }
        handleConnection(fd);
    }
}

void
HttpServer::handleConnection(int fd)
{
    Deadline deadline = std::chrono::steady_clock::now() +
        std::chrono::seconds(options_.requestDeadlineSeconds);
    std::string buf;
    size_t bodyStart = 0;
    size_t headerEnd = recvHeaderBlock(fd, buf,
                                       options_.maxHeaderBytes,
                                       bodyStart, deadline);
    if (headerEnd == std::string::npos) {
        {
            std::lock_guard<std::mutex> lock(mutex_);
            ++stats_.badRequests;
        }
        // Distinguish an oversized preamble from a hung-up/garbled
        // client; the latter may not be able to read a response at
        // all, but sending one is harmless.
        respondAndClose(fd,
                        errorResponse(
                            buf.size() > options_.maxHeaderBytes ? 431
                                                                 : 400,
                            "bad_request",
                            "malformed or oversized request header"),
                        /*drain=*/true, deadline);
        return;
    }

    HttpRequest req;
    {
        std::string head = buf.substr(0, headerEnd);
        std::vector<std::string> lines;
        size_t start = 0;
        while (start <= head.size()) {
            size_t nl = head.find('\n', start);
            if (nl == std::string::npos) {
                lines.push_back(head.substr(start));
                break;
            }
            lines.push_back(head.substr(start, nl - start));
            start = nl + 1;
        }
        for (std::string &line : lines)
            if (!line.empty() && line.back() == '\r')
                line.pop_back();

        // Request line: METHOD SP TARGET SP HTTP/1.x
        size_t sp1 = lines.empty() ? std::string::npos
                                   : lines[0].find(' ');
        size_t sp2 = sp1 == std::string::npos
            ? std::string::npos
            : lines[0].find(' ', sp1 + 1);
        if (sp2 == std::string::npos ||
            lines[0].compare(sp2 + 1, 7, "HTTP/1.") != 0) {
            {
                std::lock_guard<std::mutex> lock(mutex_);
                ++stats_.badRequests;
            }
            respondAndClose(fd,
                            errorResponse(400, "bad_request",
                                          "malformed request line"),
                            /*drain=*/true, deadline);
            return;
        }
        req.method = lines[0].substr(0, sp1);
        req.target = lines[0].substr(sp1 + 1, sp2 - sp1 - 1);
        req.version = lines[0].substr(sp2 + 1);
        size_t q = req.target.find('?');
        if (q != std::string::npos)
            req.target.resize(q);

        bool duplicateContentLength = false;
        for (size_t i = 1; i < lines.size(); ++i) {
            if (lines[i].empty())
                continue;
            size_t colon = lines[i].find(':');
            if (colon == std::string::npos)
                continue; // Ignore malformed header lines.
            std::string key =
                lowered(trimmed(lines[i].substr(0, colon)));
            // Repeated Content-Length is the classic
            // request-smuggling precondition (RFC 7230 §3.3.2): two
            // hops disagreeing on framing. Reject rather than
            // last-wins.
            if (key == "content-length" && req.headers.count(key))
                duplicateContentLength = true;
            req.headers[key] = trimmed(lines[i].substr(colon + 1));
        }
        if (duplicateContentLength) {
            {
                std::lock_guard<std::mutex> lock(mutex_);
                ++stats_.badRequests;
            }
            respondAndClose(fd,
                            errorResponse(400, "bad_request",
                                          "repeated Content-Length "
                                          "header"),
                            /*drain=*/true, deadline);
            return;
        }
    }

    // Only Content-Length framing is implemented. A chunked body must
    // be refused explicitly: treating it as zero-length would hand
    // the handler an empty body and leave the chunk bytes unread in
    // the socket (RST-ing the response away on close).
    auto te = req.headers.find("transfer-encoding");
    if (te != req.headers.end() && lowered(te->second) != "identity") {
        {
            std::lock_guard<std::mutex> lock(mutex_);
            ++stats_.badRequests;
        }
        respondAndClose(fd,
                        errorResponse(501, "not_implemented",
                                      "Transfer-Encoding is not "
                                      "supported; send a "
                                      "Content-Length body"),
                        /*drain=*/true, deadline);
        return;
    }

    size_t contentLength = 0;
    auto cl = req.headers.find("content-length");
    if (cl != req.headers.end()) {
        // Digits only, fully consumed: "12abc" must be rejected, not
        // truncated into a misframed 12-byte body.
        bool ok = !cl->second.empty() &&
            cl->second.find_first_not_of("0123456789") ==
                std::string::npos;
        if (ok) {
            try {
                contentLength = std::stoul(cl->second);
            } catch (const std::exception &) {
                ok = false; // Overflow.
            }
        }
        if (!ok) {
            {
                std::lock_guard<std::mutex> lock(mutex_);
                ++stats_.badRequests;
            }
            respondAndClose(fd,
                            errorResponse(400, "bad_request",
                                          "invalid Content-Length"),
                            /*drain=*/true, deadline);
            return;
        }
    }
    if (contentLength > options_.maxBodyBytes) {
        {
            std::lock_guard<std::mutex> lock(mutex_);
            ++stats_.badRequests;
        }
        respondAndClose(
            fd,
            errorResponse(413, "payload_too_large",
                          "request body exceeds " +
                              std::to_string(options_.maxBodyBytes) +
                              " bytes"),
            /*drain=*/true, deadline);
        return;
    }

    // curl sends "Expect: 100-continue" for larger bodies and stalls
    // until the server blesses it; every real evaluate request (three
    // inlined config objects) crosses that threshold.
    auto expect = req.headers.find("expect");
    if (expect != req.headers.end() &&
        lowered(expect->second) == "100-continue")
        sendAll(fd, "HTTP/1.1 100 Continue\r\n\r\n");

    req.body = buf.substr(bodyStart);
    char chunk[4096];
    while (req.body.size() < contentLength) {
        bool dead = expired(deadline); // Trickling past the deadline.
        ssize_t n =
            dead ? -1 : ::recv(fd, chunk, sizeof(chunk), 0);
        if (n <= 0) {
            // Trickling or truncated: count it (else accepted !=
            // served + badRequests + rejectedQueueFull and the gap
            // has no explaining counter), close, free the worker.
            {
                std::lock_guard<std::mutex> lock(mutex_);
                ++stats_.badRequests;
            }
            ::close(fd);
            return;
        }
        req.body.append(chunk, static_cast<size_t>(n));
    }
    req.body.resize(contentLength);

    HttpResponse resp;
    try {
        resp = handler_(req);
    } catch (const ConfigError &e) {
        resp = errorResponse(400, "bad_request", e.what());
    } catch (const std::exception &e) {
        resp = errorResponse(500, "internal", e.what());
    }
    {
        std::lock_guard<std::mutex> lock(mutex_);
        ++stats_.served;
    }
    respondAndClose(fd, resp);
}

} // namespace madmax
