#include "serve/config_cache.hh"

#include "config/config_loader.hh"
#include "engine/eval_engine.hh"
#include "util/fault_injection.hh"
#include "util/fingerprint.hh"
#include "util/logging.hh"

namespace madmax
{

ConfigCache::ConfigCache(size_t capacity)
    : bodies_(capacity), triples_(capacity)
{
    if (capacity < 1)
        fatal("ConfigCache: capacity must be >= 1");
}

CachedRequest
ConfigCache::lookup(const std::string &body)
{
    uint64_t bodyHash = fnv1a(body);
    {
        std::lock_guard<std::mutex> lock(mutex_);
        BodyEntry *entry = bodies_.get(bodyHash);
        if (entry && entry->body == body) {
            ++hits_;
            return {entry->triple, entry->plan, entry->engineKey};
        }
    }

    // Cold body: parse outside the lock, so concurrent cold requests
    // for different configs parse in parallel. Validation errors and
    // messages are identical to the historical uncached path (tests
    // pin them). The fault point sits on the cold path only — a
    // cached body deliberately cannot fault here, mirroring where
    // real parse/alloc failures can occur.
    faultPointThrow("config.load");
    JsonValue doc = JsonValue::parse(body);
    if (!doc.isObject())
        fatal("request body must be a JSON object with \"model\", "
              "\"system\", and \"task\" members");
    for (const char *key : {"model", "system", "task"})
        if (!doc.has(key))
            fatal(std::string("request body missing \"") + key +
                  "\" member");
    ModelDesc model = loadModel(doc.at("model"));
    ClusterSpec cluster = loadCluster(doc.at("system"));
    TaskConfig task = loadTask(doc.at("task"));

    // Canonical triple text: re-dumped parsed JSON (object keys are
    // sorted, whitespace normalized) + the task spec — but not the
    // plan, which is per-request; the whole point is that different
    // plans share the triple and thus an EvalContext group.
    std::string canon = doc.at("model").dump();
    canon += '\x1f';
    canon += doc.at("system").dump();
    canon += '\x1f';
    canon += task.task.toString();
    uint64_t tripleFp = fnv1a(canon);

    std::shared_ptr<const ParsedTriple> triple =
        std::make_shared<ParsedTriple>(std::move(model), task.task,
                                       std::move(cluster),
                                       std::move(canon));

    std::lock_guard<std::mutex> lock(mutex_);
    ++misses_;
    auto *cached = triples_.get(tripleFp);
    if (cached && (*cached)->canon == triple->canon) {
        // Another body already parsed this triple; adopt the cached
        // instance so pointer identity (batch grouping, shared
        // EvalContext) holds across bodies, and drop ours.
        triple = *cached;
        ++tripleShares_;
    } else {
        triples_.put(tripleFp, triple);
    }

    PlanRequest point;
    point.model = &triple->perf;
    point.desc = &triple->model;
    point.task = &triple->task;
    point.plan = task.plan;
    std::string engineKey = EvalEngine::cacheKey(point);

    evictions_ += static_cast<long>(bodies_.put(
        bodyHash, BodyEntry{body, triple, task.plan, engineKey}));
    return {std::move(triple), std::move(task.plan),
            std::move(engineKey)};
}

bool
ConfigCache::peekKey(const std::string &body,
                     std::string &engineKey) const
{
    uint64_t bodyHash = fnv1a(body);
    std::lock_guard<std::mutex> lock(mutex_);
    const BodyEntry *entry = bodies_.peek(bodyHash);
    if (!entry || entry->body != body)
        return false;
    engineKey = entry->engineKey;
    return true;
}

ConfigCache::Stats
ConfigCache::stats() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    Stats s;
    s.hits = hits_;
    s.misses = misses_;
    s.evictions = evictions_;
    s.tripleShares = tripleShares_;
    s.entries = bodies_.size();
    s.capacity = bodies_.capacity();
    s.tripleEntries = triples_.size();
    return s;
}

} // namespace madmax
