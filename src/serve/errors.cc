#include "serve/errors.hh"

#include <new>

#include "util/logging.hh"

namespace madmax
{

const ServeErrorSpec &
serveErrorSpec(ServeError kind)
{
    // The one status/code table. Codes are wire contract: clients
    // dispatch on them, the taxonomy test pins the rendered bodies
    // byte-for-byte, and docs/serving.md documents each one.
    static const ServeErrorSpec kSpecs[] = {
        /* BadRequest        */ {400, "bad_request"},
        /* NotFound          */ {404, "not_found"},
        /* MethodNotAllowed  */ {405, "method_not_allowed"},
        /* PayloadTooLarge   */ {413, "payload_too_large"},
        /* HeaderTooLarge    */ {431, "bad_request"},
        /* Internal          */ {500, "internal"},
        /* EvalFailed        */ {500, "eval_failed"},
        /* NotImplemented    */ {501, "not_implemented"},
        /* Overloaded        */ {503, "overloaded"},
        /* ResourceExhausted */ {503, "resource_exhausted"},
        /* FdExhausted       */ {503, "fd_exhausted"},
        /* CircuitOpen       */ {503, "circuit_open"},
        /* DeadlineExceeded  */ {504, "deadline_exceeded"},
    };
    return kSpecs[static_cast<size_t>(kind)];
}

HttpResponse
makeError(ServeError kind, const std::string &message)
{
    const ServeErrorSpec &spec = serveErrorSpec(kind);
    return errorResponse(spec.status, spec.code, message);
}

HttpResponse
makeError(ServeError kind, const std::string &message, JsonValue detail)
{
    const ServeErrorSpec &spec = serveErrorSpec(kind);
    JsonValue err;
    err.set("code", spec.code);
    if (!detail.isNull())
        err.set("detail", std::move(detail));
    err.set("message", message);
    JsonValue doc;
    doc.set("error", std::move(err));
    HttpResponse resp;
    resp.status = spec.status;
    resp.body = doc.dump(2) + "\n";
    return resp;
}

HttpResponse
errorFromCurrentException()
{
    try {
        throw;
    } catch (const DeadlineError &e) {
        JsonValue detail;
        detail.set("stage", e.stage);
        detail.set("waited_ms", e.waitedMillis);
        return makeError(ServeError::DeadlineExceeded, e.what(),
                         std::move(detail));
    } catch (const CircuitOpenError &e) {
        HttpResponse resp = makeError(ServeError::CircuitOpen, e.what());
        resp.headers["Retry-After"] =
            std::to_string(e.retryAfterSeconds);
        return resp;
    } catch (const ConfigError &e) {
        return makeError(ServeError::BadRequest, e.what());
    } catch (const std::bad_alloc &) {
        return makeError(ServeError::ResourceExhausted,
                         "allocation failed while serving the request");
    } catch (const std::exception &e) {
        return makeError(ServeError::Internal, e.what());
    } catch (...) {
        return makeError(ServeError::Internal, "unknown error");
    }
}

DeadlineError::DeadlineError(long waitedMillis_, std::string stage_)
    : std::runtime_error("request deadline exceeded after " +
                         std::to_string(waitedMillis_) + " ms (" +
                         stage_ + ")"),
      waitedMillis(waitedMillis_), stage(std::move(stage_))
{
}

CircuitOpenError::CircuitOpenError(long retryAfterSeconds_)
    : std::runtime_error(
          "circuit breaker is open for this configuration; retry in " +
          std::to_string(retryAfterSeconds_) + " s"),
      retryAfterSeconds(retryAfterSeconds_)
{
}

} // namespace madmax
