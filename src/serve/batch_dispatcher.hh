/**
 * @file
 * Cross-request micro-batching for the serving hot path.
 *
 * BatchDispatcher coalesces concurrent /v1/evaluate requests into
 * single EvalEngine::evaluateAll batches using a leader/follower
 * scheme: the first request to arrive becomes the window leader,
 * waits up to the batch window for company, then submits everything
 * queued as ONE batch on its own thread; followers block until the
 * leader distributes their results. Requests arriving while a batch
 * is evaluating accumulate for the next window (continuous batching —
 * under sustained load the effective window is the evaluation time
 * and the configured window only bounds the idle case). The payoff
 * rides the engine's batch grouping: requests whose configs resolved
 * to the same shared ParsedTriple (serve/config_cache.hh) have
 * pointer-identical (model, desc, task) and therefore share one warm
 * EvalContext within the batch — many tenants, one validation +
 * per-layer timing pass — and in-batch duplicate points collapse to
 * a single evaluation.
 *
 * Requests already memoized in the engine bypass the window entirely
 * (EvalEngine::tryCached), so the batch window adds zero latency to
 * the cached hot path.
 *
 * SingleFlight deduplicates concurrent *identical* requests at the
 * response level — used by /v1/pareto, where a whole search is too
 * coarse to batch but popular identical queries (same body bytes)
 * would otherwise each run the full frontier sweep.
 */

#ifndef MADMAX_SERVE_BATCH_DISPATCHER_HH
#define MADMAX_SERVE_BATCH_DISPATCHER_HH

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>

#include "core/perf_model.hh"
#include "serve/config_cache.hh"
#include "serve/http_server.hh"
#include "util/fingerprint.hh"

namespace madmax
{

class EvalEngine;

struct BatchDispatcherOptions
{
    /** How long a window leader waits for company, microseconds.
     *  0 = submit immediately (coalescing then happens only via
     *  accumulation behind an in-flight batch). */
    long windowMicros = 100;

    /** Window occupancy that cuts the wait short and submits. */
    size_t maxBatch = 64;
};

struct BatchDispatcherStats
{
    long windows = 0;   ///< Batches submitted to the engine.
    long requests = 0;  ///< Requests that entered a window (memo
                        ///< misses; hits bypass).
    long coalesced = 0; ///< Requests that shared a window with >= 1
                        ///< other request.
    long maxOccupancy = 0;  ///< Largest window submitted.
    long memoFastPath = 0;  ///< Requests answered from the engine memo
                            ///< cache without entering a window.
};

class BatchDispatcher
{
  public:
    BatchDispatcher(EvalEngine &engine,
                    BatchDispatcherOptions options = {});

    BatchDispatcher(const BatchDispatcher &) = delete;
    BatchDispatcher &operator=(const BatchDispatcher &) = delete;

    /**
     * Evaluate one resolved request, riding whatever batch forms.
     * Blocking; safe from any number of threads. Engine failures are
     * rethrown on every request of the affected batch.
     */
    PerfReport evaluate(const CachedRequest &request);

    BatchDispatcherStats stats() const;

  private:
    /** One waiting request; lives on its submitter's stack. */
    struct Pending
    {
        const CachedRequest *request = nullptr;
        PerfReport report;
        std::exception_ptr error;
        bool done = false;
    };

    EvalEngine &engine_;
    BatchDispatcherOptions options_;

    mutable std::mutex mutex_;
    std::condition_variable cv_;
    std::deque<Pending *> queue_;
    bool leaderBusy_ = false; ///< A window is open or evaluating.
    BatchDispatcherStats stats_;
};

/**
 * Response-level request deduplication: concurrent requests with
 * byte-identical bodies run the handler once and share the response.
 * Purely in-flight — nothing is cached after the leader finishes, so
 * a repeat request a millisecond later runs fresh (persistent reuse
 * is the engine memo cache's job). Hash collisions degrade to
 * not-deduplicating, never to a wrong response.
 */
class SingleFlight
{
  public:
    /** Run @p fn (or wait for an in-flight identical body's run).
     *  @p wasShared, when given, is set true iff this call received
     *  a response computed by another request. Leader exceptions are
     *  rethrown to every sharer. */
    template <typename Fn>
    HttpResponse
    run(const std::string &body, Fn &&fn, bool *wasShared = nullptr)
    {
        uint64_t key = fnv1a(body);
        std::shared_ptr<Entry> entry;
        bool leader = false;
        {
            std::lock_guard<std::mutex> lock(mutex_);
            auto it = inflight_.find(key);
            if (it != inflight_.end()) {
                if (it->second->body != body)
                    entry = nullptr; // Collision: run solo.
                else
                    entry = it->second;
            } else {
                entry = std::make_shared<Entry>();
                entry->body = body;
                inflight_.emplace(key, entry);
                leader = true;
            }
        }
        if (!entry)
            return fn();
        if (leader) {
            try {
                entry->response = fn();
            } catch (...) {
                entry->error = std::current_exception();
            }
            {
                std::lock_guard<std::mutex> lock(mutex_);
                inflight_.erase(key);
            }
            {
                std::lock_guard<std::mutex> lock(entry->mutex);
                entry->done = true;
            }
            entry->cv.notify_all();
            if (entry->error)
                std::rethrow_exception(entry->error);
            // Copy, not move: followers still read entry->response.
            return entry->response;
        }
        std::unique_lock<std::mutex> lock(entry->mutex);
        entry->cv.wait(lock, [&] { return entry->done; });
        if (wasShared)
            *wasShared = true;
        if (entry->error)
            std::rethrow_exception(entry->error);
        return entry->response;
    }

  private:
    struct Entry
    {
        std::string body;
        std::mutex mutex;
        std::condition_variable cv;
        bool done = false;
        HttpResponse response;
        std::exception_ptr error;
    };

    std::mutex mutex_;
    std::unordered_map<uint64_t, std::shared_ptr<Entry>> inflight_;
};

} // namespace madmax

#endif // MADMAX_SERVE_BATCH_DISPATCHER_HH
