/**
 * @file
 * Cross-request micro-batching for the serving hot path.
 *
 * BatchDispatcher coalesces concurrent /v1/evaluate requests into
 * single EvalEngine::evaluateAll batches using a leader/follower
 * scheme: the first request to arrive becomes the window leader,
 * waits up to the batch window for company, then submits everything
 * queued as ONE batch on its own thread; followers block until the
 * leader distributes their results. Requests arriving while a batch
 * is evaluating accumulate for the next window (continuous batching —
 * under sustained load the effective window is the evaluation time
 * and the configured window only bounds the idle case). The payoff
 * rides the engine's batch grouping: requests whose configs resolved
 * to the same shared ParsedTriple (serve/config_cache.hh) have
 * pointer-identical (model, desc, task) and therefore share one warm
 * EvalContext within the batch — many tenants, one validation +
 * per-layer timing pass — and in-batch duplicate points collapse to
 * a single evaluation.
 *
 * Requests already memoized in the engine bypass the window entirely
 * (EvalEngine::tryCached), so the batch window adds zero latency to
 * the cached hot path.
 *
 * SingleFlight deduplicates concurrent *identical* requests at the
 * response level — used by /v1/pareto, where a whole search is too
 * coarse to batch but popular identical queries (same body bytes)
 * would otherwise each run the full frontier sweep.
 */

#ifndef MADMAX_SERVE_BATCH_DISPATCHER_HH
#define MADMAX_SERVE_BATCH_DISPATCHER_HH

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>

#include "core/perf_model.hh"
#include "serve/config_cache.hh"
#include "serve/http_server.hh"
#include "util/fingerprint.hh"

namespace madmax
{

class EvalEngine;

struct BatchDispatcherOptions
{
    /** How long a window leader waits for company, microseconds.
     *  0 = submit immediately (coalescing then happens only via
     *  accumulation behind an in-flight batch). */
    long windowMicros = 100;

    /** Window occupancy that cuts the wait short and submits. */
    size_t maxBatch = 64;

    /**
     * Wedged-leader watchdog, microseconds; 0 disables. When the
     * current leader has been busy longer than this and requests are
     * queued behind it, a waiting request takes over as a rescue
     * leader and submits the queued work as its own batch — a wedged
     * evaluation stalls only the requests already inside its batch,
     * never the ones behind it. Successive takeovers are throttled to
     * one per watchdog period.
     */
    long watchdogMicros = 0;
};

struct BatchDispatcherStats
{
    long windows = 0;   ///< Batches submitted to the engine.
    long requests = 0;  ///< Requests that entered a window (memo
                        ///< misses; hits bypass).
    long coalesced = 0; ///< Requests that shared a window with >= 1
                        ///< other request.
    long maxOccupancy = 0;  ///< Largest window submitted.
    long memoFastPath = 0;  ///< Requests answered from the engine memo
                            ///< cache without entering a window.
    long watchdogTakeovers = 0; ///< Rescue leaders spawned past a
                                ///< wedged one.
    long deadlineTimeouts = 0;  ///< Requests abandoned at their
                                ///< deadline (DeadlineError thrown).
};

class BatchDispatcher
{
  public:
    BatchDispatcher(EvalEngine &engine,
                    BatchDispatcherOptions options = {});

    BatchDispatcher(const BatchDispatcher &) = delete;
    BatchDispatcher &operator=(const BatchDispatcher &) = delete;

    /**
     * Evaluate one resolved request, riding whatever batch forms.
     * Blocking; safe from any number of threads.
     *
     * Per-request engine failures come back as failure reports
     * (PerfReport::failed() — see EvalEngine exception isolation);
     * only a catastrophic evaluateAll throw is rethrown to every
     * request of the affected batch.
     *
     * @p deadlineMicros > 0 bounds the wait: past it the request is
     * abandoned (removed from the queue if still there; its batch
     * slot outlives it via shared ownership if not) and DeadlineError
     * is thrown with the partial-work stage. A request that has
     * already become the window leader runs its batch to completion —
     * the deadline gates waiting, not evaluating.
     */
    PerfReport evaluate(const CachedRequest &request,
                        long deadlineMicros = 0);

    BatchDispatcherStats stats() const;

  private:
    using Clock = std::chrono::steady_clock;

    /** One waiting request. Shared ownership: a deadline-abandoned
     *  request's slot must stay writable for the leader that took it
     *  into a batch after the submitter has thrown out. */
    struct Pending
    {
        const CachedRequest *request = nullptr;
        PerfReport report;
        std::exception_ptr error;
        bool done = false;
    };

    /** Take the current queue as one batch, evaluate it with the lock
     *  dropped, distribute results, notify. Lock held on entry and
     *  exit. Used by both the window leader and watchdog rescuers
     *  (which is why it does not touch leaderBusy_). */
    void runBatch(std::unique_lock<std::mutex> &lock);

    EvalEngine &engine_;
    BatchDispatcherOptions options_;

    mutable std::mutex mutex_;
    std::condition_variable cv_;
    std::deque<std::shared_ptr<Pending>> queue_;
    bool leaderBusy_ = false; ///< A window is open or evaluating.
    Clock::time_point leaderSince_{}; ///< When leaderBusy_ last rose
                                      ///< (or a rescuer took over).
    BatchDispatcherStats stats_;
};

/**
 * Response-level request deduplication: concurrent requests with
 * byte-identical bodies run the handler once and share the response.
 * Purely in-flight — nothing is cached after the leader finishes, so
 * a repeat request a millisecond later runs fresh (persistent reuse
 * is the engine memo cache's job). Hash collisions degrade to
 * not-deduplicating, never to a wrong response.
 */
class SingleFlight
{
  public:
    /** Run @p fn (or wait for an in-flight identical body's run).
     *  @p wasShared, when given, is set true iff this call received
     *  a response computed by another request. Leader exceptions are
     *  rethrown to every sharer. */
    template <typename Fn>
    HttpResponse
    run(const std::string &body, Fn &&fn, bool *wasShared = nullptr)
    {
        uint64_t key = fnv1a(body);
        std::shared_ptr<Entry> entry;
        bool leader = false;
        {
            std::lock_guard<std::mutex> lock(mutex_);
            auto it = inflight_.find(key);
            if (it != inflight_.end()) {
                if (it->second->body != body)
                    entry = nullptr; // Collision: run solo.
                else
                    entry = it->second;
            } else {
                entry = std::make_shared<Entry>();
                entry->body = body;
                inflight_.emplace(key, entry);
                leader = true;
            }
        }
        if (!entry)
            return fn();
        if (leader) {
            try {
                entry->response = fn();
            } catch (...) {
                entry->error = std::current_exception();
            }
            {
                std::lock_guard<std::mutex> lock(mutex_);
                inflight_.erase(key);
            }
            {
                std::lock_guard<std::mutex> lock(entry->mutex);
                entry->done = true;
            }
            entry->cv.notify_all();
            if (entry->error)
                std::rethrow_exception(entry->error);
            // Copy, not move: followers still read entry->response.
            return entry->response;
        }
        std::unique_lock<std::mutex> lock(entry->mutex);
        entry->cv.wait(lock, [&] { return entry->done; });
        if (wasShared)
            *wasShared = true;
        if (entry->error)
            std::rethrow_exception(entry->error);
        return entry->response;
    }

  private:
    struct Entry
    {
        std::string body;
        std::mutex mutex;
        std::condition_variable cv;
        bool done = false;
        HttpResponse response;
        std::exception_ptr error;
    };

    std::mutex mutex_;
    std::unordered_map<uint64_t, std::shared_ptr<Entry>> inflight_;
};

} // namespace madmax

#endif // MADMAX_SERVE_BATCH_DISPATCHER_HH
