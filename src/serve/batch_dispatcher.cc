#include "serve/batch_dispatcher.hh"

#include <algorithm>
#include <chrono>
#include <vector>

#include "engine/eval_engine.hh"
#include "util/logging.hh"

namespace madmax
{

BatchDispatcher::BatchDispatcher(EvalEngine &engine,
                                 BatchDispatcherOptions options)
    : engine_(engine), options_(options)
{
    if (options_.windowMicros < 0)
        fatal("BatchDispatcher: windowMicros must be >= 0");
    if (options_.maxBatch < 1)
        fatal("BatchDispatcher: maxBatch must be >= 1");
}

PerfReport
BatchDispatcher::evaluate(const CachedRequest &request)
{
    {
        // Memo hot path: no window, no queue, no batch — the cached
        // report is ready and the window would be pure added latency.
        PerfReport memo;
        if (engine_.tryCached(request.engineKey, request.plan, memo)) {
            std::lock_guard<std::mutex> lock(mutex_);
            ++stats_.memoFastPath;
            return memo;
        }
    }

    Pending mine;
    mine.request = &request;
    std::unique_lock<std::mutex> lock(mutex_);
    queue_.push_back(&mine);
    ++stats_.requests;
    cv_.notify_all(); // A window-waiting leader may now be full.

    while (!mine.done) {
        if (leaderBusy_) {
            cv_.wait(lock);
            continue;
        }
        // Become the window leader. `mine` is still queued (it is not
        // done, and a leader marks everything it takes done before
        // clearing leaderBusy_), so the batch below includes it.
        leaderBusy_ = true;
        if (options_.windowMicros > 0 &&
            queue_.size() < options_.maxBatch)
            cv_.wait_for(
                lock, std::chrono::microseconds(options_.windowMicros),
                [this] { return queue_.size() >= options_.maxBatch; });

        std::vector<Pending *> batch(queue_.begin(), queue_.end());
        queue_.clear();
        ++stats_.windows;
        stats_.maxOccupancy = std::max(
            stats_.maxOccupancy, static_cast<long>(batch.size()));
        if (batch.size() > 1)
            stats_.coalesced += static_cast<long>(batch.size());
        lock.unlock();

        std::vector<PlanRequest> points;
        points.reserve(batch.size());
        for (const Pending *p : batch) {
            PlanRequest point;
            point.model = &p->request->triple->perf;
            point.desc = &p->request->triple->model;
            point.task = &p->request->triple->task;
            point.plan = p->request->plan;
            points.push_back(std::move(point));
        }
        std::vector<PerfReport> reports;
        std::exception_ptr error;
        try {
            reports = engine_.evaluateAll(points);
        } catch (...) {
            error = std::current_exception();
        }

        lock.lock();
        for (size_t i = 0; i < batch.size(); ++i) {
            if (error)
                batch[i]->error = error;
            else
                batch[i]->report = std::move(reports[i]);
            batch[i]->done = true;
        }
        leaderBusy_ = false;
        cv_.notify_all();
    }

    if (mine.error)
        std::rethrow_exception(mine.error);
    return std::move(mine.report);
}

BatchDispatcherStats
BatchDispatcher::stats() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return stats_;
}

} // namespace madmax
