#include "serve/batch_dispatcher.hh"

#include <algorithm>
#include <chrono>
#include <vector>

#include "engine/eval_engine.hh"
#include "serve/errors.hh"
#include "util/logging.hh"

namespace madmax
{

BatchDispatcher::BatchDispatcher(EvalEngine &engine,
                                 BatchDispatcherOptions options)
    : engine_(engine), options_(options)
{
    if (options_.windowMicros < 0)
        fatal("BatchDispatcher: windowMicros must be >= 0");
    if (options_.maxBatch < 1)
        fatal("BatchDispatcher: maxBatch must be >= 1");
    if (options_.watchdogMicros < 0)
        fatal("BatchDispatcher: watchdogMicros must be >= 0");
}

void
BatchDispatcher::runBatch(std::unique_lock<std::mutex> &lock)
{
    std::vector<std::shared_ptr<Pending>> batch(queue_.begin(),
                                                queue_.end());
    queue_.clear();
    if (batch.empty())
        return; // Raced another leader to an emptied queue.
    ++stats_.windows;
    stats_.maxOccupancy = std::max(stats_.maxOccupancy,
                                   static_cast<long>(batch.size()));
    if (batch.size() > 1)
        stats_.coalesced += static_cast<long>(batch.size());
    lock.unlock();

    std::vector<PlanRequest> points;
    points.reserve(batch.size());
    for (const auto &p : batch) {
        PlanRequest point;
        point.model = &p->request->triple->perf;
        point.desc = &p->request->triple->model;
        point.task = &p->request->triple->task;
        point.plan = p->request->plan;
        points.push_back(std::move(point));
    }
    // Per-request failures come back as failure reports (engine
    // exception isolation); this catch only fires on catastrophic
    // engine errors, which then fail the whole batch.
    std::vector<PerfReport> reports;
    std::exception_ptr error;
    try {
        reports = engine_.evaluateAll(points);
    } catch (...) {
        error = std::current_exception();
    }

    lock.lock();
    for (size_t i = 0; i < batch.size(); ++i) {
        if (error)
            batch[i]->error = error;
        else
            batch[i]->report = std::move(reports[i]);
        batch[i]->done = true;
    }
    cv_.notify_all();
}

PerfReport
BatchDispatcher::evaluate(const CachedRequest &request,
                          long deadlineMicros)
{
    {
        // Memo hot path: no window, no queue, no batch — the cached
        // report is ready and the window would be pure added latency.
        PerfReport memo;
        if (engine_.tryCached(request.engineKey, request.plan, memo)) {
            std::lock_guard<std::mutex> lock(mutex_);
            ++stats_.memoFastPath;
            return memo;
        }
    }

    const bool hasDeadline = deadlineMicros > 0;
    const Clock::time_point start = Clock::now();
    const Clock::time_point deadline =
        start + std::chrono::microseconds(deadlineMicros);
    const auto watchdog =
        std::chrono::microseconds(options_.watchdogMicros);

    auto mine = std::make_shared<Pending>();
    mine->request = &request;
    std::unique_lock<std::mutex> lock(mutex_);
    queue_.push_back(mine);
    ++stats_.requests;
    cv_.notify_all(); // A window-waiting leader may now be full.

    while (!mine->done) {
        Clock::time_point now = Clock::now();
        if (hasDeadline && now >= deadline) {
            // Abandon: if still queued we can withdraw cleanly; if a
            // leader already took us into a batch, the shared slot
            // stays writable for it and we just stop waiting.
            auto it = std::find(queue_.begin(), queue_.end(), mine);
            const char *stage = "evaluating";
            if (it != queue_.end()) {
                queue_.erase(it);
                stage = "queued";
            }
            ++stats_.deadlineTimeouts;
            long waitedMs =
                std::chrono::duration_cast<std::chrono::milliseconds>(
                    now - start)
                    .count();
            throw DeadlineError(waitedMs, stage);
        }
        if (leaderBusy_) {
            if (options_.watchdogMicros > 0 && !queue_.empty() &&
                now - leaderSince_ >= watchdog) {
                // The leader has been busy past the watchdog with
                // work queued behind it: become a rescue leader for
                // the queued requests. The wedged leader's own batch
                // still completes whenever it returns; bumping
                // leaderSince_ throttles takeovers to one per period.
                ++stats_.watchdogTakeovers;
                leaderSince_ = now;
                runBatch(lock);
                continue;
            }
            if (hasDeadline || options_.watchdogMicros > 0) {
                Clock::time_point until = Clock::time_point::max();
                if (hasDeadline)
                    until = deadline;
                if (options_.watchdogMicros > 0)
                    until = std::min(until, leaderSince_ + watchdog);
                cv_.wait_until(lock, until);
            } else {
                cv_.wait(lock);
            }
            continue;
        }
        // Become the window leader. `mine` is still queued (it is not
        // done, and a leader marks everything it takes done before
        // clearing leaderBusy_), so the batch below includes it.
        leaderBusy_ = true;
        leaderSince_ = Clock::now();
        if (options_.windowMicros > 0 &&
            queue_.size() < options_.maxBatch)
            cv_.wait_for(
                lock, std::chrono::microseconds(options_.windowMicros),
                [this] { return queue_.size() >= options_.maxBatch; });

        runBatch(lock);
        leaderBusy_ = false;
        cv_.notify_all();
    }

    if (mine->error)
        std::rethrow_exception(mine->error);
    return std::move(mine->report);
}

BatchDispatcherStats
BatchDispatcher::stats() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return stats_;
}

} // namespace madmax
