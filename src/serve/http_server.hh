/**
 * @file
 * Minimal embedded HTTP/1.1 server over POSIX sockets — the transport
 * under `madmax serve`. Deliberately dependency-free, like the JSON
 * parser it fronts: one acceptor thread feeds accepted connections
 * into a bounded queue drained by a fixed set of worker threads, each
 * of which parses one request, runs the registered handler, writes
 * the response, and closes the connection (every response carries
 * `Connection: close`; the service is request-per-connection by
 * design — evaluations dominate connection setup by orders of
 * magnitude).
 *
 * Admission control: when the queue is full the acceptor answers 503
 * immediately instead of letting requests pile up — the bounded queue
 * *is* the backpressure mechanism. Transport-level rejections (parse
 * failure 400, oversized body 413, oversized headers 431, queue-full
 * 503) are produced here; application routing (404/405) lives in
 * RequestRouter.
 */

#ifndef MADMAX_SERVE_HTTP_SERVER_HH
#define MADMAX_SERVE_HTTP_SERVER_HH

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace madmax
{

/** One parsed request. Header names are lower-cased on parse. */
struct HttpRequest
{
    std::string method;  ///< "GET", "POST", ... (upper-case).
    std::string target;  ///< Path only; any "?query" is stripped.
    std::string version; ///< "HTTP/1.1".
    std::map<std::string, std::string> headers;
    std::string body;
};

/** One response. The server adds Content-Length and Connection. */
struct HttpResponse
{
    int status = 200;
    std::string contentType = "application/json";
    std::string body;
};

using HttpHandler = std::function<HttpResponse(const HttpRequest &)>;

/**
 * The API's uniform error shape, used by every rejection path
 * (transport, router, and service alike):
 *
 *   {"error": {"code": "<machine-readable>", "message": "<human>"}}
 */
HttpResponse errorResponse(int status, const std::string &code,
                           const std::string &message);

/** Canonical reason phrase for the status codes the server emits. */
const char *statusReason(int status);

/** Server construction knobs. */
struct HttpServerOptions
{
    /** TCP port to bind on loopback; 0 picks a free port (see
     *  HttpServer::port for the bound one). */
    int port = 8080;

    /** Worker threads draining the connection queue. */
    int workers = 4;

    /** Bounded admission queue depth; connections beyond it are
     *  answered 503 by the acceptor. */
    size_t queueDepth = 64;

    /** Request-body cap; larger Content-Lengths are answered 413. */
    size_t maxBodyBytes = 1 << 20;

    /** Request-line + header cap; larger preambles are answered 431. */
    size_t maxHeaderBytes = 16 << 10;

    /** Per-recv() socket timeout, seconds (covers dead clients). */
    int recvTimeoutSeconds = 10;

    /** Whole-request wall-clock deadline, seconds. SO_RCVTIMEO alone
     *  only bounds a single recv(): a client trickling one byte per
     *  timeout window could otherwise pin a worker (and eventually
     *  the whole pool) indefinitely. */
    int requestDeadlineSeconds = 30;
};

/** Transport-level counters. `madmax serve` wires them into
 *  `GET /v1/stats` via EvalService::setTransportStatsProvider —
 *  transport rejections (400/413/431/503) never reach the service
 *  handler, so they are only observable here. */
struct HttpServerStats
{
    long accepted = 0;        ///< Connections taken off accept().
    long served = 0;          ///< Requests answered by the handler.
    long rejectedQueueFull = 0; ///< 503s from the bounded queue.
    long badRequests = 0;     ///< Transport 400/413/431 rejections.
};

/**
 * The listening server. start() binds and spawns threads; stop()
 * (idempotent, also run by the destructor) unblocks the acceptor,
 * drains queued connections, and joins every thread. The handler is
 * called concurrently from multiple workers and must be thread-safe.
 * Handler exceptions are mapped to JSON errors: ConfigError -> 400,
 * anything else -> 500.
 */
class HttpServer
{
  public:
    HttpServer(HttpHandler handler, HttpServerOptions options = {});
    ~HttpServer();

    HttpServer(const HttpServer &) = delete;
    HttpServer &operator=(const HttpServer &) = delete;

    /** Bind 127.0.0.1:port, listen, spawn acceptor + workers.
     *  @throws ConfigError if the socket cannot be bound. */
    void start();

    /** Shut down and join; safe to call twice or before start(). */
    void stop();

    /** Actually-bound port (resolves port 0), valid after start(). */
    int port() const { return port_; }

    bool running() const { return running_.load(); }

    HttpServerStats stats() const;

  private:
    void acceptLoop();
    void workerLoop();
    void handleConnection(int fd);

    HttpHandler handler_;
    HttpServerOptions options_;

    int listenFd_ = -1;
    int port_ = 0;
    std::atomic<bool> running_{false};
    std::atomic<bool> stopping_{false};

    std::thread acceptor_;
    std::vector<std::thread> workers_;

    mutable std::mutex mutex_; ///< Guards queue_ and stats_.
    std::condition_variable queueCv_;
    std::deque<int> queue_; ///< Accepted fds awaiting a worker.
    HttpServerStats stats_;
};

} // namespace madmax

#endif // MADMAX_SERVE_HTTP_SERVER_HH
