/**
 * @file
 * Embedded HTTP/1.1 server over an epoll edge-triggered event loop —
 * the transport under `madmax serve`. Deliberately dependency-free,
 * like the JSON parser it fronts: one I/O thread owns every
 * connection's read/write state machine (non-blocking sockets,
 * partial reads and writes, HTTP/1.1 keep-alive and pipelining, idle
 * timeouts, slow-loris request deadlines) and hands fully parsed
 * requests to a fixed pool of handler workers. Workers never touch a
 * socket: they run the handler and post the response back to the loop
 * through a completion queue (an eventfd wake), so connection state
 * needs no locking at all — it is only ever mutated by the loop.
 *
 * Keep-alive semantics: HTTP/1.1 connections persist by default, up
 * to `keepAliveMaxRequests` requests per connection, and pipelined
 * requests buffered behind an in-flight one are answered in order
 * (one request per connection is dispatched at a time, which makes
 * response ordering structural rather than something to re-sort).
 * Every error response — transport (400/413/431/501), shed (503), or
 * handler (4xx/5xx) — carries `Connection: close` and is followed by
 * a drained shutdown: the server flushes the response, half-closes
 * the socket, and discards whatever the client was still sending
 * before closing, so the error bytes are never destroyed by a TCP
 * RST racing an unread inbound body.
 *
 * Admission control is tiered instead of binary: each request is
 * classified (via `HttpServerOptions::classifier`) into tier 0
 * (cheap — health checks, metrics scrapes; never shed), tier 1
 * (cached — answered from warm state), or tier 2 (expensive — cold
 * evaluations). As the in-flight handler load rises, tier 2 sheds
 * first (at 3/4 of `queueDepth`), then tier 1 (at `queueDepth`);
 * tier 0 always gets through, so load probes keep working while the
 * service refuses the work that actually costs something.
 */

#ifndef MADMAX_SERVE_HTTP_SERVER_HH
#define MADMAX_SERVE_HTTP_SERVER_HH

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

namespace madmax
{

/** One parsed request. Header names are lower-cased on parse. */
struct HttpRequest
{
    std::string method;  ///< "GET", "POST", ... (upper-case).
    std::string target;  ///< Path only; any "?query" is stripped.
    std::string version; ///< "HTTP/1.1".
    std::map<std::string, std::string> headers;
    std::string body;
};

/** One response. The server adds Content-Length and Connection. */
struct HttpResponse
{
    int status = 200;
    std::string contentType = "application/json";
    std::string body;

    /** Extra headers beyond the framing ones the server owns
     *  (e.g. Retry-After on a 503). */
    std::map<std::string, std::string> headers;
};

using HttpHandler = std::function<HttpResponse(const HttpRequest &)>;

/**
 * The API's uniform error shape, used by every rejection path
 * (transport, router, and service alike):
 *
 *   {"error": {"code": "<machine-readable>", "message": "<human>"}}
 */
HttpResponse errorResponse(int status, const std::string &code,
                           const std::string &message);

/** Canonical reason phrase for the status codes the server emits. */
const char *statusReason(int status);

/** Admission tiers for load shedding (see HttpServerOptions). */
enum class RequestCost
{
    Cheap = 0,     ///< Health/metrics probes; never shed.
    Cached = 1,    ///< Served from warm state; shed last.
    Expensive = 2, ///< Cold evaluation; shed first.
};

/** Server construction knobs. */
struct HttpServerOptions
{
    /** TCP port to bind on loopback; 0 picks a free port (see
     *  HttpServer::port for the bound one). */
    int port = 8080;

    /** Handler worker threads (the event loop itself never runs a
     *  handler — a slow evaluation must not stall every socket). */
    int workers = 4;

    /** In-flight handler request cap, the admission-control pivot:
     *  tier-2 requests shed at 3/4 of it, tier-1 at it, tier-0
     *  never (see RequestCost). */
    size_t queueDepth = 64;

    /** Request-body cap; larger Content-Lengths are answered 413. */
    size_t maxBodyBytes = 1 << 20;

    /** Request-line + header cap; larger preambles are answered 431. */
    size_t maxHeaderBytes = 16 << 10;

    /** Keep-alive connections idle longer than this are evicted. */
    int idleTimeoutSeconds = 30;

    /** Whole-request read deadline, seconds: a client trickling one
     *  byte at a time (slow loris) is cut off this long after its
     *  request's first byte, no matter how alive the socket looks. */
    int requestDeadlineSeconds = 30;

    /** Requests served per connection before the server answers with
     *  `Connection: close` (bounds per-connection state lifetime). */
    int keepAliveMaxRequests = 1000;

    /**
     * Admission classifier mapping a parsed request to its shedding
     * tier. Called on the event loop, so it must be fast and
     * thread-safe; null means every request is tier Cached.
     */
    std::function<RequestCost(const HttpRequest &)> classifier;
};

/** Transport-level counters. `madmax serve` wires them into
 *  `GET /v1/stats` and `/v1/metrics` via
 *  EvalService::setTransportStatsProvider — transport rejections
 *  (400/413/431/503) never reach the service handler, so they are
 *  only observable here. */
struct HttpServerStats
{
    long accepted = 0;          ///< Connections taken off accept().
    long served = 0;            ///< Requests answered by the handler.
    long rejectedQueueFull = 0; ///< All 503 sheds (cold + cached).
    long badRequests = 0;       ///< Transport 400/413/431/501 + timeouts.

    long keepAliveReuses = 0; ///< Requests beyond a conn's first.
    long pipelinedRequests = 0; ///< Parsed while a response was pending.
    long shedExpensive = 0;     ///< Tier-2 503s (cold evaluations).
    long shedCached = 0;        ///< Tier-1 503s (full overload).
    long idleClosed = 0;        ///< Keep-alive conns evicted idle.
    long deadlineClosed = 0;    ///< Slow-loris request deadline cuts.
    long partialWrites = 0;     ///< Responses resumed after EAGAIN.

    long fdExhausted = 0; ///< accept() failures on EMFILE/ENFILE.
    long fdRejects = 0;   ///< Clients answered 503 fd_exhausted via
                          ///< the emergency fd (accept-then-reject).
};

/**
 * The listening server. start() binds and spawns the event loop and
 * the worker pool; stop() (idempotent, also run by the destructor)
 * finishes every dispatched request, flushes pending responses, and
 * joins every thread. The handler is called concurrently from
 * multiple workers and must be thread-safe. Handler exceptions are
 * mapped to JSON errors: ConfigError -> 400, anything else -> 500.
 */
class HttpServer
{
  public:
    HttpServer(HttpHandler handler, HttpServerOptions options = {});
    ~HttpServer();

    HttpServer(const HttpServer &) = delete;
    HttpServer &operator=(const HttpServer &) = delete;

    /** Bind 127.0.0.1:port, listen, spawn the loop + workers.
     *  @throws ConfigError if the socket cannot be bound. */
    void start();

    /** Shut down and join; safe to call twice or before start(). */
    void stop();

    /** Actually-bound port (resolves port 0), valid after start(). */
    int port() const { return port_; }

    bool running() const { return running_.load(); }

    HttpServerStats stats() const;

  private:
    struct Conn;

    /** One parsed request handed to a worker. */
    struct Dispatched
    {
        uint64_t connId;
        HttpRequest request;
    };

    /** One handler result handed back to the loop. */
    struct Completion
    {
        uint64_t connId;
        HttpResponse response;
    };

    void ioLoop();
    void workerLoop();

    // Loop-side helpers; all return false when they closed the
    // connection (the caller's reference is dangling).
    bool onReadable(Conn &conn);
    bool onWritable(Conn &conn);
    bool pump(Conn &conn);
    bool flushWrite(Conn &conn);
    bool respondError(Conn &conn, const HttpResponse &resp);
    bool startDrain(Conn &conn);
    void queueResponse(Conn &conn, const HttpResponse &resp,
                       bool keepAlive);
    void acceptReady();
    void processCompletions();
    void sweepDeadlines();
    void closeConn(Conn &conn);
    void setWantWrite(Conn &conn, bool want);
    void bumpStat(long HttpServerStats::*field);

    /** Close the reserved fd, accept one waiting client, send it a
     *  synchronous 503 fd_exhausted, close it, re-reserve. Keeps
     *  clients from hanging to their own timeout when accept() hits
     *  EMFILE/ENFILE (see acceptReady). Returns true iff a client
     *  was actually rejected (false = backlog empty; stop looping). */
    bool emergencyReject();

    HttpHandler handler_;
    HttpServerOptions options_;

    int listenFd_ = -1;
    int epollFd_ = -1;
    int wakeFd_ = -1;
    /// Reserved "emergency fd" (an open /dev/null): on EMFILE/ENFILE
    /// it is closed to free one descriptor slot so the server can
    /// accept-then-reject a waiting client with 503 instead of
    /// leaving it to hang (satellite of the resilience layer).
    int emergencyFd_ = -1;
    int port_ = 0;
    std::atomic<bool> running_{false};
    std::atomic<bool> stopping_{false};

    std::thread io_;
    std::vector<std::thread> workers_;

    /// Connections, keyed by id (epoll events carry the id, not the
    /// fd, so a recycled fd can never be confused with a closed
    /// conn). Only the I/O thread touches this map or any Conn.
    std::unordered_map<uint64_t, std::unique_ptr<Conn>> conns_;
    uint64_t nextConnId_ = 16;

    /// Requests dispatched whose completion the loop has not yet
    /// processed; the admission-control load metric.
    std::atomic<long> inFlight_{0};

    std::mutex dispatchMutex_;
    std::condition_variable dispatchCv_;
    std::deque<Dispatched> dispatchQueue_;
    bool workersStop_ = false; ///< Guarded by dispatchMutex_.

    std::mutex completionMutex_;
    std::vector<Completion> completions_;

    mutable std::mutex statsMutex_;
    HttpServerStats stats_;
};

} // namespace madmax

#endif // MADMAX_SERVE_HTTP_SERVER_HH
