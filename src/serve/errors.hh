#pragma once

/**
 * @file
 * Structured error taxonomy for the serving stack. Every error the API
 * can emit — transport rejections, router misses, handler failures,
 * degradation responses — is an enumerator here, mapped to its HTTP
 * status and stable machine-readable `code` in exactly one table, so
 * the wire contract ("error.code" in every error body) is enforced
 * structurally instead of by string literals scattered across
 * http_server.cc / service.cc catch sites.
 *
 * Wire shape (see errorResponse in http_server.hh):
 *
 *   {"error": {"code": "<machine>", "detail": {...}?, "message": "<human>"}}
 *
 * The optional `detail` object carries partial-work accounting (e.g. a
 * 504's waited_ms + stage) and is omitted entirely when empty, keeping
 * the historical two-field bodies byte-identical.
 */

#include <stdexcept>
#include <string>

#include "config/json.hh"
#include "serve/http_server.hh"

namespace madmax
{

/** Every error the serving API can put on the wire. */
enum class ServeError
{
    BadRequest,        ///< 400 bad_request — malformed request/config.
    NotFound,          ///< 404 not_found — no such endpoint.
    MethodNotAllowed,  ///< 405 method_not_allowed.
    PayloadTooLarge,   ///< 413 payload_too_large — body over cap.
    HeaderTooLarge,    ///< 431, wire code "bad_request" (kept stable
                       ///< from the pre-taxonomy server).
    Internal,          ///< 500 internal — unexpected handler failure.
    EvalFailed,        ///< 500 eval_failed — plan evaluation threw.
    NotImplemented,    ///< 501 not_implemented — e.g. chunked bodies.
    Overloaded,        ///< 503 overloaded — admission control shed.
    ResourceExhausted, ///< 503 resource_exhausted — allocation failed.
    FdExhausted,       ///< 503 fd_exhausted — accept hit EMFILE/ENFILE.
    CircuitOpen,       ///< 503 circuit_open — breaker fast-fail.
    DeadlineExceeded,  ///< 504 deadline_exceeded — request deadline.
};

/** Status + wire code for one taxonomy entry. */
struct ServeErrorSpec
{
    int status;
    const char *code;
};

/** The single status/code mapping table. */
const ServeErrorSpec &serveErrorSpec(ServeError kind);

/** Render a taxonomy error with the uniform JSON error shape. */
HttpResponse makeError(ServeError kind, const std::string &message);

/** As above with a `detail` object (partial-work accounting). A null
 *  detail is omitted from the body. */
HttpResponse makeError(ServeError kind, const std::string &message,
                       JsonValue detail);

/**
 * Map the in-flight exception (rethrown inside a catch block) to its
 * taxonomy response. This is the one place exception types turn into
 * wire errors; both the HTTP worker fallback and EvalService::handle
 * route through it.
 */
HttpResponse errorFromCurrentException();

/** Thrown by BatchDispatcher when a request's deadline expires while
 *  it is queued or mid-batch; maps to 504 deadline_exceeded with
 *  {stage, waited_ms} partial-work detail. */
class DeadlineError : public std::runtime_error
{
  public:
    DeadlineError(long waitedMillis, std::string stage);

    long waitedMillis;
    std::string stage; ///< "queued" or "evaluating".
};

/** Thrown by EvalService when the circuit breaker rejects a config
 *  fingerprint; maps to 503 circuit_open + Retry-After. */
class CircuitOpenError : public std::runtime_error
{
  public:
    explicit CircuitOpenError(long retryAfterSeconds);

    long retryAfterSeconds;
};

} // namespace madmax
