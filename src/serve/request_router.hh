/**
 * @file
 * Method + path dispatch for the serving API. Kept separate from the
 * transport (HttpServer) and the application (EvalService) so each is
 * testable alone: the router maps an HttpRequest to a registered
 * handler and owns the 404 (unknown path) / 405 (known path, wrong
 * method, with an Allow-style hint) error responses.
 */

#ifndef MADMAX_SERVE_REQUEST_ROUTER_HH
#define MADMAX_SERVE_REQUEST_ROUTER_HH

#include <map>
#include <string>

#include "serve/http_server.hh"

namespace madmax
{

/** Exact-match (method, path) routing table. */
class RequestRouter
{
  public:
    /** Register @p handler for @p method + @p path (exact match). */
    void add(const std::string &method, const std::string &path,
             HttpHandler handler);

    /**
     * Dispatch one request: the registered handler's response, 404
     * for an unknown path, 405 (naming the allowed methods) for a
     * known path with the wrong method. Never throws on its own;
     * handler exceptions propagate to the caller (HttpServer maps
     * them to 400/500).
     */
    HttpResponse route(const HttpRequest &request) const;

  private:
    /// path -> method -> handler.
    std::map<std::string, std::map<std::string, HttpHandler>> routes_;
};

} // namespace madmax

#endif // MADMAX_SERVE_REQUEST_ROUTER_HH
