#include "serve/request_router.hh"

#include "util/logging.hh"

namespace madmax
{

void
RequestRouter::add(const std::string &method, const std::string &path,
                   HttpHandler handler)
{
    if (!handler)
        fatal("RequestRouter: null handler for " + method + " " + path);
    routes_[path][method] = std::move(handler);
}

HttpResponse
RequestRouter::route(const HttpRequest &request) const
{
    auto byPath = routes_.find(request.target);
    if (byPath == routes_.end())
        return errorResponse(404, "not_found",
                             "no such endpoint: " + request.target);
    auto byMethod = byPath->second.find(request.method);
    if (byMethod == byPath->second.end()) {
        std::string allowed;
        for (const auto &[method, handler] : byPath->second) {
            (void)handler;
            if (!allowed.empty())
                allowed += ", ";
            allowed += method;
        }
        return errorResponse(405, "method_not_allowed",
                             request.method + " not supported on " +
                                 request.target + " (use " + allowed +
                                 ")");
    }
    return byMethod->second(request);
}

} // namespace madmax
