#pragma once

/**
 * @file
 * Per-config-fingerprint circuit breaker for the serving stack.
 *
 * A poisoned configuration — one whose plan evaluation reliably throws
 * — would otherwise burn an evaluation slot on every retry a client
 * sends. The breaker tracks consecutive eval failures per config
 * fingerprint (FNV-1a of the canonical request triple, the same
 * identity the config cache dedups on) and fast-fails once a key
 * trips:
 *
 *   Closed    — normal operation; a success resets the failure streak,
 *               `failureThreshold` consecutive failures trip to Open.
 *   Open      — admit() rejects instantly (503 circuit_open +
 *               Retry-After) until `openMillis` have passed.
 *   Half-open — after the cool-down, exactly one probe request is let
 *               through; its success closes the breaker, its failure
 *               re-opens the cool-down. Concurrent requests keep
 *               fast-failing while the probe is in flight.
 *
 * Keys are independent: one poisoned config never blocks the others.
 * Bookkeeping is dropped as soon as a key returns to a clean Closed
 * state, so the table only holds currently-troubled fingerprints.
 */

#include <cstdint>
#include <chrono>
#include <mutex>
#include <unordered_map>

namespace madmax
{

struct CircuitBreakerOptions
{
    /** Consecutive failures that trip a key from Closed to Open. */
    int failureThreshold = 5;

    /** Cool-down before an Open key admits its half-open probe. */
    long openMillis = 1000;
};

/** Aggregate transition counters, exposed via /v1/stats + /v1/metrics. */
struct CircuitBreakerStats
{
    long trips = 0;      ///< Closed/half-open -> Open transitions.
    long rejects = 0;    ///< Requests fast-failed while Open.
    long probes = 0;     ///< Half-open probe requests admitted.
    long recoveries = 0; ///< Half-open -> Closed transitions.
    long openNow = 0;    ///< Keys currently Open or half-open.
};

class CircuitBreaker
{
  public:
    explicit CircuitBreaker(CircuitBreakerOptions options = {});

    /**
     * Gate one request for @p key. Returns true to admit; on false the
     * caller must fast-fail and @p retryAfterSeconds (>= 1) says how
     * long the client should wait.
     */
    bool admit(uint64_t key, long *retryAfterSeconds);

    /** Record the outcome of an admitted request. */
    void recordSuccess(uint64_t key);
    void recordFailure(uint64_t key);

    CircuitBreakerStats stats() const;

  private:
    using Clock = std::chrono::steady_clock;

    enum class State { Closed, Open, HalfOpen };

    struct Entry
    {
        State state = State::Closed;
        int consecutiveFailures = 0;
        bool probeInFlight = false;
        Clock::time_point openedAt;
        Clock::time_point probeStartedAt;
    };

    CircuitBreakerOptions options_;

    mutable std::mutex mutex_;
    std::unordered_map<uint64_t, Entry> entries_;
    CircuitBreakerStats stats_;
};

} // namespace madmax
