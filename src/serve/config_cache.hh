/**
 * @file
 * Fingerprint-keyed parsed-config cache for the serving hot path.
 * Parsing and validating the (model, system, task) triple out of a
 * request body is a visible fraction of cached-request latency once
 * the evaluation itself is a memo hit — popular triples arrive as
 * byte-identical bodies thousands of times, and re-parsing them is
 * pure waste.
 *
 * Two levels, both LRU and both collision-proof (the FNV-1a hash
 * buckets, an exact compare of the stored original confirms):
 *
 *  1. body cache: request-body bytes -> fully parsed request
 *     (shared ParsedTriple + plan + precomputed engine memo key).
 *     A hit skips JSON parsing, config validation, PerfModel
 *     construction, and engine-key construction.
 *  2. triple cache: canonical (model, system, task-spec) text ->
 *     shared ParsedTriple. Bodies that differ only in whitespace or
 *     plan still share one ParsedTriple — and because EvalEngine
 *     batch-groups by pointer identity, every request referencing a
 *     shared triple lands in the same EvalContext group of a
 *     coalesced batch (see serve/batch_dispatcher.hh).
 *
 * Thread-safe. Entries are shared_ptr, so eviction never invalidates
 * a request mid-flight.
 */

#ifndef MADMAX_SERVE_CONFIG_CACHE_HH
#define MADMAX_SERVE_CONFIG_CACHE_HH

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>

#include "core/perf_model.hh"
#include "parallel/strategy.hh"
#include "task/task.hh"
#include "util/lru_cache.hh"

namespace madmax
{

/**
 * One parsed, validated (model, system, task) triple. Immutable once
 * cached; shared by every request whose configs canonicalize to the
 * same text. The members' addresses are the engine's batch-grouping
 * identity, so they must stay stable — hence shared_ptr ownership
 * and no copying.
 */
struct ParsedTriple
{
    ModelDesc model;
    TaskSpec task;
    PerfModel perf;
    std::string canon; ///< Canonical text the fingerprint was taken
                       ///< over (exact-compare collision guard).

    ParsedTriple(ModelDesc m, TaskSpec t, ClusterSpec cluster,
                 std::string canonText)
        : model(std::move(m)), task(t), perf(std::move(cluster)),
          canon(std::move(canonText))
    {
    }

    ParsedTriple(const ParsedTriple &) = delete;
    ParsedTriple &operator=(const ParsedTriple &) = delete;
};

/** A request body resolved to evaluable form. */
struct CachedRequest
{
    std::shared_ptr<const ParsedTriple> triple;
    ParallelPlan plan;
    std::string engineKey; ///< EvalEngine::cacheKey for (triple, plan).
};

class ConfigCache
{
  public:
    /** @p capacity bounds the body cache; the triple cache holds at
     *  most the same number of entries. */
    explicit ConfigCache(size_t capacity);

    /**
     * Resolve an evaluate-request body: cache hit or parse-and-insert.
     * @throws ConfigError on malformed bodies (same messages as the
     * uncached parse path — a cached body was valid by construction).
     */
    CachedRequest lookup(const std::string &body);

    /**
     * Accounting-free probe: the precomputed engine key for @p body
     * if its parse is cached. Fast enough for the transport's
     * admission classifier (one hash + one map find on the event
     * loop); never parses.
     */
    bool peekKey(const std::string &body, std::string &engineKey) const;

    struct Stats
    {
        long hits = 0;
        long misses = 0;       ///< Bodies that had to be parsed.
        long evictions = 0;    ///< Body entries evicted.
        long tripleShares = 0; ///< Parses that reused a cached triple.
        size_t entries = 0;
        size_t capacity = 0;
        size_t tripleEntries = 0;
    };
    Stats stats() const;

  private:
    struct BodyEntry
    {
        std::string body; ///< Original bytes (collision guard).
        std::shared_ptr<const ParsedTriple> triple;
        ParallelPlan plan;
        std::string engineKey;
    };

    mutable std::mutex mutex_;
    LruCache<uint64_t, BodyEntry> bodies_;
    LruCache<uint64_t, std::shared_ptr<const ParsedTriple>> triples_;
    long hits_ = 0;
    long misses_ = 0;
    long evictions_ = 0;
    long tripleShares_ = 0;
};

} // namespace madmax

#endif // MADMAX_SERVE_CONFIG_CACHE_HH
