#include "serve/service.hh"

#include "config/config_loader.hh"
#include "core/strategy_explorer.hh"
#include "dse/pareto_engine.hh"
#include "serve/errors.hh"
#include "util/fault_injection.hh"
#include "util/fingerprint.hh"
#include "util/logging.hh"

namespace madmax
{

namespace
{

/** Parse + shape-check a request body that must carry the config
 *  triple. @throws ConfigError (-> 400) on malformed input. */
JsonValue
parseTripleBody(const HttpRequest &request)
{
    JsonValue body = JsonValue::parse(request.body);
    if (!body.isObject())
        fatal("request body must be a JSON object with \"model\", "
              "\"system\", and \"task\" members");
    for (const char *key : {"model", "system", "task"})
        if (!body.has(key))
            fatal(std::string("request body missing \"") + key +
                  "\" member");
    return body;
}

HttpResponse
jsonResponse(const JsonValue &doc)
{
    HttpResponse resp;
    // dump(2) + "\n" is exactly what the CLI prints with
    // --format json; keeping the framing identical here is what makes
    // responses byte-comparable against `madmax_cli evaluate`.
    resp.body = doc.dump(2) + "\n";
    return resp;
}

/** One Prometheus metric family: HELP + TYPE + one sample line per
 *  (labels, value) pair appended by the caller. */
void
promHeader(std::string &out, const std::string &name,
           const std::string &help, const char *type)
{
    out += "# HELP " + name + " " + help + "\n";
    out += "# TYPE " + name + " " + std::string(type) + "\n";
}

void
promSample(std::string &out, const std::string &name,
           const std::string &labels, double value)
{
    out += name;
    if (!labels.empty())
        out += "{" + labels + "}";
    // Integral counters print without a fraction; measured quantities
    // keep full double precision.
    if (value == static_cast<double>(static_cast<long>(value)))
        out += " " + std::to_string(static_cast<long>(value)) + "\n";
    else
        out += " " + std::to_string(value) + "\n";
}

} // namespace

EvalService::EvalService(ServiceOptions options)
    : options_(options),
      engine_([&options] {
          EvalEngineOptions eo;
          eo.jobs = options.jobs;
          eo.cacheCapacity = options.cacheCapacity;
          return eo;
      }()),
      configCache_(options.configCacheCapacity),
      dispatcher_(engine_,
                  [&options] {
                      BatchDispatcherOptions bo;
                      bo.windowMicros = options.batchWindowMicros;
                      bo.maxBatch = options.batchMax;
                      bo.watchdogMicros =
                          options.batchWatchdogMillis * 1000;
                      return bo;
                  }()),
      breaker_([&options] {
          CircuitBreakerOptions co;
          co.failureThreshold = options.breakerFailureThreshold;
          co.openMillis = options.breakerOpenMillis;
          return co;
      }()),
      start_(std::chrono::steady_clock::now())
{
    router_.add("POST", "/v1/evaluate", [this](const HttpRequest &r) {
        return handleEvaluate(r);
    });
    router_.add("POST", "/v1/explore", [this](const HttpRequest &r) {
        return handleExplore(r);
    });
    router_.add("POST", "/v1/pareto", [this](const HttpRequest &r) {
        return handlePareto(r);
    });
    router_.add("GET", "/v1/health", [this](const HttpRequest &r) {
        return handleHealth(r);
    });
    router_.add("GET", "/v1/stats", [this](const HttpRequest &r) {
        return handleStats(r);
    });
    router_.add("GET", "/v1/metrics", [this](const HttpRequest &r) {
        return handleMetrics(r);
    });
}

std::atomic<long> *
EvalService::latencySlot(const std::string &target)
{
    if (target == "/v1/evaluate")
        return &evaluateNanos_;
    if (target == "/v1/explore")
        return &exploreNanos_;
    if (target == "/v1/pareto")
        return &paretoNanos_;
    if (target == "/v1/health")
        return &healthNanos_;
    if (target == "/v1/stats")
        return &statsNanos_;
    if (target == "/v1/metrics")
        return &metricsNanos_;
    return nullptr;
}

HttpResponse
EvalService::handle(const HttpRequest &request)
{
    auto t0 = std::chrono::steady_clock::now();
    HttpResponse resp;
    try {
        resp = router_.route(request);
    } catch (...) {
        // One mapping for every exception type the stack can throw
        // (serve/errors.hh): ConfigError -> 400, DeadlineError -> 504,
        // CircuitOpenError -> 503 + Retry-After, bad_alloc -> 503,
        // anything else -> 500.
        resp = errorFromCurrentException();
    }
    if (resp.status >= 400)
        ++errorCount_;
    if (std::atomic<long> *slot = latencySlot(request.target))
        slot->fetch_add(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - t0)
                .count());
    return resp;
}

RequestCost
EvalService::classify(const HttpRequest &request) const
{
    if (request.method == "GET")
        return RequestCost::Cheap;
    if (request.target == "/v1/evaluate") {
        std::string key;
        if (configCache_.peekKey(request.body, key) &&
            engine_.isCached(key))
            return RequestCost::Cached;
    }
    return RequestCost::Expensive;
}

HttpResponse
EvalService::handleEvaluate(const HttpRequest &request)
{
    ++evaluateCount_;
    // Parse (or reuse the parsed form of) the config triple, then
    // ride whatever evaluation batch forms. Engine memo hits return
    // straight from the dispatcher's fast path.
    CachedRequest parsed = configCache_.lookup(request.body);

    // The breaker key is the canonical triple — the same identity the
    // config cache dedups on — so every body spelling of a poisoned
    // config shares one breaker entry.
    uint64_t breakerKey = fnv1a(parsed.triple->canon);
    long retryAfter = 0;
    if (!breaker_.admit(breakerKey, &retryAfter))
        throw CircuitOpenError(retryAfter);

    PerfReport report;
    try {
        report = dispatcher_.evaluate(
            parsed, options_.requestTimeoutMillis * 1000);
    } catch (const DeadlineError &) {
        // A deadline says nothing about the config's health — the
        // breaker records neither success nor failure. A half-open
        // probe that deadlines forfeits its slot via the breaker's
        // probe timeout.
        throw;
    } catch (...) {
        breaker_.recordFailure(breakerKey);
        throw;
    }

    if (report.failed()) {
        ++evalFailures_;
        breaker_.recordFailure(breakerKey);
        switch (report.errorKind) {
        case EvalErrorKind::Config:
            return makeError(ServeError::BadRequest,
                             report.errorMessage);
        case EvalErrorKind::Resource:
            return makeError(ServeError::ResourceExhausted,
                             report.errorMessage);
        default:
            return makeError(ServeError::EvalFailed,
                             report.errorMessage);
        }
    }
    breaker_.recordSuccess(breakerKey);
    return jsonResponse(toJson(report));
}

HttpResponse
EvalService::handleExplore(const HttpRequest &request)
{
    ++exploreCount_;
    JsonValue body = parseTripleBody(request);
    ModelDesc model = loadModel(body.at("model"));
    ClusterSpec cluster = loadCluster(body.at("system"));
    TaskConfig task = loadTask(body.at("task"));

    // The !(in-range) form also rejects NaN; an unchecked cast of an
    // out-of-range double to size_t is undefined behavior.
    double topRaw = body.numberOr("top", 5);
    if (!(topRaw >= 0 && topRaw <= static_cast<double>(1L << 30)))
        fatal("\"top\" must be in [0, 2^30]");
    size_t top = static_cast<size_t>(topRaw);

    PerfModel perf(cluster);
    StrategyExplorer explorer(perf, &engine_);
    ExplorerOptions opts;
    opts.ignoreMemory = body.boolOr("no_memory_limit", false);
    Exploration exploration =
        explorer.explore(model, task.task, opts);

    // Mirrors madmax_cli's cmdExplore --format json output, including
    // the quirk that zero shown results serialize as null.
    JsonValue arr;
    size_t shown = 0;
    for (const ExplorationResult &r : exploration.results) {
        if (shown++ >= top)
            break;
        arr.append(toJson(r.report));
    }
    JsonValue out;
    out.set("results", std::move(arr));
    out.set("search", toJson(exploration.stats));
    return jsonResponse(out);
}

HttpResponse
EvalService::handlePareto(const HttpRequest &request)
{
    ++paretoCount_;
    // A pareto search is too coarse to micro-batch, but concurrent
    // byte-identical queries (a popular dashboard, a retry storm)
    // collapse to one search sharing its response.
    bool shared = false;
    HttpResponse resp = paretoFlight_.run(
        request.body, [&] { return runPareto(request); }, &shared);
    if (shared)
        ++paretoShared_;
    return resp;
}

HttpResponse
EvalService::runPareto(const HttpRequest &request)
{
    JsonValue body = JsonValue::parse(request.body);
    if (!body.isObject())
        fatal("request body must be a JSON object with \"model\" and "
              "\"task\" (or \"workload\") members");
    if (!body.has("model"))
        fatal("request body missing \"model\" member");

    // A "workload" member switches to the serving-placement search
    // (mirrors `madmax pareto --workload` byte-for-byte): phases are
    // derived from the workload, so the task-sweep knobs don't apply.
    if (body.has("workload")) {
        for (const char *other :
             {"task", "catalog", "nodes", "node_counts", "strategy",
              "budget", "seed", "include_baselines"}) {
            if (body.has(other)) {
                fatal(std::string("\"workload\" derives the serving "
                                  "phases itself and searches "
                                  "placements exhaustively; \"") +
                      other +
                      "\" does not apply (supported: \"model\", "
                      "\"system\", \"workload\")");
            }
        }
        if (!body.has("system"))
            fatal("\"workload\" requires \"system\" (the cluster the "
                  "placements are searched over)");
        ModelDesc model = loadModel(body.at("model"));
        ClusterSpec cluster = loadCluster(body.at("system"));
        InferenceWorkload workload = loadWorkload(body.at("workload"));
        InferencePlacementFrontier frontier = exploreInferencePlacements(
            model, workload, cluster, {}, &engine_);
        return jsonResponse(toJson(frontier));
    }

    if (!body.has("task"))
        fatal("request body missing \"task\" member");
    ModelDesc model = loadModel(body.at("model"));
    TaskConfig task = loadTask(body.at("task"));

    // The hardware axis mirrors `madmax pareto`: an inline "system"
    // document (optionally swept over "node_counts"), or a named
    // catalog ("catalog": "cloud" with "nodes" per instance type).
    std::vector<HardwarePoint> hw;
    if (body.has("system")) {
        if (body.has("catalog") || body.has("nodes"))
            fatal("\"system\" and \"catalog\"/\"nodes\" are mutually "
                  "exclusive");
        ClusterSpec cluster = loadCluster(body.at("system"));
        if (body.has("node_counts")) {
            const JsonValue &arr = body.at("node_counts");
            if (!arr.isArray() || arr.size() == 0)
                fatal("\"node_counts\" must be a non-empty array of "
                      "integers");
            std::vector<int> counts;
            for (size_t i = 0; i < arr.size(); ++i) {
                double n = arr.at(i).asDouble();
                if (!(n >= 1 && n <= 65536) ||
                    n != static_cast<long>(n))
                    fatal("\"node_counts\" entries must be integers "
                          "in [1, 65536]");
                counts.push_back(static_cast<int>(n));
            }
            hw = nodeCountSweep(cluster, counts);
        } else {
            hw = {makeHardwarePoint(cluster)};
        }
    } else {
        if (body.has("node_counts"))
            fatal("\"node_counts\" requires \"system\"");
        std::string catalog = body.stringOr("catalog", "cloud");
        if (catalog != "cloud")
            fatal("unknown catalog '" + catalog +
                  "' (supported: cloud)");
        double nodes = body.numberOr("nodes", 16);
        if (!(nodes >= 1 && nodes <= 4096))
            fatal("\"nodes\" must be in [1, 4096]");
        hw = cloudHardwareCatalog(static_cast<int>(nodes));
    }

    ParetoOptions opts;
    opts.strategy = body.stringOr("strategy", "exhaustive");
    double budget = body.numberOr("budget", 0);
    if (!(budget >= 0 && budget <= static_cast<double>(1L << 30)))
        fatal("\"budget\" must be in [0, 2^30]");
    opts.search.maxEvaluations = static_cast<long>(budget);
    double seed = body.numberOr(
        "seed", static_cast<double>(SearchOptions{}.seed));
    if (!(seed >= 0 && seed <= 0x1p63))
        fatal("\"seed\" must be a non-negative integer");
    opts.search.seed = static_cast<uint64_t>(seed);
    opts.includeBaselines = body.boolOr("include_baselines", true);

    ParetoEngine pareto(std::move(hw), &engine_);
    ParetoFrontier frontier = pareto.explore(model, task.task, opts);
    return jsonResponse(toJson(frontier, pareto.hardware()));
}

HttpResponse
EvalService::handleHealth(const HttpRequest &request)
{
    ++healthCount_;
    (void)request;
    JsonValue out;
    out.set("status", "ok");
    out.set("jobs", engine_.jobs());
    out.set("uptime_seconds",
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - start_)
                .count());
    return jsonResponse(out);
}

HttpResponse
EvalService::handleStats(const HttpRequest &request)
{
    ++statsCount_;
    (void)request;
    EngineCounters c = engine_.counters();

    JsonValue cache;
    cache.set("capacity", static_cast<long>(c.cacheCapacity));
    cache.set("entries", static_cast<long>(c.cacheEntries));
    cache.set("insertions", c.cacheInsertions);
    cache.set("evictions", c.cacheEvictions);

    JsonValue engineBatches;
    engineBatches.set("calls", c.batches);
    engineBatches.set("requests", c.batchRequests);
    engineBatches.set("max_requests", c.maxBatchRequests);

    JsonValue eng;
    eng.set("jobs", engine_.jobs());
    eng.set("lifetime", toJson(c.lifetime));
    eng.set("cache", std::move(cache));
    eng.set("batches", std::move(engineBatches));

    ServiceStats s = stats();
    JsonValue requests;
    requests.set("evaluate", s.evaluate);
    requests.set("explore", s.explore);
    requests.set("pareto", s.pareto);
    requests.set("health", s.health);
    requests.set("stats", s.stats);
    requests.set("metrics", s.metrics);

    BatchDispatcherStats b = dispatcher_.stats();
    JsonValue batching;
    batching.set("windows", b.windows);
    batching.set("batched_requests", b.requests);
    batching.set("coalesced_requests", b.coalesced);
    batching.set("max_occupancy", b.maxOccupancy);
    batching.set("memo_fast_path", b.memoFastPath);
    batching.set("watchdog_takeovers", b.watchdogTakeovers);
    batching.set("deadline_timeouts", b.deadlineTimeouts);

    ConfigCache::Stats cc = configCache_.stats();
    JsonValue configCache;
    configCache.set("capacity", static_cast<long>(cc.capacity));
    configCache.set("entries", static_cast<long>(cc.entries));
    configCache.set("hits", cc.hits);
    configCache.set("misses", cc.misses);
    configCache.set("evictions", cc.evictions);
    configCache.set("triple_shares", cc.tripleShares);

    CircuitBreakerStats br = breaker_.stats();
    JsonValue breaker;
    breaker.set("trips", br.trips);
    breaker.set("rejects", br.rejects);
    breaker.set("probes", br.probes);
    breaker.set("recoveries", br.recoveries);
    breaker.set("open_now", br.openNow);

    JsonValue server;
    server.set("requests", std::move(requests));
    server.set("requests_total", s.total());
    server.set("errors", s.errors);
    server.set("eval_failures", s.evalFailures);
    server.set("batching", std::move(batching));
    server.set("circuit_breaker", std::move(breaker));
    server.set("config_cache", std::move(configCache));
    server.set("pareto_coalesced", paretoShared_.load());

    // Fault-injection accounting: present only when points are armed,
    // so production scrapes of an uninstrumented server see no
    // "faults" member at all.
    std::vector<FaultPointStats> faults = FaultInjection::stats();
    if (!faults.empty()) {
        JsonValue arr;
        for (const FaultPointStats &f : faults) {
            JsonValue one;
            one.set("point", f.point);
            one.set("hits", f.hits);
            one.set("injected", f.injected);
            arr.append(std::move(one));
        }
        server.set("faults", std::move(arr));
    }

    JsonValue out;
    out.set("engine", std::move(eng));
    out.set("server", std::move(server));
    if (transportStats_) {
        HttpServerStats t = transportStats_();
        JsonValue transport;
        transport.set("accepted", t.accepted);
        transport.set("served", t.served);
        transport.set("rejected_queue_full", t.rejectedQueueFull);
        transport.set("bad_requests", t.badRequests);
        transport.set("keep_alive_reuses", t.keepAliveReuses);
        transport.set("pipelined_requests", t.pipelinedRequests);
        transport.set("shed_expensive", t.shedExpensive);
        transport.set("shed_cached", t.shedCached);
        transport.set("idle_closed", t.idleClosed);
        transport.set("deadline_closed", t.deadlineClosed);
        transport.set("partial_writes", t.partialWrites);
        transport.set("fd_exhausted", t.fdExhausted);
        transport.set("fd_rejects", t.fdRejects);
        out.set("transport", std::move(transport));
    }
    out.set("uptime_seconds",
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - start_)
                .count());
    return jsonResponse(out);
}

HttpResponse
EvalService::handleMetrics(const HttpRequest &request)
{
    ++metricsCount_;
    (void)request;
    EngineCounters c = engine_.counters();
    BatchDispatcherStats b = dispatcher_.stats();
    ConfigCache::Stats cc = configCache_.stats();
    ServiceStats s = stats();

    std::string out;
    out.reserve(4096);

    promHeader(out, "madmax_uptime_seconds",
               "Seconds since service start.", "gauge");
    promSample(out, "madmax_uptime_seconds", "",
               std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - start_)
                   .count());

    promHeader(out, "madmax_requests_total",
               "Requests routed, by endpoint.", "counter");
    const struct
    {
        const char *name;
        long count;
        long nanos;
    } endpoints[] = {
        {"evaluate", s.evaluate, evaluateNanos_.load()},
        {"explore", s.explore, exploreNanos_.load()},
        {"pareto", s.pareto, paretoNanos_.load()},
        {"health", s.health, healthNanos_.load()},
        {"stats", s.stats, statsNanos_.load()},
        {"metrics", s.metrics, metricsNanos_.load()},
    };
    for (const auto &e : endpoints)
        promSample(out, "madmax_requests_total",
                   std::string("endpoint=\"") + e.name + "\"",
                   static_cast<double>(e.count));

    promHeader(out, "madmax_request_seconds_total",
               "Cumulative handler wall time, by endpoint.",
               "counter");
    for (const auto &e : endpoints)
        promSample(out, "madmax_request_seconds_total",
                   std::string("endpoint=\"") + e.name + "\"",
                   static_cast<double>(e.nanos) * 1e-9);

    promHeader(out, "madmax_errors_total",
               "Responses with status >= 400 (any endpoint).",
               "counter");
    promSample(out, "madmax_errors_total", "",
               static_cast<double>(s.errors));

    promHeader(out, "madmax_eval_failures_total",
               "Evaluate requests whose report came back failed.",
               "counter");
    promSample(out, "madmax_eval_failures_total", "",
               static_cast<double>(s.evalFailures));

    CircuitBreakerStats br = breaker_.stats();
    promHeader(out, "madmax_breaker_trips_total",
               "Circuit-breaker keys tripped open.", "counter");
    promSample(out, "madmax_breaker_trips_total", "",
               static_cast<double>(br.trips));
    promHeader(out, "madmax_breaker_rejects_total",
               "Requests fast-failed by an open breaker.", "counter");
    promSample(out, "madmax_breaker_rejects_total", "",
               static_cast<double>(br.rejects));
    promHeader(out, "madmax_breaker_probes_total",
               "Half-open probe requests admitted.", "counter");
    promSample(out, "madmax_breaker_probes_total", "",
               static_cast<double>(br.probes));
    promHeader(out, "madmax_breaker_recoveries_total",
               "Breaker keys recovered to closed.", "counter");
    promSample(out, "madmax_breaker_recoveries_total", "",
               static_cast<double>(br.recoveries));
    promHeader(out, "madmax_breaker_open",
               "Keys currently open or half-open.", "gauge");
    promSample(out, "madmax_breaker_open", "",
               static_cast<double>(br.openNow));

    // Fault-injection counters, one sample per armed point; families
    // are omitted entirely on an uninstrumented server.
    std::vector<FaultPointStats> faults = FaultInjection::stats();
    if (!faults.empty()) {
        promHeader(out, "madmax_fault_hits_total",
                   "Times an armed fault point was reached.",
                   "counter");
        for (const FaultPointStats &f : faults)
            promSample(out, "madmax_fault_hits_total",
                       "point=\"" + f.point + "\"",
                       static_cast<double>(f.hits));
        promHeader(out, "madmax_fault_injected_total",
                   "Times an armed fault point actually fired.",
                   "counter");
        for (const FaultPointStats &f : faults)
            promSample(out, "madmax_fault_injected_total",
                       "point=\"" + f.point + "\"",
                       static_cast<double>(f.injected));
    }

    promHeader(out, "madmax_engine_evaluations_total",
               "Fresh model evaluations executed.", "counter");
    promSample(out, "madmax_engine_evaluations_total", "",
               static_cast<double>(c.lifetime.evaluations));
    promHeader(out, "madmax_engine_cache_hits_total",
               "Evaluations served from the memo cache.", "counter");
    promSample(out, "madmax_engine_cache_hits_total", "",
               static_cast<double>(c.lifetime.cacheHits));
    promHeader(out, "madmax_engine_pruned_total",
               "OOM plans resolved by the memory pre-pass.",
               "counter");
    promSample(out, "madmax_engine_pruned_total", "",
               static_cast<double>(c.lifetime.pruned));
    promHeader(out, "madmax_engine_cache_entries",
               "Memo-cache occupancy.", "gauge");
    promSample(out, "madmax_engine_cache_entries", "",
               static_cast<double>(c.cacheEntries));
    promHeader(out, "madmax_engine_batch_calls_total",
               "evaluateAll batches submitted.", "counter");
    promSample(out, "madmax_engine_batch_calls_total", "",
               static_cast<double>(c.batches));
    promHeader(out, "madmax_engine_batch_requests_total",
               "Points submitted across all batches.", "counter");
    promSample(out, "madmax_engine_batch_requests_total", "",
               static_cast<double>(c.batchRequests));

    promHeader(out, "madmax_batch_windows_total",
               "Micro-batch windows dispatched.", "counter");
    promSample(out, "madmax_batch_windows_total", "",
               static_cast<double>(b.windows));
    promHeader(out, "madmax_batch_requests_total",
               "Requests that entered a micro-batch window.",
               "counter");
    promSample(out, "madmax_batch_requests_total", "",
               static_cast<double>(b.requests));
    promHeader(out, "madmax_batch_coalesced_requests_total",
               "Windowed requests that shared their window.",
               "counter");
    promSample(out, "madmax_batch_coalesced_requests_total", "",
               static_cast<double>(b.coalesced));
    promHeader(out, "madmax_batch_max_occupancy",
               "Largest window submitted.", "gauge");
    promSample(out, "madmax_batch_max_occupancy", "",
               static_cast<double>(b.maxOccupancy));
    promHeader(out, "madmax_batch_memo_fast_path_total",
               "Evaluate requests answered from the memo cache "
               "without a window.",
               "counter");
    promSample(out, "madmax_batch_memo_fast_path_total", "",
               static_cast<double>(b.memoFastPath));
    promHeader(out, "madmax_batch_watchdog_takeovers_total",
               "Rescue leaders spawned past a wedged batch leader.",
               "counter");
    promSample(out, "madmax_batch_watchdog_takeovers_total", "",
               static_cast<double>(b.watchdogTakeovers));
    promHeader(out, "madmax_batch_deadline_timeouts_total",
               "Requests abandoned at their deadline.", "counter");
    promSample(out, "madmax_batch_deadline_timeouts_total", "",
               static_cast<double>(b.deadlineTimeouts));

    promHeader(out, "madmax_config_cache_hits_total",
               "Request bodies whose parse was reused.", "counter");
    promSample(out, "madmax_config_cache_hits_total", "",
               static_cast<double>(cc.hits));
    promHeader(out, "madmax_config_cache_misses_total",
               "Request bodies parsed cold.", "counter");
    promSample(out, "madmax_config_cache_misses_total", "",
               static_cast<double>(cc.misses));
    promHeader(out, "madmax_config_cache_entries",
               "Parsed-config cache occupancy.", "gauge");
    promSample(out, "madmax_config_cache_entries", "",
               static_cast<double>(cc.entries));

    promHeader(out, "madmax_pareto_coalesced_total",
               "Pareto requests served by a shared in-flight search.",
               "counter");
    promSample(out, "madmax_pareto_coalesced_total", "",
               static_cast<double>(paretoShared_.load()));

    if (transportStats_) {
        HttpServerStats t = transportStats_();
        promHeader(out, "madmax_http_connections_accepted_total",
                   "TCP connections accepted.", "counter");
        promSample(out, "madmax_http_connections_accepted_total", "",
                   static_cast<double>(t.accepted));
        promHeader(out, "madmax_http_requests_served_total",
                   "Requests answered by the handler.", "counter");
        promSample(out, "madmax_http_requests_served_total", "",
                   static_cast<double>(t.served));
        promHeader(out, "madmax_http_keepalive_reuses_total",
                   "Requests beyond their connection's first.",
                   "counter");
        promSample(out, "madmax_http_keepalive_reuses_total", "",
                   static_cast<double>(t.keepAliveReuses));
        promHeader(out, "madmax_http_pipelined_requests_total",
                   "Requests parsed while a response was pending.",
                   "counter");
        promSample(out, "madmax_http_pipelined_requests_total", "",
                   static_cast<double>(t.pipelinedRequests));
        promHeader(out, "madmax_http_shed_total",
                   "Requests shed by tiered admission control.",
                   "counter");
        promSample(out, "madmax_http_shed_total", "tier=\"expensive\"",
                   static_cast<double>(t.shedExpensive));
        promSample(out, "madmax_http_shed_total", "tier=\"cached\"",
                   static_cast<double>(t.shedCached));
        promHeader(out, "madmax_http_bad_requests_total",
                   "Transport-level request rejections.", "counter");
        promSample(out, "madmax_http_bad_requests_total", "",
                   static_cast<double>(t.badRequests));
        promHeader(out, "madmax_http_idle_closed_total",
                   "Keep-alive connections evicted idle.", "counter");
        promSample(out, "madmax_http_idle_closed_total", "",
                   static_cast<double>(t.idleClosed));
        promHeader(out, "madmax_http_deadline_closed_total",
                   "Connections cut at the request deadline.",
                   "counter");
        promSample(out, "madmax_http_deadline_closed_total", "",
                   static_cast<double>(t.deadlineClosed));
        promHeader(out, "madmax_http_partial_writes_total",
                   "Responses resumed after a short write.",
                   "counter");
        promSample(out, "madmax_http_partial_writes_total", "",
                   static_cast<double>(t.partialWrites));
        promHeader(out, "madmax_http_fd_exhausted_total",
                   "accept() failures on EMFILE/ENFILE.", "counter");
        promSample(out, "madmax_http_fd_exhausted_total", "",
                   static_cast<double>(t.fdExhausted));
        promHeader(out, "madmax_http_fd_rejects_total",
                   "Clients answered 503 via the emergency fd.",
                   "counter");
        promSample(out, "madmax_http_fd_rejects_total", "",
                   static_cast<double>(t.fdRejects));
    }

    HttpResponse resp;
    resp.contentType = "text/plain; version=0.0.4; charset=utf-8";
    resp.body = std::move(out);
    return resp;
}

ServiceStats
EvalService::stats() const
{
    ServiceStats s;
    s.evaluate = evaluateCount_.load();
    s.explore = exploreCount_.load();
    s.pareto = paretoCount_.load();
    s.health = healthCount_.load();
    s.stats = statsCount_.load();
    s.metrics = metricsCount_.load();
    s.errors = errorCount_.load();
    s.evalFailures = evalFailures_.load();
    return s;
}

} // namespace madmax
