#include "serve/service.hh"

#include "config/config_loader.hh"
#include "core/strategy_explorer.hh"
#include "dse/pareto_engine.hh"
#include "util/logging.hh"

namespace madmax
{

namespace
{

/** Parse + shape-check a request body that must carry the config
 *  triple. @throws ConfigError (-> 400) on malformed input. */
JsonValue
parseTripleBody(const HttpRequest &request)
{
    JsonValue body = JsonValue::parse(request.body);
    if (!body.isObject())
        fatal("request body must be a JSON object with \"model\", "
              "\"system\", and \"task\" members");
    for (const char *key : {"model", "system", "task"})
        if (!body.has(key))
            fatal(std::string("request body missing \"") + key +
                  "\" member");
    return body;
}

HttpResponse
jsonResponse(const JsonValue &doc)
{
    HttpResponse resp;
    // dump(2) + "\n" is exactly what the CLI prints with
    // --format json; keeping the framing identical here is what makes
    // responses byte-comparable against `madmax_cli evaluate`.
    resp.body = doc.dump(2) + "\n";
    return resp;
}

} // namespace

EvalService::EvalService(ServiceOptions options)
    : engine_([&options] {
          EvalEngineOptions eo;
          eo.jobs = options.jobs;
          eo.cacheCapacity = options.cacheCapacity;
          return eo;
      }()),
      start_(std::chrono::steady_clock::now())
{
    router_.add("POST", "/v1/evaluate", [this](const HttpRequest &r) {
        return handleEvaluate(r);
    });
    router_.add("POST", "/v1/explore", [this](const HttpRequest &r) {
        return handleExplore(r);
    });
    router_.add("POST", "/v1/pareto", [this](const HttpRequest &r) {
        return handlePareto(r);
    });
    router_.add("GET", "/v1/health", [this](const HttpRequest &r) {
        return handleHealth(r);
    });
    router_.add("GET", "/v1/stats", [this](const HttpRequest &r) {
        return handleStats(r);
    });
}

HttpResponse
EvalService::handle(const HttpRequest &request)
{
    HttpResponse resp;
    try {
        resp = router_.route(request);
    } catch (const ConfigError &e) {
        resp = errorResponse(400, "bad_request", e.what());
    } catch (const std::exception &e) {
        resp = errorResponse(500, "internal", e.what());
    }
    if (resp.status >= 400)
        ++errorCount_;
    return resp;
}

HttpResponse
EvalService::handleEvaluate(const HttpRequest &request)
{
    ++evaluateCount_;
    JsonValue body = parseTripleBody(request);
    ModelDesc model = loadModel(body.at("model"));
    ClusterSpec cluster = loadCluster(body.at("system"));
    TaskConfig task = loadTask(body.at("task"));

    PerfModel perf(cluster);
    PerfReport report =
        engine_.evaluateOne(perf, model, task.task, task.plan);
    return jsonResponse(toJson(report));
}

HttpResponse
EvalService::handleExplore(const HttpRequest &request)
{
    ++exploreCount_;
    JsonValue body = parseTripleBody(request);
    ModelDesc model = loadModel(body.at("model"));
    ClusterSpec cluster = loadCluster(body.at("system"));
    TaskConfig task = loadTask(body.at("task"));

    // The !(in-range) form also rejects NaN; an unchecked cast of an
    // out-of-range double to size_t is undefined behavior.
    double topRaw = body.numberOr("top", 5);
    if (!(topRaw >= 0 && topRaw <= static_cast<double>(1L << 30)))
        fatal("\"top\" must be in [0, 2^30]");
    size_t top = static_cast<size_t>(topRaw);

    PerfModel perf(cluster);
    StrategyExplorer explorer(perf, &engine_);
    ExplorerOptions opts;
    opts.ignoreMemory = body.boolOr("no_memory_limit", false);
    Exploration exploration =
        explorer.explore(model, task.task, opts);

    // Mirrors madmax_cli's cmdExplore --format json output, including
    // the quirk that zero shown results serialize as null.
    JsonValue arr;
    size_t shown = 0;
    for (const ExplorationResult &r : exploration.results) {
        if (shown++ >= top)
            break;
        arr.append(toJson(r.report));
    }
    JsonValue out;
    out.set("results", std::move(arr));
    out.set("search", toJson(exploration.stats));
    return jsonResponse(out);
}

HttpResponse
EvalService::handlePareto(const HttpRequest &request)
{
    ++paretoCount_;
    JsonValue body = JsonValue::parse(request.body);
    if (!body.isObject())
        fatal("request body must be a JSON object with \"model\" and "
              "\"task\" members");
    for (const char *key : {"model", "task"})
        if (!body.has(key))
            fatal(std::string("request body missing \"") + key +
                  "\" member");
    ModelDesc model = loadModel(body.at("model"));
    TaskConfig task = loadTask(body.at("task"));

    // The hardware axis mirrors `madmax pareto`: an inline "system"
    // document (optionally swept over "node_counts"), or a named
    // catalog ("catalog": "cloud" with "nodes" per instance type).
    std::vector<HardwarePoint> hw;
    if (body.has("system")) {
        if (body.has("catalog") || body.has("nodes"))
            fatal("\"system\" and \"catalog\"/\"nodes\" are mutually "
                  "exclusive");
        ClusterSpec cluster = loadCluster(body.at("system"));
        if (body.has("node_counts")) {
            const JsonValue &arr = body.at("node_counts");
            if (!arr.isArray() || arr.size() == 0)
                fatal("\"node_counts\" must be a non-empty array of "
                      "integers");
            std::vector<int> counts;
            for (size_t i = 0; i < arr.size(); ++i) {
                double n = arr.at(i).asDouble();
                if (!(n >= 1 && n <= 65536) ||
                    n != static_cast<long>(n))
                    fatal("\"node_counts\" entries must be integers "
                          "in [1, 65536]");
                counts.push_back(static_cast<int>(n));
            }
            hw = nodeCountSweep(cluster, counts);
        } else {
            hw = {makeHardwarePoint(cluster)};
        }
    } else {
        if (body.has("node_counts"))
            fatal("\"node_counts\" requires \"system\"");
        std::string catalog = body.stringOr("catalog", "cloud");
        if (catalog != "cloud")
            fatal("unknown catalog '" + catalog +
                  "' (supported: cloud)");
        double nodes = body.numberOr("nodes", 16);
        if (!(nodes >= 1 && nodes <= 4096))
            fatal("\"nodes\" must be in [1, 4096]");
        hw = cloudHardwareCatalog(static_cast<int>(nodes));
    }

    ParetoOptions opts;
    opts.strategy = body.stringOr("strategy", "exhaustive");
    double budget = body.numberOr("budget", 0);
    if (!(budget >= 0 && budget <= static_cast<double>(1L << 30)))
        fatal("\"budget\" must be in [0, 2^30]");
    opts.search.maxEvaluations = static_cast<long>(budget);
    double seed = body.numberOr(
        "seed", static_cast<double>(SearchOptions{}.seed));
    if (!(seed >= 0 && seed <= 0x1p63))
        fatal("\"seed\" must be a non-negative integer");
    opts.search.seed = static_cast<uint64_t>(seed);
    opts.includeBaselines = body.boolOr("include_baselines", true);

    ParetoEngine pareto(std::move(hw), &engine_);
    ParetoFrontier frontier = pareto.explore(model, task.task, opts);
    return jsonResponse(toJson(frontier, pareto.hardware()));
}

HttpResponse
EvalService::handleHealth(const HttpRequest &request)
{
    ++healthCount_;
    (void)request;
    JsonValue out;
    out.set("status", "ok");
    out.set("jobs", engine_.jobs());
    out.set("uptime_seconds",
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - start_)
                .count());
    return jsonResponse(out);
}

HttpResponse
EvalService::handleStats(const HttpRequest &request)
{
    ++statsCount_;
    (void)request;
    EngineCounters c = engine_.counters();

    JsonValue cache;
    cache.set("capacity", static_cast<long>(c.cacheCapacity));
    cache.set("entries", static_cast<long>(c.cacheEntries));
    cache.set("insertions", c.cacheInsertions);
    cache.set("evictions", c.cacheEvictions);

    JsonValue eng;
    eng.set("jobs", engine_.jobs());
    eng.set("lifetime", toJson(c.lifetime));
    eng.set("cache", std::move(cache));

    ServiceStats s = stats();
    JsonValue requests;
    requests.set("evaluate", s.evaluate);
    requests.set("explore", s.explore);
    requests.set("pareto", s.pareto);
    requests.set("health", s.health);
    requests.set("stats", s.stats);
    JsonValue server;
    server.set("requests", std::move(requests));
    server.set("requests_total", s.total());
    server.set("errors", s.errors);

    JsonValue out;
    out.set("engine", std::move(eng));
    out.set("server", std::move(server));
    if (transportStats_) {
        HttpServerStats t = transportStats_();
        JsonValue transport;
        transport.set("accepted", t.accepted);
        transport.set("served", t.served);
        transport.set("rejected_queue_full", t.rejectedQueueFull);
        transport.set("bad_requests", t.badRequests);
        out.set("transport", std::move(transport));
    }
    out.set("uptime_seconds",
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - start_)
                .count());
    return jsonResponse(out);
}

ServiceStats
EvalService::stats() const
{
    ServiceStats s;
    s.evaluate = evaluateCount_.load();
    s.explore = exploreCount_.load();
    s.pareto = paretoCount_.load();
    s.health = healthCount_.load();
    s.stats = statsCount_.load();
    s.errors = errorCount_.load();
    return s;
}

} // namespace madmax
