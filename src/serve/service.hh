/**
 * @file
 * The MAD-Max evaluation service: the application logic behind
 * `madmax serve`. One EvalService owns one process-lifetime
 * EvalEngine, so the memo cache and thread pool are shared across
 * every request the server ever answers — repeat evaluations of a
 * popular (model, system, task) triple are cache hits instead of
 * full stream builds, which is what amortizes the >100x-over-
 * profiling speedup across many interactive users.
 *
 * Between the transport and the engine sit two serving-only layers
 * (both new with the epoll transport):
 *
 *  - a fingerprint-keyed parsed-config cache (serve/config_cache.hh):
 *    repeat bodies skip JSON parsing and config validation entirely,
 *    and bodies differing only in whitespace or plan share one
 *    ParsedTriple, whose pointer identity drives engine batch
 *    grouping;
 *  - a micro-batching dispatcher (serve/batch_dispatcher.hh):
 *    concurrent cold evaluations coalesce into single
 *    EvalEngine::evaluateAll batches, so requests sharing a triple
 *    share one warm EvalContext per batch window. Engine memo hits
 *    bypass the window (zero added latency on the cached path), and
 *    concurrent byte-identical /v1/pareto requests collapse to one
 *    search via single-flight deduplication.
 *
 * Endpoints (full reference with examples: docs/serving.md):
 *
 *   POST /v1/evaluate  body {"model": ..., "system": ..., "task": ...}
 *                      -> the exact JSON `madmax_cli evaluate
 *                      --format json` prints for the same triple,
 *                      byte for byte.
 *   POST /v1/explore   same body plus optional "top" (default 5) and
 *                      "no_memory_limit" -> the same schema as
 *                      `madmax_cli explore --format json` (not byte-
 *                      identical: search.wall_seconds is measured).
 *   POST /v1/pareto    body {"model": ..., "task": ...} plus a
 *                      hardware axis ("system" [+ "node_counts"] or
 *                      "catalog"/"nodes") and search knobs
 *                      ("strategy", "budget", "seed") -> the same
 *                      schema as `madmax_cli pareto --format json`:
 *                      the multi-objective frontier over the joint
 *                      (hardware x plan) space (docs/dse.md).
 *   GET  /v1/health    liveness: status, uptime, engine parallelism.
 *   GET  /v1/stats     engine lifetime counters + memo-cache
 *                      occupancy + batching/config-cache/transport
 *                      counters + per-endpoint request counts.
 *   GET  /v1/metrics   the same counters in Prometheus text
 *                      exposition format (text/plain; version=0.0.4).
 *
 * Errors use the uniform {"error": {code, detail?, message}} shape
 * with the machine-readable codes of serve/errors.hh: 400 for
 * malformed JSON / missing fields / bad configs, 404/405 from the
 * router, 500 for internal failures, plus the graceful-degradation
 * responses (503 circuit_open / resource_exhausted / fd_exhausted,
 * 504 deadline_exceeded) — full table in docs/serving.md, semantics
 * in docs/resilience.md.
 */

#ifndef MADMAX_SERVE_SERVICE_HH
#define MADMAX_SERVE_SERVICE_HH

#include <atomic>
#include <chrono>
#include <functional>

#include "engine/eval_engine.hh"
#include "serve/batch_dispatcher.hh"
#include "serve/circuit_breaker.hh"
#include "serve/config_cache.hh"
#include "serve/request_router.hh"

namespace madmax
{

/** Service construction knobs. */
struct ServiceOptions
{
    /** Engine worker threads; 0 = one per core (the serving default —
     *  unlike the CLI, a resident service wants the whole machine). */
    int jobs = 0;

    /** Memo-cache entry cap, forwarded to EvalEngineOptions. */
    size_t cacheCapacity = size_t{1} << 13;

    /** Micro-batching window for cold evaluations, microseconds
     *  (BatchDispatcherOptions::windowMicros); 0 disables waiting. */
    long batchWindowMicros = 100;

    /** Batch occupancy that submits a window early. */
    size_t batchMax = 64;

    /** Parsed-config cache entry cap (serve/config_cache.hh). */
    size_t configCacheCapacity = 1024;

    /** Per-request evaluation deadline, milliseconds; 0 disables.
     *  Past it the request is abandoned (BatchDispatcher::evaluate)
     *  and answered 504 deadline_exceeded with {stage, waited_ms}
     *  partial-work detail. */
    long requestTimeoutMillis = 0;

    /** Circuit breaker: consecutive eval failures per config
     *  fingerprint that trip it (serve/circuit_breaker.hh). */
    int breakerFailureThreshold = 5;

    /** Circuit breaker cool-down before the half-open probe. */
    long breakerOpenMillis = 1000;

    /** Wedged-leader watchdog for the micro-batching dispatcher,
     *  milliseconds; 0 disables
     *  (BatchDispatcherOptions::watchdogMicros). */
    long batchWatchdogMillis = 2000;
};

/** Per-endpoint request accounting, reported by `GET /v1/stats`. */
struct ServiceStats
{
    long evaluate = 0;
    long explore = 0;
    long pareto = 0;
    long health = 0;
    long stats = 0;
    long metrics = 0;
    long errors = 0; ///< Responses with status >= 400 (any endpoint).
    long evalFailures = 0; ///< Evaluate requests whose report came
                           ///< back failed (engine isolation).

    long total() const
    {
        return evaluate + explore + pareto + health + stats + metrics;
    }
};

class EvalService
{
  public:
    explicit EvalService(ServiceOptions options = {});

    EvalService(const EvalService &) = delete;
    EvalService &operator=(const EvalService &) = delete;

    /**
     * Dispatch one request through the routing table. Never throws:
     * ConfigError becomes a 400 response, anything else a 500.
     * Thread-safe; this is the HttpHandler `madmax serve` installs.
     */
    HttpResponse handle(const HttpRequest &request);

    /**
     * Admission-tier classifier for the transport's tiered load
     * shedding (HttpServerOptions::classifier). GETs (health, stats,
     * metrics) are Cheap and never shed; an evaluate whose body is a
     * known parsed-config entry with a warm engine memo key is Cached
     * (shed last); everything else — cold evaluations, explore,
     * pareto — is Expensive (shed first). Fast: one hash + two map
     * probes, no parsing; safe to call on the event loop.
     */
    RequestCost classify(const HttpRequest &request) const;

    /** The shared process-lifetime engine (tests inspect its cache). */
    EvalEngine &engine() { return engine_; }

    /** The serving-side coalescing layers (tests inspect counters). */
    const BatchDispatcher &dispatcher() const { return dispatcher_; }
    const ConfigCache &configCache() const { return configCache_; }
    const CircuitBreaker &breaker() const { return breaker_; }

    ServiceStats stats() const;

    /**
     * Wire the transport's counters into `GET /v1/stats` (as the
     * response's "transport" object). Set after constructing the
     * HttpServer — the server wraps the service, so the service
     * cannot reach it at construction time. Transport rejections
     * (400/413/431/503) never reach handle(), so without this they
     * are invisible to the observability endpoint. Not thread-safe:
     * call before start().
     */
    void
    setTransportStatsProvider(std::function<HttpServerStats()> provider)
    {
        transportStats_ = std::move(provider);
    }

  private:
    HttpResponse handleEvaluate(const HttpRequest &request);
    HttpResponse handleExplore(const HttpRequest &request);
    HttpResponse handlePareto(const HttpRequest &request);
    HttpResponse runPareto(const HttpRequest &request);
    HttpResponse handleHealth(const HttpRequest &request);
    HttpResponse handleStats(const HttpRequest &request);
    HttpResponse handleMetrics(const HttpRequest &request);

    /** Cumulative handler-latency slot for a target ("/v1/..."), or
     *  null for unrouted targets. */
    std::atomic<long> *latencySlot(const std::string &target);

    ServiceOptions options_;
    EvalEngine engine_;
    ConfigCache configCache_;
    BatchDispatcher dispatcher_;
    CircuitBreaker breaker_;
    SingleFlight paretoFlight_;
    RequestRouter router_;
    std::function<HttpServerStats()> transportStats_;
    std::chrono::steady_clock::time_point start_;

    std::atomic<long> evaluateCount_{0};
    std::atomic<long> exploreCount_{0};
    std::atomic<long> paretoCount_{0};
    std::atomic<long> healthCount_{0};
    std::atomic<long> statsCount_{0};
    std::atomic<long> metricsCount_{0};
    std::atomic<long> errorCount_{0};
    std::atomic<long> evalFailures_{0}; ///< Failed reports mapped to
                                        ///< taxonomy errors.
    std::atomic<long> paretoShared_{0}; ///< Single-flight dedups.

    /// Cumulative handler nanoseconds per endpoint (same order as the
    /// count atomics; /v1/metrics divides by the counts for means).
    std::atomic<long> evaluateNanos_{0};
    std::atomic<long> exploreNanos_{0};
    std::atomic<long> paretoNanos_{0};
    std::atomic<long> healthNanos_{0};
    std::atomic<long> statsNanos_{0};
    std::atomic<long> metricsNanos_{0};
};

} // namespace madmax

#endif // MADMAX_SERVE_SERVICE_HH
