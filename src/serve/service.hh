/**
 * @file
 * The MAD-Max evaluation service: the application logic behind
 * `madmax serve`. One EvalService owns one process-lifetime
 * EvalEngine, so the memo cache and thread pool are shared across
 * every request the server ever answers — repeat evaluations of a
 * popular (model, system, task) triple are cache hits instead of
 * full stream builds, which is what amortizes the >100x-over-
 * profiling speedup across many interactive users. Cache misses ride
 * the engine's context grouping (core/eval_context.hh): an explore
 * request's whole plan sweep shares one EvalContext built from the
 * request's parsed triple, so per-plan cost is the marginal stream
 * build + schedule, not re-validation of the cluster and model.
 *
 * Endpoints (full reference with examples: docs/serving.md):
 *
 *   POST /v1/evaluate  body {"model": ..., "system": ..., "task": ...}
 *                      -> the exact JSON `madmax_cli evaluate
 *                      --format json` prints for the same triple,
 *                      byte for byte.
 *   POST /v1/explore   same body plus optional "top" (default 5) and
 *                      "no_memory_limit" -> the same schema as
 *                      `madmax_cli explore --format json` (not byte-
 *                      identical: search.wall_seconds is measured).
 *   POST /v1/pareto    body {"model": ..., "task": ...} plus a
 *                      hardware axis ("system" [+ "node_counts"] or
 *                      "catalog"/"nodes") and search knobs
 *                      ("strategy", "budget", "seed") -> the same
 *                      schema as `madmax_cli pareto --format json`:
 *                      the multi-objective frontier over the joint
 *                      (hardware x plan) space (docs/dse.md).
 *   GET  /v1/health    liveness: status, uptime, engine parallelism.
 *   GET  /v1/stats     engine lifetime counters + memo-cache
 *                      occupancy + per-endpoint request counts.
 *
 * Errors use the uniform {"error": {code, message}} shape: 400 for
 * malformed JSON / missing fields / bad configs, 404/405 from the
 * router, 500 for internal failures.
 */

#ifndef MADMAX_SERVE_SERVICE_HH
#define MADMAX_SERVE_SERVICE_HH

#include <atomic>
#include <chrono>
#include <functional>

#include "engine/eval_engine.hh"
#include "serve/request_router.hh"

namespace madmax
{

/** Service construction knobs. */
struct ServiceOptions
{
    /** Engine worker threads; 0 = one per core (the serving default —
     *  unlike the CLI, a resident service wants the whole machine). */
    int jobs = 0;

    /** Memo-cache entry cap, forwarded to EvalEngineOptions. */
    size_t cacheCapacity = size_t{1} << 13;
};

/** Per-endpoint request accounting, reported by `GET /v1/stats`. */
struct ServiceStats
{
    long evaluate = 0;
    long explore = 0;
    long pareto = 0;
    long health = 0;
    long stats = 0;
    long errors = 0; ///< Responses with status >= 400 (any endpoint).

    long total() const
    {
        return evaluate + explore + pareto + health + stats;
    }
};

class EvalService
{
  public:
    explicit EvalService(ServiceOptions options = {});

    EvalService(const EvalService &) = delete;
    EvalService &operator=(const EvalService &) = delete;

    /**
     * Dispatch one request through the routing table. Never throws:
     * ConfigError becomes a 400 response, anything else a 500.
     * Thread-safe; this is the HttpHandler `madmax serve` installs.
     */
    HttpResponse handle(const HttpRequest &request);

    /** The shared process-lifetime engine (tests inspect its cache). */
    EvalEngine &engine() { return engine_; }

    ServiceStats stats() const;

    /**
     * Wire the transport's counters into `GET /v1/stats` (as the
     * response's "transport" object). Set after constructing the
     * HttpServer — the server wraps the service, so the service
     * cannot reach it at construction time. Transport rejections
     * (400/413/431/503) never reach handle(), so without this they
     * are invisible to the observability endpoint. Not thread-safe:
     * call before start().
     */
    void
    setTransportStatsProvider(std::function<HttpServerStats()> provider)
    {
        transportStats_ = std::move(provider);
    }

  private:
    HttpResponse handleEvaluate(const HttpRequest &request);
    HttpResponse handleExplore(const HttpRequest &request);
    HttpResponse handlePareto(const HttpRequest &request);
    HttpResponse handleHealth(const HttpRequest &request);
    HttpResponse handleStats(const HttpRequest &request);

    EvalEngine engine_;
    RequestRouter router_;
    std::function<HttpServerStats()> transportStats_;
    std::chrono::steady_clock::time_point start_;

    std::atomic<long> evaluateCount_{0};
    std::atomic<long> exploreCount_{0};
    std::atomic<long> paretoCount_{0};
    std::atomic<long> healthCount_{0};
    std::atomic<long> statsCount_{0};
    std::atomic<long> errorCount_{0};
};

} // namespace madmax

#endif // MADMAX_SERVE_SERVICE_HH
