/**
 * @file
 * Export a scheduled Timeline as a Chrome Trace Event Format JSON
 * document (loadable in chrome://tracing or Perfetto) so users can
 * inspect generated compute/communication streams visually, as in the
 * paper's Figs. 6 and 9.
 */

#ifndef MADMAX_TRACE_CHROME_TRACE_HH
#define MADMAX_TRACE_CHROME_TRACE_HH

#include <ostream>
#include <string>

#include "trace/trace_event.hh"

namespace madmax
{

/** Serialize @p timeline as Chrome Trace Event JSON to @p os. */
void writeChromeTrace(const Timeline &timeline, std::ostream &os);

/** Serialize to a string. */
std::string chromeTraceJson(const Timeline &timeline);

/**
 * Render an ASCII swimlane view of the two streams (the Fig. 6-style
 * visualization benches print). Each column is makespan/width seconds.
 */
std::string asciiStreams(const Timeline &timeline, int width = 72);

} // namespace madmax

#endif // MADMAX_TRACE_CHROME_TRACE_HH
