/**
 * @file
 * Flat event-graph representation of a per-device iteration — the
 * hot-path counterpart of the TraceEvent DAG in trace_event.hh.
 *
 * A sweep evaluating thousands of plans spends most of its time
 * building and scheduling event graphs, so the hot structures are
 * laid out flat:
 *
 *  - event ids are dense: node i's id is its index, so the scheduler
 *    keeps finish times in a plain vector instead of a hash map;
 *  - every node's dependency list lives in one shared arena
 *    (EventGraph::deps) addressed by (depsBegin, depsCount) instead
 *    of a per-event heap-allocated vector;
 *  - nodes carry a *pointer* to their name (stable storage owned by
 *    the EvalContext / model description); the string itself is only
 *    copied when a caller materializes TraceEvents for a retained
 *    Timeline (PerfModelOptions::keepTimeline).
 *
 * Input contract (same as the TraceEvent form): nodes are in issue
 * order per stream and every dependency index is smaller than the
 * depending node's index — guaranteed by construction in
 * StreamBuilder.
 */

#ifndef MADMAX_TRACE_EVENT_GRAPH_HH
#define MADMAX_TRACE_EVENT_GRAPH_HH

#include <cstdint>
#include <string>
#include <vector>

#include "trace/trace_event.hh"

namespace madmax
{

/** One event in the flat graph; its id is its index in the graph. */
struct EventNode
{
    /** Trace label, borrowed from stable storage (layer names in the
     *  ModelDesc, collective tags in the EvalContext). Never null. */
    const std::string *name = nullptr;

    StreamKind stream = StreamKind::Compute;
    EventCategory category = EventCategory::Other;
    CollAlgo algo = CollAlgo::None;
    bool blocking = true;
    bool backward = false;
    int layerIdx = -1;
    double duration = 0.0;

    uint32_t depsBegin = 0; ///< Offset into EventGraph::deps.
    uint32_t depsCount = 0;
};

/** A per-device iteration DAG in flat form. */
struct EventGraph
{
    std::vector<EventNode> nodes; ///< Issue order; id == index.
    std::vector<int32_t> deps;    ///< Shared dependency arena.

    const int32_t *depsOf(const EventNode &node) const
    {
        return deps.data() + node.depsBegin;
    }

    /**
     * Materialize node @p idx as a standalone TraceEvent (name and
     * dependency list copied out) — the slow, allocating form used
     * only when a Timeline must be retained.
     */
    TraceEvent materialize(size_t idx) const
    {
        const EventNode &node = nodes[idx];
        TraceEvent ev;
        ev.id = static_cast<int>(idx);
        ev.name = *node.name;
        ev.stream = node.stream;
        ev.category = node.category;
        ev.duration = node.duration;
        ev.deps.assign(depsOf(node), depsOf(node) + node.depsCount);
        ev.blocking = node.blocking;
        ev.layerIdx = node.layerIdx;
        ev.backward = node.backward;
        ev.algo = node.algo;
        return ev;
    }
};

} // namespace madmax

#endif // MADMAX_TRACE_EVENT_GRAPH_HH
