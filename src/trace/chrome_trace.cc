#include "trace/chrome_trace.hh"

#include <algorithm>
#include <sstream>

#include "util/strfmt.hh"

namespace madmax
{

namespace
{

/** Escape a string for embedding in a JSON literal. */
std::string
jsonEscape(const std::string &in)
{
    std::string out;
    out.reserve(in.size() + 8);
    for (char c : in) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          default: out += c;
        }
    }
    return out;
}

} // namespace

void
writeChromeTrace(const Timeline &timeline, std::ostream &os)
{
    os << "{\"traceEvents\":[";
    bool first = true;
    for (const ScheduledEvent &se : timeline.events) {
        if (se.event.duration <= 0.0)
            continue;
        if (!first)
            os << ",";
        first = false;
        // tid 0 = compute stream, tid 1 = communication stream.
        int tid = se.event.stream == StreamKind::Compute ? 0 : 1;
        // The chosen collective algorithm rides along only when a cost
        // model annotated one (the topology-aware model); flat-default
        // traces keep their exact historical byte shape.
        std::string algo;
        if (se.event.algo != CollAlgo::None) {
            algo = strfmt(",\"algo\":\"%s\"",
                          toString(se.event.algo).c_str());
        }
        os << strfmt(
            "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"X\","
            "\"ts\":%.3f,\"dur\":%.3f,\"pid\":0,\"tid\":%d,"
            "\"args\":{\"layer\":%d,\"phase\":\"%s\",\"blocking\":%s%s}}",
            jsonEscape(se.event.name).c_str(),
            toString(se.event.category).c_str(),
            se.start * 1e6, (se.finish - se.start) * 1e6, tid,
            se.event.layerIdx, se.event.backward ? "bwd" : "fwd",
            se.event.blocking ? "true" : "false", algo.c_str());
    }
    os << "],\"displayTimeUnit\":\"ms\"}";
}

std::string
chromeTraceJson(const Timeline &timeline)
{
    std::ostringstream oss;
    writeChromeTrace(timeline, oss);
    return oss.str();
}

std::string
asciiStreams(const Timeline &timeline, int width)
{
    if (timeline.makespan <= 0.0 || width <= 0)
        return {};

    auto render = [&](StreamKind kind) {
        std::string lane(static_cast<size_t>(width), '.');
        for (const ScheduledEvent &se : timeline.events) {
            if (se.event.stream != kind || se.event.duration <= 0.0)
                continue;
            int lo = static_cast<int>(se.start / timeline.makespan * width);
            int hi = static_cast<int>(se.finish / timeline.makespan * width);
            lo = std::clamp(lo, 0, width - 1);
            hi = std::clamp(hi, lo + 1, width);
            char fill = '#';
            if (kind == StreamKind::Communication)
                fill = se.event.blocking ? '=' : '-';
            for (int i = lo; i < hi; ++i)
                lane[static_cast<size_t>(i)] = fill;
            // Tag the block with the start of its name if it fits.
            const std::string &nm = se.event.name;
            for (int i = 0; i < hi - lo - 1 &&
                     i < static_cast<int>(nm.size()); ++i) {
                lane[static_cast<size_t>(lo + i)] = nm[static_cast<size_t>(i)];
            }
        }
        return lane;
    };

    std::string out;
    out += "compute | " + render(StreamKind::Compute) + "\n";
    out += "comm    | " + render(StreamKind::Communication) + "\n";
    out += strfmt("          0%*s%s\n", width - 1, "",
                  formatTime(timeline.makespan).c_str());
    return out;
}

} // namespace madmax
