#include "trace/trace_event.hh"

#include "util/logging.hh"

namespace madmax
{

std::string
toString(StreamKind kind)
{
    switch (kind) {
      case StreamKind::Compute: return "compute";
      case StreamKind::Communication: return "communication";
    }
    panic("toString: unknown StreamKind");
}

std::string
toString(EventCategory cat)
{
    switch (cat) {
      case EventCategory::EmbeddingLookup: return "EmbLookup";
      case EventCategory::Gemm: return "GEMM";
      case EventCategory::AllReduce: return "AllReduce";
      case EventCategory::AllGather: return "AllGather";
      case EventCategory::ReduceScatter: return "ReduceScatter";
      case EventCategory::All2All: return "All2All";
      case EventCategory::Memcpy: return "Memcpy";
      case EventCategory::Other: return "Other";
    }
    panic("toString: unknown EventCategory");
}

std::string
toString(CollAlgo algo)
{
    switch (algo) {
      case CollAlgo::None: return "none";
      case CollAlgo::Ring: return "ring";
      case CollAlgo::Tree: return "tree";
      case CollAlgo::Hierarchical: return "hierarchical";
      case CollAlgo::PointToPoint: return "p2p";
    }
    panic("toString: unknown CollAlgo");
}

} // namespace madmax
