/**
 * @file
 * Execution-trace data structures (§IV-A): "a detailed record
 * capturing the sequence and duration of both compute and
 * communication events (i.e., streams) on each device."
 *
 * A per-device iteration is a DAG of TraceEvents partitioned into a
 * compute stream and a communication stream. Events within a stream
 * execute in issue order; cross-stream edges come from data
 * dependencies. The scheduler (core/overlap_simulator) turns the DAG
 * into a Timeline with start/finish times and overlap accounting.
 */

#ifndef MADMAX_TRACE_TRACE_EVENT_HH
#define MADMAX_TRACE_TRACE_EVENT_HH

#include <string>
#include <vector>

namespace madmax
{

/** Which per-device stream an event occupies. */
enum class StreamKind
{
    Compute,
    Communication,
};

/** Cost category for the Fig. 20-style execution breakdowns. */
enum class EventCategory
{
    EmbeddingLookup,
    Gemm,            ///< Dense compute (MLP / attention / FFN).
    AllReduce,
    AllGather,
    ReduceScatter,
    All2All,
    Memcpy,          ///< Host-device transfers (fleet model only).
    Other,
};

/**
 * Which algorithm a collective cost model chose for a communication
 * event. The flat model reports None (it commits to no shape in its
 * closed forms), so flat-default traces are unchanged; the
 * topology-aware model annotates each priced collective and
 * keepTimeline traces / Chrome traces surface the choice per comm op.
 */
enum class CollAlgo
{
    None,          ///< No algorithm annotation (flat model, compute).
    Ring,          ///< Bandwidth-optimal ring within one tier.
    Tree,          ///< Pipelined binary tree (latency-optimal).
    Hierarchical,  ///< Multi-tier decomposition across fabric levels.
    PointToPoint,  ///< Send/Recv pairs (All2All), slowest-link bound.
};

std::string toString(StreamKind kind);
std::string toString(EventCategory cat);
std::string toString(CollAlgo algo);

/** One block on a stream. */
struct TraceEvent
{
    int id = -1;
    std::string name;
    StreamKind stream = StreamKind::Compute;
    EventCategory category = EventCategory::Other;
    double duration = 0.0;     ///< Seconds.
    std::vector<int> deps;     ///< Event ids that must finish first.

    /**
     * Non-blocking communication (e.g. DDP gradient AllReduce) is off
     * every compute event's dependency list; only the iteration-end
     * barrier waits for it.
     */
    bool blocking = true;

    int layerIdx = -1;         ///< Originating layer (-1 for barriers).
    bool backward = false;     ///< Phase tag for reporting.

    /** Collective algorithm the cost model chose (None for compute
     *  events and for the flat model's collectives). */
    CollAlgo algo = CollAlgo::None;
};

/** An event with its scheduled interval. */
struct ScheduledEvent
{
    TraceEvent event;
    double start = 0.0;
    double finish = 0.0;
};

/**
 * A fully scheduled per-device iteration: every event with start and
 * finish times, plus the aggregate accounting the reports need.
 */
struct Timeline
{
    std::vector<ScheduledEvent> events;

    double makespan = 0.0;       ///< End-to-end iteration seconds.
    double computeBusy = 0.0;    ///< Sum of compute durations.
    double commBusy = 0.0;       ///< Sum of communication durations.
    double exposedComm = 0.0;    ///< Comm time with idle compute stream.

    /** Comm time hidden behind concurrent compute. */
    double overlappedComm() const { return commBusy - exposedComm; }

    /** Fraction of communication hidden behind compute, in [0, 1]. */
    double overlapFraction() const
    {
        return commBusy > 0.0 ? overlappedComm() / commBusy : 0.0;
    }

    /** Serialized execution time (no overlap): compute + comm. */
    double serialized() const { return computeBusy + commBusy; }
};

} // namespace madmax

#endif // MADMAX_TRACE_TRACE_EVENT_HH
