/**
 * @file
 * Sharding math: what fraction of a layer's parameters, gradients and
 * optimizer states each device persistently stores under a
 * hierarchical strategy, how many ways the batch is split, and the
 * transient working-set peaks (FSDP's temporarily-gathered layer).
 */

#ifndef MADMAX_PARALLEL_SHARDING_HH
#define MADMAX_PARALLEL_SHARDING_HH

#include "hw/cluster.hh"
#include "parallel/strategy.hh"

namespace madmax
{

/** Per-device storage/work factors for one layer under one strategy. */
struct ShardingInfo
{
    /**
     * Fraction of the layer's parameter elements stored per device
     * (gradients and optimizer states follow the same residency).
     */
    double paramFraction = 1.0;

    /**
     * Ways the global batch is split for this layer: each device
     * processes globalBatch / dataParallelWays samples (TP/MP levels
     * process shared samples cooperatively, so they do not multiply).
     */
    int dataParallelWays = 1;

    /**
     * Fraction of the layer's parameters transiently materialized on
     * top of the persistent shard (FSDP gathers a full copy of the
     * in-flight layer).
     */
    double transientParamFraction = 0.0;
};

/**
 * Compute sharding for @p hs on a cluster of shape @p cluster.
 *
 * Composition rules: a level running DDP stores a full copy at that
 * level and splits data; FSDP shards storage *and* splits data; TP
 * shards storage but processes shared data cooperatively; MP shards
 * storage with globally-shared data (embedding tables / experts).
 * (FSDP, FSDP) collapses to global FSDP.
 */
ShardingInfo shardingFor(HierStrategy hs, const ClusterSpec &cluster);

} // namespace madmax

#endif // MADMAX_PARALLEL_SHARDING_HH
