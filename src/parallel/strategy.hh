/**
 * @file
 * Parallelization strategies (§II-B): what is replicated vs. sharded
 * at each level of the cluster hierarchy, and how strategies compose
 * into a per-layer-class plan.
 *
 * Notation follows the paper: "(TP, DDP)" applies TP within a node
 * and DDP across nodes; a one-element tuple like "(FSDP)" applies the
 * strategy globally across all devices.
 */

#ifndef MADMAX_PARALLEL_STRATEGY_HH
#define MADMAX_PARALLEL_STRATEGY_HH

#include <map>
#include <string>
#include <vector>

#include "model/layer.hh"

namespace madmax
{

/** Single-level strategy. */
enum class Strategy
{
    None,  ///< Level unused (one-level plans set inter = None).
    DDP,   ///< Replicate parameters; AllReduce weight gradients.
    FSDP,  ///< Shard parameters; AllGather before use, ReduceScatter grads.
    TP,    ///< Shard parameters; AllReduce partial-sum activations.
    MP,    ///< Model-parallel sharding (embedding tables / MoE experts).
};

std::string toString(Strategy s);

/** True if @p s shards parameter storage at its level. */
bool shardsParams(Strategy s);

/** True if @p s splits the batch (data parallelism) at its level. */
bool splitsData(Strategy s);

/**
 * A hierarchical (intra-node, inter-node) strategy for one layer
 * class. inter == None means `intra` is applied globally across all
 * devices ("(TP)" in paper notation).
 */
struct HierStrategy
{
    Strategy intra = Strategy::None;
    Strategy inter = Strategy::None;

    constexpr HierStrategy() = default;
    constexpr HierStrategy(Strategy i) : intra(i) {}
    constexpr HierStrategy(Strategy i, Strategy o) : intra(i), inter(o) {}

    bool isGlobal() const { return inter == Strategy::None; }
    bool operator==(const HierStrategy &o) const
    {
        return intra == o.intra && inter == o.inter;
    }
    bool operator!=(const HierStrategy &o) const { return !(*this == o); }

    /** "(TP, DDP)" / "(FSDP)" per paper notation. */
    std::string toString() const;
};

/**
 * A full parallelization plan: one HierStrategy per layer class
 * present in the model, plus collective-level options.
 */
struct ParallelPlan
{
    std::map<LayerClass, HierStrategy> byClass;

    /**
     * Overlap FSDP AllGathers with preceding-layer compute (the
     * optimized prefetching implementation of Fig. 9).
     */
    bool fsdpPrefetch = false;

    /**
     * Strategy for @p cls; falls back to the defaults the paper
     * assumes when a class is not explicitly planned (sharding for
     * sparse embeddings, FSDP for everything else).
     */
    HierStrategy strategyFor(LayerClass cls) const;

    ParallelPlan &set(LayerClass cls, HierStrategy hs);

    /**
     * The paper's baseline: FSDP for all dense classes (wide adoption,
     * guarantees feasibility via minimal footprint), MP sharding for
     * sparse embedding tables.
     */
    static ParallelPlan fsdpBaseline();

    /** Plan name like "dense=(TP, DDP) emb=(MP)". */
    std::string toString() const;
};

} // namespace madmax

#endif // MADMAX_PARALLEL_STRATEGY_HH
