#include "parallel/strategy.hh"

#include "util/logging.hh"

namespace madmax
{

std::string
toString(Strategy s)
{
    switch (s) {
      case Strategy::None: return "None";
      case Strategy::DDP: return "DDP";
      case Strategy::FSDP: return "FSDP";
      case Strategy::TP: return "TP";
      case Strategy::MP: return "MP";
    }
    panic("toString: unknown Strategy");
}

bool
shardsParams(Strategy s)
{
    return s == Strategy::FSDP || s == Strategy::TP || s == Strategy::MP;
}

bool
splitsData(Strategy s)
{
    return s == Strategy::DDP || s == Strategy::FSDP;
}

std::string
HierStrategy::toString() const
{
    if (isGlobal())
        return "(" + madmax::toString(intra) + ")";
    return "(" + madmax::toString(intra) + ", " +
        madmax::toString(inter) + ")";
}

HierStrategy
ParallelPlan::strategyFor(LayerClass cls) const
{
    auto it = byClass.find(cls);
    if (it != byClass.end())
        return it->second;
    if (cls == LayerClass::SparseEmbedding)
        return HierStrategy{Strategy::MP};
    return HierStrategy{Strategy::FSDP};
}

ParallelPlan &
ParallelPlan::set(LayerClass cls, HierStrategy hs)
{
    byClass[cls] = hs;
    return *this;
}

ParallelPlan
ParallelPlan::fsdpBaseline()
{
    ParallelPlan p;
    p.set(LayerClass::SparseEmbedding, HierStrategy{Strategy::MP});
    p.set(LayerClass::DenseEmbedding, HierStrategy{Strategy::FSDP});
    p.set(LayerClass::BaseDense, HierStrategy{Strategy::FSDP});
    p.set(LayerClass::Transformer, HierStrategy{Strategy::FSDP});
    // Production FSDP recipes pair with expert parallelism for MoE
    // banks (gathering all experts per layer would dwarf the useful
    // work); experts are sharded like embedding tables.
    p.set(LayerClass::MoE, HierStrategy{Strategy::MP});
    // The baseline is plain FSDP; AllGather prefetching is the
    // *optimized* implementation of Fig. 9 and part of the tuned
    // configurations MAD-Max identifies.
    p.fsdpPrefetch = false;
    return p;
}

std::string
ParallelPlan::toString() const
{
    std::string out;
    for (const auto &[cls, hs] : byClass) {
        if (!out.empty())
            out += " ";
        out += madmax::toString(cls) + "=" + hs.toString();
    }
    if (fsdpPrefetch)
        out += " +prefetch";
    return out.empty() ? "(defaults)" : out;
}

} // namespace madmax
