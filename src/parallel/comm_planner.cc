#include "parallel/comm_planner.hh"

#include "parallel/sharding.hh"
#include "util/logging.hh"
#include "util/strfmt.hh"

namespace madmax
{

std::string
toString(Phase phase)
{
    switch (phase) {
      case Phase::Forward: return "fwd";
      case Phase::Backward: return "bwd";
    }
    panic("toString: unknown Phase");
}

CommPlanner::CommPlanner(const ModelDesc &desc, const TaskSpec &task,
                         const ParallelPlan &plan,
                         const ClusterSpec &cluster)
    : desc_(desc), task_(task), plan_(plan), cluster_(cluster)
{
    desc_.validate();
    cluster_.validate();
}

std::vector<CommPlanner::Level>
CommPlanner::levels(HierStrategy hs, double param_bytes) const
{
    // Group sizes come from scopeSpan so topology-carrying clusters
    // plan against their tier fans; validateAgainst pins those to the
    // flat d/m/n shape, so today the volumes are identical either way.
    const int d = scopeSpan(cluster_, CommScope::Intra);
    const int m = scopeSpan(cluster_, CommScope::Inter);
    const int n = scopeSpan(cluster_, CommScope::Global);

    if (hs.intra == Strategy::None)
        fatal("CommPlanner: strategy has no intra level");

    // (FSDP, FSDP) collapses to global FSDP (see shardingFor).
    if (hs.intra == Strategy::FSDP && hs.inter == Strategy::FSDP)
        hs = HierStrategy{Strategy::FSDP};

    std::vector<Level> out;
    if (hs.isGlobal()) {
        out.push_back(Level{hs.intra, CommScope::Global, n, param_bytes});
        return out;
    }
    double f_intra = shardsParams(hs.intra) ? 1.0 / d : 1.0;
    double f_inter = shardsParams(hs.inter) ? 1.0 / m : 1.0;
    out.push_back(Level{hs.intra, CommScope::Intra, d,
                        param_bytes * f_inter});
    out.push_back(Level{hs.inter, CommScope::Inter, m,
                        param_bytes * f_intra});
    return out;
}

void
CommPlanner::planParamComms(std::vector<CommOp> &out, int idx,
                            const Level &level, bool trainable,
                            const std::string &name) const
{
    if (level.group <= 1 || level.tensorBytes <= 0.0)
        return;

    switch (level.strategy) {
      case Strategy::DDP:
        // Weight-gradient AllReduce; off the backprop critical path.
        if (trainable) {
            out.push_back(CommOp{idx, Phase::Backward, CommPosition::Post,
                                 Collective::AllReduce, level.scope,
                                 level.tensorBytes, false,
                                 name + "_g_AR"});
        }
        break;
      case Strategy::FSDP:
        // Gather parameters for forward use...
        out.push_back(CommOp{idx, Phase::Forward, CommPosition::Pre,
                             Collective::AllGather, level.scope,
                             level.tensorBytes, true, name + "_w_AG"});
        // ...re-gather for backward...
        if (task_.needsBackward()) {
            out.push_back(CommOp{idx, Phase::Backward, CommPosition::Pre,
                                 Collective::AllGather, level.scope,
                                 level.tensorBytes, true,
                                 name + "_w_AG'"});
        }
        // ...and scatter-reduce weight gradients.
        if (trainable) {
            out.push_back(CommOp{idx, Phase::Backward, CommPosition::Post,
                                 Collective::ReduceScatter, level.scope,
                                 level.tensorBytes, false,
                                 name + "_g_RS"});
        }
        break;
      case Strategy::TP:
      case Strategy::MP:
      case Strategy::None:
        break; // Handled by activation / sharded planners.
    }
}

void
CommPlanner::planActivationComms(std::vector<CommOp> &out, int idx,
                                 const Level &level,
                                 double act_tensor_bytes,
                                 const std::string &name) const
{
    if (level.strategy != Strategy::TP || level.group <= 1 ||
        act_tensor_bytes <= 0.0) {
        return;
    }
    // Partial-sum AllReduce: consumers need the full activations.
    out.push_back(CommOp{idx, Phase::Forward, CommPosition::Post,
                         Collective::AllReduce, level.scope,
                         act_tensor_bytes, true, name + "_a_AR"});
    if (task_.needsBackward()) {
        // Input-gradient AllReduce mirrors the forward volume.
        out.push_back(CommOp{idx, Phase::Backward, CommPosition::Post,
                             Collective::AllReduce, level.scope,
                             act_tensor_bytes, true, name + "_da_AR"});
    }
}

void
CommPlanner::planShardedComms(std::vector<CommOp> &out, int idx,
                              const Level &level, double a2a_bytes,
                              bool trainable, bool is_moe,
                              const std::string &name) const
{
    if (level.strategy != Strategy::MP || level.group <= 1 ||
        a2a_bytes <= 0.0) {
        return;
    }
    if (is_moe) {
        // Expert parallelism: dispatch before and combine after the
        // expert compute, both directions of the iteration.
        out.push_back(CommOp{idx, Phase::Forward, CommPosition::Pre,
                             Collective::All2All, level.scope, a2a_bytes,
                             true, name + "_disp_A2A"});
        out.push_back(CommOp{idx, Phase::Forward, CommPosition::Post,
                             Collective::All2All, level.scope, a2a_bytes,
                             true, name + "_comb_A2A"});
        if (task_.needsBackward()) {
            out.push_back(CommOp{idx, Phase::Backward, CommPosition::Pre,
                                 Collective::All2All, level.scope,
                                 a2a_bytes, true, name + "_dcomb_A2A"});
            out.push_back(CommOp{idx, Phase::Backward, CommPosition::Post,
                                 Collective::All2All, level.scope,
                                 a2a_bytes, true, name + "_ddisp_A2A"});
        }
        return;
    }
    // Embedding-table sharding: redistribute pooled lookups to sample
    // owners after forward lookup; route gradients back before the
    // backward table update (only when tables train at all).
    out.push_back(CommOp{idx, Phase::Forward, CommPosition::Post,
                         Collective::All2All, level.scope, a2a_bytes,
                         true, name + "_A2A"});
    if (trainable) {
        out.push_back(CommOp{idx, Phase::Backward, CommPosition::Pre,
                             Collective::All2All, level.scope, a2a_bytes,
                             true, name + "_g_A2A"});
    }
}

std::vector<CommOp>
CommPlanner::planLayer(int idx) const
{
    const Layer &layer = desc_.graph.layer(idx);
    const LayerClass cls = layer.layerClass();
    const HierStrategy hs = plan_.strategyFor(cls);
    const bool trainable = task_.isTrainable(cls);
    const double param_bytes = layer.paramCount() * desc_.paramBytes();
    const int n = scopeSpan(cluster_, CommScope::Global);

    const ShardingInfo sharding = shardingFor(hs, cluster_);
    const double batch = static_cast<double>(desc_.globalBatchSize);

    // Activation tensor AllReduced by a TP group: the samples the
    // group cooperates on.
    const double group_batch =
        batch / static_cast<double>(sharding.dataParallelWays);
    const double act_tensor_bytes =
        layer.tpCommBytesPerSample(desc_.activationBytes()) * group_batch;

    // All2All send bytes per device: this device's shard of the
    // redistribution payload.
    const bool is_moe = layer.kind() == LayerKind::MoeFeedForward;
    double payload_per_sample = 0.0;
    if (is_moe) {
        payload_per_sample = static_cast<const MoeFeedForwardLayer &>(layer)
            .routedBytesPerSample(desc_.activationBytes());
    } else {
        payload_per_sample =
            layer.outputBytesPerSample(desc_.activationBytes());
    }
    const double a2a_bytes = payload_per_sample * batch / n;

    std::vector<CommOp> out;
    for (const Level &level : levels(hs, param_bytes)) {
        planParamComms(out, idx, level, trainable, layer.name());
        planActivationComms(out, idx, level, act_tensor_bytes,
                            layer.name());
        planShardedComms(out, idx, level, a2a_bytes, trainable, is_moe,
                         layer.name());
    }
    return out;
}

std::vector<CommOp>
CommPlanner::planAll() const
{
    std::vector<CommOp> out;
    for (int i = 0; i < desc_.graph.numLayers(); ++i) {
        std::vector<CommOp> ops = planLayer(i);
        out.insert(out.end(), ops.begin(), ops.end());
    }
    return out;
}

} // namespace madmax
