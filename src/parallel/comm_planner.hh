/**
 * @file
 * Communication planner: maps (layer, hierarchical strategy, task) to
 * the collective calls each training/inference iteration needs, with
 * the blocking semantics of §IV-C:
 *
 *  - FSDP: AllGather parameters before forward and backward use
 *    (blocking, prefetchable), ReduceScatter weight gradients
 *    (non-blocking).
 *  - TP: AllReduce partial-sum activations after forward compute and
 *    input gradients in backward (blocking: consumers need them).
 *  - DDP: AllReduce weight gradients in backward (non-blocking: off
 *    the critical path of backpropagation).
 *  - MP (embedding tables): All2All pooled embeddings forward,
 *    All2All gradients backward (blocking).
 *  - MP (MoE experts): All2All dispatch + combine in each direction
 *    (blocking).
 */

#ifndef MADMAX_PARALLEL_COMM_PLANNER_HH
#define MADMAX_PARALLEL_COMM_PLANNER_HH

#include <string>
#include <vector>

#include "collective/collective.hh"
#include "hw/cluster.hh"
#include "model/model_desc.hh"
#include "parallel/strategy.hh"
#include "task/task.hh"

namespace madmax
{

/** Forward or backward half of the iteration. */
enum class Phase
{
    Forward,
    Backward,
};

/** Where a collective sits relative to its layer's compute. */
enum class CommPosition
{
    Pre,   ///< Must finish before the layer's compute (e.g. FSDP AG).
    Post,  ///< Issued after the layer's compute (e.g. TP AR, DDP AR).
};

std::string toString(Phase phase);

/** One collective call required by one layer in one phase. */
struct CommOp
{
    int layerIdx = -1;
    Phase phase = Phase::Forward;
    CommPosition position = CommPosition::Post;
    Collective kind = Collective::AllReduce;
    CommScope scope = CommScope::Global;
    double bytes = 0.0;   ///< Full logical tensor bytes.
    bool blocking = true; ///< Gates downstream compute when true.
    std::string tag;      ///< Trace label, e.g. "EMB_A2A_fwd".
};

/**
 * Plans the collectives for every layer of a model under a plan.
 * Stateless beyond its construction inputs; cheap to rebuild.
 */
class CommPlanner
{
  public:
    /**
     * @param desc Model + input configuration.
     * @param task Task semantics (gradient/optimizer elision).
     * @param plan Per-layer-class strategies.
     * @param cluster Target system (level shapes and fabrics).
     */
    CommPlanner(const ModelDesc &desc, const TaskSpec &task,
                const ParallelPlan &plan, const ClusterSpec &cluster);

    /** All collective calls for layer @p idx (forward and backward). */
    std::vector<CommOp> planLayer(int idx) const;

    /** Concatenation of planLayer over the whole graph. */
    std::vector<CommOp> planAll() const;

  private:
    /** One normalized strategy level. */
    struct Level
    {
        Strategy strategy;
        CommScope scope;
        int group;
        double tensorBytes; ///< Param tensor at this level (P x f_other).
    };

    std::vector<Level> levels(HierStrategy hs, double param_bytes) const;

    void planParamComms(std::vector<CommOp> &out, int idx,
                        const Level &level, bool trainable,
                        const std::string &name) const;
    void planActivationComms(std::vector<CommOp> &out, int idx,
                             const Level &level, double act_tensor_bytes,
                             const std::string &name) const;
    void planShardedComms(std::vector<CommOp> &out, int idx,
                          const Level &level, double a2a_bytes,
                          bool trainable, bool is_moe,
                          const std::string &name) const;

    const ModelDesc &desc_;
    TaskSpec task_;
    ParallelPlan plan_;
    ClusterSpec cluster_;
};

} // namespace madmax

#endif // MADMAX_PARALLEL_COMM_PLANNER_HH
