#include "parallel/sharding.hh"

#include "util/logging.hh"

namespace madmax
{

ShardingInfo
shardingFor(HierStrategy hs, const ClusterSpec &cluster)
{
    const int d = cluster.devicesPerNode;
    const int m = cluster.numNodes;
    const int n = cluster.numDevices();

    if (hs.intra == Strategy::None)
        fatal("shardingFor: intra strategy must be set");

    ShardingInfo info;

    if (hs.isGlobal()) {
        // One-level plan across all n devices.
        if (shardsParams(hs.intra))
            info.paramFraction = 1.0 / n;
        if (splitsData(hs.intra))
            info.dataParallelWays = n;
        if (hs.intra == Strategy::FSDP)
            info.transientParamFraction = 1.0 - info.paramFraction;
        return info;
    }

    // (FSDP, FSDP) is just global FSDP with extra steps.
    if (hs.intra == Strategy::FSDP && hs.inter == Strategy::FSDP)
        return shardingFor(HierStrategy{Strategy::FSDP}, cluster);

    double fraction = 1.0;
    int dp = 1;
    if (shardsParams(hs.intra))
        fraction /= d;
    if (splitsData(hs.intra))
        dp *= d;
    if (shardsParams(hs.inter))
        fraction /= m;
    if (splitsData(hs.inter))
        dp *= m;

    info.paramFraction = fraction;
    info.dataParallelWays = dp;
    if (hs.intra == Strategy::FSDP || hs.inter == Strategy::FSDP) {
        // The in-flight layer is gathered up to the residency implied
        // by the non-FSDP level alone.
        double gathered = 1.0;
        if (hs.intra != Strategy::FSDP && shardsParams(hs.intra))
            gathered /= d;
        if (hs.inter != Strategy::FSDP && shardsParams(hs.inter))
            gathered /= m;
        info.transientParamFraction = gathered - fraction;
    }
    return info;
}

} // namespace madmax
