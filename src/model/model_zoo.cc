#include "model/model_zoo.hh"

#include <memory>

#include "util/logging.hh"

namespace madmax::model_zoo
{

namespace
{

/**
 * Shared builder for the DLRM family: sparse embedding + bottom MLP
 * feeding either a dot-product interaction, a transformer feature
 * interaction, or an interaction + MoE top stack, followed by the top
 * MLP / prediction head.
 */
struct DlrmGeometry
{
    long numTables;
    long rowsPerTable;
    long embeddingDim;
    double avgPooling;
    std::vector<long> bottomDims;
    std::vector<long> topDims;
};

ModelDesc
buildDlrm(const std::string &name, const DlrmGeometry &g, long global_batch)
{
    ModelDesc m;
    m.name = name;
    m.globalBatchSize = global_batch;
    m.contextLength = 1;
    m.isRecommendation = true;
    m.computeDtype = DataType::TF32;

    int emb = m.graph.addLayer(std::make_unique<EmbeddingBagLayer>(
        "EMB", g.numTables, g.rowsPerTable, g.embeddingDim, g.avgPooling));
    int bot = m.graph.addLayer(std::make_unique<MlpLayer>(
        "Bot_MLP", LayerClass::BaseDense, g.bottomDims));
    int inter = m.graph.addLayer(std::make_unique<InteractionLayer>(
        "Interact", g.numTables + 1, g.embeddingDim, g.topDims.front()),
        {emb, bot});
    m.graph.addLayer(std::make_unique<MlpLayer>(
        "Top_MLP", LayerClass::BaseDense, g.topDims), {inter});
    return m;
}

/**
 * Append @p num_layers transformer blocks; the first block consumes
 * all of @p inputs (e.g. both the embedding All2All output and the
 * bottom MLP in a DLRM), later blocks chain linearly.
 */
int
appendTransformer(ModelGraph &graph, std::vector<int> inputs,
                  int num_layers, long hidden, long heads, long ctx,
                  long ffn_dim, int num_matrices = 2, long kv_heads = 0,
                  LayerClass cls = LayerClass::Transformer)
{
    int prev = -1;
    for (int i = 0; i < num_layers; ++i) {
        std::vector<int> deps =
            (i == 0) ? inputs : std::vector<int>{prev};
        int attn = graph.addLayer(std::make_unique<AttentionLayer>(
            "Attn_" + std::to_string(i), cls, hidden, heads, ctx, kv_heads),
            std::move(deps));
        prev = graph.addLayer(std::make_unique<FeedForwardLayer>(
            "FFN_" + std::to_string(i), cls, hidden, ffn_dim, ctx,
            num_matrices), {attn});
    }
    return prev;
}

} // namespace

ModelDesc
dlrmA()
{
    // Targets: 793B params (99.96% embedding), 638M FLOPs/sample,
    // 22.61 MB lookup bytes/sample, global batch 64K. 500 tables at
    // dim 128 put the pooled All2All payload at 256 KB/sample, which
    // reproduces the measured 1.2 MQPS on ZionEX (Table I).
    DlrmGeometry g;
    g.numTables = 500;
    g.rowsPerTable = 12385672;         // 500 x r x 128 = 792.7B params.
    g.embeddingDim = 128;
    g.avgPooling = 88.32;              // 500 x 88.32 x 128 x 4B = 22.61 MB.
    g.bottomDims = {256, 512, 256, 128};
    g.topDims = {512, 8192, 8192, 8192, 8192, 8192, 4096, 1};
    return buildDlrm("DLRM-A", g, 65536);
}

ModelDesc
dlrmATransformer()
{
    // Targets: 795B params, 2.6B FLOPs/sample, 13.19 MB lookups,
    // 4 transformer layers over a down-sampled sequence of 80.
    ModelDesc m;
    m.name = "DLRM-A-Transformer";
    m.globalBatchSize = 65536;
    m.contextLength = 1;
    m.isRecommendation = true;
    m.computeDtype = DataType::TF32;

    int emb = m.graph.addLayer(std::make_unique<EmbeddingBagLayer>(
        "EMB", 500, 12421400, 128, 51.52));
    int bot = m.graph.addLayer(std::make_unique<MlpLayer>(
        "Bot_MLP", LayerClass::BaseDense,
        std::vector<long>{256, 512, 256, 128}));
    // Transformer feature interaction: sequence of 80 sparse-feature
    // tokens at width 512; the first block consumes both the A2A'd
    // embeddings and the bottom MLP output.
    int trunk = appendTransformer(m.graph, {emb, bot}, 4, 512, 8, 80, 2816);
    m.graph.addLayer(std::make_unique<MlpLayer>(
        "Top_MLP", LayerClass::BaseDense,
        std::vector<long>{512, 4096, 4096, 1}), {trunk});
    return m;
}

ModelDesc
dlrmAMoe()
{
    // Targets: 957M FLOPs/sample; 16 experts, 2 active, on the top
    // stack; embedding identical to DLRM-A.
    ModelDesc m;
    m.name = "DLRM-A-MoE";
    m.globalBatchSize = 65536;
    m.contextLength = 1;
    m.isRecommendation = true;
    m.computeDtype = DataType::TF32;

    int emb = m.graph.addLayer(std::make_unique<EmbeddingBagLayer>(
        "EMB", 500, 12385672, 128, 88.32));
    int bot = m.graph.addLayer(std::make_unique<MlpLayer>(
        "Bot_MLP", LayerClass::BaseDense,
        std::vector<long>{256, 512, 256, 128}));
    int inter = m.graph.addLayer(std::make_unique<InteractionLayer>(
        "Interact", 501, 128, 512), {emb, bot});
    int moe = m.graph.addLayer(std::make_unique<MoeFeedForwardLayer>(
        "MoE_Top", LayerClass::MoE, 512, 224274, 1, 16, 2), {inter});
    m.graph.addLayer(std::make_unique<MlpLayer>(
        "Head", LayerClass::BaseDense, std::vector<long>{512, 1}), {moe});
    return m;
}

ModelDesc
dlrmB()
{
    // Targets: 332B params, 60M FLOPs/sample, 49.2 KB lookups,
    // global batch 256K.
    DlrmGeometry g;
    g.numTables = 48;
    g.rowsPerTable = 108062000;        // 48 x r x 64 = 332B params.
    g.embeddingDim = 64;
    g.avgPooling = 4.0;                // 48 x 4 x 64 x 4B = 49.2 KB.
    g.bottomDims = {128, 256, 128, 64};
    g.topDims = {256, 2048, 4096, 4096, 1024, 1};
    return buildDlrm("DLRM-B", g, 262144);
}

ModelDesc
dlrmBTransformer()
{
    // Targets: 333B params, 2.1B FLOPs/sample, 32.8 KB lookups.
    ModelDesc m;
    m.name = "DLRM-B-Transformer";
    m.globalBatchSize = 262144;
    m.contextLength = 1;
    m.isRecommendation = true;
    m.computeDtype = DataType::TF32;

    int emb = m.graph.addLayer(std::make_unique<EmbeddingBagLayer>(
        "EMB", 48, 108387000, 64, 2.67));
    int bot = m.graph.addLayer(std::make_unique<MlpLayer>(
        "Bot_MLP", LayerClass::BaseDense,
        std::vector<long>{128, 256, 128, 64}));
    int trunk = appendTransformer(m.graph, {emb, bot}, 4, 512, 8, 80, 2048);
    m.graph.addLayer(std::make_unique<MlpLayer>(
        "Top_MLP", LayerClass::BaseDense,
        std::vector<long>{512, 2048, 4096, 4096, 1024, 1}), {trunk});
    return m;
}

ModelDesc
dlrmBMoe()
{
    // Targets: 90M FLOPs/sample, 42.8 KB lookups.
    ModelDesc m;
    m.name = "DLRM-B-MoE";
    m.globalBatchSize = 262144;
    m.contextLength = 1;
    m.isRecommendation = true;
    m.computeDtype = DataType::TF32;

    int emb = m.graph.addLayer(std::make_unique<EmbeddingBagLayer>(
        "EMB", 48, 108062000, 64, 3.48));
    int bot = m.graph.addLayer(std::make_unique<MlpLayer>(
        "Bot_MLP", LayerClass::BaseDense,
        std::vector<long>{128, 256, 128, 64}));
    int inter = m.graph.addLayer(std::make_unique<InteractionLayer>(
        "Interact", 49, 64, 256), {emb, bot});
    int moe = m.graph.addLayer(std::make_unique<MoeFeedForwardLayer>(
        "MoE_Top", LayerClass::MoE, 256, 43359, 1, 16, 2), {inter});
    m.graph.addLayer(std::make_unique<MlpLayer>(
        "Head", LayerClass::BaseDense, std::vector<long>{256, 1}), {moe});
    return m;
}

ModelDesc
gpt3()
{
    // GPT-3 175B [Brown et al.]: 96 layers, h = 12288, 96 heads,
    // ctx 2048; 350B FLOPs/token; word embeddings 0.37% of params.
    ModelDesc m;
    m.name = "GPT-3";
    m.globalBatchSize = 2048;       // 2K sequences = 4M tokens.
    m.contextLength = 2048;
    m.isRecommendation = false;
    m.computeDtype = DataType::BF16;
    m.paramDtype = DataType::BF16;

    int emb = m.graph.addLayer(std::make_unique<TokenEmbeddingLayer>(
        "Tok_EMB", 50257, 12288, 2048, 1));
    appendTransformer(m.graph, {emb}, 96, 12288, 96, 2048, 49152);
    return m;
}

ModelDesc
llama65b()
{
    // LLaMA-65B [Touvron et al.]: 80 layers, h = 8192, SwiGLU
    // ffn 22016, ctx 2048; 130.4B FLOPs/token.
    ModelDesc m;
    m.name = "LLaMA-65B";
    m.globalBatchSize = 2048;
    m.contextLength = 2048;
    m.isRecommendation = false;
    m.computeDtype = DataType::BF16;
    m.paramDtype = DataType::BF16;

    int emb = m.graph.addLayer(std::make_unique<TokenEmbeddingLayer>(
        "Tok_EMB", 32000, 8192, 2048, 2));
    appendTransformer(m.graph, {emb}, 80, 8192, 64, 2048, 22016, 3);
    return m;
}

ModelDesc
llama2WithContext(long context_length)
{
    // LLaMA2-70B [Touvron et al.]: 80 layers, h = 8192, GQA with 8 KV
    // heads, SwiGLU ffn 28672; 140B FLOPs/token at ctx 4096.
    ModelDesc m;
    m.name = context_length == 4096
        ? std::string("LLaMA2-70B")
        : "LLaMA2-70B-ctx" + std::to_string(context_length);
    // The Fig. 15 sweep holds the sequence batch fixed while the
    // context doubles (the paper's 8K point keeps the architecture
    // and batch recipe of base LLaMA2).
    m.globalBatchSize = 1024;
    m.contextLength = context_length;
    m.isRecommendation = false;
    m.computeDtype = DataType::BF16;
    m.paramDtype = DataType::BF16;

    int emb = m.graph.addLayer(std::make_unique<TokenEmbeddingLayer>(
        "Tok_EMB", 32000, 8192, static_cast<double>(context_length), 2));
    appendTransformer(m.graph, {emb}, 80, 8192, 64, context_length, 28672,
                      3, 8);
    return m;
}

ModelDesc
llama2_70b()
{
    return llama2WithContext(4096);
}

namespace
{

ModelDesc
llama2Small(const char *base_name, long context_length, int num_layers,
            long hidden, long num_heads, long ffn_dim)
{
    ModelDesc m;
    m.name = context_length == 4096
        ? std::string(base_name)
        : std::string(base_name) + "-ctx" + std::to_string(context_length);
    m.globalBatchSize = 256; // A serving batch of in-flight sequences.
    m.contextLength = context_length;
    m.isRecommendation = false;
    m.computeDtype = DataType::BF16;
    m.paramDtype = DataType::BF16;

    int emb = m.graph.addLayer(std::make_unique<TokenEmbeddingLayer>(
        "Tok_EMB", 32000, hidden, static_cast<double>(context_length), 2));
    appendTransformer(m.graph, {emb}, num_layers, hidden, num_heads,
                      context_length, ffn_dim, 3);
    return m;
}

} // namespace

ModelDesc
llama2_7b(long context_length)
{
    // LLaMA2-7B [Touvron et al.]: 32 layers, h = 4096, 32 heads (full
    // KV), SwiGLU ffn 11008.
    return llama2Small("LLaMA2-7B", context_length, 32, 4096, 32, 11008);
}

ModelDesc
llama2_13b(long context_length)
{
    // LLaMA2-13B [Touvron et al.]: 40 layers, h = 5120, 40 heads (full
    // KV), SwiGLU ffn 13824.
    return llama2Small("LLaMA2-13B", context_length, 40, 5120, 40, 13824);
}

ModelDesc
llmMoe()
{
    // Hypothetical 1.8T-parameter LLM-MoE (Table II): 16 experts
    // (2 active) replacing the FFN; ctx 8192; 550B FLOPs/token.
    ModelDesc m;
    m.name = "LLM-MoE";
    m.globalBatchSize = 512;       // 512 x 8192 = 4M tokens.
    m.contextLength = 8192;
    m.isRecommendation = false;
    m.computeDtype = DataType::BF16;
    m.paramDtype = DataType::BF16;

    const long h = 16384;
    const long ffn = 4 * h;
    int prev = m.graph.addLayer(std::make_unique<TokenEmbeddingLayer>(
        "Tok_EMB", 32000, h, 8192, 2));
    for (int i = 0; i < 51; ++i) {
        int attn = m.graph.addLayer(std::make_unique<AttentionLayer>(
            "Attn_" + std::to_string(i), LayerClass::Transformer, h, 128,
            8192), {prev});
        prev = m.graph.addLayer(std::make_unique<MoeFeedForwardLayer>(
            "MoE_FFN_" + std::to_string(i), LayerClass::MoE, h, ffn, 8192,
            16, 2), {attn});
    }
    return m;
}

std::string
toString(VitSize size)
{
    switch (size) {
      case VitSize::L: return "ViT-L";
      case VitSize::H: return "ViT-H";
      case VitSize::G: return "ViT-G";
      case VitSize::B22: return "ViT-22B";
      case VitSize::B120: return "ViT-120B";
    }
    panic("toString: unknown VitSize");
}

ModelDesc
vit(VitSize size, long global_batch)
{
    long layers = 0, hidden = 0, ffn = 0, heads = 0;
    switch (size) {
      case VitSize::L:
        layers = 24; hidden = 1024; ffn = 4096; heads = 16;
        break;
      case VitSize::H:
        layers = 32; hidden = 1280; ffn = 5120; heads = 16;
        break;
      case VitSize::G:
        layers = 48; hidden = 1664; ffn = 8192; heads = 16;
        break;
      case VitSize::B22:
        layers = 48; hidden = 6144; ffn = 24576; heads = 48;
        break;
      case VitSize::B120:
        layers = 96; hidden = 10240; ffn = 40960; heads = 80;
        break;
    }

    ModelDesc m;
    m.name = toString(size);
    m.globalBatchSize = global_batch;
    m.contextLength = 1;           // One image per sample.
    m.isRecommendation = false;
    m.computeDtype = DataType::BF16;
    m.paramDtype = DataType::BF16;

    const long seq = 197;          // 14x14 patches + [CLS].
    int patch = m.graph.addLayer(std::make_unique<MlpLayer>(
        "Patch_Proj", LayerClass::BaseDense,
        std::vector<long>{768, hidden}, static_cast<double>(seq)));
    int trunk = appendTransformer(m.graph, {patch},
                                  static_cast<int>(layers), hidden, heads,
                                  seq, ffn);
    m.graph.addLayer(std::make_unique<MlpLayer>(
        "Cls_Head", LayerClass::BaseDense,
        std::vector<long>{hidden, 1000}), {trunk});
    return m;
}

std::vector<ModelDesc>
tableIISuite()
{
    std::vector<ModelDesc> suite;
    suite.push_back(dlrmA());
    suite.push_back(dlrmATransformer());
    suite.push_back(dlrmAMoe());
    suite.push_back(dlrmB());
    suite.push_back(dlrmBTransformer());
    suite.push_back(dlrmBMoe());
    suite.push_back(gpt3());
    suite.push_back(llama65b());
    suite.push_back(llama2_70b());
    suite.push_back(llmMoe());
    return suite;
}

} // namespace madmax::model_zoo
