/**
 * @file
 * Dependency graph of layers with an explicit forward execution order
 * (§IV-C "Specifying Explicit Execution Order"). Node indices double
 * as execution priority; edges record data dependencies that the
 * stream builder turns into blocking relationships (e.g. the DLRM
 * interaction layer depends on both the embedding All2All and the
 * bottom MLP).
 */

#ifndef MADMAX_MODEL_MODEL_GRAPH_HH
#define MADMAX_MODEL_MODEL_GRAPH_HH

#include <map>
#include <memory>
#include <vector>

#include "model/layer.hh"

namespace madmax
{

/** Aggregate model-level characteristics (drives Table II / Fig. 3). */
struct ModelTotals
{
    double paramCount = 0.0;
    double forwardFlopsPerSample = 0.0;
    double lookupBytesPerSample = 0.0;
    std::map<LayerClass, double> paramsByClass;
};

/**
 * An ordered DAG of layers. Construction order defines forward
 * execution order; the backward pass is the reverse.
 */
class ModelGraph
{
  public:
    ModelGraph() = default;

    // Graphs own their layers; deep-copy on copy.
    ModelGraph(const ModelGraph &other);
    ModelGraph &operator=(const ModelGraph &other);
    ModelGraph(ModelGraph &&) noexcept = default;
    ModelGraph &operator=(ModelGraph &&) noexcept = default;

    /**
     * Append a layer.
     *
     * @param layer The layer block (ownership transferred).
     * @param deps Indices of layers whose *outputs* this layer
     *        consumes. Must all be < the new layer's index. An empty
     *        list marks a graph input (e.g. both the embedding bag and
     *        the bottom MLP in a DLRM).
     * @return The new layer's index.
     */
    int addLayer(std::unique_ptr<Layer> layer, std::vector<int> deps = {});

    int numLayers() const { return static_cast<int>(nodes_.size()); }
    bool empty() const { return nodes_.empty(); }

    const Layer &layer(int idx) const;
    const std::vector<int> &deps(int idx) const;

    /** Indices of layers consuming layer @p idx's output. */
    std::vector<int> consumers(int idx) const;

    /** Sum up model-level characteristics across all layers. */
    ModelTotals totals() const;

    /** All layers of a given strategy class. */
    std::vector<int> layersOfClass(LayerClass cls) const;

    /** True if any layer belongs to @p cls. */
    bool hasClass(LayerClass cls) const;

  private:
    struct Node
    {
        std::unique_ptr<Layer> layer;
        std::vector<int> deps;
    };

    std::vector<Node> nodes_;
};

} // namespace madmax

#endif // MADMAX_MODEL_MODEL_GRAPH_HH
