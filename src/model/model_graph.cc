#include "model/model_graph.hh"

#include "util/logging.hh"
#include "util/strfmt.hh"

namespace madmax
{

ModelGraph::ModelGraph(const ModelGraph &other)
{
    nodes_.reserve(other.nodes_.size());
    for (const Node &n : other.nodes_)
        nodes_.push_back(Node{n.layer->clone(), n.deps});
}

ModelGraph &
ModelGraph::operator=(const ModelGraph &other)
{
    if (this == &other)
        return *this;
    nodes_.clear();
    nodes_.reserve(other.nodes_.size());
    for (const Node &n : other.nodes_)
        nodes_.push_back(Node{n.layer->clone(), n.deps});
    return *this;
}

int
ModelGraph::addLayer(std::unique_ptr<Layer> layer, std::vector<int> deps)
{
    if (!layer)
        panic("ModelGraph::addLayer: null layer");
    int idx = numLayers();
    for (int d : deps) {
        if (d < 0 || d >= idx) {
            fatal(strfmt("layer '%s': dependency %d out of range [0, %d)",
                         layer->name().c_str(), d, idx));
        }
    }
    nodes_.push_back(Node{std::move(layer), std::move(deps)});
    return idx;
}

const Layer &
ModelGraph::layer(int idx) const
{
    if (idx < 0 || idx >= numLayers())
        panic(strfmt("ModelGraph::layer: index %d out of range", idx));
    return *nodes_[static_cast<size_t>(idx)].layer;
}

const std::vector<int> &
ModelGraph::deps(int idx) const
{
    if (idx < 0 || idx >= numLayers())
        panic(strfmt("ModelGraph::deps: index %d out of range", idx));
    return nodes_[static_cast<size_t>(idx)].deps;
}

std::vector<int>
ModelGraph::consumers(int idx) const
{
    std::vector<int> out;
    for (int i = idx + 1; i < numLayers(); ++i) {
        for (int d : nodes_[static_cast<size_t>(i)].deps) {
            if (d == idx) {
                out.push_back(i);
                break;
            }
        }
    }
    return out;
}

ModelTotals
ModelGraph::totals() const
{
    ModelTotals t;
    for (const Node &n : nodes_) {
        double params = n.layer->paramCount();
        t.paramCount += params;
        t.forwardFlopsPerSample += n.layer->forwardFlopsPerSample();
        t.lookupBytesPerSample += n.layer->lookupBytesPerSample();
        t.paramsByClass[n.layer->layerClass()] += params;
    }
    return t;
}

std::vector<int>
ModelGraph::layersOfClass(LayerClass cls) const
{
    std::vector<int> out;
    for (int i = 0; i < numLayers(); ++i) {
        if (nodes_[static_cast<size_t>(i)].layer->layerClass() == cls)
            out.push_back(i);
    }
    return out;
}

bool
ModelGraph::hasClass(LayerClass cls) const
{
    return !layersOfClass(cls).empty();
}

} // namespace madmax
