#include "model/layer.hh"

#include "util/logging.hh"
#include "util/strfmt.hh"

namespace madmax
{

std::string
toString(LayerKind kind)
{
    switch (kind) {
      case LayerKind::Mlp: return "MLP";
      case LayerKind::EmbeddingBag: return "EMB";
      case LayerKind::TokenEmbedding: return "TOK_EMB";
      case LayerKind::Attention: return "ATTN";
      case LayerKind::FeedForward: return "FFN";
      case LayerKind::MoeFeedForward: return "MOE_FFN";
      case LayerKind::Interaction: return "INTERACT";
    }
    panic("toString: unknown LayerKind");
}

std::string
toString(LayerClass cls)
{
    switch (cls) {
      case LayerClass::SparseEmbedding: return "sparse-embedding";
      case LayerClass::DenseEmbedding: return "dense-embedding";
      case LayerClass::BaseDense: return "base-dense";
      case LayerClass::Transformer: return "transformer";
      case LayerClass::MoE: return "moe";
    }
    panic("toString: unknown LayerClass");
}

Layer::Layer(std::string name, LayerClass cls)
    : name_(std::move(name)), class_(cls)
{
}

// --- MlpLayer --------------------------------------------------------------

MlpLayer::MlpLayer(std::string name, LayerClass cls,
                   std::vector<long> dims, double tokens_per_sample)
    : Layer(std::move(name), cls), dims_(std::move(dims)),
      tokensPerSample_(tokens_per_sample)
{
    if (dims_.size() < 2)
        fatal(strfmt("MlpLayer '%s': needs at least {in, out} dims",
                     this->name().c_str()));
    for (long d : dims_) {
        if (d < 1)
            fatal(strfmt("MlpLayer '%s': non-positive dim",
                         this->name().c_str()));
    }
    if (tokensPerSample_ <= 0.0)
        fatal(strfmt("MlpLayer '%s': tokens_per_sample must be positive",
                     this->name().c_str()));
}

double
MlpLayer::paramCount() const
{
    double params = 0.0;
    for (size_t i = 0; i + 1 < dims_.size(); ++i) {
        params += static_cast<double>(dims_[i]) *
            static_cast<double>(dims_[i + 1]) +
            static_cast<double>(dims_[i + 1]); // Bias.
    }
    return params;
}

double
MlpLayer::forwardFlopsPerSample() const
{
    double flops = 0.0;
    for (size_t i = 0; i + 1 < dims_.size(); ++i) {
        flops += 2.0 * static_cast<double>(dims_[i]) *
            static_cast<double>(dims_[i + 1]);
    }
    return flops * tokensPerSample_;
}

double
MlpLayer::outputBytesPerSample(double dtype_bytes) const
{
    return static_cast<double>(dims_.back()) * tokensPerSample_ *
        dtype_bytes;
}

double
MlpLayer::activationMemoryBytesPerSample(double dtype_bytes) const
{
    double elems = 0.0;
    for (size_t i = 1; i < dims_.size(); ++i)
        elems += static_cast<double>(dims_[i]);
    return elems * tokensPerSample_ * dtype_bytes;
}

std::unique_ptr<Layer>
MlpLayer::clone() const
{
    return std::make_unique<MlpLayer>(*this);
}

// --- EmbeddingBagLayer -------------------------------------------------------

EmbeddingBagLayer::EmbeddingBagLayer(std::string name, long num_tables,
                                     long rows_per_table,
                                     long embedding_dim, double avg_pooling,
                                     double bytes_per_element,
                                     double hot_device_skew)
    : Layer(std::move(name), LayerClass::SparseEmbedding),
      numTables_(num_tables), rowsPerTable_(rows_per_table),
      embeddingDim_(embedding_dim), avgPooling_(avg_pooling),
      bytesPerElement_(bytes_per_element),
      hotDeviceSkew_(hot_device_skew)
{
    if (hot_device_skew < 1.0)
        fatal(strfmt("EmbeddingBagLayer '%s': skew must be >= 1",
                     this->name().c_str()));
    if (num_tables < 1 || rows_per_table < 1 || embedding_dim < 1)
        fatal(strfmt("EmbeddingBagLayer '%s': non-positive geometry",
                     this->name().c_str()));
    if (avg_pooling <= 0.0)
        fatal(strfmt("EmbeddingBagLayer '%s': pooling must be positive",
                     this->name().c_str()));
    if (bytes_per_element <= 0.0)
        fatal(strfmt("EmbeddingBagLayer '%s': element size must be positive",
                     this->name().c_str()));
}

double
EmbeddingBagLayer::paramCount() const
{
    return static_cast<double>(numTables_) *
        static_cast<double>(rowsPerTable_) *
        static_cast<double>(embeddingDim_);
}

double
EmbeddingBagLayer::forwardFlopsPerSample() const
{
    // Sum-pooling adds: one add per looked-up element.
    return static_cast<double>(numTables_) * avgPooling_ *
        static_cast<double>(embeddingDim_);
}

double
EmbeddingBagLayer::lookupBytesPerSample() const
{
    return static_cast<double>(numTables_) * avgPooling_ *
        static_cast<double>(embeddingDim_) * bytesPerElement_;
}

double
EmbeddingBagLayer::outputBytesPerSample(double dtype_bytes) const
{
    // Pooled output: one dim-wide vector per table.
    return static_cast<double>(numTables_) *
        static_cast<double>(embeddingDim_) * dtype_bytes;
}

std::unique_ptr<Layer>
EmbeddingBagLayer::clone() const
{
    return std::make_unique<EmbeddingBagLayer>(*this);
}

// --- TokenEmbeddingLayer ----------------------------------------------------

TokenEmbeddingLayer::TokenEmbeddingLayer(std::string name, long vocab_size,
                                         long hidden,
                                         double tokens_per_sample,
                                         int tie_factor)
    : Layer(std::move(name), LayerClass::DenseEmbedding),
      vocabSize_(vocab_size), hidden_(hidden),
      tokensPerSample_(tokens_per_sample), tieFactor_(tie_factor)
{
    if (vocab_size < 1 || hidden < 1)
        fatal(strfmt("TokenEmbeddingLayer '%s': non-positive geometry",
                     this->name().c_str()));
    if (tokens_per_sample <= 0.0)
        fatal(strfmt("TokenEmbeddingLayer '%s': tokens must be positive",
                     this->name().c_str()));
    if (tie_factor != 1 && tie_factor != 2)
        fatal(strfmt("TokenEmbeddingLayer '%s': tie_factor must be 1 or 2",
                     this->name().c_str()));
}

double
TokenEmbeddingLayer::paramCount() const
{
    return static_cast<double>(vocabSize_) * static_cast<double>(hidden_) *
        tieFactor_;
}

double
TokenEmbeddingLayer::forwardFlopsPerSample() const
{
    // Lookup itself is copy-only; negligible adds.
    return static_cast<double>(hidden_) * tokensPerSample_;
}

double
TokenEmbeddingLayer::lookupBytesPerSample() const
{
    return static_cast<double>(hidden_) * tokensPerSample_ * 4.0;
}

double
TokenEmbeddingLayer::outputBytesPerSample(double dtype_bytes) const
{
    return static_cast<double>(hidden_) * tokensPerSample_ * dtype_bytes;
}

std::unique_ptr<Layer>
TokenEmbeddingLayer::clone() const
{
    return std::make_unique<TokenEmbeddingLayer>(*this);
}

// --- AttentionLayer -----------------------------------------------------------

AttentionLayer::AttentionLayer(std::string name, LayerClass cls,
                               long hidden, long num_heads,
                               long context_length, long kv_heads)
    : Layer(std::move(name), cls), hidden_(hidden), numHeads_(num_heads),
      contextLength_(context_length),
      kvHeads_(kv_heads > 0 ? kv_heads : num_heads)
{
    if (hidden < 1 || num_heads < 1 || context_length < 1)
        fatal(strfmt("AttentionLayer '%s': non-positive geometry",
                     this->name().c_str()));
    if (hidden % num_heads != 0)
        fatal(strfmt("AttentionLayer '%s': hidden %% num_heads != 0",
                     this->name().c_str()));
}

double
AttentionLayer::paramCount() const
{
    double h = static_cast<double>(hidden_);
    double head_dim = h / static_cast<double>(numHeads_);
    double kv_width = head_dim * static_cast<double>(kvHeads_);
    // Q and output projections are h x h; K and V shrink under GQA.
    return 2.0 * h * h + 2.0 * h * kv_width;
}

double
AttentionLayer::forwardFlopsPerSample() const
{
    double h = static_cast<double>(hidden_);
    double ctx = static_cast<double>(contextLength_);
    double proj = 2.0 * paramCount() * ctx; // GEMM: 2 FLOPs per weight.
    // Scores (QK^T) and weighted values: 2 * 2 * ctx^2 * h, causal
    // masking halves the effective score work.
    double quad = 2.0 * ctx * ctx * h;
    return proj + quad;
}

double
AttentionLayer::outputBytesPerSample(double dtype_bytes) const
{
    return static_cast<double>(hidden_) *
        static_cast<double>(contextLength_) * dtype_bytes;
}

double
AttentionLayer::activationMemoryBytesPerSample(double dtype_bytes) const
{
    // Q, K, V, output, residual: ~5 h-wide tensors per token
    // (flash-attention style; the ctx^2 score matrix is not retained).
    return 5.0 * static_cast<double>(hidden_) *
        static_cast<double>(contextLength_) * dtype_bytes;
}

std::unique_ptr<Layer>
AttentionLayer::clone() const
{
    return std::make_unique<AttentionLayer>(*this);
}

// --- FeedForwardLayer ---------------------------------------------------------

FeedForwardLayer::FeedForwardLayer(std::string name, LayerClass cls,
                                   long hidden, long ffn_dim,
                                   long context_length, int num_matrices)
    : Layer(std::move(name), cls), hidden_(hidden), ffnDim_(ffn_dim),
      contextLength_(context_length), numMatrices_(num_matrices)
{
    if (hidden < 1 || ffn_dim < 1 || context_length < 1)
        fatal(strfmt("FeedForwardLayer '%s': non-positive geometry",
                     this->name().c_str()));
    if (num_matrices < 2 || num_matrices > 3)
        fatal(strfmt("FeedForwardLayer '%s': num_matrices must be 2 or 3",
                     this->name().c_str()));
}

double
FeedForwardLayer::paramCount() const
{
    return static_cast<double>(numMatrices_) *
        static_cast<double>(hidden_) * static_cast<double>(ffnDim_);
}

double
FeedForwardLayer::forwardFlopsPerSample() const
{
    return 2.0 * paramCount() * static_cast<double>(contextLength_);
}

double
FeedForwardLayer::outputBytesPerSample(double dtype_bytes) const
{
    return static_cast<double>(hidden_) *
        static_cast<double>(contextLength_) * dtype_bytes;
}

double
FeedForwardLayer::activationMemoryBytesPerSample(double dtype_bytes) const
{
    // Input + ffn intermediate(s) + output per token.
    double elems = static_cast<double>(hidden_) * 2.0 +
        static_cast<double>(ffnDim_) * (numMatrices_ - 1);
    return elems * static_cast<double>(contextLength_) * dtype_bytes;
}

std::unique_ptr<Layer>
FeedForwardLayer::clone() const
{
    return std::make_unique<FeedForwardLayer>(*this);
}

// --- MoeFeedForwardLayer ------------------------------------------------------

MoeFeedForwardLayer::MoeFeedForwardLayer(std::string name, LayerClass cls,
                                         long hidden, long ffn_dim,
                                         long context_length,
                                         int num_experts, int active_experts,
                                         int num_matrices)
    : Layer(std::move(name), cls), hidden_(hidden), ffnDim_(ffn_dim),
      contextLength_(context_length), numExperts_(num_experts),
      activeExperts_(active_experts), numMatrices_(num_matrices)
{
    if (hidden < 1 || ffn_dim < 1 || context_length < 1)
        fatal(strfmt("MoeFeedForwardLayer '%s': non-positive geometry",
                     this->name().c_str()));
    if (num_experts < 1 || active_experts < 1 ||
        active_experts > num_experts) {
        fatal(strfmt("MoeFeedForwardLayer '%s': need 1 <= active <= experts",
                     this->name().c_str()));
    }
    if (num_matrices < 2 || num_matrices > 3)
        fatal(strfmt("MoeFeedForwardLayer '%s': num_matrices must be 2 or 3",
                     this->name().c_str()));
}

double
MoeFeedForwardLayer::paramCount() const
{
    // Capacity scales with all experts.
    return static_cast<double>(numExperts_) *
        static_cast<double>(numMatrices_) * static_cast<double>(hidden_) *
        static_cast<double>(ffnDim_);
}

double
MoeFeedForwardLayer::forwardFlopsPerSample() const
{
    // FLOPs scale only with the active experts per token.
    double per_expert = 2.0 * static_cast<double>(numMatrices_) *
        static_cast<double>(hidden_) * static_cast<double>(ffnDim_);
    return static_cast<double>(activeExperts_) * per_expert *
        static_cast<double>(contextLength_);
}

double
MoeFeedForwardLayer::outputBytesPerSample(double dtype_bytes) const
{
    return static_cast<double>(hidden_) *
        static_cast<double>(contextLength_) * dtype_bytes;
}

double
MoeFeedForwardLayer::activationMemoryBytesPerSample(
    double dtype_bytes) const
{
    double elems = static_cast<double>(hidden_) * 2.0 +
        static_cast<double>(ffnDim_) * (numMatrices_ - 1) *
        static_cast<double>(activeExperts_);
    return elems * static_cast<double>(contextLength_) * dtype_bytes;
}

double
MoeFeedForwardLayer::routedBytesPerSample(double dtype_bytes) const
{
    // Each token's activations travel to its active experts.
    return static_cast<double>(activeExperts_) *
        static_cast<double>(hidden_) *
        static_cast<double>(contextLength_) * dtype_bytes;
}

std::unique_ptr<Layer>
MoeFeedForwardLayer::clone() const
{
    return std::make_unique<MoeFeedForwardLayer>(*this);
}

// --- InteractionLayer ---------------------------------------------------------

InteractionLayer::InteractionLayer(std::string name, long num_features,
                                   long feature_dim, long output_dim)
    : Layer(std::move(name), LayerClass::BaseDense),
      numFeatures_(num_features), featureDim_(feature_dim),
      outputDim_(output_dim)
{
    if (num_features < 1 || feature_dim < 1 || output_dim < 1)
        fatal(strfmt("InteractionLayer '%s': non-positive geometry",
                     this->name().c_str()));
}

double
InteractionLayer::forwardFlopsPerSample() const
{
    // Pairwise dot products: F^2/2 pairs x 2*dim FLOPs each.
    double f = static_cast<double>(numFeatures_);
    return f * f * static_cast<double>(featureDim_);
}

double
InteractionLayer::outputBytesPerSample(double dtype_bytes) const
{
    return static_cast<double>(outputDim_) * dtype_bytes;
}

std::unique_ptr<Layer>
InteractionLayer::clone() const
{
    return std::make_unique<InteractionLayer>(*this);
}

} // namespace madmax
