/**
 * @file
 * Model zoo: the suite of large ML models evaluated in the paper
 * (Table II) plus the ViT family used for validation (Fig. 8).
 *
 * Internal geometries of the production DLRMs are proprietary; the
 * geometries here are chosen so that each model's *aggregate*
 * characteristics — parameter count, forward FLOPs per sample/token,
 * sparse-lookup bytes per sample — match the published Table II values
 * (see tests/model/test_model_zoo.cc for the tolerance checks).
 */

#ifndef MADMAX_MODEL_MODEL_ZOO_HH
#define MADMAX_MODEL_MODEL_ZOO_HH

#include <string>
#include <vector>

#include "model/model_desc.hh"

namespace madmax::model_zoo
{

/** @name Recommendation models (Table II, left half) */
/// @{
ModelDesc dlrmA();            ///< 793B params, 638M FLOPs/sample.
ModelDesc dlrmATransformer(); ///< 795B params, 2.6B FLOPs/sample, seq 80.
ModelDesc dlrmAMoe();         ///< 957M FLOPs/sample, 16 experts (2 active).
ModelDesc dlrmB();            ///< 332B params, 60M FLOPs/sample.
ModelDesc dlrmBTransformer(); ///< 333B params, 2.1B FLOPs/sample.
ModelDesc dlrmBMoe();         ///< 90M FLOPs/sample.
/// @}

/** @name LLMs (Table II, right half) */
/// @{
ModelDesc gpt3();      ///< 175B params, 350B FLOPs/token, ctx 2048.
ModelDesc llama65b();  ///< 65.2B params, 130.4B FLOPs/token, ctx 2048.
ModelDesc llama2_70b();///< 70B params (GQA), 140B FLOPs/token, ctx 4096.

/**
 * LLaMA2-70B architecture with a custom context length (Fig. 15's 8K
 * point doubles the base context while holding the architecture).
 */
ModelDesc llama2WithContext(long context_length);

/**
 * @name Serving-class LLaMA2 sizes
 * The 7B/13B checkpoints everyone actually deploys (no GQA — full KV
 * heads, which is exactly what makes their KV caches grow fast and
 * decode go memory-bound). Default global batch is a serving batch
 * (256 in-flight sequences), not a training batch.
 */
/// @{
ModelDesc llama2_7b(long context_length = 4096);  ///< 32L, h=4096.
ModelDesc llama2_13b(long context_length = 4096); ///< 40L, h=5120.
/// @}

ModelDesc llmMoe();    ///< Hypothetical 1.8T params, 16-way MoE, ctx 8192.
/// @}

/** ViT sizes for the Fig. 8 validation study. */
enum class VitSize
{
    L,     ///< ~0.3B params.
    H,     ///< ~0.6B.
    G,     ///< ~1.8B.
    B22,   ///< ~22B.
    B120,  ///< ~120B.
};

/**
 * Vision Transformer on 224x224 images with 16x16 patches (197-token
 * sequences).
 *
 * @param size Model scale.
 * @param global_batch Global batch size (paper uses 2K or 4K).
 */
ModelDesc vit(VitSize size, long global_batch);

std::string toString(VitSize size);

/** All ten Table II models in paper column order (for Fig. 10). */
std::vector<ModelDesc> tableIISuite();

} // namespace madmax::model_zoo

#endif // MADMAX_MODEL_MODEL_ZOO_HH
