/**
 * @file
 * ML model layers as discrete blocks (§IV-A). Each layer reports the
 * quantities the performance model needs:
 *
 *  - parameter count (capacity / memory model),
 *  - forward FLOPs per sample (compute blocks),
 *  - HBM lookup traffic per sample (embedding bags),
 *  - output activation bytes per sample (TP partial sums, All2All
 *    redistribution, MoE routing volume),
 *  - retained activation memory per sample (training footprint).
 *
 * A "sample" is one training example: a (dense, sparse) record for
 * recommendation models, a full context-length sequence for LLMs.
 */

#ifndef MADMAX_MODEL_LAYER_HH
#define MADMAX_MODEL_LAYER_HH

#include <memory>
#include <string>
#include <vector>

namespace madmax
{

/** Concrete layer flavor; used for trace labels and cost dispatch. */
enum class LayerKind
{
    Mlp,             ///< Stack of fully-connected layers.
    EmbeddingBag,    ///< Sharded sparse-feature tables with pooling.
    TokenEmbedding,  ///< LLM word-embedding lookup (one row per token).
    Attention,       ///< Self-attention (projections + score/value).
    FeedForward,     ///< Transformer FFN block.
    MoeFeedForward,  ///< Mixture-of-experts FFN (top-k routing).
    Interaction,     ///< DLRM feature-interaction (concat/dot-product).
};

/**
 * Strategy-assignment granularity: the paper applies one
 * parallelization strategy per layer *class* (e.g. "(TP, DDP) for base
 * dense layers, sharding for embeddings").
 */
enum class LayerClass
{
    SparseEmbedding, ///< Trillion-parameter DLRM tables; shard-only.
    DenseEmbedding,  ///< LLM word embeddings; small enough to replicate.
    BaseDense,       ///< Bottom/top MLPs, interactions, LM heads.
    Transformer,     ///< Attention + FFN blocks.
    MoE,             ///< Expert FFN blocks.
};

std::string toString(LayerKind kind);
std::string toString(LayerClass cls);

/**
 * Abstract layer. Concrete layers are immutable after construction;
 * the graph owns them via unique_ptr and hands out const references.
 */
class Layer
{
  public:
    Layer(std::string name, LayerClass cls);
    virtual ~Layer() = default;

    const std::string &name() const { return name_; }
    LayerClass layerClass() const { return class_; }

    virtual LayerKind kind() const = 0;

    /** Trainable parameter element count. */
    virtual double paramCount() const = 0;

    /** Forward-pass FLOPs for one sample. */
    virtual double forwardFlopsPerSample() const = 0;

    /**
     * HBM bytes touched by sparse lookups for one sample (0 for dense
     * layers, whose traffic is folded into the compute-utilization
     * derating).
     */
    virtual double lookupBytesPerSample() const { return 0.0; }

    /**
     * Output activation bytes for one sample at @p dtype_bytes element
     * size; the communication volume unit for TP AllReduce, embedding
     * All2All, and MoE routing.
     */
    virtual double outputBytesPerSample(double dtype_bytes) const = 0;

    /**
     * Activation bytes retained from forward to backward pass per
     * sample (training memory model).
     */
    virtual double
    activationMemoryBytesPerSample(double dtype_bytes) const
    {
        return outputBytesPerSample(dtype_bytes);
    }

    /**
     * Partial-sum bytes a TP group AllReduces per sample. Transformer
     * blocks use Megatron-style column/row splits and only reduce the
     * block output; naive multi-layer MLP stacks reduce at every
     * internal layer boundary (overridden by MlpLayer).
     */
    virtual double tpCommBytesPerSample(double dtype_bytes) const
    {
        return outputBytesPerSample(dtype_bytes);
    }

    virtual std::unique_ptr<Layer> clone() const = 0;

  private:
    std::string name_;
    LayerClass class_;
};

/**
 * A stack of fully-connected layers, e.g. DLRM bottom/top MLPs or an
 * LLM output head. dims = {in, h1, ..., out}.
 */
class MlpLayer : public Layer
{
  public:
    /**
     * @param name Layer instance name (trace label).
     * @param cls Strategy class (normally BaseDense).
     * @param dims Layer widths including input: {in, h1, ..., out};
     *        needs at least two entries.
     * @param tokens_per_sample Number of positions each sample pushes
     *        through the stack (1 for DLRM, context length for an LM
     *        head).
     */
    MlpLayer(std::string name, LayerClass cls, std::vector<long> dims,
             double tokens_per_sample = 1.0);

    LayerKind kind() const override { return LayerKind::Mlp; }
    double paramCount() const override;
    double forwardFlopsPerSample() const override;
    double outputBytesPerSample(double dtype_bytes) const override;
    double
    activationMemoryBytesPerSample(double dtype_bytes) const override;

    /** Naive TP reduces partial sums at every layer boundary. */
    double tpCommBytesPerSample(double dtype_bytes) const override
    {
        return activationMemoryBytesPerSample(dtype_bytes);
    }

    std::unique_ptr<Layer> clone() const override;

    const std::vector<long> &dims() const { return dims_; }

  private:
    std::vector<long> dims_;
    double tokensPerSample_;
};

/**
 * DLRM sparse-feature embedding tables with sum/mean pooling. Tables
 * are modeled in aggregate: numTables identical tables of rowsPerTable
 * x embeddingDim, with avgPooling lookups per table per sample.
 */
class EmbeddingBagLayer : public Layer
{
  public:
    /**
     * @param avg_pooling Average lookups per table per sample; may be
     *        fractional (optional sparse features average below one).
     * @param bytes_per_element Table element size (fp32 by default).
     * @param hot_device_skew Ratio of the hottest device's lookup
     *        traffic to the mean under the current sharding. 1.0
     *        models the paper's even-sharding assumption; RecShard-
     *        style statistics raise it (§IV-B: "If the number of
     *        lookups are unevenly distributed between GPUs, we can
     *        adjust the lookup bytes per GPU on a per-GPU basis").
     */
    EmbeddingBagLayer(std::string name, long num_tables,
                      long rows_per_table, long embedding_dim,
                      double avg_pooling, double bytes_per_element = 4.0,
                      double hot_device_skew = 1.0);

    LayerKind kind() const override { return LayerKind::EmbeddingBag; }
    double paramCount() const override;
    double forwardFlopsPerSample() const override;
    double lookupBytesPerSample() const override;
    double outputBytesPerSample(double dtype_bytes) const override;
    std::unique_ptr<Layer> clone() const override;

    long numTables() const { return numTables_; }
    long rowsPerTable() const { return rowsPerTable_; }
    long embeddingDim() const { return embeddingDim_; }
    double avgPooling() const { return avgPooling_; }
    double bytesPerElement() const { return bytesPerElement_; }
    double hotDeviceSkew() const { return hotDeviceSkew_; }

  private:
    long numTables_;
    long rowsPerTable_;
    long embeddingDim_;
    double avgPooling_;
    double bytesPerElement_;
    double hotDeviceSkew_;
};

/**
 * LLM token embedding: one row per token, vocabSize x hidden. Includes
 * the (tied or untied) output projection rows if tie_factor == 2.
 */
class TokenEmbeddingLayer : public Layer
{
  public:
    /**
     * @param tokens_per_sample Context length.
     * @param tie_factor 1 for tied input/output embeddings, 2 when the
     *        output projection is a separate matrix counted here.
     */
    TokenEmbeddingLayer(std::string name, long vocab_size, long hidden,
                        double tokens_per_sample, int tie_factor = 1);

    LayerKind kind() const override { return LayerKind::TokenEmbedding; }
    double paramCount() const override;
    double forwardFlopsPerSample() const override;
    double lookupBytesPerSample() const override;
    double outputBytesPerSample(double dtype_bytes) const override;
    std::unique_ptr<Layer> clone() const override;

    long vocabSize() const { return vocabSize_; }
    long hidden() const { return hidden_; }

  private:
    long vocabSize_;
    long hidden_;
    double tokensPerSample_;
    int tieFactor_;
};

/**
 * Multi-head self-attention: four h x h projections (or GQA-shrunken
 * K/V) plus the quadratic score/value computation over the context.
 */
class AttentionLayer : public Layer
{
  public:
    /**
     * @param hidden Model width h.
     * @param num_heads Query head count.
     * @param context_length Sequence length the scores run over.
     * @param kv_heads Key/value head count (== num_heads unless GQA).
     */
    AttentionLayer(std::string name, LayerClass cls, long hidden,
                   long num_heads, long context_length, long kv_heads = 0);

    LayerKind kind() const override { return LayerKind::Attention; }
    double paramCount() const override;
    double forwardFlopsPerSample() const override;
    double outputBytesPerSample(double dtype_bytes) const override;
    double
    activationMemoryBytesPerSample(double dtype_bytes) const override;
    std::unique_ptr<Layer> clone() const override;

    long hidden() const { return hidden_; }
    long contextLength() const { return contextLength_; }
    long numHeads() const { return numHeads_; }
    long kvHeads() const { return kvHeads_; }

    /**
     * KV-cache bytes appended per token per sequence by this layer:
     * one K and one V vector of kv_heads x head_dim elements
     * (GQA-shrunken when kv_heads < num_heads).
     */
    double kvBytesPerToken(double bytes_per_element) const
    {
        const double head_dim =
            static_cast<double>(hidden_) / static_cast<double>(numHeads_);
        return 2.0 * static_cast<double>(kvHeads_) * head_dim *
            bytes_per_element;
    }

  private:
    long hidden_;
    long numHeads_;
    long contextLength_;
    long kvHeads_;
};

/**
 * Transformer FFN: numMatrices linear maps between hidden and ffnDim
 * (2 for GELU MLPs, 3 for SwiGLU).
 */
class FeedForwardLayer : public Layer
{
  public:
    FeedForwardLayer(std::string name, LayerClass cls, long hidden,
                     long ffn_dim, long context_length,
                     int num_matrices = 2);

    LayerKind kind() const override { return LayerKind::FeedForward; }
    double paramCount() const override;
    double forwardFlopsPerSample() const override;
    double outputBytesPerSample(double dtype_bytes) const override;
    double
    activationMemoryBytesPerSample(double dtype_bytes) const override;
    std::unique_ptr<Layer> clone() const override;

    long hidden() const { return hidden_; }
    long ffnDim() const { return ffnDim_; }

  private:
    long hidden_;
    long ffnDim_;
    long contextLength_;
    int numMatrices_;
};

/**
 * Mixture-of-experts FFN: numExperts parallel expert FFNs of which
 * activeExperts process each token; capacity scales with all experts,
 * FLOPs only with the active ones, and each token crosses the
 * expert-parallel group twice (dispatch + combine All2All).
 */
class MoeFeedForwardLayer : public Layer
{
  public:
    MoeFeedForwardLayer(std::string name, LayerClass cls, long hidden,
                        long ffn_dim, long context_length,
                        int num_experts, int active_experts,
                        int num_matrices = 2);

    LayerKind kind() const override { return LayerKind::MoeFeedForward; }
    double paramCount() const override;
    double forwardFlopsPerSample() const override;
    double outputBytesPerSample(double dtype_bytes) const override;
    double
    activationMemoryBytesPerSample(double dtype_bytes) const override;
    std::unique_ptr<Layer> clone() const override;

    int numExperts() const { return numExperts_; }
    int activeExperts() const { return activeExperts_; }

    /**
     * Bytes each sample moves through expert dispatch+combine per
     * direction: active_experts copies of the token activations.
     */
    double routedBytesPerSample(double dtype_bytes) const;

  private:
    long hidden_;
    long ffnDim_;
    long contextLength_;
    int numExperts_;
    int activeExperts_;
    int numMatrices_;
};

/**
 * DLRM feature interaction: pairwise dot products between num_features
 * embedding-dim vectors (optionally compressed), no parameters.
 */
class InteractionLayer : public Layer
{
  public:
    InteractionLayer(std::string name, long num_features,
                     long feature_dim, long output_dim);

    LayerKind kind() const override { return LayerKind::Interaction; }
    double paramCount() const override { return 0.0; }
    double forwardFlopsPerSample() const override;
    double outputBytesPerSample(double dtype_bytes) const override;
    std::unique_ptr<Layer> clone() const override;

    long outputDim() const { return outputDim_; }

  private:
    long numFeatures_;
    long featureDim_;
    long outputDim_;
};

} // namespace madmax

#endif // MADMAX_MODEL_LAYER_HH
