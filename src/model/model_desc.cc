#include "model/model_desc.hh"

#include "util/logging.hh"
#include "util/strfmt.hh"

namespace madmax
{

double
ModelDesc::forwardFlopsPerToken() const
{
    return graph.totals().forwardFlopsPerSample /
        static_cast<double>(contextLength);
}

void
ModelDesc::validate() const
{
    if (graph.empty())
        fatal(strfmt("model '%s': empty layer graph", name.c_str()));
    if (globalBatchSize < 1)
        fatal(strfmt("model '%s': globalBatchSize must be >= 1",
                     name.c_str()));
    if (contextLength < 1)
        fatal(strfmt("model '%s': contextLength must be >= 1",
                     name.c_str()));
}

} // namespace madmax
