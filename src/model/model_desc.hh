/**
 * @file
 * A complete workload description on the model side: the layer graph
 * plus the input configuration (global batch, context length, compute
 * data type). Tasks (pre-training / fine-tuning / inference) are
 * orthogonal and live in src/task.
 */

#ifndef MADMAX_MODEL_MODEL_DESC_HH
#define MADMAX_MODEL_MODEL_DESC_HH

#include <string>

#include "hw/device.hh"
#include "model/model_graph.hh"

namespace madmax
{

/**
 * Model + input configuration. "Samples" are training examples: for
 * LLMs one sample is a full context-length sequence, so token-level
 * metrics divide by contextLength.
 */
struct ModelDesc
{
    std::string name;
    ModelGraph graph;

    /** Global (cluster-wide) batch size in samples per iteration. */
    long globalBatchSize = 1;

    /** Tokens per sample; 1 for recommendation models. */
    long contextLength = 1;

    /** Compute/activation precision. */
    DataType computeDtype = DataType::TF32;

    /** Parameter storage precision (optimizer states stay fp32). */
    DataType paramDtype = DataType::FP32;

    /** True if this is a recommendation model (throughput in QPS). */
    bool isRecommendation = false;

    /** Tokens per iteration (= batch x context for LLMs). */
    double tokensPerIteration() const
    {
        return static_cast<double>(globalBatchSize) *
            static_cast<double>(contextLength);
    }

    /** Bytes per parameter element. */
    double paramBytes() const { return bytesOf(paramDtype); }

    /** Bytes per activation element. */
    double activationBytes() const { return bytesOf(computeDtype); }

    /** Forward FLOPs per token (Table II's "FLOPs per sample/token"). */
    double forwardFlopsPerToken() const;

    /** Validate invariants. @throws ConfigError */
    void validate() const;
};

} // namespace madmax

#endif // MADMAX_MODEL_MODEL_DESC_HH
