#include "task/task.hh"

#include "util/logging.hh"
#include "util/strfmt.hh"

namespace madmax
{

std::string
toString(TaskKind kind)
{
    switch (kind) {
      case TaskKind::PreTraining: return "pre-training";
      case TaskKind::FineTuning: return "fine-tuning";
      case TaskKind::Inference: return "inference";
    }
    panic("toString: unknown TaskKind");
}

std::string
toString(FineTuneScope scope)
{
    switch (scope) {
      case FineTuneScope::DenseOnly: return "dense-only";
      case FineTuneScope::EmbeddingOnly: return "embedding-only";
    }
    panic("toString: unknown FineTuneScope");
}

std::string
toString(InferencePhase phase)
{
    switch (phase) {
      case InferencePhase::Batch: return "batch";
      case InferencePhase::Prefill: return "prefill";
      case InferencePhase::Decode: return "decode";
    }
    panic("toString: unknown InferencePhase");
}

TaskSpec
TaskSpec::preTraining()
{
    return TaskSpec{TaskKind::PreTraining, FineTuneScope::DenseOnly};
}

TaskSpec
TaskSpec::inference()
{
    return TaskSpec{TaskKind::Inference, FineTuneScope::DenseOnly};
}

TaskSpec
TaskSpec::fineTuning(FineTuneScope scope)
{
    return TaskSpec{TaskKind::FineTuning, scope};
}

TaskSpec
TaskSpec::prefill()
{
    TaskSpec t = inference();
    t.phase = InferencePhase::Prefill;
    return t;
}

TaskSpec
TaskSpec::decode(long kv_length)
{
    TaskSpec t = inference();
    t.phase = InferencePhase::Decode;
    t.decodeKvLength = kv_length;
    return t;
}

namespace
{

bool
isEmbeddingClass(LayerClass cls)
{
    return cls == LayerClass::SparseEmbedding ||
        cls == LayerClass::DenseEmbedding;
}

} // namespace

bool
TaskSpec::isTrainable(LayerClass cls) const
{
    switch (kind) {
      case TaskKind::PreTraining:
        return true;
      case TaskKind::Inference:
        return false;
      case TaskKind::FineTuning:
        return ftScope == FineTuneScope::EmbeddingOnly
            ? isEmbeddingClass(cls)
            : !isEmbeddingClass(cls);
    }
    panic("isTrainable: unknown TaskKind");
}

double
TaskSpec::backwardFlopsMultiplier(LayerClass cls) const
{
    if (!needsBackward())
        return 0.0;
    // Trainable layers compute both input and weight gradients (~2x
    // forward); frozen layers on the gradient path only propagate
    // input gradients (~1x forward).
    return isTrainable(cls) ? 2.0 : 1.0;
}

double
TaskSpec::gradBytesPerParam(LayerClass cls) const
{
    if (!isTrainable(cls))
        return 0.0;
    if (cls == LayerClass::SparseEmbedding)
        return 0.0; // Row-sparse gradients; not a dense resident buffer.
    return 4.0;     // fp32 gradient accumulator.
}

double
TaskSpec::optimizerBytesPerParam(LayerClass cls) const
{
    if (!isTrainable(cls))
        return 0.0;
    if (cls == LayerClass::SparseEmbedding) {
        // Row-wise adagrad: one fp32 scalar per row. Rows are >= 64
        // elements wide in practice; ~0.06 B/param, call it 0.1.
        return 0.1;
    }
    return 8.0;     // Adam: fp32 momentum + variance.
}

std::string
TaskSpec::toString() const
{
    std::string s = madmax::toString(kind);
    if (kind == TaskKind::FineTuning)
        s += " (" + madmax::toString(ftScope) + ")";
    // Phase-split inference tasks must spell their identity out: the
    // string participates in engine/EvalContext cache keys, and a
    // decode task aliasing a batch task would serve stale costs. The
    // legacy Batch phase stays plain "inference" so every existing
    // report and golden is unchanged.
    if (usesKvCache()) {
        s += " (" + madmax::toString(phase);
        if (phase == InferencePhase::Decode && decodeKvLength > 0)
            s += strfmt("@%ld", decodeKvLength);
        if (kvCapacityTokens > 0)
            s += strfmt(", kv-cap %ld", kvCapacityTokens);
        if (kvBytesPerElement != 2.0)
            s += strfmt(", kv %.3gB/elem", kvBytesPerElement);
        s += ")";
    }
    return s;
}

} // namespace madmax
