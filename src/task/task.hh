/**
 * @file
 * Task semantics (§II-A): pre-training exercises forward + backward
 * passes with full optimizer state; fine-tuning freezes a subset of
 * layers, eliding their weight-gradient compute, gradient
 * communication, and optimizer state; inference is forward-only.
 */

#ifndef MADMAX_TASK_TASK_HH
#define MADMAX_TASK_TASK_HH

#include <string>

#include "model/layer.hh"

namespace madmax
{

enum class TaskKind
{
    PreTraining,
    FineTuning,
    Inference,
};

/** Which layer classes stay trainable during fine-tuning (Fig. 14). */
enum class FineTuneScope
{
    DenseOnly,      ///< Tune MLP/transformer layers; freeze embeddings.
    EmbeddingOnly,  ///< Tune embedding tables; freeze dense layers.
};

/**
 * Which half of an LLM serving request an inference task models.
 * Batch is the legacy whole-forward inference (recommendation
 * ranking, encoder models) — the default, and byte-identical to the
 * pre-phase behavior. Prefill runs the full prompt through the model
 * (compute-bound, writes the KV cache); Decode models one
 * autoregressive token step (memory-bound: reads the weights plus the
 * accumulated KV cache per generated token).
 */
enum class InferencePhase
{
    Batch,
    Prefill,
    Decode,
};

std::string toString(TaskKind kind);
std::string toString(FineTuneScope scope);
std::string toString(InferencePhase phase);

/**
 * A task description. Pure value type; all queries are per layer
 * class so the planner and memory model can treat frozen and
 * trainable layers differently.
 */
struct TaskSpec
{
    TaskKind kind = TaskKind::PreTraining;
    FineTuneScope ftScope = FineTuneScope::DenseOnly;

    /**
     * LLM serving phase; only meaningful for Inference. Batch keeps
     * every legacy code path (no KV cache, whole-context forward).
     */
    InferencePhase phase = InferencePhase::Batch;

    /**
     * KV-cache length in tokens that a Decode step attends over
     * (prompt plus already-generated tokens). 0 means the model's own
     * contextLength. Ignored for Batch/Prefill.
     */
    long decodeKvLength = 0;

    /**
     * KV-cache tokens per sequence to reserve HBM capacity for (the
     * worst-case sequence length admission control plans against).
     * 0 means the model's contextLength. Ignored for Batch.
     */
    long kvCapacityTokens = 0;

    /**
     * Bytes per KV-cache element (2 = fp16/bf16, 1 = fp8-quantized
     * cache). Ignored for Batch.
     */
    double kvBytesPerElement = 2.0;

    /** Convenience factories. */
    static TaskSpec preTraining();
    static TaskSpec inference();
    static TaskSpec fineTuning(FineTuneScope scope);

    /** Inference restricted to the prompt pass (KV cache is written). */
    static TaskSpec prefill();

    /**
     * Inference restricted to one token-generation step against a KV
     * cache of @p kv_length tokens (0 = model context length).
     */
    static TaskSpec decode(long kv_length = 0);

    /** True if any backward pass runs at all. */
    bool needsBackward() const { return kind != TaskKind::Inference; }

    /** True if layers of @p cls receive weight updates. */
    bool isTrainable(LayerClass cls) const;

    /**
     * Backward-pass FLOPs as a multiple of forward FLOPs for a layer
     * of @p cls: 2x when trainable (input + weight gradients), 1x when
     * frozen but on the gradient path (input gradients only), 0 for
     * inference.
     */
    double backwardFlopsMultiplier(LayerClass cls) const;

    /**
     * Gradient bytes per parameter held in device memory (0 when the
     * class is frozen or running inference; sparse embedding gradients
     * are row-sparse and folded into the activation working set).
     */
    double gradBytesPerParam(LayerClass cls) const;

    /**
     * Optimizer-state bytes per parameter: Adam for dense layers
     * (fp32 momentum + variance), row-wise adagrad for sparse
     * embedding tables (one fp32 scalar per row, amortized to ~0 per
     * element).
     */
    double optimizerBytesPerParam(LayerClass cls) const;

    /** True if forward activations must be retained for backward. */
    bool retainsActivations() const { return needsBackward(); }

    /** True if the task holds a KV cache in device memory. */
    bool usesKvCache() const
    {
        return kind == TaskKind::Inference &&
            phase != InferencePhase::Batch;
    }

    std::string toString() const;
};

} // namespace madmax

#endif // MADMAX_TASK_TASK_HH
