/**
 * @file
 * Loaders for the three JSON inputs the paper specifies (§IV-A):
 *
 *  1. model architecture via layer-specific configurations,
 *  2. distributed system specifications,
 *  3. task and parallelization strategy.
 *
 * Sample configs ship under configs/. Writers are provided so specs
 * round-trip (useful for generating sweeps programmatically).
 */

#ifndef MADMAX_CONFIG_CONFIG_LOADER_HH
#define MADMAX_CONFIG_CONFIG_LOADER_HH

#include <string>

#include "config/json.hh"
#include "core/inference_model.hh"
#include "hw/cluster.hh"
#include "model/model_desc.hh"
#include "parallel/strategy.hh"
#include "task/task.hh"

namespace madmax
{

/** Task + strategy file contents. */
struct TaskConfig
{
    TaskSpec task;
    ParallelPlan plan;
};

/**
 * Build a ModelDesc from a model-architecture JSON object.
 *
 * Recognized "type" values:
 *  - "dlrm": embedding {tables, rows_per_table, dim, pooling},
 *    bottom_mlp, top_mlp, optional transformer {layers, hidden,
 *    heads, seq, ffn}, optional moe {experts, active, hidden, ffn},
 *    global_batch.
 *  - "llm": vocab, hidden, layers, heads, ffn, context, global_batch,
 *    optional kv_heads, ffn_matrices, moe {experts, active}.
 *  - "zoo": name of a predefined model (Table II / ViT).
 *
 * @throws ConfigError on unknown type or missing fields.
 */
ModelDesc loadModel(const JsonValue &json);

/**
 * Build a ClusterSpec from a system-specification JSON object.
 *
 * Homogeneous clusters give "device" + "devices_per_node" +
 * "num_nodes" (plus optional "topology"). Mixed-generation clusters
 * give "device_groups" instead: an array of {name, device,
 * devices_per_node, num_nodes, optional intra_fabric}, stitched at
 * the cluster-level "inter_fabric" (docs/inference.md §schema).
 */
ClusterSpec loadCluster(const JsonValue &json);

/**
 * Build task + parallelization plan from a task JSON object. The
 * inference task takes an optional "phase" ("batch" | "prefill" |
 * "decode") plus KV knobs ("decode_kv_tokens", "kv_capacity_tokens",
 * "kv_bytes_per_element").
 */
TaskConfig loadTask(const JsonValue &json);

/**
 * Build an InferenceWorkload from a serving-workload JSON object:
 * optional "prompt_tokens", "generate_tokens", "kv_bytes_per_element",
 * "prefill_group", "decode_group". @throws ConfigError on
 * non-positive generate_tokens or KV bytes.
 */
InferenceWorkload loadWorkload(const JsonValue &json);

/** File-path conveniences. */
ModelDesc loadModelFile(const std::string &path);
ClusterSpec loadClusterFile(const std::string &path);
TaskConfig loadTaskFile(const std::string &path);
InferenceWorkload loadWorkloadFile(const std::string &path);

/** Serializers (round-trip with the loaders). */
JsonValue toJson(const ClusterSpec &cluster);
JsonValue toJson(const TaskConfig &config);
JsonValue toJson(const InferenceWorkload &workload);

/**
 * Parse a strategy string in paper notation: "(TP, DDP)", "(FSDP)",
 * "MP", case-insensitive. @throws ConfigError on unknown names.
 */
HierStrategy parseStrategy(const std::string &text);

} // namespace madmax

#endif // MADMAX_CONFIG_CONFIG_LOADER_HH
