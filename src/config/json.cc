#include "config/json.hh"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "util/logging.hh"
#include "util/strfmt.hh"

namespace madmax
{

namespace
{

/** Recursive-descent JSON parser over a string view. */
class Parser
{
  public:
    explicit Parser(const std::string &text) : text_(text) {}

    JsonValue
    parseDocument()
    {
        JsonValue v = parseValue();
        skipWs();
        if (pos_ != text_.size())
            fail("trailing characters after JSON document");
        return v;
    }

  private:
    [[noreturn]] void
    fail(const std::string &why) const
    {
        size_t line = 1, col = 1;
        for (size_t i = 0; i < pos_ && i < text_.size(); ++i) {
            if (text_[i] == '\n') {
                ++line;
                col = 1;
            } else {
                ++col;
            }
        }
        fatal(strfmt("JSON parse error at line %zu col %zu: %s", line, col,
                     why.c_str()));
    }

    void
    skipWs()
    {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_]))) {
            ++pos_;
        }
    }

    char
    peek()
    {
        skipWs();
        if (pos_ >= text_.size())
            fail("unexpected end of input");
        return text_[pos_];
    }

    void
    expect(char c)
    {
        if (peek() != c)
            fail(strfmt("expected '%c'", c));
        ++pos_;
    }

    bool
    consumeLiteral(const char *lit)
    {
        size_t len = std::char_traits<char>::length(lit);
        if (text_.compare(pos_, len, lit) == 0) {
            pos_ += len;
            return true;
        }
        return false;
    }

    /**
     * Depth cap shared by parseObject/parseArray: parsing recurses
     * per nesting level, and the serving layer feeds network input
     * to this parser — an unbounded '[[[[...' body must be a
     * ConfigError, not a stack overflow that kills the resident
     * process. 200 levels is far beyond any real config and well
     * within any thread's stack.
     */
    void
    enterContainer()
    {
        if (depth_ >= 200)
            fail("nesting deeper than 200 levels");
        ++depth_;
    }

    JsonValue
    parseValue()
    {
        switch (peek()) {
          case '{': return parseObject();
          case '[': return parseArray();
          case '"': return JsonValue(parseString());
          case 't':
            if (consumeLiteral("true"))
                return JsonValue(true);
            fail("bad literal");
          case 'f':
            if (consumeLiteral("false"))
                return JsonValue(false);
            fail("bad literal");
          case 'n':
            if (consumeLiteral("null"))
                return JsonValue(nullptr);
            fail("bad literal");
          default:
            return parseNumber();
        }
    }

    JsonValue
    parseObject()
    {
        enterContainer();
        expect('{');
        JsonValue::Object obj;
        if (peek() == '}') {
            ++pos_;
            --depth_;
            return JsonValue(std::move(obj));
        }
        while (true) {
            if (peek() != '"')
                fail("object key must be a string");
            std::string key = parseString();
            expect(':');
            obj.emplace(std::move(key), parseValue());
            char c = peek();
            if (c == ',') {
                ++pos_;
                continue;
            }
            if (c == '}') {
                ++pos_;
                --depth_;
                return JsonValue(std::move(obj));
            }
            fail("expected ',' or '}' in object");
        }
    }

    JsonValue
    parseArray()
    {
        enterContainer();
        expect('[');
        JsonValue::Array arr;
        if (peek() == ']') {
            ++pos_;
            --depth_;
            return JsonValue(std::move(arr));
        }
        while (true) {
            arr.push_back(parseValue());
            char c = peek();
            if (c == ',') {
                ++pos_;
                continue;
            }
            if (c == ']') {
                ++pos_;
                --depth_;
                return JsonValue(std::move(arr));
            }
            fail("expected ',' or ']' in array");
        }
    }

    std::string
    parseString()
    {
        expect('"');
        std::string out;
        while (true) {
            if (pos_ >= text_.size())
                fail("unterminated string");
            char c = text_[pos_++];
            if (c == '"')
                return out;
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos_ >= text_.size())
                fail("unterminated escape");
            char e = text_[pos_++];
            switch (e) {
              case '"': out += '"'; break;
              case '\\': out += '\\'; break;
              case '/': out += '/'; break;
              case 'b': out += '\b'; break;
              case 'f': out += '\f'; break;
              case 'n': out += '\n'; break;
              case 'r': out += '\r'; break;
              case 't': out += '\t'; break;
              case 'u': {
                if (pos_ + 4 > text_.size())
                    fail("truncated \\u escape");
                unsigned code = 0;
                for (int i = 0; i < 4; ++i) {
                    char h = text_[pos_++];
                    code <<= 4;
                    if (h >= '0' && h <= '9')
                        code += static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        code += static_cast<unsigned>(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        code += static_cast<unsigned>(h - 'A' + 10);
                    else
                        fail("bad hex digit in \\u escape");
                }
                if (code > 0xFF)
                    fail("\\u escape beyond Latin-1 unsupported");
                out += static_cast<char>(code);
                break;
              }
              default:
                fail("unknown escape");
            }
        }
    }

    JsonValue
    parseNumber()
    {
        skipWs();
        size_t start = pos_;
        if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+'))
            ++pos_;
        bool any = false;
        auto digits = [&]() {
            while (pos_ < text_.size() &&
                   std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
                ++pos_;
                any = true;
            }
        };
        digits();
        if (pos_ < text_.size() && text_[pos_] == '.') {
            ++pos_;
            digits();
        }
        if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
            ++pos_;
            if (pos_ < text_.size() &&
                (text_[pos_] == '-' || text_[pos_] == '+')) {
                ++pos_;
            }
            digits();
        }
        if (!any)
            fail("invalid number");
        double d = 0.0;
        try {
            d = std::stod(text_.substr(start, pos_ - start));
        } catch (const std::exception &) {
            fail("number out of range");
        }
        return JsonValue(d);
    }

    const std::string &text_;
    size_t pos_ = 0;
    int depth_ = 0; ///< Current container nesting (capped at 200).
};

std::string
escapeString(const std::string &in)
{
    std::string out = "\"";
    for (char c : in) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          case '\r': out += "\\r"; break;
          default: out += c;
        }
    }
    out += '"';
    return out;
}

std::string
dumpNumber(double d)
{
    if (d == static_cast<double>(static_cast<long long>(d)) &&
        std::abs(d) < 1e15) {
        return strfmt("%lld", static_cast<long long>(d));
    }
    return strfmt("%.17g", d);
}

} // namespace

JsonValue
JsonValue::parse(const std::string &text)
{
    return Parser(text).parseDocument();
}

JsonValue
JsonValue::parseFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        fatal("cannot open JSON file: " + path);
    std::ostringstream ss;
    ss << in.rdbuf();
    return parse(ss.str());
}

bool JsonValue::isNull() const
{
    return std::holds_alternative<std::nullptr_t>(value_);
}
bool JsonValue::isBool() const
{
    return std::holds_alternative<bool>(value_);
}
bool JsonValue::isNumber() const
{
    return std::holds_alternative<double>(value_);
}
bool JsonValue::isString() const
{
    return std::holds_alternative<std::string>(value_);
}
bool JsonValue::isArray() const
{
    return std::holds_alternative<Array>(value_);
}
bool JsonValue::isObject() const
{
    return std::holds_alternative<Object>(value_);
}

bool
JsonValue::asBool() const
{
    if (!isBool())
        fatal("JSON value is not a boolean");
    return std::get<bool>(value_);
}

double
JsonValue::asDouble() const
{
    if (!isNumber())
        fatal("JSON value is not a number");
    return std::get<double>(value_);
}

long
JsonValue::asLong() const
{
    return static_cast<long>(asDouble());
}

const std::string &
JsonValue::asString() const
{
    if (!isString())
        fatal("JSON value is not a string");
    return std::get<std::string>(value_);
}

const JsonValue::Array &
JsonValue::asArray() const
{
    if (!isArray())
        fatal("JSON value is not an array");
    return std::get<Array>(value_);
}

const JsonValue::Object &
JsonValue::asObject() const
{
    if (!isObject())
        fatal("JSON value is not an object");
    return std::get<Object>(value_);
}

const JsonValue &
JsonValue::at(const std::string &key) const
{
    const Object &obj = asObject();
    auto it = obj.find(key);
    if (it == obj.end())
        fatal("missing JSON key: " + key);
    return it->second;
}

bool
JsonValue::has(const std::string &key) const
{
    return isObject() && asObject().count(key) > 0;
}

double
JsonValue::numberOr(const std::string &key, double fallback) const
{
    return has(key) ? at(key).asDouble() : fallback;
}

bool
JsonValue::boolOr(const std::string &key, bool fallback) const
{
    return has(key) ? at(key).asBool() : fallback;
}

std::string
JsonValue::stringOr(const std::string &key,
                    const std::string &fallback) const
{
    return has(key) ? at(key).asString() : fallback;
}

const JsonValue &
JsonValue::at(size_t idx) const
{
    const Array &arr = asArray();
    if (idx >= arr.size())
        fatal(strfmt("JSON array index %zu out of range", idx));
    return arr[idx];
}

size_t
JsonValue::size() const
{
    if (isArray())
        return std::get<Array>(value_).size();
    if (isObject())
        return std::get<Object>(value_).size();
    fatal("JSON size() on non-container");
}

JsonValue &
JsonValue::set(const std::string &key, JsonValue v)
{
    if (!isObject())
        value_ = Object{};
    std::get<Object>(value_)[key] = std::move(v);
    return *this;
}

JsonValue &
JsonValue::append(JsonValue v)
{
    if (!isArray())
        value_ = Array{};
    std::get<Array>(value_).push_back(std::move(v));
    return *this;
}

void
JsonValue::dumpTo(std::string &out, int indent, int depth) const
{
    auto newline = [&](int d) {
        if (indent > 0) {
            out += '\n';
            out.append(static_cast<size_t>(indent * d), ' ');
        }
    };

    if (isNull()) {
        out += "null";
    } else if (isBool()) {
        out += std::get<bool>(value_) ? "true" : "false";
    } else if (isNumber()) {
        out += dumpNumber(std::get<double>(value_));
    } else if (isString()) {
        out += escapeString(std::get<std::string>(value_));
    } else if (isArray()) {
        const Array &arr = std::get<Array>(value_);
        if (arr.empty()) {
            out += "[]";
            return;
        }
        out += '[';
        for (size_t i = 0; i < arr.size(); ++i) {
            if (i)
                out += ',';
            newline(depth + 1);
            arr[i].dumpTo(out, indent, depth + 1);
        }
        newline(depth);
        out += ']';
    } else {
        const Object &obj = std::get<Object>(value_);
        if (obj.empty()) {
            out += "{}";
            return;
        }
        out += '{';
        bool first = true;
        for (const auto &[k, v] : obj) {
            if (!first)
                out += ',';
            first = false;
            newline(depth + 1);
            out += escapeString(k);
            out += indent > 0 ? ": " : ":";
            v.dumpTo(out, indent, depth + 1);
        }
        newline(depth);
        out += '}';
    }
}

std::string
JsonValue::dump(int indent) const
{
    std::string out;
    dumpTo(out, indent, 0);
    return out;
}

} // namespace madmax
