#include "config/config_loader.hh"

#include <algorithm>
#include <memory>

#include "hw/hw_zoo.hh"
#include "hw/topology.hh"
#include "model/model_zoo.hh"
#include "util/logging.hh"
#include "util/strfmt.hh"
#include "util/units.hh"

namespace madmax
{

namespace
{

std::string
lower(std::string s)
{
    std::transform(s.begin(), s.end(), s.begin(),
                   [](unsigned char c) { return std::tolower(c); });
    return s;
}

Strategy
parseOneStrategy(const std::string &raw)
{
    std::string s = lower(raw);
    if (s == "ddp")
        return Strategy::DDP;
    if (s == "fsdp")
        return Strategy::FSDP;
    if (s == "tp")
        return Strategy::TP;
    if (s == "mp" || s == "shard" || s == "sharding")
        return Strategy::MP;
    fatal("unknown strategy name: " + raw);
}

std::vector<long>
parseDims(const JsonValue &json)
{
    std::vector<long> dims;
    for (const JsonValue &v : json.asArray())
        dims.push_back(v.asLong());
    return dims;
}

DataType
parseDtype(const std::string &raw)
{
    std::string s = lower(raw);
    if (s == "fp32")
        return DataType::FP32;
    if (s == "tf32")
        return DataType::TF32;
    if (s == "fp16")
        return DataType::FP16;
    if (s == "bf16")
        return DataType::BF16;
    fatal("unknown dtype: " + raw);
}

FabricKind
parseFabric(const std::string &raw, const char *field)
{
    std::string s = lower(raw);
    if (s == "roce")
        return FabricKind::RoCE;
    if (s == "infiniband" || s == "ib")
        return FabricKind::InfiniBand;
    if (s == "ethernet" || s == "efa")
        return FabricKind::Ethernet;
    if (s == "nvlink")
        return FabricKind::NVLink;
    if (s == "xgmi")
        return FabricKind::XGMI;
    if (s == "pcie")
        return FabricKind::PCIe;
    fatal(strfmt("unknown %s: %s", field, raw.c_str()));
}

std::string
fabricName(FabricKind kind)
{
    switch (kind) {
      case FabricKind::RoCE: return "roce";
      case FabricKind::InfiniBand: return "infiniband";
      case FabricKind::Ethernet: return "ethernet";
      case FabricKind::NVLink: return "nvlink";
      case FabricKind::XGMI: return "xgmi";
      case FabricKind::PCIe: return "pcie";
    }
    return "infiniband";
}

DeviceSpec
loadDevice(const JsonValue &dev)
{
    using namespace units;
    DeviceSpec d;
    d.name = dev.stringOr("name", "custom-device");
    d.peakFlopsTensor16 = tflops(dev.at("peak_tflops_16").asDouble());
    d.peakFlopsTf32 =
        tflops(dev.numberOr("peak_tflops_tf32",
                            dev.at("peak_tflops_16").asDouble() / 2.0));
    d.peakFlopsFp32 = tflops(dev.numberOr("peak_tflops_fp32", 0.0));
    d.hbmCapacity = gib(dev.at("hbm_gib").asDouble());
    d.hbmBandwidth = gBps(dev.at("hbm_gbps").asDouble());
    d.intraNodeBandwidth = gBps(dev.at("intra_node_gbps").asDouble());
    d.interNodeBandwidth = gBps(dev.at("inter_node_gbps").asDouble());
    return d;
}

ModelDesc
loadZooModel(const JsonValue &json)
{
    std::string name = lower(json.at("name").asString());
    if (name == "dlrm-a")
        return model_zoo::dlrmA();
    if (name == "dlrm-a-transformer")
        return model_zoo::dlrmATransformer();
    if (name == "dlrm-a-moe")
        return model_zoo::dlrmAMoe();
    if (name == "dlrm-b")
        return model_zoo::dlrmB();
    if (name == "dlrm-b-transformer")
        return model_zoo::dlrmBTransformer();
    if (name == "dlrm-b-moe")
        return model_zoo::dlrmBMoe();
    if (name == "gpt-3" || name == "gpt3")
        return model_zoo::gpt3();
    if (name == "llama-65b")
        return model_zoo::llama65b();
    if (name == "llama2-70b")
        return model_zoo::llama2_70b();
    // The serving-class models take an optional prompt/context length
    // (the default matches the published 4096-token context).
    if (name == "llama2-7b") {
        return model_zoo::llama2_7b(
            static_cast<long>(json.numberOr("context", 4096)));
    }
    if (name == "llama2-13b") {
        return model_zoo::llama2_13b(
            static_cast<long>(json.numberOr("context", 4096)));
    }
    if (name == "llm-moe")
        return model_zoo::llmMoe();
    fatal("unknown zoo model: " + json.at("name").asString());
}

ModelDesc
loadDlrmModel(const JsonValue &json)
{
    ModelDesc m;
    m.name = json.stringOr("name", "custom-dlrm");
    m.globalBatchSize = json.at("global_batch").asLong();
    m.contextLength = 1;
    m.isRecommendation = true;
    m.computeDtype =
        parseDtype(json.stringOr("compute_dtype", "tf32"));
    m.paramDtype = parseDtype(json.stringOr("param_dtype", "fp32"));

    const JsonValue &emb = json.at("embedding");
    int emb_idx = m.graph.addLayer(std::make_unique<EmbeddingBagLayer>(
        "EMB", emb.at("tables").asLong(),
        emb.at("rows_per_table").asLong(), emb.at("dim").asLong(),
        emb.at("pooling").asDouble()));
    int bot = m.graph.addLayer(std::make_unique<MlpLayer>(
        "Bot_MLP", LayerClass::BaseDense,
        parseDims(json.at("bottom_mlp"))));

    int trunk;
    long trunk_width;
    if (json.has("transformer")) {
        const JsonValue &tr = json.at("transformer");
        long hidden = tr.at("hidden").asLong();
        int prev = -1;
        long layers = tr.at("layers").asLong();
        for (long i = 0; i < layers; ++i) {
            std::vector<int> deps = i == 0 ? std::vector<int>{emb_idx, bot}
                                           : std::vector<int>{prev};
            int attn = m.graph.addLayer(std::make_unique<AttentionLayer>(
                strfmt("Attn_%ld", i), LayerClass::Transformer, hidden,
                tr.at("heads").asLong(), tr.at("seq").asLong()),
                std::move(deps));
            prev = m.graph.addLayer(std::make_unique<FeedForwardLayer>(
                strfmt("FFN_%ld", i), LayerClass::Transformer, hidden,
                tr.at("ffn").asLong(), tr.at("seq").asLong()), {attn});
        }
        trunk = prev;
        trunk_width = hidden;
    } else {
        long out_dim = json.has("top_mlp")
            ? parseDims(json.at("top_mlp")).front()
            : 512;
        trunk = m.graph.addLayer(std::make_unique<InteractionLayer>(
            "Interact", emb.at("tables").asLong() + 1,
            emb.at("dim").asLong(), out_dim), {emb_idx, bot});
        trunk_width = out_dim;
    }

    if (json.has("moe")) {
        const JsonValue &moe = json.at("moe");
        trunk = m.graph.addLayer(std::make_unique<MoeFeedForwardLayer>(
            "MoE_Top", LayerClass::MoE,
            static_cast<long>(moe.numberOr("hidden",
                                           static_cast<double>(trunk_width))),
            moe.at("ffn").asLong(), 1,
            static_cast<int>(moe.at("experts").asLong()),
            static_cast<int>(moe.at("active").asLong())), {trunk});
    }
    if (json.has("top_mlp")) {
        m.graph.addLayer(std::make_unique<MlpLayer>(
            "Top_MLP", LayerClass::BaseDense,
            parseDims(json.at("top_mlp"))), {trunk});
    }
    return m;
}

ModelDesc
loadLlmModel(const JsonValue &json)
{
    ModelDesc m;
    m.name = json.stringOr("name", "custom-llm");
    m.globalBatchSize = json.at("global_batch").asLong();
    m.contextLength = json.at("context").asLong();
    if (m.contextLength < 1) {
        fatal(strfmt("llm model \"%s\": context %ld must be >= 1 — "
                     "the context length sets the attention geometry "
                     "and the serving prompt length (e.g. 4096 for a "
                     "Llama-2-class model)",
                     m.name.c_str(), m.contextLength));
    }
    m.isRecommendation = false;
    m.computeDtype =
        parseDtype(json.stringOr("compute_dtype", "bf16"));
    m.paramDtype = parseDtype(json.stringOr("param_dtype", "bf16"));

    long hidden = json.at("hidden").asLong();
    long ctx = m.contextLength;
    int prev = m.graph.addLayer(std::make_unique<TokenEmbeddingLayer>(
        "Tok_EMB", json.at("vocab").asLong(), hidden,
        static_cast<double>(ctx),
        static_cast<int>(json.numberOr("embedding_tie_factor", 1))));

    long layers = json.at("layers").asLong();
    long heads = json.at("heads").asLong();
    long kv_heads = static_cast<long>(json.numberOr("kv_heads", 0));
    long ffn = json.at("ffn").asLong();
    int matrices = static_cast<int>(json.numberOr("ffn_matrices", 2));

    for (long i = 0; i < layers; ++i) {
        int attn = m.graph.addLayer(std::make_unique<AttentionLayer>(
            strfmt("Attn_%ld", i), LayerClass::Transformer, hidden, heads,
            ctx, kv_heads), {prev});
        if (json.has("moe")) {
            const JsonValue &moe = json.at("moe");
            prev = m.graph.addLayer(std::make_unique<MoeFeedForwardLayer>(
                strfmt("MoE_FFN_%ld", i), LayerClass::MoE, hidden, ffn,
                ctx, static_cast<int>(moe.at("experts").asLong()),
                static_cast<int>(moe.at("active").asLong()), matrices),
                {attn});
        } else {
            prev = m.graph.addLayer(std::make_unique<FeedForwardLayer>(
                strfmt("FFN_%ld", i), LayerClass::Transformer, hidden, ffn,
                ctx, matrices), {attn});
        }
    }
    return m;
}

} // namespace

ModelDesc
loadModel(const JsonValue &json)
{
    std::string type = lower(json.at("type").asString());
    if (type == "zoo")
        return loadZooModel(json);
    if (type == "dlrm")
        return loadDlrmModel(json);
    if (type == "llm")
        return loadLlmModel(json);
    fatal("unknown model type: " + json.at("type").asString());
}

ClusterSpec
loadCluster(const JsonValue &json)
{
    using namespace units;
    ClusterSpec c;
    c.name = json.stringOr("name", "custom-cluster");

    // Mixed-generation clusters describe their pools under
    // "device_groups" and have no flat device fields of their own.
    const bool heterogeneous = json.has("device_groups");
    if (!heterogeneous) {
        c.device = loadDevice(json.at("device"));
        c.devicesPerNode =
            static_cast<int>(json.at("devices_per_node").asLong());
        c.numNodes = static_cast<int>(json.at("num_nodes").asLong());
    } else {
        for (const JsonValue &g : json.at("device_groups").asArray()) {
            DeviceGroup group;
            group.name = g.at("name").asString();
            group.device = loadDevice(g.at("device"));
            group.devicesPerNode =
                static_cast<int>(g.at("devices_per_node").asLong());
            group.numNodes = static_cast<int>(g.at("num_nodes").asLong());
            group.intraFabric = parseFabric(
                g.stringOr("intra_fabric", "nvlink"), "intra_fabric");
            c.groups.push_back(std::move(group));
        }
    }

    c.util.compute = json.numberOr("compute_utilization", 0.70);
    c.util.hbm = json.numberOr("hbm_utilization", 0.80);
    c.util.intraLink = json.numberOr("intra_link_utilization", 0.80);
    c.util.interLink = json.numberOr("inter_link_utilization", 0.65);

    c.interFabric = parseFabric(
        json.stringOr("inter_fabric", "infiniband"), "inter_fabric");

    // Optional hierarchical topology: either a named preset derived
    // from the flat bandwidths above, or an explicit tier stack (see
    // docs/configs.md for the schema).
    if (json.has("topology")) {
        const JsonValue &topo = json.at("topology");
        TopologySpec spec;
        if (topo.has("preset")) {
            std::string preset = lower(topo.at("preset").asString());
            const int rail_nodes = static_cast<int>(
                topo.has("rail_nodes") ? topo.at("rail_nodes").asLong()
                                       : 4);
            if (preset == "flat")
                spec = hw_zoo::flatTopologyPreset(c);
            else if (preset == "dc-rail")
                spec = hw_zoo::dcRailTopology(c, rail_nodes);
            else if (preset == "dc-pod-fleet")
                spec = hw_zoo::dcPodFleetTopology(c, rail_nodes);
            else
                fatal("unknown topology preset: " + preset);
        } else {
            spec.name = topo.stringOr("name", "topology");
            size_t i = 0;
            for (const JsonValue &lv : topo.at("levels").asArray()) {
                TopologyLevel level;
                level.name =
                    lv.stringOr("name", strfmt("tier%zu", i));
                level.fan = static_cast<int>(lv.at("fan").asLong());
                // Bandwidth defaults to the flat effective rate of
                // the matching scope so partial descriptions stay
                // consistent with the device datasheet.
                level.linkBandwidth = gBps(lv.numberOr(
                    "bandwidth_gbps",
                    (i == 0 ? c.effIntraBandwidth()
                            : c.effInterBandwidth()) /
                        1e9));
                if (lv.has("latency_us"))
                    level.linkLatency =
                        lv.at("latency_us").asDouble() * 1e-6;
                level.rails = static_cast<int>(
                    lv.has("rails") ? lv.at("rails").asLong() : 1);
                level.sharers = lv.numberOr("sharers", 1.0);
                spec.levels.push_back(std::move(level));
                ++i;
            }
        }
        c.topology =
            std::make_shared<const TopologySpec>(std::move(spec));
    }

    c.validate();
    return c;
}

HierStrategy
parseStrategy(const std::string &text)
{
    // Strip parentheses and whitespace, split on comma.
    std::string s;
    for (char c : text) {
        if (c != '(' && c != ')' && c != ' ')
            s += c;
    }
    if (s.empty())
        fatal("empty strategy string");
    size_t comma = s.find(',');
    if (comma == std::string::npos)
        return HierStrategy{parseOneStrategy(s)};
    return HierStrategy{parseOneStrategy(s.substr(0, comma)),
                        parseOneStrategy(s.substr(comma + 1))};
}

TaskConfig
loadTask(const JsonValue &json)
{
    TaskConfig cfg;
    std::string kind = lower(json.at("task").asString());
    if (kind == "pre-training" || kind == "pretraining" ||
        kind == "training") {
        cfg.task = TaskSpec::preTraining();
    } else if (kind == "inference" || kind == "prefill" ||
               kind == "decode") {
        // The serving phases parse either as a task shorthand
        // ("task": "prefill") or as "task": "inference" plus an
        // explicit "phase" key; "batch" is the classic whole-context
        // inference pass and stays the default.
        std::string phase =
            kind == "inference" ? lower(json.stringOr("phase", "batch"))
                                : kind;
        if (phase == "batch") {
            cfg.task = TaskSpec::inference();
        } else if (phase == "prefill") {
            cfg.task = TaskSpec::prefill();
        } else if (phase == "decode") {
            cfg.task = TaskSpec::decode(static_cast<long>(
                json.numberOr("decode_kv_tokens", 0)));
        } else {
            fatal("unknown inference phase: " + phase +
                  " (expected batch, prefill, or decode)");
        }
        if (cfg.task.usesKvCache()) {
            cfg.task.kvCapacityTokens = static_cast<long>(
                json.numberOr("kv_capacity_tokens", 0));
            cfg.task.kvBytesPerElement =
                json.numberOr("kv_bytes_per_element", 2.0);
            if (cfg.task.kvCapacityTokens < 0) {
                fatal(strfmt("task kv_capacity_tokens %ld is negative; "
                             "give the KV budget in tokens (prompt + "
                             "generated), or 0 for the model's context "
                             "length",
                             cfg.task.kvCapacityTokens));
            }
            if (cfg.task.kvBytesPerElement <= 0.0) {
                fatal(strfmt("task kv_bytes_per_element %.3g must be "
                             "positive (2 = fp16/bf16 cache, 1 = fp8)",
                             cfg.task.kvBytesPerElement));
            }
        }
    } else if (kind == "fine-tuning" || kind == "finetuning") {
        std::string scope = lower(json.stringOr("finetune_scope", "dense"));
        cfg.task = TaskSpec::fineTuning(
            scope == "embedding" ? FineTuneScope::EmbeddingOnly
                                 : FineTuneScope::DenseOnly);
    } else {
        fatal("unknown task: " + kind);
    }

    if (json.has("strategies")) {
        for (const auto &[key, value] : json.at("strategies").asObject()) {
            std::string k = lower(key);
            LayerClass cls;
            if (k == "sparse_embedding" || k == "embedding")
                cls = LayerClass::SparseEmbedding;
            else if (k == "dense_embedding")
                cls = LayerClass::DenseEmbedding;
            else if (k == "base_dense" || k == "dense")
                cls = LayerClass::BaseDense;
            else if (k == "transformer")
                cls = LayerClass::Transformer;
            else if (k == "moe")
                cls = LayerClass::MoE;
            else
                fatal("unknown layer class in strategies: " + key);
            cfg.plan.set(cls, parseStrategy(value.asString()));
        }
    } else {
        cfg.plan = ParallelPlan::fsdpBaseline();
    }
    cfg.plan.fsdpPrefetch = json.boolOr("fsdp_prefetch", false);
    return cfg;
}

InferenceWorkload
loadWorkload(const JsonValue &json)
{
    InferenceWorkload w;
    w.promptTokens =
        static_cast<long>(json.numberOr("prompt_tokens", 0));
    w.generateTokens =
        static_cast<long>(json.numberOr("generate_tokens", 256));
    w.kvBytesPerElement = json.numberOr("kv_bytes_per_element", 2.0);
    w.prefillGroup = json.stringOr("prefill_group", "");
    w.decodeGroup = json.stringOr("decode_group", "");
    if (w.promptTokens < 0) {
        fatal(strfmt("workload prompt_tokens %ld is negative; use 0 "
                     "to take the model's context length",
                     w.promptTokens));
    }
    if (w.generateTokens < 1) {
        fatal(strfmt("workload generate_tokens %ld must be >= 1 (a "
                     "serving request decodes at least one token)",
                     w.generateTokens));
    }
    if (w.kvBytesPerElement <= 0.0) {
        fatal(strfmt("workload kv_bytes_per_element %.3g must be "
                     "positive (2 = fp16/bf16 cache, 1 = fp8)",
                     w.kvBytesPerElement));
    }
    return w;
}

ModelDesc
loadModelFile(const std::string &path)
{
    return loadModel(JsonValue::parseFile(path));
}

ClusterSpec
loadClusterFile(const std::string &path)
{
    return loadCluster(JsonValue::parseFile(path));
}

TaskConfig
loadTaskFile(const std::string &path)
{
    return loadTask(JsonValue::parseFile(path));
}

InferenceWorkload
loadWorkloadFile(const std::string &path)
{
    return loadWorkload(JsonValue::parseFile(path));
}

namespace
{

JsonValue
deviceJson(const DeviceSpec &device)
{
    using namespace units;
    JsonValue dev;
    dev.set("name", device.name);
    dev.set("peak_tflops_16", device.peakFlopsTensor16 / 1e12);
    dev.set("peak_tflops_tf32", device.peakFlopsTf32 / 1e12);
    dev.set("peak_tflops_fp32", device.peakFlopsFp32 / 1e12);
    dev.set("hbm_gib", device.hbmCapacity / GiB);
    dev.set("hbm_gbps", device.hbmBandwidth / 1e9);
    dev.set("intra_node_gbps", device.intraNodeBandwidth / 1e9);
    dev.set("inter_node_gbps", device.interNodeBandwidth / 1e9);
    return dev;
}

} // namespace

JsonValue
toJson(const ClusterSpec &cluster)
{
    JsonValue out;
    out.set("name", cluster.name);
    if (cluster.isHeterogeneous()) {
        JsonValue groups{JsonValue::Array{}};
        for (const DeviceGroup &g : cluster.groups) {
            JsonValue entry;
            entry.set("name", g.name);
            entry.set("device", deviceJson(g.device));
            entry.set("devices_per_node",
                      static_cast<long>(g.devicesPerNode));
            entry.set("num_nodes", static_cast<long>(g.numNodes));
            entry.set("intra_fabric", fabricName(g.intraFabric));
            groups.append(std::move(entry));
        }
        out.set("device_groups", std::move(groups));
    } else {
        out.set("device", deviceJson(cluster.device));
        out.set("devices_per_node",
                static_cast<long>(cluster.devicesPerNode));
        out.set("num_nodes", static_cast<long>(cluster.numNodes));
    }
    out.set("compute_utilization", cluster.util.compute);
    out.set("hbm_utilization", cluster.util.hbm);
    out.set("intra_link_utilization", cluster.util.intraLink);
    out.set("inter_link_utilization", cluster.util.interLink);
    out.set("inter_fabric", fabricName(cluster.interFabric));
    if (cluster.topology) {
        // Emit the resolved tier stack (not the preset name that may
        // have produced it) so a round-trip re-parses to the same
        // levels regardless of how they were specified.
        JsonValue topo;
        topo.set("name", cluster.topology->name);
        JsonValue levels{JsonValue::Array{}};
        for (const TopologyLevel &lv : cluster.topology->levels) {
            JsonValue level;
            level.set("name", lv.name);
            level.set("fan", static_cast<long>(lv.fan));
            level.set("bandwidth_gbps", lv.linkBandwidth / 1e9);
            if (lv.linkLatency >= 0.0)
                level.set("latency_us", lv.linkLatency * 1e6);
            level.set("rails", static_cast<long>(lv.rails));
            level.set("sharers", lv.sharers);
            levels.append(std::move(level));
        }
        topo.set("levels", std::move(levels));
        out.set("topology", std::move(topo));
    }
    return out;
}

JsonValue
toJson(const TaskConfig &config)
{
    JsonValue out;
    switch (config.task.kind) {
      case TaskKind::PreTraining:
        out.set("task", "pre-training");
        break;
      case TaskKind::Inference:
        out.set("task", "inference");
        // Batch (the classic whole-context pass) keeps the legacy
        // shape; the serving phases round-trip their KV knobs.
        if (config.task.usesKvCache()) {
            out.set("phase", toString(config.task.phase));
            if (config.task.decodeKvLength > 0)
                out.set("decode_kv_tokens", config.task.decodeKvLength);
            if (config.task.kvCapacityTokens > 0) {
                out.set("kv_capacity_tokens",
                        config.task.kvCapacityTokens);
            }
            if (config.task.kvBytesPerElement != 2.0) {
                out.set("kv_bytes_per_element",
                        config.task.kvBytesPerElement);
            }
        }
        break;
      case TaskKind::FineTuning:
        out.set("task", "fine-tuning");
        out.set("finetune_scope",
                config.task.ftScope == FineTuneScope::EmbeddingOnly
                    ? "embedding"
                    : "dense");
        break;
    }
    JsonValue strategies;
    for (const auto &[cls, hs] : config.plan.byClass) {
        std::string key;
        switch (cls) {
          case LayerClass::SparseEmbedding: key = "sparse_embedding"; break;
          case LayerClass::DenseEmbedding: key = "dense_embedding"; break;
          case LayerClass::BaseDense: key = "base_dense"; break;
          case LayerClass::Transformer: key = "transformer"; break;
          case LayerClass::MoE: key = "moe"; break;
        }
        strategies.set(key, hs.toString());
    }
    out.set("strategies", std::move(strategies));
    out.set("fsdp_prefetch", config.plan.fsdpPrefetch);
    return out;
}

JsonValue
toJson(const InferenceWorkload &workload)
{
    JsonValue out;
    out.set("prompt_tokens", workload.promptTokens);
    out.set("generate_tokens", workload.generateTokens);
    out.set("kv_bytes_per_element", workload.kvBytesPerElement);
    if (!workload.prefillGroup.empty())
        out.set("prefill_group", workload.prefillGroup);
    if (!workload.decodeGroup.empty())
        out.set("decode_group", workload.decodeGroup);
    return out;
}

} // namespace madmax
