/**
 * @file
 * Minimal dependency-free JSON reader/writer. MAD-Max's user-facing
 * configuration (model architecture, distributed system, task +
 * parallelization strategy — §IV-A) is JSON, matching the paper's
 * interface; this keeps the library free of external dependencies.
 *
 * Supported: null, booleans, finite doubles, strings (with the common
 * escapes), arrays, objects. Not supported: comments, NaN/Inf,
 * \u escapes beyond Latin-1. Container nesting is capped at 200
 * levels (a ConfigError beyond that): parsing recurses per level,
 * and the serving layer feeds network input to this parser, so a
 * hostile '[[[[...' document must not overflow the stack.
 */

#ifndef MADMAX_CONFIG_JSON_HH
#define MADMAX_CONFIG_JSON_HH

#include <map>
#include <memory>
#include <string>
#include <variant>
#include <vector>

namespace madmax
{

/**
 * A parsed JSON value. Value-semantic tree; object keys are kept in
 * sorted order (std::map) for deterministic dumps.
 */
class JsonValue
{
  public:
    using Array = std::vector<JsonValue>;
    using Object = std::map<std::string, JsonValue>;

    /** Construct null. */
    JsonValue() : value_(nullptr) {}
    JsonValue(std::nullptr_t) : value_(nullptr) {}
    JsonValue(bool b) : value_(b) {}
    JsonValue(double d) : value_(d) {}
    JsonValue(int i) : value_(static_cast<double>(i)) {}
    JsonValue(long l) : value_(static_cast<double>(l)) {}
    JsonValue(const char *s) : value_(std::string(s)) {}
    JsonValue(std::string s) : value_(std::move(s)) {}
    JsonValue(Array a) : value_(std::move(a)) {}
    JsonValue(Object o) : value_(std::move(o)) {}

    /** Parse a JSON document. @throws ConfigError on malformed input. */
    static JsonValue parse(const std::string &text);

    /** Parse the contents of a file. @throws ConfigError */
    static JsonValue parseFile(const std::string &path);

    bool isNull() const;
    bool isBool() const;
    bool isNumber() const;
    bool isString() const;
    bool isArray() const;
    bool isObject() const;

    /** Typed accessors. @throws ConfigError on type mismatch. */
    bool asBool() const;
    double asDouble() const;
    long asLong() const;
    const std::string &asString() const;
    const Array &asArray() const;
    const Object &asObject() const;

    /** Object member access. @throws ConfigError if missing. */
    const JsonValue &at(const std::string &key) const;

    /** True if this is an object containing @p key. */
    bool has(const std::string &key) const;

    /** Object member with fallback when absent. */
    double numberOr(const std::string &key, double fallback) const;
    bool boolOr(const std::string &key, bool fallback) const;
    std::string stringOr(const std::string &key,
                         const std::string &fallback) const;

    /** Array element access. @throws ConfigError if out of range. */
    const JsonValue &at(size_t idx) const;

    size_t size() const;

    /** Mutable object insertion (builder-style). */
    JsonValue &set(const std::string &key, JsonValue v);

    /** Mutable array append. */
    JsonValue &append(JsonValue v);

    /** Serialize; indent > 0 pretty-prints with that many spaces. */
    std::string dump(int indent = 0) const;

  private:
    void dumpTo(std::string &out, int indent, int depth) const;

    std::variant<std::nullptr_t, bool, double, std::string, Array,
                 Object>
        value_;
};

} // namespace madmax

#endif // MADMAX_CONFIG_JSON_HH
