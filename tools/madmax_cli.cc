/**
 * @file
 * MAD-Max command-line driver. Wraps the library behind the JSON
 * interface of §IV-A:
 *
 *   madmax evaluate --model m.json --system s.json --task t.json
 *       [--trace out.json] [--json]
 *   madmax explore  --model m.json --system s.json --task t.json
 *       [--top N] [--no-memory-limit] [--json]
 *   madmax describe --model m.json
 *
 * Exit codes: 0 success, 1 usage/configuration error, 2 evaluated
 * but the plan does not fit device memory.
 */

#include <fstream>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "config/config_loader.hh"
#include "core/strategy_explorer.hh"
#include "trace/chrome_trace.hh"
#include "util/logging.hh"
#include "util/strfmt.hh"
#include "util/table.hh"

using namespace madmax;

namespace
{

int
usage()
{
    std::cerr <<
        "usage:\n"
        "  madmax evaluate --model M.json --system S.json --task T.json\n"
        "                  [--trace OUT.json] [--json]\n"
        "  madmax explore  --model M.json --system S.json --task T.json\n"
        "                  [--top N] [--jobs N] [--no-memory-limit]\n"
        "                  [--json]\n"
        "  madmax describe --model M.json\n";
    return 1;
}

/** Parse --key value pairs and boolean --flags. */
std::map<std::string, std::string>
parseFlags(int argc, char **argv, int start)
{
    std::map<std::string, std::string> flags;
    for (int i = start; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg.rfind("--", 0) != 0)
            fatal("unexpected argument: " + arg);
        std::string key = arg.substr(2);
        if (key == "json" || key == "no-memory-limit") {
            flags[key] = "true";
        } else {
            if (i + 1 >= argc)
                fatal("missing value for --" + key);
            flags[key] = argv[++i];
        }
    }
    return flags;
}

const std::string &
require(const std::map<std::string, std::string> &flags,
        const std::string &key)
{
    auto it = flags.find(key);
    if (it == flags.end())
        fatal("missing required flag --" + key);
    return it->second;
}

JsonValue
reportJson(const PerfReport &r)
{
    JsonValue out;
    out.set("model", r.modelName);
    out.set("cluster", r.clusterName);
    out.set("task", r.taskName);
    out.set("plan", r.plan.toString());
    out.set("valid", r.valid);
    out.set("memory_bytes_per_device", r.memory.total());
    out.set("memory_usable_bytes", r.memory.usableCapacity);
    if (r.valid) {
        out.set("iteration_seconds", r.iterationTime);
        out.set("serialized_seconds", r.serializedTime);
        out.set("throughput_samples_per_sec", r.throughput());
        out.set("tokens_per_sec", r.tokensPerSecond());
        out.set("exposed_comm_seconds", r.exposedCommTime);
        out.set("comm_overlap_fraction", r.overlapFraction());
    }
    return out;
}

int
cmdEvaluate(const std::map<std::string, std::string> &flags)
{
    ModelDesc model = loadModelFile(require(flags, "model"));
    ClusterSpec cluster = loadClusterFile(require(flags, "system"));
    TaskConfig task = loadTaskFile(require(flags, "task"));

    PerfModel madmax(cluster);
    PerfReport report = madmax.evaluate(model, task.task, task.plan);

    if (flags.count("trace") && report.valid) {
        std::ofstream out(flags.at("trace"));
        if (!out)
            fatal("cannot write trace file: " + flags.at("trace"));
        writeChromeTrace(report.timeline, out);
    }
    if (flags.count("json"))
        std::cout << reportJson(report).dump(2) << "\n";
    else
        std::cout << report.summary();
    return report.valid ? 0 : 2;
}

JsonValue
statsJson(const EvalStats &stats)
{
    JsonValue out;
    out.set("evaluations", stats.evaluations);
    out.set("cache_hits", stats.cacheHits);
    out.set("pruned", stats.pruned);
    out.set("wall_seconds", stats.wallSeconds);
    return out;
}

int
cmdExplore(const std::map<std::string, std::string> &flags)
{
    ModelDesc model = loadModelFile(require(flags, "model"));
    ClusterSpec cluster = loadClusterFile(require(flags, "system"));
    TaskConfig task = loadTaskFile(require(flags, "task"));
    size_t top = flags.count("top")
        ? static_cast<size_t>(std::stoul(flags.at("top")))
        : 5;

    EvalEngineOptions engine_opts;
    if (flags.count("jobs")) {
        try {
            engine_opts.jobs = std::stoi(flags.at("jobs"));
        } catch (const std::exception &) {
            fatal("--jobs needs an integer, got '" + flags.at("jobs") +
                  "'");
        }
    }
    EvalEngine engine(engine_opts);

    PerfModel madmax(cluster);
    StrategyExplorer explorer(madmax, &engine);
    ExplorerOptions opts;
    opts.ignoreMemory = flags.count("no-memory-limit") > 0;
    Exploration exploration = explorer.explore(model, task.task, opts);

    if (flags.count("json")) {
        JsonValue arr;
        size_t shown = 0;
        for (const ExplorationResult &r : exploration.results) {
            if (shown++ >= top)
                break;
            arr.append(reportJson(r.report));
        }
        JsonValue out;
        out.set("results", std::move(arr));
        out.set("search", statsJson(exploration.stats));
        std::cout << out.dump(2) << "\n";
        return 0;
    }

    AsciiTable table({"rank", "plan", "throughput", "mem/device",
                      "verdict"});
    size_t shown = 0;
    for (const ExplorationResult &r : exploration.results) {
        if (shown >= top)
            break;
        ++shown;
        table.addRow({std::to_string(shown), r.plan.toString(),
                      r.report.valid
                          ? formatCount(r.report.throughput()) + "/s"
                          : "-",
                      formatBytes(r.report.memory.total()),
                      r.report.valid ? "ok" : "OOM"});
    }
    table.print(std::cout);
    const EvalStats &s = exploration.stats;
    std::cout << strfmt(
        "search: %ld evaluations, %ld cache hits, %ld pruned, %s "
        "(%d jobs)\n",
        s.evaluations, s.cacheHits, s.pruned,
        formatTime(s.wallSeconds).c_str(), engine.jobs());
    return 0;
}

int
cmdDescribe(const std::map<std::string, std::string> &flags)
{
    ModelDesc model = loadModelFile(require(flags, "model"));
    ModelTotals totals = model.graph.totals();

    JsonValue layers;
    for (int i = 0; i < model.graph.numLayers(); ++i) {
        const Layer &layer = model.graph.layer(i);
        JsonValue entry;
        entry.set("name", layer.name());
        entry.set("kind", toString(layer.kind()));
        entry.set("class", toString(layer.layerClass()));
        entry.set("params", layer.paramCount());
        entry.set("forward_flops_per_sample",
                  layer.forwardFlopsPerSample());
        layers.append(std::move(entry));
    }
    JsonValue out;
    out.set("name", model.name);
    out.set("global_batch", model.globalBatchSize);
    out.set("context_length", model.contextLength);
    out.set("total_params", totals.paramCount);
    out.set("forward_flops_per_token", model.forwardFlopsPerToken());
    out.set("lookup_bytes_per_sample", totals.lookupBytesPerSample);
    out.set("num_layers", static_cast<long>(model.graph.numLayers()));
    out.set("layers", std::move(layers));
    std::cout << out.dump(2) << "\n";
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        return usage();
    std::string cmd = argv[1];
    try {
        auto flags = parseFlags(argc, argv, 2);
        if (cmd == "evaluate")
            return cmdEvaluate(flags);
        if (cmd == "explore")
            return cmdExplore(flags);
        if (cmd == "describe")
            return cmdDescribe(flags);
        std::cerr << "unknown command: " << cmd << "\n";
        return usage();
    } catch (const ConfigError &e) {
        std::cerr << "error: " << e.what() << "\n";
        return 1;
    }
}
