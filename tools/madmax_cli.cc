/**
 * @file
 * MAD-Max command-line driver. Wraps the library behind the JSON
 * interface of §IV-A:
 *
 *   madmax evaluate --model m.json --system s.json --task t.json
 *       [--trace out.json] [--format json|text]
 *   madmax explore  --model m.json --system s.json --task t.json
 *       [--top N] [--jobs N] [--no-memory-limit] [--format json|text]
 *   madmax pareto   --model m.json --task t.json
 *       [--system s.json [--node-counts 8,16,32] | --catalog cloud
 *       [--nodes N]] [--strategy NAME] [--budget N] [--seed N]
 *       [--jobs N] [--top N] [--format json|text]
 *   madmax describe --model m.json
 *   madmax serve    [--port N] [--jobs N] [--workers N]
 *       [--queue-depth N] [--idle-timeout SEC] [--keep-alive-max N]
 *       [--batch-window-us N] [--batch-max N] [--config-cache N]
 *       [--request-timeout-ms N] [--breaker-threshold N]
 *       [--breaker-open-ms N] [--batch-watchdog-ms N]
 *       [--faults SPEC]
 *
 * Exit codes: 0 success, 1 usage/configuration error (including
 * unknown flags), 2 evaluated but the plan does not fit device
 * memory. `serve` exits 0 on SIGINT/SIGTERM after a clean shutdown.
 * Full reference: docs/cli.md.
 */

#include <atomic>
#include <chrono>
#include <csignal>
#include <fstream>
#include <iostream>
#include <limits>
#include <map>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "config/config_loader.hh"
#include "core/strategy_explorer.hh"
#include "dse/pareto_engine.hh"
#include "serve/service.hh"
#include "trace/chrome_trace.hh"
#include "util/fault_injection.hh"
#include "util/logging.hh"
#include "util/strfmt.hh"
#include "util/table.hh"

using namespace madmax;

namespace
{

int
usage()
{
    std::cerr <<
        "usage:\n"
        "  madmax evaluate --model M.json --system S.json --task T.json\n"
        "                  [--trace OUT.json] [--format json|text]\n"
        "  madmax explore  --model M.json --system S.json --task T.json\n"
        "                  [--top N] [--jobs N] [--no-memory-limit]\n"
        "                  [--format json|text]\n"
        "  madmax pareto   --model M.json --task T.json\n"
        "                  [--system S.json [--node-counts 8,16,32] |\n"
        "                  --catalog cloud [--nodes N]]\n"
        "                  [--strategy exhaustive|coordinate-descent|\n"
        "                  annealing|genetic] [--budget N] [--seed N]\n"
        "                  [--jobs N] [--top N] [--no-baselines]\n"
        "                  [--format json|text]\n"
        "  madmax pareto   --model M.json --system S.json\n"
        "                  --workload W.json  (serving-placement\n"
        "                  search; docs/inference.md) [--jobs N]\n"
        "                  [--top N] [--format json|text]\n"
        "  madmax describe --model M.json\n"
        "  madmax serve    [--port N] [--jobs N] [--workers N]\n"
        "                  [--queue-depth N] [--idle-timeout SEC]\n"
        "                  [--keep-alive-max N] [--batch-window-us N]\n"
        "                  [--batch-max N] [--config-cache N]\n"
        "                  [--request-timeout-ms N] [--breaker-threshold N]\n"
        "                  [--breaker-open-ms N] [--batch-watchdog-ms N]\n"
        "                  [--faults SPEC]  (docs/resilience.md)\n"
        "see docs/cli.md for the full flag and exit-code reference\n";
    return 1;
}

/** The flags one subcommand accepts: value flags take an argument,
 *  boolean flags do not. Anything else is rejected. */
struct FlagSpec
{
    std::set<std::string> value;
    std::set<std::string> boolean;
};

/**
 * Parse --key value pairs and boolean --flags, rejecting anything the
 * subcommand does not accept — a typo like --modle must fail loudly
 * (exit 1), not silently evaluate defaults.
 */
std::map<std::string, std::string>
parseFlags(int argc, char **argv, int start, const std::string &cmd,
           const FlagSpec &spec)
{
    std::map<std::string, std::string> flags;
    for (int i = start; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg.rfind("--", 0) != 0)
            fatal("unexpected argument: " + arg);
        std::string key = arg.substr(2);
        if (spec.boolean.count(key)) {
            flags[key] = "true";
        } else if (spec.value.count(key)) {
            if (i + 1 >= argc)
                fatal("missing value for --" + key);
            flags[key] = argv[++i];
        } else {
            std::string known;
            for (const std::string &k : spec.value)
                known += " --" + k;
            for (const std::string &k : spec.boolean)
                known += " --" + k;
            fatal("unknown flag --" + key + " for '" + cmd +
                  "' (supported:" + known +
                  "; run madmax without arguments for usage)");
        }
    }
    return flags;
}

const std::string &
require(const std::map<std::string, std::string> &flags,
        const std::string &key)
{
    auto it = flags.find(key);
    if (it == flags.end())
        fatal("missing required flag --" + key);
    return it->second;
}

/** Parse an integer flag with a range check; fatal (exit 1) on junk
 *  like `--top x` instead of an uncaught std::stoul abort. */
long
intFlag(const std::map<std::string, std::string> &flags,
        const std::string &key, long fallback, long min, long max)
{
    auto it = flags.find(key);
    if (it == flags.end())
        return fallback;
    long v = 0;
    try {
        size_t consumed = 0;
        v = std::stol(it->second, &consumed);
        if (consumed != it->second.size())
            throw std::invalid_argument(it->second);
    } catch (const std::exception &) {
        fatal("--" + key + " needs an integer, got '" + it->second +
              "'");
    }
    if (v < min || v > max)
        fatal("--" + key + " must be in [" + std::to_string(min) +
              ", " + std::to_string(max) + "], got " + it->second);
    return v;
}

/** Resolve --format json|text (and the legacy --json alias). */
bool
wantJson(const std::map<std::string, std::string> &flags)
{
    auto it = flags.find("format");
    if (it != flags.end()) {
        if (it->second == "json")
            return true;
        if (it->second == "text")
            return false;
        fatal("--format must be 'json' or 'text', got '" + it->second +
              "'");
    }
    return flags.count("json") > 0;
}

int
cmdEvaluate(const std::map<std::string, std::string> &flags)
{
    ModelDesc model = loadModelFile(require(flags, "model"));
    ClusterSpec cluster = loadClusterFile(require(flags, "system"));
    TaskConfig task = loadTaskFile(require(flags, "task"));

    PerfModel madmax(cluster);
    PerfReport report = madmax.evaluate(model, task.task, task.plan);

    if (flags.count("trace") && report.valid) {
        std::ofstream out(flags.at("trace"));
        if (!out)
            fatal("cannot write trace file: " + flags.at("trace"));
        writeChromeTrace(report.timeline, out);
    }
    if (wantJson(flags))
        std::cout << toJson(report).dump(2) << "\n";
    else
        std::cout << report.summary();
    return report.valid ? 0 : 2;
}

int
cmdExplore(const std::map<std::string, std::string> &flags)
{
    ModelDesc model = loadModelFile(require(flags, "model"));
    ClusterSpec cluster = loadClusterFile(require(flags, "system"));
    TaskConfig task = loadTaskFile(require(flags, "task"));
    size_t top = static_cast<size_t>(
        intFlag(flags, "top", 5, 0, 1L << 30));

    EvalEngineOptions engine_opts;
    engine_opts.jobs =
        static_cast<int>(intFlag(flags, "jobs", 1, 0, 4096));
    EvalEngine engine(engine_opts);

    PerfModel madmax(cluster);
    StrategyExplorer explorer(madmax, &engine);
    ExplorerOptions opts;
    opts.ignoreMemory = flags.count("no-memory-limit") > 0;
    Exploration exploration = explorer.explore(model, task.task, opts);

    if (wantJson(flags)) {
        JsonValue arr;
        size_t shown = 0;
        for (const ExplorationResult &r : exploration.results) {
            if (shown++ >= top)
                break;
            arr.append(toJson(r.report));
        }
        JsonValue out;
        out.set("results", std::move(arr));
        out.set("search", toJson(exploration.stats));
        std::cout << out.dump(2) << "\n";
        return 0;
    }

    AsciiTable table({"rank", "plan", "throughput", "mem/device",
                      "verdict"});
    size_t shown = 0;
    for (const ExplorationResult &r : exploration.results) {
        if (shown >= top)
            break;
        ++shown;
        table.addRow({std::to_string(shown), r.plan.toString(),
                      r.report.valid
                          ? formatCount(r.report.throughput()) + "/s"
                          : "-",
                      formatBytes(r.report.memory.total()),
                      r.report.valid ? "ok" : "OOM"});
    }
    table.print(std::cout);
    const EvalStats &s = exploration.stats;
    std::cout << strfmt(
        "search: %ld evaluations, %ld cache hits, %ld pruned, %s "
        "(%d jobs)\n",
        s.evaluations, s.cacheHits, s.pruned,
        formatTime(s.wallSeconds).c_str(), engine.jobs());
    return 0;
}

/** Parse a "--node-counts 8,16,32" comma list. @throws ConfigError */
std::vector<int>
parseNodeCounts(const std::string &value)
{
    std::vector<int> counts;
    size_t pos = 0;
    while (pos <= value.size()) {
        size_t comma = value.find(',', pos);
        std::string item = value.substr(
            pos, comma == std::string::npos ? std::string::npos
                                            : comma - pos);
        long n = 0;
        try {
            size_t consumed = 0;
            n = std::stol(item, &consumed);
            if (consumed != item.size())
                throw std::invalid_argument(item);
        } catch (const std::exception &) {
            fatal("--node-counts needs a comma-separated integer "
                  "list, got '" + value + "'");
        }
        if (n < 1 || n > 65536)
            fatal("--node-counts entries must be in [1, 65536], got " +
                  item);
        counts.push_back(static_cast<int>(n));
        if (comma == std::string::npos)
            break;
        pos = comma + 1;
    }
    if (counts.empty())
        fatal("--node-counts list is empty");
    return counts;
}

/** `madmax pareto --workload W.json`: serving-placement search over a
 *  (possibly heterogeneous) system instead of a task-plan sweep. */
int
cmdParetoWorkload(const std::map<std::string, std::string> &flags)
{
    for (const char *other :
         {"task", "catalog", "nodes", "node-counts", "strategy",
          "budget", "seed", "no-baselines"}) {
        if (flags.count(other)) {
            fatal(strfmt("--workload derives the serving phases "
                         "itself and searches placements exhaustively; "
                         "--%s does not apply (supported: --model "
                         "--system --workload --jobs --top --format)",
                         other));
        }
    }
    ModelDesc model = loadModelFile(require(flags, "model"));
    ClusterSpec cluster = loadClusterFile(require(flags, "system"));
    InferenceWorkload workload =
        loadWorkloadFile(require(flags, "workload"));

    EvalEngineOptions engine_opts;
    engine_opts.jobs =
        static_cast<int>(intFlag(flags, "jobs", 1, 0, 4096));
    EvalEngine engine(engine_opts);
    InferencePlacementFrontier frontier =
        exploreInferencePlacements(model, workload, cluster, {},
                                   &engine);

    if (wantJson(flags)) {
        std::cout << toJson(frontier).dump(2) << "\n";
        return frontier.points.empty() ? 2 : 0;
    }

    size_t top = static_cast<size_t>(
        intFlag(flags, "top", 0, 0, 1L << 30));
    std::cout << strfmt(
        "placement search: %zu islands, %zu placements evaluated, "
        "%zu on frontier\n",
        frontier.islands.size(), frontier.candidates.size(),
        frontier.points.size());
    AsciiTable table({"rank", "prefill", "decode", "plan (prefill)",
                      "plan (decode)", "tokens/s", "perf/($/hr)",
                      "max seqs"});
    size_t shown = 0;
    for (const InferencePlacementCandidate &c : frontier.points) {
        if (top != 0 && shown >= top)
            break;
        ++shown;
        table.addRow(
            {std::to_string(shown),
             frontier.islands[static_cast<size_t>(c.prefillIsland)],
             frontier.islands[static_cast<size_t>(c.decodeIsland)],
             c.prefillPlan.toString(), c.decodePlan.toString(),
             formatCount(c.objectives.tokensPerSecond) + "/s",
             strfmt("%.4g", c.objectives.perfPerTco),
             formatCount(c.objectives.maxConcurrentSequences)});
    }
    table.print(std::cout);
    if (!frontier.points.empty())
        std::cout << "\n" << frontier.points.front().report.summary();
    const EvalStats &s = frontier.stats;
    std::cout << strfmt(
        "search: %ld evaluations, %ld cache hits, %ld pruned, %s "
        "(%d jobs)\n",
        s.evaluations, s.cacheHits, s.pruned,
        formatTime(s.wallSeconds).c_str(), engine.jobs());
    return frontier.points.empty() ? 2 : 0;
}

int
cmdPareto(const std::map<std::string, std::string> &flags)
{
    if (flags.count("workload"))
        return cmdParetoWorkload(flags);
    ModelDesc model = loadModelFile(require(flags, "model"));
    TaskConfig task = loadTaskFile(require(flags, "task"));

    // The hardware axis of the joint space: one system (optionally
    // swept over node counts), or the public-cloud instance catalog.
    std::vector<HardwarePoint> hw;
    if (flags.count("system")) {
        if (flags.count("catalog") || flags.count("nodes"))
            fatal("--system and --catalog/--nodes are mutually "
                  "exclusive");
        ClusterSpec cluster = loadClusterFile(flags.at("system"));
        if (flags.count("node-counts"))
            hw = nodeCountSweep(cluster,
                                parseNodeCounts(flags.at("node-counts")));
        else
            hw = {makeHardwarePoint(cluster)};
    } else {
        if (flags.count("node-counts"))
            fatal("--node-counts requires --system");
        std::string catalog = flags.count("catalog")
            ? flags.at("catalog") : "cloud";
        if (catalog != "cloud")
            fatal("unknown --catalog '" + catalog +
                  "' (supported: cloud)");
        hw = cloudHardwareCatalog(
            static_cast<int>(intFlag(flags, "nodes", 16, 1, 4096)));
    }

    EvalEngineOptions engine_opts;
    engine_opts.jobs =
        static_cast<int>(intFlag(flags, "jobs", 1, 0, 4096));
    EvalEngine engine(engine_opts);
    ParetoEngine pareto(std::move(hw), &engine);

    ParetoOptions opts;
    opts.strategy = flags.count("strategy") ? flags.at("strategy")
                                            : "exhaustive";
    opts.search.maxEvaluations =
        intFlag(flags, "budget", 0, 0, 1L << 30);
    opts.search.seed = static_cast<uint64_t>(
        intFlag(flags, "seed",
                static_cast<long>(SearchOptions{}.seed), 0,
                std::numeric_limits<long>::max()));
    opts.includeBaselines = flags.count("no-baselines") == 0;
    ParetoFrontier frontier = pareto.explore(model, task.task, opts);

    if (wantJson(flags)) {
        std::cout << toJson(frontier, pareto.hardware()).dump(2)
                  << "\n";
        return 0;
    }

    size_t top = static_cast<size_t>(
        intFlag(flags, "top", 0, 0, 1L << 30));
    std::cout << strfmt(
        "strategy: %s over %zu hardware points (%zu points visited, "
        "%zu on frontier)\n",
        frontier.strategy.c_str(), pareto.hardware().size(),
        frontier.candidates.size(), frontier.points.size());
    AsciiTable table({"rank", "hardware", "plan", "throughput",
                      "perf/($/hr)", "mem headroom"});
    size_t shown = 0;
    for (const ParetoCandidate &c : frontier.points) {
        if (top != 0 && shown >= top)
            break;
        ++shown;
        table.addRow(
            {std::to_string(shown),
             pareto.hardware()[c.hwIndex].name, c.plan.toString(),
             formatCount(c.objectives.throughput) + "/s",
             strfmt("%.4g", c.objectives.perfPerTco),
             formatBytes(c.objectives.memHeadroomBytes)});
    }
    table.print(std::cout);
    const EvalStats &s = frontier.stats;
    std::cout << strfmt(
        "search: %ld evaluations, %ld cache hits, %ld pruned, %s "
        "(%d jobs)\n",
        s.evaluations, s.cacheHits, s.pruned,
        formatTime(s.wallSeconds).c_str(), engine.jobs());
    return 0;
}

int
cmdDescribe(const std::map<std::string, std::string> &flags)
{
    ModelDesc model = loadModelFile(require(flags, "model"));
    ModelTotals totals = model.graph.totals();

    JsonValue layers;
    for (int i = 0; i < model.graph.numLayers(); ++i) {
        const Layer &layer = model.graph.layer(i);
        JsonValue entry;
        entry.set("name", layer.name());
        entry.set("kind", toString(layer.kind()));
        entry.set("class", toString(layer.layerClass()));
        entry.set("params", layer.paramCount());
        entry.set("forward_flops_per_sample",
                  layer.forwardFlopsPerSample());
        layers.append(std::move(entry));
    }
    JsonValue out;
    out.set("name", model.name);
    out.set("global_batch", model.globalBatchSize);
    out.set("context_length", model.contextLength);
    out.set("total_params", totals.paramCount);
    out.set("forward_flops_per_token", model.forwardFlopsPerToken());
    out.set("lookup_bytes_per_sample", totals.lookupBytesPerSample);
    out.set("num_layers", static_cast<long>(model.graph.numLayers()));
    out.set("layers", std::move(layers));
    std::cout << out.dump(2) << "\n";
    return 0;
}

std::atomic<bool> g_shutdown{false};

extern "C" void
onShutdownSignal(int)
{
    g_shutdown.store(true);
}

int
cmdServe(const std::map<std::string, std::string> &flags)
{
    ServiceOptions sopts;
    sopts.jobs = static_cast<int>(intFlag(flags, "jobs", 0, 0, 4096));
    sopts.batchWindowMicros =
        intFlag(flags, "batch-window-us", 100, 0, 1000000);
    sopts.batchMax = static_cast<size_t>(
        intFlag(flags, "batch-max", 64, 1, 4096));
    sopts.configCacheCapacity = static_cast<size_t>(
        intFlag(flags, "config-cache", 1024, 1, 1L << 20));
    sopts.requestTimeoutMillis =
        intFlag(flags, "request-timeout-ms", 0, 0, 3600000);
    sopts.breakerFailureThreshold = static_cast<int>(
        intFlag(flags, "breaker-threshold", 5, 1, 1 << 20));
    sopts.breakerOpenMillis =
        intFlag(flags, "breaker-open-ms", 1000, 1, 3600000);
    sopts.batchWatchdogMillis =
        intFlag(flags, "batch-watchdog-ms", 2000, 0, 3600000);

    // Fault injection (docs/resilience.md): the flag wins over the
    // MADMAX_FAULTS environment variable; either arms the same
    // process-global registry before any request is served.
    auto faultsFlag = flags.find("faults");
    if (faultsFlag != flags.end())
        FaultInjection::configure(faultsFlag->second);
    else
        FaultInjection::configureFromEnv();

    EvalService service(sopts);

    HttpServerOptions hopts;
    hopts.port =
        static_cast<int>(intFlag(flags, "port", 8080, 0, 65535));
    hopts.workers =
        static_cast<int>(intFlag(flags, "workers", 4, 1, 256));
    hopts.queueDepth = static_cast<int>(
        intFlag(flags, "queue-depth", 64, 1, 1 << 16));
    hopts.idleTimeoutSeconds = static_cast<int>(
        intFlag(flags, "idle-timeout", 30, 1, 86400));
    hopts.keepAliveMaxRequests = static_cast<long>(
        intFlag(flags, "keep-alive-max", 1000, 1, 1L << 30));
    hopts.classifier = [&service](const HttpRequest &r) {
        return service.classify(r);
    };
    HttpServer server(
        [&service](const HttpRequest &r) { return service.handle(r); },
        hopts);
    service.setTransportStatsProvider(
        [&server] { return server.stats(); });

    std::signal(SIGINT, onShutdownSignal);
    std::signal(SIGTERM, onShutdownSignal);

    server.start();
    std::cerr << "madmax serve: listening on http://127.0.0.1:"
              << server.port() << " ("
              << service.engine().jobs() << " jobs)\n"
              << "endpoints: POST /v1/evaluate, POST /v1/explore, "
                 "POST /v1/pareto, GET /v1/health, GET /v1/stats, "
                 "GET /v1/metrics — see docs/serving.md\n";

    while (!g_shutdown.load())
        std::this_thread::sleep_for(std::chrono::milliseconds(50));

    std::cerr << "madmax serve: shutting down\n";
    server.stop();
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        return usage();
    std::string cmd = argv[1];
    try {
        FlagSpec spec;
        if (cmd == "evaluate") {
            spec.value = {"model", "system", "task", "trace", "format"};
            spec.boolean = {"json"};
            return cmdEvaluate(parseFlags(argc, argv, 2, cmd, spec));
        }
        if (cmd == "explore") {
            spec.value = {"model", "system", "task", "top", "jobs",
                          "format"};
            spec.boolean = {"json", "no-memory-limit"};
            return cmdExplore(parseFlags(argc, argv, 2, cmd, spec));
        }
        if (cmd == "pareto") {
            spec.value = {"model", "task", "system", "workload",
                          "node-counts", "catalog", "nodes", "strategy",
                          "budget", "seed", "jobs", "top", "format"};
            spec.boolean = {"json", "no-baselines"};
            return cmdPareto(parseFlags(argc, argv, 2, cmd, spec));
        }
        if (cmd == "describe") {
            spec.value = {"model"};
            return cmdDescribe(parseFlags(argc, argv, 2, cmd, spec));
        }
        if (cmd == "serve") {
            spec.value = {"port", "jobs", "workers", "queue-depth",
                          "idle-timeout", "keep-alive-max",
                          "batch-window-us", "batch-max",
                          "config-cache", "request-timeout-ms",
                          "breaker-threshold", "breaker-open-ms",
                          "batch-watchdog-ms", "faults"};
            return cmdServe(parseFlags(argc, argv, 2, cmd, spec));
        }
        std::cerr << "unknown command: " << cmd << "\n";
        return usage();
    } catch (const ConfigError &e) {
        std::cerr << "error: " << e.what() << "\n";
        return 1;
    }
}
