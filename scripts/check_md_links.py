#!/usr/bin/env python3
"""Check relative markdown links and heading anchors in the docs.

Scans README.md and docs/*.md for inline links `[text](target)` and
verifies that

  - relative file/directory targets exist in the repository, and
  - `#fragment` anchors (same-file or on a linked .md file) match a
    heading in the target file, using GitHub's slugification rules.

External links (http/https/mailto) are not fetched. Links inside
fenced code blocks are ignored. Exits non-zero listing every broken
link as `file:line: message`.

Usage: python3 scripts/check_md_links.py [repo-root]
"""

import re
import sys
from pathlib import Path

LINK_RE = re.compile(r"\[[^\]^\[]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
FENCE_RE = re.compile(r"^\s*(```|~~~)")
HEADING_RE = re.compile(r"^(#{1,6})\s+(.*?)\s*#*\s*$")
EXTERNAL_RE = re.compile(r"^[a-zA-Z][a-zA-Z0-9+.-]*:")


def github_slug(heading, seen):
    """GitHub's anchor id for a heading text, deduplicated via `seen`."""
    text = re.sub(r"`([^`]*)`", r"\1", heading)           # strip code spans
    text = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", text)  # links -> text
    text = re.sub(r"[*_~]", "", text)                     # emphasis markers
    slug = re.sub(r"[^\w\s-]", "", text.lower(), flags=re.UNICODE)
    slug = re.sub(r"\s", "-", slug)
    if slug in seen:
        seen[slug] += 1
        return f"{slug}-{seen[slug]}"
    seen[slug] = 0
    return slug


def anchors_of(path, cache):
    if path not in cache:
        seen = {}
        anchors = set()
        in_fence = False
        for line in path.read_text(encoding="utf-8").splitlines():
            if FENCE_RE.match(line):
                in_fence = not in_fence
                continue
            if in_fence:
                continue
            m = HEADING_RE.match(line)
            if m:
                anchors.add(github_slug(m.group(2), seen))
        cache[path] = anchors
    return cache[path]


def iter_links(path):
    in_fence = False
    for lineno, line in enumerate(
        path.read_text(encoding="utf-8").splitlines(), start=1
    ):
        if FENCE_RE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        for m in LINK_RE.finditer(line):
            yield lineno, m.group(1)


def check_file(path, root, cache):
    errors = []
    for lineno, target in iter_links(path):
        if EXTERNAL_RE.match(target):
            continue  # http(s):, mailto:, etc.
        ref, _, fragment = target.partition("#")
        if ref:
            dest = (path.parent / ref).resolve()
            try:
                dest.relative_to(root)
            except ValueError:
                errors.append((lineno, f"link escapes the repo: {target}"))
                continue
            if not dest.exists():
                errors.append((lineno, f"broken link: {target}"))
                continue
        else:
            dest = path  # pure '#fragment' self-reference
        if fragment:
            if dest.is_dir() or dest.suffix != ".md":
                errors.append(
                    (lineno, f"anchor on a non-markdown target: {target}")
                )
            elif fragment not in anchors_of(dest, cache):
                errors.append((lineno, f"missing anchor: {target}"))
    return errors


def main():
    root = Path(sys.argv[1] if len(sys.argv) > 1 else ".").resolve()
    files = sorted([root / "README.md", *(root / "docs").glob("*.md")])
    cache = {}
    failures = 0
    checked = 0
    for path in files:
        if not path.exists():
            print(f"error: {path} does not exist", file=sys.stderr)
            return 2
        checked += 1
        for lineno, message in check_file(path, root, cache):
            rel = path.relative_to(root)
            print(f"{rel}:{lineno}: {message}", file=sys.stderr)
            failures += 1
    if failures:
        print(f"check_md_links: {failures} broken link(s)", file=sys.stderr)
        return 1
    print(f"check_md_links: {checked} files OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
